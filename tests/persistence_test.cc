// Persistence tests: a file-backed database is written, checkpointed,
// closed and reopened; the catalog, heap contents and rebuilt indexes
// must survive — including a full ordered-XML store.

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "src/core/collection.h"
#include "src/core/ordered_store.h"
#include "src/core/xpath_eval.h"
#include "src/xml/xml_generator.h"
#include "src/xml/xml_parser.h"
#include "src/xml/xml_writer.h"

namespace oxml {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name + "_" +
         std::to_string(::getpid()) + ".db";
}

TEST(PersistenceTest, TablesSurviveReopen) {
  std::string path = TempPath("reopen_tables");
  {
    auto dbr = Database::Open({.file_path = path});
    ASSERT_TRUE(dbr.ok());
    std::unique_ptr<Database> db = std::move(dbr).value();
    ASSERT_TRUE(db->Execute("CREATE TABLE t (id INT, name TEXT)").ok());
    ASSERT_TRUE(db->Execute("CREATE UNIQUE INDEX t_id ON t (id)").ok());
    for (int i = 0; i < 500; ++i) {
      ASSERT_TRUE(db
                      ->Execute("INSERT INTO t VALUES (" + std::to_string(i) +
                                ", 'name" + std::to_string(i) + "')")
                      .ok());
    }
    ASSERT_TRUE(db->Checkpoint().ok());
  }  // destructor checkpoints + flushes

  auto dbr = Database::Open({.file_path = path, .open_existing = true});
  ASSERT_TRUE(dbr.ok()) << dbr.status();
  std::unique_ptr<Database> db = std::move(dbr).value();

  auto rs = db->Query("SELECT COUNT(*) FROM t");
  ASSERT_TRUE(rs.ok()) << rs.status();
  EXPECT_EQ(rs->rows[0][0].AsInt(), 500);

  // The rebuilt index answers point queries and enforces uniqueness.
  auto plan = db->Explain("SELECT name FROM t WHERE id = 123");
  ASSERT_TRUE(plan.ok());
  EXPECT_NE(plan->find("IndexScan"), std::string::npos) << *plan;
  rs = db->Query("SELECT name FROM t WHERE id = 123");
  ASSERT_TRUE(rs.ok());
  ASSERT_EQ(rs->rows.size(), 1u);
  EXPECT_EQ(rs->rows[0][0].AsString(), "name123");
  EXPECT_FALSE(db->Execute("INSERT INTO t VALUES (123, 'dup')").ok());

  // And the reopened database accepts further writes.
  ASSERT_TRUE(db->Execute("INSERT INTO t VALUES (1000, 'late')").ok());
  rs = db->Query("SELECT COUNT(*) FROM t");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->rows[0][0].AsInt(), 501);
}

TEST(PersistenceTest, OverflowRowsSurviveReopen) {
  std::string path = TempPath("reopen_overflow");
  std::string big(50000, 'k');
  {
    auto dbr = Database::Open({.file_path = path});
    ASSERT_TRUE(dbr.ok());
    std::unique_ptr<Database> db = std::move(dbr).value();
    ASSERT_TRUE(db->Execute("CREATE TABLE t (id INT, body TEXT)").ok());
    ASSERT_TRUE(db->Execute("INSERT INTO t VALUES (1, '" + big + "')").ok());
  }
  auto dbr = Database::Open({.file_path = path, .open_existing = true});
  ASSERT_TRUE(dbr.ok()) << dbr.status();
  auto rs = (*dbr)->Query("SELECT body FROM t WHERE id = 1");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->rows[0][0].AsString(), big);
}

TEST(PersistenceTest, OpenExistingOnFreshPathCreatesDatabase) {
  std::string path = TempPath("fresh_via_open_existing");
  ::unlink(path.c_str());
  auto dbr = Database::Open({.file_path = path, .open_existing = true});
  ASSERT_TRUE(dbr.ok()) << dbr.status();
  EXPECT_TRUE((*dbr)->Execute("CREATE TABLE t (a INT)").ok());
}

TEST(PersistenceTest, RejectsGarbageFiles) {
  std::string path = TempPath("garbage");
  {
    FILE* f = fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::string junk(kPageSize, 'j');
    fwrite(junk.data(), 1, junk.size(), f);
    fclose(f);
  }
  auto dbr = Database::Open({.file_path = path, .open_existing = true});
  EXPECT_FALSE(dbr.ok());
  EXPECT_TRUE(dbr.status().IsIOError()) << dbr.status();
}

class StorePersistenceTest : public ::testing::TestWithParam<OrderEncoding> {
};

TEST_P(StorePersistenceTest, OrderedStoreSurvivesReopen) {
  std::string path = TempPath(std::string("store_") +
                              OrderEncodingToString(GetParam()));
  NewsGeneratorOptions gen;
  gen.seed = 77;
  gen.sections = 6;
  gen.paragraphs_per_section = 4;
  auto doc = GenerateNewsXml(gen);
  std::string original_xml;

  {
    auto dbr = Database::Open({.file_path = path});
    ASSERT_TRUE(dbr.ok());
    std::unique_ptr<Database> db = std::move(dbr).value();
    auto sr = OrderedXmlStore::Create(db.get(), GetParam(), {.gap = 8});
    ASSERT_TRUE(sr.ok());
    std::unique_ptr<OrderedXmlStore> store = std::move(sr).value();
    ASSERT_TRUE(store->LoadDocument(*doc).ok());
    auto rebuilt = store->ReconstructDocument();
    ASSERT_TRUE(rebuilt.ok());
    original_xml = WriteXml(**rebuilt);
  }

  auto dbr = Database::Open({.file_path = path, .open_existing = true});
  ASSERT_TRUE(dbr.ok()) << dbr.status();
  std::unique_ptr<Database> db = std::move(dbr).value();
  auto sr = OrderedXmlStore::Attach(db.get(), GetParam(), {.gap = 8});
  ASSERT_TRUE(sr.ok()) << sr.status();
  std::unique_ptr<OrderedXmlStore> store = std::move(sr).value();

  // Full fidelity after reopen.
  ASSERT_TRUE(store->Validate().ok()) << store->Validate();
  auto rebuilt = store->ReconstructDocument();
  ASSERT_TRUE(rebuilt.ok());
  EXPECT_EQ(WriteXml(**rebuilt), original_xml);

  // Queries and further ordered updates work.
  auto sections = EvaluateXPath(store.get(), "/nitf/body/section");
  ASSERT_TRUE(sections.ok());
  EXPECT_EQ(sections->size(), 6u);
  auto frag = ParseXml("<section id=\"after-reopen\"><para>x</para></section>");
  ASSERT_TRUE(frag.ok());
  auto stats = store->InsertSubtree((*sections)[2], InsertPosition::kBefore,
                                    *(*frag)->root_element());
  ASSERT_TRUE(stats.ok()) << stats.status();
  ASSERT_TRUE(store->Validate().ok()) << store->Validate();
  EXPECT_EQ(EvaluateXPath(store.get(), "/nitf/body/section")->size(), 7u);
}

TEST_P(StorePersistenceTest, SurvivesReopenUnderTinyBufferPool) {
  // A 6-frame pool cannot hold the working set: loading and updating force
  // evictions (write-backs mid-transaction are forbidden by the no-steal
  // policy, so the pool must grow for txn-dirty pages and shrink back), and
  // reopening with the same tiny pool re-reads everything from disk.
  std::string path = TempPath(std::string("tinypool_") +
                              OrderEncodingToString(GetParam()));
  NewsGeneratorOptions gen;
  gen.seed = 31;
  gen.sections = 8;
  gen.paragraphs_per_section = 5;
  auto doc = GenerateNewsXml(gen);
  std::string expected_xml;

  {
    auto dbr = Database::Open({.file_path = path, .buffer_capacity = 6});
    ASSERT_TRUE(dbr.ok());
    std::unique_ptr<Database> db = std::move(dbr).value();
    auto sr = OrderedXmlStore::Create(db.get(), GetParam(), {.gap = 4});
    ASSERT_TRUE(sr.ok());
    std::unique_ptr<OrderedXmlStore> store = std::move(sr).value();
    ASSERT_TRUE(store->LoadDocument(*doc).ok());
    auto sections = EvaluateXPath(store.get(), "/nitf/body/section");
    ASSERT_TRUE(sections.ok());
    auto frag = ParseXml("<section id=\"evict\"><para>tiny pool</para>"
                         "</section>");
    ASSERT_TRUE(frag.ok());
    ASSERT_TRUE(store
                    ->InsertSubtree((*sections)[3], InsertPosition::kBefore,
                                    *(*frag)->root_element())
                    .ok());
    ASSERT_TRUE(store->Validate().ok());
    auto rebuilt = store->ReconstructDocument();
    ASSERT_TRUE(rebuilt.ok());
    expected_xml = WriteXml(**rebuilt);
    ASSERT_TRUE(db->Checkpoint().ok());
    ASSERT_TRUE(db->Close().ok());
  }

  auto dbr = Database::Open({.file_path = path,
                             .buffer_capacity = 6,
                             .open_existing = true});
  ASSERT_TRUE(dbr.ok()) << dbr.status();
  std::unique_ptr<Database> db = std::move(dbr).value();
  auto sr = OrderedXmlStore::Attach(db.get(), GetParam(), {.gap = 4});
  ASSERT_TRUE(sr.ok()) << sr.status();
  std::unique_ptr<OrderedXmlStore> store = std::move(sr).value();
  ASSERT_TRUE(store->Validate().ok()) << store->Validate();
  auto rebuilt = store->ReconstructDocument();
  ASSERT_TRUE(rebuilt.ok()) << rebuilt.status();
  EXPECT_EQ(WriteXml(**rebuilt), expected_xml);
}

TEST_P(StorePersistenceTest, AttachRejectsWrongEncoding) {
  std::string path = TempPath(std::string("wrongenc_") +
                              OrderEncodingToString(GetParam()));
  {
    auto dbr = Database::Open({.file_path = path});
    ASSERT_TRUE(dbr.ok());
    auto sr = OrderedXmlStore::Create(dbr->get(), GetParam(), {.gap = 8});
    ASSERT_TRUE(sr.ok());
    auto doc = ParseXml("<r><a/></r>");
    ASSERT_TRUE(doc.ok());
    ASSERT_TRUE((*sr)->LoadDocument(**doc).ok());
  }
  auto dbr = Database::Open({.file_path = path, .open_existing = true});
  ASSERT_TRUE(dbr.ok());
  OrderEncoding other = GetParam() == OrderEncoding::kDewey
                            ? OrderEncoding::kGlobal
                            : OrderEncoding::kDewey;
  auto attach = OrderedXmlStore::Attach(dbr->get(), other, {.gap = 8});
  EXPECT_FALSE(attach.ok());
  EXPECT_TRUE(attach.status().IsInvalidArgument()) << attach.status();
}

INSTANTIATE_TEST_SUITE_P(AllEncodings, StorePersistenceTest,
                         ::testing::Values(OrderEncoding::kGlobal,
                                           OrderEncoding::kLocal,
                                           OrderEncoding::kDewey),
                         [](const auto& info) {
                           return OrderEncodingToString(info.param);
                         });

}  // namespace
}  // namespace oxml

namespace oxml {
namespace {

TEST(PersistenceTest, CollectionSurvivesReopen) {
  std::string path = TempPath("reopen_collection");
  {
    auto dbr = Database::Open({.file_path = path});
    ASSERT_TRUE(dbr.ok());
    std::unique_ptr<Database> db = std::move(dbr).value();
    auto cr = DocumentCollection::Create(db.get(), OrderEncoding::kDewey,
                                         {.gap = 8}, "arch");
    ASSERT_TRUE(cr.ok());
    std::unique_ptr<DocumentCollection> coll = std::move(cr).value();
    for (int d = 0; d < 3; ++d) {
      NewsGeneratorOptions gen;
      gen.seed = 500 + d;
      gen.sections = 2 + d;
      gen.paragraphs_per_section = 2;
      auto doc = GenerateNewsXml(gen);
      ASSERT_TRUE(coll->AddDocument("doc" + std::to_string(d), *doc).ok());
    }
  }

  auto dbr = Database::Open({.file_path = path, .open_existing = true});
  ASSERT_TRUE(dbr.ok()) << dbr.status();
  std::unique_ptr<Database> db = std::move(dbr).value();
  auto cr = DocumentCollection::Attach(db.get(), OrderEncoding::kDewey,
                                       {.gap = 8}, "arch");
  ASSERT_TRUE(cr.ok()) << cr.status();
  std::unique_ptr<DocumentCollection> coll = std::move(cr).value();
  EXPECT_EQ(coll->size(), 3u);
  EXPECT_EQ(coll->DocumentNames(),
            (std::vector<std::string>{"doc0", "doc1", "doc2"}));

  auto matches = coll->QueryAll("/nitf/body/section");
  ASSERT_TRUE(matches.ok()) << matches.status();
  EXPECT_EQ(matches->size(), 2u + 3u + 4u);

  // New documents get fresh ids (no table-name collisions after reopen).
  auto extra = GenerateNewsXml({.seed = 999, .sections = 1,
                                .paragraphs_per_section = 1});
  ASSERT_TRUE(coll->AddDocument("late", *extra).ok());
  EXPECT_EQ(coll->size(), 4u);
  auto late = coll->GetDocument("late");
  ASSERT_TRUE(late.ok());
  EXPECT_EQ((*late)->table_name(), "arch_4");
}

TEST(PersistenceTest, CloseReportsStatusAndIsIdempotent) {
  std::string path = TempPath("close_status");
  auto dbr = Database::Open({.file_path = path});
  ASSERT_TRUE(dbr.ok());
  std::unique_ptr<Database> db = std::move(dbr).value();
  ASSERT_TRUE(db->Execute("CREATE TABLE t (a INT)").ok());
  ASSERT_TRUE(db->Execute("INSERT INTO t VALUES (1)").ok());
  EXPECT_TRUE(db->Close().ok());
  EXPECT_TRUE(db->Close().ok());  // idempotent
  // A closed database refuses further work instead of corrupting anything.
  EXPECT_FALSE(db->Execute("INSERT INTO t VALUES (2)").ok());
  EXPECT_FALSE(db->Checkpoint().ok());
  EXPECT_FALSE(db->Begin().ok());
}

TEST(PersistenceTest, CommitsSurviveACrashWithoutCheckpoint) {
  // Nothing here ever checkpoints: the data file still holds the initial
  // empty catalog when the process "dies", and every row must come back
  // from WAL replay alone.
  std::string path = TempPath("crash_no_checkpoint");
  {
    auto dbr = Database::Open({.file_path = path});
    ASSERT_TRUE(dbr.ok());
    std::unique_ptr<Database> db = std::move(dbr).value();
    ASSERT_TRUE(db->Execute("CREATE TABLE t (id INT, name TEXT)").ok());
    for (int i = 0; i < 100; ++i) {
      ASSERT_TRUE(db
                      ->Execute("INSERT INTO t VALUES (" + std::to_string(i) +
                                ", 'row" + std::to_string(i) + "')")
                      .ok());
    }
    db->SimulateCrashForTesting();
  }
  auto dbr = Database::Open({.file_path = path, .open_existing = true});
  ASSERT_TRUE(dbr.ok()) << dbr.status();
  auto rs = (*dbr)->Query("SELECT COUNT(*) FROM t");
  ASSERT_TRUE(rs.ok()) << rs.status();
  EXPECT_EQ(rs->rows[0][0].AsInt(), 100);
  rs = (*dbr)->Query("SELECT name FROM t WHERE id = 57");
  ASSERT_TRUE(rs.ok());
  ASSERT_EQ(rs->rows.size(), 1u);
  EXPECT_EQ(rs->rows[0][0].AsString(), "row57");
}

TEST(PersistenceTest, RolledBackTransactionLeavesNoTrace) {
  std::string path = TempPath("rollback_trace");
  {
    auto dbr = Database::Open({.file_path = path});
    ASSERT_TRUE(dbr.ok());
    std::unique_ptr<Database> db = std::move(dbr).value();
    ASSERT_TRUE(db->Execute("CREATE TABLE t (a INT)").ok());
    ASSERT_TRUE(db->Execute("INSERT INTO t VALUES (1)").ok());
    ASSERT_TRUE(db->Begin().ok());
    ASSERT_TRUE(db->Execute("INSERT INTO t VALUES (2)").ok());
    ASSERT_TRUE(db->Execute("INSERT INTO t VALUES (3)").ok());
    ASSERT_TRUE(db->Rollback().ok());
    auto rs = db->Query("SELECT COUNT(*) FROM t");
    ASSERT_TRUE(rs.ok());
    EXPECT_EQ(rs->rows[0][0].AsInt(), 1);  // rolled back in-process
  }
  auto dbr = Database::Open({.file_path = path, .open_existing = true});
  ASSERT_TRUE(dbr.ok());
  auto rs = (*dbr)->Query("SELECT COUNT(*) FROM t");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->rows[0][0].AsInt(), 1);  // and on disk
}

TEST(PersistenceTest, AttachMissingCollectionFails) {
  auto dbr = Database::Open();
  ASSERT_TRUE(dbr.ok());
  auto cr = DocumentCollection::Attach(dbr->get(), OrderEncoding::kDewey,
                                       {.gap = 8}, "nope");
  EXPECT_FALSE(cr.ok());
  EXPECT_TRUE(cr.status().IsNotFound());
}

}  // namespace
}  // namespace oxml
