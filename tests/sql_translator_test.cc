// Whole-path SQL translation tests: for every supported query the single
// generated SQL statement must return exactly what the step-by-step driver
// returns, in the same (document) order.

#include <gtest/gtest.h>

#include <memory>

#include "src/core/sql_translator.h"
#include "src/core/xpath_eval.h"
#include "src/xml/xml_parser.h"

namespace oxml {
namespace {

constexpr const char* kDoc = R"(
<doc>
  <head><title>t0</title></head>
  <body>
    <section id="s1"><title>alpha</title><para>p1</para><para>p2</para></section>
    <section id="s2"><title>beta</title><para>p3</para></section>
    <section id="s3"><title>gamma</title><para>p4</para><para>p5</para><para>p6</para></section>
  </body>
</doc>)";

class SqlTranslatorTest : public ::testing::TestWithParam<OrderEncoding> {
 protected:
  void SetUp() override {
    auto dbr = Database::Open();
    ASSERT_TRUE(dbr.ok());
    db_ = std::move(dbr).value();
    auto sr = OrderedXmlStore::Create(db_.get(), GetParam(), {.gap = 8});
    ASSERT_TRUE(sr.ok());
    store_ = std::move(sr).value();
    auto doc = ParseXml(kDoc);
    ASSERT_TRUE(doc.ok());
    ASSERT_TRUE(store_->LoadDocument(**doc).ok());
  }

  bool IsLocal() const { return GetParam() == OrderEncoding::kLocal; }

  /// Asserts translation-mode results == driver-mode results (same nodes,
  /// same order).
  void ExpectAgreesWithDriver(const std::string& xpath) {
    auto via_sql = EvaluateXPathViaSql(store_.get(), xpath);
    ASSERT_TRUE(via_sql.ok()) << xpath << ": " << via_sql.status();
    auto via_driver = EvaluateXPath(store_.get(), xpath);
    ASSERT_TRUE(via_driver.ok()) << xpath << ": " << via_driver.status();
    ASSERT_EQ(via_sql->size(), via_driver->size()) << xpath;
    for (size_t i = 0; i < via_sql->size(); ++i) {
      EXPECT_EQ(NodeIdentity(GetParam(), (*via_sql)[i]),
                NodeIdentity(GetParam(), (*via_driver)[i]))
          << xpath << " result " << i;
    }
  }

  std::unique_ptr<Database> db_;
  std::unique_ptr<OrderedXmlStore> store_;
};

TEST_P(SqlTranslatorTest, ChildPath) {
  ExpectAgreesWithDriver("/doc");
  ExpectAgreesWithDriver("/doc/body");
  ExpectAgreesWithDriver("/doc/body/section");
  ExpectAgreesWithDriver("/doc/body/section/para");
  ExpectAgreesWithDriver("/doc/body/section/para/text()");
  ExpectAgreesWithDriver("/nope/nothing");
}

TEST_P(SqlTranslatorTest, WildcardPath) {
  ExpectAgreesWithDriver("/doc/*");
  ExpectAgreesWithDriver("/doc/body/*");
}

TEST_P(SqlTranslatorTest, DescendantPath) {
  if (IsLocal()) {
    auto r = TranslateXPathToSql(*store_, "//para");
    EXPECT_FALSE(r.ok());
    EXPECT_TRUE(r.status().IsNotImplemented())
        << "local descendant needs a recursive join";
    return;
  }
  ExpectAgreesWithDriver("//para");
  ExpectAgreesWithDriver("//section");
  ExpectAgreesWithDriver("/doc//title");
  ExpectAgreesWithDriver("//body//para");
}

TEST_P(SqlTranslatorTest, AttributePredicate) {
  ExpectAgreesWithDriver("/doc/body/section[@id = 's2']");
  ExpectAgreesWithDriver("/doc/body/section[@id != 's2']/title");
  ExpectAgreesWithDriver("/doc/body/section[@id = 'zzz']");
}

TEST_P(SqlTranslatorTest, ChildValuePredicate) {
  ExpectAgreesWithDriver("/doc/body/section[title = 'beta']");
  ExpectAgreesWithDriver("/doc/body/section[title = 'beta']/para");
}

TEST_P(SqlTranslatorTest, SelfValuePredicate) {
  ExpectAgreesWithDriver("/doc/body/section/para[. = 'p3']");
}

TEST_P(SqlTranslatorTest, ParentAxisJoins) {
  ExpectAgreesWithDriver("/doc/body/section/para/parent::section");
  ExpectAgreesWithDriver("/doc/body/section/title/../para");
  // Ancestor needs recursion: rejected.
  auto r = TranslateXPathToSql(*store_, "/doc/body/section/ancestor::doc");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotImplemented());
}

TEST_P(SqlTranslatorTest, AttributeAxisFinalStep) {
  ExpectAgreesWithDriver("/doc/body/section/@id");
}

TEST_P(SqlTranslatorTest, GeneratedSqlShape) {
  auto sql = TranslateXPathToSql(*store_, "/doc/body/section");
  ASSERT_TRUE(sql.ok()) << sql.status();
  EXPECT_NE(sql->find("SELECT DISTINCT"), std::string::npos) << *sql;
  EXPECT_NE(sql->find("ORDER BY"), std::string::npos) << *sql;
  // Three aliases, one per step.
  EXPECT_NE(sql->find(" n1"), std::string::npos);
  EXPECT_NE(sql->find(" n3"), std::string::npos);
}

TEST_P(SqlTranslatorTest, UnsupportedConstructsAreRejected) {
  auto r = TranslateXPathToSql(*store_, "/doc/body/section[2]");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotImplemented());

  r = TranslateXPathToSql(*store_, "/doc/body/section[last()]");
  EXPECT_FALSE(r.ok());

  r = TranslateXPathToSql(*store_,
                          "/doc/body/section/following-sibling::section");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotImplemented());
}

TEST_P(SqlTranslatorTest, DistinctRemovesOverlapDuplicates) {
  if (IsLocal()) return;  // descendants untranslatable for local
  auto r = EvaluateXPathViaSql(store_.get(), "//body//para");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 6u);
}

INSTANTIATE_TEST_SUITE_P(AllEncodings, SqlTranslatorTest,
                         ::testing::Values(OrderEncoding::kGlobal,
                                           OrderEncoding::kLocal,
                                           OrderEncoding::kDewey),
                         [](const auto& info) {
                           return OrderEncodingToString(info.param);
                         });

}  // namespace
}  // namespace oxml
