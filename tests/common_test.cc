// Tests for the common utilities: Status/Result, strings, Random.

#include <gtest/gtest.h>

#include "src/common/random.h"
#include "src/common/result.h"
#include "src/common/status.h"
#include "src/common/strings.h"

namespace oxml {
namespace {

TEST(StatusTest, OkAndErrors) {
  Status ok = Status::OK();
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.ToString(), "OK");

  Status err = Status::NotFound("missing thing");
  EXPECT_FALSE(err.ok());
  EXPECT_TRUE(err.IsNotFound());
  EXPECT_FALSE(err.IsParseError());
  EXPECT_EQ(err.ToString(), "NotFound: missing thing");
  EXPECT_EQ(err.message(), "missing thing");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kParseError), "ParseError");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kIOError), "IOError");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kAborted), "Aborted");
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x * 2;
}

Result<int> Chain(int x) {
  OXML_ASSIGN_OR_RETURN(int doubled, ParsePositive(x));
  return doubled + 1;
}

TEST(ResultTest, ValueAndError) {
  Result<int> good = ParsePositive(21);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(*good, 42);
  EXPECT_EQ(good.ValueOr(-1), 42);

  Result<int> bad = ParsePositive(-1);
  EXPECT_FALSE(bad.ok());
  EXPECT_TRUE(bad.status().IsInvalidArgument());
  EXPECT_EQ(bad.ValueOr(-1), -1);
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto r1 = Chain(5);
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(*r1, 11);
  auto r2 = Chain(-5);
  EXPECT_FALSE(r2.ok());
}

TEST(StringsTest, JoinSplitTrim) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Split("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Trim("  hi \n"), "hi");
  EXPECT_EQ(Trim("\t\t"), "");
}

TEST(StringsTest, CaseHelpers) {
  EXPECT_EQ(ToLower("MiXeD"), "mixed");
  EXPECT_EQ(ToUpper("MiXeD"), "MIXED");
  EXPECT_TRUE(EqualsIgnoreCase("SELECT", "select"));
  EXPECT_FALSE(EqualsIgnoreCase("SELECT", "selec"));
  EXPECT_TRUE(StartsWith("hello world", "hello"));
  EXPECT_FALSE(StartsWith("he", "hello"));
}

TEST(StringsTest, SqlQuoteEscapesQuotes) {
  EXPECT_EQ(SqlQuote("abc"), "'abc'");
  EXPECT_EQ(SqlQuote("a'b"), "'a''b'");
  EXPECT_EQ(SqlQuote(""), "''");
}

TEST(StringsTest, ToHex) {
  EXPECT_EQ(ToHex(std::string("\x00\x1F\xFF", 3)), "001fff");
  EXPECT_EQ(ToHex(""), "");
}

TEST(RandomTest, DeterministicAndInRange) {
  Random r1(7), r2(7);
  for (int i = 0; i < 100; ++i) {
    int64_t a = r1.Uniform(0, 10);
    int64_t b = r2.Uniform(0, 10);
    EXPECT_EQ(a, b);
    EXPECT_GE(a, 0);
    EXPECT_LE(a, 10);
  }
}

TEST(RandomTest, WordAndSkew) {
  Random rng(3);
  for (int i = 0; i < 50; ++i) {
    std::string w = rng.Word(2, 5);
    EXPECT_GE(w.size(), 2u);
    EXPECT_LE(w.size(), 5u);
    int64_t s = rng.Skewed(100);
    EXPECT_GE(s, 0);
    EXPECT_LT(s, 100);
  }
}

}  // namespace
}  // namespace oxml
