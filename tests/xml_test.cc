// XML substrate tests: parser, writer, DOM operations, generators.

#include <gtest/gtest.h>

#include "src/xml/xml_generator.h"
#include "src/xml/xml_node.h"
#include "src/xml/xml_parser.h"
#include "src/xml/xml_writer.h"

namespace oxml {
namespace {

TEST(XmlParserTest, SimpleDocument) {
  auto doc = ParseXml("<a><b>hi</b><c x=\"1\"/></a>");
  ASSERT_TRUE(doc.ok()) << doc.status();
  XmlNode* root = (*doc)->root_element();
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->name(), "a");
  ASSERT_EQ(root->child_count(), 2u);
  EXPECT_EQ(root->child(0)->name(), "b");
  EXPECT_EQ(root->child(0)->InnerText(), "hi");
  ASSERT_NE(root->child(1)->attribute("x"), nullptr);
  EXPECT_EQ(*root->child(1)->attribute("x"), "1");
}

TEST(XmlParserTest, DeclarationAndDoctype) {
  auto doc = ParseXml(
      "<?xml version=\"1.0\"?>\n<!DOCTYPE a [<!ELEMENT a ANY>]>\n<a/>");
  ASSERT_TRUE(doc.ok()) << doc.status();
  EXPECT_EQ((*doc)->root_element()->name(), "a");
}

TEST(XmlParserTest, EntitiesAndCharRefs) {
  auto doc = ParseXml("<a>&lt;&gt;&amp;&apos;&quot;&#65;&#x42;</a>");
  ASSERT_TRUE(doc.ok()) << doc.status();
  EXPECT_EQ((*doc)->root_element()->InnerText(), "<>&'\"AB");
}

TEST(XmlParserTest, Utf8CharRef) {
  auto doc = ParseXml("<a>&#233;&#x20AC;</a>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ((*doc)->root_element()->InnerText(), "\xC3\xA9\xE2\x82\xAC");
}

TEST(XmlParserTest, Cdata) {
  auto doc = ParseXml("<a><![CDATA[<raw> & text]]></a>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ((*doc)->root_element()->InnerText(), "<raw> & text");
}

TEST(XmlParserTest, CommentsAndPis) {
  auto doc = ParseXml("<a><!--note--><?target data?><b/></a>");
  ASSERT_TRUE(doc.ok());
  XmlNode* root = (*doc)->root_element();
  ASSERT_EQ(root->child_count(), 3u);
  EXPECT_EQ(root->child(0)->kind(), XmlNodeKind::kComment);
  EXPECT_EQ(root->child(0)->value(), "note");
  EXPECT_EQ(root->child(1)->kind(), XmlNodeKind::kProcessingInstruction);
  EXPECT_EQ(root->child(1)->name(), "target");
  EXPECT_EQ(root->child(1)->value(), "data");
}

TEST(XmlParserTest, SkipsInsignificantWhitespaceByDefault) {
  auto doc = ParseXml("<a>\n  <b/>\n  <c/>\n</a>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ((*doc)->root_element()->child_count(), 2u);

  XmlParseOptions opts;
  opts.skip_insignificant_whitespace = false;
  doc = ParseXml("<a>\n  <b/>\n  <c/>\n</a>", opts);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ((*doc)->root_element()->child_count(), 5u);
}

TEST(XmlParserTest, Errors) {
  EXPECT_FALSE(ParseXml("").ok());
  EXPECT_FALSE(ParseXml("<a>").ok());
  EXPECT_FALSE(ParseXml("<a></b>").ok());
  EXPECT_FALSE(ParseXml("<a x=1/>").ok());
  EXPECT_FALSE(ParseXml("<a x=\"1\" x=\"2\"/>").ok());
  EXPECT_FALSE(ParseXml("<a>&nope;</a>").ok());
  EXPECT_FALSE(ParseXml("<a/><b/>").ok());
  EXPECT_FALSE(ParseXml("text only").ok());
  auto r = ParseXml("<a><b></a>");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsParseError());
}

TEST(XmlWriterTest, RoundTrip) {
  const std::string xml =
      "<a q=\"v\"><b>one</b><c><!--x--><d i=\"2\">two</d></c></a>";
  auto doc = ParseXml(xml);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(WriteXml(**doc), xml);
}

TEST(XmlWriterTest, EscapesSpecials) {
  auto root = XmlNode::Element("a");
  root->SetAttribute("k", "a\"b<c>");
  root->AppendChild(XmlNode::Text("x < y & z"));
  std::string out = WriteXml(*root);
  EXPECT_EQ(out, "<a k=\"a&quot;b&lt;c&gt;\">x &lt; y &amp; z</a>");
  // And it parses back to the same tree.
  auto doc = ParseXml(out);
  ASSERT_TRUE(doc.ok());
  EXPECT_TRUE((*doc)->root_element()->StructurallyEqual(*root));
}

TEST(XmlWriterTest, PrettyPrint) {
  auto doc = ParseXml("<a><b>x</b></a>");
  ASSERT_TRUE(doc.ok());
  std::string out = WriteXml(**doc, {.indent = 2});
  EXPECT_NE(out.find("\n  <b>"), std::string::npos);
}

TEST(XmlNodeTest, TreeMutations) {
  auto root = XmlNode::Element("r");
  XmlNode* a = root->AppendChild(XmlNode::Element("a"));
  root->AppendChild(XmlNode::Element("c"));
  XmlNode* b = root->InsertChild(1, XmlNode::Element("b"));
  EXPECT_EQ(root->child(0), a);
  EXPECT_EQ(root->child(1), b);
  EXPECT_EQ(b->parent(), root.get());
  EXPECT_EQ(b->IndexInParent(), 1u);

  auto removed = root->RemoveChild(0);
  EXPECT_EQ(removed->name(), "a");
  EXPECT_EQ(removed->parent(), nullptr);
  EXPECT_EQ(root->child_count(), 2u);
}

TEST(XmlNodeTest, CloneIsDeepAndEqual) {
  auto doc = ParseXml("<a x=\"1\"><b>t</b><c><d/></c></a>");
  ASSERT_TRUE(doc.ok());
  XmlNode* root = (*doc)->root_element();
  auto copy = root->Clone();
  EXPECT_TRUE(copy->StructurallyEqual(*root));
  copy->child(0)->set_name("zzz");
  EXPECT_FALSE(copy->StructurallyEqual(*root));
}

TEST(XmlNodeTest, SubtreeSizeCountsAttributes) {
  auto doc = ParseXml("<a x=\"1\" y=\"2\"><b>t</b></a>");
  ASSERT_TRUE(doc.ok());
  // a + 2 attrs + b + text = 5.
  EXPECT_EQ((*doc)->root_element()->SubtreeSize(), 5u);
}

TEST(XmlNodeTest, DepthAndCounts) {
  auto doc = GenerateDeepXml(10);
  EXPECT_EQ(doc->root_element()->SubtreeDepth(), 11u);  // chain + leaf text
}

TEST(XmlGeneratorTest, DeterministicForSeed) {
  XmlGeneratorOptions opts;
  opts.target_nodes = 500;
  opts.seed = 11;
  auto d1 = GenerateXml(opts);
  auto d2 = GenerateXml(opts);
  EXPECT_TRUE(d1->root()->StructurallyEqual(*d2->root()));
  opts.seed = 12;
  auto d3 = GenerateXml(opts);
  EXPECT_FALSE(d1->root()->StructurallyEqual(*d3->root()));
}

TEST(XmlGeneratorTest, RespectsTargetSize) {
  XmlGeneratorOptions opts;
  opts.target_nodes = 3000;
  auto doc = GenerateXml(opts);
  size_t n = doc->TotalNodes();
  EXPECT_GE(n, 3000u);
  EXPECT_LE(n, 3600u);  // slight overshoot from finishing the last subtree
}

TEST(XmlGeneratorTest, GeneratedXmlParsesBack) {
  XmlGeneratorOptions opts;
  opts.target_nodes = 800;
  auto doc = GenerateXml(opts);
  std::string xml = WriteXml(*doc);
  auto again = ParseXml(xml);
  ASSERT_TRUE(again.ok()) << again.status();
  EXPECT_TRUE((*again)->root()->StructurallyEqual(*doc->root()));
}

TEST(XmlGeneratorTest, NewsDocumentShape) {
  NewsGeneratorOptions opts;
  opts.sections = 5;
  opts.paragraphs_per_section = 4;
  auto doc = GenerateNewsXml(opts);
  XmlNode* nitf = doc->root_element();
  ASSERT_NE(nitf, nullptr);
  EXPECT_EQ(nitf->name(), "nitf");
  XmlNode* body = nitf->FirstChildElement("body");
  ASSERT_NE(body, nullptr);
  EXPECT_EQ(body->child_count(), 5u);
  // Each section: title + 4 paras.
  EXPECT_EQ(body->child(0)->child_count(), 5u);
}

TEST(XmlGeneratorTest, WideAndDeepShapes) {
  auto wide = GenerateWideXml(100);
  EXPECT_EQ(wide->root_element()->child_count(), 100u);
  auto deep = GenerateDeepXml(50);
  EXPECT_EQ(deep->root_element()->SubtreeDepth(), 51u);
}

}  // namespace
}  // namespace oxml
