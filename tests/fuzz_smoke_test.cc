// Tier-1 gate for the differential fuzz harness (tests/fuzz/): a bounded,
// fixed-seed run must complete with zero divergences across all three
// encodings, and every checked-in repro for a previously-fixed bug must
// replay clean. CI additionally runs a larger range under ASan/UBSan (the
// fuzz-smoke job); this test keeps the harness itself honest on every
// ctest invocation.

#include <gtest/gtest.h>

#include <filesystem>

#include "tests/fuzz/fuzz_harness.h"

namespace oxml {
namespace fuzz {
namespace {

TEST(FuzzSmokeTest, FixedSeedsRunClean) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    FuzzCase c = GenerateCase(seed, 40);
    auto failure = RunCase(&c);
    EXPECT_FALSE(failure.has_value())
        << "seed " << seed << ": " << failure->Describe() << "\nrepro:\n"
        << SerializeCase(c);
  }
}

TEST(FuzzSmokeTest, CasesRoundTripThroughReproFormat) {
  FuzzCase c = GenerateCase(3, 30);
  std::string text = SerializeCase(c);
  auto parsed = ParseCase(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(SerializeCase(*parsed), text);
  ASSERT_EQ(parsed->ops.size(), c.ops.size());
  for (size_t i = 0; i < c.ops.size(); ++i) {
    EXPECT_EQ(parsed->ops[i].ToString(), c.ops[i].ToString()) << i;
  }
  // Durable mode and crash points survive the round trip too.
  c.durable = true;
  FuzzOp crash;
  crash.kind = FuzzOp::Kind::kCrashRecover;
  c.ops.push_back(crash);
  parsed = ParseCase(SerializeCase(c));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(parsed->durable);
  EXPECT_EQ(parsed->ops.back().ToString(), "op crashrecover");
}

TEST(FuzzSmokeTest, DurableCasesCrashAndRecoverClean) {
  // File-backed, WAL-enabled runs with forced crash points: every committed
  // mutation must survive the kill + replay, on all three encodings.
  FuzzOp crash;
  crash.kind = FuzzOp::Kind::kCrashRecover;
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    FuzzCase c = GenerateCase(seed, 30);
    c.durable = true;
    c.ops.insert(c.ops.begin() + static_cast<ptrdiff_t>(c.ops.size() / 2),
                 crash);
    c.ops.push_back(crash);
    auto failure = RunCase(&c);
    EXPECT_FALSE(failure.has_value())
        << "seed " << seed << ": " << failure->Describe() << "\nrepro:\n"
        << SerializeCase(c);
  }
}

TEST(FuzzSmokeTest, CheckedInReprosReplayClean) {
  // Each file under tests/fuzz/repros/ is the minimized repro of a bug
  // fixed in this repo; it failed before the fix and must pass forever
  // after.
  std::filesystem::path dir(OXML_FUZZ_REPRO_DIR);
  ASSERT_TRUE(std::filesystem::exists(dir)) << dir;
  size_t count = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() != ".txt") continue;
    ++count;
    auto c = LoadCaseFile(entry.path().string());
    ASSERT_TRUE(c.ok()) << entry.path() << ": " << c.status().ToString();
    auto failure = RunCase(&c.value());
    EXPECT_FALSE(failure.has_value())
        << entry.path() << ": " << failure->Describe();
  }
  EXPECT_GT(count, 0u) << "no repro files found in " << dir;
}

TEST(FuzzSmokeTest, SessionModeRoutesQueriesThroughWireClients) {
  // sessions N: every query batch is verified a second time through N OXWP
  // protocol clients against a loopback server per encoding, so the whole
  // wire path (handshake, admission, statement dispatch, result framing)
  // is differential-tested against the same DOM oracle.
  for (uint64_t seed = 1; seed <= 2; ++seed) {
    FuzzCase c = GenerateCase(seed, 25);
    c.sessions = 3;
    auto failure = RunCase(&c);
    EXPECT_FALSE(failure.has_value())
        << "seed " << seed << ": " << failure->Describe() << "\nrepro:\n"
        << SerializeCase(c);
  }
  // The directive survives the repro round trip.
  FuzzCase c = GenerateCase(3, 10);
  c.sessions = 4;
  auto parsed = ParseCase(SerializeCase(c));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->sessions, 4u);
  EXPECT_EQ(SerializeCase(*parsed), SerializeCase(c));
}

TEST(FuzzSmokeTest, ShrinkerIsIdempotentOnPassingCases) {
  // ShrinkCase must never "shrink" a case that does not fail.
  FuzzCase c = GenerateCase(5, 20);
  FuzzCase shrunk = ShrinkCase(c);
  EXPECT_EQ(shrunk.ops.size(), c.ops.size());
}

}  // namespace
}  // namespace fuzz
}  // namespace oxml
