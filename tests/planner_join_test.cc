// Planner join-selection matrix: which physical join (nested-loop, hash,
// index-nested-loop, merge, structural) is chosen per axis x encoding x
// index availability, plus order-property-driven sort elision and the
// SortOp stability guarantee the XPath layer relies on.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/core/sql_translator.h"
#include "src/core/xpath_eval.h"
#include "src/relational/database.h"
#include "src/xml/xml_parser.h"

namespace oxml {
namespace {

constexpr char kDoc[] =
    "<a>"
    "<b><c>one</c><c>two</c><d/></b>"
    "<b><c>three</c></b>"
    "<e><b><c>four</c></b></e>"
    "</a>";

struct LoadedStore {
  std::unique_ptr<Database> db;
  std::unique_ptr<OrderedXmlStore> store;
};

LoadedStore Load(OrderEncoding enc, DatabaseOptions opts = {}) {
  LoadedStore out;
  auto db = Database::Open(opts);
  EXPECT_TRUE(db.ok()) << db.status();
  out.db = std::move(db).value();
  auto store = OrderedXmlStore::Create(out.db.get(), enc, StoreOptions{});
  EXPECT_TRUE(store.ok()) << store.status();
  out.store = std::move(store).value();
  auto doc = ParseXml(kDoc);
  EXPECT_TRUE(doc.ok()) << doc.status();
  EXPECT_TRUE(out.store->LoadDocument(**doc).ok());
  return out;
}

std::string PlanFor(LoadedStore& ls, const std::string& xpath) {
  auto sql = TranslateXPathToSql(*ls.store, xpath);
  EXPECT_TRUE(sql.ok()) << sql.status();
  auto plan = ls.db->Explain(*sql);
  EXPECT_TRUE(plan.ok()) << *sql << " -> " << plan.status();
  return plan.ok() ? *plan : std::string();
}

// ---------------------------------------------------------------- matrix

TEST(PlannerJoinMatrixTest, GlobalDescendantUsesStructuralJoin) {
  LoadedStore ls = Load(OrderEncoding::kGlobal);
  std::string plan = PlanFor(ls, "//b//c");
  EXPECT_NE(plan.find("StructuralJoin"), std::string::npos) << plan;
  EXPECT_EQ(plan.find("NestedLoopJoin"), std::string::npos) << plan;
}

TEST(PlannerJoinMatrixTest, GlobalChildUsesIndexNestedLoopJoin) {
  // child:: is an equi join (pord = ord) with a (pord, ord) index available.
  LoadedStore ls = Load(OrderEncoding::kGlobal);
  std::string plan = PlanFor(ls, "/a/b");
  EXPECT_NE(plan.find("IndexNestedLoopJoin"), std::string::npos) << plan;
  EXPECT_EQ(plan.find("StructuralJoin"), std::string::npos) << plan;
}

TEST(PlannerJoinMatrixTest, DeweyDescendantUsesStructuralJoin) {
  LoadedStore ls = Load(OrderEncoding::kDewey);
  std::string plan = PlanFor(ls, "//b//c");
  EXPECT_NE(plan.find("StructuralJoin"), std::string::npos) << plan;
  EXPECT_EQ(plan.find("NestedLoopJoin"), std::string::npos) << plan;
}

TEST(PlannerJoinMatrixTest, DeweyChildUsesStructuralJoinWithDepthFilter) {
  // The prefix range lowers to a structural join; the depth conjunct stays
  // behind as a residual filter on the joined rows.
  LoadedStore ls = Load(OrderEncoding::kDewey);
  std::string plan = PlanFor(ls, "/a/b");
  EXPECT_NE(plan.find("StructuralJoin"), std::string::npos) << plan;
  EXPECT_NE(plan.find("depth"), std::string::npos) << plan;
}

TEST(PlannerJoinMatrixTest, LocalChildUsesIndexNestedLoopJoin) {
  LoadedStore ls = Load(OrderEncoding::kLocal);
  std::string plan = PlanFor(ls, "/a/b");
  EXPECT_NE(plan.find("IndexNestedLoopJoin"), std::string::npos) << plan;
}

TEST(PlannerJoinMatrixTest, LocalDescendantIsNotTranslatable) {
  LoadedStore ls = Load(OrderEncoding::kLocal);
  auto sql = TranslateXPathToSql(*ls.store, "//b//c");
  EXPECT_FALSE(sql.ok());
}

TEST(PlannerJoinMatrixTest, ToggleOffFallsBackToNestedLoop) {
  DatabaseOptions opts;
  opts.enable_structural_join = false;
  LoadedStore ls = Load(OrderEncoding::kGlobal, opts);
  std::string plan = PlanFor(ls, "//b//c");
  EXPECT_EQ(plan.find("StructuralJoin"), std::string::npos) << plan;
  EXPECT_NE(plan.find("NestedLoopJoin"), std::string::npos) << plan;
}

TEST(PlannerJoinMatrixTest, UnsortedInputsGetSortedBelowStructuralJoin) {
  // Hand-written containment over a table with no index at all: the
  // planner still lowers to a structural join but must sort both sides.
  auto dbr = Database::Open();
  ASSERT_TRUE(dbr.ok());
  auto db = std::move(dbr).value();
  ASSERT_TRUE(db->Execute("CREATE TABLE iv (s INT, e INT)").ok());
  auto plan = db->Explain(
      "SELECT * FROM iv a, iv d WHERE d.s > a.s AND d.s <= a.e");
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_NE(plan->find("StructuralJoin"), std::string::npos) << *plan;
  // Both inputs are plain heap scans, so two sorts must appear.
  size_t first = plan->find("Sort(");
  ASSERT_NE(first, std::string::npos) << *plan;
  EXPECT_NE(plan->find("Sort(", first + 1), std::string::npos) << *plan;
}

TEST(PlannerJoinMatrixTest, SortedEquiJoinUsesMergeJoin) {
  auto dbr = Database::Open();
  ASSERT_TRUE(dbr.ok());
  auto db = std::move(dbr).value();
  ASSERT_TRUE(db->Execute("CREATE TABLE s (x INT, y INT)").ok());
  ASSERT_TRUE(db->Execute("CREATE INDEX s_xy ON s (x, y)").ok());
  // Both sides scan (x, y) with x pinned, so both stream sorted on y and
  // y does not lead any index (no index-nested-loop applies).
  auto plan = db->Explain(
      "SELECT * FROM s a, s b WHERE a.x = 1 AND b.x = 2 AND a.y = b.y");
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_NE(plan->find("MergeJoin"), std::string::npos) << *plan;
  EXPECT_EQ(plan->find("HashJoin"), std::string::npos) << *plan;
}

TEST(PlannerJoinMatrixTest, MergeJoinToggleOffUsesHashJoin) {
  DatabaseOptions opts;
  opts.enable_merge_join = false;
  auto dbr = Database::Open(opts);
  ASSERT_TRUE(dbr.ok());
  auto db = std::move(dbr).value();
  ASSERT_TRUE(db->Execute("CREATE TABLE s (x INT, y INT)").ok());
  ASSERT_TRUE(db->Execute("CREATE INDEX s_xy ON s (x, y)").ok());
  auto plan = db->Explain(
      "SELECT * FROM s a, s b WHERE a.x = 1 AND b.x = 2 AND a.y = b.y");
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_NE(plan->find("HashJoin"), std::string::npos) << *plan;
  EXPECT_EQ(plan->find("MergeJoin"), std::string::npos) << *plan;
}

TEST(PlannerJoinMatrixTest, UnsortedEquiJoinFallsBackToHashJoin) {
  auto dbr = Database::Open();
  ASSERT_TRUE(dbr.ok());
  auto db = std::move(dbr).value();
  ASSERT_TRUE(db->Execute("CREATE TABLE u (x INT, y INT)").ok());
  auto plan = db->Explain("SELECT * FROM u a, u b WHERE a.y = b.y");
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_NE(plan->find("HashJoin"), std::string::npos) << *plan;
  EXPECT_EQ(plan->find("MergeJoin"), std::string::npos) << *plan;
}

// ----------------------------------------------------- results + counters

TEST(PlannerJoinMatrixTest, StructuralJoinMatchesNestedLoopResults) {
  LoadedStore on = Load(OrderEncoding::kGlobal);
  DatabaseOptions off_opts;
  off_opts.enable_structural_join = false;
  off_opts.enable_sort_elision = false;
  off_opts.enable_merge_join = false;
  LoadedStore off = Load(OrderEncoding::kGlobal, off_opts);

  for (const char* xpath : {"//b//c", "//c", "/a/b/c", "/a//c"}) {
    auto a = EvaluateXPathViaSql(on.store.get(), xpath);
    auto b = EvaluateXPathViaSql(off.store.get(), xpath);
    ASSERT_TRUE(a.ok()) << xpath << " -> " << a.status();
    ASSERT_TRUE(b.ok()) << xpath << " -> " << b.status();
    ASSERT_EQ(a->size(), b->size()) << xpath;
    for (size_t i = 0; i < a->size(); ++i) {
      EXPECT_EQ((*a)[i].ord, (*b)[i].ord) << xpath << " row " << i;
    }
  }
  EXPECT_GT(on.db->stats()->joins_structural, 0u);
  EXPECT_EQ(off.db->stats()->joins_structural, 0u);
  EXPECT_GT(off.db->stats()->joins_nested_loop, 0u);
}

TEST(PlannerJoinMatrixTest, JoinStrategyCountersTrackOpens) {
  auto dbr = Database::Open();
  ASSERT_TRUE(dbr.ok());
  auto db = std::move(dbr).value();
  ASSERT_TRUE(db->Execute("CREATE TABLE s (x INT, y INT)").ok());
  ASSERT_TRUE(db->Execute("CREATE INDEX s_xy ON s (x, y)").ok());
  ASSERT_TRUE(db->Execute("INSERT INTO s VALUES (1, 10)").ok());
  ASSERT_TRUE(db->Execute("INSERT INTO s VALUES (2, 10)").ok());

  ASSERT_TRUE(
      db->Query("SELECT * FROM s a, s b WHERE a.x = 1 AND b.x = 2 AND "
                "a.y = b.y")
          .ok());
  EXPECT_EQ(db->stats()->joins_merge, 1u);

  ASSERT_TRUE(db->Query("SELECT * FROM s a, s b WHERE a.y = b.x").ok());
  EXPECT_EQ(db->stats()->joins_index_nested_loop, 1u);

  ASSERT_TRUE(db->Query("SELECT * FROM s a, s b WHERE a.x < b.y").ok());
  EXPECT_EQ(db->stats()->joins_nested_loop, 1u);
}

// ------------------------------------------------------------ sort elision

TEST(PlannerJoinMatrixTest, OrderByOnIndexOrderElidesSort) {
  LoadedStore ls = Load(OrderEncoding::kGlobal);
  const std::string& t = ls.store->table_name();
  std::string sql =
      "SELECT ord FROM " + t + " WHERE tag = 'c' ORDER BY ord";
  auto plan = ls.db->Explain(sql);
  ASSERT_TRUE(plan.ok()) << plan.status();
  // The (tag, ord) index with tag pinned already yields ord order.
  EXPECT_EQ(plan->find("Sort("), std::string::npos) << *plan;

  uint64_t before = ls.db->stats()->sorts_elided;
  auto rs = ls.db->Query(sql);
  ASSERT_TRUE(rs.ok());
  EXPECT_GT(ls.db->stats()->sorts_elided, before);

  // Same statement with elision disabled: identical rows, sort performed.
  DatabaseOptions opts;
  opts.enable_sort_elision = false;
  LoadedStore ref = Load(OrderEncoding::kGlobal, opts);
  auto ref_rs = ref.db->Query(sql);
  ASSERT_TRUE(ref_rs.ok());
  EXPECT_GT(ref.db->stats()->sorts_performed, 0u);
  ASSERT_EQ(rs->rows.size(), ref_rs->rows.size());
  for (size_t i = 0; i < rs->rows.size(); ++i) {
    EXPECT_EQ(rs->rows[i][0].AsInt(), ref_rs->rows[i][0].AsInt());
  }
}

TEST(PlannerJoinMatrixTest, MismatchedOrderByStillSorts) {
  LoadedStore ls = Load(OrderEncoding::kGlobal);
  const std::string& t = ls.store->table_name();
  // A range on tag leaves the scan sorted on (tag, ord), which does NOT
  // satisfy ORDER BY ord alone.
  auto plan =
      ls.db->Explain("SELECT ord FROM " + t + " WHERE tag > 'a' ORDER BY ord");
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_NE(plan->find("Sort("), std::string::npos) << *plan;
  // DESC never matches the ascending index order.
  plan = ls.db->Explain(
      "SELECT ord FROM " + t + " WHERE tag = 'c' ORDER BY ord DESC");
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_NE(plan->find("Sort("), std::string::npos) << *plan;
}

// -------------------------------------------------------- SortOp stability

TEST(SortStabilityTest, EqualKeysPreserveInputOrder) {
  auto dbr = Database::Open();
  ASSERT_TRUE(dbr.ok());
  auto db = std::move(dbr).value();
  ASSERT_TRUE(db->Execute("CREATE TABLE st (k INT, v INT)").ok());
  // Insertion order within each key group must survive the sort.
  const int kv[][2] = {{1, 1}, {0, 5}, {1, 2}, {0, 6}, {1, 3}, {0, 7}};
  for (const auto& p : kv) {
    ASSERT_TRUE(db->Execute("INSERT INTO st VALUES (" +
                            std::to_string(p[0]) + ", " +
                            std::to_string(p[1]) + ")")
                    .ok());
  }
  auto rs = db->Query("SELECT v FROM st ORDER BY k");
  ASSERT_TRUE(rs.ok());
  std::vector<int64_t> got;
  for (const Row& r : rs->rows) got.push_back(r[0].AsInt());
  EXPECT_EQ(got, (std::vector<int64_t>{5, 6, 7, 1, 2, 3}));
}

}  // namespace
}  // namespace oxml
