// Error-path coverage: every public API must fail loudly and precisely —
// with the right status code — rather than corrupting state or crashing.

#include <gtest/gtest.h>

#include <memory>

#include "src/core/collection.h"
#include "src/core/ordered_store.h"
#include "src/core/sql_translator.h"
#include "src/core/xpath_eval.h"
#include "src/xml/xml_parser.h"

namespace oxml {
namespace {

class ErrorPathTest : public ::testing::TestWithParam<OrderEncoding> {
 protected:
  void SetUp() override {
    auto dbr = Database::Open();
    ASSERT_TRUE(dbr.ok());
    db_ = std::move(dbr).value();
    auto sr = OrderedXmlStore::Create(db_.get(), GetParam(), {.gap = 8});
    ASSERT_TRUE(sr.ok());
    store_ = std::move(sr).value();
    auto doc = ParseXml("<r a=\"1\"><x>one</x><y>two</y></r>");
    ASSERT_TRUE(doc.ok());
    ASSERT_TRUE(store_->LoadDocument(**doc).ok());
  }

  std::unique_ptr<Database> db_;
  std::unique_ptr<OrderedXmlStore> store_;
};

TEST_P(ErrorPathTest, InsertRelativeToAttributeRejected) {
  auto root = store_->Root();
  ASSERT_TRUE(root.ok());
  auto attrs = store_->Attributes(*root, "a");
  ASSERT_TRUE(attrs.ok());
  ASSERT_EQ(attrs->size(), 1u);
  auto frag = XmlNode::Element("z");
  auto r = store_->InsertSubtree((*attrs)[0], InsertPosition::kAfter, *frag);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());
}

TEST_P(ErrorPathTest, SiblingOfRootRejectedOrImpossible) {
  auto root = store_->Root();
  ASSERT_TRUE(root.ok());
  auto frag = XmlNode::Element("z");
  auto r = store_->InsertSubtree(*root, InsertPosition::kBefore, *frag);
  // Global/Local report NotFound (no parent row); Dewey InvalidArgument.
  EXPECT_FALSE(r.ok()) << OrderEncodingToString(GetParam());
}

TEST_P(ErrorPathTest, ChildAtOutOfRange) {
  auto root = store_->Root();
  ASSERT_TRUE(root.ok());
  auto r = store_->ChildAt(*root, NodeTest::AnyNode(), 99);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsOutOfRange());
}

TEST_P(ErrorPathTest, NodeAtPathThroughLeafFails) {
  // Path descends through a text leaf: no children there.
  auto r = store_->NodeAtPath({0, 0, 0});
  EXPECT_FALSE(r.ok());
}

TEST_P(ErrorPathTest, RootOfEmptyStoreNotFound) {
  auto dbr = Database::Open();
  ASSERT_TRUE(dbr.ok());
  auto sr = OrderedXmlStore::Create(dbr->get(), GetParam(),
                                    {.gap = 8, .table_name = "empty"});
  ASSERT_TRUE(sr.ok());
  auto root = (*sr)->Root();
  EXPECT_FALSE(root.ok());
  EXPECT_TRUE(root.status().IsNotFound());
}

TEST_P(ErrorPathTest, DuplicateTableNameRejected) {
  auto sr = OrderedXmlStore::Create(db_.get(), GetParam(), {.gap = 8});
  EXPECT_FALSE(sr.ok());
  EXPECT_TRUE(sr.status().IsAlreadyExists()) << sr.status();
}

TEST_P(ErrorPathTest, BadGapRejected) {
  auto sr = OrderedXmlStore::Create(db_.get(), GetParam(),
                                    {.gap = 0, .table_name = "g0"});
  EXPECT_FALSE(sr.ok());
  EXPECT_TRUE(sr.status().IsInvalidArgument());
}

TEST_P(ErrorPathTest, XPathOnStoreErrors) {
  EXPECT_FALSE(EvaluateXPath(store_.get(), "not absolute").ok());
  EXPECT_FALSE(EvaluateXPath(store_.get(), "/r[").ok());
  // Sibling axis as the first step is rejected by the evaluator.
  auto r = EvaluateXPath(store_.get(), "/following-sibling::x");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument()) << r.status();
}

TEST_P(ErrorPathTest, StaleHandleValueUpdateReportsNotFound) {
  auto texts = EvaluateXPath(store_.get(), "/r/x/text()");
  ASSERT_TRUE(texts.ok());
  ASSERT_EQ(texts->size(), 1u);
  StoredNode stale = (*texts)[0];
  // Delete <x> entirely; the text handle goes stale.
  auto x = EvaluateXPath(store_.get(), "/r/x");
  ASSERT_TRUE(x.ok());
  ASSERT_TRUE(store_->DeleteSubtree((*x)[0]).ok());
  auto r = store_->UpdateNodeValue(stale, "zzz");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound()) << r.status();
}

TEST_P(ErrorPathTest, TranslatorRejectsUnknownTable) {
  // A store attached over a dropped table fails loudly on use.
  ASSERT_TRUE(db_->DropTable(store_->table_name()).ok());
  auto r = EvaluateXPath(store_.get(), "/r");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
}

TEST(ErrorPathDbTest, SqlStatementErrors) {
  auto dbr = Database::Open();
  ASSERT_TRUE(dbr.ok());
  std::unique_ptr<Database> db = std::move(dbr).value();
  ASSERT_TRUE(db->Execute("CREATE TABLE t (a INT)").ok());

  EXPECT_TRUE(db->Execute("CREATE TABLE t (a INT)").status()
                  .IsAlreadyExists());
  EXPECT_TRUE(db->Execute("DROP TABLE nope").status().IsNotFound());
  EXPECT_TRUE(db->Execute("INSERT INTO nope VALUES (1)").status()
                  .IsNotFound());
  EXPECT_TRUE(db->Execute("INSERT INTO t VALUES (1, 2)").status()
                  .IsInvalidArgument());  // arity
  EXPECT_TRUE(db->Execute("INSERT INTO t (zz) VALUES (1)").status()
                  .IsNotFound());
  EXPECT_TRUE(db->Execute("UPDATE t SET zz = 1").status().IsNotFound());
  EXPECT_TRUE(db->Execute("CREATE INDEX i ON t (zz)").status().IsNotFound());
  EXPECT_TRUE(db->Execute("CREATE INDEX i ON nope (a)").status()
                  .IsNotFound());
  ASSERT_TRUE(db->Execute("CREATE INDEX i ON t (a)").ok());
  EXPECT_TRUE(db->Execute("CREATE INDEX i ON t (a)").status()
                  .IsAlreadyExists());
  // Type mismatch on insert.
  EXPECT_TRUE(db->Execute("INSERT INTO t VALUES ('text')").status()
                  .IsInvalidArgument());
  // Query() refuses non-SELECT.
  EXPECT_TRUE(db->Query("INSERT INTO t VALUES (1)").status()
                  .IsInvalidArgument());
}

TEST(ErrorPathDbTest, RuntimeEvaluationErrorsSurface) {
  auto dbr = Database::Open();
  ASSERT_TRUE(dbr.ok());
  std::unique_ptr<Database> db = std::move(dbr).value();
  ASSERT_TRUE(db->Execute("CREATE TABLE t (a INT)").ok());
  ASSERT_TRUE(db->Execute("INSERT INTO t VALUES (1)").ok());
  auto r = db->Query("SELECT a / 0 FROM t");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());
  r = db->Query("SELECT SUBSTR(a, 1, 2) FROM t WHERE NOPEFN(a) = 1");
  EXPECT_FALSE(r.ok());
}

INSTANTIATE_TEST_SUITE_P(AllEncodings, ErrorPathTest,
                         ::testing::Values(OrderEncoding::kGlobal,
                                           OrderEncoding::kLocal,
                                           OrderEncoding::kDewey),
                         [](const auto& info) {
                           return OrderEncodingToString(info.param);
                         });

}  // namespace
}  // namespace oxml
