// Regression tests for ordering-correctness bugs flushed out by the
// differential fuzz harness (tests/fuzz/): NaN key ordering, lossy
// int64/double mixed comparison, malformed Dewey ordinals in Release
// builds, and XML character-reference validation.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "src/core/dewey.h"
#include "src/relational/btree.h"
#include "src/relational/key_codec.h"
#include "src/relational/value.h"
#include "src/xml/xml_parser.h"

namespace oxml {
namespace {

// ------------------------------------------------- NaN total order (keys)

double QNaN() { return std::numeric_limits<double>::quiet_NaN(); }
double NegNaN() { return std::copysign(QNaN(), -1.0); }
double Inf() { return std::numeric_limits<double>::infinity(); }

TEST(NanOrderingTest, CompareImplementsTotalOrder) {
  // IEEE-754 total order: -NaN < -inf < ... < -0.0 < +0.0 < ... < +inf
  // < +NaN. The old comparator returned 0 for any NaN operand, which made
  // NaN "equal" to everything and broke B+tree invariants.
  std::vector<double> ordered = {NegNaN(), -Inf(), -1e300, -1.0, -0.0,
                                 0.0,      1.0,    1e300,  Inf(), QNaN()};
  for (size_t i = 0; i < ordered.size(); ++i) {
    for (size_t j = 0; j < ordered.size(); ++j) {
      int expected = i < j ? -1 : (i > j ? 1 : 0);
      EXPECT_EQ(Value::Double(ordered[i]).Compare(Value::Double(ordered[j])),
                expected)
          << ordered[i] << " vs " << ordered[j];
    }
  }
}

TEST(NanOrderingTest, CompareAgreesWithKeyEncodingBytes) {
  std::vector<double> vals = {NegNaN(), -Inf(), -3.5, -0.0, 0.0,
                              1e-300,   2.25,   Inf(), QNaN()};
  for (double a : vals) {
    for (double b : vals) {
      int logical = Value::Double(a).Compare(Value::Double(b));
      int physical =
          EncodeKey(Value::Double(a)).compare(EncodeKey(Value::Double(b)));
      int norm = physical < 0 ? -1 : (physical > 0 ? 1 : 0);
      EXPECT_EQ(logical, norm) << a << " vs " << b;
    }
  }
}

TEST(NanOrderingTest, IndexScanWithNanKeysMatchesCompareOrder) {
  // Insert NaN (and friends) as index keys; a full scan must come back in
  // exactly Value::Compare order.
  std::vector<double> vals = {1.0,  QNaN(), -Inf(), 0.0,   NegNaN(),
                              -0.0, Inf(),  -2.5,   1e300, -1e-300};
  BPlusTree tree;
  for (size_t i = 0; i < vals.size(); ++i) {
    tree.Insert(EncodeKey(Value::Double(vals[i])),
                Rid{static_cast<uint32_t>(i), 0});
  }
  std::vector<size_t> by_compare(vals.size());
  for (size_t i = 0; i < by_compare.size(); ++i) by_compare[i] = i;
  std::sort(by_compare.begin(), by_compare.end(), [&](size_t a, size_t b) {
    return Value::Double(vals[a]).Compare(Value::Double(vals[b])) < 0;
  });
  std::vector<size_t> by_scan;
  for (auto it = tree.Begin(); it.valid(); it.Next()) {
    by_scan.push_back(it.rid().page_id);
  }
  EXPECT_EQ(by_scan, by_compare);
}

// ------------------------------------- exact int64/double mixed compare

TEST(IntDoubleCompareTest, ExactAt2To53Boundary) {
  // 2^53 + 1 is not representable as a double; casting the int64 side to
  // double (the old implementation) collapsed it onto 2^53.
  const int64_t k53 = int64_t{1} << 53;  // 9007199254740992
  const double d53 = 9007199254740992.0;
  EXPECT_EQ(Value::Int(k53).Compare(Value::Double(d53)), 0);
  EXPECT_GT(Value::Int(k53 + 1).Compare(Value::Double(d53)), 0);
  EXPECT_LT(Value::Int(k53 - 1).Compare(Value::Double(d53)), 0);
  EXPECT_LT(Value::Double(d53).Compare(Value::Int(k53 + 1)), 0);
  EXPECT_GT(Value::Double(d53).Compare(Value::Int(k53 - 1)), 0);
}

TEST(IntDoubleCompareTest, ExtremesAndFractions) {
  const double two63 = 9223372036854775808.0;  // 2^63, exact
  EXPECT_LT(Value::Int(INT64_MAX).Compare(Value::Double(two63)), 0);
  EXPECT_GT(Value::Int(INT64_MIN).Compare(Value::Double(-two63 * 2)), 0);
  // INT64_MIN == -2^63 is exactly representable.
  EXPECT_EQ(Value::Int(INT64_MIN).Compare(Value::Double(-two63)), 0);
  EXPECT_LT(Value::Int(3).Compare(Value::Double(3.5)), 0);
  EXPECT_GT(Value::Int(4).Compare(Value::Double(3.5)), 0);
  EXPECT_GT(Value::Int(-3).Compare(Value::Double(-3.5)), 0);
  EXPECT_GT(Value::Int(0).Compare(Value::Double(-Inf())), 0);
  EXPECT_LT(Value::Int(0).Compare(Value::Double(Inf())), 0);
  // NaN sits at the far ends of the total order, never "equal".
  EXPECT_LT(Value::Int(INT64_MAX).Compare(Value::Double(QNaN())), 0);
  EXPECT_GT(Value::Int(INT64_MIN).Compare(Value::Double(NegNaN())), 0);
}

TEST(IntDoubleCompareTest, AntisymmetricAcrossTypes) {
  const int64_t probes_i[] = {0,  1,  -1, (int64_t{1} << 53) + 1,
                              INT64_MAX, INT64_MIN};
  const double probes_d[] = {0.0,   -0.0, 0.5,   9007199254740993.0,
                             QNaN(), NegNaN(), Inf(), -Inf()};
  for (int64_t i : probes_i) {
    for (double d : probes_d) {
      EXPECT_EQ(Value::Int(i).Compare(Value::Double(d)),
                -Value::Double(d).Compare(Value::Int(i)))
          << i << " vs " << d;
    }
  }
}

// ---------------------------------------- Dewey decode of untrusted bytes

TEST(DeweyDecodeTest, RejectsZeroOrdinalInReleaseBuilds) {
  // Ordinal 0 encoded as {len=1, 0x00}. The old code relied on an assert
  // in Encode(), which is compiled out under NDEBUG; Decode() must reject
  // malformed ordinals with a Status regardless of build type.
  std::string bytes("\x01\x00", 2);
  auto key = DeweyKey::Decode(bytes);
  ASSERT_FALSE(key.ok());
  EXPECT_TRUE(key.status().IsInvalidArgument());
}

TEST(DeweyDecodeTest, RejectsOrdinalAboveInt64Max) {
  // 8-byte component 0xFFFFFFFFFFFFFFFF would wrap negative when cast.
  std::string bytes = "\x08";
  bytes.append(8, '\xFF');
  auto key = DeweyKey::Decode(bytes);
  ASSERT_FALSE(key.ok());
  EXPECT_TRUE(key.status().IsInvalidArgument());
}

TEST(DeweyDecodeTest, RoundTripsValidKeys) {
  DeweyKey key({1, 300, 7, (int64_t{1} << 56) + 9});
  auto decoded = DeweyKey::Decode(key.Encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->Compare(key), 0);
  EXPECT_EQ(decoded->ToString(), key.ToString());
}

// ----------------------------------------- XML character-reference limits

TEST(XmlEntityTest, RejectsCodePointAboveUnicodeRange) {
  auto doc = ParseXml("<a>&#x110000;</a>");
  ASSERT_FALSE(doc.ok());
  EXPECT_NE(doc.status().message().find("out of range"), std::string::npos)
      << doc.status().ToString();
}

TEST(XmlEntityTest, RejectsSurrogateCodePoints) {
  for (const char* body : {"&#xD800;", "&#xDC00;", "&#xDFFF;", "&#55296;"}) {
    auto doc = ParseXml(std::string("<a>") + body + "</a>");
    EXPECT_FALSE(doc.ok()) << body;
  }
  // Boundary neighbours stay accepted.
  EXPECT_TRUE(ParseXml("<a>&#xD7FF;</a>").ok());
  EXPECT_TRUE(ParseXml("<a>&#xE000;</a>").ok());
  EXPECT_TRUE(ParseXml("<a>&#x10FFFF;</a>").ok());
}

TEST(XmlEntityTest, RejectsZeroAndNegativeCodePoints) {
  EXPECT_FALSE(ParseXml("<a>&#0;</a>").ok());
  EXPECT_FALSE(ParseXml("<a>&#x0;</a>").ok());
}

TEST(XmlEntityTest, DistinguishesTooLongFromUnterminated) {
  // A reference that never closes before the scan cap is "too long"...
  auto too_long = ParseXml("<a>&aaaaaaaaaaaaaaaaaaaaaaaa;</a>");
  ASSERT_FALSE(too_long.ok());
  EXPECT_NE(too_long.status().message().find("entity too long"),
            std::string::npos)
      << too_long.status().ToString();
  // ...while one cut off by end-of-input is "unterminated".
  auto unterminated = ParseXml("<a>&amp");
  ASSERT_FALSE(unterminated.ok());
  EXPECT_NE(unterminated.status().message().find("unterminated entity"),
            std::string::npos)
      << unterminated.status().ToString();
}

}  // namespace
}  // namespace oxml
