// Session & server layer (docs/INTERNALS.md §13): OXWP v1 codec round
// trips, session-scoped prepared statements and transaction ownership,
// admission control (bounded queue, kResourceExhausted on overflow),
// idle-session reaping, disconnect-mid-transaction rollback, out-of-band
// cancel, and the N-client QR differential against the embedded API on all
// three encodings.
//
// Fixture names deliberately match the CI ThreadSanitizer regex
// (Session|Server|Wire): with -DOXML_TSAN=ON these tests are the data-race
// workload for the whole server stack.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/core/ordered_store.h"
#include "src/core/xpath_eval.h"
#include "src/relational/database.h"
#include "src/server/client.h"
#include "src/server/server.h"
#include "src/server/session.h"
#include "src/server/wire_protocol.h"
#include "src/xml/xml_generator.h"
#include "src/xml/xml_writer.h"

namespace oxml {
namespace server {
namespace {

using namespace std::chrono_literals;

// ------------------------------------------------------------ wire codec

TEST(WireProtocolTest, ValueAndRowRoundTrip) {
  Row row{Value::Null(), Value::Int(-42), Value::Double(2.5),
          Value::Text("héllo"), Value::Blob(std::string("\x00\xff\x01", 3))};
  WireWriter w(FrameType::kOk);
  w.PutRow(row);
  std::string bytes = w.Frame();

  std::string buf = bytes;
  Frame frame;
  auto got = ExtractFrame(&buf, &frame);
  ASSERT_TRUE(got.ok()) << got.status();
  ASSERT_TRUE(*got);
  EXPECT_EQ(frame.type, FrameType::kOk);
  EXPECT_TRUE(buf.empty());

  WireReader r(frame.body);
  auto decoded = r.GetRow();
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  ASSERT_EQ(decoded->size(), row.size());
  EXPECT_EQ((*decoded)[0].type(), TypeId::kNull);
  EXPECT_EQ((*decoded)[1].AsInt(), -42);
  EXPECT_EQ((*decoded)[2].AsDouble(), 2.5);
  EXPECT_EQ((*decoded)[3].AsString(), "héllo");
  EXPECT_EQ((*decoded)[4].AsString(), std::string("\x00\xff\x01", 3));
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(WireProtocolTest, StatusRoundTripPreservesCodeAndMessage) {
  WireWriter w(FrameType::kError);
  w.PutU64(7);
  w.PutStatus(Status::ResourceExhausted("queue full"));
  std::string buf = w.Frame();
  Frame frame;
  ASSERT_TRUE(*ExtractFrame(&buf, &frame));
  WireReader r(frame.body);
  ASSERT_TRUE(r.U64().ok());
  Status decoded;
  ASSERT_TRUE(r.GetStatus(&decoded).ok());
  EXPECT_TRUE(decoded.IsResourceExhausted());
  EXPECT_EQ(decoded.message(), "queue full");
}

TEST(WireProtocolTest, ExtractFrameHandlesPartialDelivery) {
  WireWriter w(FrameType::kPing);
  w.PutU64(99);
  std::string full = w.Frame();

  // Feed the frame one byte at a time: no frame until the last byte.
  std::string buf;
  Frame frame;
  for (size_t i = 0; i + 1 < full.size(); ++i) {
    buf.push_back(full[i]);
    auto got = ExtractFrame(&buf, &frame);
    ASSERT_TRUE(got.ok());
    EXPECT_FALSE(*got) << "frame complete after " << i + 1 << " bytes";
  }
  buf.push_back(full.back());
  auto got = ExtractFrame(&buf, &frame);
  ASSERT_TRUE(got.ok());
  ASSERT_TRUE(*got);
  EXPECT_EQ(frame.type, FrameType::kPing);
}

TEST(WireProtocolTest, OversizedAndEmptyFramesAreRejected) {
  std::string buf;
  uint32_t len = kMaxFrameBytes + 1;
  buf.append(reinterpret_cast<const char*>(&len), 4);
  buf.append("x");
  Frame frame;
  EXPECT_FALSE(ExtractFrame(&buf, &frame).ok());

  std::string empty;
  len = 0;
  empty.append(reinterpret_cast<const char*>(&len), 4);
  EXPECT_FALSE(ExtractFrame(&empty, &frame).ok());
}

TEST(WireProtocolTest, RowBatchSplitsAndReassembles) {
  std::vector<Row> rows;
  for (int i = 0; i < 10; ++i) rows.push_back({Value::Int(i)});

  size_t start = 0;
  std::vector<Row> reassembled;
  bool done = false;
  int batches = 0;
  while (!done) {
    std::string bytes = EncodeRowBatch(7, rows, &start, /*max_rows=*/3);
    std::string buf = bytes;
    Frame frame;
    ASSERT_TRUE(*ExtractFrame(&buf, &frame));
    ASSERT_EQ(frame.type, FrameType::kRowBatch);
    uint64_t tag = 0;
    auto d = DecodeRowBatch(frame.body, &tag, &reassembled);
    ASSERT_TRUE(d.ok()) << d.status();
    EXPECT_EQ(tag, 7u);
    done = *d;
    ++batches;
  }
  EXPECT_EQ(batches, 4);  // 3+3+3+1
  ASSERT_EQ(reassembled.size(), rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(reassembled[i][0].AsInt(), static_cast<int64_t>(i));
  }
}

TEST(WireProtocolTest, ResultHeaderRoundTrip) {
  Schema schema({Column{"k", TypeId::kInt}, Column{"name", TypeId::kText}});
  std::string bytes = EncodeResultHeader(5, 123, true, &schema);
  std::string buf = bytes;
  Frame frame;
  ASSERT_TRUE(*ExtractFrame(&buf, &frame));
  auto header = DecodeResultHeader(frame.body);
  ASSERT_TRUE(header.ok()) << header.status();
  EXPECT_EQ(header->tag, 5u);
  EXPECT_EQ(header->affected, 123);
  EXPECT_TRUE(header->is_select);
  ASSERT_EQ(header->schema.size(), 2u);
  EXPECT_EQ(header->schema.column(0).name, "k");
  EXPECT_EQ(header->schema.column(1).type, TypeId::kText);
}

// ------------------------------------------------- sessions (in process)

std::unique_ptr<Database> OpenDb() {
  auto db = Database::Open(DatabaseOptions{});
  EXPECT_TRUE(db.ok()) << db.status();
  return std::move(db).value();
}

TEST(SessionTest, PreparedNamespaceIsPerSession) {
  auto db = OpenDb();
  ASSERT_TRUE(db->Execute("CREATE TABLE t (a INT)").ok());
  SessionManager mgr(db.get(), SessionManagerOptions{});
  auto s1 = *mgr.CreateSession();
  auto s2 = *mgr.CreateSession();

  auto p1 = s1->Prepare("INSERT INTO t VALUES (?)");
  ASSERT_TRUE(p1.ok()) << p1.status();
  EXPECT_EQ(p1->param_count, 1u);
  auto p2 = s2->Prepare("INSERT INTO t VALUES (?)");
  ASSERT_TRUE(p2.ok()) << p2.status();

  // Same SQL text, same shared plan — but bindings are private: each
  // session binds its own value and must insert exactly that value.
  ASSERT_TRUE(s1->Bind(p1->stmt_id, 0, {Value::Int(1)}).ok());
  ASSERT_TRUE(s2->Bind(p2->stmt_id, 0, {Value::Int(2)}).ok());
  ASSERT_TRUE(s1->ExecutePrepared(p1->stmt_id, 1).ok());
  ASSERT_TRUE(s2->ExecutePrepared(p2->stmt_id, 2).ok());

  auto rs = db->Query("SELECT a FROM t ORDER BY a");
  ASSERT_TRUE(rs.ok());
  ASSERT_EQ(rs->rows.size(), 2u);
  EXPECT_EQ(rs->rows[0][0].AsInt(), 1);
  EXPECT_EQ(rs->rows[1][0].AsInt(), 2);

  // A session cannot touch another session's statement ids... ids are
  // per-session, so s2's id 1 is s2's own statement, and an unknown id
  // fails cleanly.
  EXPECT_FALSE(s1->CloseStatement(9999).ok());
  EXPECT_TRUE(s1->CloseStatement(p1->stmt_id).ok());
  EXPECT_EQ(s1->prepared_count(), 0u);
  EXPECT_EQ(s2->prepared_count(), 1u);
}

TEST(SessionTest, TransactionIsOwnedBySessionNotThread) {
  auto db = OpenDb();
  ASSERT_TRUE(db->Execute("CREATE TABLE t (a INT)").ok());
  SessionManager mgr(db.get(), SessionManagerOptions{});
  auto session = *mgr.CreateSession();

  // Begin on one thread, mutate on another, commit on a third — the
  // session carries ownership across all of them (the server executes
  // every frame on whichever pool worker is free).
  std::thread t1([&] { ASSERT_TRUE(session->Begin().ok()); });
  t1.join();
  std::thread t2([&] {
    auto r = session->Execute("INSERT INTO t VALUES (1)", {}, 1);
    ASSERT_TRUE(r.ok()) << r.status();
  });
  t2.join();
  std::thread t3([&] { ASSERT_TRUE(session->Commit().ok()); });
  t3.join();

  auto rs = db->Query("SELECT COUNT(*) FROM t");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->rows[0][0].AsInt(), 1);
}

TEST(SessionTest, ForeignSessionCannotCommitAnothersTransaction) {
  auto db = OpenDb();
  SessionManager mgr(db.get(), SessionManagerOptions{});
  auto owner = *mgr.CreateSession();
  auto other = *mgr.CreateSession();
  ASSERT_TRUE(owner->Begin().ok());
  EXPECT_FALSE(other->Commit().ok());
  EXPECT_FALSE(other->Rollback().ok());
  EXPECT_TRUE(owner->OwnsOpenTxn());
  EXPECT_FALSE(other->OwnsOpenTxn());
  ASSERT_TRUE(owner->Rollback().ok());
}

TEST(SessionTest, CloseRollsBackOwnedTransaction) {
  auto db = OpenDb();
  ASSERT_TRUE(db->Execute("CREATE TABLE t (a INT)").ok());
  ASSERT_TRUE(db->Execute("INSERT INTO t VALUES (1)").ok());
  SessionManager mgr(db.get(), SessionManagerOptions{});
  auto session = *mgr.CreateSession();
  ASSERT_TRUE(session->Begin().ok());
  ASSERT_TRUE(session->Execute("DELETE FROM t", {}, 1).ok());
  ASSERT_TRUE(session->Execute("INSERT INTO t VALUES (2)", {}, 2).ok());

  // Close from a different thread (the disconnect-cleanup path).
  std::thread closer([&] { EXPECT_TRUE(session->Close().ok()); });
  closer.join();

  EXPECT_FALSE(db->txn_open());
  auto rs = db->Query("SELECT a FROM t");
  ASSERT_TRUE(rs.ok());
  ASSERT_EQ(rs->rows.size(), 1u);
  EXPECT_EQ(rs->rows[0][0].AsInt(), 1);
}

TEST(SessionTest, KilledSessionRejectsStatements) {
  auto db = OpenDb();
  SessionManager mgr(db.get(), SessionManagerOptions{});
  auto session = *mgr.CreateSession();
  session->Kill();
  auto rs = session->Query("SELECT 1", {}, 1);
  ASSERT_FALSE(rs.ok());
  EXPECT_TRUE(rs.status().IsCancelled());
}

// --------------------------------------------------- admission control

TEST(SessionAdmissionTest, QueueOverflowReturnsResourceExhausted) {
  auto db = OpenDb();
  SessionManagerOptions opts;
  opts.max_concurrent_statements = 1;
  opts.max_queued_statements = 1;
  SessionManager mgr(db.get(), opts);

  QueryControl c1, c2, c3;
  ASSERT_TRUE(mgr.Admit(&c1).ok());  // takes the single running slot
  EXPECT_EQ(mgr.running_statements(), 1u);

  // Second statement queues; third finds the queue full and is rejected
  // immediately — never a hang.
  std::atomic<bool> admitted2{false};
  std::thread waiter([&] {
    Status st = mgr.Admit(&c2);
    EXPECT_TRUE(st.ok()) << st;
    admitted2.store(true);
    mgr.Release();
  });
  while (mgr.queued_statements() == 0) std::this_thread::sleep_for(1ms);

  Status st = mgr.Admit(&c3);
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(st.IsResourceExhausted()) << st;
  EXPECT_FALSE(admitted2.load());

  mgr.Release();  // frees the slot; the queued statement proceeds
  waiter.join();
  EXPECT_TRUE(admitted2.load());
  EXPECT_EQ(mgr.admission_stats().rejected.load(), 1u);
  EXPECT_GE(mgr.admission_stats().queued_peak.load(), 1u);
}

TEST(SessionAdmissionTest, QueuedStatementHonorsCancel) {
  auto db = OpenDb();
  SessionManagerOptions opts;
  opts.max_concurrent_statements = 1;
  opts.max_queued_statements = 4;
  SessionManager mgr(db.get(), opts);

  QueryControl running, queued;
  ASSERT_TRUE(mgr.Admit(&running).ok());
  std::thread waiter([&] {
    Status st = mgr.Admit(&queued);
    EXPECT_TRUE(st.IsCancelled()) << st;
  });
  while (mgr.queued_statements() == 0) std::this_thread::sleep_for(1ms);
  queued.Cancel();
  waiter.join();
  mgr.Release();
}

TEST(SessionAdmissionTest, SessionCapRefusesCreation) {
  auto db = OpenDb();
  SessionManagerOptions opts;
  opts.max_sessions = 2;
  SessionManager mgr(db.get(), opts);
  auto s1 = mgr.CreateSession();
  auto s2 = mgr.CreateSession();
  ASSERT_TRUE(s1.ok());
  ASSERT_TRUE(s2.ok());
  auto s3 = mgr.CreateSession();
  ASSERT_FALSE(s3.ok());
  EXPECT_TRUE(s3.status().IsResourceExhausted());
  ASSERT_TRUE(mgr.CloseSession((*s1)->id()).ok());
  EXPECT_TRUE(mgr.CreateSession().ok());
}

TEST(SessionTest, IdleSessionsAreReapedAndReleasePreparedStatements) {
  auto db = OpenDb();
  ASSERT_TRUE(db->Execute("CREATE TABLE t (a INT)").ok());
  SessionManagerOptions opts;
  opts.idle_timeout_ms = 50;
  SessionManager mgr(db.get(), opts);
  auto session = *mgr.CreateSession();
  ASSERT_TRUE(session->Prepare("SELECT a FROM t").ok());
  EXPECT_EQ(session->prepared_count(), 1u);

  EXPECT_EQ(mgr.ReapIdle(), 0u);  // not idle long enough yet
  std::this_thread::sleep_for(80ms);
  EXPECT_EQ(mgr.ReapIdle(), 1u);
  EXPECT_EQ(mgr.session_count(), 0u);
  EXPECT_EQ(session->prepared_count(), 0u);  // namespace released
  EXPECT_TRUE(session->killed());
}

// ------------------------------------------------------ loopback server

struct ServerFixture {
  std::unique_ptr<Database> db;
  std::unique_ptr<OxmlServer> server;

  explicit ServerFixture(ServerOptions opts = {},
                         DatabaseOptions dbopts = {}) {
    auto dbr = Database::Open(dbopts);
    EXPECT_TRUE(dbr.ok()) << dbr.status();
    db = std::move(dbr).value();
    // Finite defaults so a wedged test fails instead of hanging.
    if (opts.session.defaults.timeout_ms < 0) {
      opts.session.defaults.timeout_ms = 20000;
    }
    server = std::make_unique<OxmlServer>(db.get(), opts);
    Status st = server->Start();
    EXPECT_TRUE(st.ok()) << st;
  }

  std::unique_ptr<OxmlClient> Connect() {
    ClientOptions copts;
    copts.port = server->port();
    auto client = OxmlClient::Connect(copts);
    EXPECT_TRUE(client.ok()) << client.status();
    return client.ok() ? std::move(*client) : nullptr;
  }
};

TEST(ServerTest, RefusesToStartWithoutMvcc) {
  DatabaseOptions dbopts;
  dbopts.enable_mvcc = false;
  auto db = Database::Open(dbopts);
  ASSERT_TRUE(db.ok());
  OxmlServer server(db->get(), ServerOptions{});
  Status st = server.Start();
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(st.IsInvalidArgument());
}

TEST(ServerTest, HelloQueryExecuteRoundTrip) {
  ServerFixture fx;
  auto client = fx.Connect();
  ASSERT_NE(client, nullptr);
  EXPECT_GT(client->session_id(), 0u);
  ASSERT_TRUE(client->Ping().ok());

  ASSERT_TRUE(client->Execute("CREATE TABLE t (a INT, s TEXT)").ok());
  auto ins = client->Execute("INSERT INTO t VALUES (?, ?)",
                             {Value::Int(7), Value::Text("seven")});
  ASSERT_TRUE(ins.ok()) << ins.status();
  EXPECT_EQ(*ins, 1);

  auto rs = client->Query("SELECT a, s FROM t");
  ASSERT_TRUE(rs.ok()) << rs.status();
  ASSERT_EQ(rs->rows.size(), 1u);
  EXPECT_EQ(rs->rows[0][0].AsInt(), 7);
  EXPECT_EQ(rs->rows[0][1].AsString(), "seven");
  EXPECT_EQ(rs->schema.column(0).name, "a");

  // Errors carry the engine status across the wire.
  auto bad = client->Query("SELECT nope FROM missing");
  EXPECT_FALSE(bad.ok());

  EXPECT_TRUE(client->Goodbye().ok());
}

TEST(ServerTest, PreparedStatementsOverTheWire) {
  ServerFixture fx;
  auto client = fx.Connect();
  ASSERT_NE(client, nullptr);
  ASSERT_TRUE(client->Execute("CREATE TABLE t (a INT)").ok());

  auto prep = client->Prepare("INSERT INTO t VALUES (?)");
  ASSERT_TRUE(prep.ok()) << prep.status();
  EXPECT_EQ(prep->param_count, 1u);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(client->Bind(prep->stmt_id, 0, {Value::Int(i)}).ok());
    ASSERT_TRUE(client->ExecutePrepared(prep->stmt_id).ok());
  }
  auto sel = client->Prepare("SELECT COUNT(*) FROM t");
  ASSERT_TRUE(sel.ok());
  auto rs = client->QueryPrepared(sel->stmt_id);
  ASSERT_TRUE(rs.ok()) << rs.status();
  EXPECT_EQ(rs->rows[0][0].AsInt(), 5);
  EXPECT_TRUE(client->CloseStatement(prep->stmt_id).ok());
  EXPECT_FALSE(client->ExecutePrepared(prep->stmt_id).ok());
}

TEST(ServerTest, LargeResultSetsStreamInBatches) {
  ServerFixture fx;
  auto client = fx.Connect();
  ASSERT_NE(client, nullptr);
  ASSERT_TRUE(client->Execute("CREATE TABLE t (a INT)").ok());
  ASSERT_TRUE(client->Begin().ok());
  for (int i = 0; i < 3000; ++i) {
    ASSERT_TRUE(
        client->Execute("INSERT INTO t VALUES (?)", {Value::Int(i)}).ok());
  }
  ASSERT_TRUE(client->Commit().ok());
  auto rs = client->Query("SELECT a FROM t ORDER BY a");
  ASSERT_TRUE(rs.ok()) << rs.status();
  ASSERT_EQ(rs->rows.size(), 3000u);  // > fetch_batch_rows: several batches
  EXPECT_EQ(rs->rows[2999][0].AsInt(), 2999);
}

TEST(ServerTest, SessionCapRefusesExtraClients) {
  ServerOptions opts;
  opts.session.max_sessions = 2;
  ServerFixture fx(opts);
  auto c1 = fx.Connect();
  auto c2 = fx.Connect();
  ASSERT_NE(c1, nullptr);
  ASSERT_NE(c2, nullptr);

  ClientOptions copts;
  copts.port = fx.server->port();
  auto c3 = OxmlClient::Connect(copts);
  ASSERT_FALSE(c3.ok());
  EXPECT_TRUE(c3.status().IsResourceExhausted()) << c3.status();

  // Freeing a slot lets the next client in.
  ASSERT_TRUE(c1->Goodbye().ok());
  for (int i = 0; i < 100; ++i) {
    if (fx.server->session_manager()->session_count() < 2) break;
    std::this_thread::sleep_for(10ms);
  }
  auto c4 = OxmlClient::Connect(copts);
  EXPECT_TRUE(c4.ok()) << c4.status();
}

TEST(ServerTest, DisconnectMidTransactionRollsBackByteIdentically) {
  ServerFixture fx;
  Database* db = fx.db.get();
  auto store = OrderedXmlStore::Create(db, OrderEncoding::kGlobal, {});
  ASSERT_TRUE(store.ok());
  NewsGeneratorOptions gen;
  gen.sections = 6;
  gen.paragraphs_per_section = 4;
  auto doc = GenerateNewsXml(gen);
  ASSERT_TRUE((*store)->LoadDocument(*doc).ok());
  auto before = (*store)->ReconstructDocument();
  ASSERT_TRUE(before.ok());
  std::string before_xml = WriteXml(**before);

  {
    auto client = fx.Connect();
    ASSERT_NE(client, nullptr);
    ASSERT_TRUE(client->Begin().ok());
    auto del = client->Execute("DELETE FROM nodes WHERE kind = 2");
    ASSERT_TRUE(del.ok()) << del.status();
    auto del2 = client->Execute("DELETE FROM nodes WHERE depth >= 4");
    ASSERT_TRUE(del2.ok()) << del2.status();
    // Die without commit, goodbye, or rollback.
    client->Abort();
  }

  // The server notices the dead socket and rolls back on the control lane.
  for (int i = 0; i < 500; ++i) {
    if (!db->txn_open() &&
        fx.server->session_manager()->session_count() == 0) {
      break;
    }
    std::this_thread::sleep_for(10ms);
  }
  ASSERT_FALSE(db->txn_open());
  EXPECT_EQ(fx.server->session_manager()->session_count(), 0u);

  auto after = (*store)->ReconstructDocument();
  ASSERT_TRUE(after.ok()) << after.status();
  EXPECT_EQ(WriteXml(**after), before_xml);
  ASSERT_TRUE((*store)->Validate().ok());
}

TEST(ServerTest, IdleSessionsAreReapedByThePollLoop) {
  ServerOptions opts;
  opts.session.idle_timeout_ms = 100;
  opts.sweep_interval_ms = 20;
  ServerFixture fx(opts);
  auto client = fx.Connect();
  ASSERT_NE(client, nullptr);
  ASSERT_TRUE(client->Ping().ok());

  for (int i = 0; i < 500; ++i) {
    if (fx.server->session_manager()->session_count() == 0) break;
    std::this_thread::sleep_for(10ms);
  }
  EXPECT_EQ(fx.server->session_manager()->session_count(), 0u);
  EXPECT_GE(fx.server->stats()->sessions_reaped.load(), 1u);
  // The reaped client's next statement fails: connection is gone.
  EXPECT_FALSE(client->Query("SELECT 1").ok());
}

TEST(ServerTest, OutOfBandCancelInterruptsGateWaitingStatement) {
  ServerOptions opts;
  opts.worker_threads = 4;
  ServerFixture fx(opts);
  auto owner = fx.Connect();
  auto victim = fx.Connect();
  ASSERT_NE(owner, nullptr);
  ASSERT_NE(victim, nullptr);
  ASSERT_TRUE(owner->Execute("CREATE TABLE t (a INT)").ok());

  // Owner opens a transaction; the victim's mutation gate-waits behind it.
  ASSERT_TRUE(owner->Begin().ok());
  ASSERT_TRUE(owner->Execute("INSERT INTO t VALUES (1)").ok());

  std::atomic<bool> victim_done{false};
  Status victim_status;
  std::thread runner([&] {
    auto r = victim->Execute("INSERT INTO t VALUES (2)");
    victim_status = r.status();
    victim_done.store(true);
  });
  std::this_thread::sleep_for(200ms);  // let it reach the gate
  EXPECT_FALSE(victim_done.load());

  // Out-of-band cancel from the victim's own connection, sent while its
  // statement thread is blocked in Execute.
  ASSERT_TRUE(victim->Cancel(0).ok());
  runner.join();
  ASSERT_FALSE(victim_status.ok());
  EXPECT_TRUE(victim_status.IsCancelled()) << victim_status;

  // The owner's transaction is untouched.
  ASSERT_TRUE(owner->Commit().ok());
  auto rs = owner->Query("SELECT COUNT(*) FROM t");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->rows[0][0].AsInt(), 1);
}

TEST(ServerTest, CancelCannotCrossSessions) {
  ServerOptions opts;
  opts.worker_threads = 4;
  ServerFixture fx(opts);
  auto owner = fx.Connect();
  auto victim = fx.Connect();
  auto attacker = fx.Connect();
  ASSERT_NE(owner, nullptr);
  ASSERT_NE(victim, nullptr);
  ASSERT_NE(attacker, nullptr);
  ASSERT_TRUE(owner->Execute("CREATE TABLE t (a INT)").ok());
  ASSERT_TRUE(owner->Begin().ok());
  ASSERT_TRUE(owner->Execute("INSERT INTO t VALUES (1)").ok());

  std::atomic<bool> victim_done{false};
  Status victim_status;
  std::thread runner([&] {
    auto r = victim->Execute("INSERT INTO t VALUES (2)");
    victim_status = r.status();
    victim_done.store(true);
  });
  std::this_thread::sleep_for(200ms);
  // The attacker spams cancels — statement ids resolve through its OWN
  // session's in-flight slot, so the victim must be unaffected.
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(attacker->Cancel(0).ok());
  std::this_thread::sleep_for(100ms);
  EXPECT_FALSE(victim_done.load());

  ASSERT_TRUE(owner->Commit().ok());  // releases the gate; victim finishes
  runner.join();
  EXPECT_TRUE(victim_status.ok()) << victim_status;
  auto rs = owner->Query("SELECT COUNT(*) FROM t");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->rows[0][0].AsInt(), 2);
}

TEST(ServerTest, AdmissionOverflowSurfacesAsResourceExhausted) {
  ServerOptions opts;
  opts.worker_threads = 4;
  opts.session.max_concurrent_statements = 1;
  opts.session.max_queued_statements = 0;
  ServerFixture fx(opts);
  auto owner = fx.Connect();
  auto blocked = fx.Connect();
  auto rejected = fx.Connect();
  ASSERT_NE(owner, nullptr);
  ASSERT_NE(blocked, nullptr);
  ASSERT_NE(rejected, nullptr);
  ASSERT_TRUE(owner->Execute("CREATE TABLE t (a INT)").ok());

  // Txn control bypasses admission (liveness), so Begin works even with
  // one slot; the owner's open transaction then parks `blocked`'s
  // mutation in the gate, pinning the single admission slot.
  ASSERT_TRUE(owner->Begin().ok());
  ASSERT_TRUE(owner->Execute("INSERT INTO t VALUES (1)").ok());

  std::atomic<bool> blocked_done{false};
  Status blocked_status;
  std::thread runner([&] {
    auto r = blocked->Execute("INSERT INTO t VALUES (2)");
    blocked_status = r.status();
    blocked_done.store(true);
  });
  for (int i = 0; i < 500; ++i) {
    if (fx.server->session_manager()->running_statements() == 1) break;
    std::this_thread::sleep_for(5ms);
  }
  ASSERT_EQ(fx.server->session_manager()->running_statements(), 1u);

  // Queue depth 0: the third client's statement is rejected immediately
  // with kResourceExhausted — it does not hang.
  auto rs = rejected->Query("SELECT COUNT(*) FROM t");
  ASSERT_FALSE(rs.ok());
  EXPECT_TRUE(rs.status().IsResourceExhausted()) << rs.status();
  EXPECT_FALSE(blocked_done.load());
  EXPECT_GE(fx.server->session_manager()->admission_stats().rejected.load(),
            1u);

  ASSERT_TRUE(owner->Commit().ok());
  runner.join();
  EXPECT_TRUE(blocked_status.ok()) << blocked_status;
}

TEST(ServerTest, SessionOptionsEnforceStatementDeadline) {
  ServerOptions opts;
  opts.worker_threads = 4;
  ServerFixture fx(opts);
  auto owner = fx.Connect();
  auto limited = fx.Connect();
  ASSERT_NE(owner, nullptr);
  ASSERT_NE(limited, nullptr);
  ASSERT_TRUE(owner->Execute("CREATE TABLE t (a INT)").ok());
  ASSERT_TRUE(limited->SetSessionOptions(/*timeout_ms=*/300,
                                         /*memory_budget_bytes=*/-1)
                  .ok());

  ASSERT_TRUE(owner->Begin().ok());
  ASSERT_TRUE(owner->Execute("INSERT INTO t VALUES (1)").ok());
  // The limited session's mutation gate-waits and must time out on its
  // own 300ms deadline instead of waiting for the owner.
  auto r = limited->Execute("INSERT INTO t VALUES (2)");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsDeadlineExceeded()) << r.status();
  ASSERT_TRUE(owner->Rollback().ok());
}

// --------------------------------------- QR differential (N clients)

std::string EmbeddedSignature(OrderedXmlStore* store, const StoredNode& n) {
  if (n.kind == XmlNodeKind::kAttribute) {
    return "@" + n.tag + "=" + n.value;
  }
  auto subtree = store->ReconstructSubtree(n);
  EXPECT_TRUE(subtree.ok()) << subtree.status();
  return subtree.ok() ? WriteXml(**subtree) : std::string();
}

const char* const kQrQueries[] = {
    "//para",                                            // QR1
    "/nitf/body/section[5]/title",                       // QR2
    "/nitf/body/section[last()]/para[last()]",           // QR3
    "//section[@id = 's3']/following-sibling::section",  // QR4
    "/nitf/body//para",                                  // QR5
    "//para[@class = 'lead']",                           // QR6
    "/nitf/body/section[position() >= 5]/title",         // QR7
    "/nitf/body/section[3]",                             // QR8 (reconstruct)
};

class ServerQrDifferentialTest
    : public ::testing::TestWithParam<OrderEncoding> {};

TEST_P(ServerQrDifferentialTest, EightClientsMatchEmbeddedOnAllQueries) {
  OrderEncoding enc = GetParam();
  ServerOptions opts;
  opts.worker_threads = 8;
  opts.session.max_concurrent_statements = 8;
  ServerFixture fx(opts);
  auto store = OrderedXmlStore::Create(fx.db.get(), enc, {});
  ASSERT_TRUE(store.ok()) << store.status();
  NewsGeneratorOptions gen;
  gen.sections = 12;
  gen.paragraphs_per_section = 6;
  gen.seed = 42;
  auto doc = GenerateNewsXml(gen);
  ASSERT_TRUE((*store)->LoadDocument(*doc).ok());
  fx.server->RegisterStore("doc", store->get());

  // Embedded baseline, per query.
  std::vector<std::vector<std::string>> expected;
  for (const char* q : kQrQueries) {
    auto nodes = EvaluateXPath(store->get(), q);
    ASSERT_TRUE(nodes.ok()) << q << ": " << nodes.status();
    std::vector<std::string> sigs;
    for (const StoredNode& n : *nodes) {
      sigs.push_back(EmbeddedSignature(store->get(), n));
    }
    ASSERT_FALSE(sigs.empty()) << q;
    expected.push_back(std::move(sigs));
  }

  constexpr int kClients = 8;
  constexpr int kRounds = 3;
  std::atomic<int> mismatches{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      ClientOptions copts;
      copts.port = fx.server->port();
      auto client = OxmlClient::Connect(copts);
      if (!client.ok()) {
        ++failures;
        return;
      }
      for (int round = 0; round < kRounds; ++round) {
        for (size_t q = 0; q < std::size(kQrQueries); ++q) {
          // Stagger which query each client starts with so the admission
          // gate sees a mixed concurrent load.
          size_t idx = (q + static_cast<size_t>(c)) % std::size(kQrQueries);
          auto sigs = (*client)->XPath("doc", kQrQueries[idx]);
          if (!sigs.ok()) {
            ++failures;
            continue;
          }
          if (*sigs != expected[idx]) ++mismatches;
        }
      }
      (*client)->Goodbye();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);
}

INSTANTIATE_TEST_SUITE_P(AllEncodings, ServerQrDifferentialTest,
                         ::testing::Values(OrderEncoding::kGlobal,
                                           OrderEncoding::kLocal,
                                           OrderEncoding::kDewey),
                         [](const auto& info) {
                           return std::string(
                               OrderEncodingToString(info.param));
                         });

}  // namespace
}  // namespace server
}  // namespace oxml
