// Unit tests for the SQL lexer, parser, expression evaluation, Value
// semantics and planner access-path selection.

#include <gtest/gtest.h>

#include <memory>

#include "src/relational/database.h"
#include "src/relational/expression.h"
#include "src/relational/key_codec.h"
#include "src/relational/planner.h"
#include "src/relational/sql_lexer.h"
#include "src/relational/sql_parser.h"

namespace oxml {
namespace {

// ------------------------------------------------------------------- lexer

TEST(SqlLexerTest, TokenKinds) {
  auto toks = LexSql("SELECT a, 42, 3.5, 'it''s', x'0aff' <= >= <> != ;");
  ASSERT_TRUE(toks.ok()) << toks.status();
  // 0:SELECT 1:a 2:, 3:42 4:, 5:3.5 6:, 7:str 8:, 9:blob 10:<= 11:>=
  // 12:<> 13:!= 14:; 15:EOF
  ASSERT_EQ(toks->size(), 16u);
  EXPECT_EQ((*toks)[0].kind, TokenKind::kIdentifier);
  EXPECT_EQ((*toks)[0].text, "SELECT");
  EXPECT_EQ((*toks)[3].kind, TokenKind::kIntLiteral);
  EXPECT_EQ((*toks)[3].int_value, 42);
  EXPECT_EQ((*toks)[5].kind, TokenKind::kFloatLiteral);
  EXPECT_DOUBLE_EQ((*toks)[5].double_value, 3.5);
  EXPECT_EQ((*toks)[7].kind, TokenKind::kStringLiteral);
  EXPECT_EQ((*toks)[7].text, "it's");
  EXPECT_EQ((*toks)[9].kind, TokenKind::kBlobLiteral);
  EXPECT_EQ((*toks)[9].text, std::string("\x0a\xff", 2));
  EXPECT_EQ((*toks)[10].text, "<=");
  EXPECT_EQ((*toks)[11].text, ">=");
  EXPECT_EQ((*toks)[12].text, "<>");
  EXPECT_EQ((*toks)[13].text, "!=");
  EXPECT_EQ((*toks)[15].kind, TokenKind::kEnd);
}

TEST(SqlLexerTest, CommentsAndWhitespace) {
  auto toks = LexSql("SELECT -- a comment\n 1");
  ASSERT_TRUE(toks.ok());
  ASSERT_EQ(toks->size(), 3u);  // SELECT, 1, EOF
  EXPECT_EQ((*toks)[1].int_value, 1);
}

TEST(SqlLexerTest, Errors) {
  EXPECT_FALSE(LexSql("SELECT 'unterminated").ok());
  EXPECT_FALSE(LexSql("SELECT x'zz'").ok());
  EXPECT_FALSE(LexSql("SELECT #").ok());
}

TEST(SqlLexerTest, ScientificNotation) {
  auto toks = LexSql("1e3 2.5E-2");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ((*toks)[0].kind, TokenKind::kFloatLiteral);
  EXPECT_DOUBLE_EQ((*toks)[0].double_value, 1000.0);
  EXPECT_DOUBLE_EQ((*toks)[1].double_value, 0.025);
}

// ------------------------------------------------------------------ parser

TEST(SqlParserTest, SelectClauses) {
  auto stmt = ParseSql(
      "SELECT DISTINCT a, b + 1 AS c FROM t1 x, t2 WHERE a = 1 "
      "GROUP BY a ORDER BY a DESC, c LIMIT 7");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  auto* sel = static_cast<SelectStmt*>(stmt->get());
  EXPECT_TRUE(sel->distinct);
  ASSERT_EQ(sel->items.size(), 2u);
  EXPECT_EQ(sel->items[1].alias, "c");
  ASSERT_EQ(sel->from.size(), 2u);
  EXPECT_EQ(sel->from[0].effective_alias(), "x");
  EXPECT_EQ(sel->from[1].effective_alias(), "t2");
  ASSERT_NE(sel->where, nullptr);
  ASSERT_EQ(sel->group_by.size(), 1u);
  ASSERT_EQ(sel->order_by.size(), 2u);
  EXPECT_TRUE(sel->order_by[0].desc);
  EXPECT_FALSE(sel->order_by[1].desc);
  ASSERT_TRUE(sel->limit.has_value());
  EXPECT_EQ(*sel->limit, 7);
}

TEST(SqlParserTest, OperatorPrecedence) {
  auto stmt = ParseSql("SELECT 1 FROM t WHERE a + 2 * 3 = 7 AND NOT b OR c");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  auto* sel = static_cast<SelectStmt*>(stmt->get());
  // Top node must be OR.
  ASSERT_EQ(sel->where->kind(), Expr::Kind::kBinary);
  EXPECT_EQ(static_cast<BinaryExpr*>(sel->where.get())->op(), BinaryOp::kOr);
  EXPECT_EQ(sel->where->ToString(),
            "((((a + (2 * 3)) = 7) AND (NOT b)) OR c)");
}

TEST(SqlParserTest, InsertForms) {
  auto stmt = ParseSql("INSERT INTO t VALUES (1, 'x'), (2, 'y')");
  ASSERT_TRUE(stmt.ok());
  auto* ins = static_cast<InsertStmt*>(stmt->get());
  EXPECT_TRUE(ins->columns.empty());
  EXPECT_EQ(ins->rows.size(), 2u);

  stmt = ParseSql("INSERT INTO t (a, b) VALUES (1, 2)");
  ASSERT_TRUE(stmt.ok());
  ins = static_cast<InsertStmt*>(stmt->get());
  EXPECT_EQ(ins->columns, (std::vector<std::string>{"a", "b"}));
}

TEST(SqlParserTest, UpdateDeleteDdl) {
  auto stmt = ParseSql("UPDATE t SET a = a + 1, b = 'z' WHERE c < 3");
  ASSERT_TRUE(stmt.ok());
  auto* upd = static_cast<UpdateStmt*>(stmt->get());
  EXPECT_EQ(upd->assignments.size(), 2u);

  stmt = ParseSql("DELETE FROM t");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ((*stmt)->kind, StmtKind::kDelete);

  stmt = ParseSql("CREATE TABLE t (a INT, b VARCHAR(10), c DOUBLE, d BLOB)");
  ASSERT_TRUE(stmt.ok());
  auto* ct = static_cast<CreateTableStmt*>(stmt->get());
  ASSERT_EQ(ct->columns.size(), 4u);
  EXPECT_EQ(ct->columns[1].type, TypeId::kText);
  EXPECT_EQ(ct->columns[3].type, TypeId::kBlob);

  stmt = ParseSql("CREATE UNIQUE INDEX i ON t (a, b)");
  ASSERT_TRUE(stmt.ok());
  auto* ci = static_cast<CreateIndexStmt*>(stmt->get());
  EXPECT_TRUE(ci->unique);
  EXPECT_EQ(ci->columns.size(), 2u);
}

TEST(SqlParserTest, KeywordsAreCaseInsensitive) {
  EXPECT_TRUE(ParseSql("select 1 from t where a like 'x%'").ok());
  EXPECT_TRUE(ParseSql("SeLeCt 1 FrOm t").ok());
}

TEST(SqlParserTest, RejectsTrailingTokens) {
  EXPECT_FALSE(ParseSql("SELECT 1 FROM t garbage garbage").ok());
  EXPECT_FALSE(ParseSql("SELECT 1 FROM t; SELECT 2 FROM t").ok());
}

// -------------------------------------------------------------- expressions

class ExprEvalTest : public ::testing::Test {
 protected:
  /// Parses `expr_sql`, binds it against (a INT, b TEXT, d DOUBLE) and
  /// evaluates on the given row.
  Result<Value> Eval(const std::string& expr_sql, Row row) {
    auto stmt = ParseSql("SELECT " + expr_sql + " FROM t");
    if (!stmt.ok()) return stmt.status();
    auto* sel = static_cast<SelectStmt*>(stmt->get());
    Expr* e = sel->items[0].expr.get();
    Schema schema({{"a", TypeId::kInt},
                   {"b", TypeId::kText},
                   {"d", TypeId::kDouble}});
    OXML_RETURN_NOT_OK(e->Bind(schema));
    return e->Eval(row);
  }

  Row row_{Value::Int(6), Value::Text("hello"), Value::Double(2.5)};
};

TEST_F(ExprEvalTest, Arithmetic) {
  EXPECT_EQ(Eval("a + 2", row_)->AsInt(), 8);
  EXPECT_EQ(Eval("a * a - 1", row_)->AsInt(), 35);
  EXPECT_EQ(Eval("a / 4", row_)->AsInt(), 1);       // integer division
  EXPECT_EQ(Eval("a % 4", row_)->AsInt(), 2);
  EXPECT_DOUBLE_EQ(Eval("a + d", row_)->AsDouble(), 8.5);
  EXPECT_DOUBLE_EQ(Eval("d / 2", row_)->AsDouble(), 1.25);
  EXPECT_FALSE(Eval("a / 0", row_).ok());
  EXPECT_FALSE(Eval("a % 0", row_).ok());
}

TEST_F(ExprEvalTest, TextConcatViaPlus) {
  EXPECT_EQ(Eval("b + '!'", row_)->AsString(), "hello!");
  EXPECT_FALSE(Eval("b * 2", row_).ok());
}

TEST_F(ExprEvalTest, ComparisonsAndLogic) {
  EXPECT_EQ(Eval("a > 5 AND d < 3", row_)->AsInt(), 1);
  EXPECT_EQ(Eval("a > 5 AND d > 3", row_)->AsInt(), 0);
  EXPECT_EQ(Eval("a < 5 OR b = 'hello'", row_)->AsInt(), 1);
  EXPECT_EQ(Eval("NOT (a = 6)", row_)->AsInt(), 0);
  // Cross-type numeric comparison.
  EXPECT_EQ(Eval("a > d", row_)->AsInt(), 1);
}

TEST_F(ExprEvalTest, NullPropagation) {
  Row with_null{Value::Null(), Value::Text("x"), Value::Double(1)};
  EXPECT_TRUE(Eval("a + 1", with_null)->is_null());
  EXPECT_TRUE(Eval("a = 0", with_null)->is_null());
  EXPECT_EQ(Eval("a IS NULL", with_null)->AsInt(), 1);
  EXPECT_EQ(Eval("a IS NOT NULL", with_null)->AsInt(), 0);
  // Three-valued logic: NULL AND false = false; NULL OR true = true.
  EXPECT_EQ(Eval("a > 0 AND 1 = 2", with_null)->AsInt(), 0);
  EXPECT_EQ(Eval("a > 0 OR 1 = 1", with_null)->AsInt(), 1);
  EXPECT_TRUE(Eval("a > 0 OR 1 = 2", with_null)->is_null());
}

TEST_F(ExprEvalTest, Functions) {
  EXPECT_EQ(Eval("LENGTH(b)", row_)->AsInt(), 5);
  EXPECT_EQ(Eval("SUBSTR(b, 2, 3)", row_)->AsString(), "ell");
  EXPECT_EQ(Eval("ABS(0 - a)", row_)->AsInt(), 6);
  EXPECT_EQ(Eval("SUCC(b)", row_)->AsString(), std::string("hello\xFF"));
  EXPECT_FALSE(Eval("NOPE(b)", row_).ok());
  EXPECT_FALSE(Eval("LENGTH(b, b)", row_).ok());
}

TEST_F(ExprEvalTest, LikePatterns) {
  EXPECT_EQ(Eval("b LIKE 'hel%'", row_)->AsInt(), 1);
  EXPECT_EQ(Eval("b LIKE '%llo'", row_)->AsInt(), 1);
  EXPECT_EQ(Eval("b LIKE 'h_llo'", row_)->AsInt(), 1);
  EXPECT_EQ(Eval("b LIKE 'h_l'", row_)->AsInt(), 0);
  EXPECT_EQ(Eval("b NOT LIKE 'z%'", row_)->AsInt(), 1);
  EXPECT_EQ(Eval("b LIKE '%'", row_)->AsInt(), 1);
}

TEST(LikeMatchTest, EdgeCases) {
  EXPECT_TRUE(LikeMatch("", ""));
  EXPECT_TRUE(LikeMatch("", "%"));
  EXPECT_FALSE(LikeMatch("", "_"));
  EXPECT_TRUE(LikeMatch("abc", "%%%"));
  EXPECT_TRUE(LikeMatch("aXbXc", "a%b%c"));
  EXPECT_FALSE(LikeMatch("ab", "a%bc"));
}

// ------------------------------------------------------------------ values

TEST(ValueTest, CompareSemantics) {
  EXPECT_EQ(Value::Int(3).Compare(Value::Double(3.0)), 0);
  EXPECT_LT(Value::Int(3).Compare(Value::Double(3.5)), 0);
  EXPECT_LT(Value::Null().Compare(Value::Int(-100)), 0);
  EXPECT_EQ(Value::Null().Compare(Value::Null()), 0);
  EXPECT_LT(Value::Text("a").Compare(Value::Text("b")), 0);
  // Cross-kind (numeric vs text) ordering is by type id, never equal.
  EXPECT_NE(Value::Int(0).Compare(Value::Text("0")), 0);
}

TEST(ValueTest, TruthinessAndDisplay) {
  EXPECT_TRUE(Value::Int(2).IsTruthy());
  EXPECT_FALSE(Value::Int(0).IsTruthy());
  EXPECT_FALSE(Value::Null().IsTruthy());
  EXPECT_TRUE(Value::Text("x").IsTruthy());
  EXPECT_FALSE(Value::Text("").IsTruthy());
  EXPECT_EQ(Value::Null().ToString(), "NULL");
  EXPECT_EQ(Value::Blob(std::string("\x01\xAB", 2)).ToString(), "x'01ab'");
}

TEST(ValueTest, NumericHashConsistency) {
  // 3 and 3.0 compare equal, so they must hash equal (hash join keys).
  EXPECT_EQ(Value::Int(3).Hash(), Value::Double(3.0).Hash());
}

// ----------------------------------------------------------------- planner

class PlannerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dbr = Database::Open();
    ASSERT_TRUE(dbr.ok());
    db_ = std::move(dbr).value();
    ASSERT_TRUE(db_->Execute("CREATE TABLE t (a INT, b INT, c TEXT)").ok());
    ASSERT_TRUE(db_->Execute("CREATE INDEX t_ab ON t (a, b)").ok());
    for (int i = 0; i < 100; ++i) {
      ASSERT_TRUE(db_
                      ->Execute("INSERT INTO t VALUES (" +
                                std::to_string(i % 10) + ", " +
                                std::to_string(i) + ", 'r" +
                                std::to_string(i) + "')")
                      .ok());
    }
  }

  std::string Plan(const std::string& sql) {
    auto p = db_->Explain(sql);
    EXPECT_TRUE(p.ok()) << p.status();
    return p.ok() ? *p : "";
  }

  std::unique_ptr<Database> db_;
};

TEST_F(PlannerTest, EqualityUsesIndex) {
  EXPECT_NE(Plan("SELECT * FROM t WHERE a = 3").find("IndexScan"),
            std::string::npos);
}

TEST_F(PlannerTest, EqualityPlusRangeUsesCompositeIndex) {
  std::string plan = Plan("SELECT * FROM t WHERE a = 3 AND b >= 10");
  EXPECT_NE(plan.find("IndexScan(t.t_ab range)"), std::string::npos) << plan;
  // Both conjuncts consumed: no residual filter.
  EXPECT_EQ(plan.find("Filter"), std::string::npos) << plan;
}

TEST_F(PlannerTest, NonLeadingColumnFallsBackToSeqScan) {
  std::string plan = Plan("SELECT * FROM t WHERE b = 5");
  EXPECT_NE(plan.find("SeqScan"), std::string::npos) << plan;
  EXPECT_NE(plan.find("Filter"), std::string::npos) << plan;
}

TEST_F(PlannerTest, ReversedOperandsStillSargable) {
  std::string plan = Plan("SELECT * FROM t WHERE 3 = a");
  EXPECT_NE(plan.find("IndexScan"), std::string::npos) << plan;
  auto rs = db_->Query("SELECT COUNT(*) FROM t WHERE 3 = a");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->rows[0][0].AsInt(), 10);
}

TEST_F(PlannerTest, IndexScanAndSeqScanAgree) {
  auto indexed =
      db_->Query("SELECT b FROM t WHERE a = 7 AND b > 20 ORDER BY b");
  ASSERT_TRUE(indexed.ok());
  auto scanned = db_->Query(
      "SELECT b FROM t WHERE a + 0 = 7 AND b > 20 ORDER BY b");
  ASSERT_TRUE(scanned.ok());  // a + 0 = 7 is not sargable -> seq scan
  ASSERT_EQ(indexed->rows.size(), scanned->rows.size());
  for (size_t i = 0; i < indexed->rows.size(); ++i) {
    EXPECT_EQ(indexed->rows[i][0].AsInt(), scanned->rows[i][0].AsInt());
  }
}

TEST_F(PlannerTest, SplitAndCombineConjuncts) {
  auto stmt = ParseSql("SELECT 1 FROM t WHERE a = 1 AND b = 2 AND c = 'x'");
  ASSERT_TRUE(stmt.ok());
  auto* sel = static_cast<SelectStmt*>(stmt->get());
  std::vector<ExprPtr> parts = SplitConjuncts(std::move(sel->where));
  EXPECT_EQ(parts.size(), 3u);
  ExprPtr back = CombineConjuncts(std::move(parts));
  ASSERT_NE(back, nullptr);
  EXPECT_EQ(back->ToString(), "(((a = 1) AND (b = 2)) AND (c = 'x'))");
  EXPECT_EQ(CombineConjuncts({}), nullptr);
}

TEST_F(PlannerTest, LossyCoercionIsNotSargable) {
  // 3.5 cannot be losslessly coerced to INT: must not use the index bounds
  // (which would be wrong), but the query must still answer correctly.
  std::string plan = Plan("SELECT * FROM t WHERE a = 3.5");
  EXPECT_EQ(plan.find("IndexScan(t.t_ab"), std::string::npos) << plan;
  auto rs = db_->Query("SELECT COUNT(*) FROM t WHERE a = 3.5");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->rows[0][0].AsInt(), 0);
  rs = db_->Query("SELECT COUNT(*) FROM t WHERE a > 3.5");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->rows[0][0].AsInt(), 60);  // a in {4..9}, 10 rows each
}

}  // namespace
}  // namespace oxml
