// Operator-level executor tests, exercised through SQL on controlled data:
// join semantics (duplicates, NULL keys, plan-shape independence),
// aggregates over edge cases, sorting stability and NULL ordering.

#include <gtest/gtest.h>

#include <memory>

#include "src/relational/database.h"

namespace oxml {
namespace {

class ExecutorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dbr = Database::Open();
    ASSERT_TRUE(dbr.ok());
    db_ = std::move(dbr).value();
  }

  void Must(const std::string& sql) {
    auto r = db_->Execute(sql);
    ASSERT_TRUE(r.ok()) << sql << " -> " << r.status();
  }

  ResultSet Rows(const std::string& sql) {
    auto r = db_->Query(sql);
    EXPECT_TRUE(r.ok()) << sql << " -> " << r.status();
    return r.ok() ? std::move(r).value() : ResultSet{};
  }

  std::unique_ptr<Database> db_;
};

TEST_F(ExecutorTest, JoinDuplicateKeysProduceCrossProductOfMatches) {
  Must("CREATE TABLE l (k INT, lv TEXT)");
  Must("CREATE TABLE r (k INT, rv TEXT)");
  Must("INSERT INTO l VALUES (1, 'a'), (1, 'b'), (2, 'c')");
  Must("INSERT INTO r VALUES (1, 'x'), (1, 'y'), (3, 'z')");
  ResultSet rs = Rows(
      "SELECT l.lv, r.rv FROM l, r WHERE l.k = r.k ORDER BY l.lv, r.rv");
  ASSERT_EQ(rs.rows.size(), 4u);  // 2 l-rows x 2 r-rows for k=1
  EXPECT_EQ(rs.rows[0][0].AsString(), "a");
  EXPECT_EQ(rs.rows[0][1].AsString(), "x");
  EXPECT_EQ(rs.rows[3][0].AsString(), "b");
  EXPECT_EQ(rs.rows[3][1].AsString(), "y");
}

TEST_F(ExecutorTest, NullKeysNeverJoin) {
  Must("CREATE TABLE l (k INT)");
  Must("CREATE TABLE r (k INT)");
  Must("INSERT INTO l VALUES (1), (NULL)");
  Must("INSERT INTO r VALUES (1), (NULL)");
  // Hash join path.
  EXPECT_EQ(Rows("SELECT l.k FROM l, r WHERE l.k = r.k").rows.size(), 1u);
  // Index-nested-loop path.
  Must("CREATE INDEX r_k ON r (k)");
  EXPECT_EQ(Rows("SELECT l.k FROM l, r WHERE l.k = r.k").rows.size(), 1u);
}

TEST_F(ExecutorTest, JoinResultIndependentOfJoinAlgorithm) {
  Must("CREATE TABLE a (x INT, p TEXT)");
  Must("CREATE TABLE b (x INT, q TEXT)");
  for (int i = 0; i < 50; ++i) {
    Must("INSERT INTO a VALUES (" + std::to_string(i % 7) + ", 'a" +
         std::to_string(i) + "')");
    Must("INSERT INTO b VALUES (" + std::to_string(i % 5) + ", 'b" +
         std::to_string(i) + "')");
  }
  ResultSet hash_join = Rows(
      "SELECT a.p, b.q FROM a, b WHERE a.x = b.x ORDER BY a.p, b.q");
  Must("CREATE INDEX b_x ON b (x)");
  auto plan = db_->Explain("SELECT a.p, b.q FROM a, b WHERE a.x = b.x");
  ASSERT_TRUE(plan.ok());
  EXPECT_NE(plan->find("IndexNestedLoopJoin"), std::string::npos) << *plan;
  ResultSet inlj = Rows(
      "SELECT a.p, b.q FROM a, b WHERE a.x = b.x ORDER BY a.p, b.q");
  ASSERT_EQ(hash_join.rows.size(), inlj.rows.size());
  for (size_t i = 0; i < hash_join.rows.size(); ++i) {
    EXPECT_EQ(hash_join.rows[i][0].AsString(), inlj.rows[i][0].AsString());
    EXPECT_EQ(hash_join.rows[i][1].AsString(), inlj.rows[i][1].AsString());
  }
}

TEST_F(ExecutorTest, ThreeWayJoin) {
  Must("CREATE TABLE t1 (a INT)");
  Must("CREATE TABLE t2 (a INT, b INT)");
  Must("CREATE TABLE t3 (b INT, v TEXT)");
  Must("INSERT INTO t1 VALUES (1), (2)");
  Must("INSERT INTO t2 VALUES (1, 10), (2, 20), (2, 30)");
  Must("INSERT INTO t3 VALUES (10, 'ten'), (20, 'twenty'), (30, 'thirty')");
  ResultSet rs = Rows(
      "SELECT t1.a, t3.v FROM t1, t2, t3 "
      "WHERE t1.a = t2.a AND t2.b = t3.b ORDER BY t3.v");
  ASSERT_EQ(rs.rows.size(), 3u);
  EXPECT_EQ(rs.rows[0][1].AsString(), "ten");
  EXPECT_EQ(rs.rows[2][1].AsString(), "twenty");
}

TEST_F(ExecutorTest, AggregatesIgnoreNulls) {
  Must("CREATE TABLE t (g INT, v INT)");
  Must("INSERT INTO t VALUES (1, 10), (1, NULL), (2, 5), (2, 7), (1, 20)");
  ResultSet rs = Rows(
      "SELECT g, COUNT(*) AS all_rows, COUNT(v) AS non_null, SUM(v), "
      "AVG(v), MIN(v), MAX(v) FROM t GROUP BY g ORDER BY g");
  ASSERT_EQ(rs.rows.size(), 2u);
  // Group 1: rows 3, non-null 2, sum 30, avg 15, min 10, max 20.
  EXPECT_EQ(rs.rows[0][1].AsInt(), 3);
  EXPECT_EQ(rs.rows[0][2].AsInt(), 2);
  EXPECT_EQ(rs.rows[0][3].AsInt(), 30);
  EXPECT_DOUBLE_EQ(rs.rows[0][4].AsDouble(), 15.0);
  EXPECT_EQ(rs.rows[0][5].AsInt(), 10);
  EXPECT_EQ(rs.rows[0][6].AsInt(), 20);
}

TEST_F(ExecutorTest, SumAvgOverAllNullGroup) {
  Must("CREATE TABLE t (v INT)");
  Must("INSERT INTO t VALUES (NULL), (NULL)");
  ResultSet rs = Rows("SELECT SUM(v), AVG(v), COUNT(v), COUNT(*) FROM t");
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_TRUE(rs.rows[0][0].is_null());
  EXPECT_TRUE(rs.rows[0][1].is_null());
  EXPECT_EQ(rs.rows[0][2].AsInt(), 0);
  EXPECT_EQ(rs.rows[0][3].AsInt(), 2);
}

TEST_F(ExecutorTest, GroupByNullFormsItsOwnGroup) {
  Must("CREATE TABLE t (g INT, v INT)");
  Must("INSERT INTO t VALUES (NULL, 1), (NULL, 2), (1, 3)");
  ResultSet rs = Rows("SELECT g, COUNT(*) FROM t GROUP BY g ORDER BY g");
  ASSERT_EQ(rs.rows.size(), 2u);
  EXPECT_TRUE(rs.rows[0][0].is_null());  // NULL sorts first
  EXPECT_EQ(rs.rows[0][1].AsInt(), 2);
}

TEST_F(ExecutorTest, SortIsStableAndNullsFirst) {
  Must("CREATE TABLE t (k INT, seq INT)");
  Must("INSERT INTO t VALUES (2, 1), (1, 2), (2, 3), (NULL, 4), (1, 5)");
  ResultSet rs = Rows("SELECT k, seq FROM t ORDER BY k");
  ASSERT_EQ(rs.rows.size(), 5u);
  EXPECT_TRUE(rs.rows[0][0].is_null());
  // Stability: within equal keys, heap order (seq) is preserved.
  EXPECT_EQ(rs.rows[1][1].AsInt(), 2);
  EXPECT_EQ(rs.rows[2][1].AsInt(), 5);
  EXPECT_EQ(rs.rows[3][1].AsInt(), 1);
  EXPECT_EQ(rs.rows[4][1].AsInt(), 3);
}

TEST_F(ExecutorTest, OrderByExpression) {
  Must("CREATE TABLE t (a INT)");
  Must("INSERT INTO t VALUES (3), (1), (2)");
  ResultSet rs = Rows("SELECT a FROM t ORDER BY a * -1");
  ASSERT_EQ(rs.rows.size(), 3u);
  EXPECT_EQ(rs.rows[0][0].AsInt(), 3);
  EXPECT_EQ(rs.rows[2][0].AsInt(), 1);
}

TEST_F(ExecutorTest, LimitZeroAndOverrun) {
  Must("CREATE TABLE t (a INT)");
  Must("INSERT INTO t VALUES (1), (2)");
  EXPECT_EQ(Rows("SELECT a FROM t LIMIT 0").rows.size(), 0u);
  EXPECT_EQ(Rows("SELECT a FROM t LIMIT 99").rows.size(), 2u);
}

TEST_F(ExecutorTest, DistinctOnMultipleColumns) {
  Must("CREATE TABLE t (a INT, b TEXT)");
  Must("INSERT INTO t VALUES (1, 'x'), (1, 'x'), (1, 'y'), (2, 'x')");
  EXPECT_EQ(Rows("SELECT DISTINCT a, b FROM t").rows.size(), 3u);
  EXPECT_EQ(Rows("SELECT DISTINCT a FROM t").rows.size(), 2u);
}

TEST_F(ExecutorTest, DistinctTreatsIntAndDoubleEqualValuesAsEqual) {
  Must("CREATE TABLE t (a DOUBLE)");
  Must("INSERT INTO t VALUES (1), (1.0), (2)");
  EXPECT_EQ(Rows("SELECT DISTINCT a FROM t").rows.size(), 2u);
}

TEST_F(ExecutorTest, CrossProductSizes) {
  Must("CREATE TABLE a (x INT)");
  Must("CREATE TABLE b (y INT)");
  Must("INSERT INTO a VALUES (1), (2), (3)");
  Must("INSERT INTO b VALUES (1), (2)");
  EXPECT_EQ(Rows("SELECT a.x, b.y FROM a, b").rows.size(), 6u);
  // Empty side → empty product.
  Must("CREATE TABLE c (z INT)");
  EXPECT_EQ(Rows("SELECT a.x, c.z FROM a, c").rows.size(), 0u);
}

TEST_F(ExecutorTest, SelfJoinWithAliases) {
  Must("CREATE TABLE t (id INT, parent INT)");
  Must("INSERT INTO t VALUES (1, 0), (2, 1), (3, 1), (4, 2)");
  ResultSet rs = Rows(
      "SELECT child.id FROM t child, t parent "
      "WHERE child.parent = parent.id AND parent.parent = 0 "
      "ORDER BY child.id");
  ASSERT_EQ(rs.rows.size(), 2u);
  EXPECT_EQ(rs.rows[0][0].AsInt(), 2);
  EXPECT_EQ(rs.rows[1][0].AsInt(), 3);
}

TEST_F(ExecutorTest, NonEquiJoinFallsBackToNestedLoop) {
  Must("CREATE TABLE a (x INT)");
  Must("CREATE TABLE b (y INT)");
  Must("INSERT INTO a VALUES (1), (5)");
  Must("INSERT INTO b VALUES (2), (4), (6)");
  auto plan = db_->Explain("SELECT a.x, b.y FROM a, b WHERE a.x < b.y");
  ASSERT_TRUE(plan.ok());
  EXPECT_NE(plan->find("NestedLoopJoin"), std::string::npos) << *plan;
  ResultSet rs = Rows(
      "SELECT a.x, b.y FROM a, b WHERE a.x < b.y ORDER BY a.x, b.y");
  EXPECT_EQ(rs.rows.size(), 4u);  // 1<2,1<4,1<6, 5<6
}

TEST_F(ExecutorTest, UpdateSeesConsistentSnapshotOfMatches) {
  // Halloween-problem guard: the update must not reprocess rows it moved.
  Must("CREATE TABLE t (a INT)");
  Must("CREATE INDEX t_a ON t (a)");
  for (int i = 0; i < 20; ++i) {
    Must("INSERT INTO t VALUES (" + std::to_string(i) + ")");
  }
  auto n = db_->Execute("UPDATE t SET a = a + 100 WHERE a >= 10");
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 10);
  ResultSet rs = Rows("SELECT COUNT(*) FROM t WHERE a >= 110");
  EXPECT_EQ(rs.rows[0][0].AsInt(), 10);
}

}  // namespace
}  // namespace oxml
