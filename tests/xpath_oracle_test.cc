// Differential XPath testing: an independent DOM-based reference evaluator
// (the oracle) is run against the same queries as the relational stores.
// Result sequences — including document order — must match exactly, for
// every encoding, on both structured and randomly generated documents.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/core/xpath.h"
#include "src/core/xpath_eval.h"
#include "src/xml/xml_generator.h"
#include "src/xml/xml_parser.h"
#include "src/xml/xml_writer.h"

namespace oxml {
namespace {

/// A DOM node or attribute reference produced by the oracle.
struct OracleNode {
  const XmlNode* node = nullptr;
  int attr_index = -1;  // >= 0: the attr_index-th attribute of `node`

  bool is_attribute() const { return attr_index >= 0; }
  bool operator<(const OracleNode& o) const {
    if (node != o.node) return node < o.node;
    return attr_index < o.attr_index;
  }
};

/// Reference evaluator over the DOM, mirroring the library's XPath subset
/// semantics but implemented entirely independently (tree walking).
class OracleEvaluator {
 public:
  explicit OracleEvaluator(const XmlDocument& doc) : doc_(doc) {
    int counter = 0;
    Number(doc_.root(), &counter);
  }

  std::vector<OracleNode> Evaluate(const XPathQuery& q) {
    std::vector<OracleNode> context;
    // First step from the document node.
    const XPathStep& first = q.steps[0];
    std::vector<OracleNode> candidates;
    for (const auto& top : doc_.root()->children()) {
      if (first.axis == XPathStep::Axis::kChild) {
        if (Matches(first.test, top.get())) candidates.push_back({top.get()});
      } else {
        CollectDescendantsOrSelf(top.get(), first.test, &candidates);
      }
    }
    context = ApplyPredicates(first.predicates, candidates);

    for (size_t s = 1; s < q.steps.size(); ++s) {
      const XPathStep& step = q.steps[s];
      std::vector<OracleNode> next;
      std::set<OracleNode> seen;
      for (const OracleNode& ctx : context) {
        if (ctx.is_attribute()) continue;
        std::vector<OracleNode> cands = Expand(ctx.node, step);
        cands = ApplyPredicates(step.predicates, cands);
        for (const OracleNode& c : cands) {
          if (seen.insert(c).second) next.push_back(c);
        }
      }
      SortDocOrder(&next);
      context = std::move(next);
    }
    return context;
  }

  /// Comparable signature of a result node (tag + serialized content).
  std::string Signature(const OracleNode& n) const {
    if (n.is_attribute()) {
      const XmlAttribute& a = n.node->attributes()[n.attr_index];
      return "@" + a.name + "=" + a.value;
    }
    return WriteXml(*n.node);
  }

 private:
  void Number(const XmlNode* node, int* counter) {
    order_[node] = (*counter)++;
    for (const auto& c : node->children()) Number(c.get(), counter);
  }

  static bool Matches(const NodeTest& test, const XmlNode* n) {
    return test.Matches(n->kind(), n->name());
  }

  void CollectDescendantsOrSelf(const XmlNode* node, const NodeTest& test,
                                std::vector<OracleNode>* out) {
    if (Matches(test, node)) out->push_back({node});
    for (const auto& c : node->children()) {
      CollectDescendantsOrSelf(c.get(), test, out);
    }
  }

  std::vector<OracleNode> Expand(const XmlNode* node, const XPathStep& step) {
    std::vector<OracleNode> out;
    switch (step.axis) {
      case XPathStep::Axis::kChild:
        for (const auto& c : node->children()) {
          if (Matches(step.test, c.get())) out.push_back({c.get()});
        }
        break;
      case XPathStep::Axis::kDescendant:
        for (const auto& c : node->children()) {
          CollectDescendantsOrSelf(c.get(), step.test, &out);
        }
        break;
      case XPathStep::Axis::kFollowingSibling: {
        const XmlNode* parent = node->parent();
        if (parent == nullptr) break;
        size_t idx = node->IndexInParent();
        for (size_t i = idx + 1; i < parent->child_count(); ++i) {
          if (Matches(step.test, parent->child(i))) {
            out.push_back({parent->child(i)});
          }
        }
        break;
      }
      case XPathStep::Axis::kPrecedingSibling: {
        const XmlNode* parent = node->parent();
        if (parent == nullptr) break;
        size_t idx = node->IndexInParent();
        for (size_t i = 0; i < idx; ++i) {
          if (Matches(step.test, parent->child(i))) {
            out.push_back({parent->child(i)});
          }
        }
        break;
      }
      case XPathStep::Axis::kAttribute:
        for (size_t i = 0; i < node->attributes().size(); ++i) {
          if (step.attribute_name.empty() ||
              node->attributes()[i].name == step.attribute_name) {
            out.push_back({node, static_cast<int>(i)});
          }
        }
        break;
      case XPathStep::Axis::kParent: {
        const XmlNode* p = node->parent();
        if (p != nullptr && p->kind() != XmlNodeKind::kDocument &&
            Matches(step.test, p)) {
          out.push_back({p});
        }
        break;
      }
      case XPathStep::Axis::kAncestor: {
        const XmlNode* p = node->parent();
        while (p != nullptr && p->kind() != XmlNodeKind::kDocument) {
          if (Matches(step.test, p)) out.push_back({p});
          p = p->parent();
        }
        std::reverse(out.begin(), out.end());
        break;
      }
    }
    return out;
  }

  static bool Cmp(XPathCmp op, int c) {
    switch (op) {
      case XPathCmp::kEq:
        return c == 0;
      case XPathCmp::kNe:
        return c != 0;
      case XPathCmp::kLt:
        return c < 0;
      case XPathCmp::kLe:
        return c <= 0;
      case XPathCmp::kGt:
        return c > 0;
      case XPathCmp::kGe:
        return c >= 0;
    }
    return false;
  }

  static int CompareValues(const std::string& a, const std::string& b) {
    char* ea = nullptr;
    char* eb = nullptr;
    double da = std::strtod(a.c_str(), &ea);
    double db = std::strtod(b.c_str(), &eb);
    if (!a.empty() && !b.empty() && *ea == '\0' && *eb == '\0') {
      return da < db ? -1 : (da > db ? 1 : 0);
    }
    return a.compare(b);
  }

  std::vector<OracleNode> ApplyPredicates(
      const std::vector<XPathPredicate>& preds,
      std::vector<OracleNode> candidates) {
    for (const XPathPredicate& pred : preds) {
      std::vector<OracleNode> kept;
      int64_t size = static_cast<int64_t>(candidates.size());
      for (int64_t i = 0; i < size; ++i) {
        const OracleNode& cand = candidates[i];
        bool keep = false;
        switch (pred.kind) {
          case XPathPredicate::Kind::kPosition:
            keep = Cmp(pred.op, i + 1 < pred.position
                                    ? -1
                                    : (i + 1 > pred.position ? 1 : 0));
            break;
          case XPathPredicate::Kind::kLast:
            keep = (i + 1 == size);
            break;
          case XPathPredicate::Kind::kAttribute: {
            const std::string* v = cand.node->attribute(pred.name);
            keep = v != nullptr && Cmp(pred.op, CompareValues(*v,
                                                              pred.literal));
            break;
          }
          case XPathPredicate::Kind::kHasAttribute:
            keep = cand.node->attribute(pred.name) != nullptr;
            break;
          case XPathPredicate::Kind::kChildValue:
            for (const auto& c : cand.node->children()) {
              if (c->is_element() && c->name() == pred.name &&
                  Cmp(pred.op, CompareValues(c->InnerText(), pred.literal))) {
                keep = true;
                break;
              }
            }
            break;
          case XPathPredicate::Kind::kSelfValue:
            keep = Cmp(pred.op,
                       CompareValues(cand.node->InnerText(), pred.literal));
            break;
        }
        if (keep) kept.push_back(cand);
      }
      candidates = std::move(kept);
    }
    return candidates;
  }

  void SortDocOrder(std::vector<OracleNode>* nodes) {
    std::stable_sort(nodes->begin(), nodes->end(),
                     [this](const OracleNode& a, const OracleNode& b) {
                       int oa = order_.at(a.node);
                       int ob = order_.at(b.node);
                       if (oa != ob) return oa < ob;
                       return a.attr_index < b.attr_index;
                     });
  }

  const XmlDocument& doc_;
  std::map<const XmlNode*, int> order_;
};

/// Comparable signature of a store result.
Result<std::string> StoreSignature(OrderedXmlStore* store,
                                   const StoredNode& n) {
  if (n.kind == XmlNodeKind::kAttribute) {
    return "@" + n.tag + "=" + n.value;
  }
  OXML_ASSIGN_OR_RETURN(std::unique_ptr<XmlNode> subtree,
                        store->ReconstructSubtree(n));
  return WriteXml(*subtree);
}

const char* const kQueries[] = {
    "/nitf",
    "/nitf/body/section",
    "/nitf/*",
    "//para",
    "//title",
    "/nitf//para",
    "//body//para",
    "//section[3]",
    "//section[last()]",
    "//section[position() >= 4]",
    "//section[position() <= 2]/para[2]",
    "//para[@class = 'lead']",
    "//para[@class]",
    "//section[@id]/title",
    "//section[@id = 's3']/para",
    "//section[title != '']/title",
    "//section[2]/following-sibling::section",
    "//section[4]/preceding-sibling::section/title",
    "//section/@id",
    "//para/text()",
    "//para[@class = 'lead']/..",
    "//para/parent::section/title",
    "//para[2]/ancestor::section/@id",
    "//title/ancestor::*",
    "//section[@id = 's2']/para[. != '']",
    "/nitf/body/section[5]/para[last()]/text()",
};

class XPathOracleTest : public ::testing::TestWithParam<OrderEncoding> {};

TEST_P(XPathOracleTest, AgreesWithDomOracleOnNewsDoc) {
  NewsGeneratorOptions opts;
  opts.seed = 2002;
  opts.sections = 7;
  opts.paragraphs_per_section = 4;
  auto doc = GenerateNewsXml(opts);
  OracleEvaluator oracle(*doc);

  auto dbr = Database::Open();
  ASSERT_TRUE(dbr.ok());
  std::unique_ptr<Database> db = std::move(dbr).value();
  auto sr = OrderedXmlStore::Create(db.get(), GetParam(), {.gap = 8});
  ASSERT_TRUE(sr.ok());
  std::unique_ptr<OrderedXmlStore> store = std::move(sr).value();
  ASSERT_TRUE(store->LoadDocument(*doc).ok());

  for (const char* q : kQueries) {
    auto parsed = ParseXPath(q);
    ASSERT_TRUE(parsed.ok()) << q;
    std::vector<OracleNode> expected = oracle.Evaluate(*parsed);
    auto actual = EvaluateXPath(store.get(), *parsed);
    ASSERT_TRUE(actual.ok()) << q << ": " << actual.status();
    ASSERT_EQ(actual->size(), expected.size()) << q;
    for (size_t i = 0; i < expected.size(); ++i) {
      auto sig = StoreSignature(store.get(), (*actual)[i]);
      ASSERT_TRUE(sig.ok()) << q;
      EXPECT_EQ(*sig, oracle.Signature(expected[i]))
          << q << " result " << i;
    }
  }
}

TEST_P(XPathOracleTest, AgreesWithDomOracleOnRandomDocs) {
  for (uint64_t seed : {1u, 2u, 3u}) {
    XmlGeneratorOptions gopts;
    gopts.seed = seed;
    gopts.target_nodes = 400;
    gopts.tag_vocabulary = 6;
    gopts.max_depth = 5;
    auto doc = GenerateXml(gopts);
    OracleEvaluator oracle(*doc);

    auto dbr = Database::Open();
    ASSERT_TRUE(dbr.ok());
    std::unique_ptr<Database> db = std::move(dbr).value();
    auto sr = OrderedXmlStore::Create(db.get(), GetParam(), {.gap = 8});
    ASSERT_TRUE(sr.ok());
    std::unique_ptr<OrderedXmlStore> store = std::move(sr).value();
    ASSERT_TRUE(store->LoadDocument(*doc).ok());

    const char* const queries[] = {
        "//tag1",
        "//tag2",
        "/root/*",
        "//tag3[1]",
        "//tag0[last()]",
        "//tag1/tag2",
        "//tag4/text()",
        "//tag2/@id",
        "//tag0/following-sibling::tag1",
        "//tag3[position() <= 2]",
    };
    for (const char* q : queries) {
      auto parsed = ParseXPath(q);
      ASSERT_TRUE(parsed.ok()) << q;
      std::vector<OracleNode> expected = oracle.Evaluate(*parsed);
      auto actual = EvaluateXPath(store.get(), *parsed);
      ASSERT_TRUE(actual.ok()) << q << ": " << actual.status();
      ASSERT_EQ(actual->size(), expected.size())
          << "seed " << seed << " query " << q;
      for (size_t i = 0; i < expected.size(); ++i) {
        auto sig = StoreSignature(store.get(), (*actual)[i]);
        ASSERT_TRUE(sig.ok());
        EXPECT_EQ(*sig, oracle.Signature(expected[i]))
            << "seed " << seed << " query " << q << " result " << i;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllEncodings, XPathOracleTest,
                         ::testing::Values(OrderEncoding::kGlobal,
                                           OrderEncoding::kLocal,
                                           OrderEncoding::kDewey),
                         [](const auto& info) {
                           return OrderEncodingToString(info.param);
                         });

}  // namespace
}  // namespace oxml
