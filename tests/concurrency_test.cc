// Multi-threaded execution: thread-pool and statement-latch units,
// concurrent-reader stress on every encoding, the writers-exclude-readers
// invariant, and a parallel-vs-serial differential over the QR workload
// (plans with ParallelScanOp / ParallelStructuralJoinOp must give
// byte-identical ordered results to the serial operators they replace).
//
// Built with -DOXML_TSAN=ON in CI, these tests double as the
// ThreadSanitizer workload for the latched buffer pool and plan cache.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/core/xpath_eval.h"
#include "src/relational/database.h"
#include "src/relational/thread_pool.h"
#include "src/xml/xml_generator.h"
#include "src/xml/xml_writer.h"

namespace oxml {
namespace {

// ------------------------------------------------------------- ThreadPool

TEST(ThreadPoolTest, ParallelForCoversEveryShardOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  constexpr size_t kShards = 100;  // more shards than workers
  std::vector<std::atomic<int>> hits(kShards);
  Status st = pool.ParallelFor(kShards, [&](size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
    return Status::OK();
  });
  ASSERT_TRUE(st.ok()) << st;
  for (size_t i = 0; i < kShards; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "shard " << i;
  }
}

TEST(ThreadPoolTest, ZeroAndSingleShardShortCircuit) {
  ThreadPool pool(2);
  EXPECT_TRUE(pool.ParallelFor(0, [](size_t) {
    ADD_FAILURE() << "zero shards must not invoke the body";
    return Status::OK();
  }).ok());
  std::atomic<int> calls{0};
  EXPECT_TRUE(pool.ParallelFor(1, [&](size_t i) {
    EXPECT_EQ(i, 0u);
    ++calls;
    return Status::OK();
  }).ok());
  EXPECT_EQ(calls.load(), 1);
}

TEST(ThreadPoolTest, PropagatesAnError) {
  ThreadPool pool(4);
  Status st = pool.ParallelFor(64, [&](size_t i) {
    if (i == 13) return Status::Internal("shard 13 failed");
    return Status::OK();
  });
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("shard 13"), std::string::npos);
}

TEST(ThreadPoolTest, RunsShardsConcurrently) {
  ThreadPool pool(3);
  // All four participants (three workers + the caller) must be inside the
  // body at once before any may leave.
  std::atomic<size_t> inside{0};
  Status st = pool.ParallelFor(4, [&](size_t) {
    inside.fetch_add(1);
    while (inside.load() < 4) std::this_thread::yield();
    return Status::OK();
  });
  EXPECT_TRUE(st.ok()) << st;
}

// --------------------------------------------------------- StatementLatch

TEST(StatementLatchTest, ExclusiveIsReentrantAndAbsorbsShared) {
  StatementLatch latch;
  latch.LockExclusive();
  latch.LockExclusive();        // nested (auto-commit inside a statement)
  latch.LockShared();           // read inside own transaction: no deadlock
  latch.UnlockShared();
  latch.UnlockExclusive();
  // Still held once: another thread must not get the shared lock yet.
  std::atomic<bool> acquired{false};
  std::thread reader([&] {
    latch.LockShared();
    acquired.store(true);
    latch.UnlockShared();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(acquired.load());
  latch.UnlockExclusive();
  reader.join();
  EXPECT_TRUE(acquired.load());
}

// Shared acquisition is reentrant per thread: a queued writer must not
// deadlock a thread re-acquiring shared against its own outstanding hold
// (writer preference blocks *new* readers, not admitted ones).
TEST(StatementLatchTest, SharedIsReentrantUnderWriterPressure) {
  StatementLatch latch;
  latch.LockShared();
  std::atomic<bool> writer_done{false};
  std::thread writer([&] {
    latch.LockExclusive();
    writer_done.store(true);
    latch.UnlockExclusive();
  });
  // Give the writer time to queue; without reentrancy the nested shared
  // acquisition below then deadlocks rather than merely racing past.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  latch.LockShared();
  latch.UnlockShared();
  EXPECT_FALSE(writer_done.load());  // writer still excluded by outer hold
  latch.UnlockShared();
  writer.join();
  EXPECT_TRUE(writer_done.load());
}

// The undo-capture race distilled: with a transaction open, threads
// fetching resident pages concurrently (the txn owner's parallel-scan
// workers do exactly this) must not touch the unsynchronized undo map —
// every transactional fetch takes the exclusive page-table path. Without
// that, TSan flags concurrent undo-map access here deterministically.
TEST(BufferPoolTxnTest, ConcurrentFetchesInsideTxnAreRaceFree) {
  BufferPool pool(std::make_unique<MemoryBackend>());
  constexpr uint32_t kPages = 16;
  for (uint32_t i = 0; i < kPages; ++i) {
    auto p = pool.NewPage();
    ASSERT_TRUE(p.ok()) << p.status();
  }
  ASSERT_TRUE(pool.BeginTxn().ok());
  constexpr int kThreads = 4;
  std::atomic<int> ready{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      ready.fetch_add(1);
      while (ready.load() < kThreads) std::this_thread::yield();
      for (uint32_t i = 0; i < 200; ++i) {
        auto p = pool.FetchPage((static_cast<uint32_t>(t) + i) % kPages);
        if (!p.ok()) ++failures;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  ASSERT_TRUE(pool.RollbackTxn().ok());
}

// ------------------------------------------------------- reader-level tests

struct LoadedStore {
  std::unique_ptr<Database> db;
  std::unique_ptr<OrderedXmlStore> store;
};

LoadedStore LoadNews(OrderEncoding enc, bool parallel_exec,
                     size_t num_threads = 4) {
  DatabaseOptions opts;
  opts.enable_parallel_execution = parallel_exec;
  opts.num_threads = num_threads;
  opts.parallel_scan_min_rows = 1;  // force parallel plans on the fixture
  LoadedStore out;
  auto db = Database::Open(opts);
  EXPECT_TRUE(db.ok()) << db.status();
  out.db = std::move(db).value();
  auto store = OrderedXmlStore::Create(out.db.get(), enc, StoreOptions{});
  EXPECT_TRUE(store.ok()) << store.status();
  out.store = std::move(store).value();

  // Large enough that index scans span several B+tree leaves and the heap
  // chain several pages — otherwise parallel plans degenerate to one morsel.
  NewsGeneratorOptions gen;
  gen.sections = 25;
  gen.paragraphs_per_section = 12;
  gen.seed = 42;
  auto doc = GenerateNewsXml(gen);
  EXPECT_TRUE(out.store->LoadDocument(*doc).ok());
  return out;
}

std::vector<std::string> Identities(OrderEncoding enc,
                                    const std::vector<StoredNode>& nodes) {
  std::vector<std::string> out;
  out.reserve(nodes.size());
  for (const StoredNode& n : nodes) out.push_back(NodeIdentity(enc, n));
  return out;
}

class ConcurrencyTest : public ::testing::TestWithParam<OrderEncoding> {};

// N threads x M iterations of mixed read-only work — XPath evaluation
// (which fans out into many QueryP calls) and raw SQL — against one store.
// Every thread must observe exactly the single-threaded answer every time.
TEST_P(ConcurrencyTest, ConcurrentReadersSeeConsistentResults) {
  OrderEncoding enc = GetParam();
  LoadedStore ls = LoadNews(enc, /*parallel_exec=*/false);

  auto baseline = EvaluateXPath(ls.store.get(), "//para");
  ASSERT_TRUE(baseline.ok()) << baseline.status();
  ASSERT_FALSE(baseline->empty());
  std::vector<std::string> expect = Identities(enc, *baseline);

  constexpr int kThreads = 8;
  constexpr int kIters = 20;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        // Alternate between the XPath driver and ad-hoc SQL so both the
        // QueryP instance pool and the plain Query path are exercised.
        if ((t + i) % 2 == 0) {
          auto r = EvaluateXPath(ls.store.get(), "//para");
          if (!r.ok() || Identities(enc, *r) != expect) ++failures;
        } else {
          auto r = ls.db->Query("SELECT COUNT(*) FROM nodes");
          if (!r.ok() || r->rows.size() != 1) ++failures;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
}

// A writer appending rows in fixed-size transactions while readers count:
// the statement latch must never let a reader observe a partial batch.
TEST(ConcurrencyWriterTest, WritersExcludeReaders) {
  auto dbr = Database::Open(DatabaseOptions{});
  ASSERT_TRUE(dbr.ok()) << dbr.status();
  std::unique_ptr<Database> db = std::move(dbr).value();
  ASSERT_TRUE(db->Execute("CREATE TABLE t (a INT)").ok());

  constexpr int kBatch = 10;
  constexpr int kBatches = 30;
  std::atomic<bool> done{false};
  std::atomic<int> violations{0};

  std::vector<std::thread> readers;
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&] {
      while (!done.load(std::memory_order_acquire)) {
        auto rs = db->Query("SELECT COUNT(*) FROM t");
        if (!rs.ok()) {
          ++violations;
          continue;
        }
        int64_t n = rs->rows[0][0].AsInt();
        if (n % kBatch != 0) ++violations;  // saw inside a transaction
      }
    });
  }

  for (int b = 0; b < kBatches; ++b) {
    ASSERT_TRUE(db->Begin().ok());
    for (int i = 0; i < kBatch; ++i) {
      ASSERT_TRUE(
          db->ExecuteP("INSERT INTO t VALUES (?)", {Value::Int(i)}).ok());
    }
    ASSERT_TRUE(db->Commit().ok());
  }
  done.store(true, std::memory_order_release);
  for (auto& th : readers) th.join();
  EXPECT_EQ(violations.load(), 0);

  auto rs = db->Query("SELECT COUNT(*) FROM t");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->rows[0][0].AsInt(), int64_t{kBatch} * kBatches);
}

// Concurrent parameterized queries on one SQL text: the per-text instance
// pool must keep every thread's bindings private.
TEST(ConcurrencyWriterTest, QueryPBindingsStayPrivatePerThread) {
  auto dbr = Database::Open(DatabaseOptions{});
  ASSERT_TRUE(dbr.ok()) << dbr.status();
  std::unique_ptr<Database> db = std::move(dbr).value();
  ASSERT_TRUE(db->Execute("CREATE TABLE kv (k INT, v INT)").ok());
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(db->ExecuteP("INSERT INTO kv VALUES (?, ?)",
                             {Value::Int(i), Value::Int(i * 100)})
                    .ok());
  }
  constexpr int kThreads = 8;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 50; ++i) {
        int k = (t * 50 + i) % 64;
        auto rs = db->QueryP("SELECT v FROM kv WHERE k = ?", {Value::Int(k)});
        if (!rs.ok() || rs->rows.size() != 1 ||
            rs->rows[0][0].AsInt() != k * 100) {
          ++failures;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
}

INSTANTIATE_TEST_SUITE_P(AllEncodings, ConcurrencyTest,
                         ::testing::Values(OrderEncoding::kGlobal,
                                           OrderEncoding::kLocal,
                                           OrderEncoding::kDewey));

// --------------------------------------------- parallel-vs-serial differential

const char* const kQueries[] = {
    "//para",                                            // QR1
    "/nitf/body/section[5]/title",                       // QR2
    "/nitf/body/section[last()]/para[last()]",           // QR3
    "//section[@id = 's3']/following-sibling::section",  // QR4
    "/nitf/body//para",                                  // QR5
    "//para[@class = 'lead']",                           // QR6
    "/nitf/body/section[position() >= 5]/title",         // QR7
};

class ParallelDifferentialTest
    : public ::testing::TestWithParam<OrderEncoding> {};

TEST_P(ParallelDifferentialTest, ParallelPlansMatchSerialByteForByte) {
  OrderEncoding enc = GetParam();
  LoadedStore par = LoadNews(enc, /*parallel_exec=*/true);
  LoadedStore ser = LoadNews(enc, /*parallel_exec=*/false);

  for (const char* xpath : kQueries) {
    auto a = EvaluateXPath(par.store.get(), xpath);
    auto b = EvaluateXPath(ser.store.get(), xpath);
    ASSERT_TRUE(a.ok()) << xpath << " -> " << a.status();
    ASSERT_TRUE(b.ok()) << xpath << " -> " << b.status();
    EXPECT_FALSE(b->empty()) << xpath;
    EXPECT_EQ(Identities(enc, *a), Identities(enc, *b)) << xpath;
  }

  // QR8: subtree reconstruction of one section.
  auto sa = EvaluateXPath(par.store.get(), "/nitf/body/section[3]");
  auto sb = EvaluateXPath(ser.store.get(), "/nitf/body/section[3]");
  ASSERT_TRUE(sa.ok() && sb.ok());
  ASSERT_EQ(sa->size(), 1u);
  ASSERT_EQ(sb->size(), 1u);
  auto ra = par.store->ReconstructSubtree((*sa)[0]);
  auto rb = ser.store->ReconstructSubtree((*sb)[0]);
  ASSERT_TRUE(ra.ok()) << ra.status();
  ASSERT_TRUE(rb.ok()) << rb.status();
  EXPECT_EQ(WriteXml(**ra), WriteXml(**rb));

  // A full unparameterized scan plans as a parallel heap scan on every
  // encoding (XPath probes under Local are parameterized and stay serial).
  auto ca = par.db->Query("SELECT COUNT(*) FROM nodes");
  auto cb = ser.db->Query("SELECT COUNT(*) FROM nodes");
  ASSERT_TRUE(ca.ok() && cb.ok());
  EXPECT_EQ(ca->rows[0][0].AsInt(), cb->rows[0][0].AsInt());

  // The parallel side must actually have fanned out; the serial side never.
  EXPECT_GT(par.db->stats()->morsels, 0u);
  EXPECT_GT(par.db->stats()->threads_used, 1u);
  EXPECT_EQ(ser.db->stats()->morsels, 0u);
  EXPECT_EQ(ser.db->stats()->threads_used, 0u);
}

// Regression: a SELECT inside an open transaction can plan as a parallel
// scan whose pool workers call BufferPool::FetchPage concurrently while the
// undo log is live. Fetches inside a transaction must take the exclusive
// page-table path — the shared fast path would race on the undo map (UB
// flagged by TSan; this test is part of the TSan CI workload).
TEST_P(ParallelDifferentialTest, ParallelReadsInsideOpenTransaction) {
  OrderEncoding enc = GetParam();
  LoadedStore ls = LoadNews(enc, /*parallel_exec=*/true);
  auto baseline = EvaluateXPath(ls.store.get(), "//para");
  ASSERT_TRUE(baseline.ok()) << baseline.status();
  std::vector<std::string> expect = Identities(enc, *baseline);
  ASSERT_TRUE(ls.db->Execute("CREATE TABLE scratch (a INT)").ok());

  ASSERT_TRUE(ls.db->Begin().ok());
  // Dirty some pages so the undo log has entries while the readers run.
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(
        ls.db->ExecuteP("INSERT INTO scratch VALUES (?)", {Value::Int(i)})
            .ok());
  }
  uint64_t before = ls.db->stats()->morsels;
  auto r = EvaluateXPath(ls.store.get(), "//para");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(Identities(enc, *r), expect);
  auto c = ls.db->Query("SELECT COUNT(*) FROM nodes");
  ASSERT_TRUE(c.ok()) << c.status();
  EXPECT_GT(ls.db->stats()->morsels, before);  // the reads really fanned out
  ASSERT_TRUE(ls.db->Rollback().ok());

  auto sc = ls.db->Query("SELECT COUNT(*) FROM scratch");
  ASSERT_TRUE(sc.ok()) << sc.status();
  EXPECT_EQ(sc->rows[0][0].AsInt(), 0);
  auto after = EvaluateXPath(ls.store.get(), "//para");
  ASSERT_TRUE(after.ok()) << after.status();
  EXPECT_EQ(Identities(enc, *after), expect);
}

// Intra-query parallelism composed with inter-query concurrency: several
// threads each running parallel-plan statements against one database.
TEST_P(ParallelDifferentialTest, ConcurrentParallelQueries) {
  OrderEncoding enc = GetParam();
  LoadedStore ls = LoadNews(enc, /*parallel_exec=*/true, /*num_threads=*/2);
  auto baseline = EvaluateXPath(ls.store.get(), "//para");
  ASSERT_TRUE(baseline.ok()) << baseline.status();
  std::vector<std::string> expect = Identities(enc, *baseline);

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 10; ++i) {
        auto r = EvaluateXPath(ls.store.get(), "//para");
        if (!r.ok() || Identities(enc, *r) != expect) ++failures;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
}

INSTANTIATE_TEST_SUITE_P(AllEncodings, ParallelDifferentialTest,
                         ::testing::Values(OrderEncoding::kGlobal,
                                           OrderEncoding::kLocal,
                                           OrderEncoding::kDewey));

}  // namespace
}  // namespace oxml
