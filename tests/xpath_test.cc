// XPath parser unit tests plus parameterized evaluation tests across the
// three order encodings (each query class from the paper's workload).

#include <gtest/gtest.h>

#include <memory>

#include "src/core/xpath.h"
#include "src/core/xpath_eval.h"
#include "src/xml/xml_parser.h"

namespace oxml {
namespace {

// ------------------------------------------------------------ parser tests

TEST(XPathParserTest, SimplePath) {
  auto q = ParseXPath("/doc/section/para");
  ASSERT_TRUE(q.ok()) << q.status();
  ASSERT_EQ(q->steps.size(), 3u);
  EXPECT_EQ(q->steps[0].test.tag, "doc");
  EXPECT_EQ(q->steps[2].test.tag, "para");
  EXPECT_EQ(q->ToString(), "/doc/section/para");
}

TEST(XPathParserTest, DescendantAxis) {
  auto q = ParseXPath("//para");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->steps[0].axis, XPathStep::Axis::kDescendant);

  q = ParseXPath("/doc//para");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->steps[1].axis, XPathStep::Axis::kDescendant);
}

TEST(XPathParserTest, PositionPredicates) {
  auto q = ParseXPath("/doc/section[3]");
  ASSERT_TRUE(q.ok());
  ASSERT_EQ(q->steps[1].predicates.size(), 1u);
  EXPECT_EQ(q->steps[1].predicates[0].kind, XPathPredicate::Kind::kPosition);
  EXPECT_EQ(q->steps[1].predicates[0].position, 3);

  q = ParseXPath("/doc/section[last()]");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->steps[1].predicates[0].kind, XPathPredicate::Kind::kLast);

  q = ParseXPath("/doc/section[position() >= 2]");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->steps[1].predicates[0].op, XPathCmp::kGe);
  EXPECT_EQ(q->steps[1].predicates[0].position, 2);
}

TEST(XPathParserTest, ValuePredicates) {
  auto q = ParseXPath("//section[@id = 's2']");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->steps[0].predicates[0].kind, XPathPredicate::Kind::kAttribute);
  EXPECT_EQ(q->steps[0].predicates[0].name, "id");
  EXPECT_EQ(q->steps[0].predicates[0].literal, "s2");

  q = ParseXPath("//section[title = 'beta']");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->steps[0].predicates[0].kind,
            XPathPredicate::Kind::kChildValue);

  q = ParseXPath("//para[. != 'p1']");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->steps[0].predicates[0].kind, XPathPredicate::Kind::kSelfValue);
  EXPECT_EQ(q->steps[0].predicates[0].op, XPathCmp::kNe);
}

TEST(XPathParserTest, ParentAndAncestorAxes) {
  auto q = ParseXPath("/a/b/..");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->steps[2].axis, XPathStep::Axis::kParent);
  EXPECT_EQ(q->steps[2].test.kind, NodeTest::Kind::kAnyNode);

  q = ParseXPath("/a/b/parent::a");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->steps[2].axis, XPathStep::Axis::kParent);
  EXPECT_EQ(q->steps[2].test.tag, "a");

  q = ParseXPath("//c/ancestor::b[1]");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->steps[1].axis, XPathStep::Axis::kAncestor);
  EXPECT_EQ(q->steps[1].predicates.size(), 1u);
}

TEST(XPathParserTest, SiblingAxesAndAttributes) {
  auto q = ParseXPath("/doc/section/following-sibling::section");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->steps[2].axis, XPathStep::Axis::kFollowingSibling);

  q = ParseXPath("//section/@id");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->steps[1].axis, XPathStep::Axis::kAttribute);
  EXPECT_EQ(q->steps[1].attribute_name, "id");

  q = ParseXPath("/doc/section/text()");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->steps[2].test.kind, NodeTest::Kind::kText);
}

TEST(XPathParserTest, Errors) {
  EXPECT_FALSE(ParseXPath("").ok());
  EXPECT_FALSE(ParseXPath("doc/section").ok());
  EXPECT_FALSE(ParseXPath("/doc[").ok());
  EXPECT_FALSE(ParseXPath("/doc[@a ~ 'x']").ok());
  EXPECT_FALSE(ParseXPath("/doc[position() = ]").ok());
}

// -------------------------------------------------------- evaluation tests

constexpr const char* kDoc = R"(
<doc>
  <head><title>t0</title></head>
  <body>
    <section id="s1"><title>alpha</title><para>p1</para><para>p2</para></section>
    <section id="s2"><title>beta</title><para>p3</para></section>
    <section id="s3"><title>gamma</title><para>p4</para><para>p5</para><para>p6</para></section>
  </body>
</doc>)";

class XPathEvalTest : public ::testing::TestWithParam<OrderEncoding> {
 protected:
  void SetUp() override {
    auto dbr = Database::Open();
    ASSERT_TRUE(dbr.ok());
    db_ = std::move(dbr).value();
    auto sr = OrderedXmlStore::Create(db_.get(), GetParam(), {.gap = 8});
    ASSERT_TRUE(sr.ok());
    store_ = std::move(sr).value();
    auto doc = ParseXml(kDoc);
    ASSERT_TRUE(doc.ok());
    ASSERT_TRUE(store_->LoadDocument(**doc).ok());
  }

  std::vector<std::string> Strings(const std::string& xpath) {
    auto r = EvaluateXPathStrings(store_.get(), xpath);
    EXPECT_TRUE(r.ok()) << xpath << ": " << r.status();
    return r.ok() ? std::move(r).value() : std::vector<std::string>{};
  }

  size_t Count(const std::string& xpath) {
    auto r = EvaluateXPath(store_.get(), xpath);
    EXPECT_TRUE(r.ok()) << xpath << ": " << r.status();
    return r.ok() ? r->size() : 0;
  }

  std::unique_ptr<Database> db_;
  std::unique_ptr<OrderedXmlStore> store_;
};

TEST_P(XPathEvalTest, ChildSteps) {
  EXPECT_EQ(Count("/doc"), 1u);
  EXPECT_EQ(Count("/doc/body/section"), 3u);
  EXPECT_EQ(Count("/nope"), 0u);
  EXPECT_EQ(Count("/doc/body/section/para"), 6u);
}

TEST_P(XPathEvalTest, ResultsInDocumentOrder) {
  EXPECT_EQ(Strings("/doc/body/section/para"),
            (std::vector<std::string>{"p1", "p2", "p3", "p4", "p5", "p6"}));
}

TEST_P(XPathEvalTest, DescendantSteps) {
  EXPECT_EQ(Count("//para"), 6u);
  EXPECT_EQ(Count("//section"), 3u);
  EXPECT_EQ(Count("/doc//title"), 4u);
  EXPECT_EQ(Count("//doc"), 1u);  // root itself via descendant-or-self
}

TEST_P(XPathEvalTest, PositionPredicates) {
  EXPECT_EQ(Strings("/doc/body/section[2]/title"),
            (std::vector<std::string>{"beta"}));
  EXPECT_EQ(Strings("/doc/body/section[last()]/para[last()]"),
            (std::vector<std::string>{"p6"}));
  EXPECT_EQ(Strings("/doc/body/section[3]/para[position() >= 2]"),
            (std::vector<std::string>{"p5", "p6"}));
  EXPECT_EQ(Count("/doc/body/section[9]"), 0u);
}

TEST_P(XPathEvalTest, RangePredicate) {
  EXPECT_EQ(
      Strings("/doc/body/section[position() >= 2]/title"),
      (std::vector<std::string>{"beta", "gamma"}));
}

TEST_P(XPathEvalTest, AttributePredicateAndAxis) {
  EXPECT_EQ(Strings("//section[@id = 's2']/title"),
            (std::vector<std::string>{"beta"}));
  auto ids = Strings("//section/@id");
  EXPECT_EQ(ids, (std::vector<std::string>{"s1", "s2", "s3"}));
}

TEST_P(XPathEvalTest, ChildValuePredicate) {
  EXPECT_EQ(Strings("//section[title = 'gamma']/para[1]"),
            (std::vector<std::string>{"p4"}));
}

TEST_P(XPathEvalTest, SelfValuePredicate) {
  EXPECT_EQ(Strings("//para[. = 'p3']"), (std::vector<std::string>{"p3"}));
  EXPECT_EQ(Count("//para[. != 'p3']"), 5u);
}

TEST_P(XPathEvalTest, FollowingSiblings) {
  EXPECT_EQ(Strings("//section[@id = 's1']/following-sibling::section/title"),
            (std::vector<std::string>{"beta", "gamma"}));
  EXPECT_EQ(Count("//section[@id = 's3']/following-sibling::section"), 0u);
}

TEST_P(XPathEvalTest, PrecedingSiblings) {
  EXPECT_EQ(Strings("//section[@id = 's3']/preceding-sibling::section/title"),
            (std::vector<std::string>{"alpha", "beta"}));
}

TEST_P(XPathEvalTest, ParentAxis) {
  EXPECT_EQ(Strings("//para[. = 'p3']/../title"),
            (std::vector<std::string>{"beta"}));
  EXPECT_EQ(Strings("//title[. = 'gamma']/parent::section/@id"),
            (std::vector<std::string>{"s3"}));
  // Parent with a non-matching test yields nothing.
  EXPECT_EQ(Count("//para/parent::title"), 0u);
  // Parent of the root element is the document: no stored node.
  EXPECT_EQ(Count("/doc/.."), 0u);
}

TEST_P(XPathEvalTest, AncestorAxis) {
  EXPECT_EQ(Count("//para[. = 'p1']/ancestor::*"), 3u);  // section,body,doc
  EXPECT_EQ(Strings("//para[. = 'p5']/ancestor::section/title"),
            (std::vector<std::string>{"gamma"}));
  EXPECT_EQ(Count("//para/ancestor::body"), 1u);  // deduplicated
}

TEST_P(XPathEvalTest, TextNodes) {
  EXPECT_EQ(Strings("/doc/body/section[1]/para[1]/text()"),
            (std::vector<std::string>{"p1"}));
}

TEST_P(XPathEvalTest, NestedDescendantsDeduplicate) {
  // //body//para must not duplicate nodes even though contexts overlap.
  EXPECT_EQ(Count("//body//para"), 6u);
}

TEST_P(XPathEvalTest, WildcardStep) {
  EXPECT_EQ(Count("/doc/*"), 2u);
  EXPECT_EQ(Count("/doc/body/*"), 3u);
}

INSTANTIATE_TEST_SUITE_P(AllEncodings, XPathEvalTest,
                         ::testing::Values(OrderEncoding::kGlobal,
                                           OrderEncoding::kLocal,
                                           OrderEncoding::kDewey),
                         [](const auto& info) {
                           return OrderEncodingToString(info.param);
                         });

}  // namespace
}  // namespace oxml
