// Crash-point matrix: for every write-class I/O a scripted update workload
// performs, simulate a crash (or a torn write) at exactly that I/O, then
// reopen the database and check that recovery lands on a transaction
// boundary — the store validates cleanly and the reconstructed document is
// byte-equal to the state after some prefix of the committed operations.
// Runs on all three order encodings.

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/core/ordered_store.h"
#include "src/core/xpath_eval.h"
#include "src/relational/fault_injection.h"
#include "src/xml/xml_generator.h"
#include "src/xml/xml_parser.h"
#include "src/xml/xml_writer.h"

namespace oxml {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name + "_" +
         std::to_string(::getpid()) + ".db";
}

void CopyOver(const std::string& from, const std::string& to) {
  std::filesystem::copy_file(from, to,
                             std::filesystem::copy_options::overwrite_existing);
}

// One step of the scripted workload. Each op locates its targets afresh (the
// previous op may have renumbered), mutates, and runs as one transaction via
// the store's public entry points.
using WorkloadOp = std::function<Status(OrderedXmlStore*)>;

Status InsertSection(OrderedXmlStore* store, size_t at, InsertPosition pos,
                     const std::string& id) {
  OXML_ASSIGN_OR_RETURN(std::vector<StoredNode> sections,
                        EvaluateXPath(store, "/nitf/body/section"));
  if (sections.size() <= at) return Status::Internal("workload: section gone");
  OXML_ASSIGN_OR_RETURN(
      auto frag, ParseXml("<section id=\"" + id + "\"><para>fresh text for " +
                          id + "</para><para>second para</para></section>"));
  return store->InsertSubtree(sections[at], pos, *frag->root_element())
      .status();
}

std::vector<WorkloadOp> ScriptedWorkload() {
  return {
      // 1. Sibling insert in the middle: with gap=2 this renumbers.
      [](OrderedXmlStore* s) {
        return InsertSection(s, 1, InsertPosition::kBefore, "w1");
      },
      // 2. Delete a paragraph subtree.
      [](OrderedXmlStore* s) -> Status {
        OXML_ASSIGN_OR_RETURN(std::vector<StoredNode> paras,
                              EvaluateXPath(s, "/nitf/body/section/para"));
        if (paras.empty()) return Status::Internal("workload: no paras");
        return s->DeleteSubtree(paras.front()).status();
      },
      // 3. Rewrite a text node (single-row value update).
      [](OrderedXmlStore* s) -> Status {
        OXML_ASSIGN_OR_RETURN(
            std::vector<StoredNode> texts,
            EvaluateXPath(s, "/nitf/body/section/para/text()"));
        if (texts.empty()) return Status::Internal("workload: no text");
        return s->UpdateNodeValue(texts.front(), "rewritten after load")
            .status();
      },
      // 4. Move the first section behind the last one (delete + insert as
      // ONE transaction: recovery must never observe the halfway state).
      [](OrderedXmlStore* s) -> Status {
        OXML_ASSIGN_OR_RETURN(std::vector<StoredNode> sections,
                              EvaluateXPath(s, "/nitf/body/section"));
        if (sections.size() < 2) return Status::Internal("workload: sections");
        return s->MoveSubtree(sections.front(), sections.back(),
                              InsertPosition::kAfter)
            .status();
      },
      // 5. Append another section at the end.
      [](OrderedXmlStore* s) {
        return InsertSection(s, 0, InsertPosition::kBefore, "w2");
      },
  };
}

Result<std::string> Snapshot(OrderedXmlStore* store) {
  OXML_ASSIGN_OR_RETURN(auto doc, store->ReconstructDocument());
  return WriteXml(*doc);
}

struct CrashFixture {
  std::string path;       // data file; WAL lives at path + ".wal"
  std::string base_data;  // pristine copies taken after the unfaulted setup
  std::string base_wal;
  std::vector<std::string> expected;  // expected[i] = doc after i committed ops
  uint64_t workload_ios = 0;          // write-class I/Os of open + workload

  DatabaseOptions OpenOptions(std::shared_ptr<FaultPlan> plan) const {
    DatabaseOptions o;
    o.file_path = path;
    o.open_existing = true;
    o.wal_checkpoint_threshold_bytes = 0;  // deterministic I/O schedule
    o.fault_plan = std::move(plan);
    return o;
  }

  void RestoreBaseline() const {
    CopyOver(base_data, path);
    CopyOver(base_wal, path + ".wal");
  }
};

class CrashMatrixTest : public ::testing::TestWithParam<OrderEncoding> {
 protected:
  // Builds the baseline database (unfaulted), snapshots the expected state
  // after every committed op by dry-running the workload, and counts the
  // write-class I/Os the faulted runs will sweep over.
  CrashFixture Setup(const std::string& tag) {
    CrashFixture fx;
    fx.path = TempPath("crash_" + tag + "_" +
                       OrderEncodingToString(GetParam()));
    NewsGeneratorOptions gen;
    gen.seed = 42;
    gen.sections = 3;
    gen.paragraphs_per_section = 2;
    auto doc = GenerateNewsXml(gen);
    {
      DatabaseOptions o;
      o.file_path = fx.path;
      o.wal_checkpoint_threshold_bytes = 0;
      auto dbr = Database::Open(o);
      EXPECT_TRUE(dbr.ok()) << dbr.status();
      auto sr = OrderedXmlStore::Create(dbr->get(), GetParam(), {.gap = 2});
      EXPECT_TRUE(sr.ok()) << sr.status();
      EXPECT_TRUE((*sr)->LoadDocument(*doc).ok());
      EXPECT_TRUE((*dbr)->Close().ok());
    }
    fx.base_data = fx.path + ".base";
    fx.base_wal = fx.path + ".wal.base";
    CopyOver(fx.path, fx.base_data);
    CopyOver(fx.path + ".wal", fx.base_wal);

    // Counting pass: same open options as the sweep, fault plan armed to
    // count only. Records the expected snapshot after every committed op.
    auto plan = std::make_shared<FaultPlan>();
    plan->Arm(0, FaultPlan::Mode::kNone);
    auto dbr = Database::Open(fx.OpenOptions(plan));
    EXPECT_TRUE(dbr.ok()) << dbr.status();
    auto sr = OrderedXmlStore::Attach(dbr->get(), GetParam(), {.gap = 2});
    EXPECT_TRUE(sr.ok()) << sr.status();
    auto snap = Snapshot(sr->get());
    EXPECT_TRUE(snap.ok()) << snap.status();
    fx.expected.push_back(*snap);
    for (const WorkloadOp& op : ScriptedWorkload()) {
      Status st = op(sr->get());
      EXPECT_TRUE(st.ok()) << st;
      snap = Snapshot(sr->get());
      EXPECT_TRUE(snap.ok()) << snap.status();
      fx.expected.push_back(*snap);
    }
    fx.workload_ios = plan->io_count;
    (*dbr)->SimulateCrashForTesting();  // leave the baseline files untouched
    return fx;
  }

  // Runs the workload against a database whose k-th write-class I/O fires
  // `mode`; returns how many ops committed successfully (post-fault ops
  // fail). Null result = the fault fired during Database::Open itself.
  Result<size_t> FaultedRun(const CrashFixture& fx, uint64_t k,
                            FaultPlan::Mode mode, uint64_t* faults_fired) {
    fx.RestoreBaseline();
    auto plan = std::make_shared<FaultPlan>();
    plan->Arm(k, mode);
    auto dbr = Database::Open(fx.OpenOptions(plan));
    if (!dbr.ok()) {
      *faults_fired = plan->faults_fired;
      return dbr.status();
    }
    auto sr = OrderedXmlStore::Attach(dbr->get(), GetParam(), {.gap = 2});
    size_t completed = 0;
    if (sr.ok()) {
      for (const WorkloadOp& op : ScriptedWorkload()) {
        if (op(sr->get()).ok()) ++completed;
      }
    }
    *faults_fired = plan->faults_fired;
    (*dbr)->SimulateCrashForTesting();
    return completed;
  }

  // Reopens without any fault plan; the store must validate and match one
  // of the expected post-op snapshots in [lo, hi].
  void VerifyRecovered(const CrashFixture& fx, size_t lo, size_t hi,
                       const std::string& what) {
    auto dbr = Database::Open(fx.OpenOptions(nullptr));
    ASSERT_TRUE(dbr.ok()) << what << ": reopen failed: " << dbr.status();
    auto sr = OrderedXmlStore::Attach(dbr->get(), GetParam(), {.gap = 2});
    ASSERT_TRUE(sr.ok()) << what << ": attach failed: " << sr.status();
    Status valid = (*sr)->Validate();
    EXPECT_TRUE(valid.ok()) << what << ": " << valid;
    auto snap = Snapshot(sr->get());
    ASSERT_TRUE(snap.ok()) << what << ": " << snap.status();
    bool matched = false;
    for (size_t i = lo; i <= hi && i < fx.expected.size(); ++i) {
      if (*snap == fx.expected[i]) {
        matched = true;
        break;
      }
    }
    EXPECT_TRUE(matched) << what << ": recovered document matches no "
                         << "committed prefix in [" << lo << ", " << hi
                         << "]";
  }
};

TEST_P(CrashMatrixTest, EveryCrashPointRecoversToACommittedState) {
  CrashFixture fx = Setup("kill");
  ASSERT_GT(fx.workload_ios, 0u);
  for (uint64_t k = 1; k <= fx.workload_ios; ++k) {
    uint64_t fired = 0;
    auto run = FaultedRun(fx, k, FaultPlan::Mode::kCrash, &fired);
    ASSERT_EQ(fired, 1u) << "crash point " << k << " never fired";
    // A crash during Open recovers to the baseline; a crash mid-workload
    // recovers to the last committed op — or one past it, when the commit
    // record was durable but the process died before reporting success.
    size_t completed = run.ok() ? *run : 0;
    VerifyRecovered(fx, completed, completed + 1,
                    "kill at I/O " + std::to_string(k));
  }
}

TEST_P(CrashMatrixTest, EveryTornWriteRecoversToACommittedState) {
  CrashFixture fx = Setup("torn");
  ASSERT_GT(fx.workload_ios, 0u);
  for (uint64_t k = 1; k <= fx.workload_ios; ++k) {
    uint64_t fired = 0;
    auto run = FaultedRun(fx, k, FaultPlan::Mode::kTornPage, &fired);
    ASSERT_EQ(fired, 1u) << "torn write at I/O " << k << " never fired";
    size_t completed = run.ok() ? *run : 0;
    VerifyRecovered(fx, completed, completed + 1,
                    "torn write at I/O " + std::to_string(k));
  }
}

TEST_P(CrashMatrixTest, TransientEioRollsBackAndTheStoreStaysUsable) {
  CrashFixture fx = Setup("eio");
  ASSERT_GT(fx.workload_ios, 2u);
  for (uint64_t k : {uint64_t{3}, fx.workload_ios / 2, fx.workload_ios}) {
    fx.RestoreBaseline();
    auto plan = std::make_shared<FaultPlan>();
    plan->Arm(k, FaultPlan::Mode::kEIO);
    auto dbr = Database::Open(fx.OpenOptions(plan));
    if (!dbr.ok()) continue;  // EIO hit Open; covered by the sweeps above
    auto sr = OrderedXmlStore::Attach(dbr->get(), GetParam(), {.gap = 2});
    ASSERT_TRUE(sr.ok()) << sr.status();
    size_t failed = 0;
    for (const WorkloadOp& op : ScriptedWorkload()) {
      if (!op(sr->get()).ok()) ++failed;
    }
    // One I/O error fails at most the one transaction it lands in; the
    // rollback leaves the store valid and fully usable in-process.
    EXPECT_LE(failed, 1u) << "EIO at I/O " << k;
    Status valid = (*sr)->Validate();
    EXPECT_TRUE(valid.ok()) << "EIO at I/O " << k << ": " << valid;
    Status extra = InsertSection(sr->get(), 0, InsertPosition::kAfter, "eio");
    EXPECT_TRUE(extra.ok()) << "EIO at I/O " << k << ": " << extra;
    auto before = Snapshot(sr->get());
    ASSERT_TRUE(before.ok());
    ASSERT_TRUE((*dbr)->Close().ok());

    // Everything committed before Close survives a clean reopen.
    dbr = Database::Open(fx.OpenOptions(nullptr));
    ASSERT_TRUE(dbr.ok()) << dbr.status();
    sr = OrderedXmlStore::Attach(dbr->get(), GetParam(), {.gap = 2});
    ASSERT_TRUE(sr.ok());
    auto after = Snapshot(sr->get());
    ASSERT_TRUE(after.ok());
    EXPECT_EQ(*after, *before) << "EIO at I/O " << k;
  }
}

// An explicit transaction whose Commit fails mid-I/O must stay open so the
// caller can roll back; the rollback restores the pre-transaction state,
// a second rollback is a plain error (never a second undo pass), and the
// store stays valid and usable. Sweeps an EIO over every write-class I/O
// of the commit itself.
TEST_P(CrashMatrixTest, CommitFailsThenRollbackRestoresPreTxnState) {
  CrashFixture fx = Setup("cfail");

  // Counting pass: bracket the I/O window of the explicit Commit. The
  // mutation itself performs no write-class I/O (no-steal: pages dirty in
  // memory, the WAL is written at commit), but the bracket stays correct
  // even if allocation ever writes through.
  fx.RestoreBaseline();
  uint64_t before_commit = 0;
  uint64_t after_commit = 0;
  {
    auto plan = std::make_shared<FaultPlan>();
    plan->Arm(0, FaultPlan::Mode::kNone);
    auto dbr = Database::Open(fx.OpenOptions(plan));
    ASSERT_TRUE(dbr.ok()) << dbr.status();
    auto sr = OrderedXmlStore::Attach(dbr->get(), GetParam(), {.gap = 2});
    ASSERT_TRUE(sr.ok()) << sr.status();
    ASSERT_TRUE((*dbr)->Begin().ok());
    ASSERT_TRUE(
        InsertSection(sr->get(), 1, InsertPosition::kBefore, "cf").ok());
    before_commit = plan->io_count;
    ASSERT_TRUE((*dbr)->Commit().ok());
    after_commit = plan->io_count;
    (*dbr)->SimulateCrashForTesting();
  }
  ASSERT_GT(after_commit, before_commit) << "commit performed no I/O";

  for (uint64_t k = before_commit + 1; k <= after_commit; ++k) {
    fx.RestoreBaseline();
    auto plan = std::make_shared<FaultPlan>();
    plan->Arm(k, FaultPlan::Mode::kEIO);
    auto dbr = Database::Open(fx.OpenOptions(plan));
    ASSERT_TRUE(dbr.ok()) << dbr.status();
    auto sr = OrderedXmlStore::Attach(dbr->get(), GetParam(), {.gap = 2});
    ASSERT_TRUE(sr.ok()) << sr.status();
    auto pre = Snapshot(sr->get());
    ASSERT_TRUE(pre.ok()) << pre.status();

    ASSERT_TRUE((*dbr)->Begin().ok());
    ASSERT_TRUE(
        InsertSection(sr->get(), 1, InsertPosition::kBefore, "cf").ok());
    Status c = (*dbr)->Commit();
    ASSERT_FALSE(c.ok()) << "EIO at I/O " << k << " did not fail Commit";
    EXPECT_EQ(plan->faults_fired, 1u);
    EXPECT_TRUE((*dbr)->InTransaction())
        << "EIO at I/O " << k << ": failed Commit closed the transaction";

    Status rb = (*dbr)->Rollback();
    EXPECT_TRUE(rb.ok()) << "EIO at I/O " << k << ": " << rb;
    Status again = (*dbr)->Rollback();
    EXPECT_FALSE(again.ok()) << "EIO at I/O " << k
                             << ": double Rollback must be an error";

    auto post = Snapshot(sr->get());
    ASSERT_TRUE(post.ok()) << "EIO at I/O " << k << ": " << post.status();
    EXPECT_EQ(*post, *pre) << "EIO at I/O " << k;
    Status valid = (*sr)->Validate();
    EXPECT_TRUE(valid.ok()) << "EIO at I/O " << k << ": " << valid;

    // The one-shot fault has fired, so retrying the same mutation commits;
    // the failed attempt must be invisible after a clean reopen.
    Status retry = InsertSection(sr->get(), 1, InsertPosition::kBefore, "cf");
    ASSERT_TRUE(retry.ok()) << "EIO at I/O " << k << ": " << retry;
    auto committed = Snapshot(sr->get());
    ASSERT_TRUE(committed.ok());
    ASSERT_TRUE((*dbr)->Close().ok());

    dbr = Database::Open(fx.OpenOptions(nullptr));
    ASSERT_TRUE(dbr.ok()) << dbr.status();
    sr = OrderedXmlStore::Attach(dbr->get(), GetParam(), {.gap = 2});
    ASSERT_TRUE(sr.ok()) << sr.status();
    auto reopened = Snapshot(sr->get());
    ASSERT_TRUE(reopened.ok());
    EXPECT_EQ(*reopened, *committed) << "EIO at I/O " << k;
  }
}

// Transient write faults (EAGAIN-style blips) swept over every write-class
// I/O must be invisible to the workload: the bounded retry loop absorbs
// them, every op commits, the final document matches the unfaulted run, and
// the retries surface in ExecStats::io_retries.
TEST_P(CrashMatrixTest, TransientFaultsAreAbsorbedByRetry) {
  CrashFixture fx = Setup("transient");
  ASSERT_GT(fx.workload_ios, 0u);
  for (uint64_t k = 1; k <= fx.workload_ios; ++k) {
    fx.RestoreBaseline();
    auto plan = std::make_shared<FaultPlan>();
    plan->ArmTransient(k, 2);
    // Open must absorb blips too: k can land inside recovery I/O.
    auto dbr = Database::Open(fx.OpenOptions(plan));
    ASSERT_TRUE(dbr.ok()) << "transient at I/O " << k << ": " << dbr.status();
    auto sr = OrderedXmlStore::Attach(dbr->get(), GetParam(), {.gap = 2});
    ASSERT_TRUE(sr.ok()) << sr.status();
    for (const WorkloadOp& op : ScriptedWorkload()) {
      Status st = op(sr->get());
      EXPECT_TRUE(st.ok()) << "transient at I/O " << k << ": " << st;
    }
    EXPECT_EQ(plan->faults_fired, 2u) << "transient at I/O " << k;
    EXPECT_GE((*dbr)->stats()->io_retries, 2u) << "transient at I/O " << k;
    Status valid = (*sr)->Validate();
    EXPECT_TRUE(valid.ok()) << "transient at I/O " << k << ": " << valid;
    auto snap = Snapshot(sr->get());
    ASSERT_TRUE(snap.ok()) << snap.status();
    EXPECT_EQ(*snap, fx.expected.back()) << "transient at I/O " << k;
    (*dbr)->SimulateCrashForTesting();
  }
}

// A full disk (persistent ENOSPC on every write-class I/O from the k-th on)
// fails cleanly at every injection point: affected transactions roll back
// and error out, the successes form a prefix of the workload, the store
// stays valid — and once space returns the database is fully writable
// again, with the recovered state surviving a clean reopen.
TEST_P(CrashMatrixTest, EnospcFailsCleanlyAndWritabilityReturns) {
  CrashFixture fx = Setup("enospc");
  ASSERT_GT(fx.workload_ios, 0u);
  for (uint64_t k = 1; k <= fx.workload_ios; ++k) {
    fx.RestoreBaseline();
    auto plan = std::make_shared<FaultPlan>();
    plan->Arm(k, FaultPlan::Mode::kEnospc);
    auto dbr = Database::Open(fx.OpenOptions(plan));
    if (!dbr.ok()) {
      // The disk filled during Open itself. Space returns; the failed
      // attempt must not have corrupted anything.
      plan->Arm(0, FaultPlan::Mode::kNone);
      dbr = Database::Open(fx.OpenOptions(plan));
      ASSERT_TRUE(dbr.ok())
          << "ENOSPC from I/O " << k << ": reopen after space returned: "
          << dbr.status();
      auto sr = OrderedXmlStore::Attach(dbr->get(), GetParam(), {.gap = 2});
      ASSERT_TRUE(sr.ok()) << sr.status();
      EXPECT_TRUE((*sr)->Validate().ok()) << "ENOSPC from I/O " << k;
      Status extra =
          InsertSection(sr->get(), 0, InsertPosition::kAfter, "sp");
      EXPECT_TRUE(extra.ok()) << "ENOSPC from I/O " << k << ": " << extra;
      ASSERT_TRUE((*dbr)->Close().ok());
      continue;
    }
    auto sr = OrderedXmlStore::Attach(dbr->get(), GetParam(), {.gap = 2});
    ASSERT_TRUE(sr.ok()) << sr.status();
    size_t completed = 0;
    bool disk_full_seen = false;
    for (const WorkloadOp& op : ScriptedWorkload()) {
      Status st = op(sr->get());
      if (st.ok()) {
        // The disk stays full until re-armed, so successes must all
        // precede the first failure.
        EXPECT_FALSE(disk_full_seen)
            << "ENOSPC from I/O " << k << ": op succeeded on a full disk";
        ++completed;
      } else {
        if (!disk_full_seen) {
          EXPECT_NE(st.ToString().find("No space left on device"),
                    std::string::npos)
              << "ENOSPC from I/O " << k << ": " << st;
        }
        disk_full_seen = true;
      }
    }
    EXPECT_TRUE(disk_full_seen) << "ENOSPC from I/O " << k << " never fired";
    // Failed transactions rolled back completely: the document is exactly
    // the committed prefix, and the store is internally consistent.
    Status valid = (*sr)->Validate();
    EXPECT_TRUE(valid.ok()) << "ENOSPC from I/O " << k << ": " << valid;
    ASSERT_LT(completed, fx.expected.size());
    auto snap = Snapshot(sr->get());
    ASSERT_TRUE(snap.ok()) << snap.status();
    EXPECT_EQ(*snap, fx.expected[completed]) << "ENOSPC from I/O " << k;

    // Space returns: the very next statement must succeed.
    plan->Arm(0, FaultPlan::Mode::kNone);
    Status extra = InsertSection(sr->get(), 0, InsertPosition::kAfter, "sp");
    EXPECT_TRUE(extra.ok()) << "ENOSPC from I/O " << k << ": " << extra;
    auto before = Snapshot(sr->get());
    ASSERT_TRUE(before.ok());
    ASSERT_TRUE((*dbr)->Close().ok());

    dbr = Database::Open(fx.OpenOptions(nullptr));
    ASSERT_TRUE(dbr.ok()) << dbr.status();
    sr = OrderedXmlStore::Attach(dbr->get(), GetParam(), {.gap = 2});
    ASSERT_TRUE(sr.ok());
    auto after = Snapshot(sr->get());
    ASSERT_TRUE(after.ok());
    EXPECT_EQ(*after, *before) << "ENOSPC from I/O " << k;
  }
}

// Regression: a failed auto-checkpoint must not fail the (already durable)
// commit it rides on, must be retried at the next threshold crossing
// instead of silently dropped, and must leave the WAL replayable the whole
// time. Sweeps an EIO over every write-class I/O of a commit that crosses
// the checkpoint threshold.
TEST_P(CrashMatrixTest, FailedAutoCheckpointIsRetriedAtNextThreshold) {
  std::string path = TempPath(std::string("ckpt_") +
                              OrderEncodingToString(GetParam()));
  NewsGeneratorOptions gen;
  gen.seed = 42;
  gen.sections = 3;
  gen.paragraphs_per_section = 2;
  auto doc = GenerateNewsXml(gen);
  auto open_opts = [&](std::shared_ptr<FaultPlan> plan, bool existing) {
    DatabaseOptions o;
    o.file_path = path;
    o.open_existing = existing;
    o.wal_checkpoint_threshold_bytes = 1;  // every commit crosses it
    o.fault_plan = std::move(plan);
    return o;
  };

  {
    auto dbr = Database::Open(open_opts(nullptr, false));
    ASSERT_TRUE(dbr.ok()) << dbr.status();
    auto sr = OrderedXmlStore::Create(dbr->get(), GetParam(), {.gap = 2});
    ASSERT_TRUE(sr.ok()) << sr.status();
    ASSERT_TRUE((*sr)->LoadDocument(*doc).ok());
    ASSERT_TRUE((*dbr)->Close().ok());
  }
  std::string base_data = path + ".base";
  std::string base_wal = path + ".wal.base";
  CopyOver(path, base_data);
  CopyOver(path + ".wal", base_wal);

  // Counting pass: bracket the write-class I/Os of one committed op (the
  // auto-checkpoint rides inside its commit) and record the expected
  // documents after it and after a follow-up op.
  uint64_t before_op = 0;
  uint64_t after_op = 0;
  std::string expect1;
  std::string expect2;
  {
    auto plan = std::make_shared<FaultPlan>();
    plan->Arm(0, FaultPlan::Mode::kNone);
    auto dbr = Database::Open(open_opts(plan, true));
    ASSERT_TRUE(dbr.ok()) << dbr.status();
    auto sr = OrderedXmlStore::Attach(dbr->get(), GetParam(), {.gap = 2});
    ASSERT_TRUE(sr.ok()) << sr.status();
    before_op = plan->io_count;
    ASSERT_TRUE(
        InsertSection(sr->get(), 1, InsertPosition::kBefore, "c1").ok());
    after_op = plan->io_count;
    auto snap = Snapshot(sr->get());
    ASSERT_TRUE(snap.ok());
    expect1 = *snap;
    ASSERT_TRUE(
        InsertSection(sr->get(), 0, InsertPosition::kBefore, "c2").ok());
    snap = Snapshot(sr->get());
    ASSERT_TRUE(snap.ok());
    expect2 = *snap;
    (*dbr)->SimulateCrashForTesting();
  }
  ASSERT_GT(after_op, before_op) << "the op performed no I/O";

  bool checkpoint_failure_exercised = false;
  for (uint64_t k = before_op + 1; k <= after_op; ++k) {
    CopyOver(base_data, path);
    CopyOver(base_wal, path + ".wal");
    auto plan = std::make_shared<FaultPlan>();
    plan->Arm(k, FaultPlan::Mode::kEIO);
    auto dbr = Database::Open(open_opts(plan, true));
    ASSERT_TRUE(dbr.ok()) << "EIO at I/O " << k << ": " << dbr.status();
    auto sr = OrderedXmlStore::Attach(dbr->get(), GetParam(), {.gap = 2});
    ASSERT_TRUE(sr.ok()) << sr.status();

    Status op1 = InsertSection(sr->get(), 1, InsertPosition::kBefore, "c1");
    if (!op1.ok()) {
      // The EIO landed in the commit itself, not the checkpoint — that
      // path is CommitFailsThenRollbackRestoresPreTxnState's territory.
      (*dbr)->SimulateCrashForTesting();
      continue;
    }
    // The op succeeded, so the injected fault can only have hit the
    // auto-checkpoint; the failure must be tallied, never swallowed.
    ASSERT_EQ(plan->faults_fired, 1u) << "EIO at I/O " << k;
    ExecStats* stats = (*dbr)->stats();
    EXPECT_EQ(stats->checkpoints_failed, 1u) << "EIO at I/O " << k;
    checkpoint_failure_exercised = true;
    auto snap = Snapshot(sr->get());
    ASSERT_TRUE(snap.ok());
    EXPECT_EQ(*snap, expect1) << "EIO at I/O " << k;

    // The WAL is still above the threshold, so the next commit re-enters
    // the checkpoint branch; the fault is spent, so the retry succeeds
    // and the failure tally does not grow.
    Status op2 = InsertSection(sr->get(), 0, InsertPosition::kBefore, "c2");
    ASSERT_TRUE(op2.ok()) << "EIO at I/O " << k << ": " << op2;
    EXPECT_EQ(stats->checkpoints_failed, 1u)
        << "EIO at I/O " << k << ": checkpoint retry failed";
    snap = Snapshot(sr->get());
    ASSERT_TRUE(snap.ok());
    EXPECT_EQ(*snap, expect2) << "EIO at I/O " << k;

    // The WAL stayed replayable through the failed checkpoint: a crash
    // here must recover both commits.
    (*dbr)->SimulateCrashForTesting();
    dbr = Database::Open(open_opts(nullptr, true));
    ASSERT_TRUE(dbr.ok()) << "EIO at I/O " << k
                          << ": recovery failed: " << dbr.status();
    sr = OrderedXmlStore::Attach(dbr->get(), GetParam(), {.gap = 2});
    ASSERT_TRUE(sr.ok()) << sr.status();
    EXPECT_TRUE((*sr)->Validate().ok()) << "EIO at I/O " << k;
    snap = Snapshot(sr->get());
    ASSERT_TRUE(snap.ok());
    EXPECT_EQ(*snap, expect2) << "EIO at I/O " << k << ": after recovery";
    (*dbr)->SimulateCrashForTesting();
  }
  EXPECT_TRUE(checkpoint_failure_exercised)
      << "no I/O in the commit window hit the auto-checkpoint";
}

INSTANTIATE_TEST_SUITE_P(AllEncodings, CrashMatrixTest,
                         ::testing::Values(OrderEncoding::kGlobal,
                                           OrderEncoding::kLocal,
                                           OrderEncoding::kDewey),
                         [](const auto& info) {
                           return OrderEncodingToString(info.param);
                         });

// Regression: ParallelLoadDocument publishes rows_shredded / runs_merged /
// load_threads_used only after the install transaction commits. A load
// whose install fails (any write-class I/O, EIO) must leave every load
// counter untouched; the retry then loads and publishes normally.
TEST(ParallelLoadFaultTest, LoadStatsPublishOnlyAfterInstallCommit) {
  NewsGeneratorOptions gen;
  gen.seed = 7;
  gen.sections = 6;
  gen.paragraphs_per_section = 4;
  auto doc = GenerateNewsXml(gen);

  auto open_options = [](const std::string& path,
                         std::shared_ptr<FaultPlan> plan) {
    DatabaseOptions o;
    o.file_path = path;
    o.wal_checkpoint_threshold_bytes = 0;  // deterministic I/O schedule
    o.enable_parallel_load = true;
    o.fault_plan = std::move(plan);
    return o;
  };

  // Counting pass: bracket the write-class I/Os of the load itself.
  std::string path = TempPath("pload_stats");
  uint64_t before_load = 0;
  uint64_t after_load = 0;
  {
    auto plan = std::make_shared<FaultPlan>();
    plan->Arm(0, FaultPlan::Mode::kNone);
    auto dbr = Database::Open(open_options(path, plan));
    ASSERT_TRUE(dbr.ok()) << dbr.status();
    auto sr = OrderedXmlStore::Create(dbr->get(), OrderEncoding::kGlobal,
                                      StoreOptions{});
    ASSERT_TRUE(sr.ok()) << sr.status();
    before_load = plan->io_count;
    ASSERT_TRUE((*sr)->LoadDocument(*doc).ok());
    after_load = plan->io_count;
    EXPECT_GT((*dbr)->stats()->rows_shredded, 0u);
    (*dbr)->SimulateCrashForTesting();
  }
  ASSERT_GT(after_load, before_load) << "load performed no I/O";

  for (uint64_t k : {before_load + 1, after_load}) {
    std::filesystem::remove(path);
    std::filesystem::remove(path + ".wal");
    auto plan = std::make_shared<FaultPlan>();
    plan->Arm(k, FaultPlan::Mode::kEIO);
    auto dbr = Database::Open(open_options(path, plan));
    ASSERT_TRUE(dbr.ok()) << dbr.status();
    auto sr = OrderedXmlStore::Create(dbr->get(), OrderEncoding::kGlobal,
                                      StoreOptions{});
    ASSERT_TRUE(sr.ok()) << sr.status();

    auto load = (*sr)->LoadDocument(*doc);
    ASSERT_FALSE(load.ok()) << "EIO at I/O " << k << " did not fail the load";
    EXPECT_EQ(plan->faults_fired, 1u);
    ExecStats* stats = (*dbr)->stats();
    EXPECT_EQ(stats->rows_shredded, 0u) << "EIO at I/O " << k;
    EXPECT_EQ(stats->runs_merged, 0u) << "EIO at I/O " << k;
    EXPECT_EQ(stats->load_threads_used, 0u) << "EIO at I/O " << k;

    // One-shot fault spent: the retry loads and publishes the counters.
    ASSERT_TRUE((*sr)->LoadDocument(*doc).ok()) << "EIO at I/O " << k;
    EXPECT_GT(stats->rows_shredded, 0u) << "EIO at I/O " << k;
    (*dbr)->SimulateCrashForTesting();
  }
}

}  // namespace
}  // namespace oxml
