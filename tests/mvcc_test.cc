// MVCC snapshot reads: readers proceed under the shared statement latch
// while a write transaction is open, served committed page versions and
// index deltas (docs/INTERNALS.md §11). Covers the snapshot differential
// over the QR workload on every encoding, index-delta visibility through
// commit and rollback, the foreign-writer gate, the enable_mvcc=false
// fallback, snapshot-LSN recovery, and the statement-latch owner check.
//
// Built with -DOXML_TSAN=ON in CI, these tests double as the
// ThreadSanitizer workload for the version chains and the write gate.

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/core/xpath_eval.h"
#include "src/relational/database.h"
#include "src/xml/xml_generator.h"
#include "src/xml/xml_writer.h"

namespace oxml {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name + "_" +
         std::to_string(::getpid()) + ".db";
}

// ------------------------------------------------------------ SQL basics

TEST(MvccTest, ReaderSeesCommittedStateWhileWriterTxnOpen) {
  auto dbr = Database::Open(DatabaseOptions{});
  ASSERT_TRUE(dbr.ok()) << dbr.status();
  std::unique_ptr<Database> db = std::move(dbr).value();
  ASSERT_TRUE(db->Execute("CREATE TABLE t (a INT)").ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(
        db->ExecuteP("INSERT INTO t VALUES (?)", {Value::Int(i)}).ok());
  }

  ASSERT_TRUE(db->Begin().ok());
  for (int i = 5; i < 20; ++i) {
    ASSERT_TRUE(
        db->ExecuteP("INSERT INTO t VALUES (?)", {Value::Int(i)}).ok());
  }
  // The owner reads its own uncommitted state.
  auto own = db->Query("SELECT COUNT(*) FROM t");
  ASSERT_TRUE(own.ok()) << own.status();
  EXPECT_EQ(own->rows[0][0].AsInt(), 20);

  // A foreign reader completes while the transaction is open (joining here
  // would hang forever if it blocked) and sees the committed count.
  int64_t seen = -1;
  std::thread reader([&] {
    auto rs = db->Query("SELECT COUNT(*) FROM t");
    if (rs.ok()) seen = rs->rows[0][0].AsInt();
  });
  reader.join();
  EXPECT_EQ(seen, 5);
  EXPECT_GT(db->stats()->snapshot_reads, 0u);

  ASSERT_TRUE(db->Commit().ok());
  std::thread reader2([&] {
    auto rs = db->Query("SELECT COUNT(*) FROM t");
    if (rs.ok()) seen = rs->rows[0][0].AsInt();
  });
  reader2.join();
  EXPECT_EQ(seen, 20);
}

// Index-backed reads must see the committed view too: the B+trees mutate
// in place, so snapshot readers merge the open transaction's delta back
// out (inserted entries hidden, erased entries re-surfaced).
TEST(MvccTest, IndexScanMergesDeltaForSnapshotReaders) {
  auto dbr = Database::Open(DatabaseOptions{});
  ASSERT_TRUE(dbr.ok()) << dbr.status();
  std::unique_ptr<Database> db = std::move(dbr).value();
  ASSERT_TRUE(db->Execute("CREATE TABLE kv (k INT, v INT)").ok());
  ASSERT_TRUE(db->Execute("CREATE INDEX idx_k ON kv (k)").ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(db->ExecuteP("INSERT INTO kv VALUES (?, ?)",
                             {Value::Int(i), Value::Int(i * 10)})
                    .ok());
  }
  auto committed = db->Query("SELECT k, v FROM kv WHERE k >= 0");
  ASSERT_TRUE(committed.ok()) << committed.status();
  ASSERT_EQ(committed->rows.size(), 10u);

  ASSERT_TRUE(db->Begin().ok());
  ASSERT_TRUE(db->Execute("DELETE FROM kv WHERE k < 3").ok());
  ASSERT_TRUE(db->ExecuteP("INSERT INTO kv VALUES (?, ?)",
                           {Value::Int(99), Value::Int(990)})
                  .ok());
  ASSERT_TRUE(db->Execute("UPDATE kv SET v = 777 WHERE k = 5").ok());

  // Foreign reader through the index range: exactly the committed rows.
  std::vector<Row> snap_rows;
  std::thread reader([&] {
    auto rs = db->Query("SELECT k, v FROM kv WHERE k >= 0");
    if (rs.ok()) snap_rows = rs->rows;
  });
  reader.join();
  ASSERT_EQ(snap_rows.size(), committed->rows.size());
  for (size_t i = 0; i < snap_rows.size(); ++i) {
    EXPECT_EQ(snap_rows[i][0].AsInt(), committed->rows[i][0].AsInt());
    EXPECT_EQ(snap_rows[i][1].AsInt(), committed->rows[i][1].AsInt());
  }

  ASSERT_TRUE(db->Commit().ok());
  std::vector<Row> post_rows;
  std::thread reader2([&] {
    auto rs = db->Query("SELECT k, v FROM kv WHERE k >= 0");
    if (rs.ok()) post_rows = rs->rows;
  });
  reader2.join();
  ASSERT_EQ(post_rows.size(), 8u);  // 10 - 3 deleted + 1 inserted
  EXPECT_EQ(post_rows.front()[0].AsInt(), 3);
  EXPECT_EQ(post_rows.back()[0].AsInt(), 99);
  for (const Row& r : post_rows) {
    if (r[0].AsInt() == 5) {
      EXPECT_EQ(r[1].AsInt(), 777);
    }
  }
}

TEST(MvccTest, RollbackRestoresSnapshotAndCurrentViewsAlike) {
  auto dbr = Database::Open(DatabaseOptions{});
  ASSERT_TRUE(dbr.ok()) << dbr.status();
  std::unique_ptr<Database> db = std::move(dbr).value();
  ASSERT_TRUE(db->Execute("CREATE TABLE kv (k INT, v INT)").ok());
  ASSERT_TRUE(db->Execute("CREATE INDEX idx_k ON kv (k)").ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(db->ExecuteP("INSERT INTO kv VALUES (?, ?)",
                             {Value::Int(i), Value::Int(i * 10)})
                    .ok());
  }
  ASSERT_TRUE(db->Begin().ok());
  ASSERT_TRUE(db->Execute("DELETE FROM kv WHERE k >= 5").ok());
  ASSERT_TRUE(db->Rollback().ok());
  auto rs = db->Query("SELECT COUNT(*) FROM kv WHERE k >= 0");
  ASSERT_TRUE(rs.ok()) << rs.status();
  EXPECT_EQ(rs->rows[0][0].AsInt(), 10);
}

// A mutation from a thread that does not own the open transaction must
// wait for the transaction to end — never splice into it, never corrupt
// it, never deadlock.
TEST(MvccTest, ForeignWriterGatesUntilTransactionEnds) {
  auto dbr = Database::Open(DatabaseOptions{});
  ASSERT_TRUE(dbr.ok()) << dbr.status();
  std::unique_ptr<Database> db = std::move(dbr).value();
  ASSERT_TRUE(db->Execute("CREATE TABLE t (a INT)").ok());

  ASSERT_TRUE(db->Begin().ok());
  ASSERT_TRUE(db->ExecuteP("INSERT INTO t VALUES (?)", {Value::Int(1)}).ok());

  std::atomic<bool> foreign_done{false};
  std::thread writer([&] {
    // Must gate until the open transaction commits, then run standalone.
    auto r = db->ExecuteP("INSERT INTO t VALUES (?)", {Value::Int(2)});
    EXPECT_TRUE(r.ok()) << r.status();
    foreign_done.store(true, std::memory_order_release);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(foreign_done.load(std::memory_order_acquire));

  ASSERT_TRUE(db->Commit().ok());
  writer.join();
  EXPECT_TRUE(foreign_done.load());
  auto rs = db->Query("SELECT COUNT(*) FROM t");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->rows[0][0].AsInt(), 2);
}

// The off switch restores the pre-MVCC discipline: Begin holds the
// statement latch exclusively until Commit, so a foreign reader blocks
// for the transaction's whole lifetime.
TEST(MvccTest, DisabledMvccRestoresLifetimeExclusion) {
  DatabaseOptions opts;
  opts.enable_mvcc = false;
  auto dbr = Database::Open(opts);
  ASSERT_TRUE(dbr.ok()) << dbr.status();
  std::unique_ptr<Database> db = std::move(dbr).value();
  ASSERT_TRUE(db->Execute("CREATE TABLE t (a INT)").ok());

  ASSERT_TRUE(db->Begin().ok());
  ASSERT_TRUE(db->ExecuteP("INSERT INTO t VALUES (?)", {Value::Int(1)}).ok());

  std::atomic<bool> read_done{false};
  int64_t seen = -1;
  std::thread reader([&] {
    auto rs = db->Query("SELECT COUNT(*) FROM t");
    if (rs.ok()) seen = rs->rows[0][0].AsInt();
    read_done.store(true, std::memory_order_release);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(read_done.load(std::memory_order_acquire));

  ASSERT_TRUE(db->Commit().ok());
  reader.join();
  EXPECT_TRUE(read_done.load());
  EXPECT_EQ(seen, 1);  // blocked readers observe the committed state
  EXPECT_EQ(db->stats()->snapshot_reads, 0u);
}

// The snapshot clock is recovered from the WAL's commit records, so LSNs
// stay monotone across a crash-reopen instead of restarting at zero.
TEST(MvccTest, CommitLsnSurvivesCrashRecovery) {
  std::string path = TempPath("mvcc_lsn");
  DatabaseOptions opts;
  opts.file_path = path;
  opts.wal_checkpoint_threshold_bytes = 0;  // keep every commit in the log
  auto dbr = Database::Open(opts);
  ASSERT_TRUE(dbr.ok()) << dbr.status();
  std::unique_ptr<Database> db = std::move(dbr).value();
  ASSERT_TRUE(db->Execute("CREATE TABLE t (a INT)").ok());
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(
        db->ExecuteP("INSERT INTO t VALUES (?)", {Value::Int(i)}).ok());
  }
  uint64_t before = db->buffer_pool()->last_commit_lsn();
  ASSERT_GT(before, 0u);
  db->SimulateCrashForTesting();
  db.reset();

  opts.open_existing = true;
  dbr = Database::Open(opts);
  ASSERT_TRUE(dbr.ok()) << dbr.status();
  db = std::move(dbr).value();
  EXPECT_EQ(db->buffer_pool()->last_commit_lsn(), before);
  auto rs = db->Query("SELECT COUNT(*) FROM t");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->rows[0][0].AsInt(), 4);
}

// -------------------------------------------- QR snapshot differential

struct LoadedStore {
  std::unique_ptr<Database> db;
  std::unique_ptr<OrderedXmlStore> store;
};

LoadedStore LoadNews(OrderEncoding enc, bool parallel_exec) {
  DatabaseOptions opts;
  opts.enable_parallel_execution = parallel_exec;
  opts.num_threads = 4;
  opts.parallel_scan_min_rows = 1;
  LoadedStore out;
  auto db = Database::Open(opts);
  EXPECT_TRUE(db.ok()) << db.status();
  out.db = std::move(db).value();
  auto store = OrderedXmlStore::Create(out.db.get(), enc, StoreOptions{});
  EXPECT_TRUE(store.ok()) << store.status();
  out.store = std::move(store).value();
  NewsGeneratorOptions gen;
  gen.sections = 12;
  gen.paragraphs_per_section = 6;
  gen.seed = 42;
  auto doc = GenerateNewsXml(gen);
  EXPECT_TRUE(out.store->LoadDocument(*doc).ok());
  return out;
}

std::vector<std::string> Identities(OrderEncoding enc,
                                    const std::vector<StoredNode>& nodes) {
  std::vector<std::string> out;
  out.reserve(nodes.size());
  for (const StoredNode& n : nodes) out.push_back(NodeIdentity(enc, n));
  return out;
}

const char* const kQueries[] = {
    "//para",                                            // QR1
    "/nitf/body/section[5]/title",                       // QR2
    "/nitf/body/section[last()]/para[last()]",           // QR3
    "//section[@id = 's3']/following-sibling::section",  // QR4
    "/nitf/body//para",                                  // QR5
    "//para[@class = 'lead']",                           // QR6
    "/nitf/body/section[position() >= 5]/title",         // QR7
};

struct QrView {
  std::vector<std::vector<std::string>> identities;  // one per kQueries
  std::string section3_xml;                          // QR8 reconstruction
};

QrView RunQrSuite(OrderedXmlStore* store, OrderEncoding enc) {
  QrView v;
  for (const char* xpath : kQueries) {
    auto r = EvaluateXPath(store, xpath);
    EXPECT_TRUE(r.ok()) << xpath << " -> " << r.status();
    v.identities.push_back(r.ok() ? Identities(enc, *r)
                                  : std::vector<std::string>{});
  }
  auto s3 = EvaluateXPath(store, "/nitf/body/section[3]");
  EXPECT_TRUE(s3.ok() && s3->size() == 1u);
  if (s3.ok() && s3->size() == 1u) {
    auto rec = store->ReconstructSubtree((*s3)[0]);
    EXPECT_TRUE(rec.ok()) << rec.status();
    if (rec.ok()) v.section3_xml = WriteXml(**rec);
  }
  return v;
}

class MvccSnapshotTest
    : public ::testing::TestWithParam<std::tuple<OrderEncoding, bool>> {};

// The tentpole acceptance check: a reader issuing QR1–QR8 while another
// thread sits inside an uncommitted Begin+mutation completes without
// blocking and returns byte-identical pre-transaction results; after the
// commit it returns the new state (byte-identical to the writer's view).
TEST_P(MvccSnapshotTest, LongWriterVsReaderSnapshotDifferential) {
  auto [enc, parallel_exec] = GetParam();
  LoadedStore ls = LoadNews(enc, parallel_exec);
  QrView baseline = RunQrSuite(ls.store.get(), enc);
  EXPECT_FALSE(baseline.section3_xml.empty());

  // Open a transaction and mutate the store without committing. The
  // TxnScope inside DeleteSubtree sees our open transaction and joins it
  // (flat nesting), so the delete stays uncommitted here.
  auto leads = EvaluateXPath(ls.store.get(), "//para[@class = 'lead']");
  ASSERT_TRUE(leads.ok()) << leads.status();
  ASSERT_FALSE(leads->empty());
  ASSERT_TRUE(ls.db->Begin().ok());
  auto del = ls.store->DeleteSubtree(leads->front());
  ASSERT_TRUE(del.ok()) << del.status();

  // Reader thread runs the whole QR suite mid-transaction. Joining proves
  // it never blocked on the open transaction (the pre-MVCC latch would
  // park it right here, and the test would hang).
  QrView mid;
  std::thread reader(
      [&] { mid = RunQrSuite(ls.store.get(), enc); });
  reader.join();
  EXPECT_EQ(mid.identities, baseline.identities);
  EXPECT_EQ(mid.section3_xml, baseline.section3_xml);
  EXPECT_GT(ls.db->stats()->snapshot_reads, 0u);
  EXPECT_GE(ls.db->stats()->version_chain_max, 1u);

  ASSERT_TRUE(ls.db->Commit().ok());

  // Post-commit the reader must see the new state, byte-identical to the
  // writer's own (current-state) view.
  QrView writer_view = RunQrSuite(ls.store.get(), enc);
  EXPECT_NE(writer_view.identities[5], baseline.identities[5]);  // QR6 lost
                                                                 // a lead
  QrView post;
  std::thread reader2(
      [&] { post = RunQrSuite(ls.store.get(), enc); });
  reader2.join();
  EXPECT_EQ(post.identities, writer_view.identities);
  EXPECT_EQ(post.section3_xml, writer_view.section3_xml);
}

// Same shape with a rollback: after the undo, readers and the (former)
// writer agree on the pre-transaction state again.
TEST_P(MvccSnapshotTest, SnapshotDifferentialAcrossRollback) {
  auto [enc, parallel_exec] = GetParam();
  LoadedStore ls = LoadNews(enc, parallel_exec);
  QrView baseline = RunQrSuite(ls.store.get(), enc);

  auto leads = EvaluateXPath(ls.store.get(), "//para[@class = 'lead']");
  ASSERT_TRUE(leads.ok());
  ASSERT_FALSE(leads->empty());
  ASSERT_TRUE(ls.db->Begin().ok());
  ASSERT_TRUE(ls.store->DeleteSubtree(leads->front()).ok());

  QrView mid;
  std::thread reader(
      [&] { mid = RunQrSuite(ls.store.get(), enc); });
  reader.join();
  EXPECT_EQ(mid.identities, baseline.identities);

  ASSERT_TRUE(ls.db->Rollback().ok());
  QrView post = RunQrSuite(ls.store.get(), enc);
  EXPECT_EQ(post.identities, baseline.identities);
  EXPECT_EQ(post.section3_xml, baseline.section3_xml);
}

INSTANTIATE_TEST_SUITE_P(
    AllEncodings, MvccSnapshotTest,
    ::testing::Combine(::testing::Values(OrderEncoding::kGlobal,
                                         OrderEncoding::kLocal,
                                         OrderEncoding::kDewey),
                       ::testing::Bool()),
    [](const auto& info) {
      return std::string(OrderEncodingToString(std::get<0>(info.param))) +
             (std::get<1>(info.param) ? "Parallel" : "Serial");
    });

// Many concurrent snapshot readers against one long writer, on the
// parallel-execution path: pool workers must inherit the statement's
// snapshot (TSan workload for SnapshotTaskScope and the version chains).
TEST(MvccConcurrencyTest, ManyReadersOneWriterStress) {
  LoadedStore ls = LoadNews(OrderEncoding::kGlobal, /*parallel_exec=*/true);
  OrderEncoding enc = OrderEncoding::kGlobal;
  auto baseline = EvaluateXPath(ls.store.get(), "//para");
  ASSERT_TRUE(baseline.ok());
  std::vector<std::string> expect = Identities(enc, *baseline);

  std::atomic<int> failures{0};
  std::atomic<bool> writer_open{false};
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    for (int round = 0; round < 6 && !stop.load(); ++round) {
      ASSERT_TRUE(ls.db->Begin().ok());
      auto paras = EvaluateXPath(ls.store.get(), "//para");
      if (!paras.ok() || paras->empty()) {
        ++failures;
        (void)ls.db->Rollback();
        break;
      }
      if (!ls.store->DeleteSubtree(paras->back()).ok()) ++failures;
      writer_open.store(true, std::memory_order_release);
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      writer_open.store(false, std::memory_order_release);
      if (!ls.db->Rollback().ok()) ++failures;
    }
    stop.store(true, std::memory_order_release);
  });
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        auto r = EvaluateXPath(ls.store.get(), "//para");
        // Every round rolls back, so every read — snapshot or current —
        // must see exactly the baseline.
        if (!r.ok() || Identities(enc, *r) != expect) ++failures;
      }
    });
  }
  writer.join();
  for (auto& th : readers) th.join();
  EXPECT_EQ(failures.load(), 0);
  auto final_r = EvaluateXPath(ls.store.get(), "//para");
  ASSERT_TRUE(final_r.ok());
  EXPECT_EQ(Identities(enc, *final_r), expect);
}

// ------------------------------------------- statement-latch owner check

// UnlockExclusive from a thread that does not hold the latch must not
// corrupt the owner's hold (debug builds assert instead; see
// StatementLatch::UnlockExclusive).
TEST(StatementLatchOwnerTest, NonOwnerUnlockExclusiveIsIgnored) {
#ifdef NDEBUG
  StatementLatch latch;
  latch.LockExclusive();
  std::thread rogue([&] { latch.UnlockExclusive(); });  // not the owner
  rogue.join();

  // The owner's hold must be intact: a reader still cannot get in.
  std::atomic<bool> acquired{false};
  std::thread reader([&] {
    latch.LockShared();
    acquired.store(true, std::memory_order_release);
    latch.UnlockShared();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(acquired.load(std::memory_order_acquire));
  latch.UnlockExclusive();
  reader.join();
  EXPECT_TRUE(acquired.load());
#else
  GTEST_SKIP() << "debug builds assert on non-owner UnlockExclusive";
#endif
}

TEST(StatementLatchOwnerTest, UnlockOfUnheldLatchLeavesItUsable) {
#ifdef NDEBUG
  StatementLatch latch;
  latch.UnlockExclusive();  // nobody holds it: refused, state intact
  latch.LockExclusive();    // still acquires and releases normally
  latch.UnlockExclusive();
  latch.LockShared();
  latch.UnlockShared();
#else
  GTEST_SKIP() << "debug builds assert on non-owner UnlockExclusive";
#endif
}

// --------------------------------------- rollback-after-failed-commit

// Commit/Rollback from a thread that does not own the transaction is a
// clean error, not a deadlock or a foreign teardown.
TEST(MvccTest, CommitAndRollbackRequireTheOwningThread) {
  auto dbr = Database::Open(DatabaseOptions{});
  ASSERT_TRUE(dbr.ok()) << dbr.status();
  std::unique_ptr<Database> db = std::move(dbr).value();
  ASSERT_TRUE(db->Execute("CREATE TABLE t (a INT)").ok());
  ASSERT_TRUE(db->Begin().ok());
  ASSERT_TRUE(db->ExecuteP("INSERT INTO t VALUES (?)", {Value::Int(1)}).ok());
  std::thread foreign([&] {
    EXPECT_FALSE(db->Commit().ok());
    EXPECT_FALSE(db->Rollback().ok());
  });
  foreign.join();
  EXPECT_TRUE(db->InTransaction());
  ASSERT_TRUE(db->Commit().ok());
  auto rs = db->Query("SELECT COUNT(*) FROM t");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->rows[0][0].AsInt(), 1);
}

// A Rollback with no transaction open — including the second Rollback
// after a successful one — is a safe InvalidArgument, never a second undo
// pass over restored state.
TEST(MvccTest, DoubleRollbackIsASafeError) {
  auto dbr = Database::Open(DatabaseOptions{});
  ASSERT_TRUE(dbr.ok()) << dbr.status();
  std::unique_ptr<Database> db = std::move(dbr).value();
  ASSERT_TRUE(db->Execute("CREATE TABLE t (a INT)").ok());
  ASSERT_TRUE(db->ExecuteP("INSERT INTO t VALUES (?)", {Value::Int(7)}).ok());

  ASSERT_TRUE(db->Begin().ok());
  ASSERT_TRUE(db->ExecuteP("INSERT INTO t VALUES (?)", {Value::Int(8)}).ok());
  ASSERT_TRUE(db->Rollback().ok());
  Status again = db->Rollback();
  EXPECT_FALSE(again.ok());
  EXPECT_TRUE(again.IsInvalidArgument()) << again;

  auto rs = db->Query("SELECT COUNT(*) FROM t");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->rows[0][0].AsInt(), 1);
  // The engine is fully usable afterwards.
  ASSERT_TRUE(db->ExecuteP("INSERT INTO t VALUES (?)", {Value::Int(9)}).ok());
}

}  // namespace
}  // namespace oxml
