// Differential correctness: the QR1..QR8 ordered-query workload must give
// byte-identical ordered results with the new order-aware planner features
// (structural join, merge join, sort elision) force-enabled vs
// force-disabled, on every encoding and in both query modes.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/core/sql_translator.h"
#include "src/core/xpath_eval.h"
#include "src/relational/database.h"
#include "src/xml/xml_generator.h"
#include "src/xml/xml_writer.h"

namespace oxml {
namespace {

const char* const kQueries[] = {
    "//para",                                          // QR1
    "/nitf/body/section[5]/title",                     // QR2
    "/nitf/body/section[last()]/para[last()]",         // QR3
    "//section[@id = 's3']/following-sibling::section",  // QR4
    "/nitf/body//para",                                // QR5
    "//para[@class = 'lead']",                         // QR6
    "/nitf/body/section[position() >= 5]/title",       // QR7
};

// Single-SQL translation handles non-positional paths only.
const char* const kTranslatableQueries[] = {
    "//para",              // QR1
    "/nitf/body//para",    // QR5
    "//para[@class = 'lead']",  // QR6
};

struct LoadedStore {
  std::unique_ptr<Database> db;
  std::unique_ptr<OrderedXmlStore> store;
};

LoadedStore Load(OrderEncoding enc, bool fast_path) {
  DatabaseOptions opts;
  opts.enable_structural_join = fast_path;
  opts.enable_merge_join = fast_path;
  opts.enable_sort_elision = fast_path;
  LoadedStore out;
  auto db = Database::Open(opts);
  EXPECT_TRUE(db.ok()) << db.status();
  out.db = std::move(db).value();
  auto store = OrderedXmlStore::Create(out.db.get(), enc, StoreOptions{});
  EXPECT_TRUE(store.ok()) << store.status();
  out.store = std::move(store).value();

  NewsGeneratorOptions gen;
  gen.sections = 10;
  gen.paragraphs_per_section = 6;
  gen.seed = 42;
  auto doc = GenerateNewsXml(gen);
  EXPECT_TRUE(out.store->LoadDocument(*doc).ok());
  return out;
}

std::vector<std::string> Identities(OrderEncoding enc,
                                    const std::vector<StoredNode>& nodes) {
  std::vector<std::string> out;
  out.reserve(nodes.size());
  for (const StoredNode& n : nodes) out.push_back(NodeIdentity(enc, n));
  return out;
}

class StructuralDifferentialTest
    : public ::testing::TestWithParam<OrderEncoding> {};

TEST_P(StructuralDifferentialTest, DriverModeQueriesMatch) {
  OrderEncoding enc = GetParam();
  LoadedStore fast = Load(enc, /*fast_path=*/true);
  LoadedStore slow = Load(enc, /*fast_path=*/false);

  for (const char* xpath : kQueries) {
    auto a = EvaluateXPath(fast.store.get(), xpath);
    auto b = EvaluateXPath(slow.store.get(), xpath);
    ASSERT_TRUE(a.ok()) << xpath << " -> " << a.status();
    ASSERT_TRUE(b.ok()) << xpath << " -> " << b.status();
    EXPECT_FALSE(a->empty()) << xpath;
    EXPECT_EQ(Identities(enc, *a), Identities(enc, *b)) << xpath;
  }

  // QR8: subtree reconstruction of one section.
  auto sa = EvaluateXPath(fast.store.get(), "/nitf/body/section[3]");
  auto sb = EvaluateXPath(slow.store.get(), "/nitf/body/section[3]");
  ASSERT_TRUE(sa.ok() && sb.ok());
  ASSERT_EQ(sa->size(), 1u);
  ASSERT_EQ(sb->size(), 1u);
  auto ra = fast.store->ReconstructSubtree((*sa)[0]);
  auto rb = slow.store->ReconstructSubtree((*sb)[0]);
  ASSERT_TRUE(ra.ok()) << ra.status();
  ASSERT_TRUE(rb.ok()) << rb.status();
  EXPECT_EQ(WriteXml(**ra), WriteXml(**rb));
}

TEST_P(StructuralDifferentialTest, TranslatedSqlQueriesMatch) {
  OrderEncoding enc = GetParam();
  if (enc == OrderEncoding::kLocal) {
    GTEST_SKIP() << "descendant paths are not translatable under Local";
  }
  LoadedStore fast = Load(enc, /*fast_path=*/true);
  LoadedStore slow = Load(enc, /*fast_path=*/false);

  for (const char* xpath : kTranslatableQueries) {
    auto a = EvaluateXPathViaSql(fast.store.get(), xpath);
    auto b = EvaluateXPathViaSql(slow.store.get(), xpath);
    ASSERT_TRUE(a.ok()) << xpath << " -> " << a.status();
    ASSERT_TRUE(b.ok()) << xpath << " -> " << b.status();
    EXPECT_FALSE(a->empty()) << xpath;
    EXPECT_EQ(Identities(enc, *a), Identities(enc, *b)) << xpath;
  }
  // The fast path must actually have taken structural joins (descendant
  // steps) somewhere in this workload; the slow path never does.
  EXPECT_GT(fast.db->stats()->joins_structural, 0u);
  EXPECT_EQ(slow.db->stats()->joins_structural, 0u);
}

INSTANTIATE_TEST_SUITE_P(AllEncodings, StructuralDifferentialTest,
                         ::testing::Values(OrderEncoding::kGlobal,
                                           OrderEncoding::kLocal,
                                           OrderEncoding::kDewey));

}  // namespace
}  // namespace oxml
