// Storage layer tests: slotted pages, buffer pool (both backends, eviction),
// heap tables, row codec and the order-preserving key codec.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "src/common/random.h"
#include "src/relational/buffer_pool.h"
#include "src/relational/heap_table.h"
#include "src/relational/key_codec.h"
#include "src/relational/page.h"
#include "src/relational/database.h"
#include "src/relational/schema.h"

namespace oxml {
namespace {

// ------------------------------------------------------------ slotted page

class SlottedPageTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SlottedPage::Initialize(buf_);
  }
  char buf_[kPageSize];
};

TEST_F(SlottedPageTest, InsertGetDelete) {
  SlottedPage page(buf_);
  auto s1 = page.Insert("hello");
  auto s2 = page.Insert("world!");
  ASSERT_TRUE(s1.ok() && s2.ok());
  EXPECT_EQ(*page.Get(*s1), "hello");
  EXPECT_EQ(*page.Get(*s2), "world!");
  EXPECT_EQ(page.LiveCount(), 2u);

  ASSERT_TRUE(page.Delete(*s1).ok());
  EXPECT_FALSE(page.Get(*s1).ok());
  EXPECT_EQ(page.LiveCount(), 1u);
  // Slot ids remain stable after deletes.
  EXPECT_EQ(*page.Get(*s2), "world!");
}

TEST_F(SlottedPageTest, SlotReuseAfterDelete) {
  SlottedPage page(buf_);
  auto s1 = page.Insert("aaa");
  ASSERT_TRUE(s1.ok());
  ASSERT_TRUE(page.Delete(*s1).ok());
  auto s2 = page.Insert("bbb");
  ASSERT_TRUE(s2.ok());
  EXPECT_EQ(*s2, *s1);  // directory entry reused
}

TEST_F(SlottedPageTest, FillsUntilFullThenCompacts) {
  SlottedPage page(buf_);
  std::string cell(100, 'x');
  std::vector<uint16_t> slots;
  while (true) {
    auto s = page.Insert(cell);
    if (!s.ok()) {
      EXPECT_TRUE(s.status().IsOutOfRange());
      break;
    }
    slots.push_back(*s);
  }
  EXPECT_GT(slots.size(), 70u);
  // Free half the cells; space must become reusable via compaction.
  for (size_t i = 0; i < slots.size(); i += 2) {
    ASSERT_TRUE(page.Delete(slots[i]).ok());
  }
  int inserted = 0;
  while (page.Insert(cell).ok()) ++inserted;
  EXPECT_GE(inserted, static_cast<int>(slots.size() / 2) - 1);
}

TEST_F(SlottedPageTest, UpdateInPlaceAndGrow) {
  SlottedPage page(buf_);
  auto s = page.Insert("0123456789");
  ASSERT_TRUE(s.ok());
  ASSERT_TRUE(page.Update(*s, "short").ok());
  EXPECT_EQ(*page.Get(*s), "short");
  ASSERT_TRUE(page.Update(*s, "a considerably longer cell body").ok());
  EXPECT_EQ(*page.Get(*s), "a considerably longer cell body");
}

TEST_F(SlottedPageTest, RejectsOversizedCell) {
  SlottedPage page(buf_);
  std::string huge(kPageSize, 'x');
  EXPECT_FALSE(page.Insert(huge).ok());
}

TEST_F(SlottedPageTest, NextPageChain) {
  SlottedPage page(buf_);
  EXPECT_EQ(page.next_page(), kInvalidPageId);
  page.set_next_page(42);
  EXPECT_EQ(page.next_page(), 42u);
}

// ------------------------------------------------------------- buffer pool

TEST(BufferPoolTest, MemoryBackendBasics) {
  BufferPool pool(std::make_unique<MemoryBackend>(), 0);
  auto p1 = pool.NewPage();
  ASSERT_TRUE(p1.ok());
  p1->data()[0] = 'A';
  p1->MarkDirty();
  uint32_t id = p1->page_id();
  // Handle released; refetch sees the write.
  *p1 = PageHandle();
  auto p2 = pool.FetchPage(id);
  ASSERT_TRUE(p2.ok());
  EXPECT_EQ(p2->data()[0], 'A');
}

TEST(BufferPoolTest, FileBackendEvictionPersistsDirtyPages) {
  std::string path = ::testing::TempDir() + "/pool_test.db";
  auto backend = FileBackend::Open(path);
  ASSERT_TRUE(backend.ok());
  BufferPool pool(std::move(backend).value(), 2);  // tiny pool

  std::vector<uint32_t> ids;
  for (int i = 0; i < 10; ++i) {
    auto p = pool.NewPage();
    ASSERT_TRUE(p.ok()) << p.status();
    p->data()[0] = static_cast<char>('a' + i);
    p->MarkDirty();
    ids.push_back(p->page_id());
  }
  // All pages must read back correctly despite evictions.
  for (int i = 0; i < 10; ++i) {
    auto p = pool.FetchPage(ids[i]);
    ASSERT_TRUE(p.ok());
    EXPECT_EQ(p->data()[0], static_cast<char>('a' + i));
  }
  EXPECT_GT(pool.miss_count(), 0u);
}

TEST(BufferPoolTest, PinnedPagesAreNotEvicted) {
  auto backend = FileBackend::Open(::testing::TempDir() + "/pool_pin.db");
  ASSERT_TRUE(backend.ok());
  BufferPool pool(std::move(backend).value(), 2);
  auto p1 = pool.NewPage();
  auto p2 = pool.NewPage();
  ASSERT_TRUE(p1.ok() && p2.ok());
  // Both frames pinned; a third page cannot find a victim.
  auto p3 = pool.NewPage();
  EXPECT_FALSE(p3.ok());
  EXPECT_TRUE(p3.status().IsInternal());
}

// -------------------------------------------------------------- row codec

TEST(RowCodecTest, RoundTripAllTypes) {
  Schema schema({{"i", TypeId::kInt},
                 {"d", TypeId::kDouble},
                 {"t", TypeId::kText},
                 {"b", TypeId::kBlob}});
  Row row{Value::Int(-42), Value::Double(3.25), Value::Text("hi there"),
          Value::Blob(std::string("\x00\x01\xFF", 3))};
  auto decoded = DecodeRow(schema, EncodeRow(schema, row));
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->size(), 4u);
  EXPECT_EQ((*decoded)[0].AsInt(), -42);
  EXPECT_DOUBLE_EQ((*decoded)[1].AsDouble(), 3.25);
  EXPECT_EQ((*decoded)[2].AsString(), "hi there");
  EXPECT_EQ((*decoded)[3].AsString(), std::string("\x00\x01\xFF", 3));
}

TEST(RowCodecTest, NullBitmap) {
  Schema schema({{"a", TypeId::kInt},
                 {"b", TypeId::kText},
                 {"c", TypeId::kDouble}});
  Row row{Value::Null(), Value::Text(""), Value::Null()};
  auto decoded = DecodeRow(schema, EncodeRow(schema, row));
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE((*decoded)[0].is_null());
  EXPECT_FALSE((*decoded)[1].is_null());
  EXPECT_TRUE((*decoded)[2].is_null());
}

TEST(RowCodecTest, RejectsTruncatedBytes) {
  Schema schema({{"t", TypeId::kText}});
  std::string bytes = EncodeRow(schema, Row{Value::Text("hello")});
  auto r = DecodeRow(schema, std::string_view(bytes).substr(0, 3));
  EXPECT_FALSE(r.ok());
}

// -------------------------------------------------------------- heap table

TEST(HeapTableTest, InsertScanDeleteUpdate) {
  BufferPool pool(std::make_unique<MemoryBackend>(), 0);
  Schema schema({{"id", TypeId::kInt}, {"s", TypeId::kText}});
  auto table = HeapTable::Create(&pool, schema);
  ASSERT_TRUE(table.ok());
  HeapTable* heap = table->get();

  std::vector<Rid> rids;
  for (int i = 0; i < 5000; ++i) {
    auto rid = heap->Insert(
        Row{Value::Int(i), Value::Text("row " + std::to_string(i))});
    ASSERT_TRUE(rid.ok());
    rids.push_back(*rid);
  }
  EXPECT_EQ(heap->row_count(), 5000u);
  EXPECT_GT(heap->page_chain_length(), 1u);

  auto row = heap->Get(rids[1234]);
  ASSERT_TRUE(row.ok());
  EXPECT_EQ((*row)[0].AsInt(), 1234);

  // Delete every third row.
  for (size_t i = 0; i < rids.size(); i += 3) {
    ASSERT_TRUE(heap->Delete(rids[i]).ok());
  }
  EXPECT_FALSE(heap->Get(rids[0]).ok());

  // Scan sees exactly the survivors.
  size_t count = 0;
  auto it = heap->Scan();
  Rid rid;
  Row r;
  while (true) {
    auto has = it.Next(&rid, &r);
    ASSERT_TRUE(has.ok());
    if (!*has) break;
    ++count;
  }
  EXPECT_EQ(count, heap->row_count());

  // Update with growth (forces relocation for some rows).
  std::string big(500, 'y');
  auto new_rid = heap->Update(rids[1234], Row{Value::Int(1234),
                                              Value::Text(big)});
  ASSERT_TRUE(new_rid.ok());
  auto updated = heap->Get(*new_rid);
  ASSERT_TRUE(updated.ok());
  EXPECT_EQ((*updated)[1].AsString(), big);
}

// --------------------------------------------------------------- key codec

TEST(KeyCodecTest, IntOrderPreserved) {
  std::vector<int64_t> vals = {INT64_MIN, -100000, -1, 0, 1, 7, 100000,
                               INT64_MAX};
  for (size_t i = 0; i + 1 < vals.size(); ++i) {
    EXPECT_LT(EncodeKey(Value::Int(vals[i])),
              EncodeKey(Value::Int(vals[i + 1])))
        << vals[i] << " vs " << vals[i + 1];
  }
}

TEST(KeyCodecTest, DoubleOrderPreserved) {
  std::vector<double> vals = {-1e300, -2.5, -0.0, 0.0, 1e-10, 3.25, 1e300};
  for (size_t i = 0; i + 1 < vals.size(); ++i) {
    EXPECT_LE(EncodeKey(Value::Double(vals[i])),
              EncodeKey(Value::Double(vals[i + 1])));
  }
}

TEST(KeyCodecTest, TextOrderPreservedWithEmbeddedNuls) {
  std::vector<std::string> vals = {"", std::string("\x00", 1),
                                   std::string("\x00q", 2), "a",
                                   std::string("a\x00", 2), "ab", "b"};
  for (size_t i = 0; i + 1 < vals.size(); ++i) {
    EXPECT_LT(EncodeKey(Value::Text(vals[i])),
              EncodeKey(Value::Text(vals[i + 1])))
        << i;
  }
}

TEST(KeyCodecTest, NullSortsFirst) {
  EXPECT_LT(EncodeKey(Value::Null()), EncodeKey(Value::Int(INT64_MIN)));
  EXPECT_LT(EncodeKey(Value::Null()), EncodeKey(Value::Text("")));
}

TEST(KeyCodecTest, CompositeKeysCompareLexicographically) {
  std::string a = EncodeKey({Value::Text("alpha"), Value::Int(2)});
  std::string b = EncodeKey({Value::Text("alpha"), Value::Int(10)});
  std::string c = EncodeKey({Value::Text("beta"), Value::Int(1)});
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
}

TEST(KeyCodecTest, PrefixBoundsCoverExtensions) {
  // KeySuccessor of an equality prefix must sit above every composite key
  // extending that prefix.
  std::string prefix = EncodeKey(Value::Text("tag7"));
  std::string upper = KeySuccessor(prefix);
  Random rng(5);
  for (int i = 0; i < 200; ++i) {
    std::string full =
        EncodeKey({Value::Text("tag7"), Value::Int(rng.Uniform(-1000, 1000))});
    EXPECT_GT(full, prefix);
    EXPECT_LT(full, upper);
  }
  EXPECT_GT(EncodeKey(Value::Text("tag8")), upper);
}

TEST(KeyCodecTest, RandomizedOrderProperty) {
  // memcmp order of encodings equals Value::Compare order for same-typed
  // random values.
  Random rng(31337);
  for (int i = 0; i < 2000; ++i) {
    Value a, b;
    switch (rng.Uniform(0, 2)) {
      case 0:
        a = Value::Int(rng.Uniform(-1'000'000, 1'000'000));
        b = Value::Int(rng.Uniform(-1'000'000, 1'000'000));
        break;
      case 1:
        a = Value::Double(rng.NextDouble() * 2000 - 1000);
        b = Value::Double(rng.NextDouble() * 2000 - 1000);
        break;
      default:
        a = Value::Text(rng.Word(0, 8));
        b = Value::Text(rng.Word(0, 8));
    }
    int logical = a.Compare(b);
    int physical = EncodeKey(a).compare(EncodeKey(b));
    int norm = physical < 0 ? -1 : (physical > 0 ? 1 : 0);
    ASSERT_EQ(logical, norm) << a.ToString() << " vs " << b.ToString();
  }
}

}  // namespace
}  // namespace oxml

namespace oxml {
namespace {

TEST(HeapTableOverflowTest, RowsLargerThanPageRoundTrip) {
  BufferPool pool(std::make_unique<MemoryBackend>(), 0);
  Schema schema({{"id", TypeId::kInt}, {"payload", TypeId::kText}});
  auto table = HeapTable::Create(&pool, schema);
  ASSERT_TRUE(table.ok());
  HeapTable* heap = table->get();

  // A 100 KiB text value spans many overflow pages.
  std::string big(100 * 1024, 'q');
  for (size_t i = 0; i < big.size(); i += 997) big[i] = 'Z';
  auto rid = heap->Insert(Row{Value::Int(1), Value::Text(big)});
  ASSERT_TRUE(rid.ok()) << rid.status();
  auto row = heap->Get(*rid);
  ASSERT_TRUE(row.ok()) << row.status();
  EXPECT_EQ((*row)[1].AsString(), big);
  EXPECT_GE(heap->data_bytes(), big.size());

  // Mixed small and large rows scan correctly.
  auto small = heap->Insert(Row{Value::Int(2), Value::Text("tiny")});
  ASSERT_TRUE(small.ok());
  auto rid3 = heap->Insert(Row{Value::Int(3), Value::Text(big + "tail")});
  ASSERT_TRUE(rid3.ok());

  size_t count = 0;
  size_t big_seen = 0;
  auto it = heap->Scan();
  Rid r;
  Row out;
  while (true) {
    auto has = it.Next(&r, &out);
    ASSERT_TRUE(has.ok()) << has.status();
    if (!*has) break;
    ++count;
    if (out[1].AsString().size() > 1000) ++big_seen;
  }
  EXPECT_EQ(count, 3u);
  EXPECT_EQ(big_seen, 2u);

  // Update large -> small and small -> large.
  auto new_rid = heap->Update(*rid, Row{Value::Int(1), Value::Text("now small")});
  ASSERT_TRUE(new_rid.ok());
  EXPECT_EQ((*heap->Get(*new_rid))[1].AsString(), "now small");
  auto grown = heap->Update(*small, Row{Value::Int(2), Value::Text(big)});
  ASSERT_TRUE(grown.ok());
  EXPECT_EQ((*heap->Get(*grown))[1].AsString(), big);

  // Delete a big row; the heap stays consistent.
  ASSERT_TRUE(heap->Delete(*rid3).ok());
  EXPECT_EQ(heap->row_count(), 2u);
}

TEST(HeapTableOverflowTest, WorksThroughSqlLayer) {
  auto dbr = Database::Open();
  ASSERT_TRUE(dbr.ok());
  std::unique_ptr<Database> db = std::move(dbr).value();
  ASSERT_TRUE(db->Execute("CREATE TABLE t (id INT, body TEXT)").ok());
  std::string big(40000, 'x');
  auto r = db->Execute("INSERT INTO t VALUES (1, '" + big + "')");
  ASSERT_TRUE(r.ok()) << r.status();
  auto rs = db->Query("SELECT LENGTH(body) FROM t WHERE id = 1");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->rows[0][0].AsInt(), 40000);
}

}  // namespace
}  // namespace oxml
