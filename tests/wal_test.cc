// Unit tests of the write-ahead log: CRC framing, commit/replay, torn and
// uncommitted tails, orphaned images of failed commits, group commit and
// truncation. The end-to-end crash behavior of a whole database lives in
// crash_matrix_test.cc.

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <memory>
#include <string>

#include "src/relational/fault_injection.h"
#include "src/relational/wal.h"

namespace oxml {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name + "_" +
         std::to_string(::getpid()) + ".wal";
}

std::string PageOf(char fill) { return std::string(kPageSize, fill); }

Result<std::unique_ptr<WriteAheadLog>> FreshWal(
    const std::string& path, const WalOptions& options = {},
    std::shared_ptr<FaultPlan> fault = nullptr) {
  ::unlink(path.c_str());
  return WriteAheadLog::Open(path, options, std::move(fault));
}

TEST(Crc32Test, KnownAnswer) {
  // The standard IEEE 802.3 check value.
  const char* msg = "123456789";
  EXPECT_EQ(Crc32(msg, 9), 0xCBF43926u);
  EXPECT_EQ(Crc32(nullptr, 0), 0u);
}

TEST(Crc32Test, SeedChainsIncrementally) {
  const char* msg = "hello, write-ahead log";
  uint32_t whole = Crc32(msg, 22);
  uint32_t part = Crc32(msg, 10);
  EXPECT_EQ(Crc32(msg + 10, 12, part), whole);
  EXPECT_NE(Crc32(msg, 21), whole);
}

TEST(WalTest, RecoverMissingFileIsEmpty) {
  auto rec = WriteAheadLog::Recover(TempPath("missing_nonexistent"));
  ASSERT_TRUE(rec.ok()) << rec.status();
  EXPECT_TRUE(rec->pages.empty());
  EXPECT_EQ(rec->committed_txns, 0u);
  EXPECT_FALSE(rec->tail_damaged);
}

TEST(WalTest, RecoverRejectsNonWalFiles) {
  std::string path = TempPath("bad_magic");
  FILE* f = fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::string junk(64, 'j');
  fwrite(junk.data(), 1, junk.size(), f);
  fclose(f);
  auto rec = WriteAheadLog::Recover(path);
  EXPECT_FALSE(rec.ok());
  EXPECT_TRUE(rec.status().IsIOError()) << rec.status();
  auto wal = WriteAheadLog::Open(path);
  EXPECT_FALSE(wal.ok());
}

TEST(WalTest, CommittedImagesReplayLastWins) {
  std::string path = TempPath("replay");
  auto wal = FreshWal(path);
  ASSERT_TRUE(wal.ok()) << wal.status();
  ASSERT_TRUE((*wal)->AppendPageImage(0, PageOf('a').data()).ok());
  ASSERT_TRUE((*wal)->AppendPageImage(1, PageOf('b').data()).ok());
  ASSERT_TRUE((*wal)->Commit().ok());
  // A later transaction overwrites page 1: its image must win.
  ASSERT_TRUE((*wal)->AppendPageImage(1, PageOf('c').data()).ok());
  ASSERT_TRUE((*wal)->Commit().ok());

  auto rec = WriteAheadLog::Recover(path);
  ASSERT_TRUE(rec.ok()) << rec.status();
  EXPECT_EQ(rec->committed_txns, 2u);
  EXPECT_EQ(rec->replayed_images, 3u);
  EXPECT_EQ(rec->discarded_records, 0u);
  EXPECT_FALSE(rec->tail_damaged);
  ASSERT_EQ(rec->pages.size(), 2u);
  EXPECT_EQ(rec->pages.at(0), PageOf('a'));
  EXPECT_EQ(rec->pages.at(1), PageOf('c'));
}

TEST(WalTest, UncommittedTailIsDiscarded) {
  std::string path = TempPath("uncommitted");
  auto wal = FreshWal(path);
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE((*wal)->AppendPageImage(3, PageOf('x').data()).ok());
  ASSERT_TRUE((*wal)->AppendPageImage(4, PageOf('y').data()).ok());
  ASSERT_TRUE((*wal)->Sync().ok());  // durable but never committed

  auto rec = WriteAheadLog::Recover(path);
  ASSERT_TRUE(rec.ok());
  EXPECT_TRUE(rec->pages.empty());
  EXPECT_EQ(rec->committed_txns, 0u);
  EXPECT_EQ(rec->discarded_records, 2u);
  EXPECT_FALSE(rec->tail_damaged);  // well-formed records, just no commit
}

TEST(WalTest, TornTailAfterCommitIsTolerated) {
  std::string path = TempPath("torn_tail");
  uint64_t committed_size = 0;
  {
    auto wal = FreshWal(path);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->AppendPageImage(0, PageOf('a').data()).ok());
    ASSERT_TRUE((*wal)->Commit().ok());
    committed_size = (*wal)->size_bytes();
    ASSERT_TRUE((*wal)->AppendPageImage(1, PageOf('b').data()).ok());
    ASSERT_TRUE((*wal)->Commit().ok());
  }
  // Cut the file in the middle of the second transaction's page image — the
  // shape a torn append leaves behind.
  ASSERT_EQ(::truncate(path.c_str(),
                       static_cast<off_t>(committed_size + 100)),
            0);

  auto rec = WriteAheadLog::Recover(path);
  ASSERT_TRUE(rec.ok()) << rec.status();
  EXPECT_EQ(rec->committed_txns, 1u);
  EXPECT_TRUE(rec->tail_damaged);
  ASSERT_EQ(rec->pages.size(), 1u);
  EXPECT_EQ(rec->pages.at(0), PageOf('a'));
}

TEST(WalTest, CorruptRecordStopsTheScan) {
  std::string path = TempPath("corrupt");
  uint64_t first_txn_end = 0;
  {
    auto wal = FreshWal(path);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->AppendPageImage(0, PageOf('a').data()).ok());
    ASSERT_TRUE((*wal)->Commit().ok());
    first_txn_end = (*wal)->size_bytes();
    ASSERT_TRUE((*wal)->AppendPageImage(0, PageOf('z').data()).ok());
    ASSERT_TRUE((*wal)->Commit().ok());
  }
  // Flip one payload byte inside the second transaction's image: its CRC no
  // longer matches, so replay must stop before adopting any of it.
  {
    FILE* f = fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(fseek(f, static_cast<long>(first_txn_end) + 64, SEEK_SET), 0);
    fputc('!', f);
    fclose(f);
  }

  auto rec = WriteAheadLog::Recover(path);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec->committed_txns, 1u);
  EXPECT_TRUE(rec->tail_damaged);
  EXPECT_GE(rec->discarded_records, 1u);
  ASSERT_EQ(rec->pages.size(), 1u);
  EXPECT_EQ(rec->pages.at(0), PageOf('a'));  // not 'z'
}

TEST(WalTest, FailedCommitOrphansAreNeverAdopted) {
  std::string path = TempPath("orphan");
  auto plan = std::make_shared<FaultPlan>();
  auto wal = FreshWal(path, {}, plan);
  ASSERT_TRUE(wal.ok());
  // I/O 1 = the page-image append, I/O 2 = the commit-record append: fail
  // the commit exactly once, leaving a durable image with no commit.
  plan->Arm(2, FaultPlan::Mode::kEIO);
  ASSERT_TRUE((*wal)->AppendPageImage(7, PageOf('o').data()).ok());
  EXPECT_FALSE((*wal)->Commit().ok());
  // The retry is a new transaction: its commit must not adopt the orphan.
  ASSERT_TRUE((*wal)->AppendPageImage(8, PageOf('n').data()).ok());
  ASSERT_TRUE((*wal)->Commit().ok());

  auto rec = WriteAheadLog::Recover(path);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec->committed_txns, 1u);
  EXPECT_EQ(rec->replayed_images, 1u);
  EXPECT_EQ(rec->discarded_records, 1u);  // the orphaned image of page 7
  ASSERT_EQ(rec->pages.size(), 1u);
  EXPECT_EQ(rec->pages.count(7), 0u);
  EXPECT_EQ(rec->pages.at(8), PageOf('n'));
}

TEST(WalTest, TornAppendIsOverwrittenBySurvivingProcess) {
  std::string path = TempPath("short_write");
  auto plan = std::make_shared<FaultPlan>();
  auto wal = FreshWal(path, {}, plan);
  ASSERT_TRUE(wal.ok());
  // A short write persists half the record and fails once; the process
  // survives, so the next append must overwrite the torn bytes.
  plan->Arm(1, FaultPlan::Mode::kShortWrite);
  EXPECT_FALSE((*wal)->AppendPageImage(0, PageOf('t').data()).ok());
  ASSERT_TRUE((*wal)->AppendPageImage(0, PageOf('g').data()).ok());
  ASSERT_TRUE((*wal)->Commit().ok());

  auto rec = WriteAheadLog::Recover(path);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec->committed_txns, 1u);
  EXPECT_FALSE(rec->tail_damaged);
  ASSERT_EQ(rec->pages.size(), 1u);
  EXPECT_EQ(rec->pages.at(0), PageOf('g'));
}

TEST(WalTest, GroupCommitSyncsEveryNth) {
  std::string path = TempPath("group_commit");
  WalOptions opts;
  opts.group_commit_every = 3;
  auto wal = FreshWal(path, opts);
  ASSERT_TRUE(wal.ok());
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE((*wal)->AppendPageImage(0, PageOf('g').data()).ok());
    ASSERT_TRUE((*wal)->Commit().ok());
  }
  EXPECT_EQ((*wal)->syncs(), 0u);  // window not full yet
  ASSERT_TRUE((*wal)->AppendPageImage(0, PageOf('g').data()).ok());
  ASSERT_TRUE((*wal)->Commit().ok());
  EXPECT_EQ((*wal)->syncs(), 1u);  // third commit flushed the window
  // An explicit Sync() resets the window.
  ASSERT_TRUE((*wal)->AppendPageImage(0, PageOf('g').data()).ok());
  ASSERT_TRUE((*wal)->Commit().ok());
  ASSERT_TRUE((*wal)->Sync().ok());
  EXPECT_EQ((*wal)->syncs(), 2u);
  ASSERT_TRUE((*wal)->AppendPageImage(0, PageOf('g').data()).ok());
  ASSERT_TRUE((*wal)->Commit().ok());
  EXPECT_EQ((*wal)->syncs(), 2u);  // window restarted after the manual sync
}

TEST(WalTest, SyncOnCommitDisabledNeverSyncs) {
  std::string path = TempPath("nosync");
  WalOptions opts;
  opts.sync_on_commit = false;
  auto wal = FreshWal(path, opts);
  ASSERT_TRUE(wal.ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE((*wal)->AppendPageImage(0, PageOf('n').data()).ok());
    ASSERT_TRUE((*wal)->Commit().ok());
  }
  EXPECT_EQ((*wal)->syncs(), 0u);
  // The records are still written, so recovery replays what the OS kept.
  auto rec = WriteAheadLog::Recover(path);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec->committed_txns, 5u);
}

TEST(WalTest, ResetTruncatesToHeaderAndLogRemainsUsable) {
  std::string path = TempPath("reset");
  auto wal = FreshWal(path);
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE((*wal)->AppendPageImage(1, PageOf('r').data()).ok());
  ASSERT_TRUE((*wal)->Commit().ok());
  ASSERT_GT((*wal)->size_bytes(), WriteAheadLog::kHeaderSize);

  ASSERT_TRUE((*wal)->Reset().ok());
  EXPECT_EQ((*wal)->size_bytes(), WriteAheadLog::kHeaderSize);
  auto rec = WriteAheadLog::Recover(path);
  ASSERT_TRUE(rec.ok());
  EXPECT_TRUE(rec->pages.empty());
  EXPECT_EQ(rec->committed_txns, 0u);

  // History is gone, the log is not: new commits append and replay fine.
  ASSERT_TRUE((*wal)->AppendPageImage(2, PageOf('s').data()).ok());
  ASSERT_TRUE((*wal)->Commit().ok());
  rec = WriteAheadLog::Recover(path);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec->committed_txns, 1u);
  EXPECT_EQ(rec->pages.at(2), PageOf('s'));
}

TEST(WalTest, ReopenAppendsAfterExistingRecords) {
  std::string path = TempPath("reopen_append");
  {
    auto wal = FreshWal(path);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->AppendPageImage(0, PageOf('1').data()).ok());
    ASSERT_TRUE((*wal)->Commit().ok());
  }
  {
    auto wal = WriteAheadLog::Open(path);  // existing log, no unlink
    ASSERT_TRUE(wal.ok()) << wal.status();
    ASSERT_TRUE((*wal)->AppendPageImage(1, PageOf('2').data()).ok());
    ASSERT_TRUE((*wal)->Commit().ok());
  }
  auto rec = WriteAheadLog::Recover(path);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec->committed_txns, 2u);
  EXPECT_EQ(rec->pages.at(0), PageOf('1'));
  EXPECT_EQ(rec->pages.at(1), PageOf('2'));
}

}  // namespace
}  // namespace oxml
