// Parallel bulk loading: parallel-vs-serial differential on all three
// encodings (byte-identical heap contents and QR1-QR8 results at 1/2/4/8
// load threads), bulk-built B+tree invariant checks (leaf fill, key
// order, split-key boundaries via CheckStructure), HeapTable::AppendBatch
// tail-page caching, and reader liveness while a parallel load's shred
// phase runs (LoadConcurrencyTest doubles as TSan workload — the
// "Concurrency" suite-name substring keeps it in the CI TSan regex).

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/core/parallel_shred.h"
#include "src/core/xpath_eval.h"
#include "src/relational/btree.h"
#include "src/relational/database.h"
#include "src/relational/thread_pool.h"
#include "src/xml/xml_generator.h"
#include "src/xml/xml_parser.h"
#include "src/xml/xml_writer.h"

namespace oxml {
namespace {

// ------------------------------------------------------------- fixtures

struct LoadedStore {
  std::unique_ptr<Database> db;
  std::unique_ptr<OrderedXmlStore> store;
};

std::unique_ptr<XmlDocument> NewsDoc() {
  NewsGeneratorOptions gen;
  gen.sections = 25;
  gen.paragraphs_per_section = 12;
  gen.seed = 42;
  return GenerateNewsXml(gen);
}

LoadedStore LoadNews(OrderEncoding enc, bool parallel_load,
                     size_t load_threads = 4,
                     size_t run_bytes = 1u << 20) {
  DatabaseOptions opts;
  opts.enable_parallel_load = parallel_load;
  opts.num_load_threads = load_threads;
  opts.load_run_bytes = run_bytes;
  LoadedStore out;
  auto db = Database::Open(opts);
  EXPECT_TRUE(db.ok()) << db.status();
  out.db = std::move(db).value();
  auto store = OrderedXmlStore::Create(out.db.get(), enc, StoreOptions{});
  EXPECT_TRUE(store.ok()) << store.status();
  out.store = std::move(store).value();
  auto doc = NewsDoc();
  EXPECT_TRUE(out.store->LoadDocument(*doc).ok());
  return out;
}

/// Every live heap row of `table` in page-chain (= insertion) order,
/// encoded to its exact storage bytes. Comparing these streams proves the
/// parallel load produced the same rows in the same physical order as the
/// serial load — strictly stronger than comparing query results.
std::vector<std::string> HeapRowBytes(Database* db,
                                      const std::string& table) {
  std::vector<std::string> out;
  TableInfo* t = db->GetTable(table);
  EXPECT_NE(t, nullptr);
  if (t == nullptr) return out;
  HeapTable::Iterator it = t->heap()->Scan();
  Rid rid;
  Row row;
  while (true) {
    auto has = it.Next(&rid, &row);
    EXPECT_TRUE(has.ok()) << has.status();
    if (!has.ok() || !*has) break;
    out.push_back(EncodeRow(t->schema(), row));
  }
  return out;
}

std::vector<std::string> Identities(OrderEncoding enc,
                                    const std::vector<StoredNode>& nodes) {
  std::vector<std::string> out;
  out.reserve(nodes.size());
  for (const StoredNode& n : nodes) out.push_back(NodeIdentity(enc, n));
  return out;
}

const char* const kQueries[] = {
    "//para",                                            // QR1
    "/nitf/body/section[5]/title",                       // QR2
    "/nitf/body/section[last()]/para[last()]",           // QR3
    "//section[@id = 's3']/following-sibling::section",  // QR4
    "/nitf/body//para",                                  // QR5
    "//para[@class = 'lead']",                           // QR6
    "/nitf/body/section[position() >= 5]/title",         // QR7
};

// --------------------------------------- parallel-vs-serial differential

class ParallelLoadDifferentialTest
    : public ::testing::TestWithParam<OrderEncoding> {};

// The acceptance bar of the pipeline: at every thread count the parallel
// load must leave the heap byte-identical (same rows, same physical
// order) to the serial load, because order keys are pre-assigned from the
// partition pass and the k-way merge restores serial document order.
TEST_P(ParallelLoadDifferentialTest, ByteIdenticalAtEveryThreadCount) {
  OrderEncoding enc = GetParam();
  LoadedStore serial = LoadNews(enc, /*parallel_load=*/false);
  std::vector<std::string> want = HeapRowBytes(serial.db.get(), "nodes");
  ASSERT_FALSE(want.empty());

  for (size_t threads : {1u, 2u, 4u, 8u}) {
    LoadedStore par = LoadNews(enc, /*parallel_load=*/true, threads);
    EXPECT_EQ(HeapRowBytes(par.db.get(), "nodes"), want)
        << "threads=" << threads;
    const ExecStats* stats = par.db->stats();
    EXPECT_EQ(stats->rows_shredded.value(), want.size())
        << "threads=" << threads;
    EXPECT_GE(stats->runs_merged.value(), 1u);
    EXPECT_GE(stats->load_threads_used.value(), 1u);
    EXPECT_LE(stats->load_threads_used.value(), threads + 1);
  }
}

// Tiny run budget => every worker seals many runs => the k-way merge is
// actually exercised (a single run would bypass it).
TEST_P(ParallelLoadDifferentialTest, ManySmallRunsMergeBackToSerialOrder) {
  OrderEncoding enc = GetParam();
  LoadedStore serial = LoadNews(enc, /*parallel_load=*/false);
  LoadedStore par =
      LoadNews(enc, /*parallel_load=*/true, 4, /*run_bytes=*/1024);
  EXPECT_GT(par.db->stats()->runs_merged.value(), 1u);
  EXPECT_EQ(HeapRowBytes(par.db.get(), "nodes"),
            HeapRowBytes(serial.db.get(), "nodes"));
}

TEST_P(ParallelLoadDifferentialTest, QueriesMatchSerialLoad) {
  OrderEncoding enc = GetParam();
  LoadedStore par = LoadNews(enc, /*parallel_load=*/true);
  LoadedStore ser = LoadNews(enc, /*parallel_load=*/false);

  for (const char* xpath : kQueries) {
    auto a = EvaluateXPath(par.store.get(), xpath);
    auto b = EvaluateXPath(ser.store.get(), xpath);
    ASSERT_TRUE(a.ok()) << xpath << " -> " << a.status();
    ASSERT_TRUE(b.ok()) << xpath << " -> " << b.status();
    EXPECT_FALSE(b->empty()) << xpath;
    EXPECT_EQ(Identities(enc, *a), Identities(enc, *b)) << xpath;
  }

  // QR8: subtree reconstruction of one section.
  auto sa = EvaluateXPath(par.store.get(), "/nitf/body/section[3]");
  auto sb = EvaluateXPath(ser.store.get(), "/nitf/body/section[3]");
  ASSERT_TRUE(sa.ok() && sb.ok());
  ASSERT_EQ(sa->size(), 1u);
  ASSERT_EQ(sb->size(), 1u);
  auto ra = par.store->ReconstructSubtree((*sa)[0]);
  auto rb = ser.store->ReconstructSubtree((*sb)[0]);
  ASSERT_TRUE(ra.ok()) << ra.status();
  ASSERT_TRUE(rb.ok()) << rb.status();
  EXPECT_EQ(WriteXml(**ra), WriteXml(**rb));
}

// The store's own invariant checker plus full-document reconstruction
// against the original DOM, after a parallel load.
TEST_P(ParallelLoadDifferentialTest, ValidatesAndReconstructs) {
  OrderEncoding enc = GetParam();
  LoadedStore par = LoadNews(enc, /*parallel_load=*/true);
  EXPECT_TRUE(par.store->Validate().ok());
  auto doc = NewsDoc();
  auto rebuilt = par.store->ReconstructDocument();
  ASSERT_TRUE(rebuilt.ok()) << rebuilt.status();
  EXPECT_EQ(WriteXml(**rebuilt), WriteXml(*doc));
}

// A parallel load must not disturb subsequent incremental updates: the
// Local id allocator and the Global/Dewey gap numbering have to continue
// exactly where a serial load would have left them.
TEST_P(ParallelLoadDifferentialTest, UpdatesAfterParallelLoadStayCorrect) {
  OrderEncoding enc = GetParam();
  LoadedStore par = LoadNews(enc, /*parallel_load=*/true);
  LoadedStore ser = LoadNews(enc, /*parallel_load=*/false);

  for (LoadedStore* ls : {&par, &ser}) {
    auto target = EvaluateXPath(ls->store.get(), "/nitf/body/section[3]");
    ASSERT_TRUE(target.ok()) << target.status();
    ASSERT_EQ(target->size(), 1u);
    auto sub = ParseXml("<aside kind=\"pullquote\"><para>new</para></aside>");
    ASSERT_TRUE(sub.ok()) << sub.status();
    auto ins = ls->store->InsertSubtree((*target)[0], InsertPosition::kAfter,
                                        *(*sub)->root()->children()[0]);
    ASSERT_TRUE(ins.ok()) << ins.status();
    EXPECT_TRUE(ls->store->Validate().ok());
  }
  auto ra = par.store->ReconstructDocument();
  auto rb = ser.store->ReconstructDocument();
  ASSERT_TRUE(ra.ok() && rb.ok());
  EXPECT_EQ(WriteXml(**ra), WriteXml(**rb));
}

INSTANTIATE_TEST_SUITE_P(AllEncodings, ParallelLoadDifferentialTest,
                         ::testing::Values(OrderEncoding::kGlobal,
                                           OrderEncoding::kLocal,
                                           OrderEncoding::kDewey));

// ------------------------------------------------------ partition algebra

TEST(PartitionDocumentTest, UnitsTileTheDocumentExactly) {
  auto doc = NewsDoc();
  for (size_t target : {1u, 4u, 16u, 64u}) {
    std::vector<ShredUnit> units = PartitionDocument(*doc, 32, target);
    ASSERT_FALSE(units.empty());
    // Units are in document order, each covering a contiguous row range:
    // whole-subtree units advance by subtree_rows, header units by
    // 1 + attribute count (their children follow as separate units).
    uint64_t expect_off = 0;
    for (const ShredUnit& u : units) {
      EXPECT_EQ(u.row_offset, expect_off);
      expect_off += u.whole_subtree
                        ? u.subtree_rows
                        : 1 + u.node->attributes().size();
    }
    EXPECT_EQ(expect_off, static_cast<uint64_t>(doc->root()->SubtreeSize() - 1));
  }
}

// ------------------------------------------------------- bulk-built trees

Rid MakeRid(uint32_t page, uint16_t slot) { return Rid{page, slot}; }

std::vector<BPlusTree::Entry> SequentialEntries(size_t n) {
  std::vector<BPlusTree::Entry> entries;
  entries.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    char key[16];
    std::snprintf(key, sizeof(key), "k%08zu", i);
    entries.emplace_back(std::string(key),
                         MakeRid(static_cast<uint32_t>(i / 100),
                                 static_cast<uint16_t>(i % 100)));
  }
  return entries;
}

TEST(BulkBuildTest, PacksLeavesWithinFillBounds) {
  BPlusTree tree;
  constexpr size_t kN = 10000;
  ASSERT_TRUE(tree.BulkBuild(SequentialEntries(kN)).ok());
  EXPECT_EQ(tree.size(), kN);

  auto info = tree.CheckStructure();
  ASSERT_TRUE(info.ok()) << info.status();
  EXPECT_GT(info->leaves, 1u);
  // Leaf-packing at ~3/4 fill with an even spread: every leaf at least
  // half full, none over capacity, all at one depth (checked inside
  // CheckStructure alongside key order and separator bounds).
  EXPECT_GE(info->min_leaf_entries, BPlusTree::kNodeCapacity / 2);
  EXPECT_LE(info->max_leaf_entries, BPlusTree::kNodeCapacity);
  EXPECT_EQ(info->depth, tree.height());

  // The full entry stream comes back in order.
  auto entries = SequentialEntries(kN);
  size_t i = 0;
  for (auto it = tree.Begin(); it.valid(); it.Next(), ++i) {
    ASSERT_LT(i, entries.size());
    EXPECT_EQ(it.key(), entries[i].first);
    EXPECT_EQ(it.rid(), entries[i].second);
  }
  EXPECT_EQ(i, kN);

  // Split keys cut at leaf boundaries: LowerBound(sep) lands exactly on
  // the separator with nothing equal to it on the left.
  std::vector<std::string> seps = tree.SplitKeys(8);
  EXPECT_FALSE(seps.empty());
  for (const std::string& sep : seps) {
    auto it = tree.LowerBound(sep);
    ASSERT_TRUE(it.valid());
    EXPECT_EQ(it.key(), sep);
  }
}

TEST(BulkBuildTest, EmptyAndSingleLeafInputs) {
  BPlusTree empty;
  ASSERT_TRUE(empty.BulkBuild({}).ok());
  EXPECT_EQ(empty.size(), 0u);
  EXPECT_TRUE(empty.CheckStructure().ok());

  BPlusTree small;
  ASSERT_TRUE(small.BulkBuild(SequentialEntries(10)).ok());
  EXPECT_EQ(small.size(), 10u);
  EXPECT_EQ(small.height(), 1u);
  auto info = small.CheckStructure();
  ASSERT_TRUE(info.ok()) << info.status();
  EXPECT_EQ(info->leaves, 1u);
}

TEST(BulkBuildTest, RejectsUnsortedDuplicateAndNonEmpty) {
  BPlusTree tree;
  std::vector<BPlusTree::Entry> unsorted = SequentialEntries(10);
  std::swap(unsorted[3], unsorted[7]);
  EXPECT_FALSE(tree.BulkBuild(std::move(unsorted)).ok());
  EXPECT_EQ(tree.size(), 0u);  // failed build leaves the tree empty+usable

  std::vector<BPlusTree::Entry> dup = SequentialEntries(10);
  dup[5] = dup[4];  // exact (key, rid) duplicate
  EXPECT_FALSE(tree.BulkBuild(std::move(dup)).ok());

  // Same key under distinct rids is a legal multiset entry pair.
  std::vector<BPlusTree::Entry> multi;
  multi.emplace_back("k", MakeRid(1, 1));
  multi.emplace_back("k", MakeRid(1, 2));
  ASSERT_TRUE(tree.BulkBuild(std::move(multi)).ok());
  EXPECT_EQ(tree.size(), 2u);
  EXPECT_TRUE(tree.CheckStructure().ok());

  // Non-empty trees reject a second bulk build.
  EXPECT_FALSE(tree.BulkBuild(SequentialEntries(5)).ok());
  BPlusTree inserted;
  inserted.Insert("x", MakeRid(0, 0));
  EXPECT_FALSE(inserted.BulkBuild(SequentialEntries(5)).ok());
}

TEST(BulkBuildTest, SupportsInsertAndEraseAfterBuild) {
  BPlusTree tree;
  constexpr size_t kN = 5000;
  ASSERT_TRUE(tree.BulkBuild(SequentialEntries(kN)).ok());
  // The ~3/4 fill leaves headroom: post-build inserts and erases must
  // keep every structural invariant.
  for (size_t i = 0; i < 1000; ++i) {
    tree.Insert("zz" + std::to_string(i), MakeRid(9, 9));
  }
  auto entries = SequentialEntries(kN);
  for (size_t i = 0; i < kN; i += 3) {
    EXPECT_TRUE(tree.Erase(entries[i].first, entries[i].second));
  }
  EXPECT_EQ(tree.size(), kN + 1000 - (kN + 2) / 3);
  EXPECT_TRUE(tree.CheckStructure().ok());
  EXPECT_TRUE(tree.Contains("zz42"));
  EXPECT_FALSE(tree.Contains(entries[0].first));
  EXPECT_TRUE(tree.Contains(entries[1].first));
}

// CheckStructure itself is validated against the classic insert path: an
// Insert-built tree must pass the same audit the bulk builder is held to.
TEST(BulkBuildTest, InsertBuiltTreePassesCheckStructure) {
  BPlusTree tree;
  auto entries = SequentialEntries(3000);
  // Insert in a scrambled but deterministic order.
  for (size_t stride = 0; stride < 7; ++stride) {
    for (size_t i = stride; i < entries.size(); i += 7) {
      tree.Insert(entries[i].first, entries[i].second);
    }
  }
  EXPECT_EQ(tree.size(), entries.size());
  auto info = tree.CheckStructure();
  ASSERT_TRUE(info.ok()) << info.status();
  EXPECT_EQ(info->depth, tree.height());
}

// ------------------------------------------------ heap batch append fix

TEST(AppendBatchTest, CachesTailPageAcrossBatch) {
  BufferPool pool(std::make_unique<MemoryBackend>());
  Schema schema({{"a", TypeId::kInt}, {"b", TypeId::kText}});
  auto heap = HeapTable::Create(&pool, schema);
  ASSERT_TRUE(heap.ok()) << heap.status();

  constexpr size_t kRows = 500;
  std::vector<Row> rows;
  rows.reserve(kRows);
  for (size_t i = 0; i < kRows; ++i) {
    rows.push_back(Row{Value::Int(static_cast<int64_t>(i)),
                       Value::Text("row-" + std::to_string(i))});
  }
  uint64_t saved_before = pool.saved_fetch_count();
  std::vector<Rid> rids;
  ASSERT_TRUE((*heap)->AppendBatch(rows, &rids).ok());
  ASSERT_EQ(rids.size(), kRows);
  EXPECT_EQ((*heap)->row_count(), kRows);
  // Per-row Insert would have fetched the tail once per row; the batch
  // fetched it once, so exactly kRows - 1 fetches were avoided.
  EXPECT_EQ(pool.saved_fetch_count() - saved_before, kRows - 1);
  EXPECT_GT((*heap)->page_chain_length(), 1u);  // the batch spans pages

  // Contents and rid order match the per-row path exactly.
  BufferPool pool2(std::make_unique<MemoryBackend>());
  auto heap2 = HeapTable::Create(&pool2, schema);
  ASSERT_TRUE(heap2.ok()) << heap2.status();
  for (size_t i = 0; i < kRows; ++i) {
    auto rid = (*heap2)->Insert(rows[i]);
    ASSERT_TRUE(rid.ok()) << rid.status();
    EXPECT_EQ(*rid, rids[i]) << i;
  }
  for (size_t i = 0; i < kRows; ++i) {
    auto got = (*heap)->Get(rids[i]);
    ASSERT_TRUE(got.ok()) << got.status();
    EXPECT_EQ(EncodeRow(schema, *got), EncodeRow(schema, rows[i]));
  }
}

TEST(AppendBatchTest, BulkLoadFallsBackOnNonEmptyTable) {
  auto db = Database::Open({});
  ASSERT_TRUE(db.ok()) << db.status();
  Schema schema({{"a", TypeId::kInt}});
  ASSERT_TRUE((*db)->CreateTable("t", schema).ok());
  ASSERT_TRUE((*db)->CreateIndex("t_a", "t", {"a"}, /*unique=*/true).ok());
  ASSERT_TRUE((*db)->Insert("t", Row{Value::Int(0)}).ok());

  std::vector<Row> more;
  for (int64_t i = 1; i <= 5; ++i) more.push_back(Row{Value::Int(i)});
  auto n = (*db)->BulkLoadRows("t", more);
  ASSERT_TRUE(n.ok()) << n.status();
  EXPECT_EQ(*n, 5);
  auto rs = (*db)->Query("SELECT COUNT(*) FROM t");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->rows[0][0].AsInt(), 6);

  // Unique violation through the bulk path aborts and rolls back.
  auto db2 = Database::Open({});
  ASSERT_TRUE(db2.ok());
  ASSERT_TRUE((*db2)->CreateTable("t", schema).ok());
  ASSERT_TRUE((*db2)->CreateIndex("t_a", "t", {"a"}, /*unique=*/true).ok());
  std::vector<Row> dup{Row{Value::Int(1)}, Row{Value::Int(1)}};
  EXPECT_FALSE((*db2)->BulkLoadRows("t", dup).ok());
  auto rs2 = (*db2)->Query("SELECT COUNT(*) FROM t");
  ASSERT_TRUE(rs2.ok());
  EXPECT_EQ(rs2->rows[0][0].AsInt(), 0);
}

// -------------------------------------------------- load/read concurrency

// The shred phase of a parallel load runs outside the exclusive statement
// latch, so readers of an already-loaded table must keep making progress
// while another document is being shredded into a second table. Under
// TSan this also audits the pool/latch interaction of the load path.
TEST(LoadConcurrencyTest, ReadersOverlapParallelLoad) {
  DatabaseOptions opts;
  opts.enable_parallel_load = true;
  opts.num_load_threads = 2;
  auto db = Database::Open(opts);
  ASSERT_TRUE(db.ok()) << db.status();

  StoreOptions first;
  auto store1 = OrderedXmlStore::Create(db->get(), OrderEncoding::kGlobal,
                                        first);
  ASSERT_TRUE(store1.ok()) << store1.status();
  auto doc = NewsDoc();
  ASSERT_TRUE((*store1)->LoadDocument(*doc).ok());
  auto baseline = EvaluateXPath(store1->get(), "//para");
  ASSERT_TRUE(baseline.ok()) << baseline.status();
  const size_t expect = baseline->size();

  StoreOptions second;
  second.table_name = "nodes2";
  auto store2 = OrderedXmlStore::Create(db->get(), OrderEncoding::kDewey,
                                        second);
  ASSERT_TRUE(store2.ok()) << store2.status();

  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        auto r = EvaluateXPath(store1->get(), "//para");
        if (!r.ok() || r->size() != expect) ++failures;
      }
    });
  }
  Status load = (*store2)->LoadDocument(*doc);
  stop.store(true);
  for (auto& th : readers) th.join();
  ASSERT_TRUE(load.ok()) << load;
  EXPECT_EQ(failures.load(), 0);
  EXPECT_TRUE((*store2)->Validate().ok());
  EXPECT_GT((*db)->stats()->rows_shredded.value(), 0u);
}

}  // namespace
}  // namespace oxml
