// End-to-end tests of the mini relational engine through its SQL surface.

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "src/relational/database.h"

namespace oxml {
namespace {

class SqlEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto db = Database::Open();
    ASSERT_TRUE(db.ok()) << db.status();
    db_ = std::move(db).value();
    Must("CREATE TABLE people (id INT, name TEXT, age INT, score DOUBLE)");
    Must("INSERT INTO people VALUES (1, 'ada', 36, 9.5)");
    Must("INSERT INTO people VALUES (2, 'bob', 25, 7.25)");
    Must("INSERT INTO people VALUES (3, 'carol', 41, 8.0)");
    Must("INSERT INTO people VALUES (4, 'dan', 25, 6.5)");
  }

  void Must(const std::string& sql) {
    auto r = db_->Execute(sql);
    ASSERT_TRUE(r.ok()) << sql << " -> " << r.status();
  }

  ResultSet Rows(const std::string& sql) {
    auto r = db_->Query(sql);
    EXPECT_TRUE(r.ok()) << sql << " -> " << r.status();
    return r.ok() ? std::move(r).value() : ResultSet{};
  }

  std::unique_ptr<Database> db_;
};

TEST_F(SqlEngineTest, SelectAll) {
  ResultSet rs = Rows("SELECT * FROM people");
  EXPECT_EQ(rs.rows.size(), 4u);
  EXPECT_EQ(rs.schema.size(), 4u);
}

TEST_F(SqlEngineTest, Projection) {
  ResultSet rs = Rows("SELECT name, age FROM people WHERE id = 2");
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(rs.rows[0][0].AsString(), "bob");
  EXPECT_EQ(rs.rows[0][1].AsInt(), 25);
}

TEST_F(SqlEngineTest, WhereComparisons) {
  EXPECT_EQ(Rows("SELECT id FROM people WHERE age > 25").rows.size(), 2u);
  EXPECT_EQ(Rows("SELECT id FROM people WHERE age >= 25").rows.size(), 4u);
  EXPECT_EQ(Rows("SELECT id FROM people WHERE age <> 25").rows.size(), 2u);
  EXPECT_EQ(
      Rows("SELECT id FROM people WHERE age = 25 AND score > 7").rows.size(),
      1u);
  EXPECT_EQ(
      Rows("SELECT id FROM people WHERE age = 36 OR age = 41").rows.size(),
      2u);
}

TEST_F(SqlEngineTest, OrderByAscDesc) {
  ResultSet rs = Rows("SELECT id FROM people ORDER BY score DESC");
  ASSERT_EQ(rs.rows.size(), 4u);
  EXPECT_EQ(rs.rows[0][0].AsInt(), 1);
  EXPECT_EQ(rs.rows[3][0].AsInt(), 4);

  rs = Rows("SELECT id FROM people ORDER BY age ASC, name DESC");
  ASSERT_EQ(rs.rows.size(), 4u);
  EXPECT_EQ(rs.rows[0][0].AsInt(), 4);  // dan before bob at age 25 (DESC name)
  EXPECT_EQ(rs.rows[1][0].AsInt(), 2);
}

TEST_F(SqlEngineTest, Limit) {
  ResultSet rs = Rows("SELECT id FROM people ORDER BY id LIMIT 2");
  ASSERT_EQ(rs.rows.size(), 2u);
  EXPECT_EQ(rs.rows[0][0].AsInt(), 1);
  EXPECT_EQ(rs.rows[1][0].AsInt(), 2);
}

TEST_F(SqlEngineTest, Distinct) {
  ResultSet rs = Rows("SELECT DISTINCT age FROM people");
  EXPECT_EQ(rs.rows.size(), 3u);
}

TEST_F(SqlEngineTest, Between) {
  ResultSet rs = Rows("SELECT id FROM people WHERE age BETWEEN 25 AND 36");
  EXPECT_EQ(rs.rows.size(), 3u);
}

TEST_F(SqlEngineTest, Like) {
  EXPECT_EQ(Rows("SELECT id FROM people WHERE name LIKE 'c%'").rows.size(),
            1u);
  EXPECT_EQ(Rows("SELECT id FROM people WHERE name LIKE '%a%'").rows.size(),
            3u);
  EXPECT_EQ(Rows("SELECT id FROM people WHERE name LIKE '_ob'").rows.size(),
            1u);
}

TEST_F(SqlEngineTest, Aggregates) {
  ResultSet rs = Rows("SELECT COUNT(*), MIN(age), MAX(age) FROM people");
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(rs.rows[0][0].AsInt(), 4);
  EXPECT_EQ(rs.rows[0][1].AsInt(), 25);
  EXPECT_EQ(rs.rows[0][2].AsInt(), 41);

  rs = Rows("SELECT SUM(age) FROM people");
  EXPECT_EQ(rs.rows[0][0].AsInt(), 127);

  rs = Rows("SELECT AVG(score) FROM people");
  EXPECT_DOUBLE_EQ(rs.rows[0][0].AsDouble(), (9.5 + 7.25 + 8.0 + 6.5) / 4);
}

TEST_F(SqlEngineTest, GroupBy) {
  ResultSet rs = Rows(
      "SELECT age, COUNT(*) AS n FROM people GROUP BY age ORDER BY age");
  ASSERT_EQ(rs.rows.size(), 3u);
  EXPECT_EQ(rs.rows[0][0].AsInt(), 25);
  EXPECT_EQ(rs.rows[0][1].AsInt(), 2);
  EXPECT_EQ(rs.rows[2][0].AsInt(), 41);
  EXPECT_EQ(rs.rows[2][1].AsInt(), 1);
}

TEST_F(SqlEngineTest, AggregateOverEmptyInput) {
  ResultSet rs = Rows("SELECT COUNT(*) FROM people WHERE age > 100");
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(rs.rows[0][0].AsInt(), 0);
}

TEST_F(SqlEngineTest, UpdateAndDelete) {
  auto updated = db_->Execute("UPDATE people SET age = age + 1 WHERE id = 2");
  ASSERT_TRUE(updated.ok());
  EXPECT_EQ(*updated, 1);
  ResultSet rs = Rows("SELECT age FROM people WHERE id = 2");
  EXPECT_EQ(rs.rows[0][0].AsInt(), 26);

  auto deleted = db_->Execute("DELETE FROM people WHERE age >= 36");
  ASSERT_TRUE(deleted.ok());
  EXPECT_EQ(*deleted, 2);
  EXPECT_EQ(Rows("SELECT * FROM people").rows.size(), 2u);
}

TEST_F(SqlEngineTest, InsertWithColumnList) {
  Must("INSERT INTO people (id, name) VALUES (9, 'zoe')");
  ResultSet rs = Rows("SELECT age, name FROM people WHERE id = 9");
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_TRUE(rs.rows[0][0].is_null());
  EXPECT_EQ(rs.rows[0][1].AsString(), "zoe");
}

TEST_F(SqlEngineTest, NullSemantics) {
  Must("INSERT INTO people (id, name) VALUES (10, 'nil')");
  // NULL age never satisfies comparison predicates.
  EXPECT_EQ(Rows("SELECT id FROM people WHERE age > 0").rows.size(), 4u);
  EXPECT_EQ(Rows("SELECT id FROM people WHERE age IS NULL").rows.size(), 1u);
  EXPECT_EQ(Rows("SELECT id FROM people WHERE age IS NOT NULL").rows.size(),
            4u);
}

TEST_F(SqlEngineTest, IndexedEqualityUsesIndexScan) {
  Must("CREATE INDEX idx_age ON people (age)");
  auto plan = db_->Explain("SELECT id FROM people WHERE age = 25");
  ASSERT_TRUE(plan.ok());
  EXPECT_NE(plan->find("IndexScan"), std::string::npos) << *plan;
  EXPECT_EQ(Rows("SELECT id FROM people WHERE age = 25").rows.size(), 2u);
}

TEST_F(SqlEngineTest, IndexedRangeScan) {
  Must("CREATE INDEX idx_age ON people (age)");
  db_->stats()->Reset();
  ResultSet rs = Rows("SELECT id FROM people WHERE age >= 30 AND age < 41");
  EXPECT_EQ(rs.rows.size(), 1u);
  // Only the matching row should have been fetched through the index.
  EXPECT_EQ(db_->stats()->rows_scanned, 1u);
}

TEST_F(SqlEngineTest, CompositeIndexEqualityPlusRange) {
  Must("CREATE INDEX idx_age_score ON people (age, score)");
  ResultSet rs =
      Rows("SELECT id FROM people WHERE age = 25 AND score > 7 ORDER BY id");
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(rs.rows[0][0].AsInt(), 2);
}

TEST_F(SqlEngineTest, UniqueIndexRejectsDuplicates) {
  Must("CREATE UNIQUE INDEX pk ON people (id)");
  auto r = db_->Execute("INSERT INTO people VALUES (1, 'dup', 1, 1.0)");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsAborted()) << r.status();
}

TEST_F(SqlEngineTest, JoinHash) {
  Must("CREATE TABLE pets (owner INT, pet TEXT)");
  Must("INSERT INTO pets VALUES (1, 'cat'), (1, 'dog'), (3, 'fish')");
  ResultSet rs = Rows(
      "SELECT p.name, q.pet FROM people p, pets q "
      "WHERE p.id = q.owner ORDER BY q.pet");
  ASSERT_EQ(rs.rows.size(), 3u);
  EXPECT_EQ(rs.rows[0][0].AsString(), "ada");
  EXPECT_EQ(rs.rows[0][1].AsString(), "cat");
  EXPECT_EQ(rs.rows[2][0].AsString(), "carol");
}

TEST_F(SqlEngineTest, JoinIndexNestedLoop) {
  Must("CREATE TABLE pets (owner INT, pet TEXT)");
  Must("INSERT INTO pets VALUES (1, 'cat'), (1, 'dog'), (3, 'fish')");
  Must("CREATE INDEX idx_owner ON pets (owner)");
  auto plan = db_->Explain(
      "SELECT p.name, q.pet FROM people p, pets q WHERE p.id = q.owner");
  ASSERT_TRUE(plan.ok());
  EXPECT_NE(plan->find("IndexNestedLoopJoin"), std::string::npos) << *plan;
  ResultSet rs = Rows(
      "SELECT p.name, q.pet FROM people p, pets q "
      "WHERE p.id = q.owner ORDER BY q.pet");
  EXPECT_EQ(rs.rows.size(), 3u);
}

TEST_F(SqlEngineTest, JoinWithExtraPredicate) {
  Must("CREATE TABLE pets (owner INT, pet TEXT)");
  Must("INSERT INTO pets VALUES (1, 'cat'), (1, 'dog'), (3, 'fish')");
  ResultSet rs = Rows(
      "SELECT q.pet FROM people p, pets q "
      "WHERE p.id = q.owner AND p.age > 40");
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(rs.rows[0][0].AsString(), "fish");
}

TEST_F(SqlEngineTest, CrossJoin) {
  Must("CREATE TABLE tags (t TEXT)");
  Must("INSERT INTO tags VALUES ('x'), ('y')");
  ResultSet rs = Rows("SELECT p.id, g.t FROM people p, tags g");
  EXPECT_EQ(rs.rows.size(), 8u);
}

TEST_F(SqlEngineTest, ScalarFunctions) {
  ResultSet rs = Rows(
      "SELECT LENGTH(name), SUBSTR(name, 1, 2) FROM people WHERE id = 3");
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(rs.rows[0][0].AsInt(), 5);
  EXPECT_EQ(rs.rows[0][1].AsString(), "ca");
}

TEST_F(SqlEngineTest, Arithmetic) {
  ResultSet rs =
      Rows("SELECT age * 2 + 1, age % 10, -age FROM people WHERE id = 1");
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(rs.rows[0][0].AsInt(), 73);
  EXPECT_EQ(rs.rows[0][1].AsInt(), 6);
  EXPECT_EQ(rs.rows[0][2].AsInt(), -36);
}

TEST_F(SqlEngineTest, BlobLiteralsRoundTrip) {
  Must("CREATE TABLE b (k BLOB, v INT)");
  Must("INSERT INTO b VALUES (x'0102', 1), (x'0103', 2)");
  ResultSet rs = Rows("SELECT v FROM b WHERE k = x'0103'");
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(rs.rows[0][0].AsInt(), 2);

  rs = Rows("SELECT v FROM b WHERE k >= x'0102' AND k < x'02' ORDER BY k");
  EXPECT_EQ(rs.rows.size(), 2u);
}

TEST_F(SqlEngineTest, DropTable) {
  Must("DROP TABLE people");
  auto r = db_->Query("SELECT * FROM people");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
}

TEST_F(SqlEngineTest, ParseErrors) {
  EXPECT_FALSE(db_->Execute("SELEC * FROM people").ok());
  EXPECT_FALSE(db_->Execute("SELECT FROM people").ok());
  EXPECT_FALSE(db_->Execute("SELECT * FROM people WHERE").ok());
  EXPECT_FALSE(db_->Execute("INSERT INTO people VALUES (1,2,")
                   .ok());
}

TEST_F(SqlEngineTest, UnknownColumnsRejected) {
  auto r = db_->Query("SELECT nope FROM people");
  EXPECT_FALSE(r.ok());
  r = db_->Query("SELECT id FROM people WHERE nope = 1");
  EXPECT_FALSE(r.ok());
}

TEST_F(SqlEngineTest, UpdateMaintainsIndexes) {
  Must("CREATE INDEX idx_age ON people (age)");
  Must("UPDATE people SET age = 99 WHERE id = 1");
  ResultSet rs = Rows("SELECT id FROM people WHERE age = 99");
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(rs.rows[0][0].AsInt(), 1);
  EXPECT_EQ(Rows("SELECT id FROM people WHERE age = 36").rows.size(), 0u);
}

TEST_F(SqlEngineTest, DeleteMaintainsIndexes) {
  Must("CREATE INDEX idx_age ON people (age)");
  Must("DELETE FROM people WHERE age = 25");
  EXPECT_EQ(Rows("SELECT id FROM people WHERE age = 25").rows.size(), 0u);
  EXPECT_EQ(Rows("SELECT * FROM people").rows.size(), 2u);
}

TEST_F(SqlEngineTest, FileBackedDatabase) {
  DatabaseOptions opts;
  opts.file_path = ::testing::TempDir() + "/oxml_test.db";
  opts.buffer_capacity = 4;  // force eviction traffic
  auto dbr = Database::Open(opts);
  ASSERT_TRUE(dbr.ok()) << dbr.status();
  std::unique_ptr<Database> db = std::move(dbr).value();
  ASSERT_TRUE(db->Execute("CREATE TABLE t (id INT, payload TEXT)").ok());
  for (int i = 0; i < 2000; ++i) {
    auto r = db->Execute("INSERT INTO t VALUES (" + std::to_string(i) +
                         ", 'row payload number " + std::to_string(i) + "')");
    ASSERT_TRUE(r.ok()) << r.status();
  }
  auto rs = db->Query("SELECT COUNT(*) FROM t");
  ASSERT_TRUE(rs.ok()) << rs.status();
  EXPECT_EQ(rs->rows[0][0].AsInt(), 2000);
  // Evictions must have happened with a 4-frame pool.
  EXPECT_GT(db->buffer_pool()->miss_count(), 0u);
}

}  // namespace
}  // namespace oxml
