#ifndef OXML_TESTS_FUZZ_DOM_ORACLE_H_
#define OXML_TESTS_FUZZ_DOM_ORACLE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/core/xpath.h"
#include "src/xml/xml_node.h"

namespace oxml {
namespace fuzz {

/// A DOM node or attribute reference produced by the oracle.
struct OracleNode {
  const XmlNode* node = nullptr;
  int attr_index = -1;  // >= 0: the attr_index-th attribute of `node`

  bool is_attribute() const { return attr_index >= 0; }
  bool operator<(const OracleNode& o) const {
    if (node != o.node) return node < o.node;
    return attr_index < o.attr_index;
  }
};

/// In-memory reference implementation of the engine's ordered-XML
/// semantics: XPath evaluation by direct tree walking plus structural
/// updates applied straight to the DOM. Entirely independent of the
/// relational stores — this is the differential fuzzer's ground truth.
class DomOracle {
 public:
  /// Takes ownership of (a deep copy of) `doc`'s tree.
  explicit DomOracle(const XmlDocument& doc);

  XmlDocument* doc() { return doc_.get(); }
  XmlNode* root_element() const { return doc_->root_element(); }

  /// Resolves a child-index path from the root element (indexes over all
  /// non-attribute children, matching OrderedXmlStore::NodeAtPath). An
  /// empty path is the root element itself. Null when out of range.
  XmlNode* ResolvePath(const std::vector<size_t>& path) const;

  /// Child-index path of `node` (which must be in this tree).
  std::vector<size_t> PathOf(const XmlNode* node) const;

  /// Evaluates the XPath subset over the DOM; results in document order,
  /// duplicates removed.
  std::vector<OracleNode> Evaluate(const XPathQuery& query);

  /// Comparable signature of a result (serialized subtree, or @name=value
  /// for attributes) — must agree with the stores' signature for the same
  /// logical node.
  std::string Signature(const OracleNode& n) const;

  /// Compact serialization of the whole document.
  std::string Serialize() const;

  // ---------------------------------------------------------- mutations
  // All return false when the operation is inapplicable (the harness then
  // skips the op on every store as well).

  bool Insert(XmlNode* ref, InsertPosition pos,
              std::unique_ptr<XmlNode> subtree);
  bool Delete(XmlNode* target);
  bool Move(XmlNode* source, XmlNode* ref, InsertPosition pos);
  bool SetValue(XmlNode* target, const std::string& value);
  bool SetExistingAttribute(XmlNode* element, const std::string& name,
                            const std::string& value);

  /// True if `node` lies in the subtree rooted at `ancestor` (inclusive).
  static bool InSubtree(const XmlNode* node, const XmlNode* ancestor);

 private:
  void Renumber();
  void CollectDescendantsOrSelf(const XmlNode* node, const NodeTest& test,
                                std::vector<OracleNode>* out) const;
  std::vector<OracleNode> Expand(const XmlNode* node,
                                 const XPathStep& step) const;
  std::vector<OracleNode> ApplyPredicates(
      const std::vector<XPathPredicate>& preds,
      std::vector<OracleNode> candidates) const;
  void SortDocOrder(std::vector<OracleNode>* nodes) const;

  std::unique_ptr<XmlDocument> doc_;
  std::map<const XmlNode*, int> order_;  // rebuilt per Evaluate
};

}  // namespace fuzz
}  // namespace oxml

#endif  // OXML_TESTS_FUZZ_DOM_ORACLE_H_
