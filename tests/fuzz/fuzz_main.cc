// Differential fuzzer driver: generates seed-reproducible workloads and
// replays them against all three encodings plus the DOM oracle. On the
// first failure the case is shrunk and written out as a repro file that
// oxml_fuzz_repro can replay.
//
// Usage:
//   oxml_fuzz [--seed_start=N] [--seed_count=N] [--ops=N] [--repro_dir=DIR]
//             [--durable=0|1] [--threads=N] [--load_threads=N]
//             [--sessions=N]
//
// --durable forces every case on or off the file-backed/WAL path (the
// default lets the generator pick ~25% durable cases).
// --threads runs every batch of consecutive read-only query ops across N
// client threads (concurrent readers under the shared statement latch)
// instead of serially; divergence from the DOM oracle is then a
// concurrency bug. Mutations always stay serial.
// --load_threads forces every case through the parallel bulk-load pipeline
// with N shred workers (the generator otherwise picks ~33% of cases).
// --sessions additionally routes every query through N OXWP protocol
// clients against a loopback oxml_server per encoding, checking the full
// wire path (handshake, admission, result framing) against the oracle.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "tests/fuzz/fuzz_harness.h"

namespace {

bool ParseFlag(const char* arg, const char* name, long long* out) {
  size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) != 0 || arg[n] != '=') return false;
  *out = std::atoll(arg + n + 1);
  return true;
}

bool ParseFlag(const char* arg, const char* name, std::string* out) {
  size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) != 0 || arg[n] != '=') return false;
  *out = arg + n + 1;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  long long seed_start = 1;
  long long seed_count = 25;
  long long ops = 100;
  long long durable = -1;  // -1 = generator's choice
  long long threads = 1;
  long long load_threads = -1;  // -1 = generator's choice
  long long sessions = 0;
  std::string repro_dir = ".";
  for (int i = 1; i < argc; ++i) {
    long long* unused = nullptr;
    (void)unused;
    if (ParseFlag(argv[i], "--seed_start", &seed_start) ||
        ParseFlag(argv[i], "--seed_count", &seed_count) ||
        ParseFlag(argv[i], "--ops", &ops) ||
        ParseFlag(argv[i], "--durable", &durable) ||
        ParseFlag(argv[i], "--threads", &threads) ||
        ParseFlag(argv[i], "--load_threads", &load_threads) ||
        ParseFlag(argv[i], "--sessions", &sessions) ||
        ParseFlag(argv[i], "--repro_dir", &repro_dir)) {
      continue;
    }
    std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
    return 2;
  }

  size_t total_ops = 0;
  size_t total_skipped = 0;
  for (long long s = seed_start; s < seed_start + seed_count; ++s) {
    oxml::fuzz::FuzzCase c =
        oxml::fuzz::GenerateCase(static_cast<uint64_t>(s),
                                 static_cast<size_t>(ops));
    if (durable >= 0) c.durable = durable != 0;
    if (threads > 1) c.query_threads = static_cast<size_t>(threads);
    if (load_threads >= 0) c.load_threads = static_cast<size_t>(load_threads);
    if (sessions > 0) c.sessions = static_cast<size_t>(sessions);
    auto failure = oxml::fuzz::RunCase(&c);
    total_ops += c.ops.size();
    total_skipped += c.skipped_ops;
    if (!failure.has_value()) {
      std::printf("seed %lld: ok (%zu ops, %zu skipped)\n", s, c.ops.size(),
                  c.skipped_ops);
      continue;
    }
    std::printf("seed %lld: FAILURE %s\n", s, failure->Describe().c_str());
    std::printf("shrinking %zu ops...\n", c.ops.size());
    oxml::fuzz::FuzzCase shrunk = oxml::fuzz::ShrinkCase(c);
    auto confirmed = oxml::fuzz::RunCase(&shrunk);
    std::string path =
        repro_dir + "/repro_seed" + std::to_string(s) + ".txt";
    std::ofstream out(path);
    out << "# " << (confirmed ? confirmed->Describe() : failure->Describe())
        << "\n";
    out << oxml::fuzz::SerializeCase(shrunk);
    out.close();
    std::printf("shrunk to %zu ops, repro written to %s\n",
                shrunk.ops.size(), path.c_str());
    if (confirmed) {
      std::printf("minimized failure: %s\n", confirmed->Describe().c_str());
    }
    return 1;
  }
  std::printf("all %lld seeds ok (%zu ops executed, %zu skipped)\n",
              seed_count, total_ops - total_skipped, total_skipped);
  return 0;
}
