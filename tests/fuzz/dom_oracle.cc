#include "tests/fuzz/dom_oracle.h"

#include <algorithm>
#include <cstdlib>
#include <set>

#include "src/xml/xml_writer.h"

namespace oxml {
namespace fuzz {
namespace {

bool Matches(const NodeTest& test, const XmlNode* n) {
  return test.Matches(n->kind(), n->name());
}

bool Cmp(XPathCmp op, int c) {
  switch (op) {
    case XPathCmp::kEq:
      return c == 0;
    case XPathCmp::kNe:
      return c != 0;
    case XPathCmp::kLt:
      return c < 0;
    case XPathCmp::kLe:
      return c <= 0;
    case XPathCmp::kGt:
      return c > 0;
    case XPathCmp::kGe:
      return c >= 0;
  }
  return false;
}

/// Value comparison mirroring the store evaluator: numeric when both sides
/// parse fully as numbers, bytewise otherwise.
int CompareValues(const std::string& a, const std::string& b) {
  char* ea = nullptr;
  char* eb = nullptr;
  double da = std::strtod(a.c_str(), &ea);
  double db = std::strtod(b.c_str(), &eb);
  if (!a.empty() && !b.empty() && *ea == '\0' && *eb == '\0') {
    return da < db ? -1 : (da > db ? 1 : 0);
  }
  return a.compare(b);
}

}  // namespace

DomOracle::DomOracle(const XmlDocument& doc)
    : doc_(std::make_unique<XmlDocument>()) {
  for (const auto& top : doc.root()->children()) {
    doc_->root()->AppendChild(top->Clone());
  }
}

XmlNode* DomOracle::ResolvePath(const std::vector<size_t>& path) const {
  XmlNode* node = doc_->root_element();
  for (size_t idx : path) {
    if (node == nullptr || idx >= node->child_count()) return nullptr;
    node = node->child(idx);
  }
  return node;
}

std::vector<size_t> DomOracle::PathOf(const XmlNode* node) const {
  std::vector<size_t> out;
  while (node->parent() != nullptr &&
         node->parent()->kind() != XmlNodeKind::kDocument) {
    out.push_back(node->IndexInParent());
    node = node->parent();
  }
  std::reverse(out.begin(), out.end());
  return out;
}

void DomOracle::Renumber() {
  order_.clear();
  int counter = 0;
  struct Rec {
    std::map<const XmlNode*, int>* order;
    int* counter;
    void Visit(const XmlNode* n) {
      (*order)[n] = (*counter)++;
      for (const auto& c : n->children()) Visit(c.get());
    }
  } rec{&order_, &counter};
  rec.Visit(doc_->root());
}

std::vector<OracleNode> DomOracle::Evaluate(const XPathQuery& q) {
  Renumber();
  // First step applies from the document node.
  const XPathStep& first = q.steps[0];
  std::vector<OracleNode> candidates;
  for (const auto& top : doc_->root()->children()) {
    if (first.axis == XPathStep::Axis::kChild) {
      if (Matches(first.test, top.get())) candidates.push_back({top.get()});
    } else {
      CollectDescendantsOrSelf(top.get(), first.test, &candidates);
    }
  }
  std::vector<OracleNode> context =
      ApplyPredicates(first.predicates, candidates);

  for (size_t s = 1; s < q.steps.size(); ++s) {
    const XPathStep& step = q.steps[s];
    std::vector<OracleNode> next;
    std::set<OracleNode> seen;
    for (const OracleNode& ctx : context) {
      if (ctx.is_attribute()) continue;
      std::vector<OracleNode> cands = Expand(ctx.node, step);
      cands = ApplyPredicates(step.predicates, cands);
      for (const OracleNode& c : cands) {
        if (seen.insert(c).second) next.push_back(c);
      }
    }
    SortDocOrder(&next);
    context = std::move(next);
  }
  return context;
}

std::string DomOracle::Signature(const OracleNode& n) const {
  if (n.is_attribute()) {
    const XmlAttribute& a = n.node->attributes()[n.attr_index];
    return "@" + a.name + "=" + a.value;
  }
  return WriteXml(*n.node);
}

std::string DomOracle::Serialize() const { return WriteXml(*doc_); }

void DomOracle::CollectDescendantsOrSelf(
    const XmlNode* node, const NodeTest& test,
    std::vector<OracleNode>* out) const {
  if (Matches(test, node)) out->push_back({node});
  for (const auto& c : node->children()) {
    CollectDescendantsOrSelf(c.get(), test, out);
  }
}

std::vector<OracleNode> DomOracle::Expand(const XmlNode* node,
                                          const XPathStep& step) const {
  std::vector<OracleNode> out;
  switch (step.axis) {
    case XPathStep::Axis::kChild:
      for (const auto& c : node->children()) {
        if (Matches(step.test, c.get())) out.push_back({c.get()});
      }
      break;
    case XPathStep::Axis::kDescendant:
      for (const auto& c : node->children()) {
        CollectDescendantsOrSelf(c.get(), step.test, &out);
      }
      break;
    case XPathStep::Axis::kFollowingSibling: {
      const XmlNode* parent = node->parent();
      if (parent == nullptr) break;
      size_t idx = node->IndexInParent();
      for (size_t i = idx + 1; i < parent->child_count(); ++i) {
        if (Matches(step.test, parent->child(i))) {
          out.push_back({parent->child(i)});
        }
      }
      break;
    }
    case XPathStep::Axis::kPrecedingSibling: {
      const XmlNode* parent = node->parent();
      if (parent == nullptr) break;
      size_t idx = node->IndexInParent();
      for (size_t i = 0; i < idx; ++i) {
        if (Matches(step.test, parent->child(i))) {
          out.push_back({parent->child(i)});
        }
      }
      break;
    }
    case XPathStep::Axis::kAttribute:
      for (size_t i = 0; i < node->attributes().size(); ++i) {
        if (step.attribute_name.empty() ||
            node->attributes()[i].name == step.attribute_name) {
          out.push_back({node, static_cast<int>(i)});
        }
      }
      break;
    case XPathStep::Axis::kParent: {
      const XmlNode* p = node->parent();
      if (p != nullptr && p->kind() != XmlNodeKind::kDocument &&
          Matches(step.test, p)) {
        out.push_back({p});
      }
      break;
    }
    case XPathStep::Axis::kAncestor: {
      const XmlNode* p = node->parent();
      while (p != nullptr && p->kind() != XmlNodeKind::kDocument) {
        if (Matches(step.test, p)) out.push_back({p});
        p = p->parent();
      }
      std::reverse(out.begin(), out.end());
      break;
    }
  }
  return out;
}

std::vector<OracleNode> DomOracle::ApplyPredicates(
    const std::vector<XPathPredicate>& preds,
    std::vector<OracleNode> candidates) const {
  for (const XPathPredicate& pred : preds) {
    std::vector<OracleNode> kept;
    int64_t size = static_cast<int64_t>(candidates.size());
    for (int64_t i = 0; i < size; ++i) {
      const OracleNode& cand = candidates[i];
      bool keep = false;
      switch (pred.kind) {
        case XPathPredicate::Kind::kPosition:
          keep = Cmp(pred.op, i + 1 < pred.position
                                  ? -1
                                  : (i + 1 > pred.position ? 1 : 0));
          break;
        case XPathPredicate::Kind::kLast:
          keep = (i + 1 == size);
          break;
        case XPathPredicate::Kind::kAttribute: {
          const std::string* v = cand.node->attribute(pred.name);
          keep =
              v != nullptr && Cmp(pred.op, CompareValues(*v, pred.literal));
          break;
        }
        case XPathPredicate::Kind::kHasAttribute:
          keep = cand.node->attribute(pred.name) != nullptr;
          break;
        case XPathPredicate::Kind::kChildValue:
          for (const auto& c : cand.node->children()) {
            if (c->is_element() && c->name() == pred.name &&
                Cmp(pred.op, CompareValues(c->InnerText(), pred.literal))) {
              keep = true;
              break;
            }
          }
          break;
        case XPathPredicate::Kind::kSelfValue:
          keep = Cmp(pred.op,
                     CompareValues(cand.node->InnerText(), pred.literal));
          break;
      }
      if (keep) kept.push_back(cand);
    }
    candidates = std::move(kept);
  }
  return candidates;
}

void DomOracle::SortDocOrder(std::vector<OracleNode>* nodes) const {
  std::stable_sort(nodes->begin(), nodes->end(),
                   [this](const OracleNode& a, const OracleNode& b) {
                     int oa = order_.at(a.node);
                     int ob = order_.at(b.node);
                     if (oa != ob) return oa < ob;
                     return a.attr_index < b.attr_index;
                   });
}

bool DomOracle::InSubtree(const XmlNode* node, const XmlNode* ancestor) {
  for (; node != nullptr; node = node->parent()) {
    if (node == ancestor) return true;
  }
  return false;
}

bool DomOracle::Insert(XmlNode* ref, InsertPosition pos,
                       std::unique_ptr<XmlNode> subtree) {
  switch (pos) {
    case InsertPosition::kBefore:
    case InsertPosition::kAfter: {
      XmlNode* parent = ref->parent();
      // Top-level siblings (= siblings of the root element) are rejected
      // by every store; the oracle mirrors that.
      if (parent == nullptr || parent->kind() == XmlNodeKind::kDocument) {
        return false;
      }
      size_t idx = ref->IndexInParent();
      parent->InsertChild(pos == InsertPosition::kBefore ? idx : idx + 1,
                          std::move(subtree));
      return true;
    }
    case InsertPosition::kFirstChild:
      if (!ref->is_element()) return false;
      ref->InsertChild(0, std::move(subtree));
      return true;
    case InsertPosition::kLastChild:
      if (!ref->is_element()) return false;
      ref->AppendChild(std::move(subtree));
      return true;
  }
  return false;
}

bool DomOracle::Delete(XmlNode* target) {
  XmlNode* parent = target->parent();
  if (parent == nullptr || parent->kind() == XmlNodeKind::kDocument) {
    return false;  // never delete the root element
  }
  parent->RemoveChild(target->IndexInParent());
  return true;
}

bool DomOracle::Move(XmlNode* source, XmlNode* ref, InsertPosition pos) {
  if (source == ref || InSubtree(ref, source)) return false;
  XmlNode* src_parent = source->parent();
  if (src_parent == nullptr || src_parent->kind() == XmlNodeKind::kDocument) {
    return false;
  }
  // Validate the destination before detaching.
  if (pos == InsertPosition::kBefore || pos == InsertPosition::kAfter) {
    XmlNode* ref_parent = ref->parent();
    if (ref_parent == nullptr ||
        ref_parent->kind() == XmlNodeKind::kDocument) {
      return false;
    }
  } else if (!ref->is_element()) {
    return false;
  }
  std::unique_ptr<XmlNode> detached =
      src_parent->RemoveChild(source->IndexInParent());
  bool ok = Insert(ref, pos, std::move(detached));
  return ok;
}

bool DomOracle::SetValue(XmlNode* target, const std::string& value) {
  switch (target->kind()) {
    case XmlNodeKind::kText:
    case XmlNodeKind::kComment:
    case XmlNodeKind::kProcessingInstruction:
      break;
    default:
      return false;
  }
  target->set_value(value);
  return true;
}

bool DomOracle::SetExistingAttribute(XmlNode* element,
                                     const std::string& name,
                                     const std::string& value) {
  if (!element->is_element() || element->attribute(name) == nullptr) {
    return false;
  }
  element->SetAttribute(name, value);
  return true;
}

}  // namespace fuzz
}  // namespace oxml
