// Replays fuzz repro files produced by oxml_fuzz. A repro passes when the
// case runs clean — checked-in repros for fixed bugs must all pass. Exit
// status 1 when any repro still diverges (or fails to parse).
//
// Usage: oxml_fuzz_repro FILE...

#include <cstdio>

#include "tests/fuzz/fuzz_harness.h"

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s FILE...\n", argv[0]);
    return 2;
  }
  int failures = 0;
  for (int i = 1; i < argc; ++i) {
    auto c = oxml::fuzz::LoadCaseFile(argv[i]);
    if (!c.ok()) {
      std::printf("%s: PARSE ERROR %s\n", argv[i],
                  c.status().ToString().c_str());
      ++failures;
      continue;
    }
    auto failure = oxml::fuzz::RunCase(&c.value());
    if (failure.has_value()) {
      std::printf("%s: FAIL %s\n", argv[i], failure->Describe().c_str());
      ++failures;
    } else {
      std::printf("%s: pass (%zu ops, %zu skipped)\n", argv[i],
                  c->ops.size(), c->skipped_ops);
    }
  }
  return failures == 0 ? 0 : 1;
}
