#include "tests/fuzz/fuzz_harness.h"

#include <unistd.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <mutex>
#include <sstream>
#include <thread>

#include "src/common/random.h"
#include "src/common/strings.h"
#include "src/core/sql_translator.h"
#include "src/core/xpath.h"
#include "src/core/xpath_eval.h"
#include "src/server/client.h"
#include "src/server/server.h"
#include "src/xml/xml_generator.h"
#include "src/xml/xml_parser.h"
#include "src/xml/xml_writer.h"
#include "tests/fuzz/dom_oracle.h"

namespace oxml {
namespace fuzz {
namespace {

constexpr OrderEncoding kEncodings[] = {
    OrderEncoding::kGlobal, OrderEncoding::kLocal, OrderEncoding::kDewey};

// ------------------------------------------------------------- text utils

std::string Quote(std::string_view s) {
  std::string out = "\"";
  for (char ch : s) {
    unsigned char c = static_cast<unsigned char>(ch);
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\x%02x", c);
          out += buf;
        } else {
          out.push_back(ch);
        }
    }
  }
  out.push_back('"');
  return out;
}

/// Splits one repro line into tokens; double-quoted tokens are unescaped.
Result<std::vector<std::string>> Tokenize(std::string_view line) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < line.size()) {
    if (line[i] == ' ') {
      ++i;
      continue;
    }
    std::string tok;
    if (line[i] == '"') {
      ++i;
      bool closed = false;
      while (i < line.size()) {
        char c = line[i];
        if (c == '"') {
          closed = true;
          ++i;
          break;
        }
        if (c == '\\' && i + 1 < line.size()) {
          char e = line[i + 1];
          i += 2;
          switch (e) {
            case 'n':
              tok.push_back('\n');
              break;
            case 'r':
              tok.push_back('\r');
              break;
            case 't':
              tok.push_back('\t');
              break;
            case 'x': {
              if (i + 2 > line.size()) {
                return Status::ParseError("truncated \\x escape");
              }
              int v = std::stoi(std::string(line.substr(i, 2)), nullptr, 16);
              tok.push_back(static_cast<char>(v));
              i += 2;
              break;
            }
            default:
              tok.push_back(e);
          }
        } else {
          tok.push_back(c);
          ++i;
        }
      }
      if (!closed) return Status::ParseError("unterminated quoted token");
    } else {
      while (i < line.size() && line[i] != ' ') tok.push_back(line[i++]);
    }
    out.push_back(std::move(tok));
  }
  return out;
}

std::string PathToString(const std::vector<size_t>& path) {
  if (path.empty()) return ".";
  std::string out;
  for (size_t i = 0; i < path.size(); ++i) {
    if (i > 0) out.push_back('.');
    out += std::to_string(path[i]);
  }
  return out;
}

Result<std::vector<size_t>> PathFromString(const std::string& s) {
  std::vector<size_t> out;
  if (s == ".") return out;
  for (const std::string& part : Split(s, '.')) {
    if (part.empty()) return Status::ParseError("bad node path: " + s);
    for (char c : part) {
      if (c < '0' || c > '9') {
        return Status::ParseError("bad node path: " + s);
      }
    }
    out.push_back(static_cast<size_t>(std::stoull(part)));
  }
  return out;
}

const char* PosToString(InsertPosition pos) {
  switch (pos) {
    case InsertPosition::kBefore:
      return "before";
    case InsertPosition::kAfter:
      return "after";
    case InsertPosition::kFirstChild:
      return "firstchild";
    case InsertPosition::kLastChild:
      return "lastchild";
  }
  return "?";
}

Result<InsertPosition> PosFromString(const std::string& s) {
  if (s == "before") return InsertPosition::kBefore;
  if (s == "after") return InsertPosition::kAfter;
  if (s == "firstchild") return InsertPosition::kFirstChild;
  if (s == "lastchild") return InsertPosition::kLastChild;
  return Status::ParseError("bad insert position: " + s);
}

std::string Truncate(std::string_view s, size_t n = 160) {
  if (s.size() <= n) return std::string(s);
  return std::string(s.substr(0, n)) + "...(" + std::to_string(s.size()) +
         " bytes)";
}

/// Context around the first differing byte of two strings.
std::string DiffContext(const std::string& a, const std::string& b) {
  size_t i = 0;
  while (i < a.size() && i < b.size() && a[i] == b[i]) ++i;
  size_t lo = i > 40 ? i - 40 : 0;
  return "first difference at byte " + std::to_string(i) + ": expected ..." +
         Truncate(std::string_view(a).substr(lo, 80)) + "... got ..." +
         Truncate(std::string_view(b).substr(lo, 80)) + "...";
}

}  // namespace

// ---------------------------------------------------------------- structs

DatabaseOptions DbToggles::ToDatabaseOptions() const {
  DatabaseOptions opts;
  opts.enable_structural_join = structural_join;
  opts.enable_merge_join = merge_join;
  opts.enable_sort_elision = sort_elision;
  opts.plan_cache_capacity = plan_cache ? 128 : 0;
  return opts;
}

std::string DbToggles::ToString() const {
  std::string out;
  out += "sj=" + std::to_string(structural_join ? 1 : 0);
  out += " mj=" + std::to_string(merge_join ? 1 : 0);
  out += " se=" + std::to_string(sort_elision ? 1 : 0);
  out += " pc=" + std::to_string(plan_cache ? 1 : 0);
  return out;
}

std::string FuzzOp::ToString() const {
  switch (kind) {
    case Kind::kQuery:
      return "op query " + Quote(xpath);
    case Kind::kInsert:
      return "op insert " + PathToString(path) + " " +
             std::string(PosToString(pos)) +
             (text_payload ? " text " + Quote(text)
                           : " elem " + Quote(payload_xml));
    case Kind::kDelete:
      return "op delete " + PathToString(path);
    case Kind::kMove:
      return "op move " + PathToString(path) + " " +
             std::string(PosToString(pos)) + " " + PathToString(ref_path);
    case Kind::kSetText:
      return "op settext " + PathToString(path) + " " + Quote(text);
    case Kind::kSetAttr:
      return "op setattr " + PathToString(path) + " " + attr_name + " " +
             Quote(text);
    case Kind::kCrashRecover:
      return "op crashrecover";
    case Kind::kBulkReload:
      return "op bulkreload";
    case Kind::kSnapshotRead:
      return "op snapshotread " + PathToString(path) + " " + Quote(xpath);
    case Kind::kCancel:
      return "op cancel " + Quote(xpath);
  }
  return "op ?";
}

std::string FuzzFailure::Describe() const {
  return "op #" + std::to_string(op_index) + " [" + encoding + "] " + message;
}

// ------------------------------------------------------------- generation

namespace {

void CollectTree(XmlNode* n, std::vector<XmlNode*>* out) {
  out->push_back(n);
  for (const auto& c : n->children()) CollectTree(c.get(), out);
}

bool IsRootElement(const XmlNode* n) {
  return n->parent() == nullptr ||
         n->parent()->kind() == XmlNodeKind::kDocument;
}

std::string RandomWords(Random* rng, int max_words) {
  int n = static_cast<int>(rng->Uniform(1, max_words));
  std::string out;
  for (int i = 0; i < n; ++i) {
    if (i > 0) out.push_back(' ');
    out += rng->Word(2, 7);
  }
  return out;
}

std::string RandomTag(Random* rng, const DocParams& doc) {
  return "tag" + std::to_string(rng->Uniform(0, doc.vocab - 1));
}

std::unique_ptr<XmlNode> GenSubtree(Random* rng, const DocParams& doc,
                                    int depth, int* budget) {
  auto elem = XmlNode::Element(RandomTag(rng, doc));
  --*budget;
  if (rng->Chance(0.3)) {
    elem->SetAttribute("id", "f" + std::to_string(rng->Uniform(0, 9999)));
  }
  if (depth < 3) {
    int fanout = static_cast<int>(rng->Uniform(0, 3));
    for (int i = 0; i < fanout && *budget > 0; ++i) {
      if (rng->Chance(0.4)) {
        elem->AppendChild(XmlNode::Text(RandomWords(rng, 4)));
        --*budget;
      } else {
        elem->AppendChild(GenSubtree(rng, doc, depth + 1, budget));
      }
    }
  }
  if (elem->children().empty() && rng->Chance(0.6)) {
    elem->AppendChild(XmlNode::Text(RandomWords(rng, 4)));
    --*budget;
  }
  return elem;
}

std::string GenPredicate(Random* rng, const DocParams& doc) {
  switch (rng->Uniform(0, 5)) {
    case 0:
      return "[" + std::to_string(rng->Uniform(1, 4)) + "]";
    case 1:
      return "[last()]";
    case 2:
      return "[position() >= " + std::to_string(rng->Uniform(2, 4)) + "]";
    case 3:
      return "[position() <= " + std::to_string(rng->Uniform(1, 3)) + "]";
    case 4:
      return "[@id]";
    default:
      return "[@id = 'n" +
             std::to_string(rng->Uniform(0, doc.nodes / 4)) + "']";
  }
}

std::string GenQuery(Random* rng, const DocParams& doc) {
  int nsteps = static_cast<int>(rng->Uniform(1, 3));
  std::string out;
  for (int i = 0; i < nsteps; ++i) {
    bool last = (i == nsteps - 1);
    bool axis_step = i > 0 && rng->Chance(0.15);
    out += (!axis_step && rng->Chance(0.45)) ? "//" : "/";
    if (axis_step) {
      switch (rng->Uniform(0, 3)) {
        case 0:
          out += "following-sibling::";
          break;
        case 1:
          out += "preceding-sibling::";
          break;
        case 2:
          out += "ancestor::";
          break;
        default:
          out += "parent::";
      }
    }
    // Node test. text()/@attr only as a trailing step: the engine's subset
    // requires the first step to use the child or descendant axis.
    if (last && i > 0 && rng->Chance(0.12)) {
      out += "text()";
      continue;  // no predicates on text()
    }
    if (last && i > 0 && rng->Chance(0.1)) {
      out += "@id";
      continue;
    }
    double r = rng->NextDouble();
    if (i == 0 && !axis_step && rng->Chance(0.3)) {
      out += "root";  // generated documents are rooted at <root>
    } else if (r < 0.75) {
      out += RandomTag(rng, doc);
    } else {
      out += "*";
    }
    if (rng->Chance(0.35)) out += GenPredicate(rng, doc);
  }
  return out;
}

/// Picks a position valid for inserting relative to `ref`.
bool PickInsertPos(Random* rng, const XmlNode* ref, InsertPosition* pos) {
  bool root = IsRootElement(ref);
  if (ref->is_element()) {
    if (root) {
      *pos = rng->Chance(0.5) ? InsertPosition::kFirstChild
                              : InsertPosition::kLastChild;
    } else {
      switch (rng->Uniform(0, 3)) {
        case 0:
          *pos = InsertPosition::kBefore;
          break;
        case 1:
          *pos = InsertPosition::kAfter;
          break;
        case 2:
          *pos = InsertPosition::kFirstChild;
          break;
        default:
          *pos = InsertPosition::kLastChild;
      }
    }
    return true;
  }
  if (root) return false;
  *pos = rng->Chance(0.5) ? InsertPosition::kBefore : InsertPosition::kAfter;
  return true;
}

}  // namespace

FuzzCase GenerateCase(uint64_t seed, size_t num_ops) {
  // Decorrelate the workload stream from the document generator (which is
  // seeded with the raw seed).
  Random rng(seed * 0x9E3779B97F4A7C15ULL + 0xD1B54A32D192ED03ULL);
  FuzzCase c;
  c.doc.seed = seed;
  c.doc.nodes = static_cast<int>(rng.Uniform(60, 180));
  c.doc.depth = static_cast<int>(rng.Uniform(3, 6));
  c.doc.fanout = static_cast<int>(rng.Uniform(2, 6));
  c.doc.vocab = static_cast<int>(rng.Uniform(3, 8));
  constexpr int64_t kGaps[] = {1, 2, 4, 8, 32};
  c.doc.gap = kGaps[rng.Uniform(0, 4)];
  for (DbToggles& t : c.toggles) {
    t.structural_join = rng.Chance(0.5);
    t.merge_join = rng.Chance(0.5);
    t.sort_elision = rng.Chance(0.5);
    t.plan_cache = rng.Chance(0.5);
  }
  // A quarter of all cases run file-backed with the WAL on, so crash
  // recovery and the no-steal buffer pool see the same op distribution the
  // memory-resident path does.
  c.durable = rng.Chance(0.25);
  // A third of all cases load through the parallel bulk pipeline, with a
  // worker count drawn wide enough to cover both the degenerate 1-thread
  // fan-out and real contention.
  if (rng.Chance(0.33)) {
    c.load_threads = static_cast<size_t>(rng.Uniform(1, 4));
  }
  // A fifth of all cases run with a generous default deadline: never
  // expected to trip, but every statement then exercises the
  // deadline-check machinery (stride-sampled clock reads) end to end.
  if (rng.Chance(0.2)) {
    c.timeout_ms = 10000;
  }

  XmlGeneratorOptions gopts;
  gopts.seed = c.doc.seed;
  gopts.target_nodes = static_cast<size_t>(c.doc.nodes);
  gopts.max_depth = c.doc.depth;
  gopts.max_fanout = c.doc.fanout;
  gopts.tag_vocabulary = c.doc.vocab;
  auto doc = GenerateXml(gopts);
  DomOracle oracle(*doc);

  c.ops.reserve(num_ops);
  while (c.ops.size() < num_ops) {
    FuzzOp op;
    double r = rng.NextDouble();
    if (r < 0.45) {
      op.kind = FuzzOp::Kind::kQuery;
      op.xpath = GenQuery(&rng, c.doc);
      c.ops.push_back(std::move(op));
      continue;
    }
    if (c.durable && r < 0.50) {  // ~5% of a durable case's ops
      op.kind = FuzzOp::Kind::kCrashRecover;
      c.ops.push_back(std::move(op));
      continue;
    }
    if (r >= 0.50 && r < 0.53) {  // ~3%: reload through the parallel path
      op.kind = FuzzOp::Kind::kBulkReload;
      c.ops.push_back(std::move(op));
      continue;
    }

    std::vector<XmlNode*> all;
    CollectTree(oracle.root_element(), &all);

    if (r < 0.56) {  // snapshot read: query under an open foreign txn
      std::vector<XmlNode*> cands;
      for (XmlNode* n : all) {
        if (!IsRootElement(n)) cands.push_back(n);
      }
      if (cands.empty()) continue;
      XmlNode* target =
          cands[rng.Uniform(0, static_cast<int64_t>(cands.size()) - 1)];
      op.kind = FuzzOp::Kind::kSnapshotRead;
      op.path = oracle.PathOf(target);
      op.xpath = GenQuery(&rng, c.doc);
      // The oracle is NOT mutated: the uncommitted delete rolls back.
      c.ops.push_back(std::move(op));
    } else if (r < 0.58) {  // cancellation race against an in-flight query
      op.kind = FuzzOp::Kind::kCancel;
      op.xpath = GenQuery(&rng, c.doc);
      c.ops.push_back(std::move(op));
    } else if (r < 0.65) {  // insert
      XmlNode* ref = all[rng.Uniform(0, static_cast<int64_t>(all.size()) - 1)];
      InsertPosition pos;
      if (!PickInsertPos(&rng, ref, &pos)) continue;
      op.kind = FuzzOp::Kind::kInsert;
      op.path = oracle.PathOf(ref);
      op.pos = pos;
      std::unique_ptr<XmlNode> payload;
      if (rng.Chance(0.25)) {
        op.text_payload = true;
        op.text = RandomWords(&rng, 4);
        payload = XmlNode::Text(op.text);
      } else {
        int budget = static_cast<int>(rng.Uniform(1, 8));
        payload = GenSubtree(&rng, c.doc, 1, &budget);
        op.payload_xml = WriteXml(*payload);
      }
      bool ok = oracle.Insert(ref, pos, std::move(payload));
      if (!ok) continue;
      c.ops.push_back(std::move(op));
    } else if (r < 0.76) {  // delete
      std::vector<XmlNode*> cands;
      for (XmlNode* n : all) {
        if (!IsRootElement(n)) cands.push_back(n);
      }
      if (cands.empty()) continue;
      XmlNode* target =
          cands[rng.Uniform(0, static_cast<int64_t>(cands.size()) - 1)];
      op.kind = FuzzOp::Kind::kDelete;
      op.path = oracle.PathOf(target);
      if (!oracle.Delete(target)) continue;
      c.ops.push_back(std::move(op));
    } else if (r < 0.85) {  // move
      std::vector<XmlNode*> sources;
      for (XmlNode* n : all) {
        if (!IsRootElement(n)) sources.push_back(n);
      }
      if (sources.empty()) continue;
      XmlNode* source =
          sources[rng.Uniform(0, static_cast<int64_t>(sources.size()) - 1)];
      std::vector<XmlNode*> refs;
      for (XmlNode* n : all) {
        if (!DomOracle::InSubtree(n, source)) refs.push_back(n);
      }
      if (refs.empty()) continue;
      XmlNode* ref =
          refs[rng.Uniform(0, static_cast<int64_t>(refs.size()) - 1)];
      InsertPosition pos;
      if (!PickInsertPos(&rng, ref, &pos)) continue;
      op.kind = FuzzOp::Kind::kMove;
      op.path = oracle.PathOf(source);
      op.ref_path = oracle.PathOf(ref);
      op.pos = pos;
      if (!oracle.Move(source, ref, pos)) continue;
      c.ops.push_back(std::move(op));
    } else if (r < 0.94) {  // settext
      std::vector<XmlNode*> texts;
      for (XmlNode* n : all) {
        if (n->is_text()) texts.push_back(n);
      }
      if (texts.empty()) continue;
      XmlNode* target =
          texts[rng.Uniform(0, static_cast<int64_t>(texts.size()) - 1)];
      op.kind = FuzzOp::Kind::kSetText;
      op.path = oracle.PathOf(target);
      op.text = RandomWords(&rng, 5);
      if (!oracle.SetValue(target, op.text)) continue;
      c.ops.push_back(std::move(op));
    } else {  // setattr
      std::vector<XmlNode*> withattrs;
      for (XmlNode* n : all) {
        if (!n->attributes().empty()) withattrs.push_back(n);
      }
      if (withattrs.empty()) continue;
      XmlNode* target = withattrs[rng.Uniform(
          0, static_cast<int64_t>(withattrs.size()) - 1)];
      const auto& attrs = target->attributes();
      op.kind = FuzzOp::Kind::kSetAttr;
      op.path = oracle.PathOf(target);
      op.attr_name =
          attrs[rng.Uniform(0, static_cast<int64_t>(attrs.size()) - 1)].name;
      op.text = rng.Word(1, 8);
      if (!oracle.SetExistingAttribute(target, op.attr_name, op.text)) {
        continue;
      }
      c.ops.push_back(std::move(op));
    }
  }
  return c;
}

// -------------------------------------------------------------- execution

namespace {

struct StoreInstance {
  std::unique_ptr<Database> db;
  std::unique_ptr<OrderedXmlStore> store;
  const char* name = "";
  OrderEncoding encoding = OrderEncoding::kGlobal;
  DatabaseOptions dbopts;  // durable cases reopen from these after a crash
};

/// Unique per-case temp path for a durable store's database file.
std::string FuzzTempPath(const char* enc_name) {
  static uint64_t counter = 0;
  const char* base = std::getenv("TMPDIR");
  return std::string(base != nullptr ? base : "/tmp") + "/oxml_fuzz_" +
         std::to_string(static_cast<long long>(::getpid())) + "_" +
         std::to_string(++counter) + "_" + enc_name + ".db";
}

/// Removes a durable case's database + WAL files when the run ends
/// (declared before the stores so the databases close first).
struct FileCleanup {
  std::vector<std::string> paths;
  ~FileCleanup() {
    for (const std::string& p : paths) {
      std::remove(p.c_str());
      std::remove((p + ".wal").c_str());
    }
  }
};

Result<std::string> StoreSignature(OrderedXmlStore* store,
                                   const StoredNode& n) {
  if (n.kind == XmlNodeKind::kAttribute) {
    return "@" + n.tag + "=" + n.value;
  }
  OXML_ASSIGN_OR_RETURN(std::unique_ptr<XmlNode> subtree,
                        store->ReconstructSubtree(n));
  return WriteXml(*subtree);
}

/// Compares one store result sequence against the oracle's signatures.
std::optional<std::string> CompareResults(
    OrderedXmlStore* store, const std::vector<std::string>& expected,
    const std::vector<StoredNode>& actual, const std::string& mode) {
  if (actual.size() != expected.size()) {
    return mode + ": result count mismatch: oracle " +
           std::to_string(expected.size()) + ", store " +
           std::to_string(actual.size());
  }
  for (size_t i = 0; i < expected.size(); ++i) {
    auto sig = StoreSignature(store, actual[i]);
    if (!sig.ok()) {
      return mode + ": result " + std::to_string(i) +
             " unreconstructable: " + sig.status().ToString();
    }
    if (*sig != expected[i]) {
      return mode + ": result " + std::to_string(i) +
             " mismatch: oracle " + Truncate(expected[i]) + " vs store " +
             Truncate(*sig);
    }
  }
  return std::nullopt;
}

/// Verifies one parsed query against every store, in driver mode and —
/// where the subset allows it — as one translated SQL statement. Safe to
/// call from several threads at once: queries and subtree reconstruction
/// are read-only statements under the database's shared latch, and the
/// oracle's answers are precomputed by the caller.
std::optional<FuzzFailure> VerifyQuery(
    StoreInstance* stores, const FuzzOp& op, size_t op_index,
    const XPathQuery& parsed, const std::vector<std::string>& expected) {
  for (int e = 0; e < 3; ++e) {
    StoreInstance& s = stores[e];
    auto fail = [&](const std::string& msg) {
      return FuzzFailure{op_index, s.name, op.ToString() + ": " + msg};
    };
    // A tripped deadline on a configured-timeout case is a legitimate
    // governance outcome for a read-only statement: skip the comparison
    // (the document is untouched) rather than reporting a divergence.
    bool deadline_configured = s.dbopts.default_statement_timeout_ms > 0;
    auto actual = EvaluateXPath(s.store.get(), parsed);
    if (!actual.ok()) {
      if (deadline_configured && actual.status().IsDeadlineExceeded()) {
        continue;
      }
      return fail("driver error: " + actual.status().ToString());
    }
    if (auto msg =
            CompareResults(s.store.get(), expected, *actual, "driver")) {
      return fail(*msg);
    }
    // Whole-path SQL translation, where the subset allows it.
    auto translated = TranslateXPathToSql(*s.store, parsed);
    if (translated.ok()) {
      auto via = EvaluateXPathViaSql(s.store.get(), parsed);
      if (!via.ok()) {
        if (deadline_configured && via.status().IsDeadlineExceeded()) {
          continue;
        }
        return fail("translated error: " + via.status().ToString());
      }
      if (auto msg =
              CompareResults(s.store.get(), expected, *via, "translated")) {
        return fail(*msg);
      }
    } else if (!translated.status().IsNotImplemented()) {
      return fail("translate: " + translated.status().ToString());
    }
  }
  return std::nullopt;
}

/// Session mode (FuzzCase::sessions > 0): one loopback OxmlServer per
/// store, each exposing the live store to the kXPath frame as "doc", plus
/// a pool of OXWP protocol clients per server. Query batches are then also
/// verified end to end over the wire — handshake, admission, statement
/// dispatch, result framing — against the same precomputed oracle answers
/// the embedded path uses. The servers borrow the stores' databases, so
/// the fleet must be stopped before any op that tears a database down or
/// replaces it (kCrashRecover, kBulkReload) and restarted on the new
/// instances afterwards; RunCase declares the fleet after the stores so it
/// also shuts down first on every early return.
struct SessionFleet {
  size_t n = 0;  // clients per server; 0 = session mode off
  std::unique_ptr<server::OxmlServer> servers[3];
  std::vector<std::unique_ptr<server::OxmlClient>> clients[3];

  /// (Re)starts one server over each store's current database and connects
  /// `n_clients` sessions to each. Returns an error message on failure.
  std::optional<std::string> Start(StoreInstance* stores, size_t n_clients) {
    Stop();
    n = n_clients;
    for (int e = 0; e < 3; ++e) {
      server::ServerOptions sopts;
      sopts.worker_threads = std::max<size_t>(2, std::min<size_t>(n, 8));
      sopts.session.max_sessions = n + 1;
      // Enough slots that n well-behaved clients never see an admission
      // rejection — this mode hunts result divergences, not overflow.
      sopts.session.max_concurrent_statements = n;
      sopts.session.max_queued_statements = 2 * n;
      auto srv = std::make_unique<server::OxmlServer>(stores[e].db.get(),
                                                      sopts);
      Status st = srv->Start();
      if (!st.ok()) {
        return std::string(stores[e].name) +
               ": server start: " + st.ToString();
      }
      srv->RegisterStore("doc", stores[e].store.get());
      servers[e] = std::move(srv);
      for (size_t k = 0; k < n; ++k) {
        server::ClientOptions copts;
        copts.port = servers[e]->port();
        auto cl = server::OxmlClient::Connect(copts);
        if (!cl.ok()) {
          return std::string(stores[e].name) +
                 ": client connect: " + cl.status().ToString();
        }
        clients[e].push_back(std::move(cl).value());
      }
    }
    return std::nullopt;
  }

  void Stop() {
    for (int e = 0; e < 3; ++e) {
      for (auto& c : clients[e]) {
        if (c != nullptr) (void)c->Goodbye();
      }
      clients[e].clear();
      if (servers[e] != nullptr) {
        servers[e]->Stop();
        servers[e].reset();
      }
    }
    n = 0;
  }

  ~SessionFleet() { Stop(); }
};

/// The wire-level counterpart of VerifyQuery: evaluates the query through
/// one protocol client per encoding. The kXPath frame returns the same
/// signature strings the oracle precomputes, so comparison is direct.
/// Thread-safe under the same contract as VerifyQuery as long as each
/// concurrent caller uses a distinct `client_index`.
std::optional<FuzzFailure> VerifyQueryOverWire(
    SessionFleet* fleet, const StoreInstance* stores, size_t client_index,
    const FuzzOp& op, size_t op_index,
    const std::vector<std::string>& expected) {
  for (int e = 0; e < 3; ++e) {
    const StoreInstance& s = stores[e];
    auto fail = [&](const std::string& msg) {
      return FuzzFailure{op_index, s.name, op.ToString() + ": " + msg};
    };
    auto actual =
        fleet->clients[e][client_index]->XPath("doc", op.xpath);
    if (!actual.ok()) {
      if (s.dbopts.default_statement_timeout_ms > 0 &&
          actual.status().IsDeadlineExceeded()) {
        continue;  // tripped deadline = governance outcome, as embedded
      }
      return fail("session query error: " + actual.status().ToString());
    }
    if (actual->size() != expected.size()) {
      return fail("session: result count mismatch: oracle " +
                  std::to_string(expected.size()) + ", session " +
                  std::to_string(actual->size()));
    }
    for (size_t r = 0; r < expected.size(); ++r) {
      if ((*actual)[r] != expected[r]) {
        return fail("session: result " + std::to_string(r) +
                    " mismatch: oracle " + Truncate(expected[r]) +
                    " vs session " + Truncate((*actual)[r]));
      }
    }
  }
  return std::nullopt;
}

}  // namespace

std::optional<FuzzFailure> RunCase(FuzzCase* c) {
  c->skipped_ops = 0;
  XmlGeneratorOptions gopts;
  gopts.seed = c->doc.seed;
  gopts.target_nodes = static_cast<size_t>(c->doc.nodes);
  gopts.max_depth = c->doc.depth;
  gopts.max_fanout = c->doc.fanout;
  gopts.tag_vocabulary = c->doc.vocab;
  auto doc = GenerateXml(gopts);
  DomOracle oracle(*doc);

  FileCleanup cleanup;
  StoreInstance stores[3];
  for (int e = 0; e < 3; ++e) {
    OrderEncoding enc = kEncodings[e];
    stores[e].name = OrderEncodingToString(enc);
    stores[e].encoding = enc;
    auto failure = [&](const std::string& msg) {
      return FuzzFailure{0, stores[e].name, msg};
    };
    stores[e].dbopts = c->toggles[e].ToDatabaseOptions();
    stores[e].dbopts.default_statement_timeout_ms = c->timeout_ms;
    if (c->load_threads > 0) {
      stores[e].dbopts.enable_parallel_load = true;
      stores[e].dbopts.num_load_threads = c->load_threads;
      // Tiny runs force multi-run merges even on the fuzzer's small docs.
      stores[e].dbopts.load_run_bytes = 1024;
    }
    if (c->durable) {
      stores[e].dbopts.file_path = FuzzTempPath(stores[e].name);
      cleanup.paths.push_back(stores[e].dbopts.file_path);
    }
    auto db = Database::Open(stores[e].dbopts);
    if (!db.ok()) return failure("open: " + db.status().ToString());
    stores[e].db = std::move(db).value();
    StoreOptions sopts;
    sopts.gap = c->doc.gap;
    auto store = OrderedXmlStore::Create(stores[e].db.get(), enc, sopts);
    if (!store.ok()) return failure("create: " + store.status().ToString());
    stores[e].store = std::move(store).value();
    Status load = stores[e].store->LoadDocument(*doc);
    if (!load.ok()) {
      // A configured deadline tripping during the initial load is a
      // governance outcome, not a divergence; the case just cannot run.
      if (c->timeout_ms > 0 && load.IsDeadlineExceeded()) return std::nullopt;
      return failure("load: " + load.ToString());
    }
    Status valid = stores[e].store->Validate();
    if (!valid.ok()) {
      return failure("invariant violation after load: " + valid.ToString());
    }
  }

  // Session mode: spin up the loopback servers + protocol clients. At
  // least one client per query thread, so concurrent batch workers never
  // share a (single-threaded) client.
  SessionFleet fleet;
  size_t fleet_size = std::max(c->sessions, c->query_threads);
  if (c->sessions > 0) {
    if (auto err = fleet.Start(stores, fleet_size)) {
      return FuzzFailure{0, "", "session fleet start: " + *err};
    }
  }

  for (size_t i = 0; i < c->ops.size(); ++i) {
    const FuzzOp& op = c->ops[i];

    if (op.kind == FuzzOp::Kind::kQuery) {
      // Gather the maximal run of consecutive queries and precompute the
      // oracle's answers serially (the oracle is not latched).
      struct QueryTask {
        size_t op_index;
        XPathQuery parsed;
        std::vector<std::string> expected;
      };
      std::vector<QueryTask> batch;
      size_t j = i;
      for (; j < c->ops.size() && c->ops[j].kind == FuzzOp::Kind::kQuery;
           ++j) {
        auto parsed = ParseXPath(c->ops[j].xpath);
        if (!parsed.ok()) {
          ++c->skipped_ops;
          continue;
        }
        QueryTask t;
        t.op_index = j;
        t.parsed = std::move(parsed).value();
        std::vector<OracleNode> oracle_nodes = oracle.Evaluate(t.parsed);
        t.expected.reserve(oracle_nodes.size());
        for (const OracleNode& n : oracle_nodes) {
          t.expected.push_back(oracle.Signature(n));
        }
        batch.push_back(std::move(t));
      }

      std::optional<FuzzFailure> qfail;
      size_t nthreads = std::min(c->query_threads, batch.size());
      if (nthreads <= 1) {
        for (size_t k = 0; k < batch.size(); ++k) {
          const QueryTask& t = batch[k];
          qfail = VerifyQuery(stores, c->ops[t.op_index], t.op_index,
                              t.parsed, t.expected);
          if (!qfail.has_value() && fleet.n > 0) {
            // Round-robin over the clients so every session serves work.
            qfail = VerifyQueryOverWire(&fleet, stores, k % fleet.n,
                                        c->ops[t.op_index], t.op_index,
                                        t.expected);
          }
          if (qfail.has_value()) break;
        }
      } else {
        // Concurrent-reader mode: N client threads drain the batch.
        // Mutations never overlap the fan-out, so every query sees the
        // same document state as a serial replay would; any divergence is
        // a latching/plan-sharing bug. The earliest-op failure is the one
        // reported, keeping repro files deterministic.
        std::atomic<size_t> next{0};
        std::mutex fail_mu;
        std::vector<std::thread> workers;
        workers.reserve(nthreads);
        for (size_t t = 0; t < nthreads; ++t) {
          workers.emplace_back([&, t]() {
            for (size_t k = next.fetch_add(1); k < batch.size();
                 k = next.fetch_add(1)) {
              const QueryTask& task = batch[k];
              auto f = VerifyQuery(stores, c->ops[task.op_index],
                                   task.op_index, task.parsed,
                                   task.expected);
              if (!f.has_value() && fleet.n > 0) {
                // Each worker owns client index t (clients are
                // single-threaded; the fleet is sized >= nthreads).
                f = VerifyQueryOverWire(&fleet, stores, t,
                                        c->ops[task.op_index],
                                        task.op_index, task.expected);
              }
              if (f.has_value()) {
                std::lock_guard<std::mutex> lock(fail_mu);
                if (!qfail.has_value() || f->op_index < qfail->op_index) {
                  qfail = std::move(f);
                }
              }
            }
          });
        }
        for (std::thread& w : workers) w.join();
      }
      if (qfail.has_value()) return qfail;
      i = j - 1;  // the loop's ++i lands on the first non-query op
      continue;
    }

    if (op.kind == FuzzOp::Kind::kCrashRecover) {
      if (!c->durable) {  // meaningless without a disk to recover from
        ++c->skipped_ops;
        continue;
      }
      std::string oracle_doc = oracle.Serialize();
      // The servers borrow the databases about to be crashed: disconnect
      // every session and stop them first, restart on the reopened ones.
      fleet.Stop();
      for (StoreInstance& s : stores) {
        auto fail = [&](const std::string& msg) {
          return FuzzFailure{i, s.name, op.ToString() + ": " + msg};
        };
        // Kill the process state mid-run: nothing flushes, the WAL stays
        // as-is, and the reopen must replay every committed mutation.
        s.db->SimulateCrashForTesting();
        s.store.reset();
        s.db.reset();
        DatabaseOptions ropts = s.dbopts;
        ropts.open_existing = true;
        auto db = Database::Open(ropts);
        if (!db.ok()) {
          return fail("reopen after crash: " + db.status().ToString());
        }
        s.db = std::move(db).value();
        StoreOptions sopts;
        sopts.gap = c->doc.gap;
        auto store = OrderedXmlStore::Attach(s.db.get(), s.encoding, sopts);
        if (!store.ok()) {
          return fail("attach after crash: " + store.status().ToString());
        }
        s.store = std::move(store).value();
        Status valid = s.store->Validate();
        if (!valid.ok()) {
          return fail("invariant violation after recovery: " +
                      valid.ToString());
        }
        auto rec = s.store->ReconstructDocument();
        if (!rec.ok()) {
          return fail("reconstruction after recovery: " +
                      rec.status().ToString());
        }
        std::string got = WriteXml(**rec);
        if (got != oracle_doc) {
          return fail("recovered document diverged from oracle: " +
                      DiffContext(oracle_doc, got));
        }
      }
      if (c->sessions > 0) {
        if (auto err = fleet.Start(stores, fleet_size)) {
          return FuzzFailure{i, "",
                             "session fleet restart after crash: " + *err};
        }
      }
      continue;
    }

    if (op.kind == FuzzOp::Kind::kBulkReload) {
      // Reload the oracle's current document through the parallel
      // bulk-load pipeline into a fresh database, verify the reload, and
      // swap it in for the rest of the op stream. This exercises the
      // partition/shred/merge path against documents shaped by arbitrary
      // prior mutations, not just generator output. The tree is cloned
      // rather than serialized+reparsed: mutations can leave adjacent
      // text-node siblings, which a reparse would merge, silently
      // desynchronizing the store's tree shape from the oracle's.
      std::string oracle_doc = oracle.Serialize();
      XmlDocument snapshot;
      snapshot.root()->AppendChild(oracle.root_element()->Clone());
      // The reload replaces each store's database out from under any
      // running server: stop the fleet, restart it on the fresh stores.
      fleet.Stop();
      for (StoreInstance& s : stores) {
        auto fail = [&](const std::string& msg) {
          return FuzzFailure{i, s.name, op.ToString() + ": " + msg};
        };
        DatabaseOptions ropts = s.dbopts;
        ropts.enable_parallel_load = true;
        if (ropts.num_load_threads == 0) ropts.num_load_threads = 2;
        ropts.load_run_bytes = 1024;
        ropts.open_existing = false;
        if (c->durable) {
          ropts.file_path = FuzzTempPath(s.name);
          cleanup.paths.push_back(ropts.file_path);
        }
        auto db = Database::Open(ropts);
        if (!db.ok()) return fail("open: " + db.status().ToString());
        StoreOptions sopts;
        sopts.gap = c->doc.gap;
        auto store =
            OrderedXmlStore::Create(db->get(), s.encoding, sopts);
        if (!store.ok()) {
          return fail("create: " + store.status().ToString());
        }
        Status load = (*store)->LoadDocument(snapshot);
        if (!load.ok()) return fail("parallel load: " + load.ToString());
        Status valid = (*store)->Validate();
        if (!valid.ok()) {
          return fail("invariant violation after parallel load: " +
                      valid.ToString());
        }
        auto rec = (*store)->ReconstructDocument();
        if (!rec.ok()) {
          return fail("reconstruction after parallel load: " +
                      rec.status().ToString());
        }
        std::string got = WriteXml(**rec);
        if (got != oracle_doc) {
          return fail("parallel-loaded document diverged from oracle: " +
                      DiffContext(oracle_doc, got));
        }
        // The reload becomes the live store; drop the old database after
        // the new one is fully verified.
        s.store = std::move(store).value();
        s.db = std::move(db).value();
        s.dbopts = ropts;
      }
      if (c->sessions > 0) {
        if (auto err = fleet.Start(stores, fleet_size)) {
          return FuzzFailure{i, "",
                             "session fleet restart after reload: " + *err};
        }
      }
      continue;
    }

    if (op.kind == FuzzOp::Kind::kSnapshotRead) {
      // MVCC check: each store's database opens a transaction and deletes
      // the subtree at op.path without committing, then a second thread
      // evaluates op.xpath. Joining the reader while the transaction is
      // still open proves it never blocked; its results must match the
      // oracle's committed state exactly. The transaction then rolls
      // back, so the document is unchanged for subsequent ops.
      auto parsed = ParseXPath(op.xpath);
      XmlNode* target = oracle.ResolvePath(op.path);
      if (!parsed.ok() || target == nullptr || IsRootElement(target)) {
        ++c->skipped_ops;
        continue;
      }
      std::vector<OracleNode> oracle_nodes = oracle.Evaluate(*parsed);
      std::vector<std::string> expected;
      expected.reserve(oracle_nodes.size());
      for (const OracleNode& n : oracle_nodes) {
        expected.push_back(oracle.Signature(n));
      }
      std::string oracle_doc = oracle.Serialize();
      for (StoreInstance& s : stores) {
        auto fail = [&](const std::string& msg) {
          return FuzzFailure{i, s.name, op.ToString() + ": " + msg};
        };
        auto ref = s.store->NodeAtPath(op.path);
        if (!ref.ok()) {
          return fail("store could not resolve a path the oracle resolved: " +
                      ref.status().ToString());
        }
        Status begin = s.db->Begin();
        if (!begin.ok()) return fail("begin: " + begin.ToString());
        Status del = s.store->DeleteSubtree(*ref).status();  // rides the txn
        if (!del.ok()) {
          (void)s.db->Rollback();
          return fail("uncommitted delete rejected: " + del.ToString());
        }
        std::string reader_err;
        std::optional<std::string> mismatch;
        std::thread reader([&] {
          auto actual = EvaluateXPath(s.store.get(), *parsed);
          if (!actual.ok()) {
            reader_err = actual.status().ToString();
            return;
          }
          mismatch =
              CompareResults(s.store.get(), expected, *actual, "snapshot");
        });
        reader.join();  // completes while the transaction is still open
        Status rb = s.db->Rollback();
        if (!rb.ok()) return fail("rollback: " + rb.ToString());
        if (!reader_err.empty()) {
          return fail("snapshot read error: " + reader_err);
        }
        if (mismatch.has_value()) return fail(*mismatch);
        Status valid = s.store->Validate();
        if (!valid.ok()) {
          return fail("invariant violation after rollback: " +
                      valid.ToString());
        }
        auto rec = s.store->ReconstructDocument();
        if (!rec.ok()) {
          return fail("reconstruction after rollback: " +
                      rec.status().ToString());
        }
        std::string got = WriteXml(**rec);
        if (got != oracle_doc) {
          return fail("document diverged after rollback: " +
                      DiffContext(oracle_doc, got));
        }
      }
      continue;
    }

    if (op.kind == FuzzOp::Kind::kCancel) {
      // Cancellation race: while this thread evaluates the query, a second
      // thread sweeps Database::Cancel over the statement-id window the
      // evaluation occupies (the driver issues several statements per
      // query, so the sweep re-reads the window each pass). Whatever the
      // interleaving, exactly two outcomes are legal — the complete,
      // oracle-correct result, or kCancelled — and the database must stay
      // fully usable either way.
      auto parsed = ParseXPath(op.xpath);
      if (!parsed.ok()) {
        ++c->skipped_ops;
        continue;
      }
      std::vector<OracleNode> oracle_nodes = oracle.Evaluate(*parsed);
      std::vector<std::string> expected;
      expected.reserve(oracle_nodes.size());
      for (const OracleNode& n : oracle_nodes) {
        expected.push_back(oracle.Signature(n));
      }
      for (StoreInstance& s : stores) {
        auto fail = [&](const std::string& msg) {
          return FuzzFailure{i, s.name, op.ToString() + ": " + msg};
        };
        std::atomic<bool> done{false};
        uint64_t base = s.db->next_statement_id();
        std::thread canceller([&] {
          while (!done.load(std::memory_order_acquire)) {
            uint64_t hi = s.db->next_statement_id();
            for (uint64_t id = base; id <= hi; ++id) {
              (void)s.db->Cancel(id);  // NotFound = raced completion; fine
            }
            std::this_thread::yield();
          }
        });
        auto actual = EvaluateXPath(s.store.get(), *parsed);
        done.store(true, std::memory_order_release);
        canceller.join();
        if (actual.ok()) {
          // Won the race: the result must be complete and correct.
          if (auto msg = CompareResults(s.store.get(), expected, *actual,
                                        "cancel-race")) {
            return fail(*msg);
          }
        } else if (!actual.status().IsCancelled() &&
                   !(c->timeout_ms > 0 &&
                     actual.status().IsDeadlineExceeded())) {
          return fail("expected success or kCancelled, got: " +
                      actual.status().ToString());
        }
        Status valid = s.store->Validate();
        if (!valid.ok()) {
          return fail("invariant violation after cancel race: " +
                      valid.ToString());
        }
        // The database must serve the very next statement normally.
        auto after = EvaluateXPath(s.store.get(), *parsed);
        if (!after.ok()) {
          return fail("statement after cancel race failed: " +
                      after.status().ToString());
        }
        if (auto msg = CompareResults(s.store.get(), expected, *after,
                                      "post-cancel")) {
          return fail(*msg);
        }
      }
      continue;
    }

    // Mutation: check applicability and apply on the oracle first (path
    // resolution is against the pre-op tree on every side).
    bool applied = false;
    std::unique_ptr<XmlNode> payload;
    switch (op.kind) {
      case FuzzOp::Kind::kInsert: {
        XmlNode* ref = oracle.ResolvePath(op.path);
        if (ref == nullptr) break;
        if (op.text_payload) {
          payload = XmlNode::Text(op.text);
        } else {
          auto pdoc = ParseXml(op.payload_xml);
          if (!pdoc.ok() || (*pdoc)->root_element() == nullptr) break;
          payload = (*pdoc)->root_element()->Clone();
        }
        applied = oracle.Insert(ref, op.pos, payload->Clone());
        break;
      }
      case FuzzOp::Kind::kDelete: {
        XmlNode* target = oracle.ResolvePath(op.path);
        applied = target != nullptr && oracle.Delete(target);
        break;
      }
      case FuzzOp::Kind::kMove: {
        XmlNode* source = oracle.ResolvePath(op.path);
        XmlNode* ref = oracle.ResolvePath(op.ref_path);
        applied = source != nullptr && ref != nullptr &&
                  oracle.Move(source, ref, op.pos);
        break;
      }
      case FuzzOp::Kind::kSetText: {
        XmlNode* target = oracle.ResolvePath(op.path);
        applied = target != nullptr && oracle.SetValue(target, op.text);
        break;
      }
      case FuzzOp::Kind::kSetAttr: {
        XmlNode* target = oracle.ResolvePath(op.path);
        applied = target != nullptr &&
                  oracle.SetExistingAttribute(target, op.attr_name, op.text);
        break;
      }
      case FuzzOp::Kind::kQuery:
      case FuzzOp::Kind::kCrashRecover:
      case FuzzOp::Kind::kBulkReload:
      case FuzzOp::Kind::kSnapshotRead:
      case FuzzOp::Kind::kCancel:
        break;
    }
    if (!applied) {
      ++c->skipped_ops;
      continue;
    }

    std::string oracle_doc = oracle.Serialize();
    for (StoreInstance& s : stores) {
      auto fail = [&](const std::string& msg) {
        return FuzzFailure{i, s.name, op.ToString() + ": " + msg};
      };
      auto ref = s.store->NodeAtPath(op.path);
      if (!ref.ok()) {
        return fail("store could not resolve a path the oracle resolved: " +
                    ref.status().ToString());
      }
      Status applied_status = Status::OK();
      switch (op.kind) {
        case FuzzOp::Kind::kInsert:
          applied_status =
              s.store->InsertSubtree(*ref, op.pos, *payload).status();
          break;
        case FuzzOp::Kind::kDelete:
          applied_status = s.store->DeleteSubtree(*ref).status();
          break;
        case FuzzOp::Kind::kMove: {
          auto ref2 = s.store->NodeAtPath(op.ref_path);
          if (!ref2.ok()) {
            return fail("store could not resolve the move destination: " +
                        ref2.status().ToString());
          }
          applied_status = s.store->MoveSubtree(*ref, *ref2, op.pos).status();
          break;
        }
        case FuzzOp::Kind::kSetText:
          applied_status = s.store->UpdateNodeValue(*ref, op.text).status();
          break;
        case FuzzOp::Kind::kSetAttr:
          applied_status =
              s.store->UpdateAttributeValue(*ref, op.attr_name, op.text)
                  .status();
          break;
        case FuzzOp::Kind::kQuery:
        case FuzzOp::Kind::kCrashRecover:
        case FuzzOp::Kind::kBulkReload:
        case FuzzOp::Kind::kSnapshotRead:
        case FuzzOp::Kind::kCancel:
          break;
      }
      if (c->timeout_ms > 0 && applied_status.IsDeadlineExceeded()) {
        // The store rolled the mutation back but the oracle already
        // applied it, so they can no longer be compared. A tripped
        // deadline is a legitimate governance outcome, not a divergence:
        // check the store is still internally consistent, then end the
        // case early.
        Status valid = s.store->Validate();
        if (!valid.ok()) {
          return fail("invariant violation after timed-out mutation: " +
                      valid.ToString());
        }
        return std::nullopt;
      }
      if (!applied_status.ok()) {
        return fail("update rejected: " + applied_status.ToString());
      }
      Status valid = s.store->Validate();
      if (!valid.ok()) {
        return fail("invariant violation: " + valid.ToString());
      }
      auto rec = s.store->ReconstructDocument();
      if (!rec.ok()) {
        return fail("reconstruction failed: " + rec.status().ToString());
      }
      std::string got = WriteXml(**rec);
      if (got != oracle_doc) {
        return fail("document diverged from oracle: " +
                    DiffContext(oracle_doc, got));
      }
    }
  }
  return std::nullopt;
}

// --------------------------------------------------------------- shrinking

FuzzCase ShrinkCase(const FuzzCase& c) {
  FuzzCase cur = c;
  {
    FuzzCase probe = cur;
    if (!RunCase(&probe).has_value()) return cur;  // does not fail: no-op
  }
  size_t chunk = std::max<size_t>(1, cur.ops.size() / 2);
  while (true) {
    bool removed = false;
    for (size_t start = 0; start < cur.ops.size();) {
      FuzzCase trial = cur;
      size_t end = std::min(start + chunk, trial.ops.size());
      trial.ops.erase(trial.ops.begin() + start, trial.ops.begin() + end);
      if (RunCase(&trial).has_value()) {
        cur.ops = std::move(trial.ops);
        removed = true;  // retry the same start against the shorter list
      } else {
        start += chunk;
      }
    }
    if (chunk > 1) {
      chunk = std::max<size_t>(1, chunk / 2);
    } else if (!removed) {
      break;
    }
  }
  return cur;
}

// ----------------------------------------------------------- serialization

std::string SerializeCase(const FuzzCase& c) {
  std::string out = "oxml-fuzz-repro v1\n";
  out += "doc seed=" + std::to_string(c.doc.seed) +
         " nodes=" + std::to_string(c.doc.nodes) +
         " depth=" + std::to_string(c.doc.depth) +
         " fanout=" + std::to_string(c.doc.fanout) +
         " vocab=" + std::to_string(c.doc.vocab) +
         " gap=" + std::to_string(c.doc.gap) + "\n";
  for (int e = 0; e < 3; ++e) {
    out += std::string("toggles ") + OrderEncodingToString(kEncodings[e]) +
           " " + c.toggles[e].ToString() + "\n";
  }
  if (c.durable) out += "durable\n";
  if (c.query_threads > 1) {
    out += "threads " + std::to_string(c.query_threads) + "\n";
  }
  if (c.load_threads > 0) {
    out += "load_threads " + std::to_string(c.load_threads) + "\n";
  }
  if (c.timeout_ms > 0) {
    out += "timeout_ms " + std::to_string(c.timeout_ms) + "\n";
  }
  if (c.sessions > 0) {
    out += "sessions " + std::to_string(c.sessions) + "\n";
  }
  for (const FuzzOp& op : c.ops) out += op.ToString() + "\n";
  out += "end\n";
  return out;
}

namespace {

Result<int64_t> ParseKeyedInt(const std::string& token,
                              const std::string& key) {
  if (!StartsWith(token, key + "=")) {
    return Status::ParseError("expected " + key + "=..., got " + token);
  }
  return static_cast<int64_t>(
      std::stoll(token.substr(key.size() + 1)));
}

Result<FuzzOp> ParseOp(const std::vector<std::string>& tok) {
  FuzzOp op;
  const std::string& kind = tok[1];
  auto need = [&](size_t n) -> Status {
    if (tok.size() != n) {
      return Status::ParseError("bad arity for op " + kind);
    }
    return Status::OK();
  };
  if (kind == "query") {
    OXML_RETURN_NOT_OK(need(3));
    op.kind = FuzzOp::Kind::kQuery;
    op.xpath = tok[2];
  } else if (kind == "insert") {
    OXML_RETURN_NOT_OK(need(6));
    op.kind = FuzzOp::Kind::kInsert;
    OXML_ASSIGN_OR_RETURN(op.path, PathFromString(tok[2]));
    OXML_ASSIGN_OR_RETURN(op.pos, PosFromString(tok[3]));
    if (tok[4] == "text") {
      op.text_payload = true;
      op.text = tok[5];
    } else if (tok[4] == "elem") {
      op.payload_xml = tok[5];
    } else {
      return Status::ParseError("bad insert payload kind: " + tok[4]);
    }
  } else if (kind == "delete") {
    OXML_RETURN_NOT_OK(need(3));
    op.kind = FuzzOp::Kind::kDelete;
    OXML_ASSIGN_OR_RETURN(op.path, PathFromString(tok[2]));
  } else if (kind == "move") {
    OXML_RETURN_NOT_OK(need(5));
    op.kind = FuzzOp::Kind::kMove;
    OXML_ASSIGN_OR_RETURN(op.path, PathFromString(tok[2]));
    OXML_ASSIGN_OR_RETURN(op.pos, PosFromString(tok[3]));
    OXML_ASSIGN_OR_RETURN(op.ref_path, PathFromString(tok[4]));
  } else if (kind == "settext") {
    OXML_RETURN_NOT_OK(need(4));
    op.kind = FuzzOp::Kind::kSetText;
    OXML_ASSIGN_OR_RETURN(op.path, PathFromString(tok[2]));
    op.text = tok[3];
  } else if (kind == "setattr") {
    OXML_RETURN_NOT_OK(need(5));
    op.kind = FuzzOp::Kind::kSetAttr;
    OXML_ASSIGN_OR_RETURN(op.path, PathFromString(tok[2]));
    op.attr_name = tok[3];
    op.text = tok[4];
  } else if (kind == "crashrecover") {
    OXML_RETURN_NOT_OK(need(2));
    op.kind = FuzzOp::Kind::kCrashRecover;
  } else if (kind == "bulkreload") {
    OXML_RETURN_NOT_OK(need(2));
    op.kind = FuzzOp::Kind::kBulkReload;
  } else if (kind == "snapshotread") {
    OXML_RETURN_NOT_OK(need(4));
    op.kind = FuzzOp::Kind::kSnapshotRead;
    OXML_ASSIGN_OR_RETURN(op.path, PathFromString(tok[2]));
    op.xpath = tok[3];
  } else if (kind == "cancel") {
    OXML_RETURN_NOT_OK(need(3));
    op.kind = FuzzOp::Kind::kCancel;
    op.xpath = tok[2];
  } else {
    return Status::ParseError("unknown op kind: " + kind);
  }
  return op;
}

}  // namespace

Result<FuzzCase> ParseCase(std::string_view text) {
  FuzzCase c;
  std::vector<std::string> lines = Split(std::string(text), '\n');
  size_t li = 0;
  auto next_line = [&]() -> std::string* {
    while (li < lines.size()) {
      std::string trimmed = Trim(lines[li]);
      if (trimmed.empty() || trimmed[0] == '#') {
        ++li;
        continue;
      }
      lines[li] = trimmed;
      return &lines[li++];
    }
    return nullptr;
  };

  std::string* line = next_line();
  if (line == nullptr || *line != "oxml-fuzz-repro v1") {
    return Status::ParseError("missing oxml-fuzz-repro v1 header");
  }
  bool saw_end = false;
  int toggle_count = 0;
  while ((line = next_line()) != nullptr) {
    OXML_ASSIGN_OR_RETURN(std::vector<std::string> tok, Tokenize(*line));
    if (tok.empty()) continue;
    if (tok[0] == "end") {
      saw_end = true;
      break;
    }
    if (tok[0] == "doc") {
      if (tok.size() != 7) return Status::ParseError("bad doc line");
      OXML_ASSIGN_OR_RETURN(int64_t seed, ParseKeyedInt(tok[1], "seed"));
      OXML_ASSIGN_OR_RETURN(int64_t nodes, ParseKeyedInt(tok[2], "nodes"));
      OXML_ASSIGN_OR_RETURN(int64_t depth, ParseKeyedInt(tok[3], "depth"));
      OXML_ASSIGN_OR_RETURN(int64_t fanout, ParseKeyedInt(tok[4], "fanout"));
      OXML_ASSIGN_OR_RETURN(int64_t vocab, ParseKeyedInt(tok[5], "vocab"));
      OXML_ASSIGN_OR_RETURN(int64_t gap, ParseKeyedInt(tok[6], "gap"));
      c.doc.seed = static_cast<uint64_t>(seed);
      c.doc.nodes = static_cast<int>(nodes);
      c.doc.depth = static_cast<int>(depth);
      c.doc.fanout = static_cast<int>(fanout);
      c.doc.vocab = static_cast<int>(vocab);
      c.doc.gap = gap;
    } else if (tok[0] == "toggles") {
      if (tok.size() != 6) return Status::ParseError("bad toggles line");
      int enc = -1;
      for (int e = 0; e < 3; ++e) {
        if (tok[1] == OrderEncodingToString(kEncodings[e])) enc = e;
      }
      if (enc < 0) return Status::ParseError("bad encoding: " + tok[1]);
      OXML_ASSIGN_OR_RETURN(int64_t sj, ParseKeyedInt(tok[2], "sj"));
      OXML_ASSIGN_OR_RETURN(int64_t mj, ParseKeyedInt(tok[3], "mj"));
      OXML_ASSIGN_OR_RETURN(int64_t se, ParseKeyedInt(tok[4], "se"));
      OXML_ASSIGN_OR_RETURN(int64_t pc, ParseKeyedInt(tok[5], "pc"));
      c.toggles[enc] = {sj != 0, mj != 0, se != 0, pc != 0};
      ++toggle_count;
    } else if (tok[0] == "durable") {
      if (tok.size() != 1) return Status::ParseError("bad durable line");
      c.durable = true;
    } else if (tok[0] == "threads") {
      if (tok.size() != 2) return Status::ParseError("bad threads line");
      c.query_threads =
          static_cast<size_t>(std::stoull(tok[1]));
      if (c.query_threads == 0) c.query_threads = 1;
    } else if (tok[0] == "load_threads") {
      if (tok.size() != 2) {
        return Status::ParseError("bad load_threads line");
      }
      c.load_threads = static_cast<size_t>(std::stoull(tok[1]));
    } else if (tok[0] == "timeout_ms") {
      if (tok.size() != 2) {
        return Status::ParseError("bad timeout_ms line");
      }
      c.timeout_ms = static_cast<uint64_t>(std::stoull(tok[1]));
    } else if (tok[0] == "sessions") {
      if (tok.size() != 2) {
        return Status::ParseError("bad sessions line");
      }
      c.sessions = static_cast<size_t>(std::stoull(tok[1]));
    } else if (tok[0] == "op") {
      if (tok.size() < 2) return Status::ParseError("bad op line");
      OXML_ASSIGN_OR_RETURN(FuzzOp op, ParseOp(tok));
      c.ops.push_back(std::move(op));
    } else {
      return Status::ParseError("unknown directive: " + tok[0]);
    }
  }
  if (!saw_end) return Status::ParseError("missing end line");
  if (toggle_count != 3) {
    return Status::ParseError("expected 3 toggles lines, found " +
                              std::to_string(toggle_count));
  }
  return c;
}

Result<FuzzCase> LoadCaseFile(const std::string& file_path) {
  std::ifstream in(file_path);
  if (!in.is_open()) {
    return Status::IOError("cannot open repro file: " + file_path);
  }
  std::stringstream ss;
  ss << in.rdbuf();
  return ParseCase(ss.str());
}

}  // namespace fuzz
}  // namespace oxml
