#ifndef OXML_TESTS_FUZZ_FUZZ_HARNESS_H_
#define OXML_TESTS_FUZZ_FUZZ_HARNESS_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/core/order_encoding.h"
#include "src/relational/database.h"

namespace oxml {
namespace fuzz {

/// The randomized DatabaseOptions matrix: every order-aware fast path that
/// PR 1/2 made toggleable, plus the plan cache. Any divergence between two
/// toggle vectors (or between a store and the DOM oracle) is a bug.
struct DbToggles {
  bool structural_join = true;
  bool merge_join = true;
  bool sort_elision = true;
  bool plan_cache = true;

  DatabaseOptions ToDatabaseOptions() const;
  std::string ToString() const;  // "sj=1 mj=0 se=1 pc=1"
};

/// Document-shape knobs (fed to GenerateXml) plus the store numbering gap.
struct DocParams {
  uint64_t seed = 1;
  int nodes = 120;
  int depth = 5;
  int fanout = 4;
  int vocab = 6;
  int64_t gap = 8;
};

/// One operation of a fuzz workload. Structural targets are child-index
/// paths from the root element (over non-attribute children), resolved
/// identically by the oracle (DomOracle::ResolvePath) and by the stores
/// (OrderedXmlStore::NodeAtPath).
struct FuzzOp {
  enum class Kind : uint8_t {
    kQuery,    // evaluate `xpath` on every store, compare with the oracle
    kInsert,   // insert `payload` at `pos` relative to node at `path`
    kDelete,   // delete the subtree rooted at `path`
    kMove,     // move subtree at `path` to `pos` relative to `ref_path`
    kSetText,  // replace the value of the text node at `path`
    kSetAttr,  // update attribute `attr_name` of the element at `path`
    kCrashRecover,  // durable cases only: kill every store's database
                    // mid-run, reopen it, replay the WAL and re-verify the
                    // full document against the oracle
    kBulkReload,  // serialize the oracle's current document and reload it
                  // into a fresh database through the parallel bulk-load
                  // pipeline (partition → threaded shred → k-way merge →
                  // bulk-built indexes); the reloaded store must pass
                  // Validate() and reconstruct byte-equal to the oracle,
                  // then replaces the running store for subsequent ops
    kSnapshotRead,  // MVCC check: open a transaction, delete the subtree
                    // at `path` WITHOUT committing, then evaluate `xpath`
                    // from a second thread. The reader must complete while
                    // the transaction is open and must see exactly the
                    // committed (= oracle) result; the transaction then
                    // rolls back, leaving the document unchanged
    kCancel,  // governance check: evaluate `xpath` while a second thread
              // sweeps Database::Cancel over the statement-id window the
              // evaluation occupies. Whatever the interleaving, the
              // outcome must be either the complete oracle-correct result
              // or kCancelled; Validate() must pass and the next
              // statement must succeed either way
  };

  Kind kind = Kind::kQuery;
  std::string xpath;                            // kQuery
  std::vector<size_t> path;                     // mutation target
  std::vector<size_t> ref_path;                 // kMove destination
  InsertPosition pos = InsertPosition::kAfter;  // kInsert / kMove
  std::string payload_xml;   // kInsert: element subtree, serialized
  bool text_payload = false; // kInsert: payload is a bare text node
  std::string text;          // text payload / kSetText / kSetAttr value
  std::string attr_name;     // kSetAttr

  std::string ToString() const;  // one repro-file line, "op ..."
};

/// A fully self-contained fuzz case: document seed + per-encoding toggle
/// vector + operation list. Reproduces bit-for-bit from its serialization.
struct FuzzCase {
  DocParams doc;
  DbToggles toggles[3];  // indexed by static_cast<int>(OrderEncoding)
  /// Durable mode: every store runs on a file-backed, WAL-enabled database
  /// in a temp directory instead of memory-resident, and the op stream may
  /// contain kCrashRecover steps — each one kills and recovers all three
  /// databases, checking that every committed mutation survived.
  bool durable = false;
  /// Concurrent-reader mode (the fuzzer's --threads flag): runs of
  /// consecutive kQuery ops are verified by this many client threads at
  /// once instead of one after another. Mutations always stay serial, so
  /// every query sees the same document state as a serial replay; >1
  /// checks that concurrent readers under the database's shared statement
  /// latch still match the DOM oracle exactly.
  size_t query_threads = 1;
  /// When > 0, every database runs with enable_parallel_load and this many
  /// load workers, so the initial document load and every kBulkReload go
  /// through the parallel shred/merge/bulk-build pipeline instead of the
  /// serial per-row path. Serialized as the `load_threads N` directive.
  size_t load_threads = 0;
  /// When > 0, every database runs with this default statement deadline
  /// (DatabaseOptions::default_statement_timeout_ms), exercising the
  /// deadline-check machinery on every statement. A statement that
  /// actually trips the deadline is tolerated, never a divergence: queries
  /// are skipped, and a timed-out mutation (which the store rolls back
  /// while the oracle applied it) ends the case early after a consistency
  /// check. Serialized as the `timeout_ms N` repro directive — replays of
  /// deadline-related failures set it small on purpose.
  uint64_t timeout_ms = 0;
  /// When > 0, every query batch is additionally verified through this
  /// many OXWP protocol clients against a loopback oxml_server per store
  /// (the XPath frame's signatures vs the DOM oracle, which stays
  /// unchanged). Servers are stopped across kCrashRecover and restarted on
  /// the reopened databases, and re-pointed at the fresh store after
  /// kBulkReload. Serialized as the `sessions N` repro directive.
  size_t sessions = 0;
  std::vector<FuzzOp> ops;
  size_t skipped_ops = 0;  // filled by RunCase: ops inapplicable on replay
};

/// First divergence / invariant violation found while running a case.
struct FuzzFailure {
  size_t op_index = 0;
  std::string encoding;  // "Global" / "Local" / "Dewey"
  std::string message;

  std::string Describe() const;
};

/// Deterministically generates a random case: document shape, one toggle
/// vector per encoding, and `num_ops` operations (~half queries, half
/// structural/value updates) that are valid against the evolving document.
FuzzCase GenerateCase(uint64_t seed, size_t num_ops);

/// Replays `c` against the DOM oracle and all three stores. After every
/// mutation each store must (a) pass Validate() — the per-encoding
/// structural invariants — and (b) reconstruct to a document byte-equal to
/// the oracle's. Every query must return the oracle's result sequence in
/// document order, in driver mode and (where translatable) whole-path SQL
/// mode. Returns the first failure, or nullopt for a clean run.
std::optional<FuzzFailure> RunCase(FuzzCase* c);

/// Greedy delta-debugging shrink: drops operation chunks while the case
/// still fails, halving the chunk size down to single ops.
FuzzCase ShrinkCase(const FuzzCase& c);

/// Repro-file (de)serialization. The format is line-oriented text; see
/// docs/INTERNALS.md §7.
std::string SerializeCase(const FuzzCase& c);
Result<FuzzCase> ParseCase(std::string_view text);
Result<FuzzCase> LoadCaseFile(const std::string& file_path);

}  // namespace fuzz
}  // namespace oxml

#endif  // OXML_TESTS_FUZZ_FUZZ_HARNESS_H_
