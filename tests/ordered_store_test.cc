// Parameterized conformance suite: every test runs against all three order
// encodings (Global, Local, Dewey) and checks the identical observable
// behaviour — the ordered XML data model must be preserved by each scheme.

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "src/core/ordered_store.h"
#include "src/xml/xml_generator.h"
#include "src/xml/xml_parser.h"
#include "src/xml/xml_writer.h"

namespace oxml {
namespace {

constexpr const char* kDoc = R"(
<doc>
  <head><title>t0</title></head>
  <body>
    <section id="s1"><title>alpha</title><para>p1</para><para>p2</para></section>
    <section id="s2"><title>beta</title><para>p3</para></section>
    <section id="s3"><title>gamma</title><para>p4</para><para>p5</para><para>p6</para></section>
  </body>
</doc>)";

class StoreTest : public ::testing::TestWithParam<OrderEncoding> {
 protected:
  void SetUp() override {
    auto dbr = Database::Open();
    ASSERT_TRUE(dbr.ok());
    db_ = std::move(dbr).value();
    StoreOptions opts;
    opts.gap = 8;
    auto sr = OrderedXmlStore::Create(db_.get(), GetParam(), opts);
    ASSERT_TRUE(sr.ok()) << sr.status();
    store_ = std::move(sr).value();

    auto docr = ParseXml(kDoc);
    ASSERT_TRUE(docr.ok()) << docr.status();
    doc_ = std::move(docr).value();
    ASSERT_TRUE(store_->LoadDocument(*doc_).ok());
  }

  /// Asserts the store's reconstruction equals the in-memory document.
  void ExpectRoundTrip(const XmlDocument& expected) {
    auto rebuilt = store_->ReconstructDocument();
    ASSERT_TRUE(rebuilt.ok()) << rebuilt.status();
    EXPECT_TRUE((*rebuilt)->StructurallyEqual(expected))
        << "expected:\n"
        << WriteXml(expected, {.indent = 2}) << "\ngot:\n"
        << WriteXml(**rebuilt, {.indent = 2});
  }

  std::vector<std::string> Tags(const std::vector<StoredNode>& nodes) {
    std::vector<std::string> out;
    for (const auto& n : nodes) out.push_back(n.tag);
    return out;
  }

  std::unique_ptr<Database> db_;
  std::unique_ptr<OrderedXmlStore> store_;
  std::unique_ptr<XmlDocument> doc_;
};

TEST_P(StoreTest, NodeCountMatchesSubtreeSize) {
  auto count = store_->NodeCount();
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(static_cast<size_t>(*count), doc_->TotalNodes() - 1);  // -doc node
}

TEST_P(StoreTest, RoundTripReconstruction) { ExpectRoundTrip(*doc_); }

TEST_P(StoreTest, RootIsDocElement) {
  auto root = store_->Root();
  ASSERT_TRUE(root.ok()) << root.status();
  EXPECT_EQ(root->tag, "doc");
  EXPECT_EQ(root->depth, 1);
}

TEST_P(StoreTest, ChildrenInDocumentOrder) {
  auto root = store_->Root();
  ASSERT_TRUE(root.ok());
  auto kids = store_->Children(*root, NodeTest::AnyElement());
  ASSERT_TRUE(kids.ok());
  EXPECT_EQ(Tags(*kids), (std::vector<std::string>{"head", "body"}));

  auto body = (*kids)[1];
  auto sections = store_->Children(body, NodeTest::Tag("section"));
  ASSERT_TRUE(sections.ok());
  EXPECT_EQ(sections->size(), 3u);
}

TEST_P(StoreTest, DescendantsInDocumentOrder) {
  auto root = store_->Root();
  ASSERT_TRUE(root.ok());
  auto paras = store_->Descendants(*root, NodeTest::Tag("para"));
  ASSERT_TRUE(paras.ok()) << paras.status();
  ASSERT_EQ(paras->size(), 6u);
  for (size_t i = 0; i < paras->size(); ++i) {
    auto text = store_->StringValue((*paras)[i]);
    ASSERT_TRUE(text.ok());
    EXPECT_EQ(*text, "p" + std::to_string(i + 1));
  }
}

TEST_P(StoreTest, DescendantsFromInnerNode) {
  auto root = store_->Root();
  ASSERT_TRUE(root.ok());
  auto body = store_->ChildAt(*root, NodeTest::Tag("body"), 0);
  ASSERT_TRUE(body.ok());
  auto s3 = store_->ChildAt(*body, NodeTest::Tag("section"), 2);
  ASSERT_TRUE(s3.ok());
  auto paras = store_->Descendants(*s3, NodeTest::Tag("para"));
  ASSERT_TRUE(paras.ok());
  EXPECT_EQ(paras->size(), 3u);
  auto all = store_->Descendants(*s3, NodeTest::AnyNode());
  ASSERT_TRUE(all.ok());
  // title + text + 3 paras + 3 texts = 8 nodes.
  EXPECT_EQ(all->size(), 8u);
}

TEST_P(StoreTest, FollowingAndPrecedingSiblings) {
  auto root = store_->Root();
  ASSERT_TRUE(root.ok());
  auto body = store_->ChildAt(*root, NodeTest::Tag("body"), 0);
  ASSERT_TRUE(body.ok());
  auto s1 = store_->ChildAt(*body, NodeTest::Tag("section"), 0);
  ASSERT_TRUE(s1.ok());

  auto following = store_->FollowingSiblings(*s1, NodeTest::Tag("section"));
  ASSERT_TRUE(following.ok());
  EXPECT_EQ(following->size(), 2u);

  auto s3 = store_->ChildAt(*body, NodeTest::Tag("section"), 2);
  ASSERT_TRUE(s3.ok());
  auto preceding = store_->PrecedingSiblings(*s3, NodeTest::Tag("section"));
  ASSERT_TRUE(preceding.ok());
  EXPECT_EQ(preceding->size(), 2u);
  EXPECT_TRUE(following->back().tag == "section");
}

TEST_P(StoreTest, AttributesAreQueryable) {
  auto root = store_->Root();
  ASSERT_TRUE(root.ok());
  auto body = store_->ChildAt(*root, NodeTest::Tag("body"), 0);
  ASSERT_TRUE(body.ok());
  auto s2 = store_->ChildAt(*body, NodeTest::Tag("section"), 1);
  ASSERT_TRUE(s2.ok());
  auto attrs = store_->Attributes(*s2, "id");
  ASSERT_TRUE(attrs.ok());
  ASSERT_EQ(attrs->size(), 1u);
  EXPECT_EQ((*attrs)[0].value, "s2");
}

TEST_P(StoreTest, ParentNavigation) {
  auto root = store_->Root();
  ASSERT_TRUE(root.ok());
  auto body = store_->ChildAt(*root, NodeTest::Tag("body"), 0);
  ASSERT_TRUE(body.ok());
  auto parent = store_->Parent(*body);
  ASSERT_TRUE(parent.ok());
  EXPECT_EQ(parent->tag, "doc");
  EXPECT_FALSE(store_->Parent(*root).ok());
}

TEST_P(StoreTest, SortDocumentOrderRestoresOrder) {
  auto root = store_->Root();
  ASSERT_TRUE(root.ok());
  auto paras = store_->Descendants(*root, NodeTest::Tag("para"));
  ASSERT_TRUE(paras.ok());
  std::vector<StoredNode> shuffled = *paras;
  std::reverse(shuffled.begin(), shuffled.end());
  ASSERT_TRUE(store_->SortDocumentOrder(&shuffled).ok());
  for (size_t i = 0; i < shuffled.size(); ++i) {
    auto text = store_->StringValue(shuffled[i]);
    ASSERT_TRUE(text.ok());
    EXPECT_EQ(*text, "p" + std::to_string(i + 1));
  }
}

TEST_P(StoreTest, StringValueConcatenatesSubtreeText) {
  auto root = store_->Root();
  ASSERT_TRUE(root.ok());
  auto body = store_->ChildAt(*root, NodeTest::Tag("body"), 0);
  ASSERT_TRUE(body.ok());
  auto s1 = store_->ChildAt(*body, NodeTest::Tag("section"), 0);
  ASSERT_TRUE(s1.ok());
  auto sv = store_->StringValue(*s1);
  ASSERT_TRUE(sv.ok());
  EXPECT_EQ(*sv, "alphap1p2");
}

TEST_P(StoreTest, ReconstructSubtree) {
  auto root = store_->Root();
  ASSERT_TRUE(root.ok());
  auto body = store_->ChildAt(*root, NodeTest::Tag("body"), 0);
  ASSERT_TRUE(body.ok());
  auto s2 = store_->ChildAt(*body, NodeTest::Tag("section"), 1);
  ASSERT_TRUE(s2.ok());
  auto subtree = store_->ReconstructSubtree(*s2);
  ASSERT_TRUE(subtree.ok()) << subtree.status();
  XmlNode* expected =
      doc_->root_element()->FindElement("body")->child(1);
  EXPECT_TRUE((*subtree)->StructurallyEqual(*expected))
      << WriteXml(**subtree);
}

// ------------------------------------------------------------ update tests

TEST_P(StoreTest, InsertBeforeKeepsOrder) {
  auto root = store_->Root();
  ASSERT_TRUE(root.ok());
  auto body = store_->ChildAt(*root, NodeTest::Tag("body"), 0);
  ASSERT_TRUE(body.ok());
  auto s2 = store_->ChildAt(*body, NodeTest::Tag("section"), 1);
  ASSERT_TRUE(s2.ok());

  auto sub = ParseXml("<section id=\"new\"><para>fresh</para></section>");
  ASSERT_TRUE(sub.ok());
  auto stats = store_->InsertSubtree(*s2, InsertPosition::kBefore,
                                     *(*sub)->root_element());
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(stats->nodes_inserted, 4);  // section + id attr + para + text

  // Mirror on the DOM and compare.
  XmlNode* dom_body = doc_->root_element()->FindElement("body");
  dom_body->InsertChild(1, (*sub)->root()->RemoveChild(0));
  ExpectRoundTrip(*doc_);
}

TEST_P(StoreTest, InsertAfterKeepsOrder) {
  auto root = store_->Root();
  ASSERT_TRUE(root.ok());
  auto body = store_->ChildAt(*root, NodeTest::Tag("body"), 0);
  ASSERT_TRUE(body.ok());
  auto s3 = store_->ChildAt(*body, NodeTest::Tag("section"), 2);
  ASSERT_TRUE(s3.ok());

  auto sub = ParseXml("<appendix>end</appendix>");
  ASSERT_TRUE(sub.ok());
  auto stats = store_->InsertSubtree(*s3, InsertPosition::kAfter,
                                     *(*sub)->root_element());
  ASSERT_TRUE(stats.ok()) << stats.status();

  XmlNode* dom_body = doc_->root_element()->FindElement("body");
  dom_body->AppendChild((*sub)->root()->RemoveChild(0));
  ExpectRoundTrip(*doc_);
}

TEST_P(StoreTest, InsertFirstAndLastChild) {
  auto root = store_->Root();
  ASSERT_TRUE(root.ok());
  auto body = store_->ChildAt(*root, NodeTest::Tag("body"), 0);
  ASSERT_TRUE(body.ok());

  auto first = ParseXml("<preface>start</preface>");
  auto last = ParseXml("<closing>fin</closing>");
  ASSERT_TRUE(first.ok() && last.ok());
  ASSERT_TRUE(store_
                  ->InsertSubtree(*body, InsertPosition::kFirstChild,
                                  *(*first)->root_element())
                  .ok());
  ASSERT_TRUE(store_
                  ->InsertSubtree(*body, InsertPosition::kLastChild,
                                  *(*last)->root_element())
                  .ok());

  XmlNode* dom_body = doc_->root_element()->FindElement("body");
  dom_body->InsertChild(0, (*first)->root()->RemoveChild(0));
  dom_body->AppendChild((*last)->root()->RemoveChild(0));
  ExpectRoundTrip(*doc_);
}

TEST_P(StoreTest, RepeatedInsertsAtSamePositionForceRenumbering) {
  // Hammer one insertion point until the sparse numbering must renumber.
  auto root = store_->Root();
  ASSERT_TRUE(root.ok());
  auto body = store_->ChildAt(*root, NodeTest::Tag("body"), 0);
  ASSERT_TRUE(body.ok());

  XmlNode* dom_body = doc_->root_element()->FindElement("body");
  bool renumbered = false;
  for (int i = 0; i < 40; ++i) {
    auto target = store_->ChildAt(*body, NodeTest::AnyNode(), 1);
    ASSERT_TRUE(target.ok());
    auto sub = ParseXml("<note>n" + std::to_string(i) + "</note>");
    ASSERT_TRUE(sub.ok());
    auto stats = store_->InsertSubtree(*target, InsertPosition::kBefore,
                                       *(*sub)->root_element());
    ASSERT_TRUE(stats.ok()) << i << ": " << stats.status();
    renumbered = renumbered || stats->renumbering_triggered;
    dom_body->InsertChild(1, (*sub)->root()->RemoveChild(0));
  }
  EXPECT_TRUE(renumbered) << "40 dense inserts should exhaust gap=8";
  ExpectRoundTrip(*doc_);
}

TEST_P(StoreTest, DeleteSubtree) {
  auto root = store_->Root();
  ASSERT_TRUE(root.ok());
  auto body = store_->ChildAt(*root, NodeTest::Tag("body"), 0);
  ASSERT_TRUE(body.ok());
  auto s2 = store_->ChildAt(*body, NodeTest::Tag("section"), 1);
  ASSERT_TRUE(s2.ok());

  auto stats = store_->DeleteSubtree(*s2);
  ASSERT_TRUE(stats.ok()) << stats.status();
  // section + id attr + title + title text + para + para text = 6 rows
  EXPECT_EQ(stats->nodes_deleted, 6);

  XmlNode* dom_body = doc_->root_element()->FindElement("body");
  dom_body->RemoveChild(1);
  ExpectRoundTrip(*doc_);
}

TEST_P(StoreTest, DeleteThenInsertIntoFreedRegion) {
  auto root = store_->Root();
  ASSERT_TRUE(root.ok());
  auto body = store_->ChildAt(*root, NodeTest::Tag("body"), 0);
  ASSERT_TRUE(body.ok());
  auto s2 = store_->ChildAt(*body, NodeTest::Tag("section"), 1);
  ASSERT_TRUE(s2.ok());
  ASSERT_TRUE(store_->DeleteSubtree(*s2).ok());

  auto s3 = store_->ChildAt(*body, NodeTest::Tag("section"), 1);
  ASSERT_TRUE(s3.ok());
  auto sub = ParseXml("<section id=\"sx\"><para>px</para></section>");
  ASSERT_TRUE(sub.ok());
  ASSERT_TRUE(store_
                  ->InsertSubtree(*s3, InsertPosition::kBefore,
                                  *(*sub)->root_element())
                  .ok());

  XmlNode* dom_body = doc_->root_element()->FindElement("body");
  dom_body->RemoveChild(1);
  dom_body->InsertChild(1, (*sub)->root()->RemoveChild(0));
  ExpectRoundTrip(*doc_);
}

TEST_P(StoreTest, InsertIntoEmptyElement) {
  auto root = store_->Root();
  ASSERT_TRUE(root.ok());
  auto head = store_->ChildAt(*root, NodeTest::Tag("head"), 0);
  ASSERT_TRUE(head.ok());
  auto title = store_->ChildAt(*head, NodeTest::Tag("title"), 0);
  ASSERT_TRUE(title.ok());
  // title has one text child; insert into head after title.
  auto sub = ParseXml("<meta name=\"k\">v</meta>");
  ASSERT_TRUE(sub.ok());
  ASSERT_TRUE(store_
                  ->InsertSubtree(*title, InsertPosition::kAfter,
                                  *(*sub)->root_element())
                  .ok());
  XmlNode* dom_head = doc_->root_element()->FindElement("head");
  dom_head->AppendChild((*sub)->root()->RemoveChild(0));
  ExpectRoundTrip(*doc_);
}

TEST_P(StoreTest, LargeRandomDocumentRoundTrip) {
  auto dbr = Database::Open();
  ASSERT_TRUE(dbr.ok());
  std::unique_ptr<Database> db = std::move(dbr).value();
  StoreOptions opts;
  opts.gap = 16;
  opts.table_name = "big";
  auto sr = OrderedXmlStore::Create(db.get(), GetParam(), opts);
  ASSERT_TRUE(sr.ok());
  auto store = std::move(sr).value();

  XmlGeneratorOptions gen;
  gen.target_nodes = 2000;
  gen.seed = 7;
  auto doc = GenerateXml(gen);
  ASSERT_TRUE(store->LoadDocument(*doc).ok());
  auto rebuilt = store->ReconstructDocument();
  ASSERT_TRUE(rebuilt.ok()) << rebuilt.status();
  EXPECT_TRUE((*rebuilt)->StructurallyEqual(*doc));
}

INSTANTIATE_TEST_SUITE_P(AllEncodings, StoreTest,
                         ::testing::Values(OrderEncoding::kGlobal,
                                           OrderEncoding::kLocal,
                                           OrderEncoding::kDewey),
                         [](const auto& info) {
                           return OrderEncodingToString(info.param);
                         });

}  // namespace
}  // namespace oxml
