// B+tree tests: unit cases plus a randomized differential test against
// std::multimap (the reference model).

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "src/common/random.h"
#include "src/relational/btree.h"

namespace oxml {
namespace {

Rid MakeRid(uint32_t page, uint16_t slot = 0) { return Rid{page, slot}; }

TEST(BPlusTreeTest, InsertAndLookup) {
  BPlusTree tree;
  tree.Insert("banana", MakeRid(2));
  tree.Insert("apple", MakeRid(1));
  tree.Insert("cherry", MakeRid(3));
  EXPECT_EQ(tree.size(), 3u);
  EXPECT_TRUE(tree.Contains("apple"));
  EXPECT_TRUE(tree.Contains("banana"));
  EXPECT_FALSE(tree.Contains("durian"));

  auto it = tree.LowerBound("apple");
  ASSERT_TRUE(it.valid());
  EXPECT_EQ(it.key(), "apple");
  EXPECT_EQ(it.rid().page_id, 1u);
}

TEST(BPlusTreeTest, IterationIsSorted) {
  BPlusTree tree;
  for (int i = 999; i >= 0; --i) {
    char buf[8];
    std::snprintf(buf, sizeof(buf), "%04d", i);
    tree.Insert(buf, MakeRid(static_cast<uint32_t>(i)));
  }
  EXPECT_EQ(tree.size(), 1000u);
  EXPECT_GT(tree.height(), 1u);
  int expected = 0;
  for (auto it = tree.Begin(); it.valid(); it.Next()) {
    EXPECT_EQ(it.rid().page_id, static_cast<uint32_t>(expected));
    ++expected;
  }
  EXPECT_EQ(expected, 1000);
}

TEST(BPlusTreeTest, DuplicateKeysDistinctRids) {
  BPlusTree tree;
  tree.Insert("k", MakeRid(1));
  tree.Insert("k", MakeRid(2));
  tree.Insert("k", MakeRid(3));
  tree.Insert("k", MakeRid(2));  // exact duplicate ignored
  EXPECT_EQ(tree.size(), 3u);

  int count = 0;
  for (auto it = tree.LowerBound("k"); it.valid() && it.key() == "k";
       it.Next()) {
    ++count;
  }
  EXPECT_EQ(count, 3);
}

TEST(BPlusTreeTest, EraseExactEntry) {
  BPlusTree tree;
  tree.Insert("k", MakeRid(1));
  tree.Insert("k", MakeRid(2));
  EXPECT_TRUE(tree.Erase("k", MakeRid(1)));
  EXPECT_FALSE(tree.Erase("k", MakeRid(1)));
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_TRUE(tree.Contains("k"));
  EXPECT_TRUE(tree.Erase("k", MakeRid(2)));
  EXPECT_FALSE(tree.Contains("k"));
}

TEST(BPlusTreeTest, LowerAndUpperBound) {
  BPlusTree tree;
  tree.Insert("b", MakeRid(1));
  tree.Insert("d", MakeRid(2));
  tree.Insert("d", MakeRid(3));
  tree.Insert("f", MakeRid(4));

  auto it = tree.LowerBound("c");
  ASSERT_TRUE(it.valid());
  EXPECT_EQ(it.key(), "d");

  it = tree.UpperBound("d");
  ASSERT_TRUE(it.valid());
  EXPECT_EQ(it.key(), "f");

  it = tree.LowerBound("z");
  EXPECT_FALSE(it.valid());

  it = tree.UpperBound("f");
  EXPECT_FALSE(it.valid());
}

TEST(BPlusTreeTest, EmptyTree) {
  BPlusTree tree;
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_FALSE(tree.Begin().valid());
  EXPECT_FALSE(tree.LowerBound("x").valid());
  EXPECT_FALSE(tree.Erase("x", MakeRid(1)));
}

TEST(BPlusTreeTest, BinaryKeysWithEmbeddedNuls) {
  BPlusTree tree;
  std::string k1("a\0b", 3);
  std::string k2("a\0c", 3);
  std::string k3("a", 1);
  tree.Insert(k1, MakeRid(1));
  tree.Insert(k2, MakeRid(2));
  tree.Insert(k3, MakeRid(3));
  auto it = tree.Begin();
  ASSERT_TRUE(it.valid());
  EXPECT_EQ(it.key(), k3);  // "a" < "a\0b" < "a\0c"
  it.Next();
  EXPECT_EQ(it.key(), k1);
  it.Next();
  EXPECT_EQ(it.key(), k2);
}

/// Differential test: random interleaved inserts/erases/range-scans checked
/// against std::multimap.
TEST(BPlusTreeTest, RandomizedDifferentialAgainstMultimap) {
  BPlusTree tree;
  std::multimap<std::pair<std::string, Rid>, bool> model;
  Random rng(4242);

  auto random_key = [&rng]() {
    return rng.Word(1, 6);
  };

  for (int op = 0; op < 20000; ++op) {
    double dice = rng.NextDouble();
    std::string key = random_key();
    Rid rid = MakeRid(static_cast<uint32_t>(rng.Uniform(0, 50)),
                      static_cast<uint16_t>(rng.Uniform(0, 3)));
    if (dice < 0.6) {
      tree.Insert(key, rid);
      if (model.find({key, rid}) == model.end()) {
        model.emplace(std::make_pair(key, rid), true);
      }
    } else if (dice < 0.85) {
      bool tree_erased = tree.Erase(key, rid);
      auto it = model.find({key, rid});
      bool model_erased = it != model.end();
      if (model_erased) model.erase(it);
      ASSERT_EQ(tree_erased, model_erased) << "op " << op;
    } else {
      // Range scan from a random key: sequences must match.
      auto tree_it = tree.LowerBound(key);
      auto model_it = model.lower_bound({key, Rid{0, 0}});
      int steps = 0;
      while (steps < 20 && tree_it.valid() && model_it != model.end()) {
        ASSERT_EQ(tree_it.key(), model_it->first.first) << "op " << op;
        ASSERT_EQ(tree_it.rid(), model_it->first.second) << "op " << op;
        tree_it.Next();
        ++model_it;
        ++steps;
      }
      if (steps < 20) {
        ASSERT_EQ(tree_it.valid(), model_it != model.end()) << "op " << op;
      }
    }
    ASSERT_EQ(tree.size(), model.size()) << "op " << op;
  }

  // Final full iteration must equal the model.
  auto it = tree.Begin();
  for (const auto& [entry, _] : model) {
    ASSERT_TRUE(it.valid());
    EXPECT_EQ(it.key(), entry.first);
    EXPECT_EQ(it.rid(), entry.second);
    it.Next();
  }
  EXPECT_FALSE(it.valid());
}

TEST(BPlusTreeTest, KeyBytesAccounting) {
  BPlusTree tree;
  tree.Insert("abc", MakeRid(1));
  tree.Insert("de", MakeRid(2));
  EXPECT_EQ(tree.key_bytes(), 5u);
  tree.Erase("abc", MakeRid(1));
  EXPECT_EQ(tree.key_bytes(), 2u);
}

}  // namespace
}  // namespace oxml
