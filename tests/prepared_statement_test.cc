// Tests for prepared statements, the LRU plan cache, batched execution,
// and the differential guarantee that the prepared-statement hot paths in
// the ordered-XML stores return exactly what ad-hoc (uncached) execution
// returns.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/core/ordered_store.h"
#include "src/core/xpath_eval.h"
#include "src/relational/database.h"
#include "src/xml/xml_generator.h"
#include "src/xml/xml_writer.h"

namespace oxml {
namespace {

class PreparedStatementTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto db = Database::Open();
    ASSERT_TRUE(db.ok()) << db.status();
    db_ = std::move(db).value();
    Must("CREATE TABLE t (id INT, name TEXT, score DOUBLE, key BLOB)");
    Must("CREATE INDEX t_id ON t (id)");
    Must("INSERT INTO t VALUES (1, 'ada', 9.5, x'01')");
    Must("INSERT INTO t VALUES (2, 'bob', 7.25, x'0102')");
    Must("INSERT INTO t VALUES (3, 'carol', 8.0, x'0103')");
  }

  void Must(const std::string& sql) {
    auto r = db_->Execute(sql);
    ASSERT_TRUE(r.ok()) << sql << " -> " << r.status();
  }

  std::unique_ptr<Database> db_;
};

TEST_F(PreparedStatementTest, RebindIntParamAcrossExecutions) {
  auto ps = db_->Prepare("SELECT name FROM t WHERE id = ?");
  ASSERT_TRUE(ps.ok()) << ps.status();
  EXPECT_EQ(ps->param_count(), 1u);

  const char* expected[] = {"ada", "bob", "carol"};
  for (int64_t id = 1; id <= 3; ++id) {
    ASSERT_TRUE(ps->Bind(0, Value::Int(id)).ok());
    auto rs = ps->Query();
    ASSERT_TRUE(rs.ok()) << rs.status();
    ASSERT_EQ(rs->rows.size(), 1u) << "id = " << id;
    EXPECT_EQ(rs->rows[0][0].AsString(), expected[id - 1]);
  }
}

TEST_F(PreparedStatementTest, RebindTextParam) {
  auto ps = db_->Prepare("SELECT id FROM t WHERE name = ?");
  ASSERT_TRUE(ps.ok()) << ps.status();
  ASSERT_TRUE(ps->Bind(0, Value::Text("bob")).ok());
  auto rs = ps->Query();
  ASSERT_TRUE(rs.ok()) << rs.status();
  ASSERT_EQ(rs->rows.size(), 1u);
  EXPECT_EQ(rs->rows[0][0].AsInt(), 2);

  ASSERT_TRUE(ps->Bind(0, Value::Text("nobody")).ok());
  rs = ps->Query();
  ASSERT_TRUE(rs.ok()) << rs.status();
  EXPECT_TRUE(rs->rows.empty());
}

TEST_F(PreparedStatementTest, RebindBlobOrderKeyParam) {
  // Order-key bytes: exactly what the Dewey store binds on its hot path.
  auto ps = db_->Prepare("SELECT id FROM t WHERE key = ?");
  ASSERT_TRUE(ps.ok()) << ps.status();
  ASSERT_TRUE(ps->Bind(0, Value::Blob(std::string("\x01\x02", 2))).ok());
  auto rs = ps->Query();
  ASSERT_TRUE(rs.ok()) << rs.status();
  ASSERT_EQ(rs->rows.size(), 1u);
  EXPECT_EQ(rs->rows[0][0].AsInt(), 2);

  ASSERT_TRUE(ps->Bind(0, Value::Blob(std::string("\x01\x03", 2))).ok());
  rs = ps->Query();
  ASSERT_TRUE(rs.ok()) << rs.status();
  ASSERT_EQ(rs->rows.size(), 1u);
  EXPECT_EQ(rs->rows[0][0].AsInt(), 3);
}

TEST_F(PreparedStatementTest, BindErrors) {
  auto ps = db_->Prepare("SELECT id FROM t WHERE id = ? AND name = ?");
  ASSERT_TRUE(ps.ok()) << ps.status();
  EXPECT_EQ(ps->param_count(), 2u);
  EXPECT_FALSE(ps->Bind(2, Value::Int(1)).ok());       // out of range
  EXPECT_FALSE(ps->BindAll({Value::Int(1)}).ok());     // size mismatch
  EXPECT_TRUE(ps->BindAll({Value::Int(1), Value::Text("ada")}).ok());
  auto rs = ps->Query();
  ASSERT_TRUE(rs.ok()) << rs.status();
  EXPECT_EQ(rs->rows.size(), 1u);
}

TEST_F(PreparedStatementTest, AdHocRejectsParameterMarkers) {
  auto r = db_->Query("SELECT id FROM t WHERE id = ?");
  EXPECT_FALSE(r.ok());
  auto e = db_->Execute("DELETE FROM t WHERE id = ?");
  EXPECT_FALSE(e.ok());
}

TEST_F(PreparedStatementTest, PreparedDmlRebind) {
  auto ps = db_->Prepare("UPDATE t SET score = ? WHERE id = ?");
  ASSERT_TRUE(ps.ok()) << ps.status();
  ASSERT_TRUE(ps->BindAll({Value::Double(1.0), Value::Int(1)}).ok());
  auto n = ps->Execute();
  ASSERT_TRUE(n.ok()) << n.status();
  EXPECT_EQ(*n, 1);
  ASSERT_TRUE(ps->BindAll({Value::Double(2.0), Value::Int(99)}).ok());
  n = ps->Execute();
  ASSERT_TRUE(n.ok()) << n.status();
  EXPECT_EQ(*n, 0);
}

TEST_F(PreparedStatementTest, PlanCacheCountersObservable) {
  db_->stats()->Reset();
  auto ps = db_->Prepare("SELECT id FROM t WHERE id = ?");
  ASSERT_TRUE(ps.ok());
  EXPECT_EQ(db_->stats()->plan_cache_misses, 1u);
  for (int64_t i = 0; i < 5; ++i) {
    ASSERT_TRUE(ps->Bind(0, Value::Int(i)).ok());
    ASSERT_TRUE(ps->Query().ok());
  }
  // Re-preparing the same text is a hit.
  auto again = db_->Prepare("SELECT id FROM t WHERE id = ?");
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(db_->stats()->plan_cache_hits, 1u);
  EXPECT_EQ(db_->stats()->plan_cache_misses, 1u);
  EXPECT_GT(db_->stats()->PlanCacheHitRate(), 0.0);
  EXPECT_GT(db_->stats()->parse_plan_ns, 0u);
}

TEST_F(PreparedStatementTest, AdHocQueriesShareTheCache) {
  db_->stats()->Reset();
  ASSERT_TRUE(db_->Query("SELECT id FROM t WHERE id = 1").ok());
  ASSERT_TRUE(db_->Query("SELECT id FROM t WHERE id = 1").ok());
  EXPECT_EQ(db_->stats()->plan_cache_misses, 1u);
  EXPECT_EQ(db_->stats()->plan_cache_hits, 1u);
}

TEST(PlanCacheTest, EvictsLeastRecentlyUsedAtCapacity) {
  DatabaseOptions opts;
  opts.plan_cache_capacity = 2;
  auto dbr = Database::Open(opts);
  ASSERT_TRUE(dbr.ok());
  auto db = std::move(dbr).value();
  ASSERT_TRUE(db->Execute("CREATE TABLE t (id INT)").ok());
  ASSERT_TRUE(db->Execute("INSERT INTO t VALUES (1)").ok());
  db->stats()->Reset();

  ASSERT_TRUE(db->Query("SELECT id FROM t WHERE id = 1").ok());   // miss
  ASSERT_TRUE(db->Query("SELECT id FROM t WHERE id = 2").ok());   // miss
  EXPECT_EQ(db->plan_cache_size(), 2u);
  ASSERT_TRUE(db->Query("SELECT id FROM t WHERE id = 3").ok());   // miss;
  EXPECT_EQ(db->plan_cache_size(), 2u);  // evicted "id = 1"
  // "id = 1" was evicted: re-running it is a miss again.
  ASSERT_TRUE(db->Query("SELECT id FROM t WHERE id = 1").ok());
  EXPECT_EQ(db->stats()->plan_cache_misses, 4u);
  EXPECT_EQ(db->stats()->plan_cache_hits, 0u);
  // "id = 3" is still resident.
  ASSERT_TRUE(db->Query("SELECT id FROM t WHERE id = 3").ok());
  EXPECT_EQ(db->stats()->plan_cache_hits, 1u);
}

TEST(PlanCacheTest, CapacityZeroDisablesCaching) {
  DatabaseOptions opts;
  opts.plan_cache_capacity = 0;
  auto dbr = Database::Open(opts);
  ASSERT_TRUE(dbr.ok());
  auto db = std::move(dbr).value();
  ASSERT_TRUE(db->Execute("CREATE TABLE t (id INT)").ok());
  db->stats()->Reset();
  ASSERT_TRUE(db->Query("SELECT id FROM t").ok());
  ASSERT_TRUE(db->Query("SELECT id FROM t").ok());
  EXPECT_EQ(db->plan_cache_size(), 0u);
  EXPECT_EQ(db->stats()->plan_cache_hits, 0u);
  EXPECT_EQ(db->stats()->plan_cache_misses, 2u);
}

TEST_F(PreparedStatementTest, ExecuteBatchZeroOneAndManyRows) {
  auto ps = db_->Prepare("INSERT INTO t VALUES (?, ?, ?, ?)");
  ASSERT_TRUE(ps.ok()) << ps.status();

  auto n = ps->ExecuteBatch({});
  ASSERT_TRUE(n.ok()) << n.status();
  EXPECT_EQ(*n, 0);

  n = ps->ExecuteBatch({{Value::Int(10), Value::Text("ten"),
                         Value::Double(1.0), Value::Blob("\x0a")}});
  ASSERT_TRUE(n.ok()) << n.status();
  EXPECT_EQ(*n, 1);

  std::vector<Row> rows;
  for (int64_t i = 100; i < 140; ++i) {
    rows.push_back(Row{Value::Int(i), Value::Text("row" + std::to_string(i)),
                       Value::Double(0.5), Value::Null()});
  }
  n = ps->ExecuteBatch(rows);
  ASSERT_TRUE(n.ok()) << n.status();
  EXPECT_EQ(*n, 40);

  auto rs = db_->Query("SELECT COUNT(*) FROM t");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->rows[0][0].AsInt(), 3 + 1 + 40);
}

TEST_F(PreparedStatementTest, SurvivesDropAndRecreateOfTable) {
  // Regression: DDL between Prepare and Execute must not leave the handle
  // pointing at stale TableInfo/plan state — it re-prepares from its SQL.
  auto ps = db_->Prepare("SELECT name FROM t WHERE id = ?");
  ASSERT_TRUE(ps.ok()) << ps.status();
  ASSERT_TRUE(ps->Bind(0, Value::Int(1)).ok());
  {
    auto rs = ps->Query();
    ASSERT_TRUE(rs.ok());
    ASSERT_EQ(rs->rows.size(), 1u);
    EXPECT_EQ(rs->rows[0][0].AsString(), "ada");
  }

  Must("DROP TABLE t");
  Must("CREATE TABLE t (id INT, name TEXT, score DOUBLE, key BLOB)");
  Must("INSERT INTO t VALUES (1, 'zed', 0.0, x'ff')");

  // Bindings survive the transparent re-prepare.
  auto rs = ps->Query();
  ASSERT_TRUE(rs.ok()) << rs.status();
  ASSERT_EQ(rs->rows.size(), 1u);
  EXPECT_EQ(rs->rows[0][0].AsString(), "zed");
}

TEST_F(PreparedStatementTest, DroppedTableWithoutRecreateFailsCleanly) {
  auto ps = db_->Prepare("SELECT name FROM t WHERE id = ?");
  ASSERT_TRUE(ps.ok()) << ps.status();
  ASSERT_TRUE(ps->Bind(0, Value::Int(1)).ok());
  Must("DROP TABLE t");
  auto rs = ps->Query();
  EXPECT_FALSE(rs.ok());  // not a crash: re-prepare reports the missing table
}

TEST_F(PreparedStatementTest, CreateIndexInvalidatesCachedPlans) {
  auto ps = db_->Prepare("SELECT name FROM t WHERE score = ?");
  ASSERT_TRUE(ps.ok()) << ps.status();
  ASSERT_TRUE(ps->Bind(0, Value::Double(7.25)).ok());
  auto before = ps->Query();
  ASSERT_TRUE(before.ok());
  uint64_t gen = db_->catalog_generation();
  Must("CREATE INDEX t_score ON t (score)");
  EXPECT_GT(db_->catalog_generation(), gen);
  EXPECT_EQ(db_->plan_cache_size(), 0u);
  auto after = ps->Query();  // re-prepared against the new catalog
  ASSERT_TRUE(after.ok()) << after.status();
  ASSERT_EQ(after->rows.size(), before->rows.size());
  EXPECT_EQ(after->rows[0][0].AsString(), before->rows[0][0].AsString());
}

TEST_F(PreparedStatementTest, NullBindingDegradesIndexScanNotCorrectness) {
  // A NULL binding on an indexed column: the dynamic bounds become
  // unusable and the retained residual filter returns no rows (engine
  // equality never matches NULL) — no error, no stale bound.
  auto ps = db_->Prepare("SELECT name FROM t WHERE id = ?");
  ASSERT_TRUE(ps.ok()) << ps.status();
  ASSERT_TRUE(ps->Bind(0, Value::Null()).ok());
  auto rs = ps->Query();
  ASSERT_TRUE(rs.ok()) << rs.status();
  EXPECT_TRUE(rs->rows.empty());
}

// ---------------------------------------------------------------------------
// Differential: the ordered-XML query workload (QR1..QR8 from the benchmark
// suite) must return identical results through the prepared/cached path and
// through a cache-disabled database where every statement is parsed fresh.

constexpr const char* kXPaths[] = {
    "//para",                                            // QR1
    "/nitf/body/section[5]/title",                       // QR2
    "/nitf/body/section[last()]/para[last()]",           // QR3
    "//section[@id = 's10']/following-sibling::section", // QR4
    "/nitf/body//para",                                  // QR5
    "//para[@class = 'lead']",                           // QR6
    "/nitf/body/section[position() >= 50]/title",        // QR7
};

std::unique_ptr<XmlDocument> TestNewsDoc() {
  NewsGeneratorOptions opts;
  opts.sections = 60;
  opts.paragraphs_per_section = 6;
  opts.seed = 42;
  return GenerateNewsXml(opts);
}

std::string NodeFingerprint(const OrderedXmlStore& store,
                            const StoredNode& n) {
  return store.KeyCondition(n) + "|" + std::to_string(static_cast<int>(n.kind)) +
         "|" + n.tag + "|" + n.value;
}

class PreparedDifferentialTest
    : public ::testing::TestWithParam<OrderEncoding> {};

TEST_P(PreparedDifferentialTest, QueriesMatchUncachedExecution) {
  auto doc = TestNewsDoc();

  auto cached_db = Database::Open();
  ASSERT_TRUE(cached_db.ok());
  auto cached_store =
      OrderedXmlStore::Create(cached_db->get(), GetParam(), {});
  ASSERT_TRUE(cached_store.ok());
  ASSERT_TRUE((*cached_store)->LoadDocument(*doc).ok());

  DatabaseOptions nocache;
  nocache.plan_cache_capacity = 0;
  auto plain_db = Database::Open(nocache);
  ASSERT_TRUE(plain_db.ok());
  auto plain_store = OrderedXmlStore::Create(plain_db->get(), GetParam(), {});
  ASSERT_TRUE(plain_store.ok());
  ASSERT_TRUE((*plain_store)->LoadDocument(*doc).ok());

  for (const char* xpath : kXPaths) {
    // Evaluate twice on the cached side so the second run exercises plan
    // reuse with rebound parameters.
    ASSERT_TRUE(EvaluateXPath(cached_store->get(), xpath).ok()) << xpath;
    auto cached = EvaluateXPath(cached_store->get(), xpath);
    ASSERT_TRUE(cached.ok()) << xpath << " -> " << cached.status();
    auto plain = EvaluateXPath(plain_store->get(), xpath);
    ASSERT_TRUE(plain.ok()) << xpath << " -> " << plain.status();
    ASSERT_EQ(cached->size(), plain->size()) << xpath;
    for (size_t i = 0; i < cached->size(); ++i) {
      EXPECT_EQ(NodeFingerprint(**cached_store, (*cached)[i]),
                NodeFingerprint(**plain_store, (*plain)[i]))
          << xpath << " row " << i;
    }
  }
  EXPECT_GT((*cached_db)->stats()->plan_cache_hits, 0u);

  // QR8: subtree reconstruction round-trips identically.
  auto cached_sec = EvaluateXPath(cached_store->get(), "/nitf/body/section[30]");
  auto plain_sec = EvaluateXPath(plain_store->get(), "/nitf/body/section[30]");
  ASSERT_TRUE(cached_sec.ok() && cached_sec->size() == 1);
  ASSERT_TRUE(plain_sec.ok() && plain_sec->size() == 1);
  auto cached_sub = (*cached_store)->ReconstructSubtree((*cached_sec)[0]);
  auto plain_sub = (*plain_store)->ReconstructSubtree((*plain_sec)[0]);
  ASSERT_TRUE(cached_sub.ok()) << cached_sub.status();
  ASSERT_TRUE(plain_sub.ok()) << plain_sub.status();
  EXPECT_EQ(WriteXml(**cached_sub), WriteXml(**plain_sub));
}

INSTANTIATE_TEST_SUITE_P(AllEncodings, PreparedDifferentialTest,
                         ::testing::Values(OrderEncoding::kGlobal,
                                           OrderEncoding::kLocal,
                                           OrderEncoding::kDewey),
                         [](const auto& info) {
                           return OrderEncodingToString(info.param);
                         });

}  // namespace
}  // namespace oxml
