// Randomized model-based property tests. A long random edit script is
// applied simultaneously to an in-memory DOM (the model) and to a
// relational store under each encoding (the system under test). After
// every few operations the store must (a) pass its structural invariant
// checker and (b) reconstruct to a document structurally equal to the DOM.
// Small gaps force frequent renumbering, exercising the hardest paths.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/common/random.h"
#include "src/core/ordered_store.h"
#include "src/xml/xml_generator.h"
#include "src/xml/xml_parser.h"
#include "src/xml/xml_writer.h"

namespace oxml {
namespace {

/// Returns the child-index path (over non-attribute children) from the root
/// element to `node`.
std::vector<size_t> PathTo(const XmlNode* node) {
  std::vector<size_t> path;
  while (node->parent() != nullptr &&
         node->parent()->kind() != XmlNodeKind::kDocument) {
    path.push_back(node->IndexInParent());
    node = node->parent();
  }
  std::reverse(path.begin(), path.end());
  return path;
}

/// Picks a random descendant element (possibly the root element itself).
XmlNode* RandomElement(XmlNode* root_element, Random* rng) {
  XmlNode* cur = root_element;
  while (true) {
    std::vector<XmlNode*> element_children;
    for (const auto& c : cur->children()) {
      if (c->is_element()) element_children.push_back(c.get());
    }
    if (element_children.empty() || rng->Chance(0.35)) return cur;
    cur = element_children[rng->Uniform(
        0, static_cast<int64_t>(element_children.size()) - 1)];
  }
}

std::unique_ptr<XmlNode> RandomFragment(Random* rng, int id) {
  auto node = XmlNode::Element("frag" + std::to_string(rng->Uniform(0, 3)));
  if (rng->Chance(0.5)) {
    node->SetAttribute("n", std::to_string(id));
  }
  int kids = static_cast<int>(rng->Uniform(0, 3));
  for (int i = 0; i < kids; ++i) {
    if (rng->Chance(0.5)) {
      node->AppendChild(XmlNode::Text("t" + std::to_string(id)));
    } else {
      XmlNode* sub = node->AppendChild(XmlNode::Element("sub"));
      sub->AppendChild(XmlNode::Text("s" + std::to_string(id)));
    }
  }
  return node;
}

class EditScriptTest : public ::testing::TestWithParam<OrderEncoding> {};

TEST_P(EditScriptTest, RandomEditScriptConvergesWithDomModel) {
  auto dbr = Database::Open();
  ASSERT_TRUE(dbr.ok());
  std::unique_ptr<Database> db = std::move(dbr).value();
  // gap = 2 keeps renumbering frequent.
  auto sr = OrderedXmlStore::Create(db.get(), GetParam(), {.gap = 2});
  ASSERT_TRUE(sr.ok());
  std::unique_ptr<OrderedXmlStore> store = std::move(sr).value();

  auto model = ParseXml(
      "<root><a x=\"1\"><b>t1</b><b>t2</b></a><c/><d><e>t3</e></d></root>");
  ASSERT_TRUE(model.ok());
  XmlDocument& dom = **model;
  ASSERT_TRUE(store->LoadDocument(dom).ok());

  Random rng(static_cast<uint64_t>(GetParam()) * 7919 + 101);
  int fragment_id = 0;

  for (int op = 0; op < 120; ++op) {
    XmlNode* dom_target = RandomElement(dom.root_element(), &rng);
    std::vector<size_t> path = PathTo(dom_target);
    auto stored_target = store->NodeAtPath(path);
    ASSERT_TRUE(stored_target.ok())
        << "op " << op << ": " << stored_target.status();

    double dice = rng.NextDouble();
    if (dice < 0.75 || dom_target->parent() == nullptr ||
        dom_target->parent()->kind() == XmlNodeKind::kDocument) {
      // Insert a fragment at a random position relative to the target.
      auto fragment = RandomFragment(&rng, fragment_id++);
      InsertPosition pos;
      bool target_is_root =
          dom_target->parent() == nullptr ||
          dom_target->parent()->kind() == XmlNodeKind::kDocument;
      switch (target_is_root ? rng.Uniform(2, 3) : rng.Uniform(0, 3)) {
        case 0:
          pos = InsertPosition::kBefore;
          break;
        case 1:
          pos = InsertPosition::kAfter;
          break;
        case 2:
          pos = InsertPosition::kFirstChild;
          break;
        default:
          pos = InsertPosition::kLastChild;
      }
      auto stats = store->InsertSubtree(*stored_target, pos, *fragment);
      ASSERT_TRUE(stats.ok()) << "op " << op << " insert: " << stats.status();

      // Mirror on the DOM.
      switch (pos) {
        case InsertPosition::kBefore:
          dom_target->parent()->InsertChild(dom_target->IndexInParent(),
                                            std::move(fragment));
          break;
        case InsertPosition::kAfter:
          dom_target->parent()->InsertChild(dom_target->IndexInParent() + 1,
                                            std::move(fragment));
          break;
        case InsertPosition::kFirstChild:
          dom_target->InsertChild(0, std::move(fragment));
          break;
        case InsertPosition::kLastChild:
          dom_target->AppendChild(std::move(fragment));
          break;
      }
    } else {
      // Delete the target subtree.
      auto stats = store->DeleteSubtree(*stored_target);
      ASSERT_TRUE(stats.ok()) << "op " << op << " delete: " << stats.status();
      EXPECT_EQ(stats->nodes_deleted,
                static_cast<int64_t>(dom_target->SubtreeSize()))
          << "op " << op;
      dom_target->parent()->RemoveChild(dom_target->IndexInParent());
    }

    if (op % 10 == 9) {
      ASSERT_TRUE(store->Validate().ok())
          << "op " << op << ": " << store->Validate();
      auto rebuilt = store->ReconstructDocument();
      ASSERT_TRUE(rebuilt.ok()) << "op " << op;
      ASSERT_TRUE((*rebuilt)->StructurallyEqual(dom))
          << "op " << op << "\nmodel:\n"
          << WriteXml(dom, {.indent = 2}) << "\nstore:\n"
          << WriteXml(**rebuilt, {.indent = 2});
    }
  }

  // Final deep checks.
  ASSERT_TRUE(store->Validate().ok()) << store->Validate();
  auto rebuilt = store->ReconstructDocument();
  ASSERT_TRUE(rebuilt.ok());
  EXPECT_TRUE((*rebuilt)->StructurallyEqual(dom));
  auto count = store->NodeCount();
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(static_cast<size_t>(*count), dom.TotalNodes() - 1);
}

/// Same idea on a generated document, with multiple seeds, insert-only (a
/// denser stress of the renumbering paths).
class SeededInsertTest
    : public ::testing::TestWithParam<std::tuple<OrderEncoding, int>> {};

TEST_P(SeededInsertTest, DenseFrontInsertsStayConsistent) {
  auto [encoding, seed] = GetParam();
  auto dbr = Database::Open();
  ASSERT_TRUE(dbr.ok());
  std::unique_ptr<Database> db = std::move(dbr).value();
  auto sr = OrderedXmlStore::Create(db.get(), encoding, {.gap = 1});
  ASSERT_TRUE(sr.ok());  // gap 1: EVERY insert renumbers
  std::unique_ptr<OrderedXmlStore> store = std::move(sr).value();

  auto model = ParseXml("<list><i>0</i></list>");
  ASSERT_TRUE(model.ok());
  XmlDocument& dom = **model;
  ASSERT_TRUE(store->LoadDocument(dom).ok());

  Random rng(static_cast<uint64_t>(seed));
  int renumber_events = 0;
  for (int op = 1; op <= 40; ++op) {
    // Always insert before a random existing child: maximal renumber churn.
    size_t n = dom.root_element()->child_count();
    size_t idx = static_cast<size_t>(rng.Uniform(0, static_cast<int64_t>(n) - 1));
    auto target = store->NodeAtPath({idx});
    ASSERT_TRUE(target.ok()) << op;
    auto frag = XmlNode::Element("i");
    frag->AppendChild(XmlNode::Text(std::to_string(op)));
    auto stats =
        store->InsertSubtree(*target, InsertPosition::kBefore, *frag);
    ASSERT_TRUE(stats.ok()) << op << ": " << stats.status();
    renumber_events += stats->renumbering_triggered ? 1 : 0;
    dom.root_element()->InsertChild(idx, std::move(frag));
  }
  // Dense numbering must have forced renumbering repeatedly (a renumber
  // redistributes some slack, so not necessarily on every insert).
  EXPECT_GT(renumber_events, 5);
  ASSERT_TRUE(store->Validate().ok()) << store->Validate();
  auto rebuilt = store->ReconstructDocument();
  ASSERT_TRUE(rebuilt.ok());
  EXPECT_TRUE((*rebuilt)->StructurallyEqual(dom));
}

INSTANTIATE_TEST_SUITE_P(AllEncodings, EditScriptTest,
                         ::testing::Values(OrderEncoding::kGlobal,
                                           OrderEncoding::kLocal,
                                           OrderEncoding::kDewey),
                         [](const auto& info) {
                           return OrderEncodingToString(info.param);
                         });

INSTANTIATE_TEST_SUITE_P(
    Seeds, SeededInsertTest,
    ::testing::Combine(::testing::Values(OrderEncoding::kGlobal,
                                         OrderEncoding::kLocal,
                                         OrderEncoding::kDewey),
                       ::testing::Values(1, 2, 3, 4, 5)),
    [](const auto& info) {
      return std::string(OrderEncodingToString(std::get<0>(info.param))) +
             "_seed" + std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace oxml
