// Tests for the extended store APIs: MoveSubtree, value updates,
// IsDescendantOf, DocumentCollection, and ordered stores over a
// file-backed, eviction-pressured database.

#include <gtest/gtest.h>

#include <memory>

#include "src/core/collection.h"
#include "src/core/ordered_store.h"
#include "src/core/xpath_eval.h"
#include "src/xml/xml_generator.h"
#include "src/xml/xml_parser.h"
#include "src/xml/xml_writer.h"

namespace oxml {
namespace {

constexpr const char* kDoc = R"(
<doc>
  <head><title>t0</title></head>
  <body>
    <section id="s1"><title>alpha</title><para>p1</para><para>p2</para></section>
    <section id="s2"><title>beta</title><para>p3</para></section>
  </body>
</doc>)";

class StoreApiTest : public ::testing::TestWithParam<OrderEncoding> {
 protected:
  void SetUp() override {
    auto dbr = Database::Open();
    ASSERT_TRUE(dbr.ok());
    db_ = std::move(dbr).value();
    auto sr = OrderedXmlStore::Create(db_.get(), GetParam(), {.gap = 8});
    ASSERT_TRUE(sr.ok());
    store_ = std::move(sr).value();
    auto doc = ParseXml(kDoc);
    ASSERT_TRUE(doc.ok());
    doc_ = std::move(doc).value();
    ASSERT_TRUE(store_->LoadDocument(*doc_).ok());
  }

  StoredNode Node(const std::string& xpath) {
    auto r = EvaluateXPath(store_.get(), xpath);
    EXPECT_TRUE(r.ok() && r->size() == 1) << xpath;
    return (*r)[0];
  }

  std::unique_ptr<Database> db_;
  std::unique_ptr<OrderedXmlStore> store_;
  std::unique_ptr<XmlDocument> doc_;
};

TEST_P(StoreApiTest, MoveSubtreeReordersSections) {
  StoredNode s2 = Node("//section[@id = 's2']");
  StoredNode s1 = Node("//section[@id = 's1']");
  auto stats = store_->MoveSubtree(s2, s1, InsertPosition::kBefore);
  ASSERT_TRUE(stats.ok()) << stats.status();

  auto ids = EvaluateXPathStrings(store_.get(), "//section/@id");
  ASSERT_TRUE(ids.ok());
  EXPECT_EQ(*ids, (std::vector<std::string>{"s2", "s1"}));
  ASSERT_TRUE(store_->Validate().ok()) << store_->Validate();
}

TEST_P(StoreApiTest, MoveSubtreeIntoAnotherElement) {
  StoredNode s1 = Node("//section[@id = 's1']");
  StoredNode head = Node("/doc/head");
  auto stats = store_->MoveSubtree(s1, head, InsertPosition::kLastChild);
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(EvaluateXPath(store_.get(), "/doc/head/section")->size(), 1u);
  EXPECT_EQ(EvaluateXPath(store_.get(), "/doc/body/section")->size(), 1u);
  ASSERT_TRUE(store_->Validate().ok());
}

TEST_P(StoreApiTest, MoveIntoOwnSubtreeRejected) {
  StoredNode body = Node("/doc/body");
  StoredNode s1 = Node("//section[@id = 's1']");
  auto stats = store_->MoveSubtree(body, s1, InsertPosition::kFirstChild);
  EXPECT_FALSE(stats.ok());
  EXPECT_TRUE(stats.status().IsInvalidArgument()) << stats.status();
  // Nothing must have changed.
  EXPECT_EQ(EvaluateXPath(store_.get(), "//section")->size(), 2u);
}

TEST_P(StoreApiTest, IsDescendantOf) {
  StoredNode root = Node("/doc");
  StoredNode body = Node("/doc/body");
  StoredNode para = Node("//section[@id = 's1']/para[1]");
  EXPECT_TRUE(*store_->IsDescendantOf(para, body));
  EXPECT_TRUE(*store_->IsDescendantOf(para, root));
  EXPECT_FALSE(*store_->IsDescendantOf(body, para));
  EXPECT_FALSE(*store_->IsDescendantOf(body, body));
}

TEST_P(StoreApiTest, UpdateTextValueIsSingleRowUpdate) {
  StoredNode text = Node("//section[@id = 's2']/para[1]/text()");
  auto stats = store_->UpdateNodeValue(text, "revised body");
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(stats->rows_renumbered, 0);
  EXPECT_EQ(stats->statements, 1);
  auto v = EvaluateXPathStrings(store_.get(), "//section[@id = 's2']/para[1]");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ((*v)[0], "revised body");
  ASSERT_TRUE(store_->Validate().ok());
}

TEST_P(StoreApiTest, UpdateElementValueRejected) {
  StoredNode section = Node("//section[@id = 's1']");
  auto stats = store_->UpdateNodeValue(section, "nope");
  EXPECT_FALSE(stats.ok());
  EXPECT_TRUE(stats.status().IsInvalidArgument());
}

TEST_P(StoreApiTest, UpdateAttributeValue) {
  StoredNode s1 = Node("//section[@id = 's1']");
  auto stats = store_->UpdateAttributeValue(s1, "id", "s1-renamed");
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(EvaluateXPath(store_.get(), "//section[@id = 's1-renamed']")
                ->size(),
            1u);
  EXPECT_EQ(EvaluateXPath(store_.get(), "//section[@id = 's1']")->size(), 0u);

  auto missing = store_->UpdateAttributeValue(s1, "zzz", "x");
  EXPECT_FALSE(missing.ok());
  EXPECT_TRUE(missing.status().IsNotFound());
}

TEST_P(StoreApiTest, ValidateDetectsCorruption) {
  ASSERT_TRUE(store_->Validate().ok());
  // Corrupt the table directly underneath the store.
  std::string corrupt;
  switch (GetParam()) {
    case OrderEncoding::kGlobal:
      corrupt = "UPDATE nodes SET pord = 999999 WHERE depth = 3";
      break;
    case OrderEncoding::kLocal:
      corrupt = "UPDATE nodes SET pid = 999999 WHERE depth = 3";
      break;
    case OrderEncoding::kDewey:
      corrupt = "UPDATE nodes SET depth = 99 WHERE depth = 3";
      break;
  }
  ASSERT_TRUE(db_->Execute(corrupt).ok());
  EXPECT_FALSE(store_->Validate().ok());
}

TEST_P(StoreApiTest, FileBackedStoreSurvivesEvictionPressure) {
  DatabaseOptions opts;
  opts.file_path = ::testing::TempDir() + "/store_" +
                   OrderEncodingToString(GetParam()) + ".db";
  opts.buffer_capacity = 8;  // tiny pool: constant eviction
  auto dbr = Database::Open(opts);
  ASSERT_TRUE(dbr.ok());
  std::unique_ptr<Database> db = std::move(dbr).value();
  auto sr = OrderedXmlStore::Create(db.get(), GetParam(), {.gap = 8});
  ASSERT_TRUE(sr.ok());
  std::unique_ptr<OrderedXmlStore> store = std::move(sr).value();

  XmlGeneratorOptions gen;
  gen.target_nodes = 3000;
  gen.seed = 5;
  auto doc = GenerateXml(gen);
  ASSERT_TRUE(store->LoadDocument(*doc).ok());

  auto rebuilt = store->ReconstructDocument();
  ASSERT_TRUE(rebuilt.ok()) << rebuilt.status();
  EXPECT_TRUE((*rebuilt)->StructurallyEqual(*doc));
  ASSERT_TRUE(store->Validate().ok());
  // The full-document scan cannot fit in an 8-frame pool: page faults must
  // have occurred and been served from the file.
  EXPECT_GT(db->buffer_pool()->miss_count(), 0u);
}

// ------------------------------------------------------ DocumentCollection

class CollectionTest : public ::testing::TestWithParam<OrderEncoding> {};

TEST_P(CollectionTest, AddQueryRemove) {
  auto dbr = Database::Open();
  ASSERT_TRUE(dbr.ok());
  std::unique_ptr<Database> db = std::move(dbr).value();
  auto cr = DocumentCollection::Create(db.get(), GetParam(), {.gap = 8});
  ASSERT_TRUE(cr.ok()) << cr.status();
  std::unique_ptr<DocumentCollection> coll = std::move(cr).value();

  for (int d = 0; d < 3; ++d) {
    NewsGeneratorOptions opts;
    opts.seed = 100 + d;
    opts.sections = 3 + d;
    opts.paragraphs_per_section = 2;
    auto doc = GenerateNewsXml(opts);
    auto added = coll->AddDocument("news" + std::to_string(d), *doc);
    ASSERT_TRUE(added.ok()) << added.status();
  }
  EXPECT_EQ(coll->size(), 3u);
  EXPECT_EQ(coll->DocumentNames(),
            (std::vector<std::string>{"news0", "news1", "news2"}));

  // Duplicate names rejected.
  auto doc = GenerateNewsXml({});
  EXPECT_TRUE(coll->AddDocument("news0", *doc).status().IsAlreadyExists());

  // Collection-wide query: 3 + 4 + 5 sections.
  auto matches = coll->QueryAll("/nitf/body/section");
  ASSERT_TRUE(matches.ok()) << matches.status();
  EXPECT_EQ(matches->size(), 12u);
  EXPECT_EQ((*matches)[0].document, "news0");
  EXPECT_EQ(matches->back().document, "news2");

  // Per-document access.
  auto news1 = coll->GetDocument("news1");
  ASSERT_TRUE(news1.ok());
  auto sections = EvaluateXPath(*news1, "/nitf/body/section");
  ASSERT_TRUE(sections.ok());
  EXPECT_EQ(sections->size(), 4u);

  // Removal drops the table and the catalog row.
  ASSERT_TRUE(coll->RemoveDocument("news1").ok());
  EXPECT_EQ(coll->size(), 2u);
  EXPECT_TRUE(coll->GetDocument("news1").status().IsNotFound());
  EXPECT_TRUE(coll->RemoveDocument("news1").IsNotFound());
  auto catalog = db->Query("SELECT COUNT(*) FROM coll_catalog");
  ASSERT_TRUE(catalog.ok());
  EXPECT_EQ(catalog->rows[0][0].AsInt(), 2);
}

TEST_P(CollectionTest, DocumentsAreIndependentlyUpdatable) {
  auto dbr = Database::Open();
  ASSERT_TRUE(dbr.ok());
  std::unique_ptr<Database> db = std::move(dbr).value();
  auto cr = DocumentCollection::Create(db.get(), GetParam(), {.gap = 4});
  ASSERT_TRUE(cr.ok());
  std::unique_ptr<DocumentCollection> coll = std::move(cr).value();

  auto a = ParseXml("<d><x>1</x></d>");
  auto b = ParseXml("<d><x>2</x></d>");
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_TRUE(coll->AddDocument("a", **a).ok());
  ASSERT_TRUE(coll->AddDocument("b", **b).ok());

  auto store_a = coll->GetDocument("a");
  ASSERT_TRUE(store_a.ok());
  auto target = EvaluateXPath(*store_a, "/d/x");
  ASSERT_TRUE(target.ok());
  auto frag = ParseXml("<y>new</y>");
  ASSERT_TRUE(frag.ok());
  ASSERT_TRUE((*store_a)
                  ->InsertSubtree((*target)[0], InsertPosition::kAfter,
                                  *(*frag)->root_element())
                  .ok());

  // Document b is untouched.
  auto store_b = coll->GetDocument("b");
  ASSERT_TRUE(store_b.ok());
  auto rebuilt_b = (*store_b)->ReconstructDocument();
  ASSERT_TRUE(rebuilt_b.ok());
  EXPECT_TRUE((*rebuilt_b)->StructurallyEqual(**b));
  auto rebuilt_a = (*store_a)->ReconstructDocument();
  ASSERT_TRUE(rebuilt_a.ok());
  EXPECT_EQ(WriteXml(**rebuilt_a), "<d><x>1</x><y>new</y></d>");
}

INSTANTIATE_TEST_SUITE_P(AllEncodings, StoreApiTest,
                         ::testing::Values(OrderEncoding::kGlobal,
                                           OrderEncoding::kLocal,
                                           OrderEncoding::kDewey),
                         [](const auto& info) {
                           return OrderEncodingToString(info.param);
                         });
INSTANTIATE_TEST_SUITE_P(AllEncodings, CollectionTest,
                         ::testing::Values(OrderEncoding::kGlobal,
                                           OrderEncoding::kLocal,
                                           OrderEncoding::kDewey),
                         [](const auto& info) {
                           return OrderEncodingToString(info.param);
                         });

}  // namespace
}  // namespace oxml
