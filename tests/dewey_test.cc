// DeweyKey codec tests, including randomized property checks of the
// order-preservation invariants the Dewey encoding relies on.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "src/common/random.h"
#include "src/core/dewey.h"

namespace oxml {
namespace {

TEST(DeweyKeyTest, BasicOps) {
  DeweyKey root = DeweyKey::Root(8);
  EXPECT_EQ(root.ToString(), "8");
  EXPECT_EQ(root.depth(), 1u);

  DeweyKey child = root.Child(16);
  EXPECT_EQ(child.ToString(), "8.16");
  EXPECT_EQ(child.Parent().ToString(), "8");
  EXPECT_EQ(child.WithLast(24).ToString(), "8.24");
  EXPECT_TRUE(root.IsAncestorOf(child));
  EXPECT_FALSE(child.IsAncestorOf(root));
  EXPECT_FALSE(root.IsAncestorOf(root));
}

TEST(DeweyKeyTest, DocumentOrderCompare) {
  DeweyKey a({1, 5});
  DeweyKey b({1, 5, 3});
  DeweyKey c({1, 6});
  DeweyKey d({2});
  EXPECT_LT(a.Compare(b), 0);  // ancestor before descendant
  EXPECT_LT(b.Compare(c), 0);
  EXPECT_LT(c.Compare(d), 0);
  EXPECT_EQ(a.Compare(DeweyKey({1, 5})), 0);
  EXPECT_GT(d.Compare(a), 0);
}

TEST(DeweyKeyTest, EncodeDecodeRoundTrip) {
  std::vector<std::vector<int64_t>> cases = {
      {1},
      {1, 2, 3},
      {255},
      {256},
      {65535, 65536},
      {1, 1'000'000'000'000LL},
      {42, 7, 99, 12345, 8},
  };
  for (const auto& comps : cases) {
    DeweyKey key(comps);
    auto decoded = DeweyKey::Decode(key.Encode());
    ASSERT_TRUE(decoded.ok()) << key.ToString();
    EXPECT_EQ(decoded->components(), comps);
  }
}

TEST(DeweyKeyTest, DecodeRejectsGarbage) {
  EXPECT_FALSE(DeweyKey::Decode("\x09").ok());        // bad length byte
  EXPECT_FALSE(DeweyKey::Decode("\x02\x01").ok());    // truncated
  EXPECT_FALSE(DeweyKey::Decode(std::string("\x00", 1)).ok());
  EXPECT_TRUE(DeweyKey::Decode("").ok());  // empty path (document)
}

TEST(DeweyKeyTest, EncodedOrderEqualsDocumentOrder) {
  // Property: memcmp order of encodings == DeweyKey::Compare order.
  Random rng(99);
  std::vector<DeweyKey> keys;
  for (int i = 0; i < 500; ++i) {
    std::vector<int64_t> comps;
    int depth = static_cast<int>(rng.Uniform(1, 6));
    for (int d = 0; d < depth; ++d) {
      // Mix small and large components to cross length-byte boundaries.
      int64_t c = rng.Chance(0.3) ? rng.Uniform(1, 10'000'000)
                                  : rng.Uniform(1, 300);
      comps.push_back(c);
    }
    keys.emplace_back(std::move(comps));
  }
  for (size_t i = 0; i < keys.size(); ++i) {
    for (size_t j = i + 1; j < keys.size(); ++j) {
      int logical = keys[i].Compare(keys[j]);
      int physical = keys[i].Encode().compare(keys[j].Encode());
      int norm_physical = physical < 0 ? -1 : (physical > 0 ? 1 : 0);
      ASSERT_EQ(logical, norm_physical)
          << keys[i].ToString() << " vs " << keys[j].ToString();
    }
  }
}

TEST(DeweyKeyTest, AncestorIffEncodedPrefix) {
  Random rng(7);
  std::vector<DeweyKey> keys;
  for (int i = 0; i < 300; ++i) {
    std::vector<int64_t> comps;
    int depth = static_cast<int>(rng.Uniform(1, 5));
    for (int d = 0; d < depth; ++d) comps.push_back(rng.Uniform(1, 400));
    keys.emplace_back(std::move(comps));
  }
  for (const DeweyKey& a : keys) {
    for (const DeweyKey& b : keys) {
      std::string ea = a.Encode();
      std::string eb = b.Encode();
      bool prefix = ea.size() < eb.size() &&
                    eb.compare(0, ea.size(), ea) == 0;
      ASSERT_EQ(a.IsAncestorOf(b), prefix)
          << a.ToString() << " vs " << b.ToString();
    }
  }
}

TEST(DeweyKeyTest, SubtreeUpperBoundCoversExactlyTheSubtree) {
  Random rng(13);
  DeweyKey parent({5, 130});
  std::string lower = parent.Encode();
  std::string upper = parent.SubtreeUpperBound();
  for (int i = 0; i < 1000; ++i) {
    std::vector<int64_t> comps{5, 130};
    int extra = static_cast<int>(rng.Uniform(0, 3));
    for (int d = 0; d < extra; ++d) comps.push_back(rng.Uniform(1, 100'000));
    DeweyKey descendant_or_self(comps);
    std::string enc = descendant_or_self.Encode();
    EXPECT_GE(enc, lower);
    EXPECT_LT(enc, upper);
  }
  // Nodes outside the subtree fall outside the range.
  EXPECT_LT(DeweyKey({5, 129, 7}).Encode(), lower);
  EXPECT_GE(DeweyKey({5, 131}).Encode(), upper);
  EXPECT_GE(DeweyKey({6}).Encode(), upper);
  // A sibling with a *longer* encoded component also sorts above.
  EXPECT_GE(DeweyKey({5, 1'000'000}).Encode(), upper);
}

TEST(DeweyKeyTest, LargeComponentBoundaries) {
  // Values around the per-byte-length boundaries keep strict order.
  std::vector<int64_t> boundary = {1,       254,     255,      256,
                                   65535,   65536,   16777215, 16777216,
                                   (1LL << 32) - 1, 1LL << 32};
  for (size_t i = 0; i + 1 < boundary.size(); ++i) {
    DeweyKey a({boundary[i]});
    DeweyKey b({boundary[i + 1]});
    EXPECT_LT(a.Encode(), b.Encode())
        << boundary[i] << " !< " << boundary[i + 1];
  }
}

}  // namespace
}  // namespace oxml
