// Resource governance: statement deadlines, cooperative cancellation,
// memory budgets, and disk-full degradation (docs/INTERNALS.md §12).
//
// Deadline tests avoid sleeps: a pre-expired QueryControl installed through
// the public ScopedQueryControl makes the next statement on this thread
// fail at its first cooperative check point, deterministically. The
// database-level timeout path (StatementOptions / DatabaseOptions) is
// exercised with a 1 ms deadline against a query whose cross products are
// far too large to finish in that time.

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "src/core/ordered_store.h"
#include "src/core/xpath_eval.h"
#include "src/relational/database.h"
#include "src/relational/fault_injection.h"
#include "src/relational/query_control.h"
#include "src/xml/xml_generator.h"
#include "src/xml/xml_parser.h"
#include "src/xml/xml_writer.h"

namespace oxml {
namespace {

// Installs a control whose deadline has already passed on the current
// thread for the lifetime of the object: the next statement (which
// inherits the installed control) fails deterministically at its first
// cooperative check point — no sleeps, no timing dependence.
struct ExpiredDeadlineScope {
  ExpiredDeadlineScope() {
    ctl.SetDeadline(std::chrono::steady_clock::now() -
                    std::chrono::seconds(1));
    scope.emplace(&ctl);
  }
  QueryControl ctl;
  std::optional<ScopedQueryControl> scope;
};

// ------------------------------------------------- deadlines on the stores

class GovernanceEncodingTest : public ::testing::TestWithParam<OrderEncoding> {
 protected:
  void SetUp() override {
    NewsGeneratorOptions gen;
    gen.seed = 11;
    gen.sections = 40;
    gen.paragraphs_per_section = 5;
    doc_ = GenerateNewsXml(gen);
    auto dbr = Database::Open();
    ASSERT_TRUE(dbr.ok()) << dbr.status();
    db_ = std::move(dbr).value();
    auto sr = OrderedXmlStore::Create(db_.get(), GetParam(), {.gap = 8});
    ASSERT_TRUE(sr.ok()) << sr.status();
    store_ = std::move(sr).value();
    ASSERT_TRUE(store_->LoadDocument(*doc_).ok());
  }

  std::unique_ptr<XmlDocument> doc_;
  std::unique_ptr<Database> db_;
  std::unique_ptr<OrderedXmlStore> store_;
};

TEST_P(GovernanceEncodingTest, ExpiredDeadlineAbortsScansOnEveryEncoding) {
  {
    ExpiredDeadlineScope expired;
    // Nested statements inherit the installed control, so every driver
    // query dies at its first operator check point.
    auto r = EvaluateXPath(store_.get(), "//para");
    ASSERT_FALSE(r.ok());
    EXPECT_TRUE(r.status().IsDeadlineExceeded()) << r.status();
  }
  // The deadline left nothing behind: the same scan now completes.
  auto r = EvaluateXPath(store_.get(), "//para");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->size(), 200u);
  EXPECT_TRUE(store_->Validate().ok());
}

TEST_P(GovernanceEncodingTest, TimedOutMutationRollsBackCompletely) {
  std::string before;
  {
    auto rec = store_->ReconstructDocument();
    ASSERT_TRUE(rec.ok());
    before = WriteXml(**rec);
  }
  {
    ExpiredDeadlineScope expired;
    auto sections = [&]() -> Result<std::vector<StoredNode>> {
      // Resolve the target outside the expired window? No — resolving
      // also trips the deadline, which is itself part of the contract.
      return EvaluateXPath(store_.get(), "/nitf/body/section");
    }();
    ASSERT_FALSE(sections.ok());
    EXPECT_TRUE(sections.status().IsDeadlineExceeded());
  }
  auto sections = EvaluateXPath(store_.get(), "/nitf/body/section");
  ASSERT_TRUE(sections.ok()) << sections.status();
  ASSERT_FALSE(sections->empty());
  {
    ExpiredDeadlineScope expired;
    auto frag = ParseXml("<section id=\"gx\"><para>doomed</para></section>");
    ASSERT_TRUE(frag.ok());
    auto ins = store_->InsertSubtree(sections->front(), InsertPosition::kAfter,
                                     *(*frag)->root_element());
    ASSERT_FALSE(ins.ok());
    EXPECT_TRUE(ins.status().IsDeadlineExceeded()) << ins.status();
  }
  // The failed mutation rolled back: document byte-identical, store valid,
  // and the next mutation succeeds.
  EXPECT_TRUE(store_->Validate().ok());
  {
    auto rec = store_->ReconstructDocument();
    ASSERT_TRUE(rec.ok());
    EXPECT_EQ(WriteXml(**rec), before);
  }
  auto frag = ParseXml("<section id=\"ok\"><para>fine</para></section>");
  ASSERT_TRUE(frag.ok());
  auto ins = store_->InsertSubtree(sections->front(), InsertPosition::kAfter,
                                   *(*frag)->root_element());
  EXPECT_TRUE(ins.ok()) << ins.status();
}

// QR-style ordered queries with generous limits configured must return
// exactly what an ungoverned database returns, with no counter tripped.
TEST_P(GovernanceEncodingTest, GenerousLimitsLeaveQueriesUnaffected) {
  DatabaseOptions governed;
  governed.default_statement_timeout_ms = 60'000;
  governed.statement_memory_budget_bytes = 1ull << 30;
  governed.total_memory_budget_bytes = 2ull << 30;
  auto dbr = Database::Open(governed);
  ASSERT_TRUE(dbr.ok()) << dbr.status();
  auto sr = OrderedXmlStore::Create(dbr->get(), GetParam(), {.gap = 8});
  ASSERT_TRUE(sr.ok()) << sr.status();
  ASSERT_TRUE((*sr)->LoadDocument(*doc_).ok());

  const char* queries[] = {
      "//para",
      "/nitf/body/section[5]/title",
      "/nitf/body/section[last()]/para[last()]",
      "//section[@id = 's10']/following-sibling::section",
      "/nitf/body//para",
      "//para[@class = 'lead']",
      "/nitf/body/section[position() >= 20]/title",
  };
  for (const char* q : queries) {
    auto plain = EvaluateXPath(store_.get(), q);
    auto governed_r = EvaluateXPath(sr->get(), q);
    ASSERT_TRUE(plain.ok()) << q << ": " << plain.status();
    ASSERT_TRUE(governed_r.ok()) << q << ": " << governed_r.status();
    EXPECT_EQ(plain->size(), governed_r->size()) << q;
  }
  auto plain_doc = store_->ReconstructDocument();
  auto governed_doc = (*sr)->ReconstructDocument();
  ASSERT_TRUE(plain_doc.ok());
  ASSERT_TRUE(governed_doc.ok());
  EXPECT_EQ(WriteXml(**plain_doc), WriteXml(**governed_doc));

  ExecStats* stats = (*dbr)->stats();
  EXPECT_EQ(stats->statements_timed_out, 0u);
  EXPECT_EQ(stats->statements_cancelled, 0u);
  EXPECT_EQ(stats->mem_budget_rejections, 0u);
}

INSTANTIATE_TEST_SUITE_P(AllEncodings, GovernanceEncodingTest,
                         ::testing::Values(OrderEncoding::kGlobal,
                                           OrderEncoding::kLocal,
                                           OrderEncoding::kDewey),
                         [](const auto& info) {
                           return OrderEncodingToString(info.param);
                         });

// ------------------------------------------------ deadlines on SQL plans

class GovernanceSqlTest : public ::testing::Test {
 protected:
  void Open(DatabaseOptions opts) {
    auto dbr = Database::Open(opts);
    ASSERT_TRUE(dbr.ok()) << dbr.status();
    db_ = std::move(dbr).value();
    Must("CREATE TABLE t (id INT, grp INT, payload TEXT)");
    std::string filler(60, 'x');
    for (int i = 0; i < 400; ++i) {
      Must("INSERT INTO t VALUES (" + std::to_string(i) + ", " +
           std::to_string(i % 7) + ", '" + filler + std::to_string(i) +
           "')");
    }
  }

  void Must(const std::string& sql) {
    auto r = db_->Execute(sql);
    ASSERT_TRUE(r.ok()) << sql << " -> " << r.status();
  }

  std::unique_ptr<Database> db_;
};

TEST_F(GovernanceSqlTest, ExpiredDeadlineAbortsSortAndJoin) {
  DatabaseOptions opts;
  opts.enable_parallel_execution = true;
  opts.num_threads = 2;
  Open(opts);
  const char* statements[] = {
      // Mid-sort: ORDER BY on a non-key expression forces a SortOp.
      "SELECT id FROM t ORDER BY payload",
      // Mid-join: self cross join, big enough for the parallel operators.
      "SELECT a.id FROM t a, t b WHERE a.grp = b.grp",
  };
  for (const char* sql : statements) {
    {
      ExpiredDeadlineScope expired;
      auto r = db_->Query(sql);
      ASSERT_FALSE(r.ok()) << sql;
      EXPECT_TRUE(r.status().IsDeadlineExceeded()) << sql << ": "
                                                   << r.status();
    }
    auto r = db_->Query(sql);
    EXPECT_TRUE(r.ok()) << sql << " after the deadline scope: "
                        << r.status();
  }
}

TEST_F(GovernanceSqlTest, StatementTimeoutOverrideTripsAndIsTallied) {
  Open(DatabaseOptions{});
  // Inequality predicates keep this a nested-loop cross product (~64M
  // iterations): unfinishable in 1 ms, so the deadline check at the
  // operator boundaries must fire.
  StatementOptions sopts;
  sopts.timeout_ms = 1;
  auto r = db_->Query(
      "SELECT a.id FROM t a, t b, t c WHERE a.id < b.id AND b.id < c.id",
      sopts);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsDeadlineExceeded()) << r.status();
  EXPECT_EQ(db_->stats()->statements_timed_out, 1u);
  // Per-call override, not a sticky setting: the same query unbounded
  // completes.
  auto ok = db_->Query("SELECT id FROM t WHERE id = 3");
  EXPECT_TRUE(ok.ok()) << ok.status();
  EXPECT_EQ(db_->stats()->statements_timed_out, 1u);
}

TEST_F(GovernanceSqlTest, DefaultStatementTimeoutAppliesToEveryStatement) {
  DatabaseOptions opts;
  // Generous enough that the setup inserts never trip it (even under
  // TSan), yet hopeless for the 64M-iteration cross product below.
  opts.default_statement_timeout_ms = 500;
  {
    auto dbr = Database::Open(opts);
    ASSERT_TRUE(dbr.ok()) << dbr.status();
    db_ = std::move(dbr).value();
  }
  Must("CREATE TABLE t (id INT, grp INT, payload TEXT)");
  for (int i = 0; i < 400; ++i) {
    Must("INSERT INTO t VALUES (" + std::to_string(i) + ", " +
         std::to_string(i % 7) + ", 'p')");
  }
  auto r = db_->Query(
      "SELECT a.id FROM t a, t b, t c WHERE a.id < b.id AND b.id < c.id");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsDeadlineExceeded()) << r.status();
  // A per-call override of 0 disables the database default.
  StatementOptions unbounded;
  unbounded.timeout_ms = 0;
  auto ok = db_->Query("SELECT id FROM t WHERE id = 3", unbounded);
  EXPECT_TRUE(ok.ok()) << ok.status();
}

// ------------------------------------------------------------ cancellation

TEST_F(GovernanceSqlTest, CancelUnknownStatementIsNotFound) {
  Open(DatabaseOptions{});
  Status st = db_->Cancel(999'999);
  EXPECT_TRUE(st.IsNotFound()) << st;
}

TEST_F(GovernanceSqlTest, StatementIdOutParamIsFilled) {
  Open(DatabaseOptions{});
  uint64_t id = 0;
  StatementOptions sopts;
  sopts.statement_id = &id;
  auto r = db_->Query("SELECT id FROM t WHERE id = 1", sopts);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_GT(id, 0u);
  // The statement is finished, so cancelling it now is a clean NotFound.
  EXPECT_TRUE(db_->Cancel(id).IsNotFound());
}

// Cross-thread cancel stress (primarily a TSan target): one thread runs
// heavy queries while another sweeps Cancel over the live statement-id
// window. Every query must either complete correctly or fail with
// kCancelled, and the database must stay fully usable.
TEST_F(GovernanceSqlTest, ConcurrencyCancelRaceStress) {
  DatabaseOptions opts;
  opts.enable_parallel_execution = true;
  opts.num_threads = 2;
  Open(opts);
  const std::string heavy = "SELECT a.id FROM t a, t b WHERE a.grp = b.grp";
  auto baseline = db_->Query(heavy);
  ASSERT_TRUE(baseline.ok()) << baseline.status();
  const size_t expected_rows = baseline->rows.size();

  uint64_t cancelled_seen = 0;
  for (int iter = 0; iter < 12; ++iter) {
    std::atomic<bool> done{false};
    uint64_t base = db_->next_statement_id();
    std::thread canceller([&] {
      while (!done.load(std::memory_order_acquire)) {
        uint64_t hi = db_->next_statement_id();
        for (uint64_t id = base; id <= hi; ++id) {
          (void)db_->Cancel(id);  // NotFound = raced completion; fine
        }
        std::this_thread::yield();
      }
    });
    auto r = db_->Query(heavy);
    done.store(true, std::memory_order_release);
    canceller.join();
    if (r.ok()) {
      EXPECT_EQ(r->rows.size(), expected_rows) << "iteration " << iter;
    } else {
      EXPECT_TRUE(r.status().IsCancelled()) << "iteration " << iter << ": "
                                            << r.status();
      ++cancelled_seen;
    }
    // Whatever the race outcome, the next statement runs normally.
    auto after = db_->Query("SELECT id FROM t WHERE id = 1");
    ASSERT_TRUE(after.ok()) << "iteration " << iter << ": "
                            << after.status();
  }
  EXPECT_EQ(db_->stats()->statements_cancelled, cancelled_seen);
}

// --------------------------------------------------------- memory budgets

TEST_F(GovernanceSqlTest, StatementBudgetRejectsBigSortAndLeavesNoResidue) {
  DatabaseOptions opts;
  // Below one BudgetCharger batch (32 KiB), so the first charge of the
  // sort's ~44 KiB materialization must be rejected.
  opts.statement_memory_budget_bytes = 16 * 1024;
  // A small bounded pool doubles as the pinned-page leak detector: if a
  // rejected statement leaked pins, repeated rejections would exhaust the
  // pool and the final scan would fail.
  opts.buffer_capacity = 64;
  Open(opts);

  for (int iter = 0; iter < 20; ++iter) {
    auto r = db_->Query("SELECT * FROM t ORDER BY payload");
    ASSERT_FALSE(r.ok()) << "iteration " << iter;
    EXPECT_TRUE(r.status().IsResourceExhausted())
        << "iteration " << iter << ": " << r.status();
  }
  EXPECT_EQ(db_->stats()->mem_budget_rejections, 20u);
  // The failed statements released every reservation.
  EXPECT_EQ(db_->global_memory_budget()->used.load(), 0u);

  // Statements under the budget still run: an unsorted scan streams rows
  // without materializing, and a checkpoint works.
  auto scan = db_->Query("SELECT id FROM t WHERE grp = 3");
  ASSERT_TRUE(scan.ok()) << scan.status();
  EXPECT_GT(scan->rows.size(), 0u);
  EXPECT_TRUE(db_->Checkpoint().ok());
  auto ins = db_->Execute("INSERT INTO t VALUES (9000, 1, 'after')");
  EXPECT_TRUE(ins.ok()) << ins.status();
}

TEST_F(GovernanceSqlTest, GlobalBudgetCapsConcurrentStatements) {
  DatabaseOptions opts;
  opts.total_memory_budget_bytes = 16 * 1024;
  Open(opts);
  auto r = db_->Query("SELECT * FROM t ORDER BY payload");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsResourceExhausted()) << r.status();
  EXPECT_EQ(db_->stats()->mem_budget_rejections, 1u);
  EXPECT_EQ(db_->global_memory_budget()->used.load(), 0u);
  auto ok = db_->Query("SELECT id FROM t WHERE id = 5");
  EXPECT_TRUE(ok.ok()) << ok.status();
}

// ------------------------------------------------------------- disk full

TEST_F(GovernanceSqlTest, EnospcThenSpaceReturnsKeepsDatabaseWritable) {
  std::string path = ::testing::TempDir() + "/governance_enospc_" +
                     std::to_string(::getpid()) + ".db";
  auto plan = std::make_shared<FaultPlan>();
  plan->Arm(0, FaultPlan::Mode::kNone);
  DatabaseOptions opts;
  opts.file_path = path;
  opts.fault_plan = plan;
  {
    auto dbr = Database::Open(opts);
    ASSERT_TRUE(dbr.ok()) << dbr.status();
    auto& db = *dbr;
    ASSERT_TRUE(db->Execute("CREATE TABLE kv (k INT, v TEXT)").ok());
    ASSERT_TRUE(db->Execute("INSERT INTO kv VALUES (1, 'one')").ok());

    // The disk fills: every write-class I/O fails until space returns.
    plan->Arm(1, FaultPlan::Mode::kEnospc);
    auto ins = db->Execute("INSERT INTO kv VALUES (2, 'two')");
    ASSERT_FALSE(ins.ok());
    EXPECT_NE(ins.status().ToString().find("No space left on device"),
              std::string::npos)
        << ins.status();
    // Reads keep working on a full disk.
    auto sel = db->Query("SELECT v FROM kv WHERE k = 1");
    ASSERT_TRUE(sel.ok()) << sel.status();
    ASSERT_EQ(sel->rows.size(), 1u);

    // Space returns: the database is writable again, nothing lost.
    plan->Arm(0, FaultPlan::Mode::kNone);
    EXPECT_TRUE(db->Execute("INSERT INTO kv VALUES (3, 'three')").ok());
    ASSERT_TRUE(db->Close().ok());
  }
  DatabaseOptions reopen;
  reopen.file_path = path;
  reopen.open_existing = true;
  auto dbr = Database::Open(reopen);
  ASSERT_TRUE(dbr.ok()) << dbr.status();
  auto rows = (*dbr)->Query("SELECT k FROM kv");
  ASSERT_TRUE(rows.ok()) << rows.status();
  // The ENOSPC-failed insert rolled back; 1 and 3 survived.
  EXPECT_EQ(rows->rows.size(), 2u);
}

}  // namespace
}  // namespace oxml
