// Randomized differential testing of the SQL engine: random tables and
// random single-table queries are executed by the engine (which may choose
// index scans) and by a naive reference implementation over the same data
// held in plain vectors. Results must match exactly. This hardens the
// planner's sargability/coercion logic, NULL semantics and ORDER BY.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/common/random.h"
#include "src/relational/database.h"

namespace oxml {
namespace {

struct ModelRow {
  std::optional<int64_t> a;  // INT, indexed
  std::optional<double> d;   // DOUBLE
  std::optional<std::string> s;  // TEXT
  int64_t seq;               // INT, unique, for deterministic ordering
};

std::string Lit(const std::optional<int64_t>& v) {
  return v ? std::to_string(*v) : "NULL";
}

class SqlDifferentialTest : public ::testing::Test {};

TEST_F(SqlDifferentialTest, RandomQueriesMatchReference) {
  Random rng(20020610);

  for (int round = 0; round < 8; ++round) {
    auto dbr = Database::Open();
    ASSERT_TRUE(dbr.ok());
    std::unique_ptr<Database> db = std::move(dbr).value();
    ASSERT_TRUE(
        db->Execute("CREATE TABLE t (a INT, d DOUBLE, s TEXT, seq INT)")
            .ok());
    // Half the rounds get an index on (a, seq) to diversify plans.
    bool indexed = round % 2 == 0;
    if (indexed) {
      ASSERT_TRUE(db->Execute("CREATE INDEX t_a ON t (a, seq)").ok());
    }

    // Populate.
    std::vector<ModelRow> model;
    int n = static_cast<int>(rng.Uniform(30, 120));
    for (int i = 0; i < n; ++i) {
      ModelRow row;
      row.seq = i;
      if (!rng.Chance(0.15)) row.a = rng.Uniform(-5, 15);
      if (!rng.Chance(0.15)) row.d = rng.Uniform(-50, 50) / 4.0;
      if (!rng.Chance(0.15)) row.s = rng.Word(1, 4);
      std::string sql = "INSERT INTO t VALUES (" + Lit(row.a) + ", " +
                        (row.d ? std::to_string(*row.d) : "NULL") + ", " +
                        (row.s ? "'" + *row.s + "'" : "NULL") + ", " +
                        std::to_string(row.seq) + ")";
      ASSERT_TRUE(db->Execute(sql).ok()) << sql;
      model.push_back(std::move(row));
    }

    // Random predicates over column a and d.
    for (int q = 0; q < 40; ++q) {
      int64_t lo = rng.Uniform(-6, 16);
      int64_t hi = lo + rng.Uniform(0, 8);
      int shape = static_cast<int>(rng.Uniform(0, 4));
      std::string where;
      auto matches = [&](const ModelRow& r) -> bool {
        switch (shape) {
          case 0:  // a = lo
            return r.a && *r.a == lo;
          case 1:  // a >= lo AND a < hi
            return r.a && *r.a >= lo && *r.a < hi;
          case 2:  // a IN (lo, hi)
            return r.a && (*r.a == lo || *r.a == hi);
          case 3:  // a IS NULL
            return !r.a;
          default:  // a <= lo OR d > 5.0
            return (r.a && *r.a <= lo) || (r.d && *r.d > 5.0);
        }
      };
      switch (shape) {
        case 0:
          where = "a = " + std::to_string(lo);
          break;
        case 1:
          where = "a >= " + std::to_string(lo) + " AND a < " +
                  std::to_string(hi);
          break;
        case 2:
          where = "a IN (" + std::to_string(lo) + ", " + std::to_string(hi) +
                  ")";
          break;
        case 3:
          where = "a IS NULL";
          break;
        default:
          where = "a <= " + std::to_string(lo) + " OR d > 5.0";
          break;
      }

      std::string sql = "SELECT seq FROM t WHERE " + where + " ORDER BY seq";
      auto rs = db->Query(sql);
      ASSERT_TRUE(rs.ok()) << sql << ": " << rs.status();

      std::vector<int64_t> expected;
      for (const ModelRow& r : model) {
        if (matches(r)) expected.push_back(r.seq);
      }
      ASSERT_EQ(rs->rows.size(), expected.size())
          << "round " << round << " sql: " << sql;
      for (size_t i = 0; i < expected.size(); ++i) {
        EXPECT_EQ(rs->rows[i][0].AsInt(), expected[i])
            << "round " << round << " sql: " << sql;
      }

      // Aggregate cross-check: COUNT agrees with the row set.
      auto count = db->Query("SELECT COUNT(*) FROM t WHERE " + where);
      ASSERT_TRUE(count.ok());
      EXPECT_EQ(count->rows[0][0].AsInt(),
                static_cast<int64_t>(expected.size()))
          << where;
    }

    // Random deletes keep engine and model in sync for the next queries.
    int64_t del = rng.Uniform(-5, 15);
    auto deleted = db->Execute("DELETE FROM t WHERE a = " +
                               std::to_string(del));
    ASSERT_TRUE(deleted.ok());
    int64_t model_deleted = 0;
    std::erase_if(model, [&](const ModelRow& r) {
      bool gone = r.a && *r.a == del;
      model_deleted += gone ? 1 : 0;
      return gone;
    });
    EXPECT_EQ(*deleted, model_deleted);
    auto remaining = db->Query("SELECT COUNT(*) FROM t");
    ASSERT_TRUE(remaining.ok());
    EXPECT_EQ(remaining->rows[0][0].AsInt(),
              static_cast<int64_t>(model.size()));
  }
}

TEST_F(SqlDifferentialTest, InListSemantics) {
  auto dbr = Database::Open();
  ASSERT_TRUE(dbr.ok());
  std::unique_ptr<Database> db = std::move(dbr).value();
  ASSERT_TRUE(db->Execute("CREATE TABLE t (a INT, s TEXT)").ok());
  ASSERT_TRUE(db->Execute("INSERT INTO t VALUES (1, 'x'), (2, 'y'), "
                          "(3, 'z'), (NULL, 'n')")
                  .ok());
  auto rs = db->Query("SELECT s FROM t WHERE a IN (1, 3) ORDER BY a");
  ASSERT_TRUE(rs.ok()) << rs.status();
  ASSERT_EQ(rs->rows.size(), 2u);
  EXPECT_EQ(rs->rows[0][0].AsString(), "x");
  EXPECT_EQ(rs->rows[1][0].AsString(), "z");

  rs = db->Query("SELECT s FROM t WHERE a NOT IN (1, 3) ORDER BY a");
  ASSERT_TRUE(rs.ok());
  ASSERT_EQ(rs->rows.size(), 1u);  // NULL is neither in nor not-in
  EXPECT_EQ(rs->rows[0][0].AsString(), "y");

  rs = db->Query("SELECT s FROM t WHERE s IN ('x', 'n') ORDER BY s");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->rows.size(), 2u);
}

}  // namespace
}  // namespace oxml
