// Integration tests on the XMark-style auction document — the era's
// standard XML benchmark shape. Exercises ordered bid histories, ordered
// paragraph lists and cross-referencing attributes under every encoding,
// in both query modes, plus the "place a bid" append workload.

#include <gtest/gtest.h>

#include <memory>

#include "src/core/sql_translator.h"
#include "src/core/xpath_eval.h"
#include "src/xml/xml_generator.h"
#include "src/xml/xml_parser.h"
#include "src/xml/xml_writer.h"

namespace oxml {
namespace {

class AuctionTest : public ::testing::TestWithParam<OrderEncoding> {
 protected:
  void SetUp() override {
    AuctionGeneratorOptions opts;
    opts.seed = 2002;
    opts.items_per_region = 10;
    opts.open_auctions = 12;
    opts.bids_per_auction = 5;
    opts.people = 8;
    doc_ = GenerateAuctionXml(opts);

    auto dbr = Database::Open();
    ASSERT_TRUE(dbr.ok());
    db_ = std::move(dbr).value();
    auto sr = OrderedXmlStore::Create(db_.get(), GetParam(), {.gap = 8});
    ASSERT_TRUE(sr.ok());
    store_ = std::move(sr).value();
    ASSERT_TRUE(store_->LoadDocument(*doc_).ok());
  }

  std::unique_ptr<XmlDocument> doc_;
  std::unique_ptr<Database> db_;
  std::unique_ptr<OrderedXmlStore> store_;
};

TEST_P(AuctionTest, RoundTrip) {
  auto rebuilt = store_->ReconstructDocument();
  ASSERT_TRUE(rebuilt.ok());
  EXPECT_TRUE((*rebuilt)->StructurallyEqual(*doc_));
  ASSERT_TRUE(store_->Validate().ok());
}

TEST_P(AuctionTest, OrderedQueries) {
  // XMark Q2-style: the FIRST bid of each auction (order matters).
  auto first_bids = EvaluateXPath(
      store_.get(), "//open_auction/bidder[1]/increase");
  ASSERT_TRUE(first_bids.ok());
  EXPECT_EQ(first_bids->size(), 12u);

  // The latest bid is the last bidder child.
  auto latest = EvaluateXPathStrings(
      store_.get(),
      "//open_auction[@id = 'auction3']/bidder[last()]/increase");
  ASSERT_TRUE(latest.ok());
  ASSERT_EQ(latest->size(), 1u);
  auto current = EvaluateXPathStrings(
      store_.get(), "//open_auction[@id = 'auction3']/current");
  ASSERT_TRUE(current.ok());
  EXPECT_EQ((*latest)[0], (*current)[0]) << "last bid must equal current";

  // Items per region, ordered paragraph lists.
  EXPECT_EQ(EvaluateXPath(store_.get(), "/site/regions/asia/item")->size(),
            10u);
  auto paras = EvaluateXPath(
      store_.get(),
      "/site/regions/europe/item[2]/description/parlist/listitem");
  ASSERT_TRUE(paras.ok());
  EXPECT_GE(paras->size(), 1u);

  // Cross-reference attributes.
  auto refs = EvaluateXPath(store_.get(),
                            "//bidder/personref[@person = 'person0']");
  ASSERT_TRUE(refs.ok());
  auto all_refs = EvaluateXPath(store_.get(), "//personref");
  ASSERT_TRUE(all_refs.ok());
  EXPECT_EQ(all_refs->size(), 60u);
  EXPECT_LE(refs->size(), all_refs->size());
}

TEST_P(AuctionTest, TranslationModeAgreesOnAuctionQueries) {
  for (const char* q : {
           "/site/open_auctions/open_auction/current",
           "/site/people/person[@id = 'person2']/name",
           "/site/regions/africa/item/quantity",
       }) {
    auto via_sql = EvaluateXPathViaSql(store_.get(), q);
    ASSERT_TRUE(via_sql.ok()) << q << ": " << via_sql.status();
    auto via_driver = EvaluateXPath(store_.get(), q);
    ASSERT_TRUE(via_driver.ok());
    ASSERT_EQ(via_sql->size(), via_driver->size()) << q;
    for (size_t i = 0; i < via_sql->size(); ++i) {
      EXPECT_EQ(NodeIdentity(GetParam(), (*via_sql)[i]),
                NodeIdentity(GetParam(), (*via_driver)[i]))
          << q;
    }
  }
}

TEST_P(AuctionTest, PlacingBidsAppendsInOrder) {
  // The canonical ordered-XML update of the auction workload: append a bid
  // and update <current/> — order determines the auction outcome.
  auto auction = EvaluateXPath(store_.get(),
                               "//open_auction[@id = 'auction7']");
  ASSERT_TRUE(auction.ok());
  ASSERT_EQ(auction->size(), 1u);
  auto current_node = EvaluateXPath(
      store_.get(), "//open_auction[@id = 'auction7']/current");
  ASSERT_TRUE(current_node.ok());

  // The new bid must be inserted BEFORE <current/> (which stays last).
  auto bid = ParseXml(
      "<bidder><date>2002-06-30</date>"
      "<personref person=\"person5\"/>"
      "<increase>999.5</increase></bidder>");
  ASSERT_TRUE(bid.ok());
  auto stats = store_->InsertSubtree((*current_node)[0],
                                     InsertPosition::kBefore,
                                     *(*bid)->root_element());
  ASSERT_TRUE(stats.ok()) << stats.status();

  auto current_text = EvaluateXPath(
      store_.get(), "//open_auction[@id = 'auction7']/current/text()");
  ASSERT_TRUE(current_text.ok());
  ASSERT_EQ(current_text->size(), 1u);
  ASSERT_TRUE(store_->UpdateNodeValue((*current_text)[0], "999.5").ok());

  auto latest = EvaluateXPathStrings(
      store_.get(),
      "//open_auction[@id = 'auction7']/bidder[last()]/increase");
  ASSERT_TRUE(latest.ok());
  EXPECT_EQ((*latest)[0], "999.5");
  auto current = EvaluateXPathStrings(
      store_.get(), "//open_auction[@id = 'auction7']/current");
  ASSERT_TRUE(current.ok());
  EXPECT_EQ((*current)[0], "999.5");
  ASSERT_TRUE(store_->Validate().ok());
}

TEST(AuctionGeneratorTest, DeterministicAndWellFormed) {
  AuctionGeneratorOptions opts;
  opts.seed = 5;
  auto d1 = GenerateAuctionXml(opts);
  auto d2 = GenerateAuctionXml(opts);
  EXPECT_TRUE(d1->root()->StructurallyEqual(*d2->root()));

  std::string xml = WriteXml(*d1);
  auto again = ParseXml(xml);
  ASSERT_TRUE(again.ok()) << again.status();
  EXPECT_TRUE((*again)->root()->StructurallyEqual(*d1->root()));

  XmlNode* site = d1->root_element();
  ASSERT_NE(site, nullptr);
  EXPECT_EQ(site->name(), "site");
  EXPECT_EQ(site->child_count(), 3u);  // regions, open_auctions, people
}

INSTANTIATE_TEST_SUITE_P(AllEncodings, AuctionTest,
                         ::testing::Values(OrderEncoding::kGlobal,
                                           OrderEncoding::kLocal,
                                           OrderEncoding::kDewey),
                         [](const auto& info) {
                           return OrderEncodingToString(info.param);
                         });

}  // namespace
}  // namespace oxml
