#ifndef OXML_CORE_COLLECTION_H_
#define OXML_CORE_COLLECTION_H_

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/result.h"
#include "src/core/ordered_store.h"
#include "src/core/xpath.h"

namespace oxml {

/// A named collection of XML documents inside one relational database —
/// the multi-document setting of the paper. Each document gets its own
/// node table (named `<prefix>_<docid>`) under the collection's encoding,
/// plus a catalog relation mapping names to tables:
///
///   <prefix>_catalog(doc_id INT, name TEXT, table_name TEXT, nodes INT)
class DocumentCollection {
 public:
  /// Creates the catalog table. `prefix` namespaces this collection's
  /// relations within the database.
  static Result<std::unique_ptr<DocumentCollection>> Create(
      Database* db, OrderEncoding encoding, const StoreOptions& base_options,
      std::string prefix = "coll");

  /// Re-attaches to a collection previously created in `db` (typically
  /// after reopening a file-backed database): reads the catalog relation
  /// and attaches a store to every listed document table.
  static Result<std::unique_ptr<DocumentCollection>> Attach(
      Database* db, OrderEncoding encoding, const StoreOptions& base_options,
      std::string prefix = "coll");

  /// Shreds `doc` under `name`; AlreadyExists if the name is taken.
  Result<OrderedXmlStore*> AddDocument(const std::string& name,
                                       const XmlDocument& doc);

  /// The store of one document, or NotFound.
  Result<OrderedXmlStore*> GetDocument(const std::string& name) const;

  /// Drops the document's node table and catalog entry.
  Status RemoveDocument(const std::string& name);

  /// Document names, alphabetically.
  std::vector<std::string> DocumentNames() const;
  size_t size() const { return stores_.size(); }

  /// One result of a collection-wide query.
  struct Match {
    std::string document;
    StoredNode node;
  };

  /// Evaluates `xpath` against every document (documents in name order,
  /// nodes in document order within each).
  Result<std::vector<Match>> QueryAll(std::string_view xpath) const;

  OrderEncoding encoding() const { return encoding_; }

 private:
  DocumentCollection(Database* db, OrderEncoding encoding,
                     StoreOptions base_options, std::string prefix)
      : db_(db),
        encoding_(encoding),
        base_options_(std::move(base_options)),
        prefix_(std::move(prefix)) {}

  std::string catalog_table() const { return prefix_ + "_catalog"; }

  Database* db_;
  OrderEncoding encoding_;
  StoreOptions base_options_;
  std::string prefix_;
  int64_t next_doc_id_ = 1;
  std::map<std::string, std::unique_ptr<OrderedXmlStore>> stores_;
};

}  // namespace oxml

#endif  // OXML_CORE_COLLECTION_H_
