#ifndef OXML_CORE_ORDERED_STORE_H_
#define OXML_CORE_ORDERED_STORE_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/result.h"
#include "src/core/order_encoding.h"
#include "src/core/parallel_shred.h"
#include "src/relational/database.h"
#include "src/xml/xml_node.h"

namespace oxml {

/// A node test applied along an axis (XPath name tests).
struct NodeTest {
  enum class Kind : uint8_t {
    kAnyElement,  // '*'
    kTag,         // element with a specific tag
    kText,        // text()
    kAnyNode,     // node(): any non-attribute node
  };

  Kind kind = Kind::kAnyElement;
  std::string tag;

  static NodeTest AnyElement() { return {Kind::kAnyElement, ""}; }
  static NodeTest Tag(std::string t) { return {Kind::kTag, std::move(t)}; }
  static NodeTest Text() { return {Kind::kText, ""}; }
  static NodeTest AnyNode() { return {Kind::kAnyNode, ""}; }

  bool Matches(XmlNodeKind node_kind, const std::string& node_tag) const;

  /// SQL predicate fragment over columns `kind`/`tag` (empty = no filter).
  std::string SqlCondition() const;

  /// Parameterized variant: the tag becomes a '?' marker whose value is
  /// appended to `params`, so every tag test shares one SQL text (and thus
  /// one cached plan). The kind comparison stays inline — it is a closed
  /// set that selects different access paths, so distinct cache keys per
  /// kind are what we want.
  std::string SqlConditionP(Row* params) const;
};

/// One XML document stored in relations under one of the three order
/// encodings. All navigation methods return nodes in document order and
/// are implemented as SQL against the underlying Database — this class is
/// the paper's "XML-to-relational mapping + query translation" layer.
///
/// `StoredNode` handles are point-in-time snapshots of a node's row. After
/// an update that renumbers (or, under the Global encoding, extends an
/// ancestor interval), previously fetched handles in the affected region
/// are stale; re-fetch them before further use. Handles of proper
/// ancestors of an insertion point remain valid.
class OrderedXmlStore {
 public:
  virtual ~OrderedXmlStore() = default;

  /// Creates the table and indexes for the chosen encoding.
  static Result<std::unique_ptr<OrderedXmlStore>> Create(
      Database* db, OrderEncoding encoding, const StoreOptions& options = {});

  /// Attaches to an already-populated node table (e.g. after reopening a
  /// file-backed database with DatabaseOptions::open_existing). The table
  /// must exist with this encoding's schema; NotFound otherwise.
  static Result<std::unique_ptr<OrderedXmlStore>> Attach(
      Database* db, OrderEncoding encoding, const StoreOptions& options = {});

  OrderEncoding encoding() const { return encoding_; }
  const StoreOptions& options() const { return options_; }
  const std::string& table_name() const { return options_.table_name; }
  Database* db() const { return db_; }

  // ------------------------------------------------------------ bulk load

  /// Shreds `doc` into the node table (document must be loaded into an
  /// empty store). Runs as one transaction: a crash mid-load leaves the
  /// store empty, never partially shredded.
  ///
  /// With DatabaseOptions::enable_parallel_load the document is cut into
  /// disjoint subtrees (PartitionDocument), shredded into per-worker
  /// sorted runs on the database's load pool, k-way merged, and installed
  /// through the bulk path (Database::BulkLoadRows). Order keys are
  /// assigned deterministically from the partition pre-pass, so the
  /// resulting table is byte-identical to a serial load; only the shred
  /// phase runs outside the exclusive statement latch (concurrent readers
  /// of other tables proceed while the document is being shredded).
  Status LoadDocument(const XmlDocument& doc);

  /// Rebuilds the complete document from the relations.
  virtual Result<std::unique_ptr<XmlDocument>> ReconstructDocument() = 0;

  /// Rebuilds the subtree rooted at `node` (element or leaf).
  virtual Result<std::unique_ptr<XmlNode>> ReconstructSubtree(
      const StoredNode& node) = 0;

  // ----------------------------------------------------------- navigation

  /// The root element.
  virtual Result<StoredNode> Root() = 0;

  /// Child axis, in sibling order.
  virtual Result<std::vector<StoredNode>> Children(const StoredNode& node,
                                                   const NodeTest& test) = 0;

  /// Descendant axis, in document order.
  virtual Result<std::vector<StoredNode>> Descendants(
      const StoredNode& node, const NodeTest& test) = 0;

  /// Following-sibling axis, in sibling order.
  virtual Result<std::vector<StoredNode>> FollowingSiblings(
      const StoredNode& node, const NodeTest& test) = 0;

  /// Preceding-sibling axis, in sibling (document) order.
  virtual Result<std::vector<StoredNode>> PrecedingSiblings(
      const StoredNode& node, const NodeTest& test) = 0;

  /// Attribute nodes of an element, optionally restricted to one name.
  virtual Result<std::vector<StoredNode>> Attributes(
      const StoredNode& node, std::string_view name) = 0;

  /// Parent node; NotFound for the root.
  virtual Result<StoredNode> Parent(const StoredNode& node) = 0;

  /// Sorts `nodes` into document order. Cheap for Global (one integer key)
  /// and Dewey (byte order); requires ancestor-path reconstruction for
  /// Local — exactly the asymmetry the paper measures.
  virtual Status SortDocumentOrder(std::vector<StoredNode>* nodes) = 0;

  /// Concatenated text of the node's subtree (XPath string value).
  virtual Result<std::string> StringValue(const StoredNode& node) = 0;

  // -------------------------------------------------------------- updates

  /// Inserts `subtree` at the given position relative to `ref`, preserving
  /// document order; renumbers existing rows when the sparse numbering has
  /// no free ordinal (cost reported in UpdateStats). The whole operation —
  /// renumbering sweep included — is one transaction: it is atomic under
  /// crashes and rolled back entirely on failure.
  Result<UpdateStats> InsertSubtree(const StoredNode& ref, InsertPosition pos,
                                    const XmlNode& subtree);

  /// Removes the subtree rooted at `node`, atomically (one transaction).
  Result<UpdateStats> DeleteSubtree(const StoredNode& node);

  /// Replaces the value of a text, comment, PI or attribute node. Value
  /// updates never touch order keys — under every encoding they are a
  /// single-row UPDATE, one of the paper's arguments for order-as-data.
  Result<UpdateStats> UpdateNodeValue(const StoredNode& node,
                                      std::string_view new_value);

  /// Replaces the value of an existing attribute of `element`. Returns
  /// NotFound when the element has no such attribute (adding attributes is
  /// a structural update: re-insert the element).
  Result<UpdateStats> UpdateAttributeValue(const StoredNode& element,
                                           std::string_view name,
                                           std::string_view new_value);

  /// Relocates the subtree rooted at `source` to the given position
  /// relative to `ref` (reconstruct + delete + insert; `ref` must not lie
  /// inside the moved subtree).
  Result<UpdateStats> MoveSubtree(const StoredNode& source,
                                  const StoredNode& ref, InsertPosition pos);

  /// True if `node` lies strictly inside the subtree rooted at `ancestor`.
  virtual Result<bool> IsDescendantOf(const StoredNode& node,
                                      const StoredNode& ancestor) = 0;

  /// SQL condition identifying exactly this node's row (e.g. "ord = 42",
  /// "id = 7", "path = x'0105'").
  virtual std::string KeyCondition(const StoredNode& node) const = 0;

  /// Parameterized KeyCondition: emits "ord = ?" etc. and appends the key
  /// value(s) to `params`.
  virtual std::string KeyConditionP(const StoredNode& node,
                                    Row* params) const = 0;

  // -------------------------------------------------------- verification

  /// Scans the node table and checks every structural invariant of the
  /// encoding (key uniqueness, parent existence, interval nesting /
  /// prefix consistency, depth bookkeeping). Intended for tests and
  /// debugging; O(n log n).
  virtual Status Validate() = 0;

  // ------------------------------------------------- relational interface

  /// The canonical column list of this store's node table (the layout
  /// expected by NodeFromRow), e.g. "ord, eord, pord, depth, kind, tag,
  /// val" for the Global encoding.
  virtual const char* NodeColumns() const = 0;

  /// Materializes a StoredNode from a result row laid out per
  /// NodeColumns(). Used by callers that run their own SQL (e.g. the
  /// whole-path translator).
  virtual StoredNode NodeFromRow(const Row& row) const = 0;

  // --------------------------------------------------------- conveniences

  /// Number of node rows in the store.
  Result<int64_t> NodeCount();

  /// The idx-th (0-based) child matching `test`; OutOfRange if absent.
  Result<StoredNode> ChildAt(const StoredNode& parent, const NodeTest& test,
                             size_t idx);

  /// Navigates a child-index path from the root, e.g. {0, 2} = first
  /// child's third child (indexes over *all* non-attribute children).
  Result<StoredNode> NodeAtPath(const std::vector<size_t>& child_indexes);

 protected:
  OrderedXmlStore(Database* db, OrderEncoding encoding, StoreOptions options)
      : db_(db), encoding_(encoding), options_(std::move(options)) {}

  /// Encoding-specific bodies of the public mutation entry points, which
  /// wrap them in a TxnScope (template method). When the caller already
  /// opened a transaction, the scope nests flatly and the outer transaction
  /// decides the outcome.
  virtual Status DoLoadDocument(const XmlDocument& doc) = 0;
  virtual Result<UpdateStats> DoInsertSubtree(const StoredNode& ref,
                                              InsertPosition pos,
                                              const XmlNode& subtree) = 0;
  virtual Result<UpdateStats> DoDeleteSubtree(const StoredNode& node) = 0;

  // ------------------------------------------------------- parallel loading

  /// Shreds one partition into encoded rows (document order within the
  /// unit), assigning exactly the order keys the serial shredder would
  /// have. Must not mutate store state: ParallelShredMerge calls it from
  /// several threads at once on distinct units.
  virtual Status EmitUnitRows(const ShredUnit& unit,
                              std::vector<Row>* rows) = 0;

  /// How this encoding's first column orders for the k-way merge.
  virtual LoadKeyKind LoadKey() const = 0;

  /// Called once after a successful parallel load with the number of rows
  /// installed; stores with allocator state advance it here (the Local
  /// encoding's id counter).
  virtual void OnParallelLoadComplete(uint64_t rows_loaded) {
    (void)rows_loaded;
  }

  /// Runs a SELECT, counting it into `stats` when provided.
  Result<ResultSet> Sql(const std::string& sql, UpdateStats* stats = nullptr);

  /// Runs a DML statement, returning affected rows.
  Result<int64_t> Dml(const std::string& sql, UpdateStats* stats = nullptr);

  /// Prepared variants: `sql` contains '?' markers bound positionally from
  /// `params`. Because identical SQL texts share a cached plan, the axis
  /// methods pay lexer/parser/planner cost once per statement shape rather
  /// than once per call.
  Result<ResultSet> SqlP(const std::string& sql, Row params,
                         UpdateStats* stats = nullptr);
  Result<int64_t> DmlP(const std::string& sql, Row params,
                       UpdateStats* stats = nullptr);

 private:
  /// The enable_parallel_load body of LoadDocument: partition + parallel
  /// shred + merge (no statement latch), then bulk install in one
  /// transaction.
  Status ParallelLoadDocument(const XmlDocument& doc);

 protected:
  Database* db_;
  OrderEncoding encoding_;
  StoreOptions options_;
};

/// Literal helpers for SQL generation.
std::string IntLit(int64_t v);
std::string BlobLit(std::string_view bytes);

}  // namespace oxml

#endif  // OXML_CORE_ORDERED_STORE_H_
