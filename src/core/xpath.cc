#include "src/core/xpath.h"

#include <cctype>

namespace oxml {

const char* XPathCmpToString(XPathCmp op) {
  switch (op) {
    case XPathCmp::kEq:
      return "=";
    case XPathCmp::kNe:
      return "!=";
    case XPathCmp::kLt:
      return "<";
    case XPathCmp::kLe:
      return "<=";
    case XPathCmp::kGt:
      return ">";
    case XPathCmp::kGe:
      return ">=";
  }
  return "?";
}

std::string XPathPredicate::ToString() const {
  switch (kind) {
    case Kind::kPosition:
      if (op == XPathCmp::kEq) return "[" + std::to_string(position) + "]";
      return std::string("[position() ") + XPathCmpToString(op) + " " +
             std::to_string(position) + "]";
    case Kind::kLast:
      return "[last()]";
    case Kind::kAttribute:
      return "[@" + name + " " + XPathCmpToString(op) + " '" + literal +
             "']";
    case Kind::kHasAttribute:
      return "[@" + name + "]";
    case Kind::kChildValue:
      return "[" + name + " " + XPathCmpToString(op) + " '" + literal + "']";
    case Kind::kSelfValue:
      return std::string("[. ") + XPathCmpToString(op) + " '" + literal +
             "']";
  }
  return "[?]";
}

std::string XPathStep::ToString() const {
  std::string out;
  switch (axis) {
    case Axis::kChild:
      break;
    case Axis::kDescendant:
      break;  // rendered by the query's separator
    case Axis::kFollowingSibling:
      out += "following-sibling::";
      break;
    case Axis::kPrecedingSibling:
      out += "preceding-sibling::";
      break;
    case Axis::kAttribute:
      out += "@" + (attribute_name.empty() ? "*" : attribute_name);
      for (const auto& p : predicates) out += p.ToString();
      return out;
    case Axis::kParent:
      out += "parent::";
      break;
    case Axis::kAncestor:
      out += "ancestor::";
      break;
  }
  switch (test.kind) {
    case NodeTest::Kind::kAnyElement:
      out += "*";
      break;
    case NodeTest::Kind::kTag:
      out += test.tag;
      break;
    case NodeTest::Kind::kText:
      out += "text()";
      break;
    case NodeTest::Kind::kAnyNode:
      out += "node()";
      break;
  }
  for (const auto& p : predicates) out += p.ToString();
  return out;
}

std::string XPathQuery::ToString() const {
  std::string out;
  for (const XPathStep& s : steps) {
    out += s.axis == XPathStep::Axis::kDescendant ? "//" : "/";
    out += s.ToString();
  }
  return out;
}

namespace {

class XPathParser {
 public:
  explicit XPathParser(std::string_view input) : input_(input) {}

  Result<XPathQuery> Parse() {
    XPathQuery query;
    if (input_.empty() || input_[0] != '/') {
      return Error("XPath must be absolute (start with '/')");
    }
    while (!AtEnd()) {
      XPathStep::Axis sep_axis = XPathStep::Axis::kChild;
      if (Match("//")) {
        sep_axis = XPathStep::Axis::kDescendant;
      } else if (Match("/")) {
        sep_axis = XPathStep::Axis::kChild;
      } else {
        return Error("expected '/' between steps");
      }
      OXML_ASSIGN_OR_RETURN(XPathStep step, ParseStep(sep_axis));
      query.steps.push_back(std::move(step));
    }
    if (query.steps.empty()) return Error("empty path");
    return query;
  }

 private:
  bool AtEnd() const { return pos_ >= input_.size(); }
  char Peek() const { return input_[pos_]; }

  bool Match(std::string_view token) {
    if (input_.substr(pos_).substr(0, token.size()) != token) return false;
    pos_ += token.size();
    return true;
  }

  Status Error(const std::string& msg) const {
    return Status::ParseError("XPath: " + msg + " at offset " +
                              std::to_string(pos_));
  }

  static bool IsNameChar(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == '-' || c == ':';
  }

  Result<std::string> ParseName() {
    size_t start = pos_;
    while (!AtEnd() && IsNameChar(Peek())) ++pos_;
    if (pos_ == start) return Error("expected a name");
    return std::string(input_.substr(start, pos_ - start));
  }

  void SkipSpace() {
    while (!AtEnd() && Peek() == ' ') ++pos_;
  }

  Result<XPathStep> ParseStep(XPathStep::Axis sep_axis) {
    XPathStep step;
    step.axis = sep_axis;

    if (Match("@")) {
      step.axis = XPathStep::Axis::kAttribute;
      if (Match("*")) {
        step.attribute_name.clear();
      } else {
        OXML_ASSIGN_OR_RETURN(step.attribute_name, ParseName());
      }
      return step;  // attribute steps take no predicates here
    }

    // '..' abbreviation = parent::node().
    if (Match("..")) {
      step.axis = XPathStep::Axis::kParent;
      step.test = NodeTest::AnyNode();
      while (Match("[")) {
        OXML_ASSIGN_OR_RETURN(XPathPredicate pred, ParsePredicate());
        step.predicates.push_back(std::move(pred));
        if (!Match("]")) return Error("expected ']'");
      }
      return step;
    }

    // Named axes (child:: is the default and may be written explicitly).
    if (Match("following-sibling::")) {
      step.axis = XPathStep::Axis::kFollowingSibling;
    } else if (Match("parent::")) {
      step.axis = XPathStep::Axis::kParent;
    } else if (Match("ancestor::")) {
      step.axis = XPathStep::Axis::kAncestor;
    } else if (Match("preceding-sibling::")) {
      step.axis = XPathStep::Axis::kPrecedingSibling;
    } else if (Match("attribute::")) {
      step.axis = XPathStep::Axis::kAttribute;
      if (Match("*")) {
        step.attribute_name.clear();
      } else {
        OXML_ASSIGN_OR_RETURN(step.attribute_name, ParseName());
      }
      return step;
    } else {
      Match("child::");
    }

    if (Match("*")) {
      step.test = NodeTest::AnyElement();
    } else if (Match("text()")) {
      step.test = NodeTest::Text();
    } else if (Match("node()")) {
      step.test = NodeTest::AnyNode();
    } else {
      OXML_ASSIGN_OR_RETURN(std::string name, ParseName());
      step.test = NodeTest::Tag(std::move(name));
    }

    while (Match("[")) {
      OXML_ASSIGN_OR_RETURN(XPathPredicate pred, ParsePredicate());
      step.predicates.push_back(std::move(pred));
      if (!Match("]")) return Error("expected ']'");
    }
    return step;
  }

  Result<XPathCmp> ParseCmp() {
    SkipSpace();
    if (Match("!=")) return XPathCmp::kNe;
    if (Match("<=")) return XPathCmp::kLe;
    if (Match(">=")) return XPathCmp::kGe;
    if (Match("=")) return XPathCmp::kEq;
    if (Match("<")) return XPathCmp::kLt;
    if (Match(">")) return XPathCmp::kGt;
    return Error("expected a comparison operator");
  }

  Result<std::string> ParseLiteral() {
    SkipSpace();
    if (Match("'") || Match("\"")) {
      char quote = input_[pos_ - 1];
      size_t start = pos_;
      while (!AtEnd() && Peek() != quote) ++pos_;
      if (AtEnd()) return Error("unterminated literal");
      std::string out(input_.substr(start, pos_ - start));
      ++pos_;
      return out;
    }
    // Bare number.
    size_t start = pos_;
    while (!AtEnd() &&
           (std::isdigit(static_cast<unsigned char>(Peek())) ||
            Peek() == '.' || Peek() == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Error("expected a literal");
    return std::string(input_.substr(start, pos_ - start));
  }

  Result<int64_t> ParseInt() {
    SkipSpace();
    bool neg = Match("-");
    size_t start = pos_;
    while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
      ++pos_;
    }
    if (pos_ == start) return Error("expected an integer");
    int64_t v = 0;
    for (size_t i = start; i < pos_; ++i) v = v * 10 + (input_[i] - '0');
    return neg ? -v : v;
  }

  Result<XPathPredicate> ParsePredicate() {
    SkipSpace();
    XPathPredicate pred;
    if (Match("last()")) {
      SkipSpace();
      pred.kind = XPathPredicate::Kind::kLast;
      return pred;
    }
    if (Match("position()")) {
      pred.kind = XPathPredicate::Kind::kPosition;
      OXML_ASSIGN_OR_RETURN(pred.op, ParseCmp());
      OXML_ASSIGN_OR_RETURN(pred.position, ParseInt());
      SkipSpace();
      return pred;
    }
    if (Match("@")) {
      OXML_ASSIGN_OR_RETURN(pred.name, ParseName());
      SkipSpace();
      if (!AtEnd() && Peek() == ']') {
        pred.kind = XPathPredicate::Kind::kHasAttribute;
        return pred;
      }
      pred.kind = XPathPredicate::Kind::kAttribute;
      OXML_ASSIGN_OR_RETURN(pred.op, ParseCmp());
      OXML_ASSIGN_OR_RETURN(pred.literal, ParseLiteral());
      SkipSpace();
      return pred;
    }
    if (Match(".")) {
      pred.kind = XPathPredicate::Kind::kSelfValue;
      OXML_ASSIGN_OR_RETURN(pred.op, ParseCmp());
      OXML_ASSIGN_OR_RETURN(pred.literal, ParseLiteral());
      SkipSpace();
      return pred;
    }
    if (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
      pred.kind = XPathPredicate::Kind::kPosition;
      pred.op = XPathCmp::kEq;
      OXML_ASSIGN_OR_RETURN(pred.position, ParseInt());
      SkipSpace();
      return pred;
    }
    pred.kind = XPathPredicate::Kind::kChildValue;
    OXML_ASSIGN_OR_RETURN(pred.name, ParseName());
    OXML_ASSIGN_OR_RETURN(pred.op, ParseCmp());
    OXML_ASSIGN_OR_RETURN(pred.literal, ParseLiteral());
    SkipSpace();
    return pred;
  }

  std::string_view input_;
  size_t pos_ = 0;
};

}  // namespace

Result<XPathQuery> ParseXPath(std::string_view input) {
  XPathParser parser(input);
  return parser.Parse();
}

}  // namespace oxml
