#include "src/core/parallel_shred.h"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <queue>
#include <unordered_map>
#include <utility>

#include "src/core/dewey.h"
#include "src/relational/query_control.h"
#include "src/relational/thread_pool.h"

namespace oxml {

namespace {

/// Subtrees below this many rows are never split further: the fan-out
/// bookkeeping would cost more than a worker shredding them outright.
constexpr uint64_t kMinUnitRows = 64;

/// One post-order pass memoizing every subtree's row count, so the
/// partitioner never recomputes XmlNode::SubtreeSize along the descent
/// (which would be quadratic on deep documents).
uint64_t ComputeSizes(const XmlNode& node,
                      std::unordered_map<const XmlNode*, uint64_t>* sizes) {
  uint64_t total = 1 + node.attributes().size();
  for (const auto& child : node.children()) {
    total += ComputeSizes(*child, sizes);
  }
  (*sizes)[&node] = total;
  return total;
}

struct PartitionCtx {
  int64_t gap;
  uint64_t budget;
  const std::unordered_map<const XmlNode*, uint64_t>* sizes;
  std::vector<ShredUnit>* out;
};

void EmitUnits(const PartitionCtx& ctx, const XmlNode& node,
               uint64_t row_offset, int64_t depth, int64_t parent_row_offset,
               int64_t sibling_comp, const DeweyKey& key) {
  const uint64_t rows = ctx.sizes->at(&node);
  ShredUnit unit;
  unit.node = &node;
  unit.row_offset = row_offset;
  unit.subtree_rows = rows;
  unit.depth = depth;
  unit.parent_row_offset = parent_row_offset;
  unit.sibling_comp = sibling_comp;
  unit.dewey_path = key.Encode();
  if (rows <= ctx.budget || node.children().empty()) {
    ctx.out->push_back(std::move(unit));
    return;
  }
  // Too large for one worker: emit the element + attributes as a header
  // unit and recurse per child, threading the running DFS row offset and
  // the shared attribute+child ordinal space through the descent.
  unit.whole_subtree = false;
  ctx.out->push_back(std::move(unit));
  uint64_t child_off = row_offset + 1 + node.attributes().size();
  int64_t comp = ctx.gap * static_cast<int64_t>(node.attributes().size());
  for (const auto& child : node.children()) {
    comp += ctx.gap;
    EmitUnits(ctx, *child, child_off, depth + 1,
              static_cast<int64_t>(row_offset), comp, key.Child(comp));
    child_off += ctx.sizes->at(child.get());
  }
}

/// Cheap per-row size estimate for run sealing (exact bytes don't matter;
/// run boundaries only affect merge width, never the merged order).
size_t ApproxRowBytes(const Row& row) {
  size_t bytes = 0;
  for (const Value& v : row) {
    bytes += 16;
    if (v.type() == TypeId::kText || v.type() == TypeId::kBlob) {
      bytes += v.AsString().size();
    }
  }
  return bytes;
}

}  // namespace

std::vector<ShredUnit> PartitionDocument(const XmlDocument& doc, int64_t gap,
                                         size_t target_units) {
  std::vector<ShredUnit> units;
  std::unordered_map<const XmlNode*, uint64_t> sizes;
  uint64_t total = 0;
  for (const auto& top : doc.root()->children()) {
    total += ComputeSizes(*top, &sizes);
  }
  if (total == 0) return units;
  if (target_units == 0) target_units = 1;
  PartitionCtx ctx{gap, std::max<uint64_t>(total / target_units, kMinUnitRows),
                   &sizes, &units};
  uint64_t off = 0;
  int64_t comp = 0;
  for (const auto& top : doc.root()->children()) {
    comp += gap;
    EmitUnits(ctx, *top, off, 1, -1, comp, DeweyKey::Root(comp));
    off += sizes.at(top.get());
  }
  return units;
}

Result<std::vector<Row>> ParallelShredMerge(
    const std::vector<ShredUnit>& units, const ShredUnitEmitter& emit,
    LoadKeyKind key_kind, ThreadPool* pool, size_t run_bytes,
    uint64_t* runs_out, uint64_t* threads_out) {
  std::vector<std::vector<Row>> runs;
  std::mutex runs_mu;
  std::atomic<size_t> next_unit{0};
  std::atomic<uint64_t> workers_used{0};

  // Each worker claims increasing unit indices from the shared cursor, so
  // the rows it accumulates are strictly increasing in the load key (units
  // are listed in document order, and each unit's rows form a contiguous
  // slice of the serial key sequence). Sealing at run_bytes boundaries
  // preserves that: every pushed run is sorted by construction.
  auto worker = [&](size_t) -> Status {
    std::vector<Row> run;
    size_t bytes = 0;
    bool claimed = false;
    std::vector<Row> unit_rows;
    // Buffered runs are statement memory: charge them so a bulk load under
    // a budget fails with kResourceExhausted instead of thrashing.
    BudgetCharger budget;
    while (true) {
      size_t u = next_unit.fetch_add(1, std::memory_order_relaxed);
      if (u >= units.size()) break;
      // Unit boundaries are the load pipeline's cancellation points.
      OXML_RETURN_NOT_OK(CheckCurrentControl());
      if (!claimed) {
        claimed = true;
        workers_used.fetch_add(1, std::memory_order_relaxed);
      }
      unit_rows.clear();
      OXML_RETURN_NOT_OK(emit(units[u], &unit_rows));
      for (Row& r : unit_rows) {
        size_t row_bytes = ApproxRowBytes(r);
        bytes += row_bytes;
        OXML_RETURN_NOT_OK(budget.Add(row_bytes));
        run.push_back(std::move(r));
      }
      if (bytes >= run_bytes && !run.empty()) {
        std::lock_guard<std::mutex> lock(runs_mu);
        runs.push_back(std::move(run));
        run.clear();
        bytes = 0;
      }
    }
    if (!run.empty()) {
      std::lock_guard<std::mutex> lock(runs_mu);
      runs.push_back(std::move(run));
    }
    return Status::OK();
  };
  if (pool != nullptr) {
    OXML_RETURN_NOT_OK(pool->ParallelFor(pool->size() + 1, worker));
  } else {
    OXML_RETURN_NOT_OK(worker(0));
  }

  if (runs_out != nullptr) *runs_out = runs.size();
  if (threads_out != nullptr) {
    *threads_out = workers_used.load(std::memory_order_relaxed);
  }
  if (runs.empty()) return std::vector<Row>{};
  if (runs.size() == 1) return std::move(runs.front());

  // K-way merge by load key. Keys are globally unique (one per row of one
  // document), so the merged order is deterministic no matter how rows
  // were distributed over runs.
  auto key_less = [key_kind](const Row& a, const Row& b) {
    if (key_kind == LoadKeyKind::kInt) return a[0].AsInt() < b[0].AsInt();
    return a[0].AsString() < b[0].AsString();
  };
  struct HeapItem {
    size_t run;
    size_t pos;
  };
  auto heap_after = [&](const HeapItem& x, const HeapItem& y) {
    return key_less(runs[y.run][y.pos], runs[x.run][x.pos]);
  };
  std::priority_queue<HeapItem, std::vector<HeapItem>, decltype(heap_after)>
      heap(heap_after);
  size_t total = 0;
  for (size_t r = 0; r < runs.size(); ++r) {
    total += runs[r].size();
    if (!runs[r].empty()) heap.push(HeapItem{r, 0});
  }
  std::vector<Row> merged;
  merged.reserve(total);
  while (!heap.empty()) {
    HeapItem item = heap.top();
    heap.pop();
    merged.push_back(std::move(runs[item.run][item.pos]));
    if (item.pos + 1 < runs[item.run].size()) {
      heap.push(HeapItem{item.run, item.pos + 1});
    }
  }
  return merged;
}

}  // namespace oxml
