#include <algorithm>
#include <set>

#include "src/common/strings.h"
#include "src/core/stores.h"

namespace oxml {

namespace {

constexpr const char* kCols = "path, depth, kind, tag, val";

StoredNode FromDeweyRow(const Row& row) {
  StoredNode n;
  n.path = row[0].AsString();
  n.depth = row[1].AsInt();
  n.kind = static_cast<XmlNodeKind>(row[2].AsInt());
  n.tag = row[3].AsString();
  n.value = row[4].is_null() ? "" : row[4].AsString();
  return n;
}

/// Last ordinal component of a stored node's path.
Result<int64_t> LastComponent(const StoredNode& node) {
  OXML_ASSIGN_OR_RETURN(DeweyKey key, DeweyKey::Decode(node.path));
  return key.last();
}

}  // namespace

const char* DeweyStore::NodeColumns() const { return kCols; }

StoredNode DeweyStore::NodeFromRow(const Row& row) const {
  return FromDeweyRow(row);
}

// Index column order doubles as a sort-order claim the planner exploits:
// (tag, path) means "an equality probe on tag yields rows in path order",
// and encoded Dewey paths compare in document order — so tag scans feed
// structural joins pre-sorted and the translator's ORDER BY path elides.
Status DeweyStore::CreateTableAndIndexes() {
  const std::string& t = table_name();
  OXML_RETURN_NOT_OK(db_->Execute("CREATE TABLE " + t +
                                  " (path BLOB, depth INT, kind INT,"
                                  " tag TEXT, val TEXT)")
                         .status());
  OXML_RETURN_NOT_OK(
      db_->Execute("CREATE INDEX " + t + "_path ON " + t + " (path)")
          .status());
  OXML_RETURN_NOT_OK(
      db_->Execute("CREATE INDEX " + t + "_tag ON " + t + " (tag, path)")
          .status());
  return Status::OK();
}

void DeweyStore::ShredInto(const XmlNode& node, const DeweyKey& key,
                           std::vector<Row>* rows) {
  rows->push_back(Row{Value::Blob(key.Encode()),
                      Value::Int(static_cast<int64_t>(key.depth())),
                      Value::Int(static_cast<int64_t>(node.kind())),
                      Value::Text(node.name()), Value::Text(node.value())});
  int64_t comp = 0;
  for (const XmlAttribute& attr : node.attributes()) {
    comp += options_.gap;
    DeweyKey akey = key.Child(comp);
    rows->push_back(
        Row{Value::Blob(akey.Encode()),
            Value::Int(static_cast<int64_t>(akey.depth())),
            Value::Int(static_cast<int64_t>(XmlNodeKind::kAttribute)),
            Value::Text(attr.name), Value::Text(attr.value)});
  }
  for (const auto& child : node.children()) {
    comp += options_.gap;
    ShredInto(*child, key.Child(comp), rows);
  }
}

Status DeweyStore::BulkInsert(const std::vector<Row>& rows,
                              UpdateStats* stats) {
  OXML_ASSIGN_OR_RETURN(
      PreparedStatement ins,
      db_->Prepare("INSERT INTO " + table_name() + " (" + kCols +
                   ") VALUES (?, ?, ?, ?, ?)"));
  OXML_RETURN_NOT_OK(ins.ExecuteBatch(rows).status());
  if (stats != nullptr) {
    ++stats->statements;
    stats->nodes_inserted += static_cast<int64_t>(rows.size());
  }
  return Status::OK();
}

Status DeweyStore::DoLoadDocument(const XmlDocument& doc) {
  std::vector<Row> rows;
  int64_t comp = 0;
  for (const auto& top : doc.root()->children()) {
    comp += options_.gap;
    ShredInto(*top, DeweyKey::Root(comp), &rows);
  }
  return BulkInsert(rows, nullptr);
}

Status DeweyStore::EmitUnitRows(const ShredUnit& u, std::vector<Row>* rows) {
  // The partitioner carried this node's full Dewey key down the descent;
  // everything below just extends it exactly like the serial shredder.
  OXML_ASSIGN_OR_RETURN(DeweyKey key, DeweyKey::Decode(u.dewey_path));
  if (u.whole_subtree) {
    ShredInto(*u.node, key, rows);
    return Status::OK();
  }
  // Header unit: element + attribute rows only.
  rows->push_back(Row{Value::Blob(key.Encode()),
                      Value::Int(static_cast<int64_t>(key.depth())),
                      Value::Int(static_cast<int64_t>(u.node->kind())),
                      Value::Text(u.node->name()),
                      Value::Text(u.node->value())});
  int64_t comp = 0;
  for (const XmlAttribute& attr : u.node->attributes()) {
    comp += options_.gap;
    DeweyKey akey = key.Child(comp);
    rows->push_back(
        Row{Value::Blob(akey.Encode()),
            Value::Int(static_cast<int64_t>(akey.depth())),
            Value::Int(static_cast<int64_t>(XmlNodeKind::kAttribute)),
            Value::Text(attr.name), Value::Text(attr.value)});
  }
  return Status::OK();
}

Result<std::vector<StoredNode>> DeweyStore::Select(const std::string& where,
                                                   Row params,
                                                   const std::string& order) {
  std::string sql = std::string("SELECT ") + kCols + " FROM " + table_name();
  if (!where.empty()) sql += " WHERE " + where;
  if (!order.empty()) sql += " ORDER BY " + order;
  OXML_ASSIGN_OR_RETURN(ResultSet rs, SqlP(sql, std::move(params)));
  std::vector<StoredNode> out;
  out.reserve(rs.rows.size());
  for (const Row& row : rs.rows) out.push_back(FromDeweyRow(row));
  return out;
}

Result<StoredNode> DeweyStore::SelectOne(const std::string& where,
                                         Row params) {
  OXML_ASSIGN_OR_RETURN(std::vector<StoredNode> nodes,
                        Select(where, std::move(params), "path"));
  if (nodes.empty()) return Status::NotFound("no node matches: " + where);
  return nodes.front();
}

Result<StoredNode> DeweyStore::Root() {
  return SelectOne("depth = 1 AND kind = " +
                       IntLit(static_cast<int>(XmlNodeKind::kElement)),
                   {});
}

Result<std::vector<StoredNode>> DeweyStore::Children(const StoredNode& node,
                                                     const NodeTest& test) {
  Row params{Value::Blob(node.path),
             Value::Blob(BlobPrefixUpperBound(node.path)),
             Value::Int(node.depth + 1)};
  // Built before the Select call: SqlConditionP appends to `params`, and
  // argument evaluation order would otherwise race it against the move.
  std::string where = "path > ? AND path < ? AND depth = ? AND " +
                      test.SqlConditionP(&params);
  return Select(where, std::move(params), "path");
}

Result<std::vector<StoredNode>> DeweyStore::Descendants(
    const StoredNode& node, const NodeTest& test) {
  Row params{Value::Blob(node.path),
             Value::Blob(BlobPrefixUpperBound(node.path))};
  std::string where =
      "path > ? AND path < ? AND " + test.SqlConditionP(&params);
  return Select(where, std::move(params), "path");
}

Result<std::vector<StoredNode>> DeweyStore::FollowingSiblings(
    const StoredNode& node, const NodeTest& test) {
  OXML_ASSIGN_OR_RETURN(DeweyKey key, DeweyKey::Decode(node.path));
  Row params{Value::Blob(BlobPrefixUpperBound(node.path)),
             Value::Int(node.depth)};
  std::string where =
      "path >= ? AND depth = ? AND " + test.SqlConditionP(&params);
  if (key.depth() > 1) {
    where += " AND path < ?";
    params.push_back(Value::Blob(key.Parent().SubtreeUpperBound()));
  }
  return Select(where, std::move(params), "path");
}

Result<std::vector<StoredNode>> DeweyStore::PrecedingSiblings(
    const StoredNode& node, const NodeTest& test) {
  OXML_ASSIGN_OR_RETURN(DeweyKey key, DeweyKey::Decode(node.path));
  Row params{Value::Blob(node.path), Value::Int(node.depth)};
  std::string where =
      "path < ? AND depth = ? AND " + test.SqlConditionP(&params);
  if (key.depth() > 1) {
    where += " AND path > ?";
    params.push_back(Value::Blob(key.Parent().Encode()));
  }
  return Select(where, std::move(params), "path");
}

Result<std::vector<StoredNode>> DeweyStore::Attributes(
    const StoredNode& node, std::string_view name) {
  Row params{Value::Blob(node.path),
             Value::Blob(BlobPrefixUpperBound(node.path)),
             Value::Int(node.depth + 1)};
  std::string where = "path > ? AND path < ? AND depth = ? AND kind = " +
                      IntLit(static_cast<int>(XmlNodeKind::kAttribute));
  if (!name.empty()) {
    where += " AND tag = ?";
    params.push_back(Value::Text(std::string(name)));
  }
  return Select(where, std::move(params), "path");
}

Result<StoredNode> DeweyStore::Parent(const StoredNode& node) {
  OXML_ASSIGN_OR_RETURN(DeweyKey key, DeweyKey::Decode(node.path));
  if (key.depth() <= 1) return Status::NotFound("root has no parent");
  return SelectOne("path = ?", {Value::Blob(key.Parent().Encode())});
}

Status DeweyStore::SortDocumentOrder(std::vector<StoredNode>* nodes) {
  std::sort(nodes->begin(), nodes->end(),
            [](const StoredNode& a, const StoredNode& b) {
              return a.path < b.path;
            });
  return Status::OK();
}

Result<std::string> DeweyStore::StringValue(const StoredNode& node) {
  if (node.kind == XmlNodeKind::kText ||
      node.kind == XmlNodeKind::kAttribute ||
      node.kind == XmlNodeKind::kComment) {
    return node.value;
  }
  OXML_ASSIGN_OR_RETURN(
      ResultSet rs,
      SqlP("SELECT val FROM " + table_name() +
               " WHERE path >= ? AND path < ? AND kind = " +
               IntLit(static_cast<int>(XmlNodeKind::kText)) +
               " ORDER BY path",
           {Value::Blob(node.path),
            Value::Blob(BlobPrefixUpperBound(node.path))}));
  std::string out;
  for (const Row& row : rs.rows) out += row[0].AsString();
  return out;
}

Result<std::unique_ptr<XmlDocument>> DeweyStore::ReconstructDocument() {
  OXML_ASSIGN_OR_RETURN(std::vector<StoredNode> nodes, Select("", {}, "path"));
  auto doc = std::make_unique<XmlDocument>();
  OXML_RETURN_NOT_OK(AssembleByDepth(nodes, 1, doc->root()));
  return doc;
}

Result<std::unique_ptr<XmlNode>> DeweyStore::ReconstructSubtree(
    const StoredNode& node) {
  OXML_ASSIGN_OR_RETURN(
      std::vector<StoredNode> nodes,
      Select("path >= ? AND path < ?",
             {Value::Blob(node.path),
              Value::Blob(BlobPrefixUpperBound(node.path))},
             "path"));
  auto holder = std::make_unique<XmlNode>(XmlNodeKind::kDocument, "#holder");
  OXML_RETURN_NOT_OK(AssembleByDepth(nodes, node.depth, holder.get()));
  if (holder->child_count() != 1) {
    return Status::Internal("subtree reconstruction produced " +
                            std::to_string(holder->child_count()) + " roots");
  }
  return holder->RemoveChild(0);
}

Result<bool> DeweyStore::IsDescendantOf(const StoredNode& node,
                                        const StoredNode& ancestor) {
  return node.path.size() > ancestor.path.size() &&
         node.path.compare(0, ancestor.path.size(), ancestor.path) == 0;
}

std::string DeweyStore::KeyCondition(const StoredNode& node) const {
  return "path = " + BlobLit(node.path);
}

std::string DeweyStore::KeyConditionP(const StoredNode& node,
                                      Row* params) const {
  params->push_back(Value::Blob(node.path));
  return "path = ?";
}

Status DeweyStore::Validate() {
  OXML_ASSIGN_OR_RETURN(std::vector<StoredNode> rows, Select("", {}, "path"));
  std::set<std::string> paths;
  int roots = 0;
  std::string prev;
  bool first = true;
  for (const StoredNode& n : rows) {
    if (!first && n.path <= prev) {
      return Status::Internal("duplicate or unordered path");
    }
    first = false;
    prev = n.path;
    OXML_ASSIGN_OR_RETURN(DeweyKey key, DeweyKey::Decode(n.path));
    if (static_cast<int64_t>(key.depth()) != n.depth) {
      return Status::Internal("depth column disagrees with path " +
                              key.ToString());
    }
    paths.insert(n.path);
    if (key.depth() == 1) {
      if (n.kind == XmlNodeKind::kElement) ++roots;
    } else if (paths.count(key.Parent().Encode()) == 0) {
      return Status::Internal("missing parent for path " + key.ToString());
    }
  }
  if (roots != 1) {
    return Status::Internal("expected exactly 1 root element, found " +
                            std::to_string(roots));
  }
  return Status::OK();
}

Result<UpdateStats> DeweyStore::DoInsertSubtree(const StoredNode& ref,
                                              InsertPosition pos,
                                              const XmlNode& subtree) {
  if (ref.kind == XmlNodeKind::kAttribute) {
    return Status::InvalidArgument("cannot insert relative to an attribute");
  }
  UpdateStats stats;
  const std::string& t = table_name();
  OXML_ASSIGN_OR_RETURN(DeweyKey refk, DeweyKey::Decode(ref.path));

  DeweyKey parent_key;
  int64_t c_left = 0;
  bool have_right = false;
  StoredNode right;

  switch (pos) {
    case InsertPosition::kBefore:
    case InsertPosition::kAfter: {
      if (refk.depth() <= 1) {
        return Status::InvalidArgument(
            "cannot insert a sibling of the document root");
      }
      parent_key = refk.Parent();
      std::string parent_ub = parent_key.SubtreeUpperBound();
      if (pos == InsertPosition::kBefore) {
        right = ref;
        have_right = true;
        OXML_ASSIGN_OR_RETURN(
            std::vector<StoredNode> prev,
            Select("path > ? AND path < ? AND depth = ?",
                   {Value::Blob(parent_key.Encode()), Value::Blob(ref.path),
                    Value::Int(ref.depth)},
                   "path DESC LIMIT 1"));
        if (!prev.empty()) {
          OXML_ASSIGN_OR_RETURN(c_left, LastComponent(prev.front()));
        }
      } else {
        c_left = refk.last();
        OXML_ASSIGN_OR_RETURN(
            std::vector<StoredNode> next,
            Select("path >= ? AND path < ? AND depth = ?",
                   {Value::Blob(BlobPrefixUpperBound(ref.path)),
                    Value::Blob(parent_ub), Value::Int(ref.depth)},
                   "path LIMIT 1"));
        if (!next.empty()) {
          right = next.front();
          have_right = true;
        }
      }
      break;
    }
    case InsertPosition::kFirstChild: {
      parent_key = refk;
      OXML_ASSIGN_OR_RETURN(
          std::vector<StoredNode> attrs,
          Select("path > ? AND path < ? AND depth = ? AND kind = " +
                     IntLit(static_cast<int>(XmlNodeKind::kAttribute)),
                 {Value::Blob(ref.path),
                  Value::Blob(BlobPrefixUpperBound(ref.path)),
                  Value::Int(ref.depth + 1)},
                 "path DESC LIMIT 1"));
      if (!attrs.empty()) {
        OXML_ASSIGN_OR_RETURN(c_left, LastComponent(attrs.front()));
      }
      OXML_ASSIGN_OR_RETURN(
          std::vector<StoredNode> kids,
          Select("path > ? AND path < ? AND depth = ? AND kind <> " +
                     IntLit(static_cast<int>(XmlNodeKind::kAttribute)),
                 {Value::Blob(ref.path),
                  Value::Blob(BlobPrefixUpperBound(ref.path)),
                  Value::Int(ref.depth + 1)},
                 "path LIMIT 1"));
      if (!kids.empty()) {
        right = kids.front();
        have_right = true;
      }
      break;
    }
    case InsertPosition::kLastChild: {
      parent_key = refk;
      OXML_ASSIGN_OR_RETURN(
          std::vector<StoredNode> last,
          Select("path > ? AND path < ? AND depth = ?",
                 {Value::Blob(ref.path),
                  Value::Blob(BlobPrefixUpperBound(ref.path)),
                  Value::Int(ref.depth + 1)},
                 "path DESC LIMIT 1"));
      if (!last.empty()) {
        OXML_ASSIGN_OR_RETURN(c_left, LastComponent(last.front()));
      }
      break;
    }
  }
  stats.statements += 2;  // neighbor resolution

  int64_t slot;
  if (!have_right) {
    slot = c_left + options_.gap;
  } else {
    OXML_ASSIGN_OR_RETURN(int64_t c_right, LastComponent(right));
    if (c_right - c_left > 1) {
      slot = c_left + (c_right - c_left) / 2;
    } else {
      // Renumber: shift the ordinal of the right neighbor and of every
      // following sibling up by one gap. Every row in those siblings'
      // subtrees gets a new path — the Dewey insertion cost the paper
      // reports. Processing from the last sibling down keeps intermediate
      // states collision-free (each key moves strictly upward into
      // vacated space).
      Row shift_params{Value::Blob(right.path), Value::Int(right.depth)};
      std::string shift_where = "path >= ? AND depth = ?";
      if (!parent_key.empty()) {
        shift_where += " AND path < ?";
        shift_params.push_back(Value::Blob(parent_key.SubtreeUpperBound()));
      }
      OXML_ASSIGN_OR_RETURN(
          std::vector<StoredNode> to_shift,
          Select(shift_where, std::move(shift_params), "path DESC"));
      ++stats.statements;
      // The per-row path rewrites run through one prepared UPDATE; the
      // (new, old) pairs are generated in the same order the per-row
      // statements used to execute, so intermediate states stay
      // collision-free.
      OXML_ASSIGN_OR_RETURN(
          PreparedStatement move_row,
          db_->Prepare("UPDATE " + t + " SET path = ? WHERE path = ?"));
      for (const StoredNode& sib : to_shift) {
        OXML_ASSIGN_OR_RETURN(DeweyKey old_key, DeweyKey::Decode(sib.path));
        DeweyKey new_key = old_key.WithLast(old_key.last() + options_.gap);
        std::string old_prefix = old_key.Encode();
        std::string new_prefix = new_key.Encode();
        // Rewrite the sibling's whole subtree, prefix-substituting keys.
        OXML_ASSIGN_OR_RETURN(
            ResultSet subtree_rows,
            SqlP("SELECT path FROM " + t +
                     " WHERE path >= ? AND path < ? ORDER BY path",
                 {Value::Blob(old_prefix),
                  Value::Blob(BlobPrefixUpperBound(old_prefix))},
                 &stats));
        std::vector<Row> moves;
        moves.reserve(subtree_rows.rows.size());
        for (const Row& row : subtree_rows.rows) {
          const std::string& old_path = row[0].AsString();
          moves.push_back(
              Row{Value::Blob(new_prefix + old_path.substr(old_prefix.size())),
                  Value::Blob(old_path)});
        }
        OXML_ASSIGN_OR_RETURN(int64_t changed, move_row.ExecuteBatch(moves));
        stats.statements += static_cast<int64_t>(moves.size());
        stats.rows_renumbered += changed;
      }
      stats.renumbering_triggered = true;
      slot = c_left + (c_right + options_.gap - c_left) / 2;
    }
  }

  std::vector<Row> rows;
  ShredInto(subtree, parent_key.Child(slot), &rows);
  OXML_RETURN_NOT_OK(BulkInsert(rows, &stats));
  return stats;
}

Result<UpdateStats> DeweyStore::DoDeleteSubtree(const StoredNode& node) {
  UpdateStats stats;
  OXML_ASSIGN_OR_RETURN(
      int64_t deleted,
      DmlP("DELETE FROM " + table_name() + " WHERE path >= ? AND path < ?",
           {Value::Blob(node.path),
            Value::Blob(BlobPrefixUpperBound(node.path))},
           &stats));
  stats.nodes_deleted = deleted;
  return stats;
}

}  // namespace oxml
