#include "src/core/ordered_store.h"

#include "src/common/strings.h"
#include "src/core/stores.h"
#include "src/relational/thread_pool.h"

namespace oxml {

const char* OrderEncodingToString(OrderEncoding encoding) {
  switch (encoding) {
    case OrderEncoding::kGlobal:
      return "Global";
    case OrderEncoding::kLocal:
      return "Local";
    case OrderEncoding::kDewey:
      return "Dewey";
  }
  return "Unknown";
}

bool NodeTest::Matches(XmlNodeKind node_kind, const std::string& node_tag)
    const {
  switch (kind) {
    case Kind::kAnyElement:
      return node_kind == XmlNodeKind::kElement;
    case Kind::kTag:
      return node_kind == XmlNodeKind::kElement && node_tag == tag;
    case Kind::kText:
      return node_kind == XmlNodeKind::kText;
    case Kind::kAnyNode:
      return node_kind != XmlNodeKind::kAttribute;
  }
  return false;
}

std::string NodeTest::SqlCondition() const {
  switch (kind) {
    case Kind::kAnyElement:
      return "kind = " + IntLit(static_cast<int>(XmlNodeKind::kElement));
    case Kind::kTag:
      return "kind = " + IntLit(static_cast<int>(XmlNodeKind::kElement)) +
             " AND tag = " + SqlQuote(tag);
    case Kind::kText:
      return "kind = " + IntLit(static_cast<int>(XmlNodeKind::kText));
    case Kind::kAnyNode:
      return "kind <> " + IntLit(static_cast<int>(XmlNodeKind::kAttribute));
  }
  return "";
}

std::string NodeTest::SqlConditionP(Row* params) const {
  if (kind == Kind::kTag) {
    params->push_back(Value::Text(tag));
    return "kind = " + IntLit(static_cast<int>(XmlNodeKind::kElement)) +
           " AND tag = ?";
  }
  return SqlCondition();  // no tag => no variable part
}

Status AssembleByDepth(const std::vector<StoredNode>& nodes,
                       int64_t base_depth, XmlNode* root) {
  // stack[i] holds the open node at depth (base_depth + i - 1); stack[0] is
  // the container. A row at depth d attaches to stack[d - base_depth].
  std::vector<XmlNode*> stack{root};
  for (const StoredNode& n : nodes) {
    if (n.depth < base_depth) {
      return Status::Internal("inconsistent depth while reconstructing");
    }
    size_t level = static_cast<size_t>(n.depth - base_depth);
    if (level + 1 > stack.size()) {
      return Status::Internal("missing ancestor while reconstructing");
    }
    stack.resize(level + 1);
    XmlNode* parent = stack.back();
    switch (n.kind) {
      case XmlNodeKind::kAttribute:
        parent->SetAttribute(n.tag, n.value);
        break;
      case XmlNodeKind::kElement: {
        XmlNode* e = parent->AppendChild(XmlNode::Element(n.tag));
        stack.push_back(e);
        break;
      }
      case XmlNodeKind::kText:
        parent->AppendChild(XmlNode::Text(n.value));
        break;
      case XmlNodeKind::kComment:
        parent->AppendChild(XmlNode::Comment(n.value));
        break;
      case XmlNodeKind::kProcessingInstruction:
        parent->AppendChild(XmlNode::ProcessingInstruction(n.tag, n.value));
        break;
      case XmlNodeKind::kDocument:
        return Status::Internal("unexpected document row");
    }
  }
  return Status::OK();
}

std::string IntLit(int64_t v) { return std::to_string(v); }

std::string BlobLit(std::string_view bytes) {
  return "x'" + ToHex(bytes) + "'";
}

namespace {

std::unique_ptr<OrderedXmlStore> NewStore(Database* db,
                                          OrderEncoding encoding,
                                          const StoreOptions& options) {
  switch (encoding) {
    case OrderEncoding::kGlobal:
      return std::make_unique<GlobalStore>(db, options);
    case OrderEncoding::kLocal:
      return std::make_unique<LocalStore>(db, options);
    case OrderEncoding::kDewey:
      return std::make_unique<DeweyStore>(db, options);
  }
  return nullptr;
}

}  // namespace

Result<std::unique_ptr<OrderedXmlStore>> OrderedXmlStore::Create(
    Database* db, OrderEncoding encoding, const StoreOptions& options) {
  if (options.gap < 1) {
    return Status::InvalidArgument("gap must be >= 1");
  }
  std::unique_ptr<OrderedXmlStore> store = NewStore(db, encoding, options);
  OXML_RETURN_NOT_OK(
      static_cast<StoreBase*>(store.get())->CreateTableAndIndexes());
  return store;
}

Result<std::unique_ptr<OrderedXmlStore>> OrderedXmlStore::Attach(
    Database* db, OrderEncoding encoding, const StoreOptions& options) {
  if (options.gap < 1) {
    return Status::InvalidArgument("gap must be >= 1");
  }
  std::unique_ptr<OrderedXmlStore> store = NewStore(db, encoding, options);
  TableInfo* table = db->GetTable(options.table_name);
  if (table == nullptr) {
    return Status::NotFound("no node table '" + options.table_name +
                            "' in this database");
  }
  // Verify the table has this encoding's column layout.
  std::vector<std::string> want = Split(store->NodeColumns(), ',');
  if (table->schema().size() != want.size()) {
    return Status::InvalidArgument("table '" + options.table_name +
                                   "' does not match the " +
                                   std::string(OrderEncodingToString(
                                       encoding)) +
                                   " encoding schema");
  }
  for (size_t i = 0; i < want.size(); ++i) {
    if (table->schema().column(i).name != Trim(want[i])) {
      return Status::InvalidArgument(
          "table '" + options.table_name + "' column " + std::to_string(i) +
          " is '" + table->schema().column(i).name + "', expected '" +
          Trim(want[i]) + "'");
    }
  }
  OXML_RETURN_NOT_OK(
      static_cast<StoreBase*>(store.get())->InitializeExisting());
  return store;
}

Result<ResultSet> OrderedXmlStore::Sql(const std::string& sql,
                                       UpdateStats* stats) {
  if (stats != nullptr) ++stats->statements;
  return db_->Query(sql);
}

Result<int64_t> OrderedXmlStore::Dml(const std::string& sql,
                                     UpdateStats* stats) {
  if (stats != nullptr) ++stats->statements;
  return db_->Execute(sql);
}

Result<ResultSet> OrderedXmlStore::SqlP(const std::string& sql, Row params,
                                        UpdateStats* stats) {
  if (stats != nullptr) ++stats->statements;
  // One-shot parameterized path: the plan cache dedupes by text and QueryP
  // carries the bindings per-execution, so concurrent readers of the same
  // store never clobber each other's parameters.
  return db_->QueryP(sql, std::move(params));
}

Result<int64_t> OrderedXmlStore::DmlP(const std::string& sql, Row params,
                                      UpdateStats* stats) {
  if (stats != nullptr) ++stats->statements;
  return db_->ExecuteP(sql, std::move(params));
}

Status OrderedXmlStore::LoadDocument(const XmlDocument& doc) {
  if (db_->options().enable_parallel_load) {
    return ParallelLoadDocument(doc);
  }
  TxnScope txn(db_);
  OXML_RETURN_NOT_OK(txn.begin_status());
  OXML_RETURN_NOT_OK(DoLoadDocument(doc));
  return txn.Commit();
}

Status OrderedXmlStore::ParallelLoadDocument(const XmlDocument& doc) {
  ThreadPool* pool = db_->load_pool();
  // A few units per worker keeps the morsel scheduler busy without
  // shredding the document into confetti.
  const size_t workers = pool != nullptr ? pool->size() + 1 : 1;
  std::vector<ShredUnit> units =
      PartitionDocument(doc, options_.gap, workers * 4);

  // Shred phase: pure CPU over the parsed DOM, deliberately outside the
  // exclusive statement latch so a long load does not block concurrent
  // readers of other tables. Per-worker runs come back sorted; the k-way
  // merge restores the exact serial document-order row stream.
  uint64_t runs = 0;
  uint64_t threads = 0;
  OXML_ASSIGN_OR_RETURN(
      std::vector<Row> rows,
      ParallelShredMerge(
          units,
          [this](const ShredUnit& u, std::vector<Row>* out) {
            return EmitUnitRows(u, out);
          },
          LoadKey(), pool, db_->options().load_run_bytes, &runs, &threads));

  // Install phase: one transaction through the bulk path (tail-extended
  // heap + bottom-up index builds); the WAL gets every dirtied page image
  // followed by a single commit record.
  TxnScope txn(db_);
  OXML_RETURN_NOT_OK(txn.begin_status());
  OXML_RETURN_NOT_OK(db_->BulkLoadRows(table_name(), rows).status());
  OXML_RETURN_NOT_OK(txn.Commit());

  // Load counters publish only after the install transaction commits: a
  // failed or rolled-back install loads nothing, and stats claiming
  // otherwise would misreport every fault-injected run.
  ExecStats* stats = db_->stats();
  stats->rows_shredded += rows.size();
  stats->runs_merged += runs;
  stats->load_threads_used.UpdateMax(threads);
  OnParallelLoadComplete(rows.size());
  return Status::OK();
}

Result<UpdateStats> OrderedXmlStore::InsertSubtree(const StoredNode& ref,
                                                   InsertPosition pos,
                                                   const XmlNode& subtree) {
  TxnScope txn(db_);
  OXML_RETURN_NOT_OK(txn.begin_status());
  OXML_ASSIGN_OR_RETURN(UpdateStats stats, DoInsertSubtree(ref, pos, subtree));
  OXML_RETURN_NOT_OK(txn.Commit());
  return stats;
}

Result<UpdateStats> OrderedXmlStore::DeleteSubtree(const StoredNode& node) {
  TxnScope txn(db_);
  OXML_RETURN_NOT_OK(txn.begin_status());
  OXML_ASSIGN_OR_RETURN(UpdateStats stats, DoDeleteSubtree(node));
  OXML_RETURN_NOT_OK(txn.Commit());
  return stats;
}

Result<UpdateStats> OrderedXmlStore::UpdateNodeValue(
    const StoredNode& node, std::string_view new_value) {
  switch (node.kind) {
    case XmlNodeKind::kText:
    case XmlNodeKind::kComment:
    case XmlNodeKind::kProcessingInstruction:
    case XmlNodeKind::kAttribute:
      break;
    default:
      return Status::InvalidArgument(
          "only text/comment/PI/attribute nodes carry a value; element "
          "content lives in child text nodes");
  }
  UpdateStats stats;
  Row params;
  params.push_back(Value::Text(std::string(new_value)));
  std::string key_cond = KeyConditionP(node, &params);
  OXML_ASSIGN_OR_RETURN(
      int64_t changed,
      DmlP("UPDATE " + table_name() + " SET val = ? WHERE " + key_cond,
           std::move(params), &stats));
  if (changed == 0) return Status::NotFound("node row not found (stale?)");
  return stats;
}

Result<UpdateStats> OrderedXmlStore::UpdateAttributeValue(
    const StoredNode& element, std::string_view name,
    std::string_view new_value) {
  if (element.kind != XmlNodeKind::kElement) {
    return Status::InvalidArgument("attributes belong to elements");
  }
  TxnScope txn(db_);
  OXML_RETURN_NOT_OK(txn.begin_status());
  OXML_ASSIGN_OR_RETURN(std::vector<StoredNode> attrs,
                        Attributes(element, name));
  if (attrs.empty()) {
    return Status::NotFound("element has no attribute '" +
                            std::string(name) + "'");
  }
  OXML_ASSIGN_OR_RETURN(UpdateStats stats, UpdateNodeValue(attrs[0], new_value));
  OXML_RETURN_NOT_OK(txn.Commit());
  return stats;
}

Result<UpdateStats> OrderedXmlStore::MoveSubtree(const StoredNode& source,
                                                 const StoredNode& ref,
                                                 InsertPosition pos) {
  OXML_ASSIGN_OR_RETURN(bool inside, IsDescendantOf(ref, source));
  if (inside) {
    return Status::InvalidArgument(
        "cannot move a subtree relative to one of its own descendants");
  }
  // The reference must also not BE the source for before/after moves onto
  // itself — a no-op we reject for clarity.
  if (KeyCondition(ref) == KeyCondition(source)) {
    return Status::InvalidArgument("move target equals the moved subtree");
  }
  OXML_ASSIGN_OR_RETURN(std::unique_ptr<XmlNode> subtree,
                        ReconstructSubtree(source));
  // One transaction around delete + insert: recovery can never land on the
  // intermediate state where the subtree has left its old position but not
  // yet arrived at the new one.
  TxnScope txn(db_);
  OXML_RETURN_NOT_OK(txn.begin_status());
  UpdateStats total;
  OXML_ASSIGN_OR_RETURN(UpdateStats del, DeleteSubtree(source));
  total.Add(del);
  // `ref` stays valid: it is outside the deleted subtree and deletes never
  // renumber under any encoding.
  OXML_ASSIGN_OR_RETURN(UpdateStats ins, InsertSubtree(ref, pos, *subtree));
  total.Add(ins);
  OXML_RETURN_NOT_OK(txn.Commit());
  return total;
}

Result<int64_t> OrderedXmlStore::NodeCount() {
  OXML_ASSIGN_OR_RETURN(
      ResultSet rs, Sql("SELECT COUNT(*) FROM " + table_name()));
  return rs.rows[0][0].AsInt();
}

Result<StoredNode> OrderedXmlStore::ChildAt(const StoredNode& parent,
                                            const NodeTest& test,
                                            size_t idx) {
  OXML_ASSIGN_OR_RETURN(std::vector<StoredNode> kids, Children(parent, test));
  if (idx >= kids.size()) {
    return Status::OutOfRange("child index " + std::to_string(idx) +
                              " out of range (" +
                              std::to_string(kids.size()) + " children)");
  }
  return kids[idx];
}

Result<StoredNode> OrderedXmlStore::NodeAtPath(
    const std::vector<size_t>& child_indexes) {
  OXML_ASSIGN_OR_RETURN(StoredNode node, Root());
  for (size_t idx : child_indexes) {
    OXML_ASSIGN_OR_RETURN(node, ChildAt(node, NodeTest::AnyNode(), idx));
  }
  return node;
}

}  // namespace oxml
