#include "src/core/dewey.h"

#include <algorithm>
#include <cassert>
#include <cstdint>

namespace oxml {

DeweyKey DeweyKey::Parent() const {
  assert(!components_.empty());
  std::vector<int64_t> parent(components_.begin(), components_.end() - 1);
  return DeweyKey(std::move(parent));
}

DeweyKey DeweyKey::Child(int64_t ordinal) const {
  std::vector<int64_t> child = components_;
  child.push_back(ordinal);
  return DeweyKey(std::move(child));
}

DeweyKey DeweyKey::WithLast(int64_t ordinal) const {
  assert(!components_.empty());
  std::vector<int64_t> out = components_;
  out.back() = ordinal;
  return DeweyKey(std::move(out));
}

bool DeweyKey::IsAncestorOf(const DeweyKey& other) const {
  if (components_.size() >= other.components_.size()) return false;
  return std::equal(components_.begin(), components_.end(),
                    other.components_.begin());
}

int DeweyKey::Compare(const DeweyKey& other) const {
  size_t n = std::min(components_.size(), other.components_.size());
  for (size_t i = 0; i < n; ++i) {
    if (components_[i] < other.components_[i]) return -1;
    if (components_[i] > other.components_[i]) return 1;
  }
  if (components_.size() < other.components_.size()) return -1;
  if (components_.size() > other.components_.size()) return 1;
  return 0;
}

std::string DeweyKey::Encode() const {
  std::string out;
  out.reserve(components_.size() * 3);
  for (int64_t c : components_) {
    // Internal invariant: keys built by the stores always carry positive
    // ordinals. Untrusted inputs are validated in Decode() instead.
    assert(c >= 1 && "Dewey ordinals are positive");
    uint64_t v = static_cast<uint64_t>(c);
    int nbytes = 1;
    while (nbytes < 8 && (v >> (nbytes * 8)) != 0) ++nbytes;
    out.push_back(static_cast<char>(nbytes));
    for (int shift = (nbytes - 1) * 8; shift >= 0; shift -= 8) {
      out.push_back(static_cast<char>((v >> shift) & 0xFF));
    }
  }
  return out;
}

Result<DeweyKey> DeweyKey::Decode(std::string_view bytes) {
  std::vector<int64_t> components;
  size_t i = 0;
  while (i < bytes.size()) {
    int nbytes = static_cast<unsigned char>(bytes[i]);
    if (nbytes < 1 || nbytes > 8 || i + 1 + nbytes > bytes.size()) {
      return Status::InvalidArgument("malformed Dewey key encoding");
    }
    ++i;
    uint64_t v = 0;
    for (int b = 0; b < nbytes; ++b) {
      v = (v << 8) | static_cast<unsigned char>(bytes[i + b]);
    }
    i += nbytes;
    // Decode sees untrusted bytes (disk pages, repro files), so ordinal
    // range violations must surface as a Status even in Release builds —
    // the assert in Encode() vanishes under NDEBUG. An ordinal of 0 or one
    // above INT64_MAX (the uint64 cast would go negative) breaks sibling
    // ordering and renumbering arithmetic downstream.
    if (v == 0 || v > static_cast<uint64_t>(INT64_MAX)) {
      return Status::InvalidArgument(
          "malformed Dewey key: ordinal out of range");
    }
    components.push_back(static_cast<int64_t>(v));
  }
  return DeweyKey(std::move(components));
}

std::string DeweyKey::SubtreeUpperBound() const {
  std::string out = Encode();
  out.push_back('\xFF');
  return out;
}

std::string DeweyKey::ToString() const {
  std::string out;
  for (size_t i = 0; i < components_.size(); ++i) {
    if (i > 0) out.push_back('.');
    out += std::to_string(components_[i]);
  }
  return out;
}

}  // namespace oxml
