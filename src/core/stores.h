#ifndef OXML_CORE_STORES_H_
#define OXML_CORE_STORES_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/core/dewey.h"
#include "src/core/ordered_store.h"

namespace oxml {

/// Assembles `nodes` — already in document order, with `depth` fields
/// starting at `base_depth` — into a tree under `root`. Shared by the
/// Global and Dewey reconstruction paths (both retrieve rows in document
/// order and rebuild the tree with a depth stack).
Status AssembleByDepth(const std::vector<StoredNode>& nodes,
                       int64_t base_depth, XmlNode* root);

/// Implementation base: adds the table-creation hook used by the factory.
class StoreBase : public OrderedXmlStore {
 public:
  using OrderedXmlStore::OrderedXmlStore;
  virtual Status CreateTableAndIndexes() = 0;
  /// Restores per-store state when attaching to an existing table
  /// (e.g. the local encoding's id counter).
  virtual Status InitializeExisting() { return Status::OK(); }
};

/// Global order encoding: every node carries its absolute position in
/// document order (`ord`), the largest position in its subtree (`eord`,
/// making [ord, eord] the classic region interval) and its parent's
/// position (`pord`). Document-order comparison is a single integer
/// comparison; the descendant axis is one index range scan. The price is
/// paid on insertion: all following nodes must shift when the sparse
/// numbering runs out of room.
///
///   nodes(ord, eord, pord, depth, kind, tag, val)
///   indexes: (ord), (pord, ord), (tag, ord)
class GlobalStore : public StoreBase {
 public:
  GlobalStore(Database* db, StoreOptions options)
      : StoreBase(db, OrderEncoding::kGlobal, std::move(options)) {}

  Status CreateTableAndIndexes() override;
  Result<std::unique_ptr<XmlDocument>> ReconstructDocument() override;
  Result<std::unique_ptr<XmlNode>> ReconstructSubtree(
      const StoredNode& node) override;
  Result<StoredNode> Root() override;
  Result<std::vector<StoredNode>> Children(const StoredNode& node,
                                           const NodeTest& test) override;
  Result<std::vector<StoredNode>> Descendants(const StoredNode& node,
                                              const NodeTest& test) override;
  Result<std::vector<StoredNode>> FollowingSiblings(
      const StoredNode& node, const NodeTest& test) override;
  Result<std::vector<StoredNode>> PrecedingSiblings(
      const StoredNode& node, const NodeTest& test) override;
  Result<std::vector<StoredNode>> Attributes(const StoredNode& node,
                                             std::string_view name) override;
  Result<StoredNode> Parent(const StoredNode& node) override;
  Status SortDocumentOrder(std::vector<StoredNode>* nodes) override;
  Result<std::string> StringValue(const StoredNode& node) override;
  const char* NodeColumns() const override;
  StoredNode NodeFromRow(const Row& row) const override;
  Status Validate() override;
  Result<bool> IsDescendantOf(const StoredNode& node,
                              const StoredNode& ancestor) override;
  std::string KeyCondition(const StoredNode& node) const override;
  std::string KeyConditionP(const StoredNode& node,
                            Row* params) const override;

 protected:
  Status DoLoadDocument(const XmlDocument& doc) override;
  Result<UpdateStats> DoInsertSubtree(const StoredNode& ref,
                                      InsertPosition pos,
                                      const XmlNode& subtree) override;
  Result<UpdateStats> DoDeleteSubtree(const StoredNode& node) override;
  Status EmitUnitRows(const ShredUnit& unit, std::vector<Row>* rows) override;
  LoadKeyKind LoadKey() const override { return LoadKeyKind::kInt; }

 private:
  /// `where` may contain '?' markers bound from `params`; the generated
  /// SQL text is stable across calls so repeated axis steps reuse one
  /// cached plan.
  Result<std::vector<StoredNode>> Select(const std::string& where,
                                         Row params,
                                         const std::string& order);
  Result<StoredNode> SelectOne(const std::string& where, Row params);
  /// Shreds `node` assigning ordinals spaced by `step` starting after
  /// `*counter`; returns rows appended to `rows`.
  void ShredInto(const XmlNode& node, int64_t pord, int64_t depth,
                 int64_t step, int64_t* counter, std::vector<Row>* rows,
                 int64_t* subtree_max);
  Status BulkInsert(const std::vector<Row>& rows, UpdateStats* stats);
};

/// Local order encoding: every node carries a surrogate id, its parent's id
/// and its ordinal among its siblings. Inserting a node renumbers at most
/// its siblings — the cheapest updates of the three schemes — but
/// document-order comparison of arbitrary nodes requires reconstructing
/// ancestor ordinal paths, and the descendant axis needs one child-join per
/// level.
///
///   nodes(id, pid, sord, depth, kind, tag, val)
///   indexes: (id), (pid, sord), (tag)
class LocalStore : public StoreBase {
 public:
  LocalStore(Database* db, StoreOptions options)
      : StoreBase(db, OrderEncoding::kLocal, std::move(options)) {}

  Status CreateTableAndIndexes() override;
  Status InitializeExisting() override;
  Result<std::unique_ptr<XmlDocument>> ReconstructDocument() override;
  Result<std::unique_ptr<XmlNode>> ReconstructSubtree(
      const StoredNode& node) override;
  Result<StoredNode> Root() override;
  Result<std::vector<StoredNode>> Children(const StoredNode& node,
                                           const NodeTest& test) override;
  Result<std::vector<StoredNode>> Descendants(const StoredNode& node,
                                              const NodeTest& test) override;
  Result<std::vector<StoredNode>> FollowingSiblings(
      const StoredNode& node, const NodeTest& test) override;
  Result<std::vector<StoredNode>> PrecedingSiblings(
      const StoredNode& node, const NodeTest& test) override;
  Result<std::vector<StoredNode>> Attributes(const StoredNode& node,
                                             std::string_view name) override;
  Result<StoredNode> Parent(const StoredNode& node) override;
  Status SortDocumentOrder(std::vector<StoredNode>* nodes) override;
  Result<std::string> StringValue(const StoredNode& node) override;
  const char* NodeColumns() const override;
  StoredNode NodeFromRow(const Row& row) const override;
  Status Validate() override;
  Result<bool> IsDescendantOf(const StoredNode& node,
                              const StoredNode& ancestor) override;
  std::string KeyCondition(const StoredNode& node) const override;
  std::string KeyConditionP(const StoredNode& node,
                            Row* params) const override;

 protected:
  Status DoLoadDocument(const XmlDocument& doc) override;
  Result<UpdateStats> DoInsertSubtree(const StoredNode& ref,
                                      InsertPosition pos,
                                      const XmlNode& subtree) override;
  Result<UpdateStats> DoDeleteSubtree(const StoredNode& node) override;
  Status EmitUnitRows(const ShredUnit& unit, std::vector<Row>* rows) override;
  LoadKeyKind LoadKey() const override { return LoadKeyKind::kInt; }
  /// Ids were assigned as next_id_ + row_offset during the parallel shred
  /// without touching the allocator; advance it now that the rows are in.
  void OnParallelLoadComplete(uint64_t rows_loaded) override {
    next_id_ += static_cast<int64_t>(rows_loaded);
  }

 private:
  Result<std::vector<StoredNode>> Select(const std::string& where,
                                         Row params,
                                         const std::string& order);
  Result<StoredNode> SelectOne(const std::string& where, Row params);
  Status BulkInsert(const std::vector<Row>& rows, UpdateStats* stats);
  /// Ordinal path from the root to `node` (ancestor sords), fetched by
  /// iterated parent lookups with memoization — the cost center of
  /// document-order sorting under local numbering.
  Result<std::vector<int64_t>> OrdinalPath(
      const StoredNode& node,
      std::unordered_map<int64_t, std::pair<int64_t, int64_t>>* cache);

  int64_t next_id_ = 1;
};

/// Dewey order encoding: every node's key is the byte-encoded path of
/// sibling ordinals from the root. Document order is byte order of the
/// key, ancestor/descendant is a prefix test, and an insert renumbers at
/// most the following siblings and their subtrees — the middle ground the
/// paper recommends.
///
///   nodes(path, depth, kind, tag, val)
///   indexes: (path), (tag, path)
class DeweyStore : public StoreBase {
 public:
  DeweyStore(Database* db, StoreOptions options)
      : StoreBase(db, OrderEncoding::kDewey, std::move(options)) {}

  Status CreateTableAndIndexes() override;
  Result<std::unique_ptr<XmlDocument>> ReconstructDocument() override;
  Result<std::unique_ptr<XmlNode>> ReconstructSubtree(
      const StoredNode& node) override;
  Result<StoredNode> Root() override;
  Result<std::vector<StoredNode>> Children(const StoredNode& node,
                                           const NodeTest& test) override;
  Result<std::vector<StoredNode>> Descendants(const StoredNode& node,
                                              const NodeTest& test) override;
  Result<std::vector<StoredNode>> FollowingSiblings(
      const StoredNode& node, const NodeTest& test) override;
  Result<std::vector<StoredNode>> PrecedingSiblings(
      const StoredNode& node, const NodeTest& test) override;
  Result<std::vector<StoredNode>> Attributes(const StoredNode& node,
                                             std::string_view name) override;
  Result<StoredNode> Parent(const StoredNode& node) override;
  Status SortDocumentOrder(std::vector<StoredNode>* nodes) override;
  Result<std::string> StringValue(const StoredNode& node) override;
  const char* NodeColumns() const override;
  StoredNode NodeFromRow(const Row& row) const override;
  Status Validate() override;
  Result<bool> IsDescendantOf(const StoredNode& node,
                              const StoredNode& ancestor) override;
  std::string KeyCondition(const StoredNode& node) const override;
  std::string KeyConditionP(const StoredNode& node,
                            Row* params) const override;

 protected:
  Status DoLoadDocument(const XmlDocument& doc) override;
  Result<UpdateStats> DoInsertSubtree(const StoredNode& ref,
                                      InsertPosition pos,
                                      const XmlNode& subtree) override;
  Result<UpdateStats> DoDeleteSubtree(const StoredNode& node) override;
  Status EmitUnitRows(const ShredUnit& unit, std::vector<Row>* rows) override;
  LoadKeyKind LoadKey() const override { return LoadKeyKind::kBlob; }

 private:
  Result<std::vector<StoredNode>> Select(const std::string& where,
                                         Row params,
                                         const std::string& order);
  Result<StoredNode> SelectOne(const std::string& where, Row params);
  void ShredInto(const XmlNode& node, const DeweyKey& key,
                 std::vector<Row>* rows);
  Status BulkInsert(const std::vector<Row>& rows, UpdateStats* stats);
};

}  // namespace oxml

#endif  // OXML_CORE_STORES_H_
