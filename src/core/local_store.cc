#include <algorithm>
#include <map>
#include <set>

#include "src/common/strings.h"
#include "src/core/stores.h"

namespace oxml {

namespace {

constexpr const char* kCols = "id, pid, sord, depth, kind, tag, val";

StoredNode FromLocalRow(const Row& row) {
  StoredNode n;
  n.id = row[0].AsInt();
  n.pid = row[1].AsInt();
  n.sord = row[2].AsInt();
  n.depth = row[3].AsInt();
  n.kind = static_cast<XmlNodeKind>(row[4].AsInt());
  n.tag = row[5].AsString();
  n.value = row[6].is_null() ? "" : row[6].AsString();
  return n;
}

}  // namespace

const char* LocalStore::NodeColumns() const { return kCols; }

StoredNode LocalStore::NodeFromRow(const Row& row) const {
  return FromLocalRow(row);
}

// Index column order doubles as a sort-order claim the planner exploits:
// (pid, sord) means "an equality probe on pid yields children in sibling
// order". No Local index yields document order — ordered output needs an
// explicit sort, which is part of this encoding's measured query tax.
Status LocalStore::CreateTableAndIndexes() {
  const std::string& t = table_name();
  OXML_RETURN_NOT_OK(db_->Execute("CREATE TABLE " + t +
                                  " (id INT, pid INT, sord INT, depth INT,"
                                  " kind INT, tag TEXT, val TEXT)")
                         .status());
  OXML_RETURN_NOT_OK(
      db_->Execute("CREATE INDEX " + t + "_id ON " + t + " (id)").status());
  OXML_RETURN_NOT_OK(
      db_->Execute("CREATE INDEX " + t + "_pid ON " + t + " (pid, sord)")
          .status());
  OXML_RETURN_NOT_OK(
      db_->Execute("CREATE INDEX " + t + "_tag ON " + t + " (tag)").status());
  return Status::OK();
}

Status LocalStore::InitializeExisting() {
  // Restore the id allocator from the stored rows.
  OXML_ASSIGN_OR_RETURN(
      ResultSet rs, Sql("SELECT MAX(id) FROM " + table_name()));
  next_id_ = rs.rows[0][0].is_null() ? 1 : rs.rows[0][0].AsInt() + 1;
  return Status::OK();
}

namespace {

/// DFS shredder for the local encoding. `sord` is the node's ordinal among
/// its siblings; attributes and children share one ordinal space.
void ShredLocal(const XmlNode& node, int64_t pid, int64_t sord, int64_t depth,
                int64_t gap, int64_t* next_id, std::vector<Row>* rows) {
  int64_t id = (*next_id)++;
  rows->push_back(Row{Value::Int(id), Value::Int(pid), Value::Int(sord),
                      Value::Int(depth),
                      Value::Int(static_cast<int64_t>(node.kind())),
                      Value::Text(node.name()), Value::Text(node.value())});
  int64_t child_sord = 0;
  for (const XmlAttribute& attr : node.attributes()) {
    child_sord += gap;
    rows->push_back(
        Row{Value::Int((*next_id)++), Value::Int(id), Value::Int(child_sord),
            Value::Int(depth + 1),
            Value::Int(static_cast<int64_t>(XmlNodeKind::kAttribute)),
            Value::Text(attr.name), Value::Text(attr.value)});
  }
  for (const auto& child : node.children()) {
    child_sord += gap;
    ShredLocal(*child, id, child_sord, depth + 1, gap, next_id, rows);
  }
}

}  // namespace

Status LocalStore::BulkInsert(const std::vector<Row>& rows,
                              UpdateStats* stats) {
  OXML_ASSIGN_OR_RETURN(
      PreparedStatement ins,
      db_->Prepare("INSERT INTO " + table_name() + " (" + kCols +
                   ") VALUES (?, ?, ?, ?, ?, ?, ?)"));
  OXML_RETURN_NOT_OK(ins.ExecuteBatch(rows).status());
  if (stats != nullptr) {
    ++stats->statements;
    stats->nodes_inserted += static_cast<int64_t>(rows.size());
  }
  return Status::OK();
}

Status LocalStore::DoLoadDocument(const XmlDocument& doc) {
  std::vector<Row> rows;
  int64_t sord = 0;
  for (const auto& top : doc.root()->children()) {
    sord += options_.gap;
    ShredLocal(*top, 0, sord, 1, options_.gap, &next_id_, &rows);
  }
  return BulkInsert(rows, nullptr);
}

Status LocalStore::EmitUnitRows(const ShredUnit& u, std::vector<Row>* rows) {
  const int64_t gap = options_.gap;
  // The serial shredder hands out ids in DFS row order, so the k-th row of
  // the full stream gets id = next_id_ + k. The allocator itself is left
  // untouched until OnParallelLoadComplete — workers only read the base.
  const int64_t base = next_id_;
  const int64_t pid =
      u.parent_row_offset < 0 ? 0 : base + u.parent_row_offset;
  if (u.whole_subtree) {
    int64_t next = base + static_cast<int64_t>(u.row_offset);
    ShredLocal(*u.node, pid, u.sibling_comp, u.depth, gap, &next, rows);
    return Status::OK();
  }
  // Header unit: element + attribute rows; children arrive as later units
  // with their own row offsets.
  const int64_t id = base + static_cast<int64_t>(u.row_offset);
  rows->push_back(Row{Value::Int(id), Value::Int(pid),
                      Value::Int(u.sibling_comp), Value::Int(u.depth),
                      Value::Int(static_cast<int64_t>(u.node->kind())),
                      Value::Text(u.node->name()),
                      Value::Text(u.node->value())});
  int64_t next = id + 1;
  int64_t child_sord = 0;
  for (const XmlAttribute& attr : u.node->attributes()) {
    child_sord += gap;
    rows->push_back(
        Row{Value::Int(next++), Value::Int(id), Value::Int(child_sord),
            Value::Int(u.depth + 1),
            Value::Int(static_cast<int64_t>(XmlNodeKind::kAttribute)),
            Value::Text(attr.name), Value::Text(attr.value)});
  }
  return Status::OK();
}

Result<std::vector<StoredNode>> LocalStore::Select(const std::string& where,
                                                   Row params,
                                                   const std::string& order) {
  std::string sql = std::string("SELECT ") + kCols + " FROM " + table_name();
  if (!where.empty()) sql += " WHERE " + where;
  if (!order.empty()) sql += " ORDER BY " + order;
  OXML_ASSIGN_OR_RETURN(ResultSet rs, SqlP(sql, std::move(params)));
  std::vector<StoredNode> out;
  out.reserve(rs.rows.size());
  for (const Row& row : rs.rows) out.push_back(FromLocalRow(row));
  return out;
}

Result<StoredNode> LocalStore::SelectOne(const std::string& where,
                                         Row params) {
  OXML_ASSIGN_OR_RETURN(std::vector<StoredNode> nodes,
                        Select(where, std::move(params), "id"));
  if (nodes.empty()) return Status::NotFound("no node matches: " + where);
  return nodes.front();
}

Result<StoredNode> LocalStore::Root() {
  return SelectOne("pid = 0 AND kind = " +
                       IntLit(static_cast<int>(XmlNodeKind::kElement)),
                   {});
}

Result<std::vector<StoredNode>> LocalStore::Children(const StoredNode& node,
                                                     const NodeTest& test) {
  Row params{Value::Int(node.id)};
  // Built before the Select call: SqlConditionP appends to `params`, and
  // argument evaluation order would otherwise race it against the move.
  std::string where = "pid = ? AND " + test.SqlConditionP(&params);
  return Select(where, std::move(params), "sord");
}

Result<std::vector<StoredNode>> LocalStore::Descendants(
    const StoredNode& node, const NodeTest& test) {
  if (node.pid == 0) {
    // From the root a tag/kind scan sees every node; document order must
    // then be recovered via ancestor ordinal paths (the expensive part of
    // the local scheme).
    Row params;
    std::string test_cond = test.SqlConditionP(&params);
    params.push_back(Value::Int(node.id));
    OXML_ASSIGN_OR_RETURN(
        std::vector<StoredNode> all,
        Select(test_cond + " AND id <> ? AND pid <> 0", std::move(params),
               ""));
    OXML_RETURN_NOT_OK(SortDocumentOrder(&all));
    return all;
  }
  // Inside a subtree the local scheme has no descendant interval: expand
  // level by level with one child query per element (iterated joins).
  std::vector<StoredNode> out;
  std::vector<StoredNode> frontier{node};
  while (!frontier.empty()) {
    std::vector<StoredNode> next;
    for (const StoredNode& cur : frontier) {
      OXML_ASSIGN_OR_RETURN(std::vector<StoredNode> kids,
                            Children(cur, NodeTest::AnyNode()));
      for (StoredNode& kid : kids) {
        if (test.Matches(kid.kind, kid.tag)) out.push_back(kid);
        if (kid.kind == XmlNodeKind::kElement) next.push_back(kid);
      }
    }
    frontier = std::move(next);
  }
  // BFS emits level order; restore document order.
  OXML_RETURN_NOT_OK(SortDocumentOrder(&out));
  return out;
}

Result<std::vector<StoredNode>> LocalStore::FollowingSiblings(
    const StoredNode& node, const NodeTest& test) {
  Row params{Value::Int(node.pid), Value::Int(node.sord)};
  std::string where =
      "pid = ? AND sord > ? AND " + test.SqlConditionP(&params);
  return Select(where, std::move(params), "sord");
}

Result<std::vector<StoredNode>> LocalStore::PrecedingSiblings(
    const StoredNode& node, const NodeTest& test) {
  Row params{Value::Int(node.pid), Value::Int(node.sord)};
  std::string where =
      "pid = ? AND sord < ? AND " + test.SqlConditionP(&params);
  return Select(where, std::move(params), "sord");
}

Result<std::vector<StoredNode>> LocalStore::Attributes(
    const StoredNode& node, std::string_view name) {
  Row params{Value::Int(node.id)};
  std::string where = "pid = ? AND kind = " +
                      IntLit(static_cast<int>(XmlNodeKind::kAttribute));
  if (!name.empty()) {
    where += " AND tag = ?";
    params.push_back(Value::Text(std::string(name)));
  }
  return Select(where, std::move(params), "sord");
}

Result<StoredNode> LocalStore::Parent(const StoredNode& node) {
  if (node.pid == 0) return Status::NotFound("root has no parent");
  return SelectOne("id = ?", {Value::Int(node.pid)});
}

Result<std::vector<int64_t>> LocalStore::OrdinalPath(
    const StoredNode& node,
    std::unordered_map<int64_t, std::pair<int64_t, int64_t>>* cache) {
  std::vector<int64_t> path{node.sord};
  int64_t pid = node.pid;
  while (pid != 0) {
    auto it = cache->find(pid);
    if (it == cache->end()) {
      OXML_ASSIGN_OR_RETURN(
          ResultSet rs,
          SqlP("SELECT pid, sord FROM " + table_name() + " WHERE id = ?",
               {Value::Int(pid)}));
      if (rs.rows.empty()) {
        return Status::Internal("dangling parent id " + std::to_string(pid));
      }
      it = cache->emplace(pid, std::make_pair(rs.rows[0][0].AsInt(),
                                              rs.rows[0][1].AsInt()))
               .first;
    }
    path.push_back(it->second.second);
    pid = it->second.first;
  }
  std::reverse(path.begin(), path.end());
  return path;
}

Status LocalStore::SortDocumentOrder(std::vector<StoredNode>* nodes) {
  // Reconstruct each node's ancestor ordinal path (a Dewey path computed
  // the hard way), then sort lexicographically.
  std::unordered_map<int64_t, std::pair<int64_t, int64_t>> cache;
  std::vector<std::pair<std::vector<int64_t>, size_t>> keyed;
  keyed.reserve(nodes->size());
  for (size_t i = 0; i < nodes->size(); ++i) {
    OXML_ASSIGN_OR_RETURN(std::vector<int64_t> path,
                          OrdinalPath((*nodes)[i], &cache));
    keyed.emplace_back(std::move(path), i);
  }
  std::stable_sort(keyed.begin(), keyed.end(),
                   [](const auto& a, const auto& b) {
                     return a.first < b.first;
                   });
  std::vector<StoredNode> sorted;
  sorted.reserve(nodes->size());
  for (const auto& [path, idx] : keyed) sorted.push_back((*nodes)[idx]);
  *nodes = std::move(sorted);
  return Status::OK();
}

Result<std::string> LocalStore::StringValue(const StoredNode& node) {
  if (node.kind == XmlNodeKind::kText ||
      node.kind == XmlNodeKind::kAttribute ||
      node.kind == XmlNodeKind::kComment) {
    return node.value;
  }
  std::string out;
  OXML_ASSIGN_OR_RETURN(std::vector<StoredNode> kids,
                        Children(node, NodeTest::AnyNode()));
  for (const StoredNode& kid : kids) {
    if (kid.kind == XmlNodeKind::kText) {
      out += kid.value;
    } else if (kid.kind == XmlNodeKind::kElement) {
      OXML_ASSIGN_OR_RETURN(std::string inner, StringValue(kid));
      out += inner;
    }
  }
  return out;
}

namespace {

/// Recursively attaches the children of `parent_id` from the grouped map.
void AssembleLocal(
    const std::map<int64_t, std::vector<StoredNode>>& by_parent,
    int64_t parent_id, XmlNode* parent) {
  auto it = by_parent.find(parent_id);
  if (it == by_parent.end()) return;
  for (const StoredNode& n : it->second) {
    switch (n.kind) {
      case XmlNodeKind::kAttribute:
        parent->SetAttribute(n.tag, n.value);
        break;
      case XmlNodeKind::kElement: {
        XmlNode* e = parent->AppendChild(XmlNode::Element(n.tag));
        AssembleLocal(by_parent, n.id, e);
        break;
      }
      case XmlNodeKind::kText:
        parent->AppendChild(XmlNode::Text(n.value));
        break;
      case XmlNodeKind::kComment:
        parent->AppendChild(XmlNode::Comment(n.value));
        break;
      case XmlNodeKind::kProcessingInstruction:
        parent->AppendChild(XmlNode::ProcessingInstruction(n.tag, n.value));
        break;
      case XmlNodeKind::kDocument:
        break;
    }
  }
}

}  // namespace

Result<std::unique_ptr<XmlDocument>> LocalStore::ReconstructDocument() {
  // One scan ordered by (pid, sord), grouped in memory, then a recursive
  // parent-to-children assembly (the join the local encoding forces).
  OXML_ASSIGN_OR_RETURN(std::vector<StoredNode> all,
                        Select("", {}, "pid, sord"));
  std::map<int64_t, std::vector<StoredNode>> by_parent;
  for (StoredNode& n : all) by_parent[n.pid].push_back(std::move(n));
  auto doc = std::make_unique<XmlDocument>();
  AssembleLocal(by_parent, 0, doc->root());
  return doc;
}

Result<std::unique_ptr<XmlNode>> LocalStore::ReconstructSubtree(
    const StoredNode& node) {
  // Recursive child queries: the subtree has no single-range identity in
  // the local scheme.
  std::unique_ptr<XmlNode> out;
  switch (node.kind) {
    case XmlNodeKind::kElement:
      out = XmlNode::Element(node.tag);
      break;
    case XmlNodeKind::kText:
      return XmlNode::Text(node.value);
    case XmlNodeKind::kComment:
      return XmlNode::Comment(node.value);
    case XmlNodeKind::kProcessingInstruction:
      return XmlNode::ProcessingInstruction(node.tag, node.value);
    default:
      return Status::InvalidArgument("cannot reconstruct this node kind");
  }
  OXML_ASSIGN_OR_RETURN(std::vector<StoredNode> attrs,
                        Attributes(node, {}));
  for (const StoredNode& a : attrs) out->SetAttribute(a.tag, a.value);
  OXML_ASSIGN_OR_RETURN(std::vector<StoredNode> kids,
                        Children(node, NodeTest::AnyNode()));
  for (const StoredNode& kid : kids) {
    OXML_ASSIGN_OR_RETURN(std::unique_ptr<XmlNode> child,
                          ReconstructSubtree(kid));
    out->AppendChild(std::move(child));
  }
  return out;
}

Result<bool> LocalStore::IsDescendantOf(const StoredNode& node,
                                        const StoredNode& ancestor) {
  // No containment interval in the local scheme: walk up the parent chain.
  int64_t pid = node.pid;
  while (pid != 0) {
    if (pid == ancestor.id) return true;
    OXML_ASSIGN_OR_RETURN(
        ResultSet rs, SqlP("SELECT pid FROM " + table_name() + " WHERE id = ?",
                           {Value::Int(pid)}));
    if (rs.rows.empty()) {
      return Status::Internal("dangling parent id " + std::to_string(pid));
    }
    pid = rs.rows[0][0].AsInt();
  }
  return false;
}

std::string LocalStore::KeyCondition(const StoredNode& node) const {
  return "id = " + IntLit(node.id);
}

std::string LocalStore::KeyConditionP(const StoredNode& node,
                                      Row* params) const {
  params->push_back(Value::Int(node.id));
  return "id = ?";
}

Status LocalStore::Validate() {
  OXML_ASSIGN_OR_RETURN(std::vector<StoredNode> rows, Select("", {}, "id"));
  std::unordered_map<int64_t, const StoredNode*> by_id;
  for (const StoredNode& n : rows) {
    if (!by_id.emplace(n.id, &n).second) {
      return Status::Internal("duplicate id " + std::to_string(n.id));
    }
  }
  std::set<std::pair<int64_t, int64_t>> sibling_keys;
  // Attributes and children share one per-parent ordinal space, with all
  // attribute rows numbered before the first non-attribute child.
  std::map<int64_t, int64_t> max_attr_sord;
  std::map<int64_t, int64_t> min_child_sord;
  int roots = 0;
  for (const StoredNode& n : rows) {
    if (!sibling_keys.emplace(n.pid, n.sord).second) {
      return Status::Internal("duplicate (pid, sord) = (" +
                              std::to_string(n.pid) + ", " +
                              std::to_string(n.sord) + ")");
    }
    if (n.id < 1) {
      return Status::Internal("non-positive id " + std::to_string(n.id));
    }
    if (n.sord < 1) {
      return Status::Internal("non-positive sord at id " +
                              std::to_string(n.id));
    }
    if (n.kind == XmlNodeKind::kAttribute) {
      auto [it, inserted] = max_attr_sord.emplace(n.pid, n.sord);
      if (!inserted) it->second = std::max(it->second, n.sord);
    } else {
      auto [it, inserted] = min_child_sord.emplace(n.pid, n.sord);
      if (!inserted) it->second = std::min(it->second, n.sord);
    }
    if (n.pid == 0) {
      if (n.depth != 1) return Status::Internal("top-level depth != 1");
      if (n.kind == XmlNodeKind::kElement) ++roots;
      continue;
    }
    auto it = by_id.find(n.pid);
    if (it == by_id.end()) {
      return Status::Internal("dangling pid " + std::to_string(n.pid));
    }
    const StoredNode* parent = it->second;
    if (parent->kind != XmlNodeKind::kElement) {
      return Status::Internal("parent " + std::to_string(n.pid) +
                              " is not an element");
    }
    if (n.depth != parent->depth + 1) {
      return Status::Internal("depth mismatch at id " +
                              std::to_string(n.id));
    }
  }
  if (roots != 1) {
    return Status::Internal("expected exactly 1 root element, found " +
                            std::to_string(roots));
  }
  for (const auto& [pid, attr_sord] : max_attr_sord) {
    auto it = min_child_sord.find(pid);
    if (it != min_child_sord.end() && it->second < attr_sord) {
      return Status::Internal("attribute ordered after a child of id " +
                              std::to_string(pid));
    }
  }
  return Status::OK();
}

Result<UpdateStats> LocalStore::DoInsertSubtree(const StoredNode& ref,
                                              InsertPosition pos,
                                              const XmlNode& subtree) {
  if (ref.kind == XmlNodeKind::kAttribute) {
    return Status::InvalidArgument("cannot insert relative to an attribute");
  }
  UpdateStats stats;
  const std::string& t = table_name();

  int64_t parent_id = 0;
  int64_t parent_depth = 0;
  int64_t s_left = 0;
  bool have_right = false;
  StoredNode right;

  switch (pos) {
    case InsertPosition::kBefore:
    case InsertPosition::kAfter: {
      OXML_ASSIGN_OR_RETURN(StoredNode parent, Parent(ref));
      parent_id = parent.id;
      parent_depth = parent.depth;
      if (pos == InsertPosition::kBefore) {
        right = ref;
        have_right = true;
        OXML_ASSIGN_OR_RETURN(
            std::vector<StoredNode> prev,
            Select("pid = ? AND sord < ?",
                   {Value::Int(parent_id), Value::Int(ref.sord)},
                   "sord DESC LIMIT 1"));
        if (!prev.empty()) s_left = prev.front().sord;
      } else {
        s_left = ref.sord;
        OXML_ASSIGN_OR_RETURN(
            std::vector<StoredNode> next,
            Select("pid = ? AND sord > ?",
                   {Value::Int(parent_id), Value::Int(ref.sord)},
                   "sord LIMIT 1"));
        if (!next.empty()) {
          right = next.front();
          have_right = true;
        }
      }
      break;
    }
    case InsertPosition::kFirstChild: {
      parent_id = ref.id;
      parent_depth = ref.depth;
      OXML_ASSIGN_OR_RETURN(
          std::vector<StoredNode> attrs,
          Select("pid = ? AND kind = " +
                     IntLit(static_cast<int>(XmlNodeKind::kAttribute)),
                 {Value::Int(parent_id)}, "sord DESC LIMIT 1"));
      if (!attrs.empty()) s_left = attrs.front().sord;
      OXML_ASSIGN_OR_RETURN(
          std::vector<StoredNode> kids,
          Select("pid = ? AND kind <> " +
                     IntLit(static_cast<int>(XmlNodeKind::kAttribute)),
                 {Value::Int(parent_id)}, "sord LIMIT 1"));
      if (!kids.empty()) {
        right = kids.front();
        have_right = true;
      }
      break;
    }
    case InsertPosition::kLastChild: {
      parent_id = ref.id;
      parent_depth = ref.depth;
      OXML_ASSIGN_OR_RETURN(
          std::vector<StoredNode> last,
          Select("pid = ?", {Value::Int(parent_id)}, "sord DESC LIMIT 1"));
      if (!last.empty()) s_left = last.front().sord;
      break;
    }
  }
  stats.statements += 2;  // neighbor resolution

  int64_t slot;
  if (!have_right) {
    slot = s_left + options_.gap;
  } else if (right.sord - s_left > 1) {
    slot = s_left + (right.sord - s_left) / 2;
  } else {
    // Renumber: shift the sibling ordinals of the right neighbor and all
    // later siblings by one gap. Only the sibling rows themselves are
    // touched — descendants keep their keys. This locality is the whole
    // point of the local scheme.
    OXML_ASSIGN_OR_RETURN(
        std::vector<StoredNode> to_shift,
        Select("pid = ? AND sord >= ?",
               {Value::Int(parent_id), Value::Int(right.sord)}, "sord DESC"));
    ++stats.statements;
    // One prepared UPDATE executed per shifted sibling: the parse + plan is
    // paid once for the whole batch.
    std::vector<Row> shift_rows;
    shift_rows.reserve(to_shift.size());
    for (const StoredNode& sib : to_shift) {
      shift_rows.push_back(
          Row{Value::Int(sib.sord + options_.gap), Value::Int(sib.id)});
    }
    OXML_ASSIGN_OR_RETURN(PreparedStatement shift,
                          db_->Prepare("UPDATE " + t +
                                       " SET sord = ? WHERE id = ?"));
    OXML_ASSIGN_OR_RETURN(int64_t changed, shift.ExecuteBatch(shift_rows));
    stats.statements += static_cast<int64_t>(shift_rows.size());
    stats.rows_renumbered += changed;
    stats.renumbering_triggered = true;
    slot = s_left + (right.sord + options_.gap - s_left) / 2;
  }

  std::vector<Row> rows;
  ShredLocal(subtree, parent_id, slot, parent_depth + 1, options_.gap,
             &next_id_, &rows);
  OXML_RETURN_NOT_OK(BulkInsert(rows, &stats));
  return stats;
}

Result<UpdateStats> LocalStore::DoDeleteSubtree(const StoredNode& node) {
  UpdateStats stats;
  // Collect the subtree ids level by level (no closure in the schema).
  std::vector<int64_t> frontier{node.id};
  std::vector<int64_t> parents;
  while (!frontier.empty()) {
    std::vector<int64_t> next;
    for (int64_t id : frontier) {
      OXML_ASSIGN_OR_RETURN(
          ResultSet rs,
          SqlP("SELECT id, kind FROM " + table_name() + " WHERE pid = ?",
               {Value::Int(id)}, &stats));
      for (const Row& row : rs.rows) {
        if (static_cast<XmlNodeKind>(row[1].AsInt()) ==
            XmlNodeKind::kElement) {
          next.push_back(row[0].AsInt());
        }
      }
      if (!rs.rows.empty()) parents.push_back(id);
    }
    frontier = std::move(next);
  }
  for (int64_t pid : parents) {
    OXML_ASSIGN_OR_RETURN(
        int64_t n,
        DmlP("DELETE FROM " + table_name() + " WHERE pid = ?",
             {Value::Int(pid)}, &stats));
    stats.nodes_deleted += n;
  }
  OXML_ASSIGN_OR_RETURN(
      int64_t n,
      DmlP("DELETE FROM " + table_name() + " WHERE id = ?",
           {Value::Int(node.id)}, &stats));
  stats.nodes_deleted += n;
  return stats;
}

}  // namespace oxml
