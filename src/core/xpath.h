#ifndef OXML_CORE_XPATH_H_
#define OXML_CORE_XPATH_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/result.h"
#include "src/core/ordered_store.h"

namespace oxml {

/// Comparison operators usable inside XPath predicates.
enum class XPathCmp : uint8_t { kEq, kNe, kLt, kLe, kGt, kGe };

const char* XPathCmpToString(XPathCmp op);

/// One bracketed predicate. The supported forms cover the paper's ordered
/// query classes:
///   [3]                  position (kPosition, op kEq)
///   [position() >= 2]    position comparison (kPosition)
///   [last()]             last sibling (kLast)
///   [@id]                attribute existence (kHasAttribute)
///   [@id = 'x']          attribute comparison (kAttribute)
///   [title = 'x']        first matching child's string value (kChildValue)
///   [. = 'x']            self string value (kSelfValue)
struct XPathPredicate {
  enum class Kind : uint8_t {
    kPosition,
    kLast,
    kAttribute,
    kHasAttribute,
    kChildValue,
    kSelfValue,
  };

  Kind kind = Kind::kPosition;
  XPathCmp op = XPathCmp::kEq;
  int64_t position = 0;   // kPosition
  std::string name;       // kAttribute / kChildValue
  std::string literal;    // comparison literal

  std::string ToString() const;
};

/// One location step.
struct XPathStep {
  enum class Axis : uint8_t {
    kChild,
    kDescendant,        // produced by '//'
    kFollowingSibling,  // following-sibling::
    kPrecedingSibling,  // preceding-sibling::
    kAttribute,         // @name or attribute::
    kParent,            // parent:: or '..'
    kAncestor,          // ancestor::
  };

  Axis axis = Axis::kChild;
  NodeTest test;               // ignored for kAttribute
  std::string attribute_name;  // kAttribute only ("" = any)
  std::vector<XPathPredicate> predicates;

  std::string ToString() const;
};

/// A parsed absolute path expression.
struct XPathQuery {
  std::vector<XPathStep> steps;

  std::string ToString() const;
};

/// Parses the XPath subset:
///
///   path   := ('/' | '//') step (('/' | '//') step)*
///   step   := [axis '::'] nodetest pred*  |  '..'
///   axis   := 'following-sibling' | 'preceding-sibling' | 'child'
///           | 'parent' | 'ancestor'
///   nodetest := NAME | '*' | 'text()' | '@' NAME
///   pred   := '[' INT | 'last()' | 'position()' cmp INT
///             | ('@' NAME | NAME | '.') cmp ('literal' | NUMBER) ']'
Result<XPathQuery> ParseXPath(std::string_view input);

}  // namespace oxml

#endif  // OXML_CORE_XPATH_H_
