#ifndef OXML_CORE_DEWEY_H_
#define OXML_CORE_DEWEY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/result.h"

namespace oxml {

/// A Dewey order key: the vector of sibling ordinals on the path from the
/// document root to a node (e.g. 1.5.3). Its binary encoding is the paper's
/// central trick for the Dewey scheme:
///
///  * byte-wise (memcmp) comparison of encodings == document order,
///  * `a` is an ancestor of `b` iff `Encode(a)` is a proper prefix of
///    `Encode(b)` (at a component boundary, which the length-tagged codec
///    guarantees), and
///  * all descendants of `p` fall in the key range
///    [Encode(p), Encode(p) + 0xFF) — a single B+tree range scan.
///
/// Component codec: each ordinal (>= 1) is stored as a length byte
/// 0x01..0x08 followed by that many big-endian bytes without leading
/// zeros. Values with more bytes are numerically larger, so memcmp order
/// equals numeric order per component; the length byte is always < 0xFF,
/// which makes `encoded + 0xFF` an exclusive upper bound for the subtree.
class DeweyKey {
 public:
  DeweyKey() = default;
  explicit DeweyKey(std::vector<int64_t> components)
      : components_(std::move(components)) {}

  /// The root element's key (a single component).
  static DeweyKey Root(int64_t ordinal) { return DeweyKey({ordinal}); }

  const std::vector<int64_t>& components() const { return components_; }
  size_t depth() const { return components_.size(); }
  bool empty() const { return components_.empty(); }
  int64_t last() const { return components_.back(); }

  /// Key of the parent (one component shorter). Undefined on the root.
  DeweyKey Parent() const;

  /// Key of the child with the given sibling ordinal.
  DeweyKey Child(int64_t ordinal) const;

  /// Sibling key: same parent, different last ordinal.
  DeweyKey WithLast(int64_t ordinal) const;

  /// True if this key is a proper ancestor of `other`.
  bool IsAncestorOf(const DeweyKey& other) const;

  /// Document-order three-way comparison (ancestors precede descendants).
  int Compare(const DeweyKey& other) const;

  bool operator==(const DeweyKey& other) const {
    return components_ == other.components_;
  }

  /// Order-preserving binary encoding (see class comment).
  std::string Encode() const;

  /// Inverse of Encode.
  static Result<DeweyKey> Decode(std::string_view bytes);

  /// Exclusive upper bound of this key's subtree range: Encode() + 0xFF.
  std::string SubtreeUpperBound() const;

  /// Dotted display form, e.g. "1.5.3".
  std::string ToString() const;

 private:
  std::vector<int64_t> components_;
};

}  // namespace oxml

#endif  // OXML_CORE_DEWEY_H_
