#ifndef OXML_CORE_PARALLEL_SHRED_H_
#define OXML_CORE_PARALLEL_SHRED_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/relational/value.h"
#include "src/xml/xml_node.h"

namespace oxml {

class ThreadPool;

/// One disjoint partition of a parsed document, produced by
/// PartitionDocument. A unit either covers a whole subtree
/// (`whole_subtree`) or — when the subtree was too large and was split
/// further — just the element's own row plus its attribute rows (a
/// "header" unit; the children then appear as later units).
///
/// The fields carry everything a shredder needs to assign the exact order
/// keys the serial DFS would have assigned, for all three encodings:
///  - Global: the k-th row of the serial DFS stream (0-based `row_offset`)
///    gets ord = gap * (k + 1); an element's eord is the ord of its last
///    subtree row, i.e. gap * (row_offset + subtree_rows); pord is the
///    parent's ord, derived from `parent_row_offset`.
///  - Local: ids are `base + row_offset` counting rows the same way, pid
///    is `base + parent_row_offset`, and `sibling_comp` is the node's
///    gap-scaled ordinal in its parent's shared attribute+child space.
///  - Dewey: `dewey_path` is the node's encoded key; attributes and
///    children extend it with gap-scaled components.
/// Row counts are encoding-independent (every element, attribute, text,
/// comment and PI is exactly one row), which is what makes one partition
/// pass reusable by all three shredders.
struct ShredUnit {
  const XmlNode* node = nullptr;
  bool whole_subtree = true;
  uint64_t row_offset = 0;      ///< node's 0-based row index in DFS order
  uint64_t subtree_rows = 0;    ///< rows in the whole subtree (incl. attrs)
  int64_t depth = 1;
  int64_t parent_row_offset = -1;  ///< -1 = the document container
  int64_t sibling_comp = 0;        ///< gap-scaled sord / Dewey component
  std::string dewey_path;          ///< encoded DeweyKey of `node`
};

/// Cuts `doc` into ShredUnits in document order. Subtrees larger than
/// roughly total_rows / `target_units` are split: a header unit for the
/// element itself, then one recursion per child. `gap` must match the
/// StoreOptions gap the shredders will use (it is baked into
/// `sibling_comp` and `dewey_path`). Always returns at least one unit for
/// a non-empty document.
std::vector<ShredUnit> PartitionDocument(const XmlDocument& doc, int64_t gap,
                                         size_t target_units);

/// Shreds one unit into encoded rows, appending to `rows` in document
/// order. Implemented per encoding by the stores (EmitUnitRows); must be
/// safe to call from several threads at once on distinct units.
using ShredUnitEmitter =
    std::function<Status(const ShredUnit&, std::vector<Row>*)>;

/// How run rows are ordered for the k-way merge: by row[0] as an integer
/// (Global ord / Local id) or as memcmp'd bytes (Dewey path).
enum class LoadKeyKind { kInt, kBlob };

/// The fan-out half of the bulk-load pipeline: workers (the pool's threads
/// plus the calling thread; serial when `pool` is null) claim units
/// morsel-style from one shared cursor and shred them with `emit`,
/// sealing a sorted run whenever the accumulated rows exceed `run_bytes`.
/// Because each worker claims strictly increasing unit indices and unit
/// keys increase in document order, every run is sorted by construction;
/// the final k-way merge by `key_kind` therefore reproduces the exact
/// serial document-order row stream regardless of scheduling.
///
/// `runs_out` receives the number of sealed runs fed to the merge and
/// `threads_out` the number of workers that shredded at least one unit.
Result<std::vector<Row>> ParallelShredMerge(
    const std::vector<ShredUnit>& units, const ShredUnitEmitter& emit,
    LoadKeyKind key_kind, ThreadPool* pool, size_t run_bytes,
    uint64_t* runs_out, uint64_t* threads_out);

}  // namespace oxml

#endif  // OXML_CORE_PARALLEL_SHRED_H_
