#include "src/core/collection.h"

#include <algorithm>

#include "src/common/strings.h"
#include "src/core/xpath_eval.h"

namespace oxml {

Result<std::unique_ptr<DocumentCollection>> DocumentCollection::Create(
    Database* db, OrderEncoding encoding, const StoreOptions& base_options,
    std::string prefix) {
  auto coll = std::unique_ptr<DocumentCollection>(
      new DocumentCollection(db, encoding, base_options, std::move(prefix)));
  OXML_RETURN_NOT_OK(
      db->Execute("CREATE TABLE " + coll->catalog_table() +
                  " (doc_id INT, name TEXT, table_name TEXT, nodes INT)")
          .status());
  OXML_RETURN_NOT_OK(db->Execute("CREATE UNIQUE INDEX " +
                                 coll->catalog_table() + "_name ON " +
                                 coll->catalog_table() + " (name)")
                         .status());
  return coll;
}

Result<std::unique_ptr<DocumentCollection>> DocumentCollection::Attach(
    Database* db, OrderEncoding encoding, const StoreOptions& base_options,
    std::string prefix) {
  auto coll = std::unique_ptr<DocumentCollection>(
      new DocumentCollection(db, encoding, base_options, std::move(prefix)));
  if (db->GetTable(coll->catalog_table()) == nullptr) {
    return Status::NotFound("no collection catalog '" +
                            coll->catalog_table() + "' in this database");
  }
  OXML_ASSIGN_OR_RETURN(
      ResultSet rs,
      db->Query("SELECT doc_id, name, table_name FROM " +
                coll->catalog_table() + " ORDER BY doc_id"));
  for (const Row& row : rs.rows) {
    int64_t doc_id = row[0].AsInt();
    const std::string& name = row[1].AsString();
    StoreOptions options = base_options;
    options.table_name = row[2].AsString();
    OXML_ASSIGN_OR_RETURN(std::unique_ptr<OrderedXmlStore> store,
                          OrderedXmlStore::Attach(db, encoding, options));
    coll->stores_[name] = std::move(store);
    coll->next_doc_id_ = std::max(coll->next_doc_id_, doc_id + 1);
  }
  return coll;
}

Result<OrderedXmlStore*> DocumentCollection::AddDocument(
    const std::string& name, const XmlDocument& doc) {
  if (stores_.count(name) > 0) {
    return Status::AlreadyExists("document '" + name + "'");
  }
  int64_t doc_id = next_doc_id_++;
  StoreOptions options = base_options_;
  options.table_name = prefix_ + "_" + std::to_string(doc_id);
  // The CREATE TABLE/INDEX commit on their own (DDL cannot nest in a
  // transaction); until the catalog row commits below, a crash leaves only
  // an orphaned empty table that Attach never looks at.
  OXML_ASSIGN_OR_RETURN(std::unique_ptr<OrderedXmlStore> store,
                        OrderedXmlStore::Create(db_, encoding_, options));
  auto load_and_register = [&]() -> Status {
    TxnScope txn(db_);
    OXML_RETURN_NOT_OK(txn.begin_status());
    OXML_RETURN_NOT_OK(store->LoadDocument(doc));
    OXML_ASSIGN_OR_RETURN(int64_t nodes, store->NodeCount());
    OXML_RETURN_NOT_OK(
        db_->Execute("INSERT INTO " + catalog_table() + " VALUES (" +
                     std::to_string(doc_id) + ", " + SqlQuote(name) + ", " +
                     SqlQuote(options.table_name) + ", " +
                     std::to_string(nodes) + ")")
            .status());
    return txn.Commit();
  };
  Status st = load_and_register();
  if (!st.ok()) {
    (void)db_->DropTable(options.table_name);
    return st;
  }
  OrderedXmlStore* raw = store.get();
  stores_[name] = std::move(store);
  return raw;
}

Result<OrderedXmlStore*> DocumentCollection::GetDocument(
    const std::string& name) const {
  auto it = stores_.find(name);
  if (it == stores_.end()) {
    return Status::NotFound("no document named '" + name + "'");
  }
  return it->second.get();
}

Status DocumentCollection::RemoveDocument(const std::string& name) {
  auto it = stores_.find(name);
  if (it == stores_.end()) {
    return Status::NotFound("no document named '" + name + "'");
  }
  // Deregister before dropping: a crash between the two commits leaves an
  // orphaned node table (harmless), never a catalog row pointing at a
  // table that no longer exists (which would fail the next Attach).
  OXML_RETURN_NOT_OK(db_->Execute("DELETE FROM " + catalog_table() +
                                  " WHERE name = " + SqlQuote(name))
                         .status());
  Status dropped = db_->DropTable(it->second->table_name());
  stores_.erase(it);  // the catalog row is gone either way
  return dropped;
}

std::vector<std::string> DocumentCollection::DocumentNames() const {
  std::vector<std::string> names;
  names.reserve(stores_.size());
  for (const auto& [name, store] : stores_) names.push_back(name);
  return names;
}

Result<std::vector<DocumentCollection::Match>> DocumentCollection::QueryAll(
    std::string_view xpath) const {
  OXML_ASSIGN_OR_RETURN(XPathQuery query, ParseXPath(xpath));
  std::vector<Match> out;
  for (const auto& [name, store] : stores_) {
    OXML_ASSIGN_OR_RETURN(std::vector<StoredNode> nodes,
                          EvaluateXPath(store.get(), query));
    for (StoredNode& n : nodes) out.push_back({name, std::move(n)});
  }
  return out;
}

}  // namespace oxml
