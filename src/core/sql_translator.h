#ifndef OXML_CORE_SQL_TRANSLATOR_H_
#define OXML_CORE_SQL_TRANSLATOR_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/common/result.h"
#include "src/core/ordered_store.h"
#include "src/core/xpath.h"

namespace oxml {

/// Whole-path translation mode: compiles an XPath query into a *single* SQL
/// statement over the node table — the paper's core demonstration that an
/// unmodified relational engine can answer ordered XML queries once order
/// is encoded as data. Each location step becomes one table alias and the
/// axes become join predicates:
///
///   Global: child       n2.pord = n1.ord
///           descendant  n2.ord > n1.ord AND n2.ord <= n1.eord
///           output      ORDER BY nk.ord
///   Local:  child       n2.pid = n1.id
///           descendant  (not expressible without recursion — rejected,
///                        which is precisely the paper's criticism)
///           output      ORDER BY n1.sord, n2.sord, ..., nk.sord
///   Dewey:  child       n2.path > n1.path AND n2.path < SUCC(n1.path)
///                       AND n2.depth = n1.depth + 1
///           descendant  same without the depth conjunct
///           output      ORDER BY nk.path
///
/// Attribute and child-value predicates become additional joins with
/// existential semantics. Positional predicates and sibling axes are not
/// translatable in this mode (they need per-context counting); use the
/// driver mode (EvaluateXPath) for those. Unsupported queries return
/// NotImplemented.
Result<std::string> TranslateXPathToSql(const OrderedXmlStore& store,
                                        const XPathQuery& query);
Result<std::string> TranslateXPathToSql(const OrderedXmlStore& store,
                                        std::string_view xpath);

/// Translates, executes and materializes the query in one call. Results
/// are in document order, duplicates removed (SELECT DISTINCT).
Result<std::vector<StoredNode>> EvaluateXPathViaSql(OrderedXmlStore* store,
                                                    std::string_view xpath);
Result<std::vector<StoredNode>> EvaluateXPathViaSql(OrderedXmlStore* store,
                                                    const XPathQuery& query);

}  // namespace oxml

#endif  // OXML_CORE_SQL_TRANSLATOR_H_
