#include "src/core/xpath_eval.h"

#include <algorithm>
#include <cstdlib>
#include <unordered_set>

namespace oxml {

std::string NodeIdentity(OrderEncoding encoding, const StoredNode& node) {
  switch (encoding) {
    case OrderEncoding::kGlobal:
      return std::to_string(node.ord);
    case OrderEncoding::kLocal:
      return std::to_string(node.id);
    case OrderEncoding::kDewey:
      return node.path;
  }
  return "";
}

namespace {

/// Three-way comparison of XPath values: numeric when both sides parse as
/// numbers, byte-wise otherwise.
int CompareXPathValues(const std::string& a, const std::string& b) {
  char* end_a = nullptr;
  char* end_b = nullptr;
  double da = std::strtod(a.c_str(), &end_a);
  double db = std::strtod(b.c_str(), &end_b);
  bool numeric = !a.empty() && !b.empty() && end_a != nullptr &&
                 *end_a == '\0' && end_b != nullptr && *end_b == '\0';
  if (numeric) {
    if (da < db) return -1;
    if (da > db) return 1;
    return 0;
  }
  return a.compare(b);
}

bool ApplyCmp(XPathCmp op, int cmp) {
  switch (op) {
    case XPathCmp::kEq:
      return cmp == 0;
    case XPathCmp::kNe:
      return cmp != 0;
    case XPathCmp::kLt:
      return cmp < 0;
    case XPathCmp::kLe:
      return cmp <= 0;
    case XPathCmp::kGt:
      return cmp > 0;
    case XPathCmp::kGe:
      return cmp >= 0;
  }
  return false;
}

bool ApplyPositionCmp(XPathCmp op, int64_t position, int64_t target) {
  if (position < target) return ApplyCmp(op, -1);
  if (position > target) return ApplyCmp(op, 1);
  return ApplyCmp(op, 0);
}

/// Applies value/attribute predicates to one node (position predicates are
/// handled over the whole candidate list).
Result<bool> NodeSatisfies(OrderedXmlStore* store, const StoredNode& node,
                           const XPathPredicate& pred) {
  switch (pred.kind) {
    case XPathPredicate::Kind::kAttribute: {
      OXML_ASSIGN_OR_RETURN(std::vector<StoredNode> attrs,
                            store->Attributes(node, pred.name));
      if (attrs.empty()) return false;
      return ApplyCmp(pred.op,
                      CompareXPathValues(attrs[0].value, pred.literal));
    }
    case XPathPredicate::Kind::kHasAttribute: {
      OXML_ASSIGN_OR_RETURN(std::vector<StoredNode> attrs,
                            store->Attributes(node, pred.name));
      return !attrs.empty();
    }
    case XPathPredicate::Kind::kChildValue: {
      // XPath existential semantics: true if ANY matching child satisfies
      // the comparison.
      OXML_ASSIGN_OR_RETURN(
          std::vector<StoredNode> kids,
          store->Children(node, NodeTest::Tag(pred.name)));
      for (const StoredNode& kid : kids) {
        OXML_ASSIGN_OR_RETURN(std::string value, store->StringValue(kid));
        if (ApplyCmp(pred.op, CompareXPathValues(value, pred.literal))) {
          return true;
        }
      }
      return false;
    }
    case XPathPredicate::Kind::kSelfValue: {
      OXML_ASSIGN_OR_RETURN(std::string value, store->StringValue(node));
      return ApplyCmp(pred.op, CompareXPathValues(value, pred.literal));
    }
    default:
      return Status::Internal("positional predicate reached NodeSatisfies");
  }
}

/// Applies all of a step's predicates to the ordered candidate list
/// produced from ONE context node (XPath positional semantics).
Result<std::vector<StoredNode>> ApplyPredicates(
    OrderedXmlStore* store, const std::vector<XPathPredicate>& preds,
    std::vector<StoredNode> candidates) {
  for (const XPathPredicate& pred : preds) {
    std::vector<StoredNode> kept;
    int64_t size = static_cast<int64_t>(candidates.size());
    for (int64_t i = 0; i < size; ++i) {
      bool keep = false;
      switch (pred.kind) {
        case XPathPredicate::Kind::kPosition:
          keep = ApplyPositionCmp(pred.op, i + 1, pred.position);
          break;
        case XPathPredicate::Kind::kLast:
          keep = (i + 1 == size);
          break;
        default: {
          OXML_ASSIGN_OR_RETURN(keep,
                                NodeSatisfies(store, candidates[i], pred));
        }
      }
      if (keep) kept.push_back(std::move(candidates[i]));
    }
    candidates = std::move(kept);
  }
  return candidates;
}

Result<std::vector<StoredNode>> ExpandAxis(OrderedXmlStore* store,
                                           const StoredNode& context,
                                           const XPathStep& step) {
  switch (step.axis) {
    case XPathStep::Axis::kChild:
      return store->Children(context, step.test);
    case XPathStep::Axis::kDescendant:
      return store->Descendants(context, step.test);
    case XPathStep::Axis::kFollowingSibling:
      return store->FollowingSiblings(context, step.test);
    case XPathStep::Axis::kPrecedingSibling:
      return store->PrecedingSiblings(context, step.test);
    case XPathStep::Axis::kAttribute:
      return store->Attributes(context, step.attribute_name);
    case XPathStep::Axis::kParent: {
      Result<StoredNode> parent = store->Parent(context);
      if (!parent.ok()) {
        if (parent.status().IsNotFound()) {
          return std::vector<StoredNode>{};
        }
        return parent.status();
      }
      std::vector<StoredNode> out;
      if (step.test.Matches(parent->kind, parent->tag)) {
        out.push_back(std::move(*parent));
      }
      return out;
    }
    case XPathStep::Axis::kAncestor: {
      std::vector<StoredNode> out;
      StoredNode cur = context;
      while (true) {
        Result<StoredNode> parent = store->Parent(cur);
        if (!parent.ok()) {
          if (parent.status().IsNotFound()) break;
          return parent.status();
        }
        cur = std::move(*parent);
        if (step.test.Matches(cur.kind, cur.tag)) out.push_back(cur);
      }
      // Walked leaf-to-root; results are conventionally in document order.
      std::reverse(out.begin(), out.end());
      return out;
    }
  }
  return Status::Internal("bad axis");
}

}  // namespace

Result<std::vector<StoredNode>> EvaluateXPath(OrderedXmlStore* store,
                                              const XPathQuery& query) {
  if (query.steps.empty()) {
    return Status::InvalidArgument("empty XPath query");
  }

  // Seed the context with the first step evaluated from the document node.
  OXML_ASSIGN_OR_RETURN(StoredNode root, store->Root());
  std::vector<StoredNode> context;
  {
    const XPathStep& first = query.steps[0];
    std::vector<StoredNode> candidates;
    if (first.axis == XPathStep::Axis::kChild) {
      if (first.test.Matches(root.kind, root.tag)) candidates.push_back(root);
    } else if (first.axis == XPathStep::Axis::kDescendant) {
      if (first.test.Matches(root.kind, root.tag)) candidates.push_back(root);
      OXML_ASSIGN_OR_RETURN(std::vector<StoredNode> desc,
                            store->Descendants(root, first.test));
      for (StoredNode& d : desc) candidates.push_back(std::move(d));
    } else {
      return Status::InvalidArgument(
          "the first step must use the child or descendant axis");
    }
    OXML_ASSIGN_OR_RETURN(
        context,
        ApplyPredicates(store, first.predicates, std::move(candidates)));
  }

  for (size_t s = 1; s < query.steps.size() && !context.empty(); ++s) {
    const XPathStep& step = query.steps[s];
    std::vector<StoredNode> next;
    std::unordered_set<std::string> seen;
    bool multi_context = context.size() > 1;
    for (const StoredNode& node : context) {
      OXML_ASSIGN_OR_RETURN(std::vector<StoredNode> candidates,
                            ExpandAxis(store, node, step));
      OXML_ASSIGN_OR_RETURN(
          candidates,
          ApplyPredicates(store, step.predicates, std::move(candidates)));
      for (StoredNode& c : candidates) {
        std::string id = NodeIdentity(store->encoding(), c);
        if (seen.insert(std::move(id)).second) {
          next.push_back(std::move(c));
        }
      }
    }
    // Results of different contexts can interleave whenever contexts can
    // nest (e.g. //a//b, or a child step below //a where one match is an
    // ancestor of another): restore document order when more than one
    // context contributed. This is where the Local encoding pays for
    // lacking a cheap document-order key.
    if (multi_context && !next.empty()) {
      OXML_RETURN_NOT_OK(store->SortDocumentOrder(&next));
    }
    context = std::move(next);
  }
  return context;
}

Result<std::vector<StoredNode>> EvaluateXPath(OrderedXmlStore* store,
                                              std::string_view xpath) {
  OXML_ASSIGN_OR_RETURN(XPathQuery query, ParseXPath(xpath));
  return EvaluateXPath(store, query);
}

Result<std::vector<std::string>> EvaluateXPathStrings(
    OrderedXmlStore* store, std::string_view xpath) {
  OXML_ASSIGN_OR_RETURN(std::vector<StoredNode> nodes,
                        EvaluateXPath(store, xpath));
  std::vector<std::string> out;
  out.reserve(nodes.size());
  for (const StoredNode& n : nodes) {
    OXML_ASSIGN_OR_RETURN(std::string v, store->StringValue(n));
    out.push_back(std::move(v));
  }
  return out;
}

}  // namespace oxml
