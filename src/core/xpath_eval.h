#ifndef OXML_CORE_XPATH_EVAL_H_
#define OXML_CORE_XPATH_EVAL_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/common/result.h"
#include "src/core/ordered_store.h"
#include "src/core/xpath.h"

namespace oxml {

/// Evaluates a parsed XPath query against an ordered store. The evaluator
/// is the paper's "query driver": every axis is translated to indexed SQL
/// by the store, positional predicates are applied over the (already
/// ordered) per-context candidate lists, and results are returned in
/// document order with duplicates removed.
Result<std::vector<StoredNode>> EvaluateXPath(OrderedXmlStore* store,
                                              const XPathQuery& query);

/// Parses and evaluates `xpath`.
Result<std::vector<StoredNode>> EvaluateXPath(OrderedXmlStore* store,
                                              std::string_view xpath);

/// Convenience: evaluates and maps each result to its string value.
Result<std::vector<std::string>> EvaluateXPathStrings(OrderedXmlStore* store,
                                                      std::string_view xpath);

/// Encoding-specific identity of a stored node (used for de-duplication).
std::string NodeIdentity(OrderEncoding encoding, const StoredNode& node);

}  // namespace oxml

#endif  // OXML_CORE_XPATH_EVAL_H_
