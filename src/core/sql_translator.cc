#include "src/core/sql_translator.h"

#include "src/common/strings.h"

namespace oxml {
namespace {

std::string KindEq(const std::string& alias, XmlNodeKind kind) {
  return alias + ".kind = " + std::to_string(static_cast<int>(kind));
}

/// Alias-qualified SQL fragment for a node test.
Result<std::string> TestCondition(const std::string& alias,
                                  const NodeTest& test) {
  switch (test.kind) {
    case NodeTest::Kind::kAnyElement:
      return KindEq(alias, XmlNodeKind::kElement);
    case NodeTest::Kind::kTag:
      return KindEq(alias, XmlNodeKind::kElement) + " AND " + alias +
             ".tag = " + SqlQuote(test.tag);
    case NodeTest::Kind::kText:
      return KindEq(alias, XmlNodeKind::kText);
    case NodeTest::Kind::kAnyNode:
      return alias + ".kind <> " +
             std::to_string(static_cast<int>(XmlNodeKind::kAttribute));
  }
  return Status::Internal("bad node test");
}

const char* SqlCmp(XPathCmp op) {
  switch (op) {
    case XPathCmp::kEq:
      return "=";
    case XPathCmp::kNe:
      return "<>";
    case XPathCmp::kLt:
      return "<";
    case XPathCmp::kLe:
      return "<=";
    case XPathCmp::kGt:
      return ">";
    case XPathCmp::kGe:
      return ">=";
  }
  return "=";
}

class Translator {
 public:
  Translator(const OrderedXmlStore& store, const XPathQuery& query)
      : store_(store), query_(query), table_(store.table_name()) {}

  Result<std::string> Translate() {
    if (query_.steps.empty()) {
      return Status::InvalidArgument("empty XPath query");
    }

    for (size_t i = 0; i < query_.steps.size(); ++i) {
      const XPathStep& step = query_.steps[i];
      std::string alias = "n" + std::to_string(i + 1);
      std::string prev = i == 0 ? "" : "n" + std::to_string(i);

      switch (step.axis) {
        case XPathStep::Axis::kChild:
          OXML_RETURN_NOT_OK(AddNodeAlias(alias, prev, /*descendant=*/false,
                                          step.test));
          break;
        case XPathStep::Axis::kDescendant:
          OXML_RETURN_NOT_OK(AddNodeAlias(alias, prev, /*descendant=*/true,
                                          step.test));
          break;
        case XPathStep::Axis::kAttribute: {
          if (i + 1 != query_.steps.size()) {
            return Status::NotImplemented(
                "attribute axis is only translatable as the final step");
          }
          if (i == 0) {
            return Status::NotImplemented(
                "attribute axis needs a context step");
          }
          OXML_RETURN_NOT_OK(AddAttributeAlias(alias, prev,
                                               step.attribute_name));
          break;
        }
        case XPathStep::Axis::kParent: {
          if (i == 0) {
            return Status::NotImplemented("parent axis needs a context step");
          }
          OXML_RETURN_NOT_OK(AddParentAlias(alias, prev, step.test));
          break;
        }
        case XPathStep::Axis::kAncestor:
          return Status::NotImplemented(
              "the ancestor axis requires a recursive join; use the driver "
              "mode (EvaluateXPath)");
        case XPathStep::Axis::kFollowingSibling:
        case XPathStep::Axis::kPrecedingSibling:
          return Status::NotImplemented(
              "sibling axes require per-context evaluation; use the driver "
              "mode (EvaluateXPath)");
      }

      for (const XPathPredicate& pred : step.predicates) {
        OXML_RETURN_NOT_OK(AddPredicate(alias, pred));
      }
      order_aliases_.push_back(alias);
    }

    std::string last = "n" + std::to_string(query_.steps.size());
    std::string sql = "SELECT DISTINCT " + QualifiedColumns(last) + " FROM " +
                      Join(from_, ", ");
    if (!where_.empty()) sql += " WHERE " + Join(where_, " AND ");
    sql += " ORDER BY " + OrderBy(last);
    return sql;
  }

 private:
  OrderEncoding encoding() const { return store_.encoding(); }

  std::string QualifiedColumns(const std::string& alias) const {
    std::vector<std::string> cols = Split(store_.NodeColumns(), ',');
    std::vector<std::string> out;
    for (std::string& c : cols) out.push_back(alias + "." + Trim(c));
    return Join(out, ", ");
  }

  std::string OrderBy(const std::string& last) const {
    switch (encoding()) {
      case OrderEncoding::kGlobal:
        return last + ".ord";
      case OrderEncoding::kDewey:
        return last + ".path";
      case OrderEncoding::kLocal: {
        // Document order of the result is the lexicographic order of the
        // sibling ordinals down the join path — expressible only because
        // every step is a child join.
        std::vector<std::string> keys;
        for (const std::string& a : order_aliases_) {
          keys.push_back(a + ".sord");
        }
        return Join(keys, ", ");
      }
    }
    return last + ".ord";
  }

  /// Join predicate placing `alias` on the child/descendant axis of `prev`
  /// (empty prev = the document node).
  ///
  /// The containment pairs emitted here (Global:
  /// `a.ord > p.ord AND a.ord <= p.eord`; Dewey:
  /// `a.path > p.path AND a.path < SUCC(p.path)`) are the canonical shapes
  /// the planner's interval-join detector lowers to StructuralJoinOp —
  /// keep them as two top-level AND conjuncts comparing a bare column of
  /// one alias against expressions over the other. Extra conjuncts (e.g.
  /// the Dewey child-axis depth equality) are fine: they survive as a
  /// residual filter above the structural join.
  Result<std::string> AxisJoin(const std::string& alias,
                               const std::string& prev, bool descendant) {
    switch (encoding()) {
      case OrderEncoding::kGlobal:
        if (prev.empty()) {
          return descendant ? std::string()  // any node
                            : alias + ".pord = 0";
        }
        if (descendant) {
          return alias + ".ord > " + prev + ".ord AND " + alias +
                 ".ord <= " + prev + ".eord";
        }
        return alias + ".pord = " + prev + ".ord";
      case OrderEncoding::kLocal:
        if (descendant) {
          return Status::NotImplemented(
              "the local encoding cannot express the descendant axis in one "
              "SQL statement (requires a recursive join); use the driver "
              "mode");
        }
        if (prev.empty()) return alias + ".pid = 0";
        return alias + ".pid = " + prev + ".id";
      case OrderEncoding::kDewey: {
        if (prev.empty()) {
          return descendant ? std::string() : alias + ".depth = 1";
        }
        std::string range = alias + ".path > " + prev + ".path AND " +
                            alias + ".path < SUCC(" + prev + ".path)";
        if (!descendant) {
          range += " AND " + alias + ".depth = " + prev + ".depth + 1";
        }
        return range;
      }
    }
    return Status::Internal("bad encoding");
  }

  Status AddNodeAlias(const std::string& alias, const std::string& prev,
                      bool descendant, const NodeTest& test) {
    from_.push_back(table_ + " " + alias);
    OXML_ASSIGN_OR_RETURN(std::string join, AxisJoin(alias, prev, descendant));
    if (!join.empty()) where_.push_back(std::move(join));
    OXML_ASSIGN_OR_RETURN(std::string cond, TestCondition(alias, test));
    where_.push_back(std::move(cond));
    return Status::OK();
  }

  /// parent:: step — an equi join for Global/Local; a PATH_PARENT function
  /// join for Dewey.
  Status AddParentAlias(const std::string& alias, const std::string& prev,
                        const NodeTest& test) {
    from_.push_back(table_ + " " + alias);
    switch (encoding()) {
      case OrderEncoding::kGlobal:
        where_.push_back(alias + ".ord = " + prev + ".pord");
        break;
      case OrderEncoding::kLocal:
        where_.push_back(alias + ".id = " + prev + ".pid");
        break;
      case OrderEncoding::kDewey:
        where_.push_back(alias + ".path = PATH_PARENT(" + prev + ".path)");
        break;
    }
    OXML_ASSIGN_OR_RETURN(std::string cond, TestCondition(alias, test));
    where_.push_back(std::move(cond));
    return Status::OK();
  }

  Status AddAttributeAlias(const std::string& alias, const std::string& prev,
                           const std::string& name) {
    from_.push_back(table_ + " " + alias);
    OXML_ASSIGN_OR_RETURN(std::string join,
                          AxisJoin(alias, prev, /*descendant=*/false));
    if (!join.empty()) where_.push_back(std::move(join));
    where_.push_back(KindEq(alias, XmlNodeKind::kAttribute));
    if (!name.empty()) {
      where_.push_back(alias + ".tag = " + SqlQuote(name));
    }
    return Status::OK();
  }

  Status AddPredicate(const std::string& context,
                      const XPathPredicate& pred) {
    switch (pred.kind) {
      case XPathPredicate::Kind::kPosition:
      case XPathPredicate::Kind::kLast:
        return Status::NotImplemented(
            "positional predicates require per-context counting; use the "
            "driver mode (EvaluateXPath)");
      case XPathPredicate::Kind::kAttribute:
      case XPathPredicate::Kind::kHasAttribute: {
        std::string alias = NextPredAlias();
        from_.push_back(table_ + " " + alias);
        OXML_ASSIGN_OR_RETURN(std::string join,
                              AxisJoin(alias, context, false));
        where_.push_back(std::move(join));
        where_.push_back(KindEq(alias, XmlNodeKind::kAttribute));
        where_.push_back(alias + ".tag = " + SqlQuote(pred.name));
        if (pred.kind == XPathPredicate::Kind::kAttribute) {
          where_.push_back(alias + ".val " + SqlCmp(pred.op) + " " +
                           SqlQuote(pred.literal));
        }
        return Status::OK();
      }
      case XPathPredicate::Kind::kChildValue: {
        // [c op 'v'] — existential: some child <c> with a text child
        // comparing true. (The driver compares the full string value; the
        // translation uses direct text children, the standard SQL-level
        // approximation.)
        std::string child = NextPredAlias();
        from_.push_back(table_ + " " + child);
        OXML_ASSIGN_OR_RETURN(std::string join,
                              AxisJoin(child, context, false));
        where_.push_back(std::move(join));
        where_.push_back(KindEq(child, XmlNodeKind::kElement));
        where_.push_back(child + ".tag = " + SqlQuote(pred.name));

        std::string text = NextPredAlias();
        from_.push_back(table_ + " " + text);
        OXML_ASSIGN_OR_RETURN(std::string tjoin,
                              AxisJoin(text, child, false));
        where_.push_back(std::move(tjoin));
        where_.push_back(KindEq(text, XmlNodeKind::kText));
        where_.push_back(text + ".val " + SqlCmp(pred.op) + " " +
                         SqlQuote(pred.literal));
        return Status::OK();
      }
      case XPathPredicate::Kind::kSelfValue: {
        // [. op 'v'] — existential over direct text children.
        std::string text = NextPredAlias();
        from_.push_back(table_ + " " + text);
        OXML_ASSIGN_OR_RETURN(std::string join,
                              AxisJoin(text, context, false));
        where_.push_back(std::move(join));
        where_.push_back(KindEq(text, XmlNodeKind::kText));
        where_.push_back(text + ".val " + SqlCmp(pred.op) + " " +
                         SqlQuote(pred.literal));
        return Status::OK();
      }
    }
    return Status::Internal("bad predicate");
  }

  std::string NextPredAlias() { return "p" + std::to_string(++pred_count_); }

  const OrderedXmlStore& store_;
  const XPathQuery& query_;
  std::string table_;
  std::vector<std::string> from_;
  std::vector<std::string> where_;
  std::vector<std::string> order_aliases_;
  int pred_count_ = 0;
};

}  // namespace

Result<std::string> TranslateXPathToSql(const OrderedXmlStore& store,
                                        const XPathQuery& query) {
  Translator translator(store, query);
  return translator.Translate();
}

Result<std::string> TranslateXPathToSql(const OrderedXmlStore& store,
                                        std::string_view xpath) {
  OXML_ASSIGN_OR_RETURN(XPathQuery query, ParseXPath(xpath));
  return TranslateXPathToSql(store, query);
}

Result<std::vector<StoredNode>> EvaluateXPathViaSql(OrderedXmlStore* store,
                                                    const XPathQuery& query) {
  OXML_ASSIGN_OR_RETURN(std::string sql, TranslateXPathToSql(*store, query));
  // Repeated evaluations of the same XPath reuse the cached plan keyed by
  // the translated SQL text.
  OXML_ASSIGN_OR_RETURN(PreparedStatement ps, store->db()->Prepare(sql));
  OXML_ASSIGN_OR_RETURN(ResultSet rs, ps.Query());
  std::vector<StoredNode> out;
  out.reserve(rs.rows.size());
  for (const Row& row : rs.rows) out.push_back(store->NodeFromRow(row));
  return out;
}

Result<std::vector<StoredNode>> EvaluateXPathViaSql(OrderedXmlStore* store,
                                                    std::string_view xpath) {
  OXML_ASSIGN_OR_RETURN(XPathQuery query, ParseXPath(xpath));
  return EvaluateXPathViaSql(store, query);
}

}  // namespace oxml
