#include <algorithm>

#include "src/common/strings.h"
#include "src/core/stores.h"

namespace oxml {

namespace {

constexpr const char* kCols = "ord, eord, pord, depth, kind, tag, val";

StoredNode FromGlobalRow(const Row& row) {
  StoredNode n;
  n.ord = row[0].AsInt();
  n.eord = row[1].AsInt();
  n.pord = row[2].AsInt();
  n.depth = row[3].AsInt();
  n.kind = static_cast<XmlNodeKind>(row[4].AsInt());
  n.tag = row[5].AsString();
  n.value = row[6].is_null() ? "" : row[6].AsString();
  return n;
}

}  // namespace

const char* GlobalStore::NodeColumns() const { return kCols; }

StoredNode GlobalStore::NodeFromRow(const Row& row) const {
  return FromGlobalRow(row);
}

// Index column order doubles as a sort-order claim the planner exploits:
// (tag, ord) means "an equality probe on tag yields rows in ord order" —
// document order for free, which is what lets descendant containment run
// as a structural join and the translator's ORDER BY ord be elided.
Status GlobalStore::CreateTableAndIndexes() {
  const std::string& t = table_name();
  OXML_RETURN_NOT_OK(db_->Execute("CREATE TABLE " + t +
                                  " (ord INT, eord INT, pord INT, depth INT,"
                                  " kind INT, tag TEXT, val TEXT)")
                         .status());
  OXML_RETURN_NOT_OK(
      db_->Execute("CREATE INDEX " + t + "_ord ON " + t + " (ord)").status());
  OXML_RETURN_NOT_OK(
      db_->Execute("CREATE INDEX " + t + "_eord ON " + t + " (eord)")
          .status());
  OXML_RETURN_NOT_OK(
      db_->Execute("CREATE INDEX " + t + "_pord ON " + t + " (pord, ord)")
          .status());
  OXML_RETURN_NOT_OK(
      db_->Execute("CREATE INDEX " + t + "_tag ON " + t + " (tag, ord)")
          .status());
  return Status::OK();
}

void GlobalStore::ShredInto(const XmlNode& node, int64_t pord, int64_t depth,
                            int64_t step, int64_t* counter,
                            std::vector<Row>* rows, int64_t* subtree_max) {
  *counter += step;
  int64_t ord = *counter;
  size_t row_index = rows->size();
  rows->push_back(Row{Value::Int(ord), Value::Int(0), Value::Int(pord),
                      Value::Int(depth),
                      Value::Int(static_cast<int64_t>(node.kind())),
                      Value::Text(node.name()), Value::Text(node.value())});
  for (const XmlAttribute& attr : node.attributes()) {
    *counter += step;
    rows->push_back(
        Row{Value::Int(*counter), Value::Int(*counter), Value::Int(ord),
            Value::Int(depth + 1),
            Value::Int(static_cast<int64_t>(XmlNodeKind::kAttribute)),
            Value::Text(attr.name), Value::Text(attr.value)});
  }
  for (const auto& child : node.children()) {
    int64_t child_max = 0;
    ShredInto(*child, ord, depth + 1, step, counter, rows, &child_max);
  }
  (*rows)[row_index][1] = Value::Int(*counter);  // eord = max ord in subtree
  if (subtree_max != nullptr) *subtree_max = *counter;
}

Status GlobalStore::BulkInsert(const std::vector<Row>& rows,
                               UpdateStats* stats) {
  OXML_ASSIGN_OR_RETURN(
      PreparedStatement ins,
      db_->Prepare("INSERT INTO " + table_name() + " (" + kCols +
                   ") VALUES (?, ?, ?, ?, ?, ?, ?)"));
  OXML_RETURN_NOT_OK(ins.ExecuteBatch(rows).status());
  if (stats != nullptr) {
    ++stats->statements;  // modeled as one multi-row INSERT
    stats->nodes_inserted += static_cast<int64_t>(rows.size());
  }
  return Status::OK();
}

Status GlobalStore::DoLoadDocument(const XmlDocument& doc) {
  std::vector<Row> rows;
  int64_t counter = 0;
  for (const auto& top : doc.root()->children()) {
    ShredInto(*top, 0, 1, options_.gap, &counter, &rows, nullptr);
  }
  return BulkInsert(rows, nullptr);
}

Status GlobalStore::EmitUnitRows(const ShredUnit& u, std::vector<Row>* rows) {
  const int64_t step = options_.gap;
  // The serial DFS bumps the counter before each row, so the k-th row of
  // the full stream (0-based) gets ord = step * (k + 1); the parent's ord
  // follows the same formula applied to its row offset.
  const int64_t pord =
      u.parent_row_offset < 0 ? 0 : step * (u.parent_row_offset + 1);
  if (u.whole_subtree) {
    // Replay the serial shredder with the counter pre-positioned at the
    // unit's first row; every ord/eord inside comes out identical.
    int64_t counter = step * static_cast<int64_t>(u.row_offset);
    ShredInto(*u.node, pord, u.depth, step, &counter, rows, nullptr);
    return Status::OK();
  }
  // Header unit: the element row plus its attributes; the children arrive
  // as later units. eord spans the whole subtree even though its rows are
  // emitted elsewhere — subtree_rows makes it computable here.
  const int64_t ord = step * (static_cast<int64_t>(u.row_offset) + 1);
  const int64_t eord =
      step * static_cast<int64_t>(u.row_offset + u.subtree_rows);
  rows->push_back(Row{Value::Int(ord), Value::Int(eord), Value::Int(pord),
                      Value::Int(u.depth),
                      Value::Int(static_cast<int64_t>(u.node->kind())),
                      Value::Text(u.node->name()),
                      Value::Text(u.node->value())});
  int64_t c = ord;
  for (const XmlAttribute& attr : u.node->attributes()) {
    c += step;
    rows->push_back(
        Row{Value::Int(c), Value::Int(c), Value::Int(ord),
            Value::Int(u.depth + 1),
            Value::Int(static_cast<int64_t>(XmlNodeKind::kAttribute)),
            Value::Text(attr.name), Value::Text(attr.value)});
  }
  return Status::OK();
}

Result<std::vector<StoredNode>> GlobalStore::Select(const std::string& where,
                                                    Row params,
                                                    const std::string& order) {
  std::string sql = std::string("SELECT ") + kCols + " FROM " + table_name();
  if (!where.empty()) sql += " WHERE " + where;
  if (!order.empty()) sql += " ORDER BY " + order;
  OXML_ASSIGN_OR_RETURN(ResultSet rs, SqlP(sql, std::move(params)));
  std::vector<StoredNode> out;
  out.reserve(rs.rows.size());
  for (const Row& row : rs.rows) out.push_back(FromGlobalRow(row));
  return out;
}

Result<StoredNode> GlobalStore::SelectOne(const std::string& where,
                                          Row params) {
  OXML_ASSIGN_OR_RETURN(std::vector<StoredNode> nodes,
                        Select(where, std::move(params), "ord"));
  if (nodes.empty()) return Status::NotFound("no node matches: " + where);
  return nodes.front();
}

Result<StoredNode> GlobalStore::Root() {
  return SelectOne("pord = 0 AND kind = " +
                       IntLit(static_cast<int>(XmlNodeKind::kElement)),
                   {});
}

Result<std::vector<StoredNode>> GlobalStore::Children(const StoredNode& node,
                                                      const NodeTest& test) {
  Row params{Value::Int(node.ord)};
  // Built before the Select call: SqlConditionP appends to `params`, and
  // argument evaluation order would otherwise race it against the move.
  std::string where = "pord = ? AND " + test.SqlConditionP(&params);
  return Select(where, std::move(params), "ord");
}

Result<std::vector<StoredNode>> GlobalStore::Descendants(
    const StoredNode& node, const NodeTest& test) {
  Row params{Value::Int(node.ord), Value::Int(node.eord)};
  std::string where =
      "ord > ? AND ord <= ? AND " + test.SqlConditionP(&params);
  return Select(where, std::move(params), "ord");
}

Result<std::vector<StoredNode>> GlobalStore::FollowingSiblings(
    const StoredNode& node, const NodeTest& test) {
  Row params{Value::Int(node.pord), Value::Int(node.ord)};
  std::string where =
      "pord = ? AND ord > ? AND " + test.SqlConditionP(&params);
  return Select(where, std::move(params), "ord");
}

Result<std::vector<StoredNode>> GlobalStore::PrecedingSiblings(
    const StoredNode& node, const NodeTest& test) {
  Row params{Value::Int(node.pord), Value::Int(node.ord)};
  std::string where =
      "pord = ? AND ord < ? AND " + test.SqlConditionP(&params);
  return Select(where, std::move(params), "ord");
}

Result<std::vector<StoredNode>> GlobalStore::Attributes(
    const StoredNode& node, std::string_view name) {
  Row params{Value::Int(node.ord)};
  std::string where = "pord = ? AND kind = " +
                      IntLit(static_cast<int>(XmlNodeKind::kAttribute));
  if (!name.empty()) {
    where += " AND tag = ?";
    params.push_back(Value::Text(std::string(name)));
  }
  return Select(where, std::move(params), "ord");
}

Result<StoredNode> GlobalStore::Parent(const StoredNode& node) {
  if (node.pord == 0) return Status::NotFound("root has no parent");
  return SelectOne("ord = ?", {Value::Int(node.pord)});
}

Status GlobalStore::SortDocumentOrder(std::vector<StoredNode>* nodes) {
  std::sort(nodes->begin(), nodes->end(),
            [](const StoredNode& a, const StoredNode& b) {
              return a.ord < b.ord;
            });
  return Status::OK();
}

Result<std::string> GlobalStore::StringValue(const StoredNode& node) {
  if (node.kind == XmlNodeKind::kText ||
      node.kind == XmlNodeKind::kAttribute ||
      node.kind == XmlNodeKind::kComment) {
    return node.value;
  }
  OXML_ASSIGN_OR_RETURN(
      ResultSet rs,
      SqlP("SELECT val FROM " + table_name() +
               " WHERE ord >= ? AND ord <= ? AND kind = " +
               IntLit(static_cast<int>(XmlNodeKind::kText)) + " ORDER BY ord",
           {Value::Int(node.ord), Value::Int(node.eord)}));
  std::string out;
  for (const Row& row : rs.rows) out += row[0].AsString();
  return out;
}

Result<std::unique_ptr<XmlDocument>> GlobalStore::ReconstructDocument() {
  OXML_ASSIGN_OR_RETURN(std::vector<StoredNode> nodes, Select("", {}, "ord"));
  auto doc = std::make_unique<XmlDocument>();
  OXML_RETURN_NOT_OK(AssembleByDepth(nodes, 1, doc->root()));
  return doc;
}

Result<std::unique_ptr<XmlNode>> GlobalStore::ReconstructSubtree(
    const StoredNode& node) {
  OXML_ASSIGN_OR_RETURN(
      std::vector<StoredNode> nodes,
      Select("ord >= ? AND ord <= ?",
             {Value::Int(node.ord), Value::Int(node.eord)}, "ord"));
  auto holder = std::make_unique<XmlNode>(XmlNodeKind::kDocument, "#holder");
  OXML_RETURN_NOT_OK(AssembleByDepth(nodes, node.depth, holder.get()));
  if (holder->child_count() != 1) {
    return Status::Internal("subtree reconstruction produced " +
                            std::to_string(holder->child_count()) +
                            " roots");
  }
  return holder->RemoveChild(0);
}

Result<bool> GlobalStore::IsDescendantOf(const StoredNode& node,
                                         const StoredNode& ancestor) {
  return node.ord > ancestor.ord && node.ord <= ancestor.eord;
}

std::string GlobalStore::KeyCondition(const StoredNode& node) const {
  return "ord = " + IntLit(node.ord);
}

std::string GlobalStore::KeyConditionP(const StoredNode& node,
                                       Row* params) const {
  params->push_back(Value::Int(node.ord));
  return "ord = ?";
}

Status GlobalStore::Validate() {
  OXML_ASSIGN_OR_RETURN(std::vector<StoredNode> rows, Select("", {}, "ord"));
  std::vector<const StoredNode*> stack;  // open ancestor intervals
  int roots = 0;
  int64_t prev_ord = -1;
  for (const StoredNode& n : rows) {
    if (n.ord <= prev_ord) {
      return Status::Internal("duplicate or unordered ord " +
                              std::to_string(n.ord));
    }
    prev_ord = n.ord;
    if (n.eord < n.ord) {
      return Status::Internal("eord < ord at " + std::to_string(n.ord));
    }
    while (!stack.empty() && stack.back()->eord < n.ord) stack.pop_back();
    if (stack.empty()) {
      if (n.pord != 0) {
        return Status::Internal("top-level node with pord != 0 at " +
                                std::to_string(n.ord));
      }
      if (n.depth != 1) {
        return Status::Internal("top-level node with depth != 1");
      }
      if (n.kind == XmlNodeKind::kElement) ++roots;
    } else {
      const StoredNode* parent = stack.back();
      if (n.pord != parent->ord) {
        return Status::Internal(
            "pord mismatch at ord " + std::to_string(n.ord) + ": pord=" +
            std::to_string(n.pord) + " enclosing=" +
            std::to_string(parent->ord));
      }
      if (n.depth != parent->depth + 1) {
        return Status::Internal("depth mismatch at ord " +
                                std::to_string(n.ord));
      }
      if (n.eord > parent->eord) {
        return Status::Internal("interval escapes parent at ord " +
                                std::to_string(n.ord));
      }
    }
    if (n.kind != XmlNodeKind::kElement && n.eord != n.ord) {
      return Status::Internal("leaf with eord != ord at " +
                              std::to_string(n.ord));
    }
    if (n.kind == XmlNodeKind::kElement) stack.push_back(&n);
  }
  if (roots != 1) {
    return Status::Internal("expected exactly 1 root element, found " +
                            std::to_string(roots));
  }
  return Status::OK();
}

Result<UpdateStats> GlobalStore::DoInsertSubtree(const StoredNode& ref,
                                               InsertPosition pos,
                                               const XmlNode& subtree) {
  if (ref.kind == XmlNodeKind::kAttribute) {
    return Status::InvalidArgument("cannot insert relative to an attribute");
  }
  UpdateStats stats;
  const std::string& t = table_name();

  // Resolve (parent P, left neighbor L, right neighbor R).
  StoredNode parent;
  bool have_left = false, have_right = false;
  StoredNode left, right;

  auto last_attr_or_none = [&](const StoredNode& p) -> Result<bool> {
    OXML_ASSIGN_OR_RETURN(
        std::vector<StoredNode> attrs,
        Select("pord = ? AND kind = " +
                   IntLit(static_cast<int>(XmlNodeKind::kAttribute)),
               {Value::Int(p.ord)}, "ord DESC LIMIT 1"));
    if (attrs.empty()) return false;
    left = attrs.front();
    return true;
  };

  switch (pos) {
    case InsertPosition::kBefore: {
      OXML_ASSIGN_OR_RETURN(parent, Parent(ref));
      right = ref;
      have_right = true;
      OXML_ASSIGN_OR_RETURN(
          std::vector<StoredNode> prev,
          Select("pord = ? AND ord < ?",
                 {Value::Int(parent.ord), Value::Int(ref.ord)},
                 "ord DESC LIMIT 1"));
      if (!prev.empty()) {
        left = prev.front();
        have_left = true;
      } else {
        OXML_ASSIGN_OR_RETURN(have_left, last_attr_or_none(parent));
      }
      break;
    }
    case InsertPosition::kAfter: {
      OXML_ASSIGN_OR_RETURN(parent, Parent(ref));
      left = ref;
      have_left = true;
      OXML_ASSIGN_OR_RETURN(
          std::vector<StoredNode> next,
          Select("pord = ? AND ord > ?",
                 {Value::Int(parent.ord), Value::Int(ref.ord)},
                 "ord LIMIT 1"));
      if (!next.empty()) {
        right = next.front();
        have_right = true;
      }
      break;
    }
    case InsertPosition::kFirstChild: {
      parent = ref;
      OXML_ASSIGN_OR_RETURN(
          std::vector<StoredNode> kids,
          Select("pord = ? AND kind <> " +
                     IntLit(static_cast<int>(XmlNodeKind::kAttribute)),
                 {Value::Int(parent.ord)}, "ord LIMIT 1"));
      if (!kids.empty()) {
        right = kids.front();
        have_right = true;
      }
      OXML_ASSIGN_OR_RETURN(have_left, last_attr_or_none(parent));
      break;
    }
    case InsertPosition::kLastChild: {
      parent = ref;
      OXML_ASSIGN_OR_RETURN(
          std::vector<StoredNode> kids,
          Select("pord = ?", {Value::Int(parent.ord)}, "ord DESC LIMIT 1"));
      if (!kids.empty()) {
        left = kids.front();
        have_left = true;
      }
      break;
    }
  }
  stats.statements += 2;  // neighbor resolution queries (amortized)

  int64_t lo = have_left ? left.eord : parent.ord;
  int64_t hi = 0;
  bool hi_finite = true;
  if (have_right) {
    hi = right.ord;
  } else {
    // Appending at the subtree tail: the ceiling is the first node after
    // the parent's interval.
    OXML_ASSIGN_OR_RETURN(
        ResultSet rs,
        SqlP("SELECT ord FROM " + t + " WHERE ord > ? ORDER BY ord LIMIT 1",
             {Value::Int(parent.eord)}, &stats));
    if (rs.rows.empty()) {
      hi_finite = false;
    } else {
      hi = rs.rows[0][0].AsInt();
    }
  }

  int64_t m = static_cast<int64_t>(subtree.SubtreeSize());

  if (hi_finite && hi - lo - 1 < m) {
    // Renumber: shift every order value at or beyond `hi` to make room.
    // All three order-bearing columns must shift consistently.
    int64_t delta = (m + 1) * options_.gap;
    OXML_ASSIGN_OR_RETURN(
        int64_t shifted,
        DmlP("UPDATE " + t + " SET ord = ord + ? WHERE ord >= ?",
             {Value::Int(delta), Value::Int(hi)}, &stats));
    OXML_RETURN_NOT_OK(
        DmlP("UPDATE " + t + " SET eord = eord + ? WHERE eord >= ?",
             {Value::Int(delta), Value::Int(hi)}, &stats)
            .status());
    OXML_RETURN_NOT_OK(
        DmlP("UPDATE " + t + " SET pord = pord + ? WHERE pord >= ?",
             {Value::Int(delta), Value::Int(hi)}, &stats)
            .status());
    stats.rows_renumbered += shifted;
    stats.renumbering_triggered = true;
    hi += delta;
  }

  int64_t step =
      hi_finite ? std::max<int64_t>(1, (hi - lo) / (m + 1)) : options_.gap;
  step = std::min(step, options_.gap);

  std::vector<Row> rows;
  int64_t counter = lo;
  ShredInto(subtree, parent.ord, parent.depth + 1, step, &counter, &rows,
            nullptr);
  int64_t new_max = counter;
  OXML_RETURN_NOT_OK(BulkInsert(rows, &stats));

  if (!have_right) {
    // Extend the interval of the parent and of every ancestor whose
    // interval falls short of the appended tail. Matching on
    // `eord = parent.eord` alone is not enough: DeleteSubtree leaves
    // ancestor eords as loose over-approximations, so an ancestor may end
    // anywhere in (parent.eord, new_max) without any row sitting there.
    // Ancestors-or-self of the parent are exactly the rows with
    // ord <= parent.ord and eord >= parent.eord (interval nesting).
    OXML_ASSIGN_OR_RETURN(
        int64_t extended,
        DmlP("UPDATE " + t +
                 " SET eord = ? WHERE ord <= ? AND eord >= ? AND eord < ?",
             {Value::Int(new_max), Value::Int(parent.ord),
              Value::Int(parent.eord), Value::Int(new_max)},
             &stats));
    stats.rows_renumbered += extended;
  }
  return stats;
}

Result<UpdateStats> GlobalStore::DoDeleteSubtree(const StoredNode& node) {
  UpdateStats stats;
  OXML_ASSIGN_OR_RETURN(
      int64_t deleted,
      DmlP("DELETE FROM " + table_name() + " WHERE ord >= ? AND ord <= ?",
           {Value::Int(node.ord), Value::Int(node.eord)}, &stats));
  // Ancestor eords are left as (correct but loose) over-approximations of
  // their intervals; every remaining node still falls in exactly its
  // ancestors' intervals.
  stats.nodes_deleted = deleted;
  return stats;
}

}  // namespace oxml
