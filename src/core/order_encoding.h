#ifndef OXML_CORE_ORDER_ENCODING_H_
#define OXML_CORE_ORDER_ENCODING_H_

#include <cstdint>
#include <string>

#include "src/xml/xml_node.h"

namespace oxml {

/// The three order encodings proposed by the paper.
enum class OrderEncoding : uint8_t {
  kGlobal = 0,  ///< absolute position in document order + subtree interval
  kLocal = 1,   ///< (parent id, sibling ordinal)
  kDewey = 2,   ///< path of sibling ordinals, byte-encoded (see DeweyKey)
};

const char* OrderEncodingToString(OrderEncoding encoding);

/// Configuration of an ordered XML store.
struct StoreOptions {
  /// Sparse-numbering gap: consecutive ordinals are assigned
  /// gap, 2*gap, 3*gap, ... so inserts usually find a free ordinal without
  /// renumbering. gap = 1 is dense numbering (every insert renumbers).
  int64_t gap = 32;
  /// Table name used in the database (one store per table).
  std::string table_name = "nodes";
};

/// Where to place an inserted subtree relative to a reference node.
enum class InsertPosition : uint8_t {
  kBefore,      ///< as the sibling immediately preceding the reference node
  kAfter,       ///< as the sibling immediately following the reference node
  kFirstChild,  ///< as the first child of the reference node
  kLastChild,   ///< as the last child of the reference node
};

/// Cost accounting for one ordered update operation. The paper's update
/// experiments report exactly these: how many existing rows had to be
/// renumbered, and whether a renumbering event fired at all.
struct UpdateStats {
  int64_t nodes_inserted = 0;   ///< rows added for the new subtree
  int64_t nodes_deleted = 0;    ///< rows removed (delete operations)
  int64_t rows_renumbered = 0;  ///< existing rows whose order key changed
  int64_t statements = 0;       ///< SQL statements issued
  bool renumbering_triggered = false;

  void Add(const UpdateStats& other) {
    nodes_inserted += other.nodes_inserted;
    nodes_deleted += other.nodes_deleted;
    rows_renumbered += other.rows_renumbered;
    statements += other.statements;
    renumbering_triggered =
        renumbering_triggered || other.renumbering_triggered;
  }
};

/// A node as materialized from the relational store. Only the fields of the
/// owning store's encoding are meaningful (plus the common ones); the
/// others stay zero/empty.
struct StoredNode {
  // Common fields.
  XmlNodeKind kind = XmlNodeKind::kElement;
  std::string tag;
  std::string value;
  int64_t depth = 0;  ///< root element has depth 1

  // Global encoding.
  int64_t ord = 0;   ///< absolute document-order position
  int64_t eord = 0;  ///< largest ord in this node's subtree
  int64_t pord = 0;  ///< parent's ord (0 for the root)

  // Local encoding.
  int64_t id = 0;    ///< surrogate node id
  int64_t pid = 0;   ///< parent id (0 for the root)
  int64_t sord = 0;  ///< ordinal among siblings

  // Dewey encoding.
  std::string path;  ///< binary DeweyKey encoding

  bool is_element() const { return kind == XmlNodeKind::kElement; }
};

}  // namespace oxml

#endif  // OXML_CORE_ORDER_ENCODING_H_
