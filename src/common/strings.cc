#include "src/common/strings.h"

#include <algorithm>
#include <cctype>

namespace oxml {

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string(s.substr(b, e - b));
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

std::string ToUpper(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::toupper(c));
  });
  return out;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string SqlQuote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('\'');
  for (char c : s) {
    if (c == '\'') out.push_back('\'');
    out.push_back(c);
  }
  out.push_back('\'');
  return out;
}

std::string ToHex(std::string_view s) {
  static const char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(s.size() * 2);
  for (unsigned char c : s) {
    out.push_back(kHex[c >> 4]);
    out.push_back(kHex[c & 0xf]);
  }
  return out;
}

}  // namespace oxml
