#ifndef OXML_COMMON_RESULT_H_
#define OXML_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "src/common/status.h"

namespace oxml {

/// `Result<T>` is either a value of type `T` or a non-OK `Status`.
/// Modeled on arrow::Result. Use `OXML_ASSIGN_OR_RETURN` to unwrap.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from a non-OK status (failure).
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status");
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) noexcept = default;
  Result& operator=(Result&&) noexcept = default;

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value or `fallback` if this holds an error.
  T ValueOr(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;
};

/// Evaluates `expr` (a Result<T>); on error returns the status, otherwise
/// assigns the unwrapped value to `lhs`.
#define OXML_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                               \
  if (!tmp.ok()) return tmp.status();              \
  lhs = std::move(tmp).value()

#define OXML_ASSIGN_OR_RETURN_CONCAT(a, b) a##b
#define OXML_ASSIGN_OR_RETURN_NAME(a, b) OXML_ASSIGN_OR_RETURN_CONCAT(a, b)

#define OXML_ASSIGN_OR_RETURN(lhs, expr) \
  OXML_ASSIGN_OR_RETURN_IMPL(            \
      OXML_ASSIGN_OR_RETURN_NAME(_res_, __LINE__), lhs, expr)

}  // namespace oxml

#endif  // OXML_COMMON_RESULT_H_
