#ifndef OXML_COMMON_STRINGS_H_
#define OXML_COMMON_STRINGS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace oxml {

/// Joins `parts` with `sep` ("a", "b" -> "a,b").
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Splits `s` on the single character `sep`; no trimming, keeps empty fields.
std::vector<std::string> Split(std::string_view s, char sep);

/// Returns a copy with leading/trailing ASCII whitespace removed.
std::string Trim(std::string_view s);

/// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// ASCII lower-casing (SQL keywords, tag comparisons are ASCII here).
std::string ToLower(std::string_view s);
std::string ToUpper(std::string_view s);

/// Case-insensitive ASCII equality.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// Escapes a string for embedding into a single-quoted SQL literal
/// (doubles embedded quotes): abc'd -> 'abc''d'.
std::string SqlQuote(std::string_view s);

/// Hex dump of a binary string, e.g. "0a1f".
std::string ToHex(std::string_view s);

}  // namespace oxml

#endif  // OXML_COMMON_STRINGS_H_
