#ifndef OXML_COMMON_RANDOM_H_
#define OXML_COMMON_RANDOM_H_

#include <cstdint>
#include <random>
#include <string>

namespace oxml {

/// Deterministic PRNG wrapper used by the generator, workloads and property
/// tests so every run is reproducible from a seed.
class Random {
 public:
  explicit Random(uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t Uniform(int64_t lo, int64_t hi) {
    std::uniform_int_distribution<int64_t> dist(lo, hi);
    return dist(engine_);
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    std::uniform_real_distribution<double> dist(0.0, 1.0);
    return dist(engine_);
  }

  /// Bernoulli trial with probability p of true.
  bool Chance(double p) { return NextDouble() < p; }

  /// Random lower-case ASCII word of length in [min_len, max_len].
  std::string Word(int min_len, int max_len) {
    int len = static_cast<int>(Uniform(min_len, max_len));
    std::string out;
    out.reserve(len);
    for (int i = 0; i < len; ++i) {
      out.push_back(static_cast<char>('a' + Uniform(0, 25)));
    }
    return out;
  }

  /// Zipf-ish skewed pick in [0, n): element 0 most likely.
  int64_t Skewed(int64_t n) {
    // Square the uniform draw to bias toward small indices.
    double u = NextDouble();
    return static_cast<int64_t>(u * u * n);
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace oxml

#endif  // OXML_COMMON_RANDOM_H_
