#ifndef OXML_COMMON_STATUS_H_
#define OXML_COMMON_STATUS_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <utility>

namespace oxml {

/// Error categories used across the library. Mirrors the coarse-grained
/// status codes found in Arrow/RocksDB-style C++ database code.
enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument = 1,  ///< caller passed something malformed
  kNotFound = 2,         ///< a named entity (table, index, node) is missing
  kAlreadyExists = 3,    ///< attempt to create a duplicate entity
  kParseError = 4,       ///< XML / SQL / XPath text failed to parse
  kOutOfRange = 5,       ///< position or key outside the valid domain
  kInternal = 6,         ///< invariant violation inside the library
  kNotImplemented = 7,   ///< feature intentionally outside the subset
  kIOError = 8,          ///< file-backed pager I/O failure
  kAborted = 9,          ///< operation gave up (e.g. constraint violation)
  kDeadlineExceeded = 10,  ///< statement ran past its deadline
  kCancelled = 11,         ///< statement cancelled from another thread
  kResourceExhausted = 12,  ///< memory budget (or similar quota) exceeded
};

/// Returns a short human-readable name ("OK", "ParseError", ...).
const char* StatusCodeToString(StatusCode code);

/// Cheap, exception-free error propagation. Functions that can fail return
/// `Status` (or `Result<T>`, see result.h). The success path carries no
/// allocation: message storage is only used on error.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string msg)
      : code_(code), msg_(std::move(msg)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code_ == StatusCode::kAlreadyExists; }
  bool IsParseError() const { return code_ == StatusCode::kParseError; }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsInternal() const { return code_ == StatusCode::kInternal; }
  bool IsNotImplemented() const {
    return code_ == StatusCode::kNotImplemented;
  }
  bool IsIOError() const { return code_ == StatusCode::kIOError; }
  bool IsAborted() const { return code_ == StatusCode::kAborted; }
  bool IsDeadlineExceeded() const {
    return code_ == StatusCode::kDeadlineExceeded;
  }
  bool IsCancelled() const { return code_ == StatusCode::kCancelled; }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string msg_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Propagates a non-OK Status to the caller. Standard Arrow/RocksDB idiom.
#define OXML_RETURN_NOT_OK(expr)            \
  do {                                      \
    ::oxml::Status _st = (expr);            \
    if (!_st.ok()) return _st;              \
  } while (0)

}  // namespace oxml

#endif  // OXML_COMMON_STATUS_H_
