#include "src/common/status.h"

namespace oxml {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kAborted:
      return "Aborted";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  out += ": ";
  out += msg_;
  return out;
}

}  // namespace oxml
