#include "src/relational/query_control.h"

namespace oxml {

namespace {
thread_local QueryControl* tl_query_control = nullptr;
}  // namespace

QueryControl* CurrentQueryControl() { return tl_query_control; }

ScopedQueryControl::ScopedQueryControl(QueryControl* ctl)
    : prev_(tl_query_control) {
  tl_query_control = ctl;
}

ScopedQueryControl::~ScopedQueryControl() { tl_query_control = prev_; }

QueryControlTaskScope::QueryControlTaskScope(QueryControl* ctl)
    : prev_(tl_query_control) {
  tl_query_control = ctl;
}

QueryControlTaskScope::~QueryControlTaskScope() { tl_query_control = prev_; }

QueryControl::~QueryControl() {
  // Statement teardown releases the whole reservation in one step, so
  // error paths that skip operator Close() can never leak global budget.
  if (global_budget_ != nullptr) {
    global_budget_->Release(statement_used_.load(std::memory_order_relaxed));
  }
}

Status QueryControl::ChargeMemory(uint64_t bytes) {
  uint64_t now =
      statement_used_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  if (statement_cap_ != 0 && now > statement_cap_) {
    statement_used_.fetch_sub(bytes, std::memory_order_relaxed);
    return Status::ResourceExhausted(
        "statement memory budget exceeded (" + std::to_string(now) + " > " +
        std::to_string(statement_cap_) + " bytes)");
  }
  if (global_budget_ != nullptr && !global_budget_->TryCharge(bytes)) {
    statement_used_.fetch_sub(bytes, std::memory_order_relaxed);
    return Status::ResourceExhausted("global memory budget exceeded");
  }
  return Status::OK();
}

void QueryControl::ReleaseMemory(uint64_t bytes) {
  statement_used_.fetch_sub(bytes, std::memory_order_relaxed);
  if (global_budget_ != nullptr) global_budget_->Release(bytes);
}

uint64_t EstimateRowBytes(const Row& row) {
  uint64_t bytes = 0;
  for (const Value& v : row) {
    bytes += 16;
    if (v.type() == TypeId::kText || v.type() == TypeId::kBlob) {
      bytes += v.AsString().size();
    }
  }
  return bytes;
}

}  // namespace oxml
