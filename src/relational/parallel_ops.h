#ifndef OXML_RELATIONAL_PARALLEL_OPS_H_
#define OXML_RELATIONAL_PARALLEL_OPS_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/relational/executor.h"
#include "src/relational/thread_pool.h"

namespace oxml {

/// Morsel-parallel table scan. Open() splits the scan into partitions,
/// fans them out over the thread pool (each worker materializing its
/// partition), and Next() drains the partitions in order — so the output
/// is byte-identical to the serial SeqScanOp / IndexScanOp it replaces:
/// page-chain order for heap scans, key order for index-range scans.
///
/// Heap scans partition the page chain into contiguous chunks; index scans
/// cut the key range at B+tree leaf boundaries (BPlusTree::SplitKeys).
/// Workers only read — concurrent page access is safe under the buffer
/// pool's shared latch (see docs/INTERNALS.md §9). Parameter-dependent
/// (dynamic) index bounds stay on the serial operator: their range is not
/// known until Open, after which splitting would buy nothing for the
/// selective probes they serve.
class ParallelScanOp : public Operator {
 public:
  /// Parallel full-table (heap) scan.
  ParallelScanOp(TableInfo* table, Schema qualified_schema, ThreadPool* pool,
                 ExecStats* stats);
  /// Parallel index-range scan with static bounds; `lower` inclusive,
  /// `upper` exclusive, as for IndexScanOp.
  ParallelScanOp(TableInfo* table, TableIndex* index, Schema qualified_schema,
                 std::optional<std::string> lower,
                 std::optional<std::string> upper, size_t eq_prefix,
                 ThreadPool* pool, ExecStats* stats);

  Status Open() override;
  Result<bool> Next(Row* row) override;
  void Close() override;
  std::string Name() const override;

 private:
  Status OpenHeap();
  Status OpenIndex();

  TableInfo* table_;
  TableIndex* index_ = nullptr;  // null = heap scan
  std::optional<std::string> lower_;
  std::optional<std::string> upper_;
  ThreadPool* pool_;
  ExecStats* stats_;
  std::vector<std::vector<Row>> partitions_;
  size_t part_ = 0;
  size_t pos_ = 0;
};

/// Parallel stack-based structural join. Open() drains both (start-sorted)
/// inputs, cuts the ancestor stream wherever an interval start exceeds the
/// running maximum end — intervals never span such a cut, so the groups
/// are independent — assigns each descendant to the only group that can
/// contain it, and runs the serial stack algorithm per group on the thread
/// pool. Concatenating the group outputs in order reproduces the serial
/// StructuralJoinOp's output exactly (sorted on descendant start, the
/// ancestors of one descendant in start order).
class ParallelStructuralJoinOp : public Operator {
 public:
  /// Same contract as StructuralJoinOp (see executor.h) plus the pool.
  ParallelStructuralJoinOp(OperatorPtr ancestors, OperatorPtr descendants,
                           ExprPtr anc_start, ExprPtr anc_end,
                           ExprPtr desc_start, bool lower_strict,
                           bool upper_inclusive, ThreadPool* pool,
                           ExecStats* stats);

  Status Open() override;
  Result<bool> Next(Row* row) override;
  void Close() override;
  std::string Name() const override;
  void Describe(int indent, std::string* out) const override;

 private:
  struct Entry {
    Row row;
    Value start;
    Value end;  // only meaningful for ancestors
  };

  bool Contains(const Entry& e, const Value& start) const;
  /// Serial stack join over one independent group. Polls the statement's
  /// QueryControl per descendant and charges emitted rows to its budget.
  Status JoinPartition(const std::vector<Entry>& ancs, size_t anc_begin,
                       size_t anc_end, const std::vector<Entry>& descs,
                       size_t desc_begin, size_t desc_end,
                       std::vector<Row>* out) const;

  OperatorPtr anc_;
  OperatorPtr desc_;
  ExprPtr anc_start_;
  ExprPtr anc_end_;
  ExprPtr desc_start_;
  bool lower_strict_;
  bool upper_inclusive_;
  ThreadPool* pool_;
  ExecStats* stats_;
  std::vector<std::vector<Row>> out_;
  size_t part_ = 0;
  size_t pos_ = 0;
};

}  // namespace oxml

#endif  // OXML_RELATIONAL_PARALLEL_OPS_H_
