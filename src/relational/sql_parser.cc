#include "src/relational/sql_parser.h"

#include <utility>

#include "src/common/strings.h"
#include "src/relational/sql_lexer.h"

namespace oxml {
namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  /// Enables '?' parameter markers. Every ParamExpr produced by this parse
  /// shares `params` as its binding buffer; the caller resizes it to
  /// param_count() afterwards.
  void EnableParams(std::shared_ptr<Row> params) {
    params_ = std::move(params);
  }
  size_t param_count() const { return param_count_; }

  Result<StmtPtr> ParseStatement() {
    OXML_ASSIGN_OR_RETURN(StmtPtr stmt, ParseStatementInner());
    MatchSymbol(";");
    if (!AtEnd()) return Error("trailing tokens after statement");
    return stmt;
  }

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  bool AtEnd() const { return Peek().kind == TokenKind::kEnd; }
  const Token& Advance() { return tokens_[pos_++]; }

  Status Error(const std::string& msg) const {
    return Status::ParseError(msg + " near offset " +
                              std::to_string(Peek().offset));
  }

  bool PeekKeyword(std::string_view kw) const {
    return Peek().kind == TokenKind::kIdentifier &&
           EqualsIgnoreCase(Peek().text, kw);
  }

  bool MatchKeyword(std::string_view kw) {
    if (!PeekKeyword(kw)) return false;
    Advance();
    return true;
  }

  Status ExpectKeyword(std::string_view kw) {
    if (!MatchKeyword(kw)) {
      return Error("expected " + std::string(kw));
    }
    return Status::OK();
  }

  bool PeekSymbol(std::string_view s) const {
    return Peek().kind == TokenKind::kSymbol && Peek().text == s;
  }

  bool MatchSymbol(std::string_view s) {
    if (!PeekSymbol(s)) return false;
    Advance();
    return true;
  }

  Status ExpectSymbol(std::string_view s) {
    if (!MatchSymbol(s)) return Error("expected '" + std::string(s) + "'");
    return Status::OK();
  }

  Result<std::string> ExpectIdentifier(const std::string& what) {
    if (Peek().kind != TokenKind::kIdentifier) {
      return Error("expected " + what);
    }
    return Advance().text;
  }

  Result<StmtPtr> ParseStatementInner() {
    if (PeekKeyword("SELECT")) return ParseSelect();
    if (PeekKeyword("INSERT")) return ParseInsert();
    if (PeekKeyword("UPDATE")) return ParseUpdate();
    if (PeekKeyword("DELETE")) return ParseDelete();
    if (PeekKeyword("CREATE")) return ParseCreate();
    if (PeekKeyword("DROP")) return ParseDrop();
    return Error("expected a statement");
  }

  Result<StmtPtr> ParseSelect() {
    OXML_RETURN_NOT_OK(ExpectKeyword("SELECT"));
    auto stmt = std::make_unique<SelectStmt>();
    stmt->distinct = MatchKeyword("DISTINCT");

    // Select list.
    do {
      SelectItem item;
      if (PeekSymbol("*")) {
        Advance();
        item.expr = nullptr;  // bare *
      } else {
        OXML_ASSIGN_OR_RETURN(item.expr, ParseExpr());
        if (MatchKeyword("AS")) {
          OXML_ASSIGN_OR_RETURN(item.alias, ExpectIdentifier("alias"));
        } else if (Peek().kind == TokenKind::kIdentifier &&
                   !IsClauseKeyword(Peek().text)) {
          item.alias = Advance().text;
        }
      }
      stmt->items.push_back(std::move(item));
    } while (MatchSymbol(","));

    OXML_RETURN_NOT_OK(ExpectKeyword("FROM"));
    do {
      TableRef ref;
      OXML_ASSIGN_OR_RETURN(ref.table, ExpectIdentifier("table name"));
      if (MatchKeyword("AS")) {
        OXML_ASSIGN_OR_RETURN(ref.alias, ExpectIdentifier("alias"));
      } else if (Peek().kind == TokenKind::kIdentifier &&
                 !IsClauseKeyword(Peek().text)) {
        ref.alias = Advance().text;
      }
      stmt->from.push_back(std::move(ref));
    } while (MatchSymbol(","));

    if (MatchKeyword("WHERE")) {
      OXML_ASSIGN_OR_RETURN(stmt->where, ParseExpr());
    }
    if (MatchKeyword("GROUP")) {
      OXML_RETURN_NOT_OK(ExpectKeyword("BY"));
      do {
        OXML_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
        stmt->group_by.push_back(std::move(e));
      } while (MatchSymbol(","));
    }
    if (MatchKeyword("ORDER")) {
      OXML_RETURN_NOT_OK(ExpectKeyword("BY"));
      do {
        OrderItem item;
        OXML_ASSIGN_OR_RETURN(item.expr, ParseExpr());
        if (MatchKeyword("DESC")) {
          item.desc = true;
        } else {
          MatchKeyword("ASC");
        }
        stmt->order_by.push_back(std::move(item));
      } while (MatchSymbol(","));
    }
    if (MatchKeyword("LIMIT")) {
      if (Peek().kind != TokenKind::kIntLiteral) {
        return Error("expected integer after LIMIT");
      }
      stmt->limit = Advance().int_value;
    }
    return StmtPtr(std::move(stmt));
  }

  static bool IsClauseKeyword(const std::string& word) {
    static const char* const kClauses[] = {
        "FROM",  "WHERE", "GROUP", "ORDER", "LIMIT", "AS",   "ON",
        "AND",   "OR",    "NOT",   "ASC",   "DESC",  "SET",  "VALUES",
        "INNER", "JOIN",  "BY",    "LIKE",  "IS",    "NULL", "BETWEEN",
        "UNIQUE"};
    for (const char* kw : kClauses) {
      if (EqualsIgnoreCase(word, kw)) return true;
    }
    return false;
  }

  Result<StmtPtr> ParseInsert() {
    OXML_RETURN_NOT_OK(ExpectKeyword("INSERT"));
    OXML_RETURN_NOT_OK(ExpectKeyword("INTO"));
    auto stmt = std::make_unique<InsertStmt>();
    OXML_ASSIGN_OR_RETURN(stmt->table, ExpectIdentifier("table name"));
    if (MatchSymbol("(")) {
      do {
        OXML_ASSIGN_OR_RETURN(std::string col,
                              ExpectIdentifier("column name"));
        stmt->columns.push_back(std::move(col));
      } while (MatchSymbol(","));
      OXML_RETURN_NOT_OK(ExpectSymbol(")"));
    }
    OXML_RETURN_NOT_OK(ExpectKeyword("VALUES"));
    do {
      OXML_RETURN_NOT_OK(ExpectSymbol("("));
      std::vector<ExprPtr> row;
      do {
        OXML_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
        row.push_back(std::move(e));
      } while (MatchSymbol(","));
      OXML_RETURN_NOT_OK(ExpectSymbol(")"));
      stmt->rows.push_back(std::move(row));
    } while (MatchSymbol(","));
    return StmtPtr(std::move(stmt));
  }

  Result<StmtPtr> ParseUpdate() {
    OXML_RETURN_NOT_OK(ExpectKeyword("UPDATE"));
    auto stmt = std::make_unique<UpdateStmt>();
    OXML_ASSIGN_OR_RETURN(stmt->table, ExpectIdentifier("table name"));
    OXML_RETURN_NOT_OK(ExpectKeyword("SET"));
    do {
      OXML_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier("column"));
      OXML_RETURN_NOT_OK(ExpectSymbol("="));
      OXML_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
      stmt->assignments.emplace_back(std::move(col), std::move(e));
    } while (MatchSymbol(","));
    if (MatchKeyword("WHERE")) {
      OXML_ASSIGN_OR_RETURN(stmt->where, ParseExpr());
    }
    return StmtPtr(std::move(stmt));
  }

  Result<StmtPtr> ParseDelete() {
    OXML_RETURN_NOT_OK(ExpectKeyword("DELETE"));
    OXML_RETURN_NOT_OK(ExpectKeyword("FROM"));
    auto stmt = std::make_unique<DeleteStmt>();
    OXML_ASSIGN_OR_RETURN(stmt->table, ExpectIdentifier("table name"));
    if (MatchKeyword("WHERE")) {
      OXML_ASSIGN_OR_RETURN(stmt->where, ParseExpr());
    }
    return StmtPtr(std::move(stmt));
  }

  Result<StmtPtr> ParseCreate() {
    OXML_RETURN_NOT_OK(ExpectKeyword("CREATE"));
    bool unique = MatchKeyword("UNIQUE");
    if (MatchKeyword("TABLE")) {
      if (unique) return Error("UNIQUE applies to indexes");
      auto stmt = std::make_unique<CreateTableStmt>();
      OXML_ASSIGN_OR_RETURN(stmt->table, ExpectIdentifier("table name"));
      OXML_RETURN_NOT_OK(ExpectSymbol("("));
      do {
        Column col;
        OXML_ASSIGN_OR_RETURN(col.name, ExpectIdentifier("column name"));
        OXML_ASSIGN_OR_RETURN(std::string type,
                              ExpectIdentifier("column type"));
        std::string upper = ToUpper(type);
        if (upper == "INT" || upper == "INTEGER" || upper == "BIGINT") {
          col.type = TypeId::kInt;
        } else if (upper == "DOUBLE" || upper == "REAL" || upper == "FLOAT") {
          col.type = TypeId::kDouble;
        } else if (upper == "TEXT" || upper == "VARCHAR" ||
                   upper == "STRING") {
          col.type = TypeId::kText;
        } else if (upper == "BLOB" || upper == "BYTES") {
          col.type = TypeId::kBlob;
        } else {
          return Error("unknown type " + type);
        }
        // Tolerate a parenthesized length, e.g. VARCHAR(64).
        if (MatchSymbol("(")) {
          if (Peek().kind != TokenKind::kIntLiteral) {
            return Error("expected length");
          }
          Advance();
          OXML_RETURN_NOT_OK(ExpectSymbol(")"));
        }
        stmt->columns.push_back(std::move(col));
      } while (MatchSymbol(","));
      OXML_RETURN_NOT_OK(ExpectSymbol(")"));
      return StmtPtr(std::move(stmt));
    }
    if (MatchKeyword("INDEX")) {
      auto stmt = std::make_unique<CreateIndexStmt>();
      stmt->unique = unique;
      OXML_ASSIGN_OR_RETURN(stmt->index, ExpectIdentifier("index name"));
      OXML_RETURN_NOT_OK(ExpectKeyword("ON"));
      OXML_ASSIGN_OR_RETURN(stmt->table, ExpectIdentifier("table name"));
      OXML_RETURN_NOT_OK(ExpectSymbol("("));
      do {
        OXML_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier("column"));
        stmt->columns.push_back(std::move(col));
      } while (MatchSymbol(","));
      OXML_RETURN_NOT_OK(ExpectSymbol(")"));
      return StmtPtr(std::move(stmt));
    }
    return Error("expected TABLE or INDEX after CREATE");
  }

  Result<StmtPtr> ParseDrop() {
    OXML_RETURN_NOT_OK(ExpectKeyword("DROP"));
    OXML_RETURN_NOT_OK(ExpectKeyword("TABLE"));
    auto stmt = std::make_unique<DropTableStmt>();
    OXML_ASSIGN_OR_RETURN(stmt->table, ExpectIdentifier("table name"));
    return StmtPtr(std::move(stmt));
  }

  // ------------------------------------------------------------ expressions

  Result<ExprPtr> ParseExpr() { return ParseOr(); }

  Result<ExprPtr> ParseOr() {
    OXML_ASSIGN_OR_RETURN(ExprPtr left, ParseAnd());
    while (MatchKeyword("OR")) {
      OXML_ASSIGN_OR_RETURN(ExprPtr right, ParseAnd());
      left = std::make_unique<BinaryExpr>(BinaryOp::kOr, std::move(left),
                                          std::move(right));
    }
    return left;
  }

  Result<ExprPtr> ParseAnd() {
    OXML_ASSIGN_OR_RETURN(ExprPtr left, ParseNot());
    while (MatchKeyword("AND")) {
      OXML_ASSIGN_OR_RETURN(ExprPtr right, ParseNot());
      left = std::make_unique<BinaryExpr>(BinaryOp::kAnd, std::move(left),
                                          std::move(right));
    }
    return left;
  }

  Result<ExprPtr> ParseNot() {
    if (MatchKeyword("NOT")) {
      OXML_ASSIGN_OR_RETURN(ExprPtr operand, ParseNot());
      return ExprPtr(
          std::make_unique<UnaryExpr>(UnaryOp::kNot, std::move(operand)));
    }
    return ParseComparison();
  }

  Result<ExprPtr> ParseComparison() {
    OXML_ASSIGN_OR_RETURN(ExprPtr left, ParseAdditive());
    // IS [NOT] NULL
    if (MatchKeyword("IS")) {
      bool negated = MatchKeyword("NOT");
      OXML_RETURN_NOT_OK(ExpectKeyword("NULL"));
      return ExprPtr(std::make_unique<UnaryExpr>(
          negated ? UnaryOp::kIsNotNull : UnaryOp::kIsNull, std::move(left)));
    }
    // [NOT] BETWEEN a AND b / [NOT] LIKE p / [NOT] IN (...)
    bool negated = false;
    if (PeekKeyword("NOT")) {
      // Lookahead: NOT BETWEEN / NOT LIKE / NOT IN only.
      const Token& next = tokens_[pos_ + 1];
      if (next.kind == TokenKind::kIdentifier &&
          (EqualsIgnoreCase(next.text, "BETWEEN") ||
           EqualsIgnoreCase(next.text, "LIKE") ||
           EqualsIgnoreCase(next.text, "IN"))) {
        Advance();
        negated = true;
      }
    }
    if (MatchKeyword("IN")) {
      // Desugar: left IN (a, b, ...) == (left = a OR left = b OR ...).
      OXML_RETURN_NOT_OK(ExpectSymbol("("));
      ExprPtr disjunction;
      do {
        OXML_ASSIGN_OR_RETURN(ExprPtr item, ParseAdditive());
        OXML_ASSIGN_OR_RETURN(ExprPtr left_copy, CopySimple(left.get()));
        ExprPtr eq = std::make_unique<BinaryExpr>(
            BinaryOp::kEq, std::move(left_copy), std::move(item));
        if (disjunction == nullptr) {
          disjunction = std::move(eq);
        } else {
          disjunction = std::make_unique<BinaryExpr>(
              BinaryOp::kOr, std::move(disjunction), std::move(eq));
        }
      } while (MatchSymbol(","));
      OXML_RETURN_NOT_OK(ExpectSymbol(")"));
      if (negated) {
        return ExprPtr(std::make_unique<UnaryExpr>(UnaryOp::kNot,
                                                   std::move(disjunction)));
      }
      return disjunction;
    }
    if (MatchKeyword("BETWEEN")) {
      OXML_ASSIGN_OR_RETURN(ExprPtr lo, ParseAdditive());
      OXML_RETURN_NOT_OK(ExpectKeyword("AND"));
      OXML_ASSIGN_OR_RETURN(ExprPtr hi, ParseAdditive());
      // Desugar: left BETWEEN lo AND hi == left >= lo AND left <= hi.
      // The left expression appears twice; re-parse is avoided by requiring
      // it to be a column or literal (always true for generated SQL).
      OXML_ASSIGN_OR_RETURN(ExprPtr left_copy, CopySimple(left.get()));
      ExprPtr ge = std::make_unique<BinaryExpr>(BinaryOp::kGe,
                                                std::move(left), std::move(lo));
      ExprPtr le = std::make_unique<BinaryExpr>(
          BinaryOp::kLe, std::move(left_copy), std::move(hi));
      ExprPtr both = std::make_unique<BinaryExpr>(
          BinaryOp::kAnd, std::move(ge), std::move(le));
      if (negated) {
        return ExprPtr(
            std::make_unique<UnaryExpr>(UnaryOp::kNot, std::move(both)));
      }
      return both;
    }
    if (MatchKeyword("LIKE")) {
      OXML_ASSIGN_OR_RETURN(ExprPtr pattern, ParseAdditive());
      ExprPtr like = std::make_unique<BinaryExpr>(
          BinaryOp::kLike, std::move(left), std::move(pattern));
      if (negated) {
        return ExprPtr(
            std::make_unique<UnaryExpr>(UnaryOp::kNot, std::move(like)));
      }
      return like;
    }

    struct OpMap {
      const char* sym;
      BinaryOp op;
    };
    static const OpMap kOps[] = {
        {"=", BinaryOp::kEq},  {"<>", BinaryOp::kNe}, {"!=", BinaryOp::kNe},
        {"<=", BinaryOp::kLe}, {">=", BinaryOp::kGe}, {"<", BinaryOp::kLt},
        {">", BinaryOp::kGt},
    };
    for (const OpMap& m : kOps) {
      if (PeekSymbol(m.sym)) {
        Advance();
        OXML_ASSIGN_OR_RETURN(ExprPtr right, ParseAdditive());
        return ExprPtr(std::make_unique<BinaryExpr>(m.op, std::move(left),
                                                    std::move(right)));
      }
    }
    return left;
  }

  /// Deep copy for the narrow shapes BETWEEN desugaring needs.
  Result<ExprPtr> CopySimple(const Expr* e) {
    if (e->kind() == Expr::Kind::kColumn) {
      return ExprPtr(std::make_unique<ColumnExpr>(
          static_cast<const ColumnExpr*>(e)->name()));
    }
    if (e->kind() == Expr::Kind::kLiteral) {
      return ExprPtr(std::make_unique<LiteralExpr>(
          static_cast<const LiteralExpr*>(e)->value()));
    }
    return Status::NotImplemented(
        "BETWEEN requires a column or literal on the left");
  }

  Result<ExprPtr> ParseAdditive() {
    OXML_ASSIGN_OR_RETURN(ExprPtr left, ParseMultiplicative());
    while (true) {
      BinaryOp op;
      if (PeekSymbol("+")) {
        op = BinaryOp::kAdd;
      } else if (PeekSymbol("-")) {
        op = BinaryOp::kSub;
      } else {
        break;
      }
      Advance();
      OXML_ASSIGN_OR_RETURN(ExprPtr right, ParseMultiplicative());
      left = std::make_unique<BinaryExpr>(op, std::move(left),
                                          std::move(right));
    }
    return left;
  }

  Result<ExprPtr> ParseMultiplicative() {
    OXML_ASSIGN_OR_RETURN(ExprPtr left, ParseUnary());
    while (true) {
      BinaryOp op;
      if (PeekSymbol("*")) {
        op = BinaryOp::kMul;
      } else if (PeekSymbol("/")) {
        op = BinaryOp::kDiv;
      } else if (PeekSymbol("%")) {
        op = BinaryOp::kMod;
      } else {
        break;
      }
      Advance();
      OXML_ASSIGN_OR_RETURN(ExprPtr right, ParseUnary());
      left = std::make_unique<BinaryExpr>(op, std::move(left),
                                          std::move(right));
    }
    return left;
  }

  Result<ExprPtr> ParseUnary() {
    if (MatchSymbol("-")) {
      OXML_ASSIGN_OR_RETURN(ExprPtr operand, ParseUnary());
      return ExprPtr(
          std::make_unique<UnaryExpr>(UnaryOp::kNeg, std::move(operand)));
    }
    return ParsePrimary();
  }

  Result<ExprPtr> ParsePrimary() {
    const Token& tok = Peek();
    switch (tok.kind) {
      case TokenKind::kIntLiteral:
        Advance();
        return ExprPtr(std::make_unique<LiteralExpr>(Value::Int(
            tok.int_value)));
      case TokenKind::kFloatLiteral:
        Advance();
        return ExprPtr(
            std::make_unique<LiteralExpr>(Value::Double(tok.double_value)));
      case TokenKind::kStringLiteral:
        Advance();
        return ExprPtr(std::make_unique<LiteralExpr>(Value::Text(tok.text)));
      case TokenKind::kBlobLiteral:
        Advance();
        return ExprPtr(std::make_unique<LiteralExpr>(Value::Blob(tok.text)));
      case TokenKind::kSymbol:
        if (tok.text == "(") {
          Advance();
          OXML_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
          OXML_RETURN_NOT_OK(ExpectSymbol(")"));
          return e;
        }
        if (tok.text == "?") {
          if (!params_) {
            return Error(
                "'?' parameter markers require a prepared statement");
          }
          Advance();
          return ExprPtr(
              std::make_unique<ParamExpr>(params_, param_count_++));
        }
        return Error("unexpected symbol '" + tok.text + "'");
      case TokenKind::kIdentifier: {
        if (EqualsIgnoreCase(tok.text, "NULL")) {
          Advance();
          return ExprPtr(std::make_unique<LiteralExpr>(Value::Null()));
        }
        std::string name = Advance().text;
        // Function call?
        if (MatchSymbol("(")) {
          std::vector<ExprPtr> args;
          if (MatchSymbol(")")) {
            return ExprPtr(
                std::make_unique<FunctionExpr>(name, std::move(args)));
          }
          if (MatchSymbol("*")) {
            args.push_back(std::make_unique<StarExpr>());
            OXML_RETURN_NOT_OK(ExpectSymbol(")"));
            return ExprPtr(
                std::make_unique<FunctionExpr>(name, std::move(args)));
          }
          do {
            OXML_ASSIGN_OR_RETURN(ExprPtr a, ParseExpr());
            args.push_back(std::move(a));
          } while (MatchSymbol(","));
          OXML_RETURN_NOT_OK(ExpectSymbol(")"));
          return ExprPtr(
              std::make_unique<FunctionExpr>(name, std::move(args)));
        }
        // Qualified column a.b?
        if (MatchSymbol(".")) {
          OXML_ASSIGN_OR_RETURN(std::string col,
                                ExpectIdentifier("column after '.'"));
          return ExprPtr(std::make_unique<ColumnExpr>(name + "." + col));
        }
        return ExprPtr(std::make_unique<ColumnExpr>(std::move(name)));
      }
      case TokenKind::kEnd:
        return Error("unexpected end of input");
    }
    return Error("unexpected token");
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  std::shared_ptr<Row> params_;  // null: '?' markers rejected
  size_t param_count_ = 0;
};

}  // namespace

Result<StmtPtr> ParseSql(std::string_view sql) {
  OXML_ASSIGN_OR_RETURN(std::vector<Token> tokens, LexSql(sql));
  Parser parser(std::move(tokens));
  return parser.ParseStatement();
}

Result<ParsedStatement> ParseSqlWithParams(std::string_view sql) {
  OXML_ASSIGN_OR_RETURN(std::vector<Token> tokens, LexSql(sql));
  Parser parser(std::move(tokens));
  ParsedStatement out;
  out.params = std::make_shared<Row>();
  parser.EnableParams(out.params);
  OXML_ASSIGN_OR_RETURN(out.stmt, parser.ParseStatement());
  out.param_count = parser.param_count();
  // Size the shared buffer once so ParamExpr::Eval never sees an
  // out-of-range slot; unbound slots read as NULL.
  out.params->assign(out.param_count, Value::Null());
  return out;
}

}  // namespace oxml
