#ifndef OXML_RELATIONAL_SQL_PARSER_H_
#define OXML_RELATIONAL_SQL_PARSER_H_

#include <memory>
#include <string_view>

#include "src/common/result.h"
#include "src/relational/sql_ast.h"

namespace oxml {

/// Parses a single SQL statement (optionally terminated by ';').
/// Supported subset:
///
///   SELECT [DISTINCT] list FROM t [alias] [, ...] [WHERE e]
///       [GROUP BY e, ...] [ORDER BY e [ASC|DESC], ...] [LIMIT n]
///   INSERT INTO t [(cols)] VALUES (...), (...)
///   UPDATE t SET c = e [, ...] [WHERE e]
///   DELETE FROM t [WHERE e]
///   CREATE TABLE t (col TYPE, ...)         -- INT|DOUBLE|TEXT|BLOB
///   CREATE [UNIQUE] INDEX i ON t (cols)
///   DROP TABLE t
///
/// '?' parameter markers are rejected here; use ParseSqlWithParams.
Result<StmtPtr> ParseSql(std::string_view sql);

/// A parsed statement plus the shared binding buffer referenced by every
/// ParamExpr in it. Writing `(*params)[i]` rebinds parameter i for the next
/// evaluation of the tree — this is how PreparedStatement re-runs a cached
/// plan with fresh constants.
struct ParsedStatement {
  StmtPtr stmt;
  std::shared_ptr<Row> params;
  size_t param_count = 0;
};

/// Like ParseSql but accepts '?' parameter markers, numbered left to right
/// starting at 0. `params` is pre-sized to param_count (all NULL).
Result<ParsedStatement> ParseSqlWithParams(std::string_view sql);

}  // namespace oxml

#endif  // OXML_RELATIONAL_SQL_PARSER_H_
