#ifndef OXML_RELATIONAL_SQL_PARSER_H_
#define OXML_RELATIONAL_SQL_PARSER_H_

#include <memory>
#include <string_view>

#include "src/common/result.h"
#include "src/relational/sql_ast.h"

namespace oxml {

/// Parses a single SQL statement (optionally terminated by ';').
/// Supported subset:
///
///   SELECT [DISTINCT] list FROM t [alias] [, ...] [WHERE e]
///       [GROUP BY e, ...] [ORDER BY e [ASC|DESC], ...] [LIMIT n]
///   INSERT INTO t [(cols)] VALUES (...), (...)
///   UPDATE t SET c = e [, ...] [WHERE e]
///   DELETE FROM t [WHERE e]
///   CREATE TABLE t (col TYPE, ...)         -- INT|DOUBLE|TEXT|BLOB
///   CREATE [UNIQUE] INDEX i ON t (cols)
///   DROP TABLE t
Result<StmtPtr> ParseSql(std::string_view sql);

}  // namespace oxml

#endif  // OXML_RELATIONAL_SQL_PARSER_H_
