#ifndef OXML_RELATIONAL_DATABASE_H_
#define OXML_RELATIONAL_DATABASE_H_

#include <atomic>
#include <cassert>
#include <condition_variable>
#include <cstdio>
#include <list>
#include <optional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/common/result.h"
#include "src/relational/buffer_pool.h"
#include "src/relational/catalog.h"
#include "src/relational/executor.h"
#include "src/relational/query_control.h"
#include "src/relational/sql_ast.h"
#include "src/relational/wal.h"

namespace oxml {

struct FaultPlan;
class ThreadPool;

/// Configuration of a Database instance.
struct DatabaseOptions {
  /// When non-empty, pages live in this file behind an LRU buffer pool;
  /// otherwise everything is memory-resident.
  std::string file_path;
  /// Buffer-pool frames when file-backed (0 = unbounded cache).
  size_t buffer_capacity = 0;
  /// Reopen an existing database file: the persisted catalog (page 0) is
  /// read back, heap tables are re-attached and the memory-resident
  /// B+tree indexes are rebuilt by scanning the heaps. When false (the
  /// default) any existing file content is discarded.
  bool open_existing = false;
  /// Capacity of the LRU plan cache (distinct SQL texts). 0 disables
  /// caching entirely: every statement — prepared or ad-hoc — pays a fresh
  /// parse + plan.
  size_t plan_cache_capacity = 128;
  /// Lower interval-containment conjunct pairs (the ancestor–descendant
  /// patterns emitted by the XPath translator) to the stack-based
  /// StructuralJoinOp. Off = generic nested-loop + filter (the pre-PR2
  /// behavior), kept as a toggle for differential testing.
  bool enable_structural_join = true;
  /// Use MergeJoinOp for equi-joins whose inputs are already sorted on the
  /// join key (as reported by the operators' order properties).
  bool enable_merge_join = true;
  /// Drop the SortOp for an ORDER BY already satisfied by the input order.
  bool enable_sort_elision = true;

  // ------------------------------------------------------------- parallelism

  /// Let the planner emit parallel operators (ParallelScanOp and the
  /// parallel structural-join path) that fan single statements out over the
  /// database's thread pool. Off by default: intra-query parallelism only
  /// pays off on large inputs, and serial plans keep EXPLAIN output and
  /// operator-level tests deterministic. Inter-query concurrency — many
  /// threads calling Query() at once — is always available and does not
  /// depend on this flag.
  bool enable_parallel_execution = false;
  /// Worker threads in the execution pool (0 = hardware_concurrency).
  /// Only consulted when enable_parallel_execution is set.
  size_t num_threads = 0;
  /// Tables with fewer rows than this keep their serial scans even under
  /// enable_parallel_execution (fan-out overhead dominates tiny inputs).
  /// Tests set 0 to force parallel plans on small fixtures.
  size_t parallel_scan_min_rows = 256;

  // -------------------------------------------------------- parallel loading

  /// Let OrderedXmlStore::LoadDocument shred documents in parallel: the
  /// parsed tree is partitioned into disjoint subtrees, each partition is
  /// shredded on a load-pool worker into per-worker sorted runs (order keys
  /// assigned deterministically from a pre-pass), and the runs are k-way
  /// merged and installed through the bulk path (HeapTable::AppendBatch +
  /// BPlusTree::BulkBuild). Output is byte-identical to the serial path.
  /// Off by default for the same reason as enable_parallel_execution.
  bool enable_parallel_load = false;
  /// Worker threads in the load pool (0 = hardware_concurrency). Only
  /// consulted when enable_parallel_load is set.
  size_t num_load_threads = 0;
  /// Approximate size at which a worker seals its current sorted run and
  /// starts a new one. Smaller values exercise the k-way merge harder;
  /// mostly a testing knob.
  size_t load_run_bytes = 1u << 20;

  // --------------------------------------------------------------- MVCC

  /// Snapshot reads: readers never block behind an open write transaction.
  /// Begin() stops holding the statement latch exclusively for the
  /// transaction's lifetime; instead, writers take exclusivity per mutating
  /// statement (and for the commit install point), and reader statements
  /// that overlap an open foreign transaction acquire a snapshot LSN and
  /// are served committed page versions / index deltas (INTERNALS.md §11).
  /// Off restores the pre-MVCC discipline: Begin holds the latch
  /// exclusively until Commit/Rollback, so a long transaction blocks every
  /// reader.
  bool enable_mvcc = true;

  // ------------------------------------------------------------- durability

  /// Write-ahead logging for file-backed databases (ignored when memory-
  /// resident): every transaction appends the images of the pages it
  /// dirtied plus a commit record to `<file_path>.wal` before any of them
  /// may reach the data file. Reopening replays committed transactions, so
  /// a crash at any point recovers the last committed state.
  bool enable_wal = true;
  /// fsync the WAL on commit (see WalOptions::sync_on_commit).
  bool wal_sync_on_commit = true;
  /// Group commit: fsync only every Nth commit (see WalOptions).
  size_t wal_group_commit_every = 1;
  /// Auto-checkpoint (flush data file + truncate the WAL) after a commit
  /// leaves the log larger than this many bytes. 0 disables; the WAL then
  /// grows until an explicit Checkpoint() or Close().
  size_t wal_checkpoint_threshold_bytes = 4u << 20;
  /// When set, every data-file and WAL I/O consults this fault schedule
  /// (crash-point testing). Production opens leave it null.
  std::shared_ptr<FaultPlan> fault_plan;

  // ------------------------------------------------------------- governance

  /// Deadline applied to every statement that does not override it via
  /// StatementOptions (0 = none). The clock starts when the statement call
  /// enters the engine — before the statement latch — so time spent queued
  /// behind a writer counts against the deadline. Enforcement is
  /// cooperative: the statement fails with kDeadlineExceeded at its next
  /// check point (operator Next(), morsel claim, shred unit, WAL-replay
  /// record), never mid-page; see docs/INTERNALS.md §12.
  uint64_t default_statement_timeout_ms = 0;
  /// Per-statement cap on memory materialized by allocating operators
  /// (sorts, hash/merge/nested-loop join builds, parallel-scan partitions,
  /// shred runs, result sets), estimated and charged in batches. A
  /// statement over its cap fails with kResourceExhausted; 0 = unlimited.
  size_t statement_memory_budget_bytes = 0;
  /// Database-wide cap shared by all concurrent statements' charges
  /// (0 = unlimited). Statements failing this cap also get
  /// kResourceExhausted; their reservation is fully returned.
  size_t total_memory_budget_bytes = 0;
};

/// Per-call overrides for one statement (Query/QueryP/Execute/ExecuteP and
/// the PreparedStatement equivalents).
struct StatementOptions {
  /// -1 = inherit DatabaseOptions::default_statement_timeout_ms;
  /// 0 = no deadline for this statement; > 0 = deadline in milliseconds.
  int64_t timeout_ms = -1;
  /// -1 = inherit DatabaseOptions::statement_memory_budget_bytes;
  /// 0 = unlimited for this statement; > 0 = cap in bytes. The session
  /// layer uses this to carry per-session budget defaults per call.
  int64_t memory_budget_bytes = -1;
  /// When non-null, receives the statement id assigned to this call before
  /// execution begins, for use with Database::Cancel from another thread.
  uint64_t* statement_id = nullptr;
};

/// The session id attributed to engine calls made on the current thread
/// (0 = none: the embedded API). Installed by ScopedSessionIdentity; the
/// server wraps every engine call made on a session's behalf so that
/// transaction ownership follows the session across pool threads.
uint64_t CurrentSessionId();

/// RAII installation of a session identity in the thread-local slot the
/// transaction-ownership checks consult. Nesting restores the previous
/// identity on destruction.
class ScopedSessionIdentity {
 public:
  explicit ScopedSessionIdentity(uint64_t session_id);
  ~ScopedSessionIdentity();

  ScopedSessionIdentity(const ScopedSessionIdentity&) = delete;
  ScopedSessionIdentity& operator=(const ScopedSessionIdentity&) = delete;

 private:
  uint64_t prev_;
};

/// Aggregate storage numbers (per database), used by the loading/storage
/// experiment.
struct StorageStats {
  uint64_t heap_pages = 0;
  uint64_t heap_rows = 0;
  uint64_t heap_bytes = 0;   // live row bytes
  uint64_t index_entries = 0;
  uint64_t index_bytes = 0;  // key bytes held in B+trees
};

class Database;

/// The database-wide reader–writer statement latch. Read-only statements
/// (Query/QueryP/Explain/Prepare) hold it shared, so any number of client
/// threads read concurrently; every mutation (Execute/ExecuteP, Insert,
/// DDL, Checkpoint, Close) holds it exclusively. With
/// DatabaseOptions::enable_mvcc (the default) an explicit transaction
/// holds exclusivity only per mutating statement and for the commit
/// install point — overlapping reader statements proceed under the shared
/// latch against an MVCC snapshot (INTERNALS.md §11). With MVCC off,
/// Begin() keeps the exclusive hold until Commit/Rollback, so explicit
/// transactions exclude all readers for their whole lifetime.
///
/// Exclusive ownership is reentrant per thread — the engine's auto-commit
/// wrappers and the stores' TxnScope nest statement calls inside an open
/// transaction — and a thread holding the latch exclusively passes straight
/// through shared acquisitions (reads inside its own transaction). Shared
/// ownership is also reentrant per thread (tracked thread_locally): writer
/// preference would otherwise self-deadlock a thread that re-acquires
/// shared while a writer queues behind its outstanding shared hold.
/// Lock-order inversion (shared then exclusive on the same thread) remains
/// a deadlock, as with any reader–writer lock.
///
/// Writer-preferring: once a writer is waiting, new shared acquisitions
/// queue behind it. std::shared_mutex makes no such promise (glibc's
/// rwlock prefers readers), and a read-heavy workload re-acquiring the
/// latch in a loop can then starve writers indefinitely — observed as a
/// stuck commit under TSan on a single-core host.
class StatementLatch {
 public:
  void LockShared() {
    if (OwnedByThisThread()) return;
    size_t& depth = SharedDepthMap()[this];
    if (depth > 0) {
      // Nested shared acquisition: this thread was already admitted, so it
      // must pass through even when a writer is queued — blocking here
      // would deadlock it against the writer waiting on its own hold.
      ++depth;
      return;
    }
    std::unique_lock<std::mutex> lock(mu_);
    reader_cv_.wait(lock, [this] {
      return !writer_active_ && writers_waiting_ == 0;
    });
    ++active_readers_;
    depth = 1;
  }
  void UnlockShared() {
    if (OwnedByThisThread()) return;
    auto& depths = SharedDepthMap();
    auto it = depths.find(this);
    if (it != depths.end() && it->second > 1) {
      --it->second;
      return;
    }
    if (it != depths.end()) depths.erase(it);
    std::unique_lock<std::mutex> lock(mu_);
    if (--active_readers_ == 0 && writers_waiting_ > 0) {
      lock.unlock();
      writer_cv_.notify_one();
    }
  }
  void LockExclusive() {
    if (OwnedByThisThread()) {
      ++depth_;
      return;
    }
    std::unique_lock<std::mutex> lock(mu_);
    ++writers_waiting_;
    writer_cv_.wait(lock, [this] {
      return !writer_active_ && active_readers_ == 0;
    });
    --writers_waiting_;
    writer_active_ = true;
    owner_.store(std::this_thread::get_id(), std::memory_order_relaxed);
    depth_ = 1;
  }
  void UnlockExclusive() {
    if (!OwnedByThisThread()) {
      // Unlocking a latch this thread does not hold would corrupt depth_
      // (owned by another thread) or underflow it (nobody holds it),
      // silently breaking exclusion for every later statement. Loud in
      // debug builds; in release, refuse and leave the latch state intact.
      assert(false && "StatementLatch::UnlockExclusive: not the owner");
      std::fprintf(stderr,
                   "StatementLatch::UnlockExclusive ignored: calling thread "
                   "does not hold the latch exclusively\n");
      return;
    }
    if (--depth_ > 0) return;
    bool writers;
    {
      std::lock_guard<std::mutex> lock(mu_);
      owner_.store(std::thread::id(), std::memory_order_relaxed);
      writer_active_ = false;
      writers = writers_waiting_ > 0;
    }
    // Hand off to the next writer if one is queued, else release the
    // whole reader herd.
    if (writers) {
      writer_cv_.notify_one();
    } else {
      reader_cv_.notify_all();
    }
  }

 private:
  bool OwnedByThisThread() const {
    return owner_.load(std::memory_order_relaxed) ==
           std::this_thread::get_id();
  }

  /// This thread's shared-hold depth per latch instance. Entries are erased
  /// on final release, so the map only holds latches the thread is inside.
  static std::unordered_map<const StatementLatch*, size_t>& SharedDepthMap() {
    static thread_local std::unordered_map<const StatementLatch*, size_t> map;
    return map;
  }

  std::mutex mu_;
  std::condition_variable reader_cv_;
  std::condition_variable writer_cv_;
  size_t active_readers_ = 0;
  size_t writers_waiting_ = 0;
  bool writer_active_ = false;
  /// The thread holding the latch exclusively (default id = none). Written
  /// only by that thread while it holds `mu_`.
  std::atomic<std::thread::id> owner_{};
  size_t depth_ = 0;  // exclusive reentrancy depth; touched only by owner
};

/// RAII shared acquisition of the statement latch.
class SharedStatementGuard {
 public:
  explicit SharedStatementGuard(StatementLatch* latch) : latch_(latch) {
    latch_->LockShared();
  }
  ~SharedStatementGuard() { latch_->UnlockShared(); }
  SharedStatementGuard(const SharedStatementGuard&) = delete;
  SharedStatementGuard& operator=(const SharedStatementGuard&) = delete;

 private:
  StatementLatch* latch_;
};

/// RAII exclusive acquisition of the statement latch (reentrant).
class ExclusiveStatementGuard {
 public:
  explicit ExclusiveStatementGuard(StatementLatch* latch) : latch_(latch) {
    latch_->LockExclusive();
  }
  ~ExclusiveStatementGuard() { latch_->UnlockExclusive(); }
  ExclusiveStatementGuard(const ExclusiveStatementGuard&) = delete;
  ExclusiveStatementGuard& operator=(const ExclusiveStatementGuard&) = delete;

 private:
  StatementLatch* latch_;
};

/// RAII exclusive acquisition for a mutating statement. Under MVCC an open
/// transaction no longer holds the statement latch for its lifetime, so
/// exclusivity alone does not keep a foreign thread's mutation out of a
/// transaction it does not own; this guard additionally waits (holding no
/// latch while it does) until either no transaction is open or the calling
/// thread owns the open one. Equivalent to ExclusiveStatementGuard when
/// MVCC is off, since then the owner thread holds the latch throughout.
class WriteStatementGuard {
 public:
  explicit WriteStatementGuard(Database* db);
  ~WriteStatementGuard();
  WriteStatementGuard(const WriteStatementGuard&) = delete;
  WriteStatementGuard& operator=(const WriteStatementGuard&) = delete;

  /// kOk when the latch was acquired. kCancelled / kDeadlineExceeded when
  /// the calling statement's QueryControl tripped while gate-waiting on a
  /// foreign session's open transaction — the guard then holds nothing and
  /// the caller must return the status instead of mutating.
  const Status& status() const { return status_; }

 private:
  Database* db_;
  Status status_;
};

/// A compiled statement held by the Database's plan cache (opaque outside
/// database.cc). Operator trees are stateful, so one cached SQL text owns a
/// pool of compiled plan instances; each execution checks one out, and a
/// fresh instance is compiled when every existing one is busy on another
/// thread. The entry also carries the persistent parameter bindings shared
/// by every PreparedStatement handle on the text.
struct CachedPlan;
/// One executable compilation of a cached SQL text (opaque, see CachedPlan).
struct PlanInstance;

/// A reusable statement handle: parse and plan once, then Bind fresh values
/// and re-execute. Obtained from Database::Prepare. Copyable (copies share
/// the underlying compiled plan and its parameter bindings — two handles on
/// the same SQL text rebind each other, so bind-then-execute without
/// interleaving other handles of the same text).
///
/// Handles are not thread-safe objects: bindings are shared per SQL text,
/// so concurrent Bind/Query through handles on the same text race. For
/// concurrent parameterized reads use Database::QueryP, which carries its
/// parameters per call.
///
/// If the catalog changes (CREATE/DROP TABLE or INDEX) between calls, the
/// handle transparently re-prepares itself from its SQL text, preserving
/// current bindings; it never executes a plan from a previous catalog
/// generation.
class PreparedStatement {
 public:
  PreparedStatement() = default;

  const std::string& sql() const;
  size_t param_count() const;

  /// Binds parameter `index` (0-based, left-to-right order of '?' in the
  /// SQL text). Bindings persist across executions until rebound.
  Status Bind(size_t index, Value v);
  /// Binds all parameters at once; `values.size()` must equal param_count().
  Status BindAll(Row values);

  /// Executes a prepared SELECT with the current bindings. `sopts` carries
  /// the per-call governance overrides (deadline, cancel handle).
  Result<ResultSet> Query(const StatementOptions& sopts = {});
  /// Executes any prepared statement; returns affected-row count
  /// (result-row count for SELECT, 0 for DDL).
  Result<int64_t> Execute(const StatementOptions& sopts = {});
  /// Binds and executes once per row: one parse + plan for N executions.
  /// Returns the summed affected-row count. An empty batch is a no-op.
  Result<int64_t> ExecuteBatch(const std::vector<Row>& rows);

 private:
  friend class Database;
  PreparedStatement(Database* db, std::shared_ptr<CachedPlan> entry);

  /// Re-prepares from sql() when the catalog generation has moved.
  Status Refresh();

  Database* db_ = nullptr;
  std::shared_ptr<CachedPlan> entry_;
};

/// The embedded relational engine: catalog + storage + SQL execution.
/// Statements are parsed, planned and executed eagerly.
///
/// Thread-safe under a reader–writer discipline (see StatementLatch and
/// docs/INTERNALS.md §9): any number of threads may run read-only
/// statements (Query/QueryP/Explain) concurrently against one Database;
/// mutations and transactions take the statement latch exclusively and
/// therefore serialize against everything else. With
/// DatabaseOptions::enable_parallel_execution the planner additionally
/// splits single large scans and structural joins across an internal
/// thread pool (intra-query parallelism).
class Database {
 public:
  static Result<std::unique_ptr<Database>> Open(
      const DatabaseOptions& options = {});

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;
  ~Database();

  /// Serializes the catalog into page 0, flushes all dirty pages to the
  /// backend and — for WAL-enabled databases — fsyncs the data file and
  /// truncates the log. A no-op guarantee-wise for memory-resident
  /// databases. Must not be called inside a transaction.
  Status Checkpoint();

  /// Checkpoints and releases the WAL. Idempotent; called automatically by
  /// the destructor, which logs (but must swallow) any failure — call
  /// Close() directly to observe it. An open transaction is rolled back.
  Status Close();

  // ------------------------------------------------------------ transactions

  /// Starts an explicit transaction. Every mutation until Commit/Rollback
  /// becomes atomic: all of it or none of it survives a crash. Nested
  /// transactions are rejected. DDL cannot run inside a transaction.
  Status Begin();
  /// Makes the open transaction durable (WAL page images + commit record +
  /// fsync per the sync policy). On failure the transaction remains open
  /// and should be rolled back.
  Status Commit();
  /// Undoes every page the open transaction touched, restores heap
  /// metadata, and rebuilds the in-memory indexes from the restored heaps.
  Status Rollback();
  bool InTransaction() const;

  /// Session id that issued Begin (0 = none, or the embedded thread-bound
  /// API). Read by the session layer to decide whether a disconnecting
  /// session owns the open transaction it is about to roll back.
  uint64_t txn_session() const {
    return txn_session_.load(std::memory_order_acquire);
  }

  /// Whether a transaction is currently open (any owner).
  bool txn_open() const { return txn_open_.load(std::memory_order_acquire); }

  /// True when the calling thread may Commit/Rollback the open transaction:
  /// either the transaction was begun under a session identity and the
  /// current thread carries that same identity (ScopedSessionIdentity), or
  /// — the embedded fallback — the transaction is session-less and the
  /// current thread is the one that called Begin. False when no transaction
  /// is open.
  bool CurrentThreadOwnsTxn() const;

  /// Abandons all buffered state exactly as a process kill would: nothing
  /// is flushed or checkpointed on destruction, and the WAL is left as-is
  /// for the next open to replay. The object is unusable afterwards except
  /// for destruction.
  void SimulateCrashForTesting();

  // -------------------------------------------------------- programmatic API

  Status CreateTable(const std::string& name, Schema schema);
  Status DropTable(const std::string& name);
  Status CreateIndex(const std::string& index_name, const std::string& table,
                     const std::vector<std::string>& columns, bool unique);

  /// Returns the table or nullptr.
  TableInfo* GetTable(const std::string& name) const;

  /// Direct row insertion (bypasses SQL, used by the bulk shredder).
  Result<Rid> Insert(const std::string& table, const Row& row);

  /// Appends `rows` to `table` through the bulk path (tail-extended heap +
  /// bottom-up index builds, see TableInfo::BulkLoadRows), auto-committed
  /// unless a transaction is open. Falls back to per-row InsertRow when the
  /// table is non-empty (bulk index construction needs empty trees).
  /// Returns the number of rows loaded.
  Result<int64_t> BulkLoadRows(const std::string& table,
                               const std::vector<Row>& rows);

  // ---------------------------------------------------------------- SQL API

  /// Executes a SELECT and materializes the result. Served from the plan
  /// cache when the same SQL text was seen before. Statements containing
  /// '?' parameters are rejected — use QueryP() or Prepare(). Safe to call
  /// from many threads at once (shared statement latch). `sopts` carries
  /// per-call governance overrides (deadline, cancel handle).
  Result<ResultSet> Query(std::string_view sql,
                          const StatementOptions& sopts = {});

  /// One-shot parameterized SELECT: binds `params` to the '?' markers and
  /// executes, all within a single call. Unlike PreparedStatement handles,
  /// the bindings live in the per-call plan instance, so concurrent QueryP
  /// calls on the same SQL text never observe each other's parameters —
  /// this is the thread-safe path the XPath driver uses.
  Result<ResultSet> QueryP(std::string_view sql, Row params,
                           const StatementOptions& sopts = {});

  /// Executes any statement; returns the number of affected rows
  /// (0 for DDL, result-row count for SELECT). Cache/parameter behavior as
  /// for Query(). Takes the statement latch exclusively (the statement may
  /// mutate).
  Result<int64_t> Execute(std::string_view sql,
                          const StatementOptions& sopts = {});

  /// One-shot parameterized Execute (see QueryP for binding semantics).
  Result<int64_t> ExecuteP(std::string_view sql, Row params,
                           const StatementOptions& sopts = {});

  /// Requests cooperative cancellation of an in-flight statement (the id
  /// from StatementOptions::statement_id, observed on any thread). The
  /// target aborts with kCancelled at its next check point; a mutating
  /// statement rolls back through the normal undo path. NotFound when no
  /// statement with that id is in flight — cancellation raced completion,
  /// which callers should treat as benign.
  Status Cancel(uint64_t statement_id);

  /// Registers an externally-built QueryControl in the in-flight registry
  /// and returns the statement id assigned to it, making it reachable by
  /// Cancel() exactly like a governor-built control. The session layer
  /// installs such controls around whole statements (so deadline/budget
  /// defaults and queue time are session-scoped); the nested governor then
  /// inherits the control instead of registering a second one. Pair with
  /// UnregisterControl once the statement finishes.
  uint64_t RegisterExternalControl(std::shared_ptr<QueryControl> control);
  void UnregisterControl(uint64_t statement_id);

  /// Compiles `sql` (which may contain '?' parameter markers) into a
  /// reusable handle, served from the plan cache on repeat texts.
  Result<PreparedStatement> Prepare(std::string_view sql);

  /// Returns the physical plan of a SELECT as an indented tree. Accepts
  /// '?' markers (bounds depending on them render as dynamic).
  Result<std::string> Explain(std::string_view sql);

  // ------------------------------------------------------------- accounting

  ExecStats* stats() {
    // The retry tally lives with the storage backends (which outlive the
    // stats struct during destruction); fold it in on read.
    if (io_retries_ != nullptr) {
      stats_.io_retries = io_retries_->load(std::memory_order_relaxed);
    }
    return &stats_;
  }
  const DatabaseOptions& options() const { return options_; }
  /// The id the next statement will be assigned (ids are dense and start
  /// at 1). A canceller that snapshots this before racing a peer's
  /// statements can sweep Cancel over the window it observed.
  uint64_t next_statement_id() const {
    return statement_id_counter_.load(std::memory_order_relaxed) + 1;
  }
  /// The database-wide memory budget (see
  /// DatabaseOptions::total_memory_budget_bytes); exposed for tests.
  MemoryBudget* global_memory_budget() { return &global_budget_; }
  BufferPool* buffer_pool() { return pool_.get(); }
  /// The intra-query execution pool, or null when parallel execution is
  /// disabled (the planner then never emits parallel operators).
  ThreadPool* thread_pool() const { return exec_pool_.get(); }
  /// The bulk-load pool, or null when parallel loading is disabled (the
  /// stores then shred serially).
  ThreadPool* load_pool() const { return load_pool_.get(); }
  /// The database-wide statement latch (tests use it to assert the
  /// reader/writer discipline; normal clients never touch it).
  StatementLatch* statement_latch() { return &latch_; }
  /// The write-ahead log, or null (memory-resident / WAL disabled).
  WriteAheadLog* wal() const { return wal_.get(); }
  StorageStats GetStorageStats() const;

  /// Monotone counter bumped by every CREATE/DROP TABLE and CREATE INDEX;
  /// cached plans from older generations are never executed.
  uint64_t catalog_generation() const { return catalog_generation_; }
  /// Entries currently held by the plan cache.
  size_t plan_cache_size() const {
    std::lock_guard<std::mutex> lock(plan_cache_mu_);
    return plan_cache_.size();
  }

 private:
  friend class PreparedStatement;
  friend class WriteStatementGuard;
  friend class StatementGovernor;

  // Defined in database.cc: ThreadPool is incomplete here, so both the
  // constructor and destructor must be out of line.
  explicit Database(std::unique_ptr<BufferPool> pool);

  /// Writes the catalog (table + index definitions, heap metadata) into
  /// the reserved catalog page.
  Status SaveCatalog();
  /// Rebuilds the catalog from page 0 of an existing file.
  Status LoadCatalog();

  Result<int64_t> ExecuteInsert(InsertStmt* stmt);
  Result<int64_t> ExecuteUpdate(UpdateStmt* stmt);
  Result<int64_t> ExecuteDelete(DeleteStmt* stmt);

  /// Collects the rids of rows in `table` matching `where` (which may be
  /// null), using an index range when one applies.
  Result<std::vector<Rid>> CollectRids(TableInfo* table, Expr* where);

  /// Looks up `sql` in the plan cache; on miss, parses + plans and (for
  /// cacheable statement kinds) inserts the entry, evicting the least
  /// recently used one past capacity. Thread-safe (plan-cache mutex).
  Result<std::shared_ptr<CachedPlan>> GetOrBuildPlan(std::string_view sql);
  /// Parses + plans one executable instance of `sql` (kind/param_count are
  /// optional out-params for the first compilation of an entry).
  Result<std::unique_ptr<PlanInstance>> CompileInstance(const std::string& sql,
                                                        StmtKind* kind,
                                                        size_t* param_count);
  /// Checks a non-busy instance out of the entry (compiling a fresh one
  /// when every instance is executing on another thread). The caller
  /// returns it by clearing its busy flag under the entry's mutex
  /// (InstanceLease in database.cc).
  Result<PlanInstance*> AcquireInstance(CachedPlan* entry);
  /// Shared implementations of Query/QueryP and Execute/ExecuteP; callers
  /// hold the statement latch. Null `params` = reject parameterized SQL.
  Result<ResultSet> QueryLocked(std::string_view sql, Row* params);
  Result<int64_t> ExecuteLocked(std::string_view sql, Row* params);
  /// Runs a compiled instance, wrapping DML in an auto-commit transaction
  /// when none is open.
  Result<int64_t> ExecuteEntry(CachedPlan* entry, PlanInstance* inst);
  Result<int64_t> ExecuteEntryInner(CachedPlan* entry, PlanInstance* inst);
  /// Drops all cached plans, bumps the catalog generation and marks the
  /// catalog page for inclusion in the next commit (called by every DDL
  /// mutation and by Rollback, which rebuilds the indexes plans point at).
  void InvalidatePlans();

  /// Rollback body without the ownership pre-checks; shared by the public
  /// Rollback, Close() (which rolls back an abandoned transaction from
  /// whatever thread destroys the database) and the commit-failure path.
  Status RollbackInner();
  /// Clears transaction bookkeeping (heap snapshot, per-index txn deltas,
  /// owner/open flags) and wakes writers gate-waiting in
  /// WriteStatementGuard. Called on every Commit/Rollback exit.
  void EndTxnBookkeeping();
  /// Copies the buffer pool's MVCC counters into stats_ (call sites hold
  /// the statement latch at least shared).
  void SyncMvccStats();
  /// Arms `snap` with the current commit LSN when this reader statement
  /// overlaps a foreign thread's open transaction under MVCC; otherwise
  /// leaves it disengaged and the statement reads current state.
  void MaybeBeginSnapshot(std::optional<ScopedReadSnapshot>* snap) const;

  std::unique_ptr<BufferPool> pool_;
  std::unique_ptr<WriteAheadLog> wal_;
  DatabaseOptions options_;
  std::map<std::string, std::unique_ptr<TableInfo>> tables_;
  ExecStats stats_;
  bool closed_ = false;
  /// The catalog changed (DDL / rollback) since the last commit wrote it.
  bool catalog_dirty_ = false;
  /// Per-table heap bookkeeping captured at Begin, restored by Rollback.
  std::map<std::string, HeapTable::Metadata> heap_snapshot_;

  /// Readers shared / writers exclusive. Acquired before any other engine
  /// lock. With MVCC off, Begin holds exclusive until Commit/Rollback;
  /// with MVCC on (default) exclusivity is per mutating statement.
  mutable StatementLatch latch_;
  /// True between a successful Begin and the end of Commit/Rollback.
  /// Written under txn_mu_ (so WriteStatementGuard can wait on txn_cv_),
  /// read lock-free by InTransaction and the ownership pre-checks.
  std::atomic<bool> txn_open_{false};
  /// Thread that issued Begin (default id = none). Mutations from other
  /// threads gate-wait in WriteStatementGuard until the transaction ends.
  std::atomic<std::thread::id> txn_owner_{};
  /// Session identity (CurrentSessionId) at Begin; 0 for the embedded API.
  /// When non-zero, ownership checks compare session ids instead of thread
  /// ids, so a session's transaction survives being served by different
  /// pool threads.
  std::atomic<uint64_t> txn_session_{0};
  /// Guards txn_open_ transitions; pairs with txn_cv_ for the write gate.
  std::mutex txn_mu_;
  std::condition_variable txn_cv_;
  /// Intra-query workers, created at Open when enable_parallel_execution.
  std::unique_ptr<ThreadPool> exec_pool_;
  /// Bulk-load workers, created at Open when enable_parallel_load.
  std::unique_ptr<ThreadPool> load_pool_;

  // Statement governance (docs/INTERNALS.md §12). The registry maps the
  // ids handed out through StatementOptions::statement_id to the live
  // controls so Cancel() can reach a statement from any thread; entries
  // exist exactly while the owning statement executes.
  MemoryBudget global_budget_;
  IoRetryCounter io_retries_;
  std::atomic<uint64_t> statement_id_counter_{0};
  mutable std::mutex inflight_mu_;
  std::unordered_map<uint64_t, std::shared_ptr<QueryControl>> inflight_;

  // Plan cache: SQL text -> compiled entry, LRU-ordered (front = hottest).
  // `plan_cache_mu_` guards the map and the LRU list; per-entry instance
  // state is guarded by each CachedPlan's own mutex.
  mutable std::mutex plan_cache_mu_;
  std::unordered_map<std::string, std::shared_ptr<CachedPlan>> plan_cache_;
  std::list<std::string> lru_;
  size_t plan_cache_capacity_ = 128;
  uint64_t catalog_generation_ = 0;
};

/// RAII transaction scope with flat nesting: opens a transaction unless one
/// is already active (in which case Commit/destruction are no-ops and the
/// enclosing scope decides the outcome). The destructor rolls back a scope
/// that was never committed, so every early-error return is atomic.
///
///   TxnScope txn(db);
///   OXML_RETURN_NOT_OK(txn.begin_status());
///   ... mutations ...
///   OXML_RETURN_NOT_OK(txn.Commit());
class TxnScope {
 public:
  explicit TxnScope(Database* db) : db_(db) {
    if (db_ != nullptr && !db_->InTransaction()) {
      begin_status_ = db_->Begin();
      owns_ = begin_status_.ok();
    }
  }
  ~TxnScope() {
    if (owns_ && !done_) (void)db_->Rollback();
  }

  TxnScope(const TxnScope&) = delete;
  TxnScope& operator=(const TxnScope&) = delete;

  /// Error from the Begin attempted in the constructor (OK when nested).
  const Status& begin_status() const { return begin_status_; }
  /// True when this scope opened (and will close) the transaction.
  bool owns() const { return owns_; }

  /// Commits if this scope owns the transaction; rolls back on failure.
  /// A failed Commit leaves the transaction open (Database contract), so
  /// the rollback normally runs — but if the failure already tore the
  /// transaction down (e.g. the WAL burned the txn id and a fault-injected
  /// rollback then crashed the database out), InTransaction() is false and
  /// a second Rollback would be a spurious InvalidArgument on a closed
  /// engine; skip it.
  Status Commit() {
    if (!owns_ || done_) return Status::OK();
    done_ = true;
    Status st = db_->Commit();
    if (!st.ok() && db_->InTransaction()) (void)db_->Rollback();
    return st;
  }

 private:
  Database* db_;
  Status begin_status_;
  bool owns_ = false;
  bool done_ = false;
};

}  // namespace oxml

#endif  // OXML_RELATIONAL_DATABASE_H_
