#ifndef OXML_RELATIONAL_DATABASE_H_
#define OXML_RELATIONAL_DATABASE_H_

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/result.h"
#include "src/relational/buffer_pool.h"
#include "src/relational/catalog.h"
#include "src/relational/executor.h"
#include "src/relational/sql_ast.h"

namespace oxml {

/// Configuration of a Database instance.
struct DatabaseOptions {
  /// When non-empty, pages live in this file behind an LRU buffer pool;
  /// otherwise everything is memory-resident.
  std::string file_path;
  /// Buffer-pool frames when file-backed (0 = unbounded cache).
  size_t buffer_capacity = 0;
  /// Reopen an existing database file: the persisted catalog (page 0) is
  /// read back, heap tables are re-attached and the memory-resident
  /// B+tree indexes are rebuilt by scanning the heaps. When false (the
  /// default) any existing file content is discarded.
  bool open_existing = false;
};

/// Aggregate storage numbers (per database), used by the loading/storage
/// experiment.
struct StorageStats {
  uint64_t heap_pages = 0;
  uint64_t heap_rows = 0;
  uint64_t heap_bytes = 0;   // live row bytes
  uint64_t index_entries = 0;
  uint64_t index_bytes = 0;  // key bytes held in B+trees
};

/// The embedded relational engine: catalog + storage + SQL execution.
/// Single-threaded; statements are parsed, planned and executed eagerly.
class Database {
 public:
  static Result<std::unique_ptr<Database>> Open(
      const DatabaseOptions& options = {});

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;
  ~Database();

  /// Serializes the catalog into page 0 and flushes all dirty pages to the
  /// backend. A no-op guarantee-wise for memory-resident databases. Called
  /// automatically on destruction.
  Status Checkpoint();

  // -------------------------------------------------------- programmatic API

  Status CreateTable(const std::string& name, Schema schema);
  Status DropTable(const std::string& name);
  Status CreateIndex(const std::string& index_name, const std::string& table,
                     const std::vector<std::string>& columns, bool unique);

  /// Returns the table or nullptr.
  TableInfo* GetTable(const std::string& name) const;

  /// Direct row insertion (bypasses SQL, used by the bulk shredder).
  Result<Rid> Insert(const std::string& table, const Row& row);

  // ---------------------------------------------------------------- SQL API

  /// Executes a SELECT and materializes the result.
  Result<ResultSet> Query(std::string_view sql);

  /// Executes any statement; returns the number of affected rows
  /// (0 for DDL, result-row count for SELECT).
  Result<int64_t> Execute(std::string_view sql);

  /// Returns the physical plan of a SELECT as an indented tree.
  Result<std::string> Explain(std::string_view sql);

  // ------------------------------------------------------------- accounting

  ExecStats* stats() { return &stats_; }
  BufferPool* buffer_pool() { return pool_.get(); }
  StorageStats GetStorageStats() const;

 private:
  explicit Database(std::unique_ptr<BufferPool> pool)
      : pool_(std::move(pool)) {}

  /// Writes the catalog (table + index definitions, heap metadata) into
  /// the reserved catalog page.
  Status SaveCatalog();
  /// Rebuilds the catalog from page 0 of an existing file.
  Status LoadCatalog();

  Result<int64_t> ExecuteInsert(InsertStmt* stmt);
  Result<int64_t> ExecuteUpdate(UpdateStmt* stmt);
  Result<int64_t> ExecuteDelete(DeleteStmt* stmt);

  /// Collects the rids of rows in `table` matching `where` (which may be
  /// null), using an index range when one applies.
  Result<std::vector<Rid>> CollectRids(TableInfo* table, Expr* where);

  std::unique_ptr<BufferPool> pool_;
  std::map<std::string, std::unique_ptr<TableInfo>> tables_;
  ExecStats stats_;
};

}  // namespace oxml

#endif  // OXML_RELATIONAL_DATABASE_H_
