#ifndef OXML_RELATIONAL_DATABASE_H_
#define OXML_RELATIONAL_DATABASE_H_

#include <list>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/common/result.h"
#include "src/relational/buffer_pool.h"
#include "src/relational/catalog.h"
#include "src/relational/executor.h"
#include "src/relational/sql_ast.h"

namespace oxml {

/// Configuration of a Database instance.
struct DatabaseOptions {
  /// When non-empty, pages live in this file behind an LRU buffer pool;
  /// otherwise everything is memory-resident.
  std::string file_path;
  /// Buffer-pool frames when file-backed (0 = unbounded cache).
  size_t buffer_capacity = 0;
  /// Reopen an existing database file: the persisted catalog (page 0) is
  /// read back, heap tables are re-attached and the memory-resident
  /// B+tree indexes are rebuilt by scanning the heaps. When false (the
  /// default) any existing file content is discarded.
  bool open_existing = false;
  /// Capacity of the LRU plan cache (distinct SQL texts). 0 disables
  /// caching entirely: every statement — prepared or ad-hoc — pays a fresh
  /// parse + plan.
  size_t plan_cache_capacity = 128;
  /// Lower interval-containment conjunct pairs (the ancestor–descendant
  /// patterns emitted by the XPath translator) to the stack-based
  /// StructuralJoinOp. Off = generic nested-loop + filter (the pre-PR2
  /// behavior), kept as a toggle for differential testing.
  bool enable_structural_join = true;
  /// Use MergeJoinOp for equi-joins whose inputs are already sorted on the
  /// join key (as reported by the operators' order properties).
  bool enable_merge_join = true;
  /// Drop the SortOp for an ORDER BY already satisfied by the input order.
  bool enable_sort_elision = true;
};

/// Aggregate storage numbers (per database), used by the loading/storage
/// experiment.
struct StorageStats {
  uint64_t heap_pages = 0;
  uint64_t heap_rows = 0;
  uint64_t heap_bytes = 0;   // live row bytes
  uint64_t index_entries = 0;
  uint64_t index_bytes = 0;  // key bytes held in B+trees
};

class Database;

/// A compiled statement held by the Database's plan cache (opaque outside
/// database.cc). SELECTs keep their physical operator tree; DML keeps the
/// parsed AST. Both carry the shared parameter buffer their ParamExprs read.
struct CachedPlan;

/// A reusable statement handle: parse and plan once, then Bind fresh values
/// and re-execute. Obtained from Database::Prepare. Copyable (copies share
/// the underlying compiled plan and its parameter bindings — two handles on
/// the same SQL text rebind each other, so bind-then-execute without
/// interleaving other handles of the same text).
///
/// If the catalog changes (CREATE/DROP TABLE or INDEX) between calls, the
/// handle transparently re-prepares itself from its SQL text, preserving
/// current bindings; it never executes a plan from a previous catalog
/// generation.
class PreparedStatement {
 public:
  PreparedStatement() = default;

  const std::string& sql() const;
  size_t param_count() const;

  /// Binds parameter `index` (0-based, left-to-right order of '?' in the
  /// SQL text). Bindings persist across executions until rebound.
  Status Bind(size_t index, Value v);
  /// Binds all parameters at once; `values.size()` must equal param_count().
  Status BindAll(Row values);

  /// Executes a prepared SELECT with the current bindings.
  Result<ResultSet> Query();
  /// Executes any prepared statement; returns affected-row count
  /// (result-row count for SELECT, 0 for DDL).
  Result<int64_t> Execute();
  /// Binds and executes once per row: one parse + plan for N executions.
  /// Returns the summed affected-row count. An empty batch is a no-op.
  Result<int64_t> ExecuteBatch(const std::vector<Row>& rows);

 private:
  friend class Database;
  PreparedStatement(Database* db, std::shared_ptr<CachedPlan> entry);

  /// Re-prepares from sql() when the catalog generation has moved.
  Status Refresh();

  Database* db_ = nullptr;
  std::shared_ptr<CachedPlan> entry_;
};

/// The embedded relational engine: catalog + storage + SQL execution.
/// Single-threaded; statements are parsed, planned and executed eagerly.
class Database {
 public:
  static Result<std::unique_ptr<Database>> Open(
      const DatabaseOptions& options = {});

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;
  ~Database();

  /// Serializes the catalog into page 0 and flushes all dirty pages to the
  /// backend. A no-op guarantee-wise for memory-resident databases. Called
  /// automatically on destruction.
  Status Checkpoint();

  // -------------------------------------------------------- programmatic API

  Status CreateTable(const std::string& name, Schema schema);
  Status DropTable(const std::string& name);
  Status CreateIndex(const std::string& index_name, const std::string& table,
                     const std::vector<std::string>& columns, bool unique);

  /// Returns the table or nullptr.
  TableInfo* GetTable(const std::string& name) const;

  /// Direct row insertion (bypasses SQL, used by the bulk shredder).
  Result<Rid> Insert(const std::string& table, const Row& row);

  // ---------------------------------------------------------------- SQL API

  /// Executes a SELECT and materializes the result. Served from the plan
  /// cache when the same SQL text was seen before. Statements containing
  /// '?' parameters are rejected — use Prepare().
  Result<ResultSet> Query(std::string_view sql);

  /// Executes any statement; returns the number of affected rows
  /// (0 for DDL, result-row count for SELECT). Cache/parameter behavior as
  /// for Query().
  Result<int64_t> Execute(std::string_view sql);

  /// Compiles `sql` (which may contain '?' parameter markers) into a
  /// reusable handle, served from the plan cache on repeat texts.
  Result<PreparedStatement> Prepare(std::string_view sql);

  /// Returns the physical plan of a SELECT as an indented tree. Accepts
  /// '?' markers (bounds depending on them render as dynamic).
  Result<std::string> Explain(std::string_view sql);

  // ------------------------------------------------------------- accounting

  ExecStats* stats() { return &stats_; }
  const DatabaseOptions& options() const { return options_; }
  BufferPool* buffer_pool() { return pool_.get(); }
  StorageStats GetStorageStats() const;

  /// Monotone counter bumped by every CREATE/DROP TABLE and CREATE INDEX;
  /// cached plans from older generations are never executed.
  uint64_t catalog_generation() const { return catalog_generation_; }
  /// Entries currently held by the plan cache.
  size_t plan_cache_size() const { return plan_cache_.size(); }

 private:
  friend class PreparedStatement;

  explicit Database(std::unique_ptr<BufferPool> pool)
      : pool_(std::move(pool)) {}

  /// Writes the catalog (table + index definitions, heap metadata) into
  /// the reserved catalog page.
  Status SaveCatalog();
  /// Rebuilds the catalog from page 0 of an existing file.
  Status LoadCatalog();

  Result<int64_t> ExecuteInsert(InsertStmt* stmt);
  Result<int64_t> ExecuteUpdate(UpdateStmt* stmt);
  Result<int64_t> ExecuteDelete(DeleteStmt* stmt);

  /// Collects the rids of rows in `table` matching `where` (which may be
  /// null), using an index range when one applies.
  Result<std::vector<Rid>> CollectRids(TableInfo* table, Expr* where);

  /// Looks up `sql` in the plan cache; on miss, parses + plans and (for
  /// cacheable statement kinds) inserts the entry, evicting the least
  /// recently used one past capacity.
  Result<std::shared_ptr<CachedPlan>> GetOrBuildPlan(std::string_view sql);
  /// Runs a compiled entry with its current parameter bindings.
  Result<int64_t> ExecuteEntry(CachedPlan* entry);
  /// Drops all cached plans and bumps the catalog generation (called by
  /// every DDL mutation).
  void InvalidatePlans();

  std::unique_ptr<BufferPool> pool_;
  DatabaseOptions options_;
  std::map<std::string, std::unique_ptr<TableInfo>> tables_;
  ExecStats stats_;

  // Plan cache: SQL text -> compiled entry, LRU-ordered (front = hottest).
  std::unordered_map<std::string, std::shared_ptr<CachedPlan>> plan_cache_;
  std::list<std::string> lru_;
  size_t plan_cache_capacity_ = 128;
  uint64_t catalog_generation_ = 0;
};

}  // namespace oxml

#endif  // OXML_RELATIONAL_DATABASE_H_
