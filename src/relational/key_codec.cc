#include "src/relational/key_codec.h"

#include <cstring>

namespace oxml {
namespace {

void EncodeBigEndian(uint64_t v, std::string* out) {
  for (int shift = 56; shift >= 0; shift -= 8) {
    out->push_back(static_cast<char>((v >> shift) & 0xFF));
  }
}

void EncodeString(std::string_view s, std::string* out) {
  for (char c : s) {
    if (c == '\0') {
      out->push_back('\0');
      out->push_back('\xFF');
    } else {
      out->push_back(c);
    }
  }
  out->push_back('\0');
  out->push_back('\0');
}

}  // namespace

void EncodeKeyValue(const Value& v, std::string* out) {
  if (v.is_null()) {
    out->push_back('\0');
    return;
  }
  out->push_back('\x01');
  switch (v.type()) {
    case TypeId::kInt: {
      uint64_t bits = static_cast<uint64_t>(v.AsInt());
      bits ^= 0x8000000000000000ULL;  // flip sign so negatives sort first
      EncodeBigEndian(bits, out);
      break;
    }
    case TypeId::kDouble: {
      double d = v.AsDouble();
      uint64_t bits;
      std::memcpy(&bits, &d, 8);
      // IEEE-754 totally ordered encoding: flip all bits for negatives,
      // flip just the sign bit for non-negatives.
      if (bits & 0x8000000000000000ULL) {
        bits = ~bits;
      } else {
        bits ^= 0x8000000000000000ULL;
      }
      EncodeBigEndian(bits, out);
      break;
    }
    case TypeId::kText:
    case TypeId::kBlob:
      EncodeString(v.AsString(), out);
      break;
    case TypeId::kNull:
      break;
  }
}

std::string EncodeKey(const std::vector<Value>& values) {
  std::string out;
  for (const Value& v : values) EncodeKeyValue(v, &out);
  return out;
}

std::string EncodeKey(const Value& v) {
  std::string out;
  EncodeKeyValue(v, &out);
  return out;
}

std::string KeySuccessor(std::string_view key) {
  std::string out(key);
  out.push_back('\xFF');
  return out;
}

std::string BlobPrefixUpperBound(std::string_view blob) {
  std::string out(blob);
  out.push_back('\xFF');
  return out;
}

}  // namespace oxml
