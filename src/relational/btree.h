#ifndef OXML_RELATIONAL_BTREE_H_
#define OXML_RELATIONAL_BTREE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/common/result.h"
#include "src/relational/page.h"

namespace oxml {

/// A memory-resident B+tree mapping byte-string keys (see key_codec.h) to
/// Rids. Duplicate keys are allowed; entries are totally ordered by
/// (key, rid). Leaves are chained for ordered range scans. This plays the
/// role of the RDBMS's secondary/primary indexes; the engine keeps indexes
/// memory-resident (a common main-memory DBMS design) while the heap is
/// page-structured.
class BPlusTree {
 public:
  /// Maximum entries per node before a split.
  static constexpr size_t kNodeCapacity = 64;

  BPlusTree();
  ~BPlusTree();

  BPlusTree(const BPlusTree&) = delete;
  BPlusTree& operator=(const BPlusTree&) = delete;

  /// Inserts (key, rid). Duplicates of the same (key, rid) pair are ignored.
  void Insert(std::string_view key, const Rid& rid);

  /// One (key, rid) entry handed to BulkBuild.
  using Entry = std::pair<std::string, Rid>;

  /// Bottom-up bulk construction: packs `entries` into leaves at ~3/4 fill
  /// (so post-load inserts have headroom before splitting) and stacks
  /// internal levels over them, instead of repeated Insert descents.
  /// Requires an empty tree and `entries` sorted by (key, rid) with no
  /// exact duplicates; returns InvalidArgument/FailedPrecondition
  /// otherwise, leaving the tree empty and usable. The entries vector is
  /// consumed (keys are moved into the leaves).
  Status BulkBuild(std::vector<Entry>&& entries);

  /// Aggregate facts gathered by CheckStructure().
  struct StructureInfo {
    size_t leaves = 0;             ///< non-empty leaves visited
    size_t min_leaf_entries = 0;   ///< smallest leaf occupancy
    size_t max_leaf_entries = 0;   ///< largest leaf occupancy
    size_t depth = 0;              ///< uniform leaf depth (1 = root is leaf)
  };

  /// Full structural audit: (key, rid) entries strictly increasing across
  /// the whole tree, every entry within its parent separator bounds, all
  /// leaves at the same depth, leaf chain consistent with the tree walk,
  /// and size()/key_bytes() matching the actual contents. Used by tests
  /// to validate both Insert-built and BulkBuild-built trees.
  Result<StructureInfo> CheckStructure() const;

  /// Removes the exact (key, rid) entry. Returns true if it was present.
  bool Erase(std::string_view key, const Rid& rid);

  /// True if at least one entry with exactly `key` exists.
  bool Contains(std::string_view key) const;

  size_t size() const { return size_; }
  /// Height of the tree (1 = a single leaf).
  size_t height() const { return height_; }
  /// Total bytes held in keys (storage accounting for experiments).
  size_t key_bytes() const { return key_bytes_; }

  // Node types are public so that implementation helpers in btree.cc can
  // name them; they are defined only in the .cc file.
  struct Node;
  struct Leaf;
  struct Internal;

  /// Forward iterator over (key, rid) entries in key order.
  class Iterator {
   public:
    Iterator() = default;
    Iterator(const Leaf* leaf, size_t pos) : leaf_(leaf), pos_(pos) {}

    bool valid() const;
    const std::string& key() const;
    const Rid& rid() const;
    void Next();

   private:
    const Leaf* leaf_ = nullptr;
    size_t pos_ = 0;
  };

  /// Up to `shards - 1` separator keys that cut the key space into roughly
  /// equal ranges: [min, s0), [s0, s1), ..., [s_last, max]. Separators are
  /// first-keys of leaves, so LowerBound(s) lands exactly on a leaf
  /// boundary. Used by ParallelScanOp to fan a range scan out across
  /// threads. Returns fewer (possibly zero) separators for small trees.
  std::vector<std::string> SplitKeys(size_t shards) const;

  /// Iterator at the first entry with key >= `key` (end if none).
  Iterator LowerBound(std::string_view key) const;
  /// Iterator at the first entry with key > `key`.
  Iterator UpperBound(std::string_view key) const;
  /// Iterator at the smallest entry.
  Iterator Begin() const;

 private:
  Node* root_ = nullptr;
  size_t size_ = 0;
  size_t height_ = 1;
  size_t key_bytes_ = 0;
};

}  // namespace oxml

#endif  // OXML_RELATIONAL_BTREE_H_
