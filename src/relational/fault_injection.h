#ifndef OXML_RELATIONAL_FAULT_INJECTION_H_
#define OXML_RELATIONAL_FAULT_INJECTION_H_

#include <cstdint>
#include <memory>
#include <string>

#include "src/common/result.h"
#include "src/relational/buffer_pool.h"

namespace oxml {

/// A shared fault schedule consulted by every durable I/O operation — data
/// file page reads/writes/syncs (via FaultInjectingBackend) and WAL
/// appends/syncs/resets (WriteAheadLog takes the plan directly). The crash
/// tests arm the plan to fire at the Nth counted I/O; once a crash-class
/// fault fires, every subsequent operation fails with a "simulated crash"
/// IOError, modelling a killed process whose files can no longer change.
/// Not latched: durable I/O only happens under the database's exclusive
/// statement latch (writers and transactions serialize; concurrent readers
/// never write pages or the WAL), so the counters here see one thread at a
/// time. Crash tests additionally run single-threaded by construction.
struct FaultPlan {
  enum class Mode : uint8_t {
    kNone = 0,    ///< count I/Os but never fire
    kCrash,       ///< the Nth I/O does not happen; everything after fails
    kTornPage,    ///< the Nth write persists only its first half, then crash
    kEIO,         ///< the Nth I/O fails with EIO once; later I/Os proceed
    kShortWrite,  ///< the Nth write persists half and fails once; no crash
    kTransient,   ///< write-class I/Os nth .. nth+K-1 fail with a retryable
                  ///< error, then succeed (K = transient_failures); models
                  ///< EAGAIN-style blips that a bounded retry loop absorbs
    kEnospc,      ///< every write-class I/O from the nth on fails with
                  ///< ENOSPC until the plan is re-armed ("space returns");
                  ///< reads keep working — the disk is full, not broken
  };

  /// What the instrumented operation should do, as decided by BeforeWrite /
  /// BeforeRead / BeforeSync.
  enum class Decision : uint8_t {
    kProceed,   ///< perform the I/O normally
    kFail,      ///< do nothing; return an IOError
    kTear,      ///< persist only the first `kTearBytes` of the buffer, then
                ///< return an IOError
    kFailTransient,  ///< do nothing; retryable — the caller may back off and
                     ///< consult the plan again (each retry is counted)
    kFailEnospc,     ///< do nothing; return an ENOSPC-flavoured IOError that
                     ///< is NOT retryable (space does not return on its own)
  };

  static constexpr size_t kTearBytes = 4096;  // half a page

  /// Arms the plan: the `nth` counted I/O (1-based) fires `mode`. Resets
  /// counters and the crashed flag.
  void Arm(uint64_t nth, Mode mode) {
    trigger = nth;
    this->mode = mode;
    io_count = 0;
    faults_fired = 0;
    crashed = false;
  }

  /// Arms a transient fault: write-class I/Os nth .. nth+k-1 fail with
  /// Decision::kFailTransient, then I/Os succeed again.
  void ArmTransient(uint64_t nth, uint64_t k) {
    Arm(nth, Mode::kTransient);
    transient_failures = k;
  }

  /// Counts a write-class I/O (page write, WAL append) and decides its fate.
  Decision BeforeWrite() { return Step(/*is_write=*/true); }
  /// Counts a sync (fsync of data file or WAL).
  Decision BeforeSync() { return Step(/*is_write=*/true); }
  /// Reads are not counted toward the trigger, but fail after a crash.
  Decision BeforeRead() { return crashed ? Decision::kFail : Decision::kProceed; }

  /// IOError used for simulated failures.
  static Status SimulatedError(const char* what) {
    return Status::IOError(std::string("fault injection: ") + what);
  }

  /// The injected disk-full error. Message mirrors strerror(ENOSPC) so
  /// logs read like the real thing.
  static Status SimulatedEnospc(const char* what) {
    return Status::IOError(std::string("fault injection: ") + what +
                           ": No space left on device");
  }

  uint64_t io_count = 0;      ///< write-class I/Os seen since Arm()
  uint64_t trigger = 0;       ///< 1-based index of the faulted I/O (0 = off)
  uint64_t faults_fired = 0;  ///< number of injected faults so far
  uint64_t transient_failures = 2;  ///< K for Mode::kTransient
  Mode mode = Mode::kNone;
  bool crashed = false;       ///< post-crash: every I/O fails

 private:
  Decision Step(bool is_write) {
    if (crashed) return Decision::kFail;
    ++io_count;
    if (trigger == 0 || mode == Mode::kNone) return Decision::kProceed;
    // Transient and disk-full faults cover a range of I/Os; the classic
    // crash-class faults fire on exactly the trigger.
    if (mode == Mode::kTransient) {
      if (io_count < trigger || io_count >= trigger + transient_failures) {
        return Decision::kProceed;
      }
      ++faults_fired;
      return Decision::kFailTransient;
    }
    if (mode == Mode::kEnospc) {
      if (io_count < trigger) return Decision::kProceed;
      ++faults_fired;
      return Decision::kFailEnospc;
    }
    if (io_count != trigger) return Decision::kProceed;
    ++faults_fired;
    switch (mode) {
      case Mode::kCrash:
        crashed = true;
        return Decision::kFail;
      case Mode::kTornPage:
        crashed = true;
        return is_write ? Decision::kTear : Decision::kFail;
      case Mode::kEIO:
        return Decision::kFail;
      case Mode::kShortWrite:
        return is_write ? Decision::kTear : Decision::kFail;
      case Mode::kNone:
      case Mode::kTransient:
      case Mode::kEnospc:
        break;
    }
    return Decision::kProceed;
  }
};

/// Consults `plan` for a write-class I/O, absorbing Decision::kFailTransient
/// with the bounded IoRetryPolicy backoff (each retry re-consults the plan
/// and bumps `retries` when attached). Returns the first non-transient
/// decision, or kFailTransient once the retry budget is exhausted. Shared
/// by FaultInjectingBackend and the WAL.
FaultPlan::Decision DecideWriteWithRetry(FaultPlan* plan,
                                         const IoRetryCounter& retries);

/// A StorageBackend decorator that routes every page operation through a
/// FaultPlan. Wraps the real backend of a file-backed database in tests;
/// production opens never pay for it.
class FaultInjectingBackend : public StorageBackend {
 public:
  FaultInjectingBackend(std::unique_ptr<StorageBackend> inner,
                        std::shared_ptr<FaultPlan> plan)
      : inner_(std::move(inner)), plan_(std::move(plan)) {}

  Result<uint32_t> AllocatePage() override;
  Status ReadPage(uint32_t id, char* buf) override;
  Status WritePage(uint32_t id, const char* buf) override;
  Status Sync() override;
  uint32_t page_count() const override { return inner_->page_count(); }

  /// Attaches the ExecStats retry counter (injected-transient retries
  /// performed here are counted like real EAGAIN retries).
  void set_retry_counter(IoRetryCounter retries) {
    retries_ = std::move(retries);
  }

 private:
  /// Consults the plan for a write-class I/O, absorbing transient faults
  /// with the bounded backoff policy. Returns the final decision (never
  /// kFailTransient unless the retry budget is exhausted).
  FaultPlan::Decision DecideWrite();

  std::unique_ptr<StorageBackend> inner_;
  std::shared_ptr<FaultPlan> plan_;
  IoRetryCounter retries_;
};

}  // namespace oxml

#endif  // OXML_RELATIONAL_FAULT_INJECTION_H_
