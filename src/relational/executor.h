#ifndef OXML_RELATIONAL_EXECUTOR_H_
#define OXML_RELATIONAL_EXECUTOR_H_

#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/result.h"
#include "src/relational/catalog.h"
#include "src/relational/expression.h"
#include "src/relational/schema.h"

namespace oxml {

/// One component of an operator's output sort order: rows are non-decreasing
/// (non-increasing when `desc`) on this output column, with ties ordered by
/// the next key in the list.
struct OrderKey {
  int column = -1;  // position in the operator's output schema
  bool desc = false;

  bool operator==(const OrderKey& o) const {
    return column == o.column && desc == o.desc;
  }
};

/// True when a stream sorted on `have` is also sorted on `want`, i.e. `want`
/// is a prefix of `have`. (An empty `want` is satisfied by anything; an
/// empty `have` satisfies only an empty `want`.)
bool OrderSatisfies(const std::vector<OrderKey>& have,
                    const std::vector<OrderKey>& want);

/// Volcano-style pull iterator. Lifecycle: Open, then Next until it yields
/// false, then Close. `schema()` is valid after construction.
class Operator {
 public:
  virtual ~Operator() = default;
  virtual Status Open() = 0;
  /// Produces the next row into `*row`; returns false at end of stream.
  virtual Result<bool> Next(Row* row) = 0;
  virtual void Close() {}

  const Schema& schema() const { return schema_; }

  /// The sort order this operator guarantees for its output (empty = no
  /// guarantee). Set at construction; the planner reads it to elide sorts
  /// and to pick merge-based joins.
  const std::vector<OrderKey>& output_order() const { return order_; }

  /// One-line plan description; `Describe` renders the whole subtree.
  virtual std::string Name() const = 0;
  virtual void Describe(int indent, std::string* out) const;

 protected:
  Schema schema_;
  std::vector<OrderKey> order_;
};

using OperatorPtr = std::unique_ptr<Operator>;

/// Losslessly coerces `v` to `column_type` so that an encoded probe key
/// compares correctly against stored keys (the memcmp key encoding is only
/// order-preserving within a single type). Returns false when the coercion
/// would be lossy (e.g. DOUBLE 1.5 against an INT column).
bool CoerceForColumn(TypeId column_type, Value* v);

/// Index-scan bounds whose values come from expressions ('?' parameters or
/// literals mixed with them) and therefore cannot be encoded at plan time.
/// The executor resolves them at Open(), after parameters are bound.
struct DynamicIndexBounds {
  struct Term {
    ExprPtr expr;  // kLiteral or kParam; evaluated against an empty row
    TypeId column_type = TypeId::kNull;
  };
  std::vector<Term> eq;        // equality prefix, in index-column order
  std::optional<Term> lower;   // at most one trailing range bound each way
  bool lower_inclusive = true;
  std::optional<Term> upper;
  bool upper_inclusive = true;
};

/// Encoded bounds produced from a DynamicIndexBounds at execution time.
/// `usable == false` means a term evaluated to NULL: the scan falls back to
/// an unbounded range and the (always retained) residual filter decides.
struct ResolvedIndexBounds {
  std::optional<std::string> lower;  // inclusive
  std::optional<std::string> upper;  // exclusive
  bool usable = true;
};

/// Evaluates the bound terms with the current parameter bindings. Fails with
/// InvalidArgument when a bound value cannot be losslessly coerced to its
/// column type (e.g. a TEXT parameter probing an INT index column).
Result<ResolvedIndexBounds> ResolveIndexBounds(const DynamicIndexBounds& b);

/// Full-table scan in page-chain order.
class SeqScanOp : public Operator {
 public:
  SeqScanOp(TableInfo* table, Schema qualified_schema, ExecStats* stats);
  Status Open() override;
  Result<bool> Next(Row* row) override;
  std::string Name() const override;

 private:
  TableInfo* table_;
  ExecStats* stats_;
  std::optional<HeapTable::Iterator> it_;
};

/// Range scan over a B+tree index, fetching heap rows. `lower` is the
/// inclusive lower bound key (empty optional = from the start); `upper` is
/// the exclusive upper bound (empty = to the end). Rows are produced in key
/// order.
///
/// `eq_prefix` is the number of leading index columns pinned to a single
/// value by the scan bounds; the reported output order is the remaining
/// index-column suffix (a scan with `tag` fixed emits rows sorted by `ord`
/// for a `(tag, ord)` index). For dynamic bounds the prefix length comes
/// from the bound terms; a NULL binding degrades the scan to an unbounded
/// range, which is safe because dynamic plans keep every bound conjunct in
/// the residual filter — rows escaping the filter still honor the order.
class IndexScanOp : public Operator {
 public:
  IndexScanOp(TableInfo* table, TableIndex* index, Schema qualified_schema,
              std::optional<std::string> lower,
              std::optional<std::string> upper, size_t eq_prefix,
              ExecStats* stats);
  /// Parameter-dependent bounds, re-resolved on every Open() so a cached
  /// plan picks up fresh bindings.
  IndexScanOp(TableInfo* table, TableIndex* index, Schema qualified_schema,
              DynamicIndexBounds dynamic, ExecStats* stats);
  Status Open() override;
  Result<bool> Next(Row* row) override;
  std::string Name() const override;

 private:
  TableInfo* table_;
  TableIndex* index_;
  std::optional<std::string> lower_;
  std::optional<std::string> upper_;
  std::optional<DynamicIndexBounds> dynamic_;
  ExecStats* stats_;
  IndexCursor it_;
};

class FilterOp : public Operator {
 public:
  FilterOp(OperatorPtr child, ExprPtr predicate);
  Status Open() override;
  Result<bool> Next(Row* row) override;
  void Close() override { child_->Close(); }
  std::string Name() const override;
  void Describe(int indent, std::string* out) const override;

 private:
  OperatorPtr child_;
  ExprPtr predicate_;
};

class ProjectOp : public Operator {
 public:
  /// `exprs` are bound against the child's schema; `out_schema` names the
  /// produced columns (same arity as exprs).
  ProjectOp(OperatorPtr child, std::vector<ExprPtr> exprs, Schema out_schema);
  Status Open() override;
  Result<bool> Next(Row* row) override;
  void Close() override { child_->Close(); }
  std::string Name() const override;
  void Describe(int indent, std::string* out) const override;

 private:
  OperatorPtr child_;
  std::vector<ExprPtr> exprs_;
};

/// Block nested-loop join: materializes the right input, then streams the
/// left input against it. The optional predicate is evaluated on the
/// concatenated row. Output preserves the left input's order.
class NestedLoopJoinOp : public Operator {
 public:
  NestedLoopJoinOp(OperatorPtr left, OperatorPtr right, ExprPtr predicate,
                   ExecStats* stats = nullptr);
  Status Open() override;
  Result<bool> Next(Row* row) override;
  void Close() override;
  std::string Name() const override;
  void Describe(int indent, std::string* out) const override;

 private:
  OperatorPtr left_;
  OperatorPtr right_;
  ExprPtr predicate_;  // may be null (cross product)
  ExecStats* stats_;
  std::vector<Row> right_rows_;
  Row left_row_;
  bool have_left_ = false;
  size_t right_pos_ = 0;
};

/// Hash equi-join: builds a hash table on the right input keyed by
/// `right_keys`, probes with `left_keys`. Output preserves the left input's
/// order (each left row's matches are emitted before the next left row).
class HashJoinOp : public Operator {
 public:
  HashJoinOp(OperatorPtr left, OperatorPtr right, std::vector<ExprPtr> left_keys,
             std::vector<ExprPtr> right_keys, ExecStats* stats = nullptr);
  Status Open() override;
  Result<bool> Next(Row* row) override;
  void Close() override;
  std::string Name() const override;
  void Describe(int indent, std::string* out) const override;

 private:
  OperatorPtr left_;
  OperatorPtr right_;
  std::vector<ExprPtr> left_keys_;
  std::vector<ExprPtr> right_keys_;
  ExecStats* stats_;
  std::unordered_multimap<std::string, Row> hash_;
  Row left_row_;
  bool have_left_ = false;
  std::pair<std::unordered_multimap<std::string, Row>::iterator,
            std::unordered_multimap<std::string, Row>::iterator>
      matches_;
};

/// Sort-merge equi-join: materializes the right input (with precomputed
/// keys), then streams the left input against a sliding window of
/// equal-key right rows. Both inputs must already be sorted ascending on
/// their join keys — the planner only picks this operator when the
/// operators' order properties guarantee it. NULL keys never join.
/// Output preserves the left input's order.
class MergeJoinOp : public Operator {
 public:
  MergeJoinOp(OperatorPtr left, OperatorPtr right,
              std::vector<ExprPtr> left_keys, std::vector<ExprPtr> right_keys,
              ExecStats* stats);
  Status Open() override;
  Result<bool> Next(Row* row) override;
  void Close() override;
  std::string Name() const override;
  void Describe(int indent, std::string* out) const override;

 private:
  struct KeyedRow {
    Row row;
    std::vector<Value> keys;
    bool has_null = false;
  };

  /// -1/0/+1 comparison of the current left keys against right_rows_[idx].
  int CompareKeys(const std::vector<Value>& lk, size_t idx) const;

  OperatorPtr left_;
  OperatorPtr right_;
  std::vector<ExprPtr> left_keys_;
  std::vector<ExprPtr> right_keys_;
  ExecStats* stats_;
  std::vector<KeyedRow> right_rows_;
  Row left_row_;
  std::vector<Value> left_key_values_;
  bool have_left_ = false;
  size_t scan_ = 0;       // first right row not known to be < current left key
  size_t group_begin_ = 0;  // current equal-key window in right_rows_
  size_t group_end_ = 0;
  size_t group_pos_ = 0;
};

/// Stack-based structural (interval containment) join, after the Stack-Tree
/// family of algorithms: consumes an ancestor input sorted on its interval
/// start and a descendant input sorted on its start, and emits every
/// (ancestor, descendant) pair with
///     d.start >OP a.start  AND  d.start <OP a.end
/// in one pass over both inputs. OP strictness is configurable to cover
/// both the Global-encoding pattern (`d.ord > a.ord AND d.ord <= a.eord`)
/// and the Dewey prefix-range pattern (`d.path > a.path AND
/// d.path < SUCC(a.path)`).
///
/// Algorithm: descendants are consumed in start order; every ancestor whose
/// start precedes the current descendant's start is pushed onto a stack
/// (with its end precomputed), ancestors whose interval provably ended
/// before the current start are popped, and the surviving stack entries are
/// emitted bottom-to-top — ancestor-start order — for this descendant.
/// Each emission re-checks containment, so the operator stays *correct*
/// (merely slower) on arbitrary overlapping intervals; on properly nested
/// XML region intervals the stack never holds a non-matching entry and the
/// check never fails. NULL starts/ends never match. Output order: sorted on
/// the descendant start column (pairs for one descendant are contiguous).
class StructuralJoinOp : public Operator {
 public:
  /// `anc_start` and `desc_start` are columns bound to the ancestor /
  /// descendant input schemas; `anc_end` is an expression over the ancestor
  /// schema (a column, or SUCC(path) for Dewey). `lower_strict` selects
  /// `>` vs `>=` for the start comparison, `upper_inclusive` selects `<=`
  /// vs `<` for the end comparison.
  StructuralJoinOp(OperatorPtr ancestors, OperatorPtr descendants,
                   ExprPtr anc_start, ExprPtr anc_end, ExprPtr desc_start,
                   bool lower_strict, bool upper_inclusive, ExecStats* stats);
  Status Open() override;
  Result<bool> Next(Row* row) override;
  void Close() override;
  std::string Name() const override;
  void Describe(int indent, std::string* out) const override;

 private:
  struct StackEntry {
    Row row;
    Value start;
    Value end;
  };

  /// True when `start` falls inside (start, end] / [start, end) / ... of
  /// `e` per the configured strictness.
  bool Contains(const StackEntry& e, const Value& start) const;
  /// Pulls ancestor rows onto the stack while their start precedes `start`.
  Status AdvanceAncestors(const Value& start);

  OperatorPtr anc_;
  OperatorPtr desc_;
  ExprPtr anc_start_;
  ExprPtr anc_end_;
  ExprPtr desc_start_;
  bool lower_strict_;
  bool upper_inclusive_;
  ExecStats* stats_;
  std::vector<StackEntry> stack_;
  Row pending_anc_;        // next ancestor row not yet pushed
  Value pending_start_;    // its start value
  bool have_pending_ = false;
  bool anc_done_ = false;
  Row desc_row_;
  Value desc_start_value_;
  bool have_desc_ = false;
  size_t emit_pos_ = 0;    // next stack entry to test for the current desc
};

/// Index nested-loop join: for each outer row, evaluates `outer_keys`
/// (bound to the outer schema), probes the inner table's index for equal
/// keys and emits outer ++ inner rows.
class IndexNestedLoopJoinOp : public Operator {
 public:
  IndexNestedLoopJoinOp(OperatorPtr outer, TableInfo* inner,
                        TableIndex* index, Schema inner_schema,
                        std::vector<ExprPtr> outer_keys, ExecStats* stats);
  Status Open() override;
  Result<bool> Next(Row* row) override;
  void Close() override { outer_->Close(); }
  std::string Name() const override;
  void Describe(int indent, std::string* out) const override;

 private:
  OperatorPtr outer_;
  TableInfo* inner_;
  TableIndex* index_;
  Schema inner_schema_;
  std::vector<ExprPtr> outer_keys_;
  ExecStats* stats_;
  Row outer_row_;
  bool have_outer_ = false;
  IndexCursor it_;
  std::string probe_key_;
};

/// Full sort (materializing). Order expressions are bound to the child
/// schema; `desc[i]` flips the i-th direction. The sort is stable: rows
/// with equal keys keep their input order, which is what makes XPath
/// sibling order deterministic across encodings.
class SortOp : public Operator {
 public:
  SortOp(OperatorPtr child, std::vector<ExprPtr> order_exprs,
         std::vector<bool> desc, ExecStats* stats = nullptr);
  Status Open() override;
  Result<bool> Next(Row* row) override;
  void Close() override;
  std::string Name() const override;
  void Describe(int indent, std::string* out) const override;

 private:
  OperatorPtr child_;
  std::vector<ExprPtr> order_exprs_;
  std::vector<bool> desc_;
  ExecStats* stats_;
  std::vector<Row> rows_;
  size_t pos_ = 0;
};

class LimitOp : public Operator {
 public:
  LimitOp(OperatorPtr child, int64_t limit);
  Status Open() override;
  Result<bool> Next(Row* row) override;
  void Close() override { child_->Close(); }
  std::string Name() const override;
  void Describe(int indent, std::string* out) const override;

 private:
  OperatorPtr child_;
  int64_t limit_;
  int64_t produced_ = 0;
};

/// Hash-based duplicate elimination over full rows.
class DistinctOp : public Operator {
 public:
  explicit DistinctOp(OperatorPtr child);
  Status Open() override;
  Result<bool> Next(Row* row) override;
  void Close() override;
  std::string Name() const override;
  void Describe(int indent, std::string* out) const override;

 private:
  OperatorPtr child_;
  std::unordered_multimap<size_t, Row> seen_;
};

/// One aggregate computation: kind + argument (null argument = COUNT(*)).
struct AggregateSpec {
  AggregateKind kind = AggregateKind::kCount;
  ExprPtr arg;  // bound to child schema; null for COUNT(*)
};

/// Hash aggregation. Output schema: group-by columns first (in order),
/// then one column per aggregate.
class AggregateOp : public Operator {
 public:
  AggregateOp(OperatorPtr child, std::vector<ExprPtr> group_by,
              std::vector<AggregateSpec> aggregates, Schema out_schema);
  Status Open() override;
  Result<bool> Next(Row* row) override;
  void Close() override;
  std::string Name() const override;
  void Describe(int indent, std::string* out) const override;

 private:
  struct GroupState {
    Row group_values;
    std::vector<Value> accumulators;
    std::vector<int64_t> counts;  // per-aggregate row counts (AVG/COUNT)
  };

  OperatorPtr child_;
  std::vector<ExprPtr> group_by_;
  std::vector<AggregateSpec> aggregates_;
  std::vector<GroupState> groups_;
  std::unordered_map<size_t, std::vector<size_t>> group_index_;
  size_t pos_ = 0;
};

/// Materialized result of a query.
struct ResultSet {
  Schema schema;
  std::vector<Row> rows;

  /// Pretty-prints an ASCII table (for examples and debugging).
  std::string ToString() const;
};

/// Drains an operator tree into a ResultSet. `size_hint` pre-reserves the
/// row vector (prepared statements pass the previous execution's row count).
Result<ResultSet> ExecuteToResultSet(Operator* root, size_t size_hint = 0);

}  // namespace oxml

#endif  // OXML_RELATIONAL_EXECUTOR_H_
