#ifndef OXML_RELATIONAL_PLANNER_H_
#define OXML_RELATIONAL_PLANNER_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/relational/catalog.h"
#include "src/relational/executor.h"
#include "src/relational/sql_ast.h"

namespace oxml {

class Database;

/// Splits an expression tree on top-level ANDs, taking ownership of the
/// conjuncts. A null input yields an empty list.
std::vector<ExprPtr> SplitConjuncts(ExprPtr expr);

/// Re-joins conjuncts with AND (returns null for an empty list).
ExprPtr CombineConjuncts(std::vector<ExprPtr> conjuncts);

/// The access path chosen for one base table: either a sequential scan
/// (index == nullptr) or a B+tree range scan with encoded bounds.
/// `consumed` marks which of the candidate conjuncts are fully enforced by
/// the scan bounds (parallel to the candidate list passed in).
///
/// When a sargable conjunct compares against a '?' parameter, the bounds
/// cannot be encoded at plan time: `dynamic` then carries the value
/// expressions for the executor to resolve at Open(), lower/upper stay
/// unset, and `consumed` stays all-false (bound conjuncts are re-checked by
/// the residual filter, because a NULL binding degrades the scan to an
/// unbounded range).
struct AccessPath {
  TableIndex* index = nullptr;
  std::optional<std::string> lower;  // inclusive encoded key bound
  std::optional<std::string> upper;  // exclusive encoded key bound
  std::vector<bool> consumed;
  std::optional<DynamicIndexBounds> dynamic;
  /// Leading index columns pinned to one value by the bounds; the scan's
  /// output order is the index-column suffix past this prefix.
  size_t eq_prefix = 0;
};

/// Rule-based access-path selection: picks the index that consumes the
/// longest equality prefix (plus at most one trailing range) among
/// `conjuncts`, which must already be bound against the table's (possibly
/// qualified) schema. Conjunct columns are matched to index columns by
/// bound position.
AccessPath ChooseAccessPath(const TableInfo& table,
                            const std::vector<Expr*>& conjuncts);

/// Plans a SELECT statement into an operator tree. The statement is
/// consumed (expressions are moved into the plan). The returned plan
/// borrows TableInfo pointers from `db`, which must outlive execution.
Result<OperatorPtr> PlanSelect(Database* db, SelectStmt* stmt);

/// Best-effort static type of a bound expression over `schema`.
TypeId InferType(const Expr& expr, const Schema& schema);

}  // namespace oxml

#endif  // OXML_RELATIONAL_PLANNER_H_
