#include "src/relational/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <vector>

#include "src/relational/fault_injection.h"
#include "src/relational/query_control.h"

namespace oxml {

// -------------------------------------------------------------------- crc32

namespace {

struct Crc32Table {
  uint32_t t[256];
  Crc32Table() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
  }
};

const Crc32Table& Table() {
  static const Crc32Table table;
  return table;
}

constexpr size_t kRecordHeader = 1 + 8 + 4 + 4;  // type, txn, page, len
constexpr size_t kRecordTrailer = 4;             // crc

void PutU32(uint32_t v, char* out) { std::memcpy(out, &v, 4); }
void PutU64(uint64_t v, char* out) { std::memcpy(out, &v, 8); }
uint32_t GetU32(const char* in) {
  uint32_t v;
  std::memcpy(&v, in, 4);
  return v;
}
uint64_t GetU64(const char* in) {
  uint64_t v;
  std::memcpy(&v, in, 8);
  return v;
}

}  // namespace

uint32_t Crc32(const char* data, size_t len, uint32_t seed) {
  uint32_t c = seed ^ 0xFFFFFFFFu;
  const auto& t = Table().t;
  for (size_t i = 0; i < len; ++i) {
    c = t[(c ^ static_cast<unsigned char>(data[i])) & 0xFF] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

// ------------------------------------------------------------------ opening

Result<std::unique_ptr<WriteAheadLog>> WriteAheadLog::Open(
    const std::string& path, const WalOptions& options,
    std::shared_ptr<FaultPlan> fault) {
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd < 0) {
    return Status::IOError("open(" + path + "): " + std::strerror(errno));
  }
  auto wal = std::unique_ptr<WriteAheadLog>(
      new WriteAheadLog(fd, path, options, std::move(fault)));
  off_t size = ::lseek(fd, 0, SEEK_END);
  if (size < 0) {
    return Status::IOError("lseek(" + path + "): " + std::strerror(errno));
  }
  if (size >= static_cast<off_t>(kHeaderSize)) {
    char header[kHeaderSize];
    ssize_t n = ::pread(fd, header, kHeaderSize, 0);
    if (n != static_cast<ssize_t>(kHeaderSize)) {
      return Status::IOError("cannot read WAL header of " + path);
    }
    if (GetU32(header) != kMagic) {
      return Status::IOError(path + " is not a write-ahead log (bad magic)");
    }
    if (GetU32(header + 4) != kVersion) {
      return Status::IOError("unsupported WAL version " +
                             std::to_string(GetU32(header + 4)));
    }
    wal->size_bytes_ = static_cast<uint64_t>(size);
  } else {
    // Fresh (or header-torn) log: write the header from scratch.
    char header[kHeaderSize];
    std::memset(header, 0, sizeof(header));
    PutU32(kMagic, header);
    PutU32(kVersion, header + 4);
    wal->size_bytes_ = 0;
    OXML_RETURN_NOT_OK(wal->WriteAll(header, kHeaderSize));
  }
  return wal;
}

WriteAheadLog::~WriteAheadLog() {
  if (fd_ >= 0) ::close(fd_);
}

// ---------------------------------------------------------------- appending

Status WriteAheadLog::WriteAll(const char* data, size_t len) {
  size_t done = 0;
  while (done < len) {
    ssize_t n = ::pwrite(fd_, data + done, len - done,
                         static_cast<off_t>(size_bytes_ + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("pwrite(" + path_ +
                             "): " + std::strerror(errno));
    }
    done += static_cast<size_t>(n);
  }
  size_bytes_ += len;
  bytes_appended_ += len;
  return Status::OK();
}

Status WriteAheadLog::AppendRecord(RecordType type, uint64_t txn_id,
                                   uint32_t page_id, const char* payload,
                                   size_t payload_len) {
  std::vector<char> rec(kRecordHeader + payload_len + kRecordTrailer);
  rec[0] = static_cast<char>(type);
  PutU64(txn_id, rec.data() + 1);
  PutU32(page_id, rec.data() + 9);
  PutU32(static_cast<uint32_t>(payload_len), rec.data() + 13);
  if (payload_len > 0) {
    std::memcpy(rec.data() + kRecordHeader, payload, payload_len);
  }
  PutU32(Crc32(rec.data(), kRecordHeader + payload_len),
         rec.data() + kRecordHeader + payload_len);

  if (fault_ != nullptr) {
    switch (DecideWriteWithRetry(fault_.get(), retries_)) {
      case FaultPlan::Decision::kProceed:
        break;
      case FaultPlan::Decision::kTear: {
        // Persist a prefix of the record. size_bytes_ is not advanced, so a
        // surviving process overwrites the torn bytes with its next append;
        // a crashed one leaves a CRC-invalid tail for recovery to discard.
        size_t torn = std::min(rec.size() / 2, FaultPlan::kTearBytes);
        uint64_t saved = size_bytes_;
        (void)WriteAll(rec.data(), torn);
        size_bytes_ = saved;
        return FaultPlan::SimulatedError("torn WAL append");
      }
      case FaultPlan::Decision::kFailEnospc:
        // Disk full: nothing is written and size_bytes_ stays put, so the
        // log tail remains well-formed. The failure aborts only the current
        // transaction; once space returns, the next append simply lands at
        // the same offset.
        return FaultPlan::SimulatedEnospc("WAL append");
      case FaultPlan::Decision::kFailTransient:
        return FaultPlan::SimulatedError(
            "WAL append failed (transient, retries exhausted)");
      case FaultPlan::Decision::kFail:
        return FaultPlan::SimulatedError("WAL append failed");
    }
  }
  return WriteAll(rec.data(), rec.size());
}

Status WriteAheadLog::AppendPageImage(uint32_t page_id, const char* data) {
  OXML_RETURN_NOT_OK(
      AppendRecord(RecordType::kPageImage, next_txn_id_, page_id, data,
                   kPageSize));
  ++page_images_;
  return Status::OK();
}

Status WriteAheadLog::Commit(uint64_t commit_lsn) {
  // The txn id advances even when the commit fails: a retried or rolled-back
  // transaction must not let its orphaned page images be adopted by a later
  // commit record (replay matches images to commits by txn id).
  uint64_t txn = next_txn_id_++;
  char lsn_payload[8];
  PutU64(commit_lsn, lsn_payload);
  OXML_RETURN_NOT_OK(AppendRecord(RecordType::kCommit, txn, 0, lsn_payload,
                                  sizeof(lsn_payload)));
  ++commits_;
  ++unsynced_commits_;
  if (options_.sync_on_commit &&
      unsynced_commits_ >= std::max<size_t>(1, options_.group_commit_every)) {
    return Sync();
  }
  return Status::OK();
}

Status WriteAheadLog::Sync() {
  if (fault_ != nullptr) {
    switch (DecideWriteWithRetry(fault_.get(), retries_)) {
      case FaultPlan::Decision::kProceed:
        break;
      case FaultPlan::Decision::kFailEnospc:
        return FaultPlan::SimulatedEnospc("WAL fsync");
      default:
        return FaultPlan::SimulatedError("WAL fsync failed");
    }
  }
  while (::fsync(fd_) != 0) {
    if (errno == EINTR) continue;
    return Status::IOError("fsync(" + path_ + "): " + std::strerror(errno));
  }
  ++syncs_;
  unsynced_commits_ = 0;
  return Status::OK();
}

Status WriteAheadLog::Reset() {
  if (fault_ != nullptr) {
    switch (DecideWriteWithRetry(fault_.get(), retries_)) {
      case FaultPlan::Decision::kProceed:
        break;
      case FaultPlan::Decision::kFailEnospc:
        return FaultPlan::SimulatedEnospc("WAL truncation");
      default:
        return FaultPlan::SimulatedError("WAL truncation failed");
    }
  }
  while (::ftruncate(fd_, static_cast<off_t>(kHeaderSize)) != 0) {
    if (errno == EINTR) continue;
    return Status::IOError("ftruncate(" + path_ +
                           "): " + std::strerror(errno));
  }
  size_bytes_ = kHeaderSize;
  unsynced_commits_ = 0;
  return Sync();
}

// ----------------------------------------------------------------- recovery

Result<WalRecovery> WriteAheadLog::Recover(const std::string& path) {
  WalRecovery out;
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) return out;  // no log, nothing to replay
    return Status::IOError("open(" + path + "): " + std::strerror(errno));
  }
  std::string data;
  {
    off_t size = ::lseek(fd, 0, SEEK_END);
    if (size < 0) {
      ::close(fd);
      return Status::IOError("lseek(" + path + "): " + std::strerror(errno));
    }
    data.resize(static_cast<size_t>(size));
    size_t done = 0;
    while (done < data.size()) {
      ssize_t n = ::pread(fd, data.data() + done, data.size() - done,
                          static_cast<off_t>(done));
      if (n < 0) {
        if (errno == EINTR) continue;
        ::close(fd);
        return Status::IOError("pread(" + path +
                               "): " + std::strerror(errno));
      }
      if (n == 0) break;  // concurrent truncation; treat as EOF
      done += static_cast<size_t>(n);
    }
    data.resize(done);
    ::close(fd);
  }
  if (data.size() < kHeaderSize) return out;  // header never made it: empty
  if (GetU32(data.data()) != kMagic) {
    return Status::IOError(path + " is not a write-ahead log (bad magic)");
  }
  if (GetU32(data.data() + 4) != kVersion) {
    return Status::IOError("unsupported WAL version " +
                           std::to_string(GetU32(data.data() + 4)));
  }

  // Images appended since the last commit record, awaiting their commit.
  struct Pending {
    uint64_t txn_id;
    uint32_t page_id;
    size_t offset;  // payload offset within `data`
  };
  std::vector<Pending> pending;
  size_t pos = kHeaderSize;
  while (true) {
    // Honor a caller-installed control per record, so an embedder can bound
    // recovery time (ScopedQueryControl around Database::Open).
    OXML_RETURN_NOT_OK(CheckCurrentControl());
    if (pos + kRecordHeader + kRecordTrailer > data.size()) {
      // Short tail (possibly zero bytes): clean end of log.
      out.tail_damaged = pos != data.size();
      break;
    }
    auto type = static_cast<RecordType>(data[pos]);
    uint64_t txn_id = GetU64(data.data() + pos + 1);
    uint32_t page_id = GetU32(data.data() + pos + 9);
    uint32_t payload_len = GetU32(data.data() + pos + 13);
    bool shape_ok =
        (type == RecordType::kPageImage && payload_len == kPageSize) ||
        (type == RecordType::kCommit &&
         (payload_len == 0 || payload_len == 8));
    if (!shape_ok ||
        pos + kRecordHeader + payload_len + kRecordTrailer > data.size()) {
      out.tail_damaged = true;
      ++out.discarded_records;
      break;
    }
    uint32_t want = Crc32(data.data() + pos, kRecordHeader + payload_len);
    uint32_t got = GetU32(data.data() + pos + kRecordHeader + payload_len);
    if (want != got) {
      out.tail_damaged = true;
      ++out.discarded_records;
      break;
    }
    if (type == RecordType::kPageImage) {
      pending.push_back({txn_id, page_id, pos + kRecordHeader});
    } else {
      for (const Pending& p : pending) {
        if (p.txn_id != txn_id) {
          ++out.discarded_records;  // orphan of an aborted commit attempt
          continue;
        }
        out.pages[p.page_id] = data.substr(p.offset, kPageSize);
        ++out.replayed_images;
      }
      pending.clear();
      ++out.committed_txns;
      if (payload_len == 8) {
        out.last_commit_lsn = std::max(
            out.last_commit_lsn, GetU64(data.data() + pos + kRecordHeader));
      }
    }
    pos += kRecordHeader + payload_len + kRecordTrailer;
  }
  out.discarded_records += pending.size();
  return out;
}

}  // namespace oxml
