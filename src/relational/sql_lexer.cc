#include "src/relational/sql_lexer.h"

#include <cctype>
#include <cstdlib>

namespace oxml {
namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

int HexDigit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

Result<std::vector<Token>> LexSql(std::string_view input) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = input.size();

  auto error = [&](const std::string& msg) {
    return Status::ParseError(msg + " at offset " + std::to_string(i));
  };

  while (i < n) {
    char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Line comment.
    if (c == '-' && i + 1 < n && input[i + 1] == '-') {
      while (i < n && input[i] != '\n') ++i;
      continue;
    }
    Token tok;
    tok.offset = i;

    // Blob literal x'ab01'.
    if ((c == 'x' || c == 'X') && i + 1 < n && input[i + 1] == '\'') {
      i += 2;
      std::string bytes;
      while (i < n && input[i] != '\'') {
        int hi = HexDigit(input[i]);
        if (hi < 0 || i + 1 >= n) return error("bad blob literal");
        int lo = HexDigit(input[i + 1]);
        if (lo < 0) return error("bad blob literal");
        bytes.push_back(static_cast<char>((hi << 4) | lo));
        i += 2;
      }
      if (i >= n) return error("unterminated blob literal");
      ++i;  // closing quote
      tok.kind = TokenKind::kBlobLiteral;
      tok.text = std::move(bytes);
      tokens.push_back(std::move(tok));
      continue;
    }

    if (IsIdentStart(c)) {
      size_t start = i;
      while (i < n && IsIdentChar(input[i])) ++i;
      tok.kind = TokenKind::kIdentifier;
      tok.text = std::string(input.substr(start, i - start));
      tokens.push_back(std::move(tok));
      continue;
    }

    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = i;
      bool is_float = false;
      while (i < n && std::isdigit(static_cast<unsigned char>(input[i]))) ++i;
      if (i < n && input[i] == '.' && i + 1 < n &&
          std::isdigit(static_cast<unsigned char>(input[i + 1]))) {
        is_float = true;
        ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(input[i]))) {
          ++i;
        }
      }
      if (i < n && (input[i] == 'e' || input[i] == 'E')) {
        size_t save = i;
        ++i;
        if (i < n && (input[i] == '+' || input[i] == '-')) ++i;
        if (i < n && std::isdigit(static_cast<unsigned char>(input[i]))) {
          is_float = true;
          while (i < n &&
                 std::isdigit(static_cast<unsigned char>(input[i]))) {
            ++i;
          }
        } else {
          i = save;
        }
      }
      std::string text(input.substr(start, i - start));
      if (is_float) {
        tok.kind = TokenKind::kFloatLiteral;
        tok.double_value = std::strtod(text.c_str(), nullptr);
      } else {
        tok.kind = TokenKind::kIntLiteral;
        tok.int_value = std::strtoll(text.c_str(), nullptr, 10);
      }
      tok.text = std::move(text);
      tokens.push_back(std::move(tok));
      continue;
    }

    if (c == '\'') {
      ++i;
      std::string value;
      bool closed = false;
      while (i < n) {
        if (input[i] == '\'') {
          if (i + 1 < n && input[i + 1] == '\'') {
            value.push_back('\'');
            i += 2;
            continue;
          }
          closed = true;
          ++i;
          break;
        }
        value.push_back(input[i]);
        ++i;
      }
      if (!closed) return error("unterminated string literal");
      tok.kind = TokenKind::kStringLiteral;
      tok.text = std::move(value);
      tokens.push_back(std::move(tok));
      continue;
    }

    // Multi-char operators first.
    auto symbol = [&](std::string_view s) {
      tok.kind = TokenKind::kSymbol;
      tok.text = std::string(s);
      i += s.size();
      tokens.push_back(std::move(tok));
    };
    std::string_view rest = input.substr(i);
    if (rest.substr(0, 2) == "<=" || rest.substr(0, 2) == ">=" ||
        rest.substr(0, 2) == "<>" || rest.substr(0, 2) == "!=") {
      symbol(rest.substr(0, 2));
      continue;
    }
    switch (c) {
      case ',':
      case '(':
      case ')':
      case '.':
      case '*':
      case '+':
      case '-':
      case '/':
      case '%':
      case '=':
      case '<':
      case '>':
      case ';':
      case '?':
        symbol(rest.substr(0, 1));
        continue;
      default:
        return error(std::string("unexpected character '") + c + "'");
    }
  }

  Token end;
  end.kind = TokenKind::kEnd;
  end.offset = n;
  tokens.push_back(std::move(end));
  return tokens;
}

}  // namespace oxml
