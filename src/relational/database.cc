#include "src/relational/database.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <utility>

#include "src/relational/fault_injection.h"
#include "src/relational/planner.h"
#include "src/relational/sql_parser.h"
#include "src/relational/thread_pool.h"
#include "src/relational/wal.h"

namespace oxml {

/// One executable compilation of a SQL text. Operator trees are stateful
/// (Open/Next cursors), so an instance can run on at most one thread at a
/// time; `busy` marks it checked out (guarded by CachedPlan::mu).
struct PlanInstance {
  OperatorPtr plan;  // SELECT only: reusable physical plan
  StmtPtr stmt;      // non-SELECT: parsed AST, re-executed per call
  std::shared_ptr<Row> params;  // binding buffer read by this plan's
                                // ParamExprs (private to the instance)
  bool busy = false;
};

struct CachedPlan {
  std::string sql;
  StmtKind kind = StmtKind::kSelect;
  size_t param_count = 0;
  uint64_t generation = 0;  // catalog generation at compile time
  /// Persistent bindings shared by every PreparedStatement handle on this
  /// text (copied into an instance's buffer at execution). Not used by the
  /// one-shot QueryP/ExecuteP path.
  std::shared_ptr<Row> bindings;
  /// SELECT materialization size hint (last execution's row count).
  std::atomic<size_t> last_row_count{0};
  /// Guards `instances` and each instance's busy flag.
  std::mutex mu;
  std::vector<std::unique_ptr<PlanInstance>> instances;
  std::list<std::string>::iterator lru_it;  // valid only while cached
};

namespace {

/// RAII checkout of a plan instance (returns it to the entry's pool).
class InstanceLease {
 public:
  InstanceLease(CachedPlan* entry, PlanInstance* inst)
      : entry_(entry), inst_(inst) {}
  ~InstanceLease() {
    std::lock_guard<std::mutex> lock(entry_->mu);
    inst_->busy = false;
  }
  InstanceLease(const InstanceLease&) = delete;
  InstanceLease& operator=(const InstanceLease&) = delete;

 private:
  CachedPlan* entry_;
  PlanInstance* inst_;
};

}  // namespace

/// RAII statement governor: builds the QueryControl for one top-level
/// statement from the database defaults plus per-call overrides, registers
/// it for Database::Cancel, and installs it in the thread-local slot the
/// executor polls. Constructed before the statement latch is taken, so the
/// deadline clock covers time spent queued behind writers (the wait itself
/// is not interruptible — cancellation is cooperative and fires at the
/// first check point after admission, see docs/INTERNALS.md §12).
///
/// A statement nested inside another on the same thread (auto-commit
/// wrappers, ExecuteBatch's inner Execute calls, store TxnScopes) inherits
/// the enclosing control: the governor then owns nothing and counts
/// nothing, so each top-level statement is registered and tallied once.
class StatementGovernor {
 public:
  StatementGovernor(Database* db, const StatementOptions& opts) : db_(db) {
    if (CurrentQueryControl() != nullptr) return;  // nested: inherit
    control_ = std::make_shared<QueryControl>();
    int64_t timeout_ms =
        opts.timeout_ms >= 0
            ? opts.timeout_ms
            : static_cast<int64_t>(db_->options_.default_statement_timeout_ms);
    if (timeout_ms > 0) {
      control_->SetDeadline(std::chrono::steady_clock::now() +
                            std::chrono::milliseconds(timeout_ms));
    }
    uint64_t budget =
        opts.memory_budget_bytes >= 0
            ? static_cast<uint64_t>(opts.memory_budget_bytes)
            : db_->options_.statement_memory_budget_bytes;
    control_->SetMemoryLimits(budget, &db_->global_budget_);
    uint64_t id = db_->RegisterExternalControl(control_);
    if (opts.statement_id != nullptr) *opts.statement_id = id;
    scope_.emplace(control_.get());
  }

  ~StatementGovernor() {
    if (control_ == nullptr) return;
    scope_.reset();
    db_->UnregisterControl(control_->statement_id());
  }

  StatementGovernor(const StatementGovernor&) = delete;
  StatementGovernor& operator=(const StatementGovernor&) = delete;

  /// Tallies the statement's final status into ExecStats (owning governors
  /// only, so one trip counts once however deeply the failure surfaced).
  void NoteOutcome(const Status& st) {
    if (control_ == nullptr || st.ok()) return;
    if (st.IsDeadlineExceeded()) ++db_->stats_.statements_timed_out;
    if (st.IsCancelled()) ++db_->stats_.statements_cancelled;
    if (st.IsResourceExhausted()) ++db_->stats_.mem_budget_rejections;
  }

 private:
  Database* db_;
  std::shared_ptr<QueryControl> control_;
  std::optional<ScopedQueryControl> scope_;
};

namespace {

/// The session identity attributed to engine calls on this thread (0 =
/// embedded API). Installed by ScopedSessionIdentity; consulted by the
/// transaction-ownership checks so a session's transaction can be driven
/// from any pool thread the server happens to schedule.
thread_local uint64_t tls_session_id = 0;

}  // namespace

uint64_t CurrentSessionId() { return tls_session_id; }

ScopedSessionIdentity::ScopedSessionIdentity(uint64_t session_id)
    : prev_(tls_session_id) {
  tls_session_id = session_id;
}

ScopedSessionIdentity::~ScopedSessionIdentity() { tls_session_id = prev_; }

bool Database::CurrentThreadOwnsTxn() const {
  if (!txn_open_.load(std::memory_order_acquire)) return false;
  uint64_t session = txn_session_.load(std::memory_order_acquire);
  if (session != 0) return CurrentSessionId() == session;
  return txn_owner_.load(std::memory_order_relaxed) ==
         std::this_thread::get_id();
}

WriteStatementGuard::WriteStatementGuard(Database* db) : db_(db) {
  for (;;) {
    db_->latch_.LockExclusive();
    if (!db_->txn_open_.load(std::memory_order_acquire) ||
        db_->CurrentThreadOwnsTxn()) {
      return;
    }
    // A foreign session's transaction is open: running this mutation now
    // would splice it into work the owner may yet roll back. Drop the
    // latch before waiting — holding it would deadlock the owner, whose
    // Commit/Rollback needs exclusivity to end the transaction.
    db_->latch_.UnlockExclusive();
    std::unique_lock<std::mutex> lock(db_->txn_mu_);
    while (db_->txn_open_.load(std::memory_order_acquire)) {
      // Poll the statement's governance token while gated: a server worker
      // parked behind another session's transaction must honor its
      // deadline and out-of-band cancellation, or a stalled owner would
      // pin pool workers (and admission slots) indefinitely.
      status_ = CheckCurrentControl();
      if (!status_.ok()) return;
      db_->txn_cv_.wait_for(lock, std::chrono::milliseconds(10));
    }
  }
}

WriteStatementGuard::~WriteStatementGuard() {
  if (status_.ok()) db_->latch_.UnlockExclusive();
}

Result<std::unique_ptr<Database>> Database::Open(
    const DatabaseOptions& options) {
  std::unique_ptr<StorageBackend> backend;
  std::unique_ptr<WriteAheadLog> wal;
  uint64_t recovered_commit_lsn = 0;
  // One retry tally shared by every layer that absorbs transient I/O
  // faults (file backend, fault-injecting wrapper, WAL); surfaced as
  // ExecStats::io_retries.
  auto io_retries = std::make_shared<std::atomic<uint64_t>>(0);
  if (!options.file_path.empty()) {
    OXML_ASSIGN_OR_RETURN(
        std::unique_ptr<FileBackend> fb,
        FileBackend::Open(options.file_path,
                          /*truncate=*/!options.open_existing));
    fb->set_retry_counter(io_retries);
    backend = std::move(fb);
    if (options.fault_plan != nullptr) {
      auto faulty = std::make_unique<FaultInjectingBackend>(
          std::move(backend), options.fault_plan);
      faulty->set_retry_counter(io_retries);
      backend = std::move(faulty);
    }
    if (options.enable_wal) {
      const std::string wal_path = options.file_path + ".wal";
      if (options.open_existing) {
        // Crash recovery: apply the last committed image of every page the
        // log mentions to the data file before anything reads it. The scan
        // tolerates a torn tail — that is the expected shape of a crash.
        OXML_ASSIGN_OR_RETURN(WalRecovery rec,
                              WriteAheadLog::Recover(wal_path));
        for (const auto& [page_id, image] : rec.pages) {
          // An embedder bounding recovery time (ScopedQueryControl around
          // Open) is honored here too, between page applications.
          OXML_RETURN_NOT_OK(CheckCurrentControl());
          while (backend->page_count() <= page_id) {
            OXML_RETURN_NOT_OK(backend->AllocatePage().status());
          }
          OXML_RETURN_NOT_OK(backend->WritePage(page_id, image.data()));
        }
        if (!rec.pages.empty()) OXML_RETURN_NOT_OK(backend->Sync());
        // Re-seed the snapshot clock past every durable commit so LSNs
        // stay monotone across reopen (pre-LSN logs recover as 0).
        recovered_commit_lsn = rec.last_commit_lsn;
      }
      WalOptions wopts;
      wopts.sync_on_commit = options.wal_sync_on_commit;
      wopts.group_commit_every = options.wal_group_commit_every;
      OXML_ASSIGN_OR_RETURN(
          wal, WriteAheadLog::Open(wal_path, wopts, options.fault_plan));
      wal->set_retry_counter(io_retries);
      // The data file is now current (fresh database, or recovery just made
      // it so — and fsynced it above); start from an empty log. Replay is
      // idempotent, so a crash before this truncation merely replays again.
      OXML_RETURN_NOT_OK(wal->Reset());
    }
  } else {
    backend = std::make_unique<MemoryBackend>();
  }
  bool have_pages = backend->page_count() > 0;
  auto pool = std::make_unique<BufferPool>(std::move(backend),
                                           options.buffer_capacity);
  pool->set_mvcc_enabled(options.enable_mvcc);
  pool->SeedCommitLsn(recovered_commit_lsn);
  auto db = std::unique_ptr<Database>(new Database(std::move(pool)));
  db->options_ = options;
  db->plan_cache_capacity_ = options.plan_cache_capacity;
  db->io_retries_ = io_retries;
  db->global_budget_.cap = options.total_memory_budget_bytes;
  if (options.enable_parallel_execution) {
    db->exec_pool_ = std::make_unique<ThreadPool>(options.num_threads);
  }
  if (options.enable_parallel_load) {
    db->load_pool_ = std::make_unique<ThreadPool>(options.num_load_threads);
  }
  db->wal_ = std::move(wal);
  db->pool_->SetWal(db->wal_.get());
  if (options.open_existing && have_pages) {
    OXML_RETURN_NOT_OK(db->LoadCatalog());
  } else {
    // Reserve page 0 for the catalog so table pages start at 1.
    OXML_ASSIGN_OR_RETURN(PageHandle page, db->pool_->NewPage());
    if (page.page_id() != 0) {
      return Status::Internal("catalog page is not page 0");
    }
    page.MarkDirty();
    if (db->wal_ != nullptr) {
      // Commit the empty catalog so a crash at any later point recovers to
      // a valid (if empty) database rather than a zeroed page 0.
      db->catalog_dirty_ = true;
      OXML_RETURN_NOT_OK(db->Begin());
      OXML_RETURN_NOT_OK(db->Commit());
    }
  }
  return db;
}

Database::Database(std::unique_ptr<BufferPool> pool)
    : pool_(std::move(pool)) {}

Database::~Database() {
  if (closed_) return;
  Status st = Close();
  if (!st.ok()) {
    std::fprintf(stderr,
                 "oxml: Database close failed (the WAL, if any, still holds "
                 "the committed history): %s\n",
                 st.ToString().c_str());
  }
}

Status Database::Close() {
  ExclusiveStatementGuard guard(&latch_);
  if (closed_) return Status::OK();
  Status st = Status::OK();
  if (pool_->InTxn()) {
    // An abandoned open transaction is discarded, exactly as a crash
    // would discard it. RollbackInner skips the ownership pre-checks:
    // the thread destroying the database may not be the one that opened
    // the transaction it is abandoning.
    st = RollbackInner();
    // A failed rollback already crashed the database out (buffered state
    // discarded, WAL detached): checkpointing it would flush garbage.
    if (closed_) return st;
  }
  Status cp = Checkpoint();
  if (st.ok()) st = cp;
  closed_ = true;
  wal_.reset();
  pool_->SetWal(nullptr);
  return st;
}

void Database::SimulateCrashForTesting() {
  ExclusiveStatementGuard guard(&latch_);
  // Nothing is flushed from here on: the destructor discards the pool, the
  // WAL fd closes without a truncation, and the data file keeps whatever
  // the last checkpoint (plus eviction write-backs) put there.
  pool_->set_discard_on_destroy(true);
  pool_->SetWal(nullptr);
  wal_.reset();
  closed_ = true;
  // Release any writer gate-waiting on an open transaction: the crash
  // killed it, and they would otherwise wait forever.
  {
    std::lock_guard<std::mutex> lock(txn_mu_);
    txn_open_.store(false, std::memory_order_release);
    txn_owner_.store(std::thread::id(), std::memory_order_relaxed);
    txn_session_.store(0, std::memory_order_release);
  }
  txn_cv_.notify_all();
}

namespace {

// Catalog serialization helpers (page 0 layout: magic, version, payload
// length, payload).
constexpr uint32_t kCatalogMagic = 0x4F584D4Cu;  // "OXML"
constexpr uint32_t kCatalogVersion = 1;

void PutU8(uint8_t v, std::string* out) {
  out->push_back(static_cast<char>(v));
}
void PutU32C(uint32_t v, std::string* out) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out->append(buf, 4);
}
void PutU64C(uint64_t v, std::string* out) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out->append(buf, 8);
}
void PutStr(const std::string& s, std::string* out) {
  PutU32C(static_cast<uint32_t>(s.size()), out);
  out->append(s);
}

class CatalogReader {
 public:
  CatalogReader(const char* data, size_t size) : data_(data), size_(size) {}

  Result<uint8_t> U8() {
    if (pos_ + 1 > size_) return Fail();
    return static_cast<uint8_t>(data_[pos_++]);
  }
  Result<uint32_t> U32() {
    if (pos_ + 4 > size_) return Fail();
    uint32_t v;
    std::memcpy(&v, data_ + pos_, 4);
    pos_ += 4;
    return v;
  }
  Result<uint64_t> U64() {
    if (pos_ + 8 > size_) return Fail();
    uint64_t v;
    std::memcpy(&v, data_ + pos_, 8);
    pos_ += 8;
    return v;
  }
  Result<std::string> Str() {
    OXML_ASSIGN_OR_RETURN(uint32_t len, U32());
    if (pos_ + len > size_) return Fail();
    std::string out(data_ + pos_, len);
    pos_ += len;
    return out;
  }

 private:
  Status Fail() const { return Status::IOError("truncated catalog page"); }
  const char* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace

Status Database::SaveCatalog() {
  std::string payload;
  PutU32C(static_cast<uint32_t>(tables_.size()), &payload);
  for (const auto& [name, table] : tables_) {
    PutStr(name, &payload);
    const Schema& schema = table->schema();
    PutU32C(static_cast<uint32_t>(schema.size()), &payload);
    for (const Column& col : schema.columns()) {
      PutStr(col.name, &payload);
      PutU8(static_cast<uint8_t>(col.type), &payload);
    }
    const HeapTable* heap = table->heap();
    PutU32C(heap->first_page(), &payload);
    PutU32C(heap->last_page(), &payload);
    PutU64C(heap->row_count(), &payload);
    PutU64C(heap->page_chain_length(), &payload);
    PutU64C(heap->data_bytes(), &payload);
    PutU32C(static_cast<uint32_t>(table->indexes().size()), &payload);
    for (const auto& idx : table->indexes()) {
      PutStr(idx->name, &payload);
      PutU8(idx->unique ? 1 : 0, &payload);
      PutU32C(static_cast<uint32_t>(idx->column_indices.size()), &payload);
      for (int c : idx->column_indices) {
        PutU32C(static_cast<uint32_t>(c), &payload);
      }
    }
  }
  if (payload.size() + 12 > kPageSize) {
    return Status::IOError("catalog exceeds one page (" +
                           std::to_string(payload.size()) + " bytes)");
  }
  OXML_ASSIGN_OR_RETURN(PageHandle page, pool_->FetchPage(0));
  std::string header;
  PutU32C(kCatalogMagic, &header);
  PutU32C(kCatalogVersion, &header);
  PutU32C(static_cast<uint32_t>(payload.size()), &header);
  std::memcpy(page.data(), header.data(), header.size());
  std::memcpy(page.data() + header.size(), payload.data(), payload.size());
  page.MarkDirty();
  return Status::OK();
}

Status Database::LoadCatalog() {
  OXML_ASSIGN_OR_RETURN(PageHandle page, pool_->FetchPage(0));
  CatalogReader header(page.data(), kPageSize);
  OXML_ASSIGN_OR_RETURN(uint32_t magic, header.U32());
  OXML_ASSIGN_OR_RETURN(uint32_t version, header.U32());
  OXML_ASSIGN_OR_RETURN(uint32_t payload_len, header.U32());
  if (magic != kCatalogMagic) {
    return Status::IOError("not an ordered-xml database file (bad magic)");
  }
  if (version != kCatalogVersion) {
    return Status::IOError("unsupported catalog version " +
                           std::to_string(version));
  }
  if (payload_len + 12 > kPageSize) {
    return Status::IOError("corrupt catalog length");
  }
  CatalogReader in(page.data() + 12, payload_len);

  OXML_ASSIGN_OR_RETURN(uint32_t ntables, in.U32());
  for (uint32_t t = 0; t < ntables; ++t) {
    OXML_ASSIGN_OR_RETURN(std::string name, in.Str());
    OXML_ASSIGN_OR_RETURN(uint32_t ncols, in.U32());
    std::vector<Column> cols;
    for (uint32_t c = 0; c < ncols; ++c) {
      Column col;
      OXML_ASSIGN_OR_RETURN(col.name, in.Str());
      OXML_ASSIGN_OR_RETURN(uint8_t type, in.U8());
      col.type = static_cast<TypeId>(type);
      cols.push_back(std::move(col));
    }
    OXML_ASSIGN_OR_RETURN(uint32_t first_page, in.U32());
    OXML_ASSIGN_OR_RETURN(uint32_t last_page, in.U32());
    OXML_ASSIGN_OR_RETURN(uint64_t row_count, in.U64());
    OXML_ASSIGN_OR_RETURN(uint64_t chain, in.U64());
    OXML_ASSIGN_OR_RETURN(uint64_t data_bytes, in.U64());
    Schema schema(cols);
    std::unique_ptr<HeapTable> heap =
        HeapTable::Attach(pool_.get(), schema, first_page, last_page,
                          row_count, chain, data_bytes);
    auto table =
        std::make_unique<TableInfo>(name, std::move(schema), std::move(heap));

    OXML_ASSIGN_OR_RETURN(uint32_t nindexes, in.U32());
    for (uint32_t i = 0; i < nindexes; ++i) {
      OXML_ASSIGN_OR_RETURN(std::string iname, in.Str());
      OXML_ASSIGN_OR_RETURN(uint8_t unique, in.U8());
      OXML_ASSIGN_OR_RETURN(uint32_t nic, in.U32());
      std::vector<int> positions;
      for (uint32_t c = 0; c < nic; ++c) {
        OXML_ASSIGN_OR_RETURN(uint32_t pos, in.U32());
        positions.push_back(static_cast<int>(pos));
      }
      // Rebuilds the memory-resident B+tree by scanning the heap.
      OXML_RETURN_NOT_OK(
          table->CreateIndex(iname, std::move(positions), unique != 0)
              .status());
    }
    tables_[name] = std::move(table);
  }
  return Status::OK();
}

Status Database::Checkpoint() {
  WriteStatementGuard guard(this);
  OXML_RETURN_NOT_OK(guard.status());
  if (closed_) return Status::InvalidArgument("database is closed");
  if (pool_->InTxn()) {
    return Status::InvalidArgument("cannot checkpoint inside a transaction");
  }
  OXML_RETURN_NOT_OK(SaveCatalog());
  OXML_RETURN_NOT_OK(pool_->FlushAll());
  if (wal_ != nullptr) {
    // Only after the data file is durably current may the log be emptied.
    // A crash anywhere before the Reset just replays the old log — replay
    // is idempotent over the flushed pages.
    OXML_RETURN_NOT_OK(pool_->SyncBackend());
    OXML_RETURN_NOT_OK(wal_->Reset());
  }
  catalog_dirty_ = false;
  return Status::OK();
}

// ------------------------------------------------------------ transactions

bool Database::InTransaction() const {
  return txn_open_.load(std::memory_order_acquire);
}

void Database::EndTxnBookkeeping() {
  heap_snapshot_.clear();
  for (const auto& [name, table] : tables_) {
    for (const auto& idx : table->indexes()) idx->EndTxnTracking();
  }
  {
    std::lock_guard<std::mutex> lock(txn_mu_);
    txn_open_.store(false, std::memory_order_release);
    txn_owner_.store(std::thread::id(), std::memory_order_relaxed);
    txn_session_.store(0, std::memory_order_release);
  }
  txn_cv_.notify_all();
}

void Database::SyncMvccStats() {
  stats_.snapshot_reads = pool_->snapshot_read_count();
  stats_.versions_retained = pool_->versions_retained();
  stats_.version_chain_max = pool_->version_chain_max();
}

void Database::MaybeBeginSnapshot(
    std::optional<ScopedReadSnapshot>* snap) const {
  if (!options_.enable_mvcc) return;
  if (!txn_open_.load(std::memory_order_acquire)) return;
  if (CurrentThreadOwnsTxn()) {
    return;  // the owner reads its own uncommitted state directly
  }
  // txn_open_ cannot flip while this reader holds the shared latch — both
  // Begin and the Commit/Rollback install points hold it exclusively — so
  // the armed snapshot stays meaningful for the whole statement.
  snap->emplace(pool_->last_commit_lsn());
}

Status Database::Begin() {
  // Gate, don't fail, when another thread's transaction is open: the
  // pre-MVCC exclusive-hold discipline made a second Begin wait its turn,
  // and callers (TxnScope all over the stores) rely on that.
  WriteStatementGuard guard(this);
  OXML_RETURN_NOT_OK(guard.status());
  if (closed_) return Status::InvalidArgument("database is closed");
  OXML_RETURN_NOT_OK(pool_->BeginTxn());  // rejects nesting
  heap_snapshot_.clear();
  for (const auto& [name, table] : tables_) {
    heap_snapshot_[name] = table->heap()->SnapshotMetadata();
  }
  if (options_.enable_mvcc) {
    // Arm the per-index transaction deltas that let overlapping snapshot
    // readers reconstruct the committed view of each B+tree (the trees
    // themselves are memory-resident and mutate in place).
    for (const auto& [name, table] : tables_) {
      for (const auto& idx : table->indexes()) idx->BeginTxnTracking();
    }
  }
  {
    std::lock_guard<std::mutex> lock(txn_mu_);
    txn_owner_.store(std::this_thread::get_id(), std::memory_order_relaxed);
    // A Begin issued under a session identity binds the transaction to the
    // session, not the thread: any pool thread carrying the same identity
    // may run its statements and end it. 0 keeps the thread-bound
    // (embedded) discipline.
    txn_session_.store(CurrentSessionId(), std::memory_order_release);
    txn_open_.store(true, std::memory_order_release);
  }
  if (!options_.enable_mvcc) {
    // Pre-MVCC discipline: writers exclude readers for the whole
    // transaction. The exclusive hold taken here outlives the guard and is
    // dropped by the Commit or Rollback that closes the transaction.
    latch_.LockExclusive();
  }
  return Status::OK();
}

Status Database::Commit() {
  // Ownership pre-checks run before taking the latch: with MVCC off the
  // owner holds it exclusively for the transaction's lifetime, and a
  // non-owner acquiring it here would deadlock instead of erroring.
  if (!txn_open_.load(std::memory_order_acquire)) {
    return Status::InvalidArgument("no transaction is open");
  }
  if (!CurrentThreadOwnsTxn()) {
    return Status::InvalidArgument(
        "transaction is owned by another session or thread");
  }
  // The commit install point: exclusivity drains concurrent snapshot
  // readers, so flipping the committed state (pages + index deltas) is
  // atomic with respect to every statement.
  ExclusiveStatementGuard guard(&latch_);
  if (!pool_->InTxn()) {
    return Status::InvalidArgument("no transaction is open");
  }
  if (pool_->TxnDirtyCount() > 0 || catalog_dirty_) {
    // The catalog page rides in every commit: heap metadata (row counts,
    // tail pages) lives only there, and recovery rebuilds tables from it.
    OXML_RETURN_NOT_OK(SaveCatalog());
  }
  // On failure the transaction stays open for the caller to roll back (and
  // with MVCC off, Begin's exclusive hold stays in place with it).
  OXML_RETURN_NOT_OK(pool_->CommitTxn());
  catalog_dirty_ = false;
  EndTxnBookkeeping();
  if (!options_.enable_mvcc) {
    latch_.UnlockExclusive();  // drop Begin's hold: the transaction is over
  }
  if (wal_ != nullptr && options_.wal_checkpoint_threshold_bytes > 0 &&
      wal_->size_bytes() > options_.wal_checkpoint_threshold_bytes) {
    // The commit above is already durable; a failed auto-checkpoint only
    // leaves the log longer than intended, so it must not fail the commit.
    // The log keeps growing past the threshold, so the very next commit
    // re-enters this branch and retries — no separate retry state needed.
    // (A failed FlushAll cannot corrupt: committed page images stay in the
    // WAL until a successful Reset, and replay is idempotent.)
    Status cp = Checkpoint();
    if (!cp.ok()) {
      ++stats_.checkpoints_failed;
      std::fprintf(stderr,
                   "oxml: auto-checkpoint failed (will retry at next "
                   "threshold crossing): %s\n",
                   cp.ToString().c_str());
    }
  }
  return Status::OK();
}

Status Database::Rollback() {
  // Same pre-check order as Commit (see there). A transaction that is
  // already over — including one torn down by a failed Commit's crash-out
  // path — makes Rollback a safe error, never a second undo pass.
  if (!txn_open_.load(std::memory_order_acquire)) {
    return Status::InvalidArgument("no transaction is open");
  }
  if (!CurrentThreadOwnsTxn()) {
    return Status::InvalidArgument(
        "transaction is owned by another session or thread");
  }
  ExclusiveStatementGuard guard(&latch_);
  return RollbackInner();
}

Status Database::RollbackInner() {
  if (!pool_->InTxn()) {
    return Status::InvalidArgument("no transaction is open");
  }
  Status undo = pool_->RollbackTxn();
  // The transaction is over either way: even a failed undo must drop
  // Begin's exclusive hold (MVCC off), or every other thread blocks on the
  // statement latch forever while the caller only sees an error Status.
  if (!options_.enable_mvcc) latch_.UnlockExclusive();
  if (!undo.ok()) {
    // The pool may hold a mix of restored and unrestored pages; nothing in
    // memory can be trusted. Fail the database the way a crash would:
    // discard buffered state, keep the WAL on disk (it still holds the
    // committed history for the next open), and refuse further work.
    pool_->set_discard_on_destroy(true);
    pool_->SetWal(nullptr);
    wal_.reset();
    closed_ = true;
    EndTxnBookkeeping();
    InvalidatePlans();
    return undo;
  }
  Status rebuilt = Status::OK();
  for (const auto& [name, meta] : heap_snapshot_) {
    TableInfo* t = GetTable(name);
    if (t == nullptr) continue;  // unreachable: DDL is barred inside txns
    t->heap()->RestoreMetadata(meta);
    // The in-memory B+trees have no pre-images; recompute them from the
    // restored heaps, the same way Open does. Keep going on failure so
    // every table is restored and the stale plans below still die.
    Status r = t->RebuildIndexes();
    if (rebuilt.ok()) rebuilt = r;
  }
  EndTxnBookkeeping();
  // Rebuilding invalidated every TableIndex* captured by cached plans.
  InvalidatePlans();
  return rebuilt;
}

Status Database::CreateTable(const std::string& name, Schema schema) {
  WriteStatementGuard guard(this);
  OXML_RETURN_NOT_OK(guard.status());
  if (tables_.count(name) > 0) {
    return Status::AlreadyExists("table " + name);
  }
  if (pool_->InTxn()) {
    return Status::InvalidArgument("DDL cannot run inside a transaction");
  }
  OXML_RETURN_NOT_OK(Begin());
  auto heap = HeapTable::Create(pool_.get(), schema);
  if (!heap.ok()) {
    (void)Rollback();
    return heap.status();
  }
  tables_[name] = std::make_unique<TableInfo>(name, std::move(schema),
                                              std::move(heap).value());
  InvalidatePlans();
  Status c = Commit();
  if (!c.ok()) {
    tables_.erase(name);
    (void)Rollback();
    return c;
  }
  return Status::OK();
}

Status Database::DropTable(const std::string& name) {
  WriteStatementGuard guard(this);
  OXML_RETURN_NOT_OK(guard.status());
  auto it = tables_.find(name);
  if (it == tables_.end()) return Status::NotFound("no such table: " + name);
  if (pool_->InTxn()) {
    return Status::InvalidArgument("DDL cannot run inside a transaction");
  }
  // Pages are not reclaimed (no free list); the catalog entry goes away.
  // Cached plans hold raw TableInfo*/TableIndex* into the dropped table, so
  // every one of them must go before anything can execute again.
  OXML_RETURN_NOT_OK(Begin());
  auto node = tables_.extract(it);
  InvalidatePlans();
  Status c = Commit();
  if (!c.ok()) {
    tables_.insert(std::move(node));
    (void)Rollback();
    return c;
  }
  return Status::OK();
}

Status Database::CreateIndex(const std::string& index_name,
                             const std::string& table,
                             const std::vector<std::string>& columns,
                             bool unique) {
  WriteStatementGuard guard(this);
  OXML_RETURN_NOT_OK(guard.status());
  TableInfo* t = GetTable(table);
  if (t == nullptr) return Status::NotFound("no such table: " + table);
  if (pool_->InTxn()) {
    return Status::InvalidArgument("DDL cannot run inside a transaction");
  }
  std::vector<int> positions;
  for (const std::string& col : columns) {
    int idx = t->schema().IndexOf(col);
    if (idx < 0) {
      return Status::NotFound("no column " + col + " in table " + table);
    }
    positions.push_back(idx);
  }
  // Building the index only reads the heap; the transaction exists to make
  // the catalog entry durable.
  OXML_RETURN_NOT_OK(Begin());
  Status built =
      t->CreateIndex(index_name, std::move(positions), unique).status();
  if (!built.ok()) {
    (void)Rollback();
    return built;
  }
  // Cached access paths were chosen without this index; recompile.
  InvalidatePlans();
  Status c = Commit();
  if (!c.ok()) {
    // The in-memory index stays; catalog_dirty_ remains set, so the next
    // successful commit persists its definition.
    (void)Rollback();
    return c;
  }
  return Status::OK();
}

TableInfo* Database::GetTable(const std::string& name) const {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.get();
}

Result<Rid> Database::Insert(const std::string& table, const Row& row) {
  WriteStatementGuard guard(this);
  OXML_RETURN_NOT_OK(guard.status());
  TableInfo* t = GetTable(table);
  if (t == nullptr) return Status::NotFound("no such table: " + table);
  if (pool_->InTxn()) return t->InsertRow(row, &stats_);
  // Auto-commit: a single programmatic insert is its own transaction.
  OXML_RETURN_NOT_OK(Begin());
  Result<Rid> r = t->InsertRow(row, &stats_);
  if (!r.ok()) {
    (void)Rollback();
    return r.status();
  }
  Status c = Commit();
  if (!c.ok()) {
    (void)Rollback();
    return c;
  }
  return r;
}

Result<int64_t> Database::BulkLoadRows(const std::string& table,
                                       const std::vector<Row>& rows) {
  // The bulk load is one governed statement, so the parallel shred/build
  // pipeline's per-unit checks and run-buffer charges have a control to
  // hit (a load started inside an outer statement inherits its control).
  StatementGovernor governor(this, StatementOptions{});
  WriteStatementGuard guard(this);
  if (!guard.status().ok()) {
    governor.NoteOutcome(guard.status());
    return guard.status();
  }
  auto run = [&]() -> Result<int64_t> {
    TableInfo* t = GetTable(table);
    if (t == nullptr) return Status::NotFound("no such table: " + table);
    auto load = [&]() -> Status {
      if (t->heap()->row_count() != 0) {
        // Bulk index construction needs empty trees; keep correctness on
        // non-empty tables by degrading to the per-row path.
        for (const Row& row : rows) {
          OXML_RETURN_NOT_OK(CheckCurrentControl());
          OXML_RETURN_NOT_OK(t->InsertRow(row, &stats_).status());
        }
        return Status::OK();
      }
      return t->BulkLoadRows(rows, load_pool_.get(), &stats_);
    };
    if (pool_->InTxn()) {
      OXML_RETURN_NOT_OK(load());
      return static_cast<int64_t>(rows.size());
    }
    // Auto-commit: the whole batch is one transaction, so the WAL receives
    // every dirtied page image followed by a single commit record.
    OXML_RETURN_NOT_OK(Begin());
    Status st = load();
    if (!st.ok()) {
      (void)Rollback();
      return st;
    }
    Status c = Commit();
    if (!c.ok()) {
      (void)Rollback();
      return c;
    }
    return static_cast<int64_t>(rows.size());
  };
  Result<int64_t> r = run();
  governor.NoteOutcome(r.status());
  return r;
}

void Database::InvalidatePlans() {
  // Callers hold the statement latch exclusively (DDL / rollback), so no
  // reader is compiling concurrently; the cache mutex still guards against
  // entries being spliced by a hit on another thread... which cannot exist
  // under exclusivity, but the invariant "plan_cache_/lru_ only under
  // plan_cache_mu_" is cheap to keep unconditional.
  std::lock_guard<std::mutex> lock(plan_cache_mu_);
  ++catalog_generation_;
  plan_cache_.clear();
  lru_.clear();
  catalog_dirty_ = true;
}

namespace {

bool IsCacheableKind(StmtKind kind) {
  switch (kind) {
    case StmtKind::kSelect:
    case StmtKind::kInsert:
    case StmtKind::kUpdate:
    case StmtKind::kDelete:
      return true;
    default:
      return false;  // DDL is rare and invalidates the cache anyway
  }
}

}  // namespace

Result<std::unique_ptr<PlanInstance>> Database::CompileInstance(
    const std::string& sql, StmtKind* kind, size_t* param_count) {
  auto start = std::chrono::steady_clock::now();
  OXML_ASSIGN_OR_RETURN(ParsedStatement parsed, ParseSqlWithParams(sql));
  auto inst = std::make_unique<PlanInstance>();
  inst->params = std::move(parsed.params);
  if (kind != nullptr) *kind = parsed.stmt->kind;
  if (param_count != nullptr) *param_count = parsed.param_count;
  if (parsed.stmt->kind == StmtKind::kSelect) {
    OXML_ASSIGN_OR_RETURN(
        inst->plan,
        PlanSelect(this, static_cast<SelectStmt*>(parsed.stmt.get())));
  } else {
    inst->stmt = std::move(parsed.stmt);
  }
  stats_.parse_plan_ns += static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
  return inst;
}

Result<std::shared_ptr<CachedPlan>> Database::GetOrBuildPlan(
    std::string_view sql) {
  std::string key(sql);
  {
    std::lock_guard<std::mutex> lock(plan_cache_mu_);
    auto it = plan_cache_.find(key);
    if (it != plan_cache_.end()) {
      ++stats_.plan_cache_hits;
      lru_.splice(lru_.begin(), lru_, it->second->lru_it);
      return it->second;
    }
  }
  ++stats_.plan_cache_misses;

  // Compile outside the cache mutex: planning reads only the catalog
  // (protected by the statement latch every caller already holds).
  auto entry = std::make_shared<CachedPlan>();
  entry->sql = key;
  entry->generation = catalog_generation_;
  OXML_ASSIGN_OR_RETURN(
      std::unique_ptr<PlanInstance> inst,
      CompileInstance(key, &entry->kind, &entry->param_count));
  entry->bindings = std::make_shared<Row>(entry->param_count, Value::Null());
  entry->instances.push_back(std::move(inst));

  if (plan_cache_capacity_ > 0 && IsCacheableKind(entry->kind)) {
    std::lock_guard<std::mutex> lock(plan_cache_mu_);
    auto it = plan_cache_.find(key);
    if (it != plan_cache_.end()) {
      // Another reader compiled the same text while we were planning; keep
      // the cached entry (ours is dropped) so all threads share one pool.
      lru_.splice(lru_.begin(), lru_, it->second->lru_it);
      return it->second;
    }
    lru_.push_front(key);
    entry->lru_it = lru_.begin();
    plan_cache_[key] = entry;
    if (plan_cache_.size() > plan_cache_capacity_) {
      plan_cache_.erase(lru_.back());
      lru_.pop_back();
    }
  }
  return entry;
}

Result<PlanInstance*> Database::AcquireInstance(CachedPlan* entry) {
  {
    std::lock_guard<std::mutex> lock(entry->mu);
    for (auto& inst : entry->instances) {
      if (!inst->busy) {
        inst->busy = true;
        return inst.get();
      }
    }
  }
  // Every instance is executing on another thread: compile one more. The
  // pool grows to the peak concurrency on this text and is then reused.
  OXML_ASSIGN_OR_RETURN(std::unique_ptr<PlanInstance> inst,
                        CompileInstance(entry->sql, nullptr, nullptr));
  inst->busy = true;
  PlanInstance* raw = inst.get();
  std::lock_guard<std::mutex> lock(entry->mu);
  entry->instances.push_back(std::move(inst));
  return raw;
}

Result<int64_t> Database::ExecuteEntry(CachedPlan* entry,
                                       PlanInstance* inst) {
  bool dml = entry->kind == StmtKind::kInsert ||
             entry->kind == StmtKind::kUpdate ||
             entry->kind == StmtKind::kDelete;
  // Auto-commit: a standalone DML statement is its own transaction (DDL
  // manages durability itself; SELECT mutates nothing).
  if (!dml || pool_->InTxn()) return ExecuteEntryInner(entry, inst);
  OXML_RETURN_NOT_OK(Begin());
  Result<int64_t> r = ExecuteEntryInner(entry, inst);
  if (!r.ok()) {
    (void)Rollback();
    return r.status();
  }
  Status c = Commit();
  if (!c.ok()) {
    (void)Rollback();
    return c;
  }
  return r;
}

Result<int64_t> Database::ExecuteEntryInner(CachedPlan* entry,
                                            PlanInstance* inst) {
  switch (entry->kind) {
    case StmtKind::kSelect: {
      OXML_ASSIGN_OR_RETURN(
          ResultSet rs,
          ExecuteToResultSet(
              inst->plan.get(),
              entry->last_row_count.load(std::memory_order_relaxed)));
      entry->last_row_count.store(rs.rows.size(),
                                  std::memory_order_relaxed);
      return static_cast<int64_t>(rs.rows.size());
    }
    case StmtKind::kInsert:
      return ExecuteInsert(static_cast<InsertStmt*>(inst->stmt.get()));
    case StmtKind::kUpdate:
      return ExecuteUpdate(static_cast<UpdateStmt*>(inst->stmt.get()));
    case StmtKind::kDelete:
      return ExecuteDelete(static_cast<DeleteStmt*>(inst->stmt.get()));
    case StmtKind::kCreateTable: {
      auto* ct = static_cast<CreateTableStmt*>(inst->stmt.get());
      OXML_RETURN_NOT_OK(CreateTable(ct->table, Schema(ct->columns)));
      return 0;
    }
    case StmtKind::kCreateIndex: {
      auto* ci = static_cast<CreateIndexStmt*>(inst->stmt.get());
      OXML_RETURN_NOT_OK(
          CreateIndex(ci->index, ci->table, ci->columns, ci->unique));
      return 0;
    }
    case StmtKind::kDropTable: {
      auto* dt = static_cast<DropTableStmt*>(inst->stmt.get());
      OXML_RETURN_NOT_OK(DropTable(dt->table));
      return 0;
    }
  }
  return Status::Internal("unhandled statement kind");
}

Result<ResultSet> Database::QueryLocked(std::string_view sql, Row* params) {
  ++stats_.statements;
  OXML_ASSIGN_OR_RETURN(std::shared_ptr<CachedPlan> entry,
                        GetOrBuildPlan(sql));
  if (entry->kind != StmtKind::kSelect) {
    return Status::InvalidArgument("Query() requires a SELECT statement");
  }
  if (params == nullptr) {
    if (entry->param_count > 0) {
      return Status::InvalidArgument(
          "statement has '?' parameters; use QueryP() or Prepare()");
    }
  } else if (params->size() != entry->param_count) {
    return Status::InvalidArgument(
        "QueryP got " + std::to_string(params->size()) + " values for " +
        std::to_string(entry->param_count) + " parameters");
  }
  OXML_ASSIGN_OR_RETURN(PlanInstance * inst, AcquireInstance(entry.get()));
  InstanceLease lease(entry.get(), inst);
  if (params != nullptr) *inst->params = std::move(*params);
  OXML_ASSIGN_OR_RETURN(
      ResultSet rs,
      ExecuteToResultSet(
          inst->plan.get(),
          entry->last_row_count.load(std::memory_order_relaxed)));
  entry->last_row_count.store(rs.rows.size(), std::memory_order_relaxed);
  SyncMvccStats();
  return rs;
}

Result<ResultSet> Database::Query(std::string_view sql,
                                  const StatementOptions& sopts) {
  // Governor before the latch: the deadline clock covers queueing time.
  StatementGovernor governor(this, sopts);
  SharedStatementGuard guard(&latch_);
  std::optional<ScopedReadSnapshot> snap;
  MaybeBeginSnapshot(&snap);
  Result<ResultSet> r = QueryLocked(sql, nullptr);
  governor.NoteOutcome(r.status());
  return r;
}

Result<ResultSet> Database::QueryP(std::string_view sql, Row params,
                                   const StatementOptions& sopts) {
  StatementGovernor governor(this, sopts);
  SharedStatementGuard guard(&latch_);
  std::optional<ScopedReadSnapshot> snap;
  MaybeBeginSnapshot(&snap);
  Result<ResultSet> r = QueryLocked(sql, &params);
  governor.NoteOutcome(r.status());
  return r;
}

Status Database::Cancel(uint64_t statement_id) {
  // Copy the shared_ptr out under the registry lock, then flip the flag
  // outside it: the statement may finish (and unregister) concurrently,
  // and the control must stay alive for this call either way.
  std::shared_ptr<QueryControl> ctl;
  {
    std::lock_guard<std::mutex> lock(inflight_mu_);
    auto it = inflight_.find(statement_id);
    if (it == inflight_.end()) {
      return Status::NotFound("no in-flight statement with id " +
                              std::to_string(statement_id));
    }
    ctl = it->second;
  }
  ctl->Cancel();
  return Status::OK();
}

uint64_t Database::RegisterExternalControl(
    std::shared_ptr<QueryControl> control) {
  uint64_t id =
      statement_id_counter_.fetch_add(1, std::memory_order_relaxed) + 1;
  control->set_statement_id(id);
  std::lock_guard<std::mutex> lock(inflight_mu_);
  inflight_[id] = std::move(control);
  return id;
}

void Database::UnregisterControl(uint64_t statement_id) {
  std::lock_guard<std::mutex> lock(inflight_mu_);
  inflight_.erase(statement_id);
}

Result<std::string> Database::Explain(std::string_view sql) {
  SharedStatementGuard guard(&latch_);
  OXML_ASSIGN_OR_RETURN(ParsedStatement parsed, ParseSqlWithParams(sql));
  if (parsed.stmt->kind != StmtKind::kSelect) {
    return Status::InvalidArgument("Explain() requires a SELECT statement");
  }
  OXML_ASSIGN_OR_RETURN(
      OperatorPtr plan,
      PlanSelect(this, static_cast<SelectStmt*>(parsed.stmt.get())));
  std::string out;
  plan->Describe(0, &out);
  return out;
}

Result<int64_t> Database::ExecuteLocked(std::string_view sql, Row* params) {
  ++stats_.statements;
  OXML_ASSIGN_OR_RETURN(std::shared_ptr<CachedPlan> entry,
                        GetOrBuildPlan(sql));
  if (params == nullptr) {
    if (entry->param_count > 0) {
      return Status::InvalidArgument(
          "statement has '?' parameters; use ExecuteP() or Prepare()");
    }
  } else if (params->size() != entry->param_count) {
    return Status::InvalidArgument(
        "ExecuteP got " + std::to_string(params->size()) + " values for " +
        std::to_string(entry->param_count) + " parameters");
  }
  OXML_ASSIGN_OR_RETURN(PlanInstance * inst, AcquireInstance(entry.get()));
  InstanceLease lease(entry.get(), inst);
  if (params != nullptr) *inst->params = std::move(*params);
  return ExecuteEntry(entry.get(), inst);
}

Result<int64_t> Database::Execute(std::string_view sql,
                                  const StatementOptions& sopts) {
  StatementGovernor governor(this, sopts);
  WriteStatementGuard guard(this);
  if (!guard.status().ok()) {
    governor.NoteOutcome(guard.status());
    return guard.status();
  }
  Result<int64_t> r = ExecuteLocked(sql, nullptr);
  governor.NoteOutcome(r.status());
  return r;
}

Result<int64_t> Database::ExecuteP(std::string_view sql, Row params,
                                   const StatementOptions& sopts) {
  StatementGovernor governor(this, sopts);
  WriteStatementGuard guard(this);
  if (!guard.status().ok()) {
    governor.NoteOutcome(guard.status());
    return guard.status();
  }
  Result<int64_t> r = ExecuteLocked(sql, &params);
  governor.NoteOutcome(r.status());
  return r;
}

Result<PreparedStatement> Database::Prepare(std::string_view sql) {
  SharedStatementGuard guard(&latch_);
  OXML_ASSIGN_OR_RETURN(std::shared_ptr<CachedPlan> entry,
                        GetOrBuildPlan(sql));
  return PreparedStatement(this, std::move(entry));
}

// ------------------------------------------------------- PreparedStatement

PreparedStatement::PreparedStatement(Database* db,
                                     std::shared_ptr<CachedPlan> entry)
    : db_(db), entry_(std::move(entry)) {}

const std::string& PreparedStatement::sql() const {
  static const std::string kEmpty;
  return entry_ == nullptr ? kEmpty : entry_->sql;
}

size_t PreparedStatement::param_count() const {
  return entry_ == nullptr ? 0 : entry_->param_count;
}

Status PreparedStatement::Bind(size_t index, Value v) {
  if (entry_ == nullptr) return Status::Internal("statement not prepared");
  if (index >= entry_->param_count) {
    return Status::InvalidArgument(
        "parameter index " + std::to_string(index) + " out of range (" +
        std::to_string(entry_->param_count) + " parameters)");
  }
  (*entry_->bindings)[index] = std::move(v);
  return Status::OK();
}

Status PreparedStatement::BindAll(Row values) {
  if (entry_ == nullptr) return Status::Internal("statement not prepared");
  if (values.size() != entry_->param_count) {
    return Status::InvalidArgument(
        "BindAll got " + std::to_string(values.size()) + " values for " +
        std::to_string(entry_->param_count) + " parameters");
  }
  *entry_->bindings = std::move(values);
  return Status::OK();
}

Status PreparedStatement::Refresh() {
  if (entry_ == nullptr) return Status::Internal("statement not prepared");
  if (entry_->generation == db_->catalog_generation_) return Status::OK();
  // The catalog changed since this plan was compiled: every TableInfo* in
  // it may dangle. Recompile from the SQL text, carrying bindings over.
  Row saved = std::move(*entry_->bindings);
  OXML_ASSIGN_OR_RETURN(std::shared_ptr<CachedPlan> fresh,
                        db_->GetOrBuildPlan(entry_->sql));
  if (fresh->param_count == saved.size()) {
    *fresh->bindings = std::move(saved);
  }
  entry_ = std::move(fresh);
  return Status::OK();
}

Result<ResultSet> PreparedStatement::Query(const StatementOptions& sopts) {
  if (entry_ == nullptr) return Status::Internal("statement not prepared");
  StatementGovernor governor(db_, sopts);
  SharedStatementGuard guard(db_->statement_latch());
  std::optional<ScopedReadSnapshot> snap;
  db_->MaybeBeginSnapshot(&snap);
  auto run = [&]() -> Result<ResultSet> {
    OXML_RETURN_NOT_OK(Refresh());
    if (entry_->kind != StmtKind::kSelect) {
      return Status::InvalidArgument("Query() requires a SELECT statement");
    }
    ++db_->stats_.statements;
    OXML_ASSIGN_OR_RETURN(PlanInstance * inst,
                          db_->AcquireInstance(entry_.get()));
    InstanceLease lease(entry_.get(), inst);
    *inst->params = *entry_->bindings;
    OXML_ASSIGN_OR_RETURN(
        ResultSet rs,
        ExecuteToResultSet(
            inst->plan.get(),
            entry_->last_row_count.load(std::memory_order_relaxed)));
    entry_->last_row_count.store(rs.rows.size(), std::memory_order_relaxed);
    db_->SyncMvccStats();
    return rs;
  };
  Result<ResultSet> r = run();
  governor.NoteOutcome(r.status());
  return r;
}

Result<int64_t> PreparedStatement::Execute(const StatementOptions& sopts) {
  if (entry_ == nullptr) return Status::Internal("statement not prepared");
  StatementGovernor governor(db_, sopts);
  WriteStatementGuard guard(db_);
  if (!guard.status().ok()) {
    governor.NoteOutcome(guard.status());
    return guard.status();
  }
  auto run = [&]() -> Result<int64_t> {
    OXML_RETURN_NOT_OK(Refresh());
    ++db_->stats_.statements;
    OXML_ASSIGN_OR_RETURN(PlanInstance * inst,
                          db_->AcquireInstance(entry_.get()));
    InstanceLease lease(entry_.get(), inst);
    *inst->params = *entry_->bindings;
    return db_->ExecuteEntry(entry_.get(), inst);
  };
  Result<int64_t> r = run();
  governor.NoteOutcome(r.status());
  return r;
}

Result<int64_t> PreparedStatement::ExecuteBatch(
    const std::vector<Row>& rows) {
  if (rows.empty()) return 0;
  if (entry_ == nullptr) return Status::Internal("statement not prepared");
  // One governor for the whole batch (the inner Execute calls inherit it),
  // so a deadline or Cancel spans all N executions and the wrapping
  // transaction rolls the partial batch back.
  StatementGovernor governor(db_, StatementOptions{});
  WriteStatementGuard guard(db_);
  if (!guard.status().ok()) {
    governor.NoteOutcome(guard.status());
    return guard.status();
  }
  OXML_RETURN_NOT_OK(Refresh());
  bool dml = entry_->kind == StmtKind::kInsert ||
             entry_->kind == StmtKind::kUpdate ||
             entry_->kind == StmtKind::kDelete;
  // One transaction (one WAL commit + fsync) for the whole batch: either
  // every row lands or none does.
  bool wrap = dml && !db_->InTransaction();
  if (wrap) OXML_RETURN_NOT_OK(db_->Begin());
  int64_t total = 0;
  for (const Row& row : rows) {
    Status st = BindAll(row);
    Result<int64_t> n = st.ok() ? Execute() : Result<int64_t>(st);
    if (!n.ok()) {
      if (wrap) (void)db_->Rollback();
      governor.NoteOutcome(n.status());
      return n.status();
    }
    total += *n;
  }
  if (wrap) {
    Status c = db_->Commit();
    if (!c.ok()) {
      (void)db_->Rollback();
      governor.NoteOutcome(c);
      return c;
    }
  }
  return total;
}

namespace {

/// Coerces a literal value to a column type (INT -> DOUBLE promotion and
/// TEXT/BLOB interchange); errors on incompatible kinds.
Result<Value> CoerceTo(const Value& v, TypeId type) {
  if (v.is_null()) return v;
  if (v.type() == type) return v;
  switch (type) {
    case TypeId::kDouble:
      if (v.type() == TypeId::kInt) return Value::Double(v.AsDouble());
      break;
    case TypeId::kInt:
      if (v.type() == TypeId::kDouble) {
        return Value::Int(static_cast<int64_t>(v.AsDouble()));
      }
      break;
    case TypeId::kText:
      if (v.type() == TypeId::kBlob) return Value::Text(v.AsString());
      break;
    case TypeId::kBlob:
      if (v.type() == TypeId::kText) return Value::Blob(v.AsString());
      break;
    default:
      break;
  }
  return Status::InvalidArgument(std::string("cannot coerce ") +
                                 TypeIdToString(v.type()) + " to " +
                                 TypeIdToString(type));
}

}  // namespace

Result<int64_t> Database::ExecuteInsert(InsertStmt* stmt) {
  TableInfo* t = GetTable(stmt->table);
  if (t == nullptr) return Status::NotFound("no such table: " + stmt->table);
  const Schema& schema = t->schema();

  // Map the statement's column list to schema positions.
  std::vector<int> positions;
  if (stmt->columns.empty()) {
    for (size_t i = 0; i < schema.size(); ++i) {
      positions.push_back(static_cast<int>(i));
    }
  } else {
    for (const std::string& col : stmt->columns) {
      int idx = schema.IndexOf(col);
      if (idx < 0) {
        return Status::NotFound("no column " + col + " in " + stmt->table);
      }
      positions.push_back(idx);
    }
  }

  int64_t inserted = 0;
  Row empty;
  for (auto& exprs : stmt->rows) {
    OXML_RETURN_NOT_OK(CheckCurrentControl());
    if (exprs.size() != positions.size()) {
      return Status::InvalidArgument("VALUES arity mismatch");
    }
    Row row(schema.size(), Value::Null());
    for (size_t i = 0; i < exprs.size(); ++i) {
      OXML_ASSIGN_OR_RETURN(Value v, exprs[i]->Eval(empty));
      OXML_ASSIGN_OR_RETURN(
          row[positions[i]],
          CoerceTo(v, schema.column(positions[i]).type));
    }
    OXML_RETURN_NOT_OK(t->InsertRow(row, &stats_).status());
    ++inserted;
  }
  return inserted;
}

Result<std::vector<Rid>> Database::CollectRids(TableInfo* table,
                                               Expr* where) {
  std::vector<Rid> rids;
  std::vector<Expr*> conjunct_ptrs;
  std::vector<ExprPtr> owned;  // only to reuse SplitConjuncts shape

  ExprPtr residual_pred;
  AccessPath path;
  if (where != nullptr) {
    OXML_RETURN_NOT_OK(where->Bind(table->schema()));
    // Split without taking ownership: treat the whole predicate as both
    // sargable candidates and the residual check (re-evaluating consumed
    // conjuncts is harmless here since DML row counts are modest relative
    // to the scan itself).
    std::vector<Expr*> flat;
    // Walk top-level ANDs.
    std::vector<Expr*> stack{where};
    while (!stack.empty()) {
      Expr* e = stack.back();
      stack.pop_back();
      if (e->kind() == Expr::Kind::kBinary) {
        auto* bin = static_cast<BinaryExpr*>(e);
        if (bin->op() == BinaryOp::kAnd) {
          stack.push_back(bin->left());
          stack.push_back(bin->right());
          continue;
        }
      }
      flat.push_back(e);
    }
    path = ChooseAccessPath(*table, flat);
    if (path.dynamic.has_value()) {
      // DML runs with parameters already bound, so parameter-dependent
      // bounds resolve right here. A NULL binding keeps the scan
      // unbounded; the full-predicate recheck below stays correct either
      // way.
      OXML_ASSIGN_OR_RETURN(ResolvedIndexBounds bounds,
                            ResolveIndexBounds(*path.dynamic));
      if (bounds.usable) {
        path.lower = std::move(bounds.lower);
        path.upper = std::move(bounds.upper);
      }
    }
  }

  auto row_matches = [&](const Row& row) -> Result<bool> {
    if (where == nullptr) return true;
    OXML_ASSIGN_OR_RETURN(Value v, where->Eval(row));
    return !v.is_null() && v.IsTruthy();
  };

  if (path.index != nullptr) {
    ++stats_.index_probes;
    IndexCursor it = path.lower.has_value()
                         ? path.index->ScanFrom(*path.lower)
                         : path.index->ScanBegin();
    while (it.valid()) {
      OXML_RETURN_NOT_OK(CheckCurrentControl());
      if (path.upper.has_value() && it.key() >= *path.upper) break;
      OXML_ASSIGN_OR_RETURN(Row row, table->heap()->Get(it.rid()));
      ++stats_.rows_scanned;
      OXML_ASSIGN_OR_RETURN(bool ok, row_matches(row));
      if (ok) rids.push_back(it.rid());
      it.Next();
    }
  } else {
    HeapTable::Iterator it = table->heap()->Scan();
    Rid rid;
    Row row;
    while (true) {
      OXML_RETURN_NOT_OK(CheckCurrentControl());
      OXML_ASSIGN_OR_RETURN(bool has, it.Next(&rid, &row));
      if (!has) break;
      ++stats_.rows_scanned;
      OXML_ASSIGN_OR_RETURN(bool ok, row_matches(row));
      if (ok) rids.push_back(rid);
    }
  }
  return rids;
}

Result<int64_t> Database::ExecuteUpdate(UpdateStmt* stmt) {
  TableInfo* t = GetTable(stmt->table);
  if (t == nullptr) return Status::NotFound("no such table: " + stmt->table);
  const Schema& schema = t->schema();

  std::vector<int> positions;
  for (auto& [col, expr] : stmt->assignments) {
    int idx = schema.IndexOf(col);
    if (idx < 0) {
      return Status::NotFound("no column " + col + " in " + stmt->table);
    }
    positions.push_back(idx);
    OXML_RETURN_NOT_OK(expr->Bind(schema));
  }

  OXML_ASSIGN_OR_RETURN(std::vector<Rid> rids,
                        CollectRids(t, stmt->where.get()));

  int64_t updated = 0;
  for (const Rid& rid : rids) {
    OXML_ASSIGN_OR_RETURN(Row row, t->heap()->Get(rid));
    Row new_row = row;
    for (size_t i = 0; i < positions.size(); ++i) {
      OXML_ASSIGN_OR_RETURN(Value v, stmt->assignments[i].second->Eval(row));
      OXML_ASSIGN_OR_RETURN(
          new_row[positions[i]],
          CoerceTo(v, schema.column(positions[i]).type));
    }
    OXML_RETURN_NOT_OK(t->UpdateRow(rid, new_row, &stats_).status());
    ++updated;
  }
  return updated;
}

Result<int64_t> Database::ExecuteDelete(DeleteStmt* stmt) {
  TableInfo* t = GetTable(stmt->table);
  if (t == nullptr) return Status::NotFound("no such table: " + stmt->table);
  OXML_ASSIGN_OR_RETURN(std::vector<Rid> rids,
                        CollectRids(t, stmt->where.get()));
  for (const Rid& rid : rids) {
    OXML_RETURN_NOT_OK(t->DeleteRow(rid, &stats_));
  }
  return static_cast<int64_t>(rids.size());
}

StorageStats Database::GetStorageStats() const {
  SharedStatementGuard guard(&latch_);
  StorageStats s;
  for (const auto& [name, table] : tables_) {
    s.heap_pages += table->heap()->page_chain_length();
    s.heap_rows += table->heap()->row_count();
    s.heap_bytes += table->heap()->data_bytes();
    for (const auto& idx : table->indexes()) {
      s.index_entries += idx->tree.size();
      s.index_bytes += idx->tree.key_bytes();
    }
  }
  return s;
}

}  // namespace oxml
