#include "src/relational/thread_pool.h"

#include <algorithm>
#include <memory>

#include "src/relational/query_control.h"

namespace oxml {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

void ThreadPool::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with nothing left to run
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.emplace_back(std::move(task));
  }
  cv_.notify_one();
}

Status ThreadPool::ParallelFor(size_t shards,
                               const std::function<Status(size_t)>& fn) {
  if (shards == 0) return Status::OK();
  if (shards == 1) return fn(0);

  // The statement's governance token rides into every worker (morsel
  // boundaries are cancellation check points), exactly like the MVCC read
  // snapshot that the shard lambdas re-install themselves.
  QueryControl* ctl = CurrentQueryControl();

  // Shared fan-out state. Helpers that never got scheduled before the
  // caller drained every shard exit immediately (next >= shards), so the
  // completion wait below cannot miss them.
  struct FanOut {
    std::atomic<size_t> next{0};
    std::atomic<size_t> active{0};
    std::mutex mu;
    std::condition_variable done;
    Status first_error;
  };
  auto state = std::make_shared<FanOut>();

  auto drain = [state, shards, &fn, ctl] {
    QueryControlTaskScope control_scope(ctl);
    size_t i;
    while ((i = state->next.fetch_add(1, std::memory_order_relaxed)) <
           shards) {
      Status st = ctl != nullptr ? ctl->Check() : Status::OK();
      if (st.ok()) st = fn(i);
      if (!st.ok()) {
        std::lock_guard<std::mutex> lock(state->mu);
        if (state->first_error.ok()) state->first_error = std::move(st);
        // A cancelled/expired statement stops claiming shards; peers see
        // the same control and wind down at their next claim.
        if (st.IsCancelled() || st.IsDeadlineExceeded()) break;
      }
    }
  };

  size_t helpers = std::min(threads_.size(), shards - 1);
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t h = 0; h < helpers; ++h) {
      state->active.fetch_add(1, std::memory_order_relaxed);
      queue_.emplace_back([state, drain] {
        drain();
        std::lock_guard<std::mutex> lock(state->mu);
        state->active.fetch_sub(1, std::memory_order_relaxed);
        state->done.notify_one();
      });
    }
  }
  cv_.notify_all();

  drain();  // the caller is always one of the workers

  std::unique_lock<std::mutex> lock(state->mu);
  state->done.wait(lock, [&state] {
    return state->active.load(std::memory_order_relaxed) == 0;
  });
  return state->first_error;
}

}  // namespace oxml
