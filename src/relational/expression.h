#ifndef OXML_RELATIONAL_EXPRESSION_H_
#define OXML_RELATIONAL_EXPRESSION_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/relational/schema.h"
#include "src/relational/value.h"

namespace oxml {

enum class BinaryOp {
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kAnd,
  kOr,
  kAdd,
  kSub,
  kMul,
  kDiv,
  kMod,
  kLike,
};

enum class UnaryOp {
  kNot,
  kNeg,
  kIsNull,
  kIsNotNull,
};

const char* BinaryOpToString(BinaryOp op);

/// Scalar expression tree shared by the SQL front end and the executor.
/// Expressions are bound against a Schema (resolving column names to
/// indices) before evaluation.
class Expr {
 public:
  enum class Kind : uint8_t {
    kLiteral,
    kColumn,
    kBinary,
    kUnary,
    kFunction,
    kStar,   // the '*' inside COUNT(*)
    kParam,  // '?' placeholder bound at execution time
  };

  explicit Expr(Kind kind) : kind_(kind) {}
  virtual ~Expr() = default;

  Kind kind() const { return kind_; }

  /// Resolves column references against `schema`. Idempotent.
  virtual Status Bind(const Schema& schema) = 0;

  /// Evaluates against a bound row.
  virtual Result<Value> Eval(const Row& row) const = 0;

  /// SQL-ish rendering for diagnostics and plan explain output.
  virtual std::string ToString() const = 0;

  /// True if this subtree contains an aggregate function call.
  virtual bool ContainsAggregate() const { return false; }

  /// Collects the schema column indices this subtree reads (post-Bind).
  virtual void CollectColumns(std::vector<int>* out) const = 0;

 private:
  Kind kind_;
};

using ExprPtr = std::unique_ptr<Expr>;

class LiteralExpr : public Expr {
 public:
  explicit LiteralExpr(Value value)
      : Expr(Kind::kLiteral), value_(std::move(value)) {}

  Status Bind(const Schema&) override { return Status::OK(); }
  Result<Value> Eval(const Row&) const override { return value_; }
  std::string ToString() const override;
  void CollectColumns(std::vector<int>*) const override {}

  const Value& value() const { return value_; }

 private:
  Value value_;
};

/// A '?' parameter marker. All markers in one statement share a single
/// binding buffer (owned by the PreparedStatement); Eval reads the slot at
/// `index_`, so rebinding the buffer re-parameterizes a cached plan without
/// touching the expression tree.
class ParamExpr : public Expr {
 public:
  ParamExpr(std::shared_ptr<Row> params, size_t index)
      : Expr(Kind::kParam), params_(std::move(params)), index_(index) {}

  Status Bind(const Schema&) override { return Status::OK(); }
  Result<Value> Eval(const Row&) const override {
    if (index_ >= params_->size()) {
      return Status::Internal("parameter index out of range");
    }
    return (*params_)[index_];
  }
  std::string ToString() const override {
    return "?" + std::to_string(index_ + 1);
  }
  void CollectColumns(std::vector<int>*) const override {}

  size_t index() const { return index_; }
  /// Current binding (valid between Bind and the end of execution).
  const Value& value() const { return (*params_)[index_]; }
  /// The shared binding buffer (used by the planner to clone markers into
  /// dynamic index bounds).
  const std::shared_ptr<Row>& buffer() const { return params_; }

 private:
  std::shared_ptr<Row> params_;
  size_t index_;
};

class ColumnExpr : public Expr {
 public:
  explicit ColumnExpr(std::string name)
      : Expr(Kind::kColumn), name_(std::move(name)) {}

  /// Pre-resolved reference (used by the planner for synthesized schemas
  /// whose column names need not be re-looked-up).
  ColumnExpr(std::string name, int index)
      : Expr(Kind::kColumn), name_(std::move(name)), index_(index) {}

  Status Bind(const Schema& schema) override;
  Result<Value> Eval(const Row& row) const override;
  std::string ToString() const override { return name_; }
  void CollectColumns(std::vector<int>* out) const override {
    if (index_ >= 0) out->push_back(index_);
  }

  const std::string& name() const { return name_; }
  int index() const { return index_; }

 private:
  std::string name_;
  int index_ = -1;
};

class BinaryExpr : public Expr {
 public:
  BinaryExpr(BinaryOp op, ExprPtr left, ExprPtr right)
      : Expr(Kind::kBinary),
        op_(op),
        left_(std::move(left)),
        right_(std::move(right)) {}

  Status Bind(const Schema& schema) override;
  Result<Value> Eval(const Row& row) const override;
  std::string ToString() const override;
  bool ContainsAggregate() const override {
    return left_->ContainsAggregate() || right_->ContainsAggregate();
  }
  void CollectColumns(std::vector<int>* out) const override {
    left_->CollectColumns(out);
    right_->CollectColumns(out);
  }

  BinaryOp op() const { return op_; }
  Expr* left() const { return left_.get(); }
  Expr* right() const { return right_.get(); }
  ExprPtr TakeLeft() { return std::move(left_); }
  ExprPtr TakeRight() { return std::move(right_); }

 private:
  BinaryOp op_;
  ExprPtr left_;
  ExprPtr right_;
};

class UnaryExpr : public Expr {
 public:
  UnaryExpr(UnaryOp op, ExprPtr operand)
      : Expr(Kind::kUnary), op_(op), operand_(std::move(operand)) {}

  Status Bind(const Schema& schema) override {
    return operand_->Bind(schema);
  }
  Result<Value> Eval(const Row& row) const override;
  std::string ToString() const override;
  bool ContainsAggregate() const override {
    return operand_->ContainsAggregate();
  }
  void CollectColumns(std::vector<int>* out) const override {
    operand_->CollectColumns(out);
  }

  UnaryOp op() const { return op_; }
  Expr* operand() const { return operand_.get(); }

 private:
  UnaryOp op_;
  ExprPtr operand_;
};

/// Aggregate function names understood by the planner.
enum class AggregateKind { kNone, kCount, kSum, kMin, kMax, kAvg };

AggregateKind AggregateKindFromName(const std::string& upper_name);

class FunctionExpr : public Expr {
 public:
  FunctionExpr(std::string name, std::vector<ExprPtr> args);

  Status Bind(const Schema& schema) override;
  /// Scalar evaluation; aggregate calls are evaluated by AggregateOp and
  /// never reach Eval directly.
  Result<Value> Eval(const Row& row) const override;
  std::string ToString() const override;
  bool ContainsAggregate() const override {
    return aggregate_ != AggregateKind::kNone;
  }
  void CollectColumns(std::vector<int>* out) const override {
    for (const auto& a : args_) a->CollectColumns(out);
  }

  const std::string& name() const { return name_; }
  AggregateKind aggregate() const { return aggregate_; }
  const std::vector<ExprPtr>& args() const { return args_; }
  /// The planner moves aggregate arguments out of the call node.
  std::vector<ExprPtr>& mutable_args() { return args_; }

 private:
  std::string name_;  // upper-cased
  std::vector<ExprPtr> args_;
  AggregateKind aggregate_;
};

class StarExpr : public Expr {
 public:
  StarExpr() : Expr(Kind::kStar) {}
  Status Bind(const Schema&) override { return Status::OK(); }
  Result<Value> Eval(const Row&) const override {
    return Status::Internal("'*' cannot be evaluated");
  }
  std::string ToString() const override { return "*"; }
  void CollectColumns(std::vector<int>*) const override {}
};

/// SQL LIKE with % (any run) and _ (any char) wildcards.
bool LikeMatch(std::string_view text, std::string_view pattern);

}  // namespace oxml

#endif  // OXML_RELATIONAL_EXPRESSION_H_
