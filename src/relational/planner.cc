#include "src/relational/planner.h"

#include <algorithm>
#include <utility>

#include "src/relational/database.h"
#include "src/relational/key_codec.h"
#include "src/relational/parallel_ops.h"
#include "src/relational/thread_pool.h"

namespace oxml {

std::vector<ExprPtr> SplitConjuncts(ExprPtr expr) {
  std::vector<ExprPtr> out;
  if (expr == nullptr) return out;
  if (expr->kind() == Expr::Kind::kBinary) {
    auto* bin = static_cast<BinaryExpr*>(expr.get());
    if (bin->op() == BinaryOp::kAnd) {
      std::vector<ExprPtr> left = SplitConjuncts(bin->TakeLeft());
      std::vector<ExprPtr> right = SplitConjuncts(bin->TakeRight());
      for (auto& e : left) out.push_back(std::move(e));
      for (auto& e : right) out.push_back(std::move(e));
      return out;
    }
  }
  out.push_back(std::move(expr));
  return out;
}

ExprPtr CombineConjuncts(std::vector<ExprPtr> conjuncts) {
  ExprPtr out;
  for (auto& c : conjuncts) {
    if (out == nullptr) {
      out = std::move(c);
    } else {
      out = std::make_unique<BinaryExpr>(BinaryOp::kAnd, std::move(out),
                                         std::move(c));
    }
  }
  return out;
}

namespace {

/// A normalized sargable conjunct: <column> <op> <literal-or-parameter>.
struct Sarg {
  int column = -1;       // bound position in the (qualified) table schema
  BinaryOp op = BinaryOp::kEq;
  Value value;           // coerced literal value (literal sargs only)
  const Expr* value_expr = nullptr;  // the value side, borrowed
  bool is_param = false;
  size_t conjunct_index = 0;
};

BinaryOp FlipComparison(BinaryOp op) {
  switch (op) {
    case BinaryOp::kLt:
      return BinaryOp::kGt;
    case BinaryOp::kLe:
      return BinaryOp::kGe;
    case BinaryOp::kGt:
      return BinaryOp::kLt;
    case BinaryOp::kGe:
      return BinaryOp::kLe;
    default:
      return op;
  }
}

bool IsComparison(BinaryOp op) {
  return op == BinaryOp::kEq || op == BinaryOp::kLt || op == BinaryOp::kLe ||
         op == BinaryOp::kGt || op == BinaryOp::kGe;
}

bool IsValueExpr(const Expr* e) {
  return e->kind() == Expr::Kind::kLiteral || e->kind() == Expr::Kind::kParam;
}

/// Extracts sargable conjuncts (already bound against the scan schema).
std::vector<Sarg> ExtractSargs(const Schema& schema,
                               const std::vector<Expr*>& conjuncts) {
  std::vector<Sarg> sargs;
  for (size_t i = 0; i < conjuncts.size(); ++i) {
    const Expr* e = conjuncts[i];
    if (e->kind() != Expr::Kind::kBinary) continue;
    const auto* bin = static_cast<const BinaryExpr*>(e);
    if (!IsComparison(bin->op())) continue;
    const Expr* l = bin->left();
    const Expr* r = bin->right();
    Sarg s;
    if (l->kind() == Expr::Kind::kColumn && IsValueExpr(r)) {
      s.column = static_cast<const ColumnExpr*>(l)->index();
      s.op = bin->op();
      s.value_expr = r;
    } else if (r->kind() == Expr::Kind::kColumn && IsValueExpr(l)) {
      s.column = static_cast<const ColumnExpr*>(r)->index();
      s.op = FlipComparison(bin->op());
      s.value_expr = l;
    } else {
      continue;
    }
    if (s.column < 0 || static_cast<size_t>(s.column) >= schema.size()) {
      continue;
    }
    if (s.value_expr->kind() == Expr::Kind::kParam) {
      // Parameter values are unknown until execution; bounds become dynamic.
      s.is_param = true;
    } else {
      s.value = static_cast<const LiteralExpr*>(s.value_expr)->value();
      if (s.value.is_null()) continue;  // col <op> NULL never matches
      if (!CoerceForColumn(schema.column(s.column).type, &s.value)) continue;
    }
    s.conjunct_index = i;
    sargs.push_back(std::move(s));
  }
  return sargs;
}

/// Builds an owning bound term from a sarg (cloning the value expression so
/// the scan operator can outlive the conjunct it came from). Cloned
/// ParamExprs share the original binding buffer, which is what lets a
/// cached plan see fresh bindings.
DynamicIndexBounds::Term MakeBoundTerm(const Sarg& s, TypeId column_type) {
  DynamicIndexBounds::Term term;
  term.column_type = column_type;
  if (s.is_param) {
    const auto* p = static_cast<const ParamExpr*>(s.value_expr);
    term.expr = std::make_unique<ParamExpr>(p->buffer(), p->index());
  } else {
    term.expr = std::make_unique<LiteralExpr>(s.value);
  }
  return term;
}

}  // namespace

AccessPath ChooseAccessPath(const TableInfo& table,
                            const std::vector<Expr*>& conjuncts) {
  std::vector<Sarg> sargs = ExtractSargs(table.schema(), conjuncts);
  AccessPath best;
  best.consumed.assign(conjuncts.size(), false);
  int best_score = 0;

  for (const auto& index : table.indexes()) {
    std::vector<const Sarg*> eq_sargs;
    int score = 0;
    const Sarg* range_lower = nullptr;
    const Sarg* range_upper = nullptr;

    for (int col : index->column_indices) {
      const Sarg* eq = nullptr;
      for (const Sarg& s : sargs) {
        if (s.column == col && s.op == BinaryOp::kEq) {
          eq = &s;
          break;
        }
      }
      if (eq != nullptr) {
        eq_sargs.push_back(eq);
        score += 2;
        continue;
      }
      // No equality on this column: consume at most one range pair here.
      for (const Sarg& s : sargs) {
        if (s.column != col) continue;
        if ((s.op == BinaryOp::kGt || s.op == BinaryOp::kGe) &&
            range_lower == nullptr) {
          range_lower = &s;
        } else if ((s.op == BinaryOp::kLt || s.op == BinaryOp::kLe) &&
                   range_upper == nullptr) {
          range_upper = &s;
        }
      }
      if (range_lower != nullptr || range_upper != nullptr) score += 1;
      break;
    }
    if (score <= best_score) continue;

    bool any_param = false;
    for (const Sarg* s : eq_sargs) any_param |= s->is_param;
    if (range_lower != nullptr) any_param |= range_lower->is_param;
    if (range_upper != nullptr) any_param |= range_upper->is_param;

    AccessPath path;
    path.index = index.get();
    path.consumed.assign(conjuncts.size(), false);
    path.eq_prefix = eq_sargs.size();

    if (any_param) {
      // Defer bound encoding to execution time; leave `consumed` all-false
      // so the bound conjuncts stay in the residual filter (see AccessPath).
      const Schema& schema = table.schema();
      DynamicIndexBounds dyn;
      for (const Sarg* s : eq_sargs) {
        dyn.eq.push_back(MakeBoundTerm(*s, schema.column(s->column).type));
      }
      if (range_lower != nullptr) {
        dyn.lower = MakeBoundTerm(*range_lower,
                                  schema.column(range_lower->column).type);
        dyn.lower_inclusive = range_lower->op == BinaryOp::kGe;
      }
      if (range_upper != nullptr) {
        dyn.upper = MakeBoundTerm(*range_upper,
                                  schema.column(range_upper->column).type);
        dyn.upper_inclusive = range_upper->op == BinaryOp::kLe;
      }
      path.dynamic = std::move(dyn);
    } else {
      // All-literal bounds: encode eagerly.
      std::vector<Value> eq_prefix;
      for (const Sarg* s : eq_sargs) {
        eq_prefix.push_back(s->value);
        path.consumed[s->conjunct_index] = true;
      }
      std::string prefix = EncodeKey(eq_prefix);
      if (range_lower != nullptr) {
        std::string k = prefix;
        EncodeKeyValue(range_lower->value, &k);
        path.lower = range_lower->op == BinaryOp::kGe ? k : KeySuccessor(k);
        path.consumed[range_lower->conjunct_index] = true;
      } else if (!eq_prefix.empty()) {
        path.lower = prefix;
      }
      if (range_upper != nullptr) {
        std::string k = prefix;
        EncodeKeyValue(range_upper->value, &k);
        path.upper = range_upper->op == BinaryOp::kLt ? k : KeySuccessor(k);
        path.consumed[range_upper->conjunct_index] = true;
      } else if (!eq_prefix.empty()) {
        path.upper = KeySuccessor(prefix);
      }
    }

    best = std::move(path);
    best_score = score;
  }
  return best;
}

TypeId InferType(const Expr& expr, const Schema& schema) {
  switch (expr.kind()) {
    case Expr::Kind::kLiteral: {
      TypeId t = static_cast<const LiteralExpr&>(expr).value().type();
      return t == TypeId::kNull ? TypeId::kText : t;
    }
    case Expr::Kind::kColumn: {
      const auto& col = static_cast<const ColumnExpr&>(expr);
      if (col.index() >= 0 && static_cast<size_t>(col.index()) < schema.size()) {
        return schema.column(col.index()).type;
      }
      int idx = schema.IndexOf(col.name());
      return idx >= 0 ? schema.column(idx).type : TypeId::kText;
    }
    case Expr::Kind::kBinary: {
      const auto& bin = static_cast<const BinaryExpr&>(expr);
      if (IsComparison(bin.op()) || bin.op() == BinaryOp::kAnd ||
          bin.op() == BinaryOp::kOr || bin.op() == BinaryOp::kLike) {
        return TypeId::kInt;
      }
      TypeId l = InferType(*bin.left(), schema);
      TypeId r = InferType(*bin.right(), schema);
      if (bin.op() == BinaryOp::kAdd && l == TypeId::kText) return TypeId::kText;
      if (l == TypeId::kDouble || r == TypeId::kDouble) return TypeId::kDouble;
      return TypeId::kInt;
    }
    case Expr::Kind::kUnary: {
      const auto& un = static_cast<const UnaryExpr&>(expr);
      if (un.op() == UnaryOp::kNeg) return InferType(*un.operand(), schema);
      return TypeId::kInt;
    }
    case Expr::Kind::kFunction: {
      const auto& fn = static_cast<const FunctionExpr&>(expr);
      switch (fn.aggregate()) {
        case AggregateKind::kCount:
          return TypeId::kInt;
        case AggregateKind::kAvg:
          return TypeId::kDouble;
        case AggregateKind::kSum:
        case AggregateKind::kMin:
        case AggregateKind::kMax:
          return fn.args().empty() ? TypeId::kInt
                                   : InferType(*fn.args()[0], schema);
        case AggregateKind::kNone:
          break;
      }
      if (fn.name() == "LENGTH") return TypeId::kInt;
      if (fn.name() == "SUCC" && !fn.args().empty()) {
        return InferType(*fn.args()[0], schema);
      }
      if (fn.name() == "PATH_PARENT") return TypeId::kBlob;
      if (fn.name() == "SUBSTR") return TypeId::kText;
      if (fn.name() == "ABS" && !fn.args().empty()) {
        return InferType(*fn.args()[0], schema);
      }
      return TypeId::kText;
    }
    case Expr::Kind::kStar:
      return TypeId::kInt;
    case Expr::Kind::kParam: {
      // Best effort: the type of the current binding, TEXT before any Bind.
      TypeId t = static_cast<const ParamExpr&>(expr).value().type();
      return t == TypeId::kNull ? TypeId::kText : t;
    }
  }
  return TypeId::kText;
}

namespace {

bool TryBind(Expr* e, const Schema& schema) { return e->Bind(schema).ok(); }

/// Builds the qualified scan schema for a table reference.
Schema QualifiedSchema(const TableInfo& table, const std::string& alias) {
  Schema out;
  out.Append(table.schema(), alias);
  return out;
}

/// True when the planner should emit parallel operators for this table:
/// the feature is on, a pool exists, and the table is big enough that
/// fan-out overhead pays for itself.
bool WantParallelScan(Database* db, const TableInfo& table) {
  return db->options().enable_parallel_execution &&
         db->thread_pool() != nullptr &&
         table.heap()->row_count() >=
             db->options().parallel_scan_min_rows;
}

/// Plans the access to one base table given the conjuncts that reference
/// only this table (already bound to `qualified`). Consumed conjuncts are
/// dropped; the rest become a Filter on top of the scan.
Result<OperatorPtr> PlanTableAccess(Database* db, TableInfo* table,
                                    Schema qualified,
                                    std::vector<ExprPtr> conjuncts) {
  ExecStats* stats = db->stats();
  std::vector<Expr*> raw;
  raw.reserve(conjuncts.size());
  for (auto& c : conjuncts) raw.push_back(c.get());
  AccessPath path = ChooseAccessPath(*table, raw);
  bool parallel = WantParallelScan(db, *table);

  OperatorPtr scan;
  if (path.index != nullptr && path.dynamic.has_value()) {
    // Dynamic bounds resolve only at Open(); the selective probes they
    // serve would not benefit from splitting — stay serial.
    scan = std::make_unique<IndexScanOp>(table, path.index,
                                         std::move(qualified),
                                         std::move(*path.dynamic), stats);
  } else if (path.index != nullptr && parallel) {
    scan = std::make_unique<ParallelScanOp>(
        table, path.index, std::move(qualified), std::move(path.lower),
        std::move(path.upper), path.eq_prefix, db->thread_pool(), stats);
  } else if (path.index != nullptr) {
    scan = std::make_unique<IndexScanOp>(
        table, path.index, std::move(qualified), std::move(path.lower),
        std::move(path.upper), path.eq_prefix, stats);
  } else if (parallel) {
    scan = std::make_unique<ParallelScanOp>(table, std::move(qualified),
                                            db->thread_pool(), stats);
  } else {
    scan = std::make_unique<SeqScanOp>(table, std::move(qualified), stats);
  }

  std::vector<ExprPtr> residual;
  for (size_t i = 0; i < conjuncts.size(); ++i) {
    if (path.consumed.empty() || !path.consumed[i]) {
      residual.push_back(std::move(conjuncts[i]));
    }
  }
  ExprPtr filter = CombineConjuncts(std::move(residual));
  if (filter != nullptr) {
    OXML_RETURN_NOT_OK(filter->Bind(scan->schema()));
    scan = std::make_unique<FilterOp>(std::move(scan), std::move(filter));
  }
  return scan;
}

/// A detected interval-containment join pair: the inner table's "start"
/// column bounded below by one conjunct and above by another, both against
/// expressions over the already-joined tables.
struct IntervalJoin {
  size_t lower_conjunct = 0;
  size_t upper_conjunct = 0;
  bool lower_flipped = false;  // the column sat on the right-hand side
  bool upper_flipped = false;
  bool lower_strict = false;    // normalized lower op was '>' (vs '>=')
  bool upper_inclusive = false;  // normalized upper op was '<=' (vs '<')
};

/// Looks for the ancestor–descendant containment pattern the XPath
/// translator emits:
///   d.start > a.start AND d.start <= a.end          (Global regions)
///   d.path  > a.path  AND d.path  <  SUCC(a.path)   (Dewey prefix ranges)
/// The start column must be a bare column resolving only in the inner
/// table; the lower bound must be a bare column of the outer side (it
/// doubles as the merge key) and the upper bound any expression over the
/// outer side. Bind() calls mutate resolved positions during probing, which
/// is safe because every consumer re-binds expressions to its final input
/// schema before use.
bool DetectIntervalJoin(const std::vector<ExprPtr>& conjuncts,
                        const Schema& inner, const Schema& outer,
                        IntervalJoin* out) {
  struct Candidate {
    size_t conjunct = 0;
    bool flipped = false;
    bool strict = false;
    int start_col = -1;  // position in the inner schema
  };
  std::vector<Candidate> lowers, uppers;

  for (size_t ci = 0; ci < conjuncts.size(); ++ci) {
    Expr* e = conjuncts[ci].get();
    if (e == nullptr || e->kind() != Expr::Kind::kBinary) continue;
    auto* bin = static_cast<BinaryExpr*>(e);
    BinaryOp op = bin->op();
    if (op != BinaryOp::kGt && op != BinaryOp::kGe && op != BinaryOp::kLt &&
        op != BinaryOp::kLe) {
      continue;
    }
    for (int flip = 0; flip < 2; ++flip) {
      Expr* col_side = flip ? bin->right() : bin->left();
      Expr* bound_side = flip ? bin->left() : bin->right();
      BinaryOp norm = flip ? FlipComparison(op) : op;
      if (col_side->kind() != Expr::Kind::kColumn) continue;
      bool is_lower = norm == BinaryOp::kGt || norm == BinaryOp::kGe;
      // The lower bound doubles as the ancestor-side sort key, so it must
      // be a bare column; the upper bound may be any outer expression
      // (SUCC(path) for Dewey).
      if (is_lower && bound_side->kind() != Expr::Kind::kColumn) continue;
      if (TryBind(col_side, outer)) continue;    // ambiguous or outer column
      if (!TryBind(col_side, inner)) continue;
      if (TryBind(bound_side, inner)) continue;  // not a cross-table bound
      if (!TryBind(bound_side, outer)) continue;
      Candidate c;
      c.conjunct = ci;
      c.flipped = flip != 0;
      c.strict = norm == BinaryOp::kGt || norm == BinaryOp::kLt;
      c.start_col = static_cast<ColumnExpr*>(col_side)->index();
      (is_lower ? lowers : uppers).push_back(c);
      break;
    }
  }

  for (const Candidate& lo : lowers) {
    for (const Candidate& up : uppers) {
      if (lo.start_col != up.start_col || lo.conjunct == up.conjunct) {
        continue;
      }
      out->lower_conjunct = lo.conjunct;
      out->upper_conjunct = up.conjunct;
      out->lower_flipped = lo.flipped;
      out->upper_flipped = up.flipped;
      out->lower_strict = lo.strict;
      out->upper_inclusive = !up.strict;
      return true;
    }
  }
  return false;
}

/// True when `plan` already emits rows in the requested order: every ORDER
/// BY expression is a resolved column and the plan's order property covers
/// the list as a prefix. Bumps the elision counter on success.
bool MaybeElideSort(Database* db, const Operator& plan,
                    const std::vector<ExprPtr>& order_exprs,
                    const std::vector<bool>& desc) {
  if (!db->options().enable_sort_elision) return false;
  std::vector<OrderKey> want;
  for (size_t i = 0; i < order_exprs.size(); ++i) {
    if (order_exprs[i]->kind() != Expr::Kind::kColumn) return false;
    int c = static_cast<const ColumnExpr*>(order_exprs[i].get())->index();
    if (c < 0) return false;
    want.push_back({c, desc[i]});
  }
  if (!OrderSatisfies(plan.output_order(), want)) return false;
  ++db->stats()->sorts_elided;
  return true;
}

/// Wraps `op` in a sort on a single ascending column unless its reported
/// order already starts with that column (used to feed merge-based joins).
OperatorPtr EnsureSortedOn(OperatorPtr op, const std::string& column_name,
                           int column, ExecStats* stats) {
  if (OrderSatisfies(op->output_order(), {{column, false}})) return op;
  std::vector<ExprPtr> keys;
  keys.push_back(std::make_unique<ColumnExpr>(column_name, column));
  return std::make_unique<SortOp>(std::move(op), std::move(keys),
                                  std::vector<bool>{false}, stats);
}

}  // namespace

Result<OperatorPtr> PlanSelect(Database* db, SelectStmt* stmt) {
  if (stmt->from.empty()) {
    return Status::NotImplemented("SELECT without FROM");
  }

  // Resolve tables and build qualified schemas.
  std::vector<TableInfo*> tables;
  std::vector<Schema> qualified;
  for (const TableRef& ref : stmt->from) {
    TableInfo* t = db->GetTable(ref.table);
    if (t == nullptr) return Status::NotFound("no such table: " + ref.table);
    tables.push_back(t);
    qualified.push_back(QualifiedSchema(*t, ref.effective_alias()));
  }

  std::vector<ExprPtr> conjuncts = SplitConjuncts(std::move(stmt->where));

  // Claim single-table conjuncts for the first table.
  auto claim_for = [&conjuncts](const Schema& schema) {
    std::vector<ExprPtr> mine;
    for (auto& c : conjuncts) {
      if (c != nullptr && TryBind(c.get(), schema)) {
        mine.push_back(std::move(c));
      }
    }
    std::erase(conjuncts, nullptr);
    return mine;
  };

  OperatorPtr plan;
  {
    std::vector<ExprPtr> mine = claim_for(qualified[0]);
    OXML_ASSIGN_OR_RETURN(
        plan, PlanTableAccess(db, tables[0], qualified[0], std::move(mine)));
  }
  Schema combined = qualified[0];

  for (size_t i = 1; i < tables.size(); ++i) {
    std::vector<ExprPtr> inner_conjuncts = claim_for(qualified[i]);

    // Structural join: a pair of interval-containment conjuncts (the
    // ancestor–descendant pattern from the XPath translator) beats any
    // generic join — one merge pass instead of |A|·|D| predicate checks.
    IntervalJoin ij;
    if (db->options().enable_structural_join &&
        DetectIntervalJoin(conjuncts, qualified[i], combined, &ij)) {
      auto* lbin = static_cast<BinaryExpr*>(conjuncts[ij.lower_conjunct].get());
      ExprPtr desc_start =
          ij.lower_flipped ? lbin->TakeRight() : lbin->TakeLeft();
      ExprPtr anc_start =
          ij.lower_flipped ? lbin->TakeLeft() : lbin->TakeRight();
      auto* ubin = static_cast<BinaryExpr*>(conjuncts[ij.upper_conjunct].get());
      ExprPtr anc_end = ij.upper_flipped ? ubin->TakeLeft() : ubin->TakeRight();
      conjuncts[ij.lower_conjunct] = nullptr;
      conjuncts[ij.upper_conjunct] = nullptr;
      std::erase(conjuncts, nullptr);

      OXML_ASSIGN_OR_RETURN(
          OperatorPtr inner,
          PlanTableAccess(db, tables[i], qualified[i],
                          std::move(inner_conjuncts)));
      OXML_RETURN_NOT_OK(anc_start->Bind(plan->schema()));
      OXML_RETURN_NOT_OK(anc_end->Bind(plan->schema()));
      OXML_RETURN_NOT_OK(desc_start->Bind(inner->schema()));

      // Both inputs must stream in interval-start order; sort a side only
      // when its reported order is insufficient (index scans over the
      // start column and chained structural joins already qualify).
      auto* anc_col = static_cast<ColumnExpr*>(anc_start.get());
      plan = EnsureSortedOn(std::move(plan), anc_col->name(),
                            anc_col->index(), db->stats());
      auto* desc_col = static_cast<ColumnExpr*>(desc_start.get());
      inner = EnsureSortedOn(std::move(inner), desc_col->name(),
                             desc_col->index(), db->stats());

      if (db->options().enable_parallel_execution &&
          db->thread_pool() != nullptr) {
        plan = std::make_unique<ParallelStructuralJoinOp>(
            std::move(plan), std::move(inner), std::move(anc_start),
            std::move(anc_end), std::move(desc_start), ij.lower_strict,
            ij.upper_inclusive, db->thread_pool(), db->stats());
      } else {
        plan = std::make_unique<StructuralJoinOp>(
            std::move(plan), std::move(inner), std::move(anc_start),
            std::move(anc_end), std::move(desc_start), ij.lower_strict,
            ij.upper_inclusive, db->stats());
      }
      combined.Append(qualified[i]);

      // Leftover conjuncts (e.g. the Dewey child-axis depth check) attach
      // below as ordinary filters over the combined schema.
      std::vector<ExprPtr> evaluable;
      for (auto& c : conjuncts) {
        if (c != nullptr && TryBind(c.get(), combined)) {
          evaluable.push_back(std::move(c));
        }
      }
      std::erase(conjuncts, nullptr);
      ExprPtr filter = CombineConjuncts(std::move(evaluable));
      if (filter != nullptr) {
        OXML_RETURN_NOT_OK(filter->Bind(plan->schema()));
        plan = std::make_unique<FilterOp>(std::move(plan), std::move(filter));
      }
      continue;
    }

    // Find an equi-join conjunct linking `combined` and table i.
    ExprPtr join_pred;
    ExprPtr outer_key;
    ExprPtr inner_key;
    for (auto& c : conjuncts) {
      if (c == nullptr || c->kind() != Expr::Kind::kBinary) continue;
      auto* bin = static_cast<BinaryExpr*>(c.get());
      if (bin->op() != BinaryOp::kEq) continue;
      Expr* l = bin->left();
      Expr* r = bin->right();
      if (l->kind() != Expr::Kind::kColumn ||
          r->kind() != Expr::Kind::kColumn) {
        continue;
      }
      bool l_outer = TryBind(l, combined);
      bool r_inner = TryBind(r, qualified[i]);
      if (l_outer && r_inner) {
        outer_key = bin->TakeLeft();
        inner_key = bin->TakeRight();
      } else {
        bool r_outer = TryBind(r, combined);
        bool l_inner = TryBind(l, qualified[i]);
        if (r_outer && l_inner) {
          outer_key = bin->TakeRight();
          inner_key = bin->TakeLeft();
        } else {
          continue;
        }
      }
      c = nullptr;
      break;
    }
    std::erase(conjuncts, nullptr);

    if (inner_key != nullptr) {
      // Prefer an index-nested-loop join when the inner column leads an
      // index and the inner side has no extra sargable filters to exploit.
      int inner_col =
          static_cast<ColumnExpr*>(inner_key.get())->index();
      TableIndex* inl_index = nullptr;
      for (const auto& idx : tables[i]->indexes()) {
        if (!idx->column_indices.empty() &&
            idx->column_indices[0] == inner_col) {
          inl_index = idx.get();
          break;
        }
      }
      if (inl_index != nullptr) {
        std::vector<ExprPtr> outer_keys;
        outer_keys.push_back(std::move(outer_key));
        plan = std::make_unique<IndexNestedLoopJoinOp>(
            std::move(plan), tables[i], inl_index, qualified[i],
            std::move(outer_keys), db->stats());
        combined.Append(qualified[i]);
        // Inner-side filters run on the joined rows.
        ExprPtr residual = CombineConjuncts(std::move(inner_conjuncts));
        if (residual != nullptr) {
          OXML_RETURN_NOT_OK(residual->Bind(plan->schema()));
          plan = std::make_unique<FilterOp>(std::move(plan),
                                            std::move(residual));
        }
      } else {
        OXML_ASSIGN_OR_RETURN(
            OperatorPtr inner,
            PlanTableAccess(db, tables[i], qualified[i],
                            std::move(inner_conjuncts)));
        std::vector<ExprPtr> lk, rk;
        lk.push_back(std::move(outer_key));
        rk.push_back(std::move(inner_key));
        // Rebind the inner key against the inner plan's schema.
        OXML_RETURN_NOT_OK(rk[0]->Bind(inner->schema()));
        OXML_RETURN_NOT_OK(lk[0]->Bind(plan->schema()));
        // When both inputs already stream in join-key order (e.g. index
        // scans with an equality prefix ending at the key), a merge join
        // avoids building the hash table.
        bool can_merge = db->options().enable_merge_join;
        if (can_merge) {
          int lcol = static_cast<ColumnExpr*>(lk[0].get())->index();
          int rcol = static_cast<ColumnExpr*>(rk[0].get())->index();
          can_merge =
              OrderSatisfies(plan->output_order(), {{lcol, false}}) &&
              OrderSatisfies(inner->output_order(), {{rcol, false}});
        }
        if (can_merge) {
          plan = std::make_unique<MergeJoinOp>(std::move(plan),
                                               std::move(inner), std::move(lk),
                                               std::move(rk), db->stats());
        } else {
          plan = std::make_unique<HashJoinOp>(std::move(plan),
                                              std::move(inner), std::move(lk),
                                              std::move(rk), db->stats());
        }
        combined.Append(qualified[i]);
      }
    } else {
      OXML_ASSIGN_OR_RETURN(
          OperatorPtr inner,
          PlanTableAccess(db, tables[i], qualified[i],
                          std::move(inner_conjuncts)));
      plan = std::make_unique<NestedLoopJoinOp>(
          std::move(plan), std::move(inner), nullptr, db->stats());
      combined.Append(qualified[i]);
    }

    // Attach any conjuncts now evaluable over the combined schema.
    std::vector<ExprPtr> evaluable;
    for (auto& c : conjuncts) {
      if (c != nullptr && TryBind(c.get(), combined)) {
        evaluable.push_back(std::move(c));
      }
    }
    std::erase(conjuncts, nullptr);
    ExprPtr filter = CombineConjuncts(std::move(evaluable));
    if (filter != nullptr) {
      OXML_RETURN_NOT_OK(filter->Bind(plan->schema()));
      plan = std::make_unique<FilterOp>(std::move(plan), std::move(filter));
    }
  }

  if (!conjuncts.empty()) {
    return Status::InvalidArgument("WHERE references unknown columns: " +
                                   conjuncts[0]->ToString());
  }

  // Aggregation.
  bool has_agg = !stmt->group_by.empty();
  for (const SelectItem& item : stmt->items) {
    if (item.expr != nullptr && item.expr->ContainsAggregate()) {
      has_agg = true;
    }
  }

  bool sort_after_projection = has_agg;

  if (!has_agg) {
    // Sort before projection so ORDER BY can reference scan columns that
    // are not in the output list.
    if (!stmt->order_by.empty()) {
      std::vector<ExprPtr> order_exprs;
      std::vector<bool> desc;
      for (OrderItem& o : stmt->order_by) {
        OXML_RETURN_NOT_OK(o.expr->Bind(plan->schema()));
        order_exprs.push_back(std::move(o.expr));
        desc.push_back(o.desc);
      }
      if (!MaybeElideSort(db, *plan, order_exprs, desc)) {
        plan = std::make_unique<SortOp>(std::move(plan),
                                        std::move(order_exprs),
                                        std::move(desc), db->stats());
      }
    }
    // Projection ('*' expands to all columns).
    std::vector<ExprPtr> exprs;
    std::vector<Column> out_cols;
    for (SelectItem& item : stmt->items) {
      if (item.expr == nullptr) {
        for (size_t c = 0; c < plan->schema().size(); ++c) {
          const Column& col = plan->schema().column(c);
          exprs.push_back(std::make_unique<ColumnExpr>(col.name,
                                                       static_cast<int>(c)));
          out_cols.push_back(col);
        }
        continue;
      }
      OXML_RETURN_NOT_OK(item.expr->Bind(plan->schema()));
      std::string name =
          item.alias.empty() ? item.expr->ToString() : item.alias;
      out_cols.push_back({name, InferType(*item.expr, plan->schema())});
      exprs.push_back(std::move(item.expr));
    }
    plan = std::make_unique<ProjectOp>(std::move(plan), std::move(exprs),
                                       Schema(std::move(out_cols)));
  } else {
    // Aggregate plan: AggregateOp produces [group cols..., agg cols...],
    // then a projection maps select items onto those positions.
    std::vector<ExprPtr> group_exprs;
    std::vector<std::string> group_names;
    for (ExprPtr& g : stmt->group_by) {
      OXML_RETURN_NOT_OK(g->Bind(plan->schema()));
      group_names.push_back(g->ToString());
      group_exprs.push_back(std::move(g));
    }

    std::vector<AggregateSpec> specs;
    std::vector<std::string> agg_names;
    struct ItemSlot {
      int position;  // index into AggregateOp output
      std::string out_name;
      TypeId type;
    };
    std::vector<ItemSlot> slots;

    for (SelectItem& item : stmt->items) {
      if (item.expr == nullptr) {
        return Status::InvalidArgument("'*' not allowed with aggregates");
      }
      std::string out_name =
          item.alias.empty() ? item.expr->ToString() : item.alias;
      if (item.expr->ContainsAggregate()) {
        if (item.expr->kind() != Expr::Kind::kFunction) {
          return Status::NotImplemented(
              "expressions over aggregates are not supported");
        }
        auto* fn = static_cast<FunctionExpr*>(item.expr.get());
        AggregateSpec spec;
        spec.kind = fn->aggregate();
        TypeId out_type = InferType(*fn, plan->schema());
        if (!fn->args().empty() &&
            fn->args()[0]->kind() != Expr::Kind::kStar) {
          OXML_RETURN_NOT_OK(item.expr->Bind(plan->schema()));
          spec.arg = std::move(fn->mutable_args()[0]);
        }
        slots.push_back({static_cast<int>(group_exprs.size() +
                                          specs.size()),
                         out_name, out_type});
        agg_names.push_back(out_name);
        specs.push_back(std::move(spec));
      } else {
        // Must match a GROUP BY expression.
        OXML_RETURN_NOT_OK(item.expr->Bind(plan->schema()));
        std::string repr = item.expr->ToString();
        int pos = -1;
        for (size_t g = 0; g < group_names.size(); ++g) {
          if (group_names[g] == repr) {
            pos = static_cast<int>(g);
            break;
          }
        }
        if (pos < 0) {
          return Status::InvalidArgument(
              "non-aggregate select item must appear in GROUP BY: " + repr);
        }
        slots.push_back({pos, out_name, InferType(*item.expr, plan->schema())});
      }
    }

    // AggregateOp output schema.
    std::vector<Column> agg_cols;
    for (size_t g = 0; g < group_exprs.size(); ++g) {
      agg_cols.push_back({group_names[g],
                          InferType(*group_exprs[g], plan->schema())});
    }
    for (size_t a = 0; a < specs.size(); ++a) {
      agg_cols.push_back({agg_names[a], TypeId::kDouble});
    }
    plan = std::make_unique<AggregateOp>(std::move(plan),
                                         std::move(group_exprs),
                                         std::move(specs),
                                         Schema(std::move(agg_cols)));

    // Final projection.
    std::vector<ExprPtr> exprs;
    std::vector<Column> out_cols;
    for (const ItemSlot& slot : slots) {
      exprs.push_back(std::make_unique<ColumnExpr>(
          plan->schema().column(slot.position).name, slot.position));
      out_cols.push_back({slot.out_name, slot.type});
    }
    plan = std::make_unique<ProjectOp>(std::move(plan), std::move(exprs),
                                       Schema(std::move(out_cols)));
  }

  if (stmt->distinct) {
    plan = std::make_unique<DistinctOp>(std::move(plan));
  }

  if (sort_after_projection && !stmt->order_by.empty()) {
    std::vector<ExprPtr> order_exprs;
    std::vector<bool> desc;
    for (OrderItem& o : stmt->order_by) {
      OXML_RETURN_NOT_OK(o.expr->Bind(plan->schema()));
      order_exprs.push_back(std::move(o.expr));
      desc.push_back(o.desc);
    }
    if (!MaybeElideSort(db, *plan, order_exprs, desc)) {
      plan = std::make_unique<SortOp>(std::move(plan), std::move(order_exprs),
                                      std::move(desc), db->stats());
    }
  }

  if (stmt->limit.has_value()) {
    plan = std::make_unique<LimitOp>(std::move(plan), *stmt->limit);
  }
  return plan;
}

}  // namespace oxml
