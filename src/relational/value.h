#ifndef OXML_RELATIONAL_VALUE_H_
#define OXML_RELATIONAL_VALUE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/result.h"

namespace oxml {

/// SQL types supported by the engine. BLOB is used for Dewey order keys,
/// whose byte-wise comparison *is* document order.
enum class TypeId : uint8_t {
  kNull = 0,
  kInt = 1,     // 64-bit signed
  kDouble = 2,  // IEEE 754 double
  kText = 3,    // UTF-8 string
  kBlob = 4,    // uninterpreted bytes, memcmp-ordered
};

const char* TypeIdToString(TypeId type);

/// A single typed SQL value (nullable).
class Value {
 public:
  Value() : type_(TypeId::kNull) {}

  static Value Null() { return Value(); }
  static Value Int(int64_t v) {
    Value out;
    out.type_ = TypeId::kInt;
    out.int_ = v;
    return out;
  }
  static Value Double(double v) {
    Value out;
    out.type_ = TypeId::kDouble;
    out.double_ = v;
    return out;
  }
  static Value Text(std::string v) {
    Value out;
    out.type_ = TypeId::kText;
    out.str_ = std::move(v);
    return out;
  }
  static Value Blob(std::string v) {
    Value out;
    out.type_ = TypeId::kBlob;
    out.str_ = std::move(v);
    return out;
  }
  /// Boolean results of predicates are represented as INT 0/1.
  static Value Bool(bool b) { return Int(b ? 1 : 0); }

  TypeId type() const { return type_; }
  bool is_null() const { return type_ == TypeId::kNull; }

  int64_t AsInt() const { return int_; }
  double AsDouble() const {
    return type_ == TypeId::kInt ? static_cast<double>(int_) : double_;
  }
  const std::string& AsString() const { return str_; }

  /// Truthiness for WHERE evaluation: non-zero numeric, NULL is false.
  bool IsTruthy() const;

  /// Three-way comparison. Numeric types compare cross-type (INT vs DOUBLE);
  /// NULL sorts before everything; comparing TEXT with numeric orders by
  /// type id (well-defined, never equal). Returns <0, 0, >0.
  int Compare(const Value& other) const;

  bool operator==(const Value& other) const { return Compare(other) == 0; }
  bool operator!=(const Value& other) const { return Compare(other) != 0; }
  bool operator<(const Value& other) const { return Compare(other) < 0; }

  /// Display form (used by result printing and tests). Blobs print as hex.
  std::string ToString() const;

  /// Stable hash for hash joins / grouping (numeric 3 and 3.0 hash equal).
  size_t Hash() const;

 private:
  TypeId type_;
  int64_t int_ = 0;
  double double_ = 0.0;
  std::string str_;
};

/// A row of values.
using Row = std::vector<Value>;

/// Hash of a full row (order-sensitive).
size_t HashRow(const Row& row);

}  // namespace oxml

#endif  // OXML_RELATIONAL_VALUE_H_
