#ifndef OXML_RELATIONAL_HEAP_TABLE_H_
#define OXML_RELATIONAL_HEAP_TABLE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/relational/buffer_pool.h"
#include "src/relational/page.h"
#include "src/relational/schema.h"

namespace oxml {

/// A heap file: an unordered chain of slotted pages holding encoded rows.
/// Inserts go to the tail page (allocating new pages as needed); deletes
/// leave holes that in-page slot reuse reclaims.
///
/// Rows larger than kMaxInlineCell spill into a chain of overflow pages;
/// the slotted page then stores only a fixed-size overflow marker. Every
/// stored cell carries a one-byte tag distinguishing inline rows from
/// overflow markers. Overflow pages of deleted rows are not reclaimed
/// (there is no free-space map; acceptable for the workloads here).
class HeapTable {
 public:
  /// Rows longer than this are stored in overflow pages.
  static constexpr size_t kMaxInlineCell = kPageSize / 4;

  /// Creates a new heap (allocates its first page).
  static Result<std::unique_ptr<HeapTable>> Create(BufferPool* pool,
                                                   Schema schema);

  /// Re-attaches to an existing heap whose metadata was read from the
  /// persisted catalog (see Database::Open on an existing file).
  static std::unique_ptr<HeapTable> Attach(BufferPool* pool, Schema schema,
                                           uint32_t first_page,
                                           uint32_t last_page,
                                           uint64_t row_count,
                                           uint64_t page_chain_length,
                                           uint64_t data_bytes);

  uint32_t first_page() const { return first_page_; }
  uint32_t last_page() const { return last_page_; }

  /// The mutable bookkeeping that Insert/Delete/Update advance. Transaction
  /// rollback snapshots it at Begin and restores it alongside the page
  /// pre-images (first_page_ never changes after Create).
  struct Metadata {
    uint32_t last_page = kInvalidPageId;
    uint64_t row_count = 0;
    uint64_t page_chain_length = 0;
    uint64_t data_bytes = 0;
  };
  Metadata SnapshotMetadata() const {
    return {last_page_, row_count_, page_chain_length_, data_bytes_};
  }
  void RestoreMetadata(const Metadata& m) {
    last_page_ = m.last_page;
    row_count_ = m.row_count;
    page_chain_length_ = m.page_chain_length;
    data_bytes_ = m.data_bytes;
  }

  Result<Rid> Insert(const Row& row);

  /// Appends every row in order to the tail of the page chain, filling one
  /// Rid per row. Unlike repeated Insert — which re-fetches the tail page
  /// from the buffer pool for every row — the pinned tail handle is cached
  /// across the whole batch, and the avoided fetches are credited to
  /// BufferPool::saved_fetch_count(). Used by the bulk-load path.
  Status AppendBatch(const std::vector<Row>& rows, std::vector<Rid>* rids);

  Result<Row> Get(const Rid& rid) const;
  Status Delete(const Rid& rid);

  /// Updates in place when possible; otherwise moves the row, returning its
  /// new Rid (callers must then fix any secondary indexes).
  Result<Rid> Update(const Rid& rid, const Row& row);

  const Schema& schema() const { return schema_; }
  uint64_t row_count() const { return row_count_; }
  uint64_t page_chain_length() const { return page_chain_length_; }
  /// Approximate on-page bytes used by live rows (excludes page overhead).
  uint64_t data_bytes() const { return data_bytes_; }

  /// Forward scan over all live rows in page-chain order. With `max_pages`
  /// the scan covers at most that many pages starting at `page_id`, so a
  /// partitioned scan over [chain[i], chain[i+k]) sees every row exactly
  /// once (see PageChain).
  class Iterator {
   public:
    Iterator(const HeapTable* table, uint32_t page_id);
    Iterator(const HeapTable* table, uint32_t page_id, uint64_t max_pages);
    /// Advances to the next live row; returns false at end-of-heap.
    /// On true, `rid` and `row` are filled.
    Result<bool> Next(Rid* rid, Row* row);

   private:
    const HeapTable* table_;
    uint32_t page_id_;
    uint16_t next_slot_ = 0;
    uint64_t pages_left_ = UINT64_MAX;
  };

  Iterator Scan() const { return Iterator(this, first_page_); }

  /// The page ids of the heap chain in scan order (one buffer-pool fetch
  /// per page). ParallelScanOp slices this into per-thread partitions.
  Result<std::vector<uint32_t>> PageChain() const;

 private:
  /// Builds the tagged cell for `row`, writing overflow pages if needed.
  Result<std::string> MakeCell(const Row& row);
  /// Decodes a tagged cell (following the overflow chain if needed).
  Result<Row> ReadCell(std::string_view cell) const;

  HeapTable(BufferPool* pool, Schema schema, uint32_t first_page)
      : pool_(pool),
        schema_(std::move(schema)),
        first_page_(first_page),
        last_page_(first_page) {}

  BufferPool* pool_;
  Schema schema_;
  uint32_t first_page_;
  uint32_t last_page_;
  uint64_t row_count_ = 0;
  uint64_t page_chain_length_ = 1;
  uint64_t data_bytes_ = 0;
};

}  // namespace oxml

#endif  // OXML_RELATIONAL_HEAP_TABLE_H_
