#ifndef OXML_RELATIONAL_KEY_CODEC_H_
#define OXML_RELATIONAL_KEY_CODEC_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/relational/value.h"

namespace oxml {

/// Order-preserving key encoding: the byte-wise (memcmp) order of encoded
/// keys equals the Value::Compare order of the original composite keys.
/// This lets the B+tree store plain byte strings.
///
/// Per-component layout: a one-byte tag (0x00 NULL, 0x01 value) followed by
///   INT:    8 bytes big-endian with the sign bit flipped
///   DOUBLE: 8 bytes big-endian of the IEEE bits, sign-adjusted
///   TEXT/BLOB: bytes with 0x00 escaped as {0x00,0xFF}, terminated {0x00,0x00}
void EncodeKeyValue(const Value& v, std::string* out);

/// Encodes a composite key (concatenation of the component encodings).
std::string EncodeKey(const std::vector<Value>& values);
std::string EncodeKey(const Value& v);

/// Returns the smallest byte string strictly greater than every string with
/// prefix `key` — i.e. key with a 0xFF byte appended. Useful for building
/// exclusive upper bounds of prefix ranges over already-encoded keys.
std::string KeySuccessor(std::string_view key);

/// Returns the smallest blob strictly greater than every blob having `blob`
/// as a prefix (appends 0xFF at the *value* level; combined with the escape
/// scheme this bounds Dewey descendant ranges).
std::string BlobPrefixUpperBound(std::string_view blob);

}  // namespace oxml

#endif  // OXML_RELATIONAL_KEY_CODEC_H_
