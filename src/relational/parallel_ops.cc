#include "src/relational/parallel_ops.h"

#include <algorithm>

#include "src/relational/btree.h"
#include "src/relational/heap_table.h"
#include "src/relational/query_control.h"

namespace oxml {

namespace {

/// How many morsels to cut a scan or join into: a small multiple of the
/// worker count (pool workers + the calling thread) so stragglers can be
/// absorbed, without drowning small inputs in bookkeeping.
size_t TargetShards(const ThreadPool* pool) { return (pool->size() + 1) * 2; }

}  // namespace

// ------------------------------------------------------------- ParallelScan

ParallelScanOp::ParallelScanOp(TableInfo* table, Schema qualified_schema,
                               ThreadPool* pool, ExecStats* stats)
    : table_(table), pool_(pool), stats_(stats) {
  schema_ = std::move(qualified_schema);
}

ParallelScanOp::ParallelScanOp(TableInfo* table, TableIndex* index,
                               Schema qualified_schema,
                               std::optional<std::string> lower,
                               std::optional<std::string> upper,
                               size_t eq_prefix, ThreadPool* pool,
                               ExecStats* stats)
    : table_(table),
      index_(index),
      lower_(std::move(lower)),
      upper_(std::move(upper)),
      pool_(pool),
      stats_(stats) {
  schema_ = std::move(qualified_schema);
  // Same order property as the serial IndexScanOp: the index-column suffix
  // past the pinned equality prefix (partition concatenation preserves it).
  for (size_t k = eq_prefix; k < index->column_indices.size(); ++k) {
    order_.push_back({index->column_indices[k], false});
  }
}

Status ParallelScanOp::Open() {
  partitions_.clear();
  part_ = 0;
  pos_ = 0;
  return index_ == nullptr ? OpenHeap() : OpenIndex();
}

Status ParallelScanOp::OpenHeap() {
  OXML_ASSIGN_OR_RETURN(std::vector<uint32_t> chain,
                        table_->heap()->PageChain());
  size_t shards = std::min(TargetShards(pool_), chain.size());
  if (shards == 0) return Status::OK();
  partitions_.resize(shards);
  if (stats_ != nullptr) {
    stats_->morsels += shards;
    stats_->threads_used.UpdateMax(std::min(pool_->size() + 1, shards));
  }
  // Pool workers carry no thread-local ReadSnapshot of their own; hand
  // them the statement's so every shard reads the same committed view.
  const ReadSnapshot* snap = CurrentReadSnapshot();
  return pool_->ParallelFor(shards, [&, snap](size_t i) -> Status {
    SnapshotTaskScope scope(snap);
    // ParallelFor re-installed the statement's QueryControl on this worker;
    // poll it per row and charge the partition buffer against its budget.
    BudgetCharger budget;
    size_t begin = i * chain.size() / shards;
    size_t end = (i + 1) * chain.size() / shards;
    HeapTable::Iterator it(table_->heap(), chain[begin], end - begin);
    Rid rid;
    Row row;
    while (true) {
      OXML_RETURN_NOT_OK(CheckCurrentControl());
      OXML_ASSIGN_OR_RETURN(bool has, it.Next(&rid, &row));
      if (!has) break;
      OXML_RETURN_NOT_OK(budget.AddRow(row));
      partitions_[i].push_back(std::move(row));
      if (stats_ != nullptr) ++stats_->rows_scanned;
    }
    return Status::OK();
  });
}

Status ParallelScanOp::OpenIndex() {
  if (stats_ != nullptr) ++stats_->index_probes;
  const BPlusTree& tree = index_->tree;
  // Candidate separators over the whole tree, narrowed to (lower, upper).
  // Separators drawn from the live tree stay valid cut points for a
  // snapshot view too: the shard ranges are disjoint and cover
  // [lower, upper) no matter which keys the separators name.
  std::vector<std::string> seps = tree.SplitKeys(TargetShards(pool_));
  std::vector<std::optional<std::string>> bounds;
  bounds.push_back(lower_);
  for (auto& s : seps) {
    if (lower_.has_value() && s <= *lower_) continue;
    if (upper_.has_value() && s >= *upper_) continue;
    bounds.emplace_back(std::move(s));
  }
  bounds.push_back(upper_);
  size_t shards = bounds.size() - 1;
  partitions_.resize(shards);
  if (stats_ != nullptr) {
    stats_->morsels += shards;
    stats_->threads_used.UpdateMax(std::min(pool_->size() + 1, shards));
  }
  const ReadSnapshot* snap = CurrentReadSnapshot();
  return pool_->ParallelFor(shards, [&, snap](size_t i) -> Status {
    SnapshotTaskScope scope(snap);
    BudgetCharger budget;
    IndexCursor it = bounds[i].has_value() ? index_->ScanFrom(*bounds[i])
                                           : index_->ScanBegin();
    const std::optional<std::string>& stop = bounds[i + 1];
    while (it.valid() && !(stop.has_value() && it.key() >= *stop)) {
      OXML_RETURN_NOT_OK(CheckCurrentControl());
      OXML_ASSIGN_OR_RETURN(Row row, table_->heap()->Get(it.rid()));
      OXML_RETURN_NOT_OK(budget.AddRow(row));
      partitions_[i].push_back(std::move(row));
      if (stats_ != nullptr) ++stats_->rows_scanned;
      it.Next();
    }
    return Status::OK();
  });
}

Result<bool> ParallelScanOp::Next(Row* row) {
  while (part_ < partitions_.size()) {
    if (pos_ < partitions_[part_].size()) {
      *row = std::move(partitions_[part_][pos_++]);
      return true;
    }
    ++part_;
    pos_ = 0;
  }
  return false;
}

void ParallelScanOp::Close() {
  partitions_.clear();
  partitions_.shrink_to_fit();
}

std::string ParallelScanOp::Name() const {
  if (index_ == nullptr) return "ParallelSeqScan(" + table_->name() + ")";
  std::string range =
      lower_.has_value() || upper_.has_value() ? " range" : " full";
  return "ParallelIndexScan(" + table_->name() + "." + index_->name + range +
         ")";
}

// --------------------------------------------------- ParallelStructuralJoin

ParallelStructuralJoinOp::ParallelStructuralJoinOp(
    OperatorPtr ancestors, OperatorPtr descendants, ExprPtr anc_start,
    ExprPtr anc_end, ExprPtr desc_start, bool lower_strict,
    bool upper_inclusive, ThreadPool* pool, ExecStats* stats)
    : anc_(std::move(ancestors)),
      desc_(std::move(descendants)),
      anc_start_(std::move(anc_start)),
      anc_end_(std::move(anc_end)),
      desc_start_(std::move(desc_start)),
      lower_strict_(lower_strict),
      upper_inclusive_(upper_inclusive),
      pool_(pool),
      stats_(stats) {
  schema_ = anc_->schema();
  schema_.Append(desc_->schema());
  // Same output-order property as the serial StructuralJoinOp.
  if (desc_start_->kind() == Expr::Kind::kColumn) {
    int c = static_cast<const ColumnExpr*>(desc_start_.get())->index();
    if (c >= 0) {
      order_.push_back({static_cast<int>(anc_->schema().size()) + c, false});
    }
  }
}

bool ParallelStructuralJoinOp::Contains(const Entry& e,
                                        const Value& start) const {
  if (e.start.is_null() || e.end.is_null() || start.is_null()) return false;
  int lo = start.Compare(e.start);
  if (lower_strict_ ? lo <= 0 : lo < 0) return false;
  int hi = start.Compare(e.end);
  return upper_inclusive_ ? hi <= 0 : hi < 0;
}

Status ParallelStructuralJoinOp::JoinPartition(
    const std::vector<Entry>& ancs, size_t anc_begin, size_t anc_end,
    const std::vector<Entry>& descs, size_t desc_begin, size_t desc_end,
    std::vector<Row>* out) const {
  // The serial algorithm, confined to one independent interval group:
  // push ancestors whose start precedes the descendant's, pop expired
  // intervals, emit surviving stack entries bottom-to-top with the same
  // emit-time Contains() re-check (so arbitrary overlap stays correct).
  BudgetCharger budget;
  size_t next = anc_begin;
  std::vector<const Entry*> stack;
  for (size_t d = desc_begin; d < desc_end; ++d) {
    OXML_RETURN_NOT_OK(CheckCurrentControl());
    const Value& start = descs[d].start;
    while (next < anc_end) {
      int c = ancs[next].start.Compare(start);
      if (!(lower_strict_ ? c < 0 : c <= 0)) break;
      stack.push_back(&ancs[next]);
      ++next;
    }
    while (!stack.empty()) {
      const Entry* top = stack.back();
      bool expired = top->end.is_null() ||
                     (upper_inclusive_ ? top->end.Compare(start) < 0
                                       : top->end.Compare(start) <= 0);
      if (!expired) break;
      stack.pop_back();
    }
    for (const Entry* e : stack) {
      if (!Contains(*e, start)) continue;
      Row joined;
      joined.reserve(e->row.size() + descs[d].row.size());
      joined.insert(joined.end(), e->row.begin(), e->row.end());
      joined.insert(joined.end(), descs[d].row.begin(), descs[d].row.end());
      OXML_RETURN_NOT_OK(budget.AddRow(joined));
      out->push_back(std::move(joined));
    }
  }
  return Status::OK();
}

Status ParallelStructuralJoinOp::Open() {
  if (stats_ != nullptr) {
    ++stats_->joins_structural;
    ++stats_->parallel_joins;
  }
  out_.clear();
  part_ = 0;
  pos_ = 0;

  // Drain both inputs, evaluating interval columns once per row. Rows with
  // NULL starts are dropped here — the serial operator likewise never
  // pushes (ancestors) or matches (descendants) them.
  BudgetCharger budget;
  std::vector<Entry> ancs;
  OXML_RETURN_NOT_OK(anc_->Open());
  {
    Row row;
    while (true) {
      OXML_ASSIGN_OR_RETURN(bool has, anc_->Next(&row));
      if (!has) break;
      Entry e;
      OXML_ASSIGN_OR_RETURN(e.start, anc_start_->Eval(row));
      if (e.start.is_null()) continue;
      OXML_ASSIGN_OR_RETURN(e.end, anc_end_->Eval(row));
      OXML_RETURN_NOT_OK(budget.AddRow(row));
      e.row = std::move(row);
      ancs.push_back(std::move(e));
    }
  }
  std::vector<Entry> descs;
  OXML_RETURN_NOT_OK(desc_->Open());
  {
    Row row;
    while (true) {
      OXML_ASSIGN_OR_RETURN(bool has, desc_->Next(&row));
      if (!has) break;
      Entry e;
      OXML_ASSIGN_OR_RETURN(e.start, desc_start_->Eval(row));
      if (e.start.is_null()) continue;
      OXML_RETURN_NOT_OK(budget.AddRow(row));
      e.row = std::move(row);
      descs.push_back(std::move(e));
    }
  }

  // Find every position where the ancestor stream can be cut: interval i
  // starts strictly after the maximum end seen so far, so no containment
  // pair spans the cut. (A NULL end extends nothing — such an interval
  // contains no descendant.)
  std::vector<size_t> cuts;  // cut before these indices
  {
    const Value* max_end = nullptr;
    for (size_t i = 0; i < ancs.size(); ++i) {
      if (i > 0 && (max_end == nullptr ||
                    ancs[i].start.Compare(*max_end) > 0)) {
        cuts.push_back(i);
        max_end = nullptr;
      }
      if (!ancs[i].end.is_null() &&
          (max_end == nullptr || ancs[i].end.Compare(*max_end) > 0)) {
        max_end = &ancs[i].end;
      }
    }
  }

  // Keep at most target-1 cuts, evenly spaced: dropping a cut merely
  // merges two independent groups, which stays correct.
  size_t target = TargetShards(pool_);
  if (cuts.size() + 1 > target) {
    std::vector<size_t> kept;
    for (size_t i = 1; i < target; ++i) {
      kept.push_back(cuts[i * cuts.size() / target]);
    }
    kept.erase(std::unique(kept.begin(), kept.end()), kept.end());
    cuts = std::move(kept);
  }

  // Partition boundaries over ancestors, plus each group's max end
  // (recomputed after the merge) for descendant assignment.
  struct Part {
    size_t anc_begin, anc_end;
    const Value* max_end = nullptr;
    size_t desc_begin = 0, desc_end = 0;
  };
  std::vector<Part> parts;
  {
    size_t begin = 0;
    for (size_t ci = 0; ci <= cuts.size(); ++ci) {
      size_t end = ci < cuts.size() ? cuts[ci] : ancs.size();
      Part p{begin, end};
      for (size_t i = begin; i < end; ++i) {
        if (!ancs[i].end.is_null() &&
            (p.max_end == nullptr ||
             ancs[i].end.Compare(*p.max_end) > 0)) {
          p.max_end = &ancs[i].end;
        }
      }
      parts.push_back(p);
      begin = end;
    }
  }

  // Assign each descendant to the first group whose max end has not been
  // passed — the only group that can contain it (groups are disjoint and
  // in start order, descendants arrive sorted on start). Descendants past
  // the last group match nothing and are dropped.
  {
    size_t p = 0;
    size_t d = 0;
    for (; d < descs.size() && p < parts.size(); ++d) {
      while (p < parts.size() &&
             (parts[p].max_end == nullptr ||
              parts[p].max_end->Compare(descs[d].start) < 0)) {
        ++p;
        if (p < parts.size()) {
          parts[p].desc_begin = d;
          parts[p].desc_end = d;
        }
      }
      if (p < parts.size()) parts[p].desc_end = d + 1;
    }
  }

  size_t shards = parts.size();
  out_.resize(shards);
  if (stats_ != nullptr) {
    stats_->morsels += shards;
    stats_->threads_used.UpdateMax(std::min(pool_->size() + 1, shards));
  }
  return pool_->ParallelFor(shards, [&](size_t i) -> Status {
    return JoinPartition(ancs, parts[i].anc_begin, parts[i].anc_end, descs,
                         parts[i].desc_begin, parts[i].desc_end, &out_[i]);
  });
}

Result<bool> ParallelStructuralJoinOp::Next(Row* row) {
  while (part_ < out_.size()) {
    if (pos_ < out_[part_].size()) {
      *row = std::move(out_[part_][pos_++]);
      return true;
    }
    ++part_;
    pos_ = 0;
  }
  return false;
}

void ParallelStructuralJoinOp::Close() {
  anc_->Close();
  desc_->Close();
  out_.clear();
  out_.shrink_to_fit();
}

std::string ParallelStructuralJoinOp::Name() const {
  return "ParallelStructuralJoin(" + desc_start_->ToString() +
         (lower_strict_ ? " > " : " >= ") + anc_start_->ToString() + " AND " +
         desc_start_->ToString() + (upper_inclusive_ ? " <= " : " < ") +
         anc_end_->ToString() + ")";
}

void ParallelStructuralJoinOp::Describe(int indent, std::string* out) const {
  Operator::Describe(indent, out);
  anc_->Describe(indent + 1, out);
  desc_->Describe(indent + 1, out);
}

}  // namespace oxml
