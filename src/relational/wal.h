#ifndef OXML_RELATIONAL_WAL_H_
#define OXML_RELATIONAL_WAL_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "src/common/result.h"
#include "src/relational/buffer_pool.h"
#include "src/relational/page.h"

namespace oxml {

struct FaultPlan;

/// CRC32 (IEEE 802.3 polynomial, reflected) over `data`. Exposed for tests.
uint32_t Crc32(const char* data, size_t len, uint32_t seed = 0);

/// Configuration of the write-ahead log.
struct WalOptions {
  /// fsync the log as part of Commit(). Turning this off trades the
  /// durability of the most recent commits for throughput (the classic
  /// "synchronous = off" mode); the log is still written, so recovery
  /// replays whatever the OS persisted.
  bool sync_on_commit = true;
  /// Group commit: fsync only every Nth commit (1 = every commit). Commits
  /// between syncs are buffered by the OS and may be lost on a crash, but
  /// never torn across the durability boundary thanks to CRC framing.
  size_t group_commit_every = 1;
};

/// What a tail-tolerant log scan recovered: the latest committed image of
/// every page mentioned by a committed transaction, in log order.
struct WalRecovery {
  std::map<uint32_t, std::string> pages;  ///< page id -> last committed image
  uint64_t committed_txns = 0;
  uint64_t replayed_images = 0;   ///< page-image records inside committed txns
  uint64_t discarded_records = 0; ///< records after the last commit (torn or
                                  ///< uncommitted tail)
  uint64_t last_commit_lsn = 0;   ///< highest commit LSN among durable commit
                                  ///< records (0 for pre-LSN logs)
  bool tail_damaged = false;      ///< scan stopped at a torn/corrupt record
};

/// An append-only, CRC32-framed write-ahead log of physical page images.
///
/// Record framing (little-endian):
///   [u8 type][u64 txn_id][u32 page_id][u32 payload_len][payload][u32 crc]
/// with crc computed over everything before it. A file begins with a
/// 12-byte header: magic "OXWL", format version, zero padding.
///
/// Commit protocol: the committing transaction appends one page-image
/// record per page it dirtied, then a commit record, then (by default)
/// fsyncs. Replay applies page images of committed transactions in log
/// order, so the last committed image of a page wins; anything after the
/// last durable commit record — including torn tails — is ignored.
class WriteAheadLog {
 public:
  static constexpr uint32_t kMagic = 0x4C57584Fu;  // "OXWL"
  static constexpr uint32_t kVersion = 1;
  static constexpr size_t kHeaderSize = 12;

  enum class RecordType : uint8_t {
    kPageImage = 1,  ///< payload = kPageSize bytes, the page's full image
    kCommit = 2,     ///< payload = 8-byte commit LSN (or empty in pre-LSN
                     ///< logs); everything since the previous commit belongs
                     ///< to txn_id
  };

  /// Opens (creating or validating) the log at `path`. An existing log is
  /// appended to — call Reset() after replaying it. `fault` (optional)
  /// routes every log I/O through the fault-injection schedule.
  static Result<std::unique_ptr<WriteAheadLog>> Open(
      const std::string& path, const WalOptions& options = {},
      std::shared_ptr<FaultPlan> fault = nullptr);

  ~WriteAheadLog();

  WriteAheadLog(const WriteAheadLog&) = delete;
  WriteAheadLog& operator=(const WriteAheadLog&) = delete;

  /// Appends a page-image redo record for the transaction being built.
  Status AppendPageImage(uint32_t page_id, const char* data);

  /// Appends the commit record and makes the transaction durable per the
  /// sync policy. Returns only after the commit is on its way to disk
  /// (fully fsynced when sync_on_commit && the group-commit quota is met).
  /// `commit_lsn` is the buffer pool's monotone snapshot LSN for this
  /// commit; it rides in the record payload so recovery can reseed the
  /// counter past every durable commit (0 = caller doesn't track LSNs).
  Status Commit(uint64_t commit_lsn = 0);

  /// Forces an fsync of everything appended so far (flushes the group-
  /// commit window).
  Status Sync();

  /// Truncates the log back to its header after a checkpoint made the data
  /// file current, and fsyncs. All previously logged history is discarded.
  Status Reset();

  /// Scans the log at `path` without opening it for writing. A missing
  /// file yields an empty recovery; a present file with a bad header is an
  /// IOError (it is not a WAL). Torn or corrupt tails stop the scan
  /// cleanly — that is the expected shape of a crash.
  static Result<WalRecovery> Recover(const std::string& path);

  // ------------------------------------------------------------ accounting

  uint64_t bytes_appended() const { return bytes_appended_; }
  uint64_t size_bytes() const { return size_bytes_; }
  uint64_t page_images() const { return page_images_; }
  uint64_t commits() const { return commits_; }
  uint64_t syncs() const { return syncs_; }
  const std::string& path() const { return path_; }

  /// Attaches the ExecStats retry counter: injected-transient log I/O
  /// failures absorbed by the bounded backoff loop are counted here.
  void set_retry_counter(IoRetryCounter retries) {
    retries_ = std::move(retries);
  }

 private:
  WriteAheadLog(int fd, std::string path, WalOptions options,
                std::shared_ptr<FaultPlan> fault)
      : fd_(fd),
        path_(std::move(path)),
        options_(options),
        fault_(std::move(fault)) {}

  /// Appends one framed record (write-looped, EINTR-safe, fault-checked).
  Status AppendRecord(RecordType type, uint64_t txn_id, uint32_t page_id,
                      const char* payload, size_t payload_len);
  Status WriteAll(const char* data, size_t len);

  int fd_;
  std::string path_;
  WalOptions options_;
  std::shared_ptr<FaultPlan> fault_;
  IoRetryCounter retries_;

  uint64_t next_txn_id_ = 1;
  uint64_t size_bytes_ = 0;  // current file size including header
  uint64_t bytes_appended_ = 0;
  uint64_t page_images_ = 0;
  uint64_t commits_ = 0;
  uint64_t syncs_ = 0;
  size_t unsynced_commits_ = 0;
};

}  // namespace oxml

#endif  // OXML_RELATIONAL_WAL_H_
