#include "src/relational/btree.h"

#include <algorithm>
#include <cassert>

namespace oxml {

namespace {

/// Total order on (key, rid) entry pairs.
int CompareEntry(std::string_view ak, const Rid& ar, std::string_view bk,
                 const Rid& br) {
  int c = ak.compare(bk);
  if (c != 0) return c < 0 ? -1 : 1;
  if (ar < br) return -1;
  if (br < ar) return 1;
  return 0;
}

constexpr Rid kMinRid{0, 0};
constexpr Rid kMaxRid{0xFFFFFFFFu, 0xFFFFu};

}  // namespace

struct BPlusTree::Node {
  explicit Node(bool leaf) : is_leaf(leaf) {}
  bool is_leaf;
};

struct BPlusTree::Leaf : BPlusTree::Node {
  Leaf() : Node(true) {}
  std::vector<std::string> keys;
  std::vector<Rid> rids;
  Leaf* next = nullptr;
};

struct BPlusTree::Internal : BPlusTree::Node {
  Internal() : Node(false) {}
  // children[i] holds entries with composite < (keys[i], seprids[i]);
  // children.back() holds the rest.
  std::vector<std::string> keys;
  std::vector<Rid> seprids;
  std::vector<Node*> children;
};

namespace {

void FreeNode(BPlusTree::Node* n) {
  if (n == nullptr) return;
  if (!n->is_leaf) {
    auto* in = static_cast<BPlusTree::Internal*>(n);
    for (BPlusTree::Node* c : in->children) FreeNode(c);
    delete in;
  } else {
    delete static_cast<BPlusTree::Leaf*>(n);
  }
}

/// Index of the child to descend into for composite (key, rid).
size_t ChildIndex(const BPlusTree::Internal& in, std::string_view key,
                  const Rid& rid) {
  size_t lo = 0;
  size_t hi = in.keys.size();
  while (lo < hi) {
    size_t mid = (lo + hi) / 2;
    // Descend left of separator mid iff composite < separator.
    if (CompareEntry(key, rid, in.keys[mid], in.seprids[mid]) < 0) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

/// First position in the leaf with composite >= (key, rid).
size_t LeafLowerBound(const BPlusTree::Leaf& leaf, std::string_view key,
                      const Rid& rid) {
  size_t lo = 0;
  size_t hi = leaf.keys.size();
  while (lo < hi) {
    size_t mid = (lo + hi) / 2;
    if (CompareEntry(leaf.keys[mid], leaf.rids[mid], key, rid) < 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

struct SplitResult {
  std::string sep_key;
  Rid sep_rid;
  BPlusTree::Node* right = nullptr;
};

}  // namespace

BPlusTree::BPlusTree() { root_ = new Leaf(); }

BPlusTree::~BPlusTree() { FreeNode(root_); }

namespace {

/// Recursive insert; fills `split` when the child node split.
/// Returns false when the exact (key, rid) entry already existed.
bool InsertRec(BPlusTree::Node* node, std::string_view key, const Rid& rid,
               SplitResult* split) {
  if (node->is_leaf) {
    auto* leaf = static_cast<BPlusTree::Leaf*>(node);
    size_t pos = LeafLowerBound(*leaf, key, rid);
    if (pos < leaf->keys.size() &&
        CompareEntry(leaf->keys[pos], leaf->rids[pos], key, rid) == 0) {
      return false;  // duplicate entry
    }
    leaf->keys.insert(leaf->keys.begin() + pos, std::string(key));
    leaf->rids.insert(leaf->rids.begin() + pos, rid);
    if (leaf->keys.size() > BPlusTree::kNodeCapacity) {
      auto* right = new BPlusTree::Leaf();
      size_t half = leaf->keys.size() / 2;
      right->keys.assign(leaf->keys.begin() + half, leaf->keys.end());
      right->rids.assign(leaf->rids.begin() + half, leaf->rids.end());
      leaf->keys.resize(half);
      leaf->rids.resize(half);
      right->next = leaf->next;
      leaf->next = right;
      split->sep_key = right->keys.front();
      split->sep_rid = right->rids.front();
      split->right = right;
    }
    return true;
  }
  auto* in = static_cast<BPlusTree::Internal*>(node);
  size_t idx = ChildIndex(*in, key, rid);
  SplitResult child_split;
  bool inserted = InsertRec(in->children[idx], key, rid, &child_split);
  if (child_split.right != nullptr) {
    in->keys.insert(in->keys.begin() + idx, std::move(child_split.sep_key));
    in->seprids.insert(in->seprids.begin() + idx, child_split.sep_rid);
    in->children.insert(in->children.begin() + idx + 1, child_split.right);
    if (in->keys.size() > BPlusTree::kNodeCapacity) {
      auto* right = new BPlusTree::Internal();
      size_t mid = in->keys.size() / 2;  // separator promoted to the parent
      split->sep_key = in->keys[mid];
      split->sep_rid = in->seprids[mid];
      right->keys.assign(in->keys.begin() + mid + 1, in->keys.end());
      right->seprids.assign(in->seprids.begin() + mid + 1, in->seprids.end());
      right->children.assign(in->children.begin() + mid + 1,
                             in->children.end());
      in->keys.resize(mid);
      in->seprids.resize(mid);
      in->children.resize(mid + 1);
      split->right = right;
    }
  }
  return inserted;
}

}  // namespace

void BPlusTree::Insert(std::string_view key, const Rid& rid) {
  SplitResult split;
  bool inserted = InsertRec(root_, key, rid, &split);
  if (split.right != nullptr) {
    auto* new_root = new Internal();
    new_root->keys.push_back(std::move(split.sep_key));
    new_root->seprids.push_back(split.sep_rid);
    new_root->children.push_back(root_);
    new_root->children.push_back(split.right);
    root_ = new_root;
    ++height_;
  }
  if (inserted) {
    ++size_;
    key_bytes_ += key.size();
  }
}

Status BPlusTree::BulkBuild(std::vector<Entry>&& entries) {
  if (size_ != 0 || !root_->is_leaf ||
      !static_cast<Leaf*>(root_)->keys.empty()) {
    return Status::InvalidArgument("BulkBuild requires an empty tree");
  }
  for (size_t i = 1; i < entries.size(); ++i) {
    if (CompareEntry(entries[i - 1].first, entries[i - 1].second,
                     entries[i].first, entries[i].second) >= 0) {
      return Status::InvalidArgument(
          "BulkBuild requires strictly sorted (key, rid) entries");
    }
  }
  if (entries.empty()) return Status::OK();

  // Pack leaves at ~3/4 fill so post-load inserts have headroom. Entries
  // are spread evenly across ceil(n / fill) leaves, which keeps every leaf
  // at >= fill/2 entries (no underfull tail leaf).
  constexpr size_t kFill = kNodeCapacity * 3 / 4;
  const size_t n = entries.size();
  size_t key_bytes = 0;
  const size_t num_leaves = (n + kFill - 1) / kFill;
  const size_t base = n / num_leaves;
  const size_t extra = n % num_leaves;

  // Each level is built as (node, first entry of its subtree); the first
  // entries of nodes 1.. become the parent's separators.
  struct Item {
    Node* node;
    const std::string* first_key;
    const Rid* first_rid;
  };
  std::vector<Item> level;
  level.reserve(num_leaves);
  Leaf* prev = nullptr;
  size_t next_entry = 0;
  for (size_t i = 0; i < num_leaves; ++i) {
    auto* leaf = new Leaf();
    const size_t take = base + (i < extra ? 1 : 0);
    leaf->keys.reserve(take);
    leaf->rids.reserve(take);
    for (size_t j = 0; j < take; ++j) {
      key_bytes += entries[next_entry].first.size();
      leaf->keys.push_back(std::move(entries[next_entry].first));
      leaf->rids.push_back(entries[next_entry].second);
      ++next_entry;
    }
    if (prev != nullptr) prev->next = leaf;
    prev = leaf;
    level.push_back(Item{leaf, &leaf->keys.front(), &leaf->rids.front()});
  }
  assert(next_entry == n);

  // Stack internal levels until a single root remains; same even spread,
  // aiming for ~3/4 of the max fanout per internal node.
  constexpr size_t kFanout = (kNodeCapacity + 1) * 3 / 4;
  size_t levels = 1;
  while (level.size() > 1) {
    const size_t num_nodes = (level.size() + kFanout - 1) / kFanout;
    const size_t nbase = level.size() / num_nodes;
    const size_t nextra = level.size() % num_nodes;
    std::vector<Item> up;
    up.reserve(num_nodes);
    size_t child = 0;
    for (size_t i = 0; i < num_nodes; ++i) {
      auto* in = new Internal();
      const size_t take = nbase + (i < nextra ? 1 : 0);
      in->children.reserve(take);
      for (size_t j = 0; j < take; ++j) {
        const Item& it = level[child++];
        if (j > 0) {
          // Separator = first entry of the right sibling's subtree, so
          // ChildIndex's "composite < separator goes left" matches the
          // actual partition exactly.
          in->keys.push_back(*it.first_key);
          in->seprids.push_back(*it.first_rid);
        }
        in->children.push_back(it.node);
      }
      // The subtree's first entry is its leftmost child's first entry.
      up.push_back(Item{in, level[child - take].first_key,
                        level[child - take].first_rid});
    }
    level = std::move(up);
    ++levels;
  }

  FreeNode(root_);  // the initial empty leaf
  root_ = level.front().node;
  size_ = n;
  height_ = levels;
  key_bytes_ = key_bytes;
  return Status::OK();
}

namespace {

/// Shared cursor for the CheckStructure() walk.
struct AuditState {
  const BPlusTree::Leaf* prev_leaf = nullptr;
  const std::string* last_key = nullptr;
  const Rid* last_rid = nullptr;
  size_t entries = 0;
  size_t bytes = 0;
  bool saw_leaf = false;
  BPlusTree::StructureInfo info;
};

/// Depth-first audit. `lo`/`hi` are the separator bounds inherited from
/// ancestors (null = unbounded); entries must be in [lo, hi).
Status AuditNode(const BPlusTree::Node* node, size_t depth,
                 const std::string* lo_key, const Rid* lo_rid,
                 const std::string* hi_key, const Rid* hi_rid,
                 AuditState* st) {
  if (node->is_leaf) {
    const auto* leaf = static_cast<const BPlusTree::Leaf*>(node);
    if (!st->saw_leaf) {
      st->info.depth = depth;
      st->info.min_leaf_entries = leaf->keys.size();
      st->info.max_leaf_entries = leaf->keys.size();
      st->saw_leaf = true;
    } else {
      if (depth != st->info.depth) {
        return Status::Internal("leaves at differing depths");
      }
      st->info.min_leaf_entries =
          std::min(st->info.min_leaf_entries, leaf->keys.size());
      st->info.max_leaf_entries =
          std::max(st->info.max_leaf_entries, leaf->keys.size());
    }
    if (st->prev_leaf != nullptr && st->prev_leaf->next != leaf) {
      return Status::Internal("leaf chain does not match tree order");
    }
    st->prev_leaf = leaf;
    ++st->info.leaves;
    if (leaf->keys.size() != leaf->rids.size()) {
      return Status::Internal("leaf keys/rids length mismatch");
    }
    if (leaf->keys.size() > BPlusTree::kNodeCapacity) {
      return Status::Internal("leaf over capacity");
    }
    for (size_t i = 0; i < leaf->keys.size(); ++i) {
      const std::string& k = leaf->keys[i];
      const Rid& r = leaf->rids[i];
      if (st->last_key != nullptr &&
          CompareEntry(*st->last_key, *st->last_rid, k, r) >= 0) {
        return Status::Internal("entries not strictly increasing");
      }
      if (lo_key != nullptr && CompareEntry(k, r, *lo_key, *lo_rid) < 0) {
        return Status::Internal("entry below ancestor separator");
      }
      if (hi_key != nullptr && CompareEntry(k, r, *hi_key, *hi_rid) >= 0) {
        return Status::Internal("entry not below ancestor separator");
      }
      st->last_key = &k;
      st->last_rid = &r;
      ++st->entries;
      st->bytes += k.size();
    }
    return Status::OK();
  }
  const auto* in = static_cast<const BPlusTree::Internal*>(node);
  if (in->keys.empty() || in->seprids.size() != in->keys.size() ||
      in->children.size() != in->keys.size() + 1) {
    return Status::Internal("internal node shape invalid");
  }
  if (in->keys.size() > BPlusTree::kNodeCapacity) {
    return Status::Internal("internal node over capacity");
  }
  for (size_t i = 0; i <= in->keys.size(); ++i) {
    const std::string* clo_key = i == 0 ? lo_key : &in->keys[i - 1];
    const Rid* clo_rid = i == 0 ? lo_rid : &in->seprids[i - 1];
    const std::string* chi_key = i == in->keys.size() ? hi_key : &in->keys[i];
    const Rid* chi_rid = i == in->keys.size() ? hi_rid : &in->seprids[i];
    if (clo_key != nullptr && chi_key != nullptr &&
        CompareEntry(*clo_key, *clo_rid, *chi_key, *chi_rid) >= 0) {
      return Status::Internal("separators not strictly increasing");
    }
    OXML_RETURN_NOT_OK(
        AuditNode(in->children[i], depth + 1, clo_key, clo_rid, chi_key,
                  chi_rid, st));
  }
  return Status::OK();
}

}  // namespace

Result<BPlusTree::StructureInfo> BPlusTree::CheckStructure() const {
  AuditState st;
  OXML_RETURN_NOT_OK(AuditNode(root_, 1, nullptr, nullptr, nullptr, nullptr,
                               &st));
  if (st.prev_leaf != nullptr && st.prev_leaf->next != nullptr) {
    return Status::Internal("leaf chain extends past last tree leaf");
  }
  if (st.entries != size_) {
    return Status::Internal("size() does not match stored entries");
  }
  if (st.bytes != key_bytes_) {
    return Status::Internal("key_bytes() does not match stored keys");
  }
  return st.info;
}

bool BPlusTree::Erase(std::string_view key, const Rid& rid) {
  Node* node = root_;
  while (!node->is_leaf) {
    auto* in = static_cast<Internal*>(node);
    node = in->children[ChildIndex(*in, key, rid)];
  }
  auto* leaf = static_cast<Leaf*>(node);
  size_t pos = LeafLowerBound(*leaf, key, rid);
  if (pos >= leaf->keys.size() ||
      CompareEntry(leaf->keys[pos], leaf->rids[pos], key, rid) != 0) {
    return false;
  }
  leaf->keys.erase(leaf->keys.begin() + pos);
  leaf->rids.erase(leaf->rids.begin() + pos);
  --size_;
  key_bytes_ -= key.size();
  // No rebalancing: underfull/empty leaves are tolerated and skipped by
  // iterators; acceptable for the insert/scan-heavy workloads here.
  return true;
}

bool BPlusTree::Contains(std::string_view key) const {
  Iterator it = LowerBound(key);
  return it.valid() && it.key() == key;
}

BPlusTree::Iterator BPlusTree::LowerBound(std::string_view key) const {
  const Node* node = root_;
  while (!node->is_leaf) {
    const auto* in = static_cast<const Internal*>(node);
    node = in->children[ChildIndex(*in, key, kMinRid)];
  }
  const auto* leaf = static_cast<const Leaf*>(node);
  size_t pos = LeafLowerBound(*leaf, key, kMinRid);
  Iterator it(leaf, pos);
  if (pos >= leaf->keys.size()) it.Next();  // normalizes past-the-end/empty
  return it;
}

BPlusTree::Iterator BPlusTree::UpperBound(std::string_view key) const {
  const Node* node = root_;
  while (!node->is_leaf) {
    const auto* in = static_cast<const Internal*>(node);
    node = in->children[ChildIndex(*in, key, kMaxRid)];
  }
  const auto* leaf = static_cast<const Leaf*>(node);
  size_t pos = LeafLowerBound(*leaf, key, kMaxRid);
  // Skip any remaining exact matches (kMaxRid may itself be a stored rid in
  // theory; treat bound as exclusive of all entries with this key).
  Iterator it(leaf, pos);
  if (pos >= leaf->keys.size()) it.Next();
  while (it.valid() && it.key() == key) it.Next();
  return it;
}

std::vector<std::string> BPlusTree::SplitKeys(size_t shards) const {
  std::vector<std::string> seps;
  if (shards < 2 || size_ == 0) return seps;
  // One walk down the leftmost spine plus one leaf-chain traversal: collect
  // the first key of every non-empty leaf, then pick evenly spaced ones.
  const Node* node = root_;
  while (!node->is_leaf) {
    node = static_cast<const Internal*>(node)->children.front();
  }
  std::vector<const std::string*> firsts;
  for (const auto* l = static_cast<const Leaf*>(node); l != nullptr;
       l = l->next) {
    if (!l->keys.empty()) firsts.push_back(&l->keys.front());
  }
  if (firsts.size() < 2) return seps;
  size_t parts = std::min(shards, firsts.size());
  for (size_t i = 1; i < parts; ++i) {
    seps.push_back(*firsts[i * firsts.size() / parts]);
  }
  // Duplicate keys can straddle a leaf boundary; collapse equal separators
  // so every range is non-empty.
  seps.erase(std::unique(seps.begin(), seps.end()), seps.end());
  return seps;
}

BPlusTree::Iterator BPlusTree::Begin() const {
  const Node* node = root_;
  while (!node->is_leaf) {
    node = static_cast<const Internal*>(node)->children.front();
  }
  const auto* leaf = static_cast<const Leaf*>(node);
  Iterator it(leaf, 0);
  if (leaf->keys.empty()) it.Next();
  return it;
}

bool BPlusTree::Iterator::valid() const {
  return leaf_ != nullptr && pos_ < leaf_->keys.size();
}

const std::string& BPlusTree::Iterator::key() const {
  assert(valid());
  return leaf_->keys[pos_];
}

const Rid& BPlusTree::Iterator::rid() const {
  assert(valid());
  return leaf_->rids[pos_];
}

void BPlusTree::Iterator::Next() {
  if (leaf_ == nullptr) return;
  if (pos_ + 1 < leaf_->keys.size()) {
    ++pos_;
    return;
  }
  // Move to the next non-empty leaf.
  const Leaf* l = leaf_->next;
  while (l != nullptr && l->keys.empty()) l = l->next;
  leaf_ = l;
  pos_ = 0;
}

}  // namespace oxml
