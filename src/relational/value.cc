#include "src/relational/value.h"

#include <cmath>
#include <cstdio>
#include <functional>

#include "src/common/strings.h"

namespace oxml {

const char* TypeIdToString(TypeId type) {
  switch (type) {
    case TypeId::kNull:
      return "NULL";
    case TypeId::kInt:
      return "INT";
    case TypeId::kDouble:
      return "DOUBLE";
    case TypeId::kText:
      return "TEXT";
    case TypeId::kBlob:
      return "BLOB";
  }
  return "UNKNOWN";
}

bool Value::IsTruthy() const {
  switch (type_) {
    case TypeId::kNull:
      return false;
    case TypeId::kInt:
      return int_ != 0;
    case TypeId::kDouble:
      return double_ != 0.0;
    case TypeId::kText:
    case TypeId::kBlob:
      return !str_.empty();
  }
  return false;
}

namespace {

bool IsNumeric(TypeId t) { return t == TypeId::kInt || t == TypeId::kDouble; }

int CompareDouble(double a, double b) {
  if (a < b) return -1;
  if (a > b) return 1;
  return 0;
}

}  // namespace

int Value::Compare(const Value& other) const {
  if (is_null() || other.is_null()) {
    if (is_null() && other.is_null()) return 0;
    return is_null() ? -1 : 1;
  }
  if (IsNumeric(type_) && IsNumeric(other.type_)) {
    if (type_ == TypeId::kInt && other.type_ == TypeId::kInt) {
      if (int_ < other.int_) return -1;
      if (int_ > other.int_) return 1;
      return 0;
    }
    return CompareDouble(AsDouble(), other.AsDouble());
  }
  if (type_ != other.type_) {
    return static_cast<int>(type_) < static_cast<int>(other.type_) ? -1 : 1;
  }
  // TEXT vs TEXT or BLOB vs BLOB: byte-wise.
  int c = str_.compare(other.str_);
  if (c < 0) return -1;
  if (c > 0) return 1;
  return 0;
}

std::string Value::ToString() const {
  switch (type_) {
    case TypeId::kNull:
      return "NULL";
    case TypeId::kInt:
      return std::to_string(int_);
    case TypeId::kDouble: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%g", double_);
      return buf;
    }
    case TypeId::kText:
      return str_;
    case TypeId::kBlob:
      return "x'" + ToHex(str_) + "'";
  }
  return "?";
}

size_t Value::Hash() const {
  switch (type_) {
    case TypeId::kNull:
      return 0x9e3779b97f4a7c15ULL;
    case TypeId::kInt:
      return std::hash<double>()(static_cast<double>(int_));
    case TypeId::kDouble:
      return std::hash<double>()(double_);
    case TypeId::kText:
    case TypeId::kBlob:
      return std::hash<std::string>()(str_);
  }
  return 0;
}

size_t HashRow(const Row& row) {
  size_t h = 14695981039346656037ULL;
  for (const Value& v : row) {
    h ^= v.Hash();
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace oxml
