#include "src/relational/value.h"

#include <cmath>
#include <cstdio>
#include <cstring>
#include <functional>

#include "src/common/strings.h"

namespace oxml {

const char* TypeIdToString(TypeId type) {
  switch (type) {
    case TypeId::kNull:
      return "NULL";
    case TypeId::kInt:
      return "INT";
    case TypeId::kDouble:
      return "DOUBLE";
    case TypeId::kText:
      return "TEXT";
    case TypeId::kBlob:
      return "BLOB";
  }
  return "UNKNOWN";
}

bool Value::IsTruthy() const {
  switch (type_) {
    case TypeId::kNull:
      return false;
    case TypeId::kInt:
      return int_ != 0;
    case TypeId::kDouble:
      return double_ != 0.0;
    case TypeId::kText:
    case TypeId::kBlob:
      return !str_.empty();
  }
  return false;
}

namespace {

bool IsNumeric(TypeId t) { return t == TypeId::kInt || t == TypeId::kDouble; }

/// Maps a double to a uint64 whose unsigned order is the IEEE-754 total
/// order — the exact transform EncodeKeyValue applies before big-endian
/// serialization, so Compare agrees byte-for-byte with index key order.
/// In particular NaNs have a definite rank (-NaN below -inf, +NaN above
/// +inf) instead of comparing "equal" to everything, which would break the
/// strict weak ordering SortOp and MergeJoinOp rely on.
uint64_t DoubleTotalOrderBits(double d) {
  uint64_t bits;
  std::memcpy(&bits, &d, 8);
  if (bits & 0x8000000000000000ULL) return ~bits;
  return bits ^ 0x8000000000000000ULL;
}

int CompareDouble(double a, double b) {
  uint64_t ba = DoubleTotalOrderBits(a);
  uint64_t bb = DoubleTotalOrderBits(b);
  if (ba < bb) return -1;
  if (ba > bb) return 1;
  return 0;
}

/// Exact int64 vs double comparison. Converting the int to double (the old
/// behavior) collapses distinct values above 2^53 to "equal"; instead the
/// double is split into integral and fractional parts and compared in
/// integer space. Returns the sign of (i <=> d).
int CompareIntDouble(int64_t i, double d) {
  if (std::isnan(d)) return std::signbit(d) ? 1 : -1;
  constexpr double kTwo63 = 9223372036854775808.0;  // 2^63, exact
  if (d >= kTwo63) return -1;
  if (d < -kTwo63) return 1;
  // d is now in [-2^63, 2^63). If |d| >= 2^53 the double is an exact
  // integer; otherwise trunc(d) fits in 53 bits. Either way the truncation
  // and the cast back are exact.
  int64_t t = static_cast<int64_t>(d);
  if (i != t) return i < t ? -1 : 1;
  double frac = d - static_cast<double>(t);
  if (frac > 0) return -1;
  if (frac < 0) return 1;
  // Equal as reals; delegate so that int 0 vs -0.0 ranks like +0.0 vs -0.0
  // (the total order distinguishes zero signs).
  return CompareDouble(static_cast<double>(t), d);
}

}  // namespace

int Value::Compare(const Value& other) const {
  if (is_null() || other.is_null()) {
    if (is_null() && other.is_null()) return 0;
    return is_null() ? -1 : 1;
  }
  if (IsNumeric(type_) && IsNumeric(other.type_)) {
    if (type_ == TypeId::kInt && other.type_ == TypeId::kInt) {
      if (int_ < other.int_) return -1;
      if (int_ > other.int_) return 1;
      return 0;
    }
    if (type_ == TypeId::kInt) return CompareIntDouble(int_, other.double_);
    if (other.type_ == TypeId::kInt) {
      return -CompareIntDouble(other.int_, double_);
    }
    return CompareDouble(double_, other.double_);
  }
  if (type_ != other.type_) {
    return static_cast<int>(type_) < static_cast<int>(other.type_) ? -1 : 1;
  }
  // TEXT vs TEXT or BLOB vs BLOB: byte-wise.
  int c = str_.compare(other.str_);
  if (c < 0) return -1;
  if (c > 0) return 1;
  return 0;
}

std::string Value::ToString() const {
  switch (type_) {
    case TypeId::kNull:
      return "NULL";
    case TypeId::kInt:
      return std::to_string(int_);
    case TypeId::kDouble: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%g", double_);
      return buf;
    }
    case TypeId::kText:
      return str_;
    case TypeId::kBlob:
      return "x'" + ToHex(str_) + "'";
  }
  return "?";
}

size_t Value::Hash() const {
  switch (type_) {
    case TypeId::kNull:
      return 0x9e3779b97f4a7c15ULL;
    case TypeId::kInt:
      return std::hash<double>()(static_cast<double>(int_));
    case TypeId::kDouble:
      return std::hash<double>()(double_);
    case TypeId::kText:
    case TypeId::kBlob:
      return std::hash<std::string>()(str_);
  }
  return 0;
}

size_t HashRow(const Row& row) {
  size_t h = 14695981039346656037ULL;
  for (const Value& v : row) {
    h ^= v.Hash();
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace oxml
