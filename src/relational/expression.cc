#include "src/relational/expression.h"

#include <cmath>

#include "src/common/strings.h"

namespace oxml {

const char* BinaryOpToString(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq:
      return "=";
    case BinaryOp::kNe:
      return "<>";
    case BinaryOp::kLt:
      return "<";
    case BinaryOp::kLe:
      return "<=";
    case BinaryOp::kGt:
      return ">";
    case BinaryOp::kGe:
      return ">=";
    case BinaryOp::kAnd:
      return "AND";
    case BinaryOp::kOr:
      return "OR";
    case BinaryOp::kAdd:
      return "+";
    case BinaryOp::kSub:
      return "-";
    case BinaryOp::kMul:
      return "*";
    case BinaryOp::kDiv:
      return "/";
    case BinaryOp::kMod:
      return "%";
    case BinaryOp::kLike:
      return "LIKE";
  }
  return "?";
}

std::string LiteralExpr::ToString() const {
  if (value_.type() == TypeId::kText) return SqlQuote(value_.AsString());
  return value_.ToString();
}

Status ColumnExpr::Bind(const Schema& schema) {
  int idx = schema.IndexOf(name_);
  if (idx == -2) {
    return Status::InvalidArgument("ambiguous column: " + name_);
  }
  if (idx < 0) {
    return Status::NotFound("unknown column: " + name_ + " in " +
                            schema.ToString());
  }
  index_ = idx;
  return Status::OK();
}

Result<Value> ColumnExpr::Eval(const Row& row) const {
  if (index_ < 0) return Status::Internal("unbound column: " + name_);
  if (static_cast<size_t>(index_) >= row.size()) {
    return Status::Internal("column index out of range: " + name_);
  }
  return row[index_];
}

Status BinaryExpr::Bind(const Schema& schema) {
  OXML_RETURN_NOT_OK(left_->Bind(schema));
  return right_->Bind(schema);
}

namespace {

Result<Value> EvalComparison(BinaryOp op, const Value& l, const Value& r) {
  if (l.is_null() || r.is_null()) return Value::Null();
  int c = l.Compare(r);
  switch (op) {
    case BinaryOp::kEq:
      return Value::Bool(c == 0);
    case BinaryOp::kNe:
      return Value::Bool(c != 0);
    case BinaryOp::kLt:
      return Value::Bool(c < 0);
    case BinaryOp::kLe:
      return Value::Bool(c <= 0);
    case BinaryOp::kGt:
      return Value::Bool(c > 0);
    case BinaryOp::kGe:
      return Value::Bool(c >= 0);
    default:
      return Status::Internal("not a comparison");
  }
}

Result<Value> EvalArithmetic(BinaryOp op, const Value& l, const Value& r) {
  if (l.is_null() || r.is_null()) return Value::Null();
  bool both_int = l.type() == TypeId::kInt && r.type() == TypeId::kInt;
  if (l.type() == TypeId::kText || r.type() == TypeId::kText ||
      l.type() == TypeId::kBlob || r.type() == TypeId::kBlob) {
    if (op == BinaryOp::kAdd && l.type() == TypeId::kText &&
        r.type() == TypeId::kText) {
      return Value::Text(l.AsString() + r.AsString());  // string concat
    }
    return Status::InvalidArgument("arithmetic on non-numeric value");
  }
  if (both_int) {
    int64_t a = l.AsInt();
    int64_t b = r.AsInt();
    switch (op) {
      case BinaryOp::kAdd:
        return Value::Int(a + b);
      case BinaryOp::kSub:
        return Value::Int(a - b);
      case BinaryOp::kMul:
        return Value::Int(a * b);
      case BinaryOp::kDiv:
        if (b == 0) return Status::InvalidArgument("division by zero");
        return Value::Int(a / b);
      case BinaryOp::kMod:
        if (b == 0) return Status::InvalidArgument("modulo by zero");
        return Value::Int(a % b);
      default:
        return Status::Internal("not arithmetic");
    }
  }
  double a = l.AsDouble();
  double b = r.AsDouble();
  switch (op) {
    case BinaryOp::kAdd:
      return Value::Double(a + b);
    case BinaryOp::kSub:
      return Value::Double(a - b);
    case BinaryOp::kMul:
      return Value::Double(a * b);
    case BinaryOp::kDiv:
      if (b == 0) return Status::InvalidArgument("division by zero");
      return Value::Double(a / b);
    case BinaryOp::kMod:
      return Value::Double(std::fmod(a, b));
    default:
      return Status::Internal("not arithmetic");
  }
}

}  // namespace

bool LikeMatch(std::string_view text, std::string_view pattern) {
  // Iterative wildcard match with backtracking on the last '%'.
  size_t t = 0, p = 0;
  size_t star_p = std::string_view::npos, star_t = 0;
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '_' || pattern[p] == text[t])) {
      ++t;
      ++p;
    } else if (p < pattern.size() && pattern[p] == '%') {
      star_p = p++;
      star_t = t;
    } else if (star_p != std::string_view::npos) {
      p = star_p + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '%') ++p;
  return p == pattern.size();
}

Result<Value> BinaryExpr::Eval(const Row& row) const {
  // Three-valued AND/OR with short circuit.
  if (op_ == BinaryOp::kAnd || op_ == BinaryOp::kOr) {
    OXML_ASSIGN_OR_RETURN(Value l, left_->Eval(row));
    bool l_null = l.is_null();
    bool l_true = l.IsTruthy();
    if (op_ == BinaryOp::kAnd && !l_null && !l_true) return Value::Bool(false);
    if (op_ == BinaryOp::kOr && !l_null && l_true) return Value::Bool(true);
    OXML_ASSIGN_OR_RETURN(Value r, right_->Eval(row));
    bool r_null = r.is_null();
    bool r_true = r.IsTruthy();
    if (op_ == BinaryOp::kAnd) {
      if (!r_null && !r_true) return Value::Bool(false);
      if (l_null || r_null) return Value::Null();
      return Value::Bool(true);
    }
    if (!r_null && r_true) return Value::Bool(true);
    if (l_null || r_null) return Value::Null();
    return Value::Bool(false);
  }

  OXML_ASSIGN_OR_RETURN(Value l, left_->Eval(row));
  OXML_ASSIGN_OR_RETURN(Value r, right_->Eval(row));
  switch (op_) {
    case BinaryOp::kEq:
    case BinaryOp::kNe:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe:
      return EvalComparison(op_, l, r);
    case BinaryOp::kLike: {
      if (l.is_null() || r.is_null()) return Value::Null();
      return Value::Bool(LikeMatch(l.AsString(), r.AsString()));
    }
    default:
      return EvalArithmetic(op_, l, r);
  }
}

std::string BinaryExpr::ToString() const {
  return "(" + left_->ToString() + " " + BinaryOpToString(op_) + " " +
         right_->ToString() + ")";
}

Result<Value> UnaryExpr::Eval(const Row& row) const {
  OXML_ASSIGN_OR_RETURN(Value v, operand_->Eval(row));
  switch (op_) {
    case UnaryOp::kNot:
      if (v.is_null()) return Value::Null();
      return Value::Bool(!v.IsTruthy());
    case UnaryOp::kNeg:
      if (v.is_null()) return Value::Null();
      if (v.type() == TypeId::kInt) return Value::Int(-v.AsInt());
      if (v.type() == TypeId::kDouble) return Value::Double(-v.AsDouble());
      return Status::InvalidArgument("negation of non-numeric value");
    case UnaryOp::kIsNull:
      return Value::Bool(v.is_null());
    case UnaryOp::kIsNotNull:
      return Value::Bool(!v.is_null());
  }
  return Status::Internal("bad unary op");
}

std::string UnaryExpr::ToString() const {
  switch (op_) {
    case UnaryOp::kNot:
      return "(NOT " + operand_->ToString() + ")";
    case UnaryOp::kNeg:
      return "(-" + operand_->ToString() + ")";
    case UnaryOp::kIsNull:
      return "(" + operand_->ToString() + " IS NULL)";
    case UnaryOp::kIsNotNull:
      return "(" + operand_->ToString() + " IS NOT NULL)";
  }
  return "?";
}

AggregateKind AggregateKindFromName(const std::string& upper_name) {
  if (upper_name == "COUNT") return AggregateKind::kCount;
  if (upper_name == "SUM") return AggregateKind::kSum;
  if (upper_name == "MIN") return AggregateKind::kMin;
  if (upper_name == "MAX") return AggregateKind::kMax;
  if (upper_name == "AVG") return AggregateKind::kAvg;
  return AggregateKind::kNone;
}

FunctionExpr::FunctionExpr(std::string name, std::vector<ExprPtr> args)
    : Expr(Kind::kFunction),
      name_(ToUpper(name)),
      args_(std::move(args)),
      aggregate_(AggregateKindFromName(name_)) {}

Status FunctionExpr::Bind(const Schema& schema) {
  for (auto& a : args_) {
    OXML_RETURN_NOT_OK(a->Bind(schema));
  }
  return Status::OK();
}

Result<Value> FunctionExpr::Eval(const Row& row) const {
  if (aggregate_ != AggregateKind::kNone) {
    return Status::Internal("aggregate " + name_ +
                            " evaluated outside AggregateOp");
  }
  if (name_ == "LENGTH") {
    if (args_.size() != 1) {
      return Status::InvalidArgument("LENGTH takes 1 argument");
    }
    OXML_ASSIGN_OR_RETURN(Value v, args_[0]->Eval(row));
    if (v.is_null()) return Value::Null();
    return Value::Int(static_cast<int64_t>(v.AsString().size()));
  }
  if (name_ == "SUBSTR") {
    if (args_.size() != 3) {
      return Status::InvalidArgument("SUBSTR takes 3 arguments");
    }
    OXML_ASSIGN_OR_RETURN(Value s, args_[0]->Eval(row));
    OXML_ASSIGN_OR_RETURN(Value pos, args_[1]->Eval(row));
    OXML_ASSIGN_OR_RETURN(Value len, args_[2]->Eval(row));
    if (s.is_null() || pos.is_null() || len.is_null()) return Value::Null();
    const std::string& str = s.AsString();
    int64_t p = pos.AsInt() - 1;  // SQL SUBSTR is 1-based
    int64_t l = len.AsInt();
    if (p < 0) p = 0;
    if (p >= static_cast<int64_t>(str.size()) || l <= 0) {
      return Value::Text("");
    }
    return Value::Text(str.substr(static_cast<size_t>(p),
                                  static_cast<size_t>(l)));
  }
  if (name_ == "SUCC") {
    // Successor for prefix ranges: SUCC(x) = x || 0xFF is greater than any
    // value having x as a proper prefix whose next byte is < 0xFF (true for
    // Dewey keys, whose component encodings never start with 0xFF).
    if (args_.size() != 1) {
      return Status::InvalidArgument("SUCC takes 1 argument");
    }
    OXML_ASSIGN_OR_RETURN(Value v, args_[0]->Eval(row));
    if (v.is_null()) return Value::Null();
    if (v.type() != TypeId::kBlob && v.type() != TypeId::kText) {
      return Status::InvalidArgument("SUCC requires a BLOB or TEXT value");
    }
    std::string out = v.AsString();
    out.push_back('\xFF');
    return v.type() == TypeId::kBlob ? Value::Blob(std::move(out))
                                     : Value::Text(std::move(out));
  }
  if (name_ == "PATH_PARENT") {
    // Strips the last length-tagged component of a Dewey-encoded path
    // (see core/dewey.h): each component is one length byte 0x01..0x08
    // followed by that many payload bytes. Returns an empty blob for
    // depth-1 paths (the document node has no stored row).
    if (args_.size() != 1) {
      return Status::InvalidArgument("PATH_PARENT takes 1 argument");
    }
    OXML_ASSIGN_OR_RETURN(Value v, args_[0]->Eval(row));
    if (v.is_null()) return Value::Null();
    if (v.type() != TypeId::kBlob) {
      return Status::InvalidArgument("PATH_PARENT requires a BLOB value");
    }
    const std::string& path = v.AsString();
    size_t i = 0;
    size_t last_start = 0;
    while (i < path.size()) {
      size_t len = static_cast<unsigned char>(path[i]);
      if (len < 1 || len > 8 || i + 1 + len > path.size()) {
        return Status::InvalidArgument("malformed Dewey path");
      }
      last_start = i;
      i += 1 + len;
    }
    return Value::Blob(path.substr(0, last_start));
  }
  if (name_ == "ABS") {
    if (args_.size() != 1) {
      return Status::InvalidArgument("ABS takes 1 argument");
    }
    OXML_ASSIGN_OR_RETURN(Value v, args_[0]->Eval(row));
    if (v.is_null()) return Value::Null();
    if (v.type() == TypeId::kInt) return Value::Int(std::abs(v.AsInt()));
    return Value::Double(std::fabs(v.AsDouble()));
  }
  return Status::NotImplemented("unknown function: " + name_);
}

std::string FunctionExpr::ToString() const {
  std::string out = name_ + "(";
  for (size_t i = 0; i < args_.size(); ++i) {
    if (i > 0) out += ", ";
    out += args_[i]->ToString();
  }
  out += ")";
  return out;
}

}  // namespace oxml
