#ifndef OXML_RELATIONAL_SQL_LEXER_H_
#define OXML_RELATIONAL_SQL_LEXER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/result.h"

namespace oxml {

enum class TokenKind : uint8_t {
  kIdentifier,  // bare word (keywords are recognized by the parser)
  kIntLiteral,
  kFloatLiteral,
  kStringLiteral,  // 'quoted' with '' escaping
  kBlobLiteral,    // x'hex'
  kSymbol,         // operators / punctuation, text holds the lexeme
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;   // identifier name / symbol lexeme / decoded string
  int64_t int_value = 0;
  double double_value = 0.0;
  size_t offset = 0;  // byte offset in the input, for error messages
};

/// Tokenizes a SQL statement. Symbols produced: , ( ) . * + - / % = <> !=
/// < <= > >= ';' and the '?' parameter marker. Comments ("-- ...") are
/// skipped.
Result<std::vector<Token>> LexSql(std::string_view input);

}  // namespace oxml

#endif  // OXML_RELATIONAL_SQL_LEXER_H_
