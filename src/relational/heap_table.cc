#include "src/relational/heap_table.h"

#include <cstring>

namespace oxml {

namespace {

constexpr char kInlineTag = '\0';
constexpr char kOverflowTag = '\x01';

// Overflow page layout: [u32 next_page][u32 chunk_len][chunk bytes...].
constexpr size_t kOverflowHeader = 8;
constexpr size_t kOverflowCapacity = kPageSize - kOverflowHeader;

uint32_t LoadU32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}
void StoreU32(char* p, uint32_t v) { std::memcpy(p, &v, 4); }

/// Logical row size recorded in a tagged cell (for byte accounting).
uint64_t LogicalSize(std::string_view cell) {
  if (cell.empty()) return 0;
  if (cell[0] == kInlineTag) return cell.size() - 1;
  return LoadU32(cell.data() + 5);  // total_len field of the marker
}

}  // namespace

Result<std::unique_ptr<HeapTable>> HeapTable::Create(BufferPool* pool,
                                                     Schema schema) {
  OXML_ASSIGN_OR_RETURN(PageHandle page, pool->NewPage());
  SlottedPage::Initialize(page.data());
  page.MarkDirty();
  return std::unique_ptr<HeapTable>(
      new HeapTable(pool, std::move(schema), page.page_id()));
}

std::unique_ptr<HeapTable> HeapTable::Attach(BufferPool* pool, Schema schema,
                                             uint32_t first_page,
                                             uint32_t last_page,
                                             uint64_t row_count,
                                             uint64_t page_chain_length,
                                             uint64_t data_bytes) {
  auto heap = std::unique_ptr<HeapTable>(
      new HeapTable(pool, std::move(schema), first_page));
  heap->last_page_ = last_page;
  heap->row_count_ = row_count;
  heap->page_chain_length_ = page_chain_length;
  heap->data_bytes_ = data_bytes;
  return heap;
}

Result<std::string> HeapTable::MakeCell(const Row& row) {
  std::string encoded = EncodeRow(schema_, row);
  if (encoded.size() <= kMaxInlineCell) {
    std::string cell;
    cell.reserve(encoded.size() + 1);
    cell.push_back(kInlineTag);
    cell.append(encoded);
    return cell;
  }
  // Spill into an overflow chain.
  uint32_t first_page = kInvalidPageId;
  uint32_t prev_page = kInvalidPageId;
  size_t offset = 0;
  while (offset < encoded.size()) {
    size_t chunk = std::min(kOverflowCapacity, encoded.size() - offset);
    OXML_ASSIGN_OR_RETURN(PageHandle page, pool_->NewPage());
    StoreU32(page.data(), kInvalidPageId);
    StoreU32(page.data() + 4, static_cast<uint32_t>(chunk));
    std::memcpy(page.data() + kOverflowHeader, encoded.data() + offset,
                chunk);
    page.MarkDirty();
    if (first_page == kInvalidPageId) {
      first_page = page.page_id();
    } else {
      OXML_ASSIGN_OR_RETURN(PageHandle prev, pool_->FetchPage(prev_page));
      StoreU32(prev.data(), page.page_id());
      prev.MarkDirty();
    }
    prev_page = page.page_id();
    offset += chunk;
  }
  std::string marker(9, '\0');
  marker[0] = kOverflowTag;
  StoreU32(marker.data() + 1, first_page);
  StoreU32(marker.data() + 5, static_cast<uint32_t>(encoded.size()));
  return marker;
}

Result<Row> HeapTable::ReadCell(std::string_view cell) const {
  if (cell.empty()) return Status::Internal("empty heap cell");
  if (cell[0] == kInlineTag) {
    return DecodeRow(schema_, cell.substr(1));
  }
  if (cell[0] != kOverflowTag || cell.size() != 9) {
    return Status::Internal("corrupt heap cell tag");
  }
  uint32_t page_id = LoadU32(cell.data() + 1);
  uint32_t total = LoadU32(cell.data() + 5);
  std::string encoded;
  encoded.reserve(total);
  while (page_id != kInvalidPageId && encoded.size() < total) {
    OXML_ASSIGN_OR_RETURN(PageHandle page, pool_->FetchPage(page_id));
    uint32_t next = LoadU32(page.data());
    uint32_t chunk = LoadU32(page.data() + 4);
    if (chunk > kOverflowCapacity) {
      return Status::Internal("corrupt overflow chunk length");
    }
    encoded.append(page.data() + kOverflowHeader, chunk);
    page_id = next;
  }
  if (encoded.size() != total) {
    return Status::Internal("truncated overflow chain");
  }
  return DecodeRow(schema_, encoded);
}

Result<Rid> HeapTable::Insert(const Row& row) {
  OXML_ASSIGN_OR_RETURN(std::string cell, MakeCell(row));
  uint64_t logical = LogicalSize(cell);
  OXML_ASSIGN_OR_RETURN(PageHandle page, pool_->FetchPage(last_page_));
  SlottedPage sp(page.data());
  Result<uint16_t> slot = sp.Insert(cell);
  if (!slot.ok()) {
    if (!slot.status().IsOutOfRange()) return slot.status();
    // Tail page is full: extend the chain.
    OXML_ASSIGN_OR_RETURN(PageHandle fresh, pool_->NewPage());
    SlottedPage::Initialize(fresh.data());
    sp.set_next_page(fresh.page_id());
    page.MarkDirty();
    last_page_ = fresh.page_id();
    ++page_chain_length_;
    SlottedPage fresh_sp(fresh.data());
    OXML_ASSIGN_OR_RETURN(uint16_t s, fresh_sp.Insert(cell));
    fresh.MarkDirty();
    ++row_count_;
    data_bytes_ += logical;
    return Rid{fresh.page_id(), s};
  }
  page.MarkDirty();
  ++row_count_;
  data_bytes_ += logical;
  return Rid{page.page_id(), *slot};
}

Status HeapTable::AppendBatch(const std::vector<Row>& rows,
                              std::vector<Rid>* rids) {
  rids->clear();
  if (rows.empty()) return Status::OK();
  rids->reserve(rows.size());
  // One tail fetch for the whole batch; per-row Insert would fetch it once
  // per row. MakeCell may itself fetch/allocate overflow pages while the
  // tail stays pinned, which is safe (pins only exempt frames from
  // eviction).
  OXML_ASSIGN_OR_RETURN(PageHandle page, pool_->FetchPage(last_page_));
  for (const Row& row : rows) {
    OXML_ASSIGN_OR_RETURN(std::string cell, MakeCell(row));
    SlottedPage sp(page.data());
    Result<uint16_t> slot = sp.Insert(cell);
    if (!slot.ok()) {
      if (!slot.status().IsOutOfRange()) return slot.status();
      // Tail page is full: extend the chain and keep the fresh page as the
      // cached tail.
      OXML_ASSIGN_OR_RETURN(PageHandle fresh, pool_->NewPage());
      SlottedPage::Initialize(fresh.data());
      sp.set_next_page(fresh.page_id());
      page.MarkDirty();
      last_page_ = fresh.page_id();
      ++page_chain_length_;
      page = std::move(fresh);
      slot = SlottedPage(page.data()).Insert(cell);
      if (!slot.ok()) return slot.status();
    }
    page.MarkDirty();
    ++row_count_;
    data_bytes_ += LogicalSize(cell);
    rids->push_back(Rid{page.page_id(), *slot});
  }
  pool_->NoteSavedFetches(rows.size() - 1);
  return Status::OK();
}

Result<Row> HeapTable::Get(const Rid& rid) const {
  std::string cell;
  {
    OXML_ASSIGN_OR_RETURN(PageHandle page, pool_->FetchPage(rid.page_id));
    SlottedPage sp(page.data());
    OXML_ASSIGN_OR_RETURN(std::string_view view, sp.Get(rid.slot));
    cell.assign(view);
  }
  return ReadCell(cell);
}

Status HeapTable::Delete(const Rid& rid) {
  OXML_ASSIGN_OR_RETURN(PageHandle page, pool_->FetchPage(rid.page_id));
  SlottedPage sp(page.data());
  OXML_ASSIGN_OR_RETURN(std::string_view cell, sp.Get(rid.slot));
  data_bytes_ -= LogicalSize(cell);
  // Overflow pages of the row are orphaned (no free-space map).
  OXML_RETURN_NOT_OK(sp.Delete(rid.slot));
  page.MarkDirty();
  --row_count_;
  return Status::OK();
}

Result<Rid> HeapTable::Update(const Rid& rid, const Row& row) {
  OXML_ASSIGN_OR_RETURN(std::string cell, MakeCell(row));
  uint64_t logical = LogicalSize(cell);
  {
    OXML_ASSIGN_OR_RETURN(PageHandle page, pool_->FetchPage(rid.page_id));
    SlottedPage sp(page.data());
    OXML_ASSIGN_OR_RETURN(std::string_view old_cell, sp.Get(rid.slot));
    uint64_t old_logical = LogicalSize(old_cell);
    Status st = sp.Update(rid.slot, cell);
    if (st.ok()) {
      page.MarkDirty();
      data_bytes_ += logical;
      data_bytes_ -= old_logical;
      return rid;
    }
    if (!st.IsOutOfRange()) return st;
    // The page could not host the larger row; SlottedPage::Update already
    // freed the old cell, so finish the move with a fresh insert.
    page.MarkDirty();
    data_bytes_ -= old_logical;
    --row_count_;
  }
  // Re-insert the prepared cell via the tail-page path.
  // (MakeCell already wrote any overflow chain; reuse Insert's slotting by
  // inlining its logic over the ready-made cell.)
  OXML_ASSIGN_OR_RETURN(PageHandle page, pool_->FetchPage(last_page_));
  SlottedPage sp(page.data());
  Result<uint16_t> slot = sp.Insert(cell);
  if (!slot.ok()) {
    if (!slot.status().IsOutOfRange()) return slot.status();
    OXML_ASSIGN_OR_RETURN(PageHandle fresh, pool_->NewPage());
    SlottedPage::Initialize(fresh.data());
    sp.set_next_page(fresh.page_id());
    page.MarkDirty();
    last_page_ = fresh.page_id();
    ++page_chain_length_;
    SlottedPage fresh_sp(fresh.data());
    OXML_ASSIGN_OR_RETURN(uint16_t s, fresh_sp.Insert(cell));
    fresh.MarkDirty();
    ++row_count_;
    data_bytes_ += logical;
    return Rid{fresh.page_id(), s};
  }
  page.MarkDirty();
  ++row_count_;
  data_bytes_ += logical;
  return Rid{page.page_id(), *slot};
}

HeapTable::Iterator::Iterator(const HeapTable* table, uint32_t page_id)
    : table_(table), page_id_(page_id) {}

HeapTable::Iterator::Iterator(const HeapTable* table, uint32_t page_id,
                              uint64_t max_pages)
    : table_(table), page_id_(page_id), pages_left_(max_pages) {
  if (max_pages == 0) page_id_ = kInvalidPageId;
}

Result<std::vector<uint32_t>> HeapTable::PageChain() const {
  std::vector<uint32_t> chain;
  chain.reserve(page_chain_length_);
  uint32_t id = first_page_;
  while (id != kInvalidPageId) {
    chain.push_back(id);
    OXML_ASSIGN_OR_RETURN(PageHandle page, pool_->FetchPage(id));
    id = SlottedPage(page.data()).next_page();
  }
  return chain;
}

Result<bool> HeapTable::Iterator::Next(Rid* rid, Row* row) {
  while (page_id_ != kInvalidPageId) {
    std::string cell;
    uint16_t found_slot = 0;
    uint32_t next_page = kInvalidPageId;
    bool have_cell = false;
    {
      OXML_ASSIGN_OR_RETURN(PageHandle page,
                            table_->pool_->FetchPage(page_id_));
      SlottedPage sp(page.data());
      while (next_slot_ < sp.slot_count()) {
        uint16_t slot = next_slot_++;
        Result<std::string_view> view = sp.Get(slot);
        if (!view.ok()) continue;  // deleted slot
        cell.assign(*view);
        found_slot = slot;
        have_cell = true;
        break;
      }
      next_page = sp.next_page();
    }
    if (have_cell) {
      OXML_ASSIGN_OR_RETURN(*row, table_->ReadCell(cell));
      *rid = Rid{page_id_, found_slot};
      return true;
    }
    page_id_ = (--pages_left_ == 0) ? kInvalidPageId : next_page;
    next_slot_ = 0;
  }
  return false;
}

}  // namespace oxml
