#include "src/relational/fault_injection.h"

#include <cstring>

namespace oxml {

FaultPlan::Decision DecideWriteWithRetry(FaultPlan* plan,
                                         const IoRetryCounter& retries) {
  for (int attempt = 0;; ++attempt) {
    FaultPlan::Decision d = plan->BeforeWrite();
    if (d != FaultPlan::Decision::kFailTransient) return d;
    if (retries != nullptr) {
      retries->fetch_add(1, std::memory_order_relaxed);
    }
    if (attempt + 1 >= IoRetryPolicy::kMaxAttempts) return d;
    IoRetryPolicy::Backoff(attempt);
  }
}

FaultPlan::Decision FaultInjectingBackend::DecideWrite() {
  return DecideWriteWithRetry(plan_.get(), retries_);
}

Result<uint32_t> FaultInjectingBackend::AllocatePage() {
  // Allocation extends the file with a zeroed page; a torn allocation still
  // leaves zeros behind, so only the fail/crash outcomes are distinct.
  switch (DecideWrite()) {
    case FaultPlan::Decision::kProceed:
      return inner_->AllocatePage();
    case FaultPlan::Decision::kTear: {
      OXML_ASSIGN_OR_RETURN(uint32_t id, inner_->AllocatePage());
      (void)id;
      return FaultPlan::SimulatedError("torn write during page allocation");
    }
    case FaultPlan::Decision::kFailEnospc:
      return FaultPlan::SimulatedEnospc("page allocation");
    case FaultPlan::Decision::kFailTransient:
      return FaultPlan::SimulatedError(
          "page allocation failed (transient, retries exhausted)");
    case FaultPlan::Decision::kFail:
      break;
  }
  return FaultPlan::SimulatedError("page allocation failed");
}

Status FaultInjectingBackend::ReadPage(uint32_t id, char* buf) {
  if (plan_->BeforeRead() == FaultPlan::Decision::kFail) {
    return FaultPlan::SimulatedError("read after simulated crash");
  }
  return inner_->ReadPage(id, buf);
}

Status FaultInjectingBackend::WritePage(uint32_t id, const char* buf) {
  switch (DecideWrite()) {
    case FaultPlan::Decision::kProceed:
      return inner_->WritePage(id, buf);
    case FaultPlan::Decision::kTear: {
      // Persist only the first half of the new image; the tail keeps
      // whatever the backend held before (zeros for a never-written page).
      char torn[kPageSize];
      if (!inner_->ReadPage(id, torn).ok()) {
        std::memset(torn, 0, kPageSize);
      }
      std::memcpy(torn, buf, FaultPlan::kTearBytes);
      OXML_RETURN_NOT_OK(inner_->WritePage(id, torn));
      return FaultPlan::SimulatedError("torn page write");
    }
    case FaultPlan::Decision::kFailEnospc:
      return FaultPlan::SimulatedEnospc("page write");
    case FaultPlan::Decision::kFailTransient:
      return FaultPlan::SimulatedError(
          "page write failed (transient, retries exhausted)");
    case FaultPlan::Decision::kFail:
      break;
  }
  return FaultPlan::SimulatedError("page write failed");
}

Status FaultInjectingBackend::Sync() {
  switch (DecideWrite()) {
    case FaultPlan::Decision::kProceed:
      return inner_->Sync();
    case FaultPlan::Decision::kFailEnospc:
      return FaultPlan::SimulatedEnospc("sync");
    default:
      break;
  }
  return FaultPlan::SimulatedError("sync failed");
}

}  // namespace oxml
