#include "src/relational/fault_injection.h"

#include <cstring>

namespace oxml {

Result<uint32_t> FaultInjectingBackend::AllocatePage() {
  // Allocation extends the file with a zeroed page; a torn allocation still
  // leaves zeros behind, so only the fail/crash outcomes are distinct.
  switch (plan_->BeforeWrite()) {
    case FaultPlan::Decision::kProceed:
      return inner_->AllocatePage();
    case FaultPlan::Decision::kTear: {
      OXML_ASSIGN_OR_RETURN(uint32_t id, inner_->AllocatePage());
      (void)id;
      return FaultPlan::SimulatedError("torn write during page allocation");
    }
    case FaultPlan::Decision::kFail:
      break;
  }
  return FaultPlan::SimulatedError("page allocation failed");
}

Status FaultInjectingBackend::ReadPage(uint32_t id, char* buf) {
  if (plan_->BeforeRead() == FaultPlan::Decision::kFail) {
    return FaultPlan::SimulatedError("read after simulated crash");
  }
  return inner_->ReadPage(id, buf);
}

Status FaultInjectingBackend::WritePage(uint32_t id, const char* buf) {
  switch (plan_->BeforeWrite()) {
    case FaultPlan::Decision::kProceed:
      return inner_->WritePage(id, buf);
    case FaultPlan::Decision::kTear: {
      // Persist only the first half of the new image; the tail keeps
      // whatever the backend held before (zeros for a never-written page).
      char torn[kPageSize];
      if (!inner_->ReadPage(id, torn).ok()) {
        std::memset(torn, 0, kPageSize);
      }
      std::memcpy(torn, buf, FaultPlan::kTearBytes);
      OXML_RETURN_NOT_OK(inner_->WritePage(id, torn));
      return FaultPlan::SimulatedError("torn page write");
    }
    case FaultPlan::Decision::kFail:
      break;
  }
  return FaultPlan::SimulatedError("page write failed");
}

Status FaultInjectingBackend::Sync() {
  switch (plan_->BeforeSync()) {
    case FaultPlan::Decision::kProceed:
      return inner_->Sync();
    default:
      break;
  }
  return FaultPlan::SimulatedError("sync failed");
}

}  // namespace oxml
