#ifndef OXML_RELATIONAL_QUERY_CONTROL_H_
#define OXML_RELATIONAL_QUERY_CONTROL_H_

// Resource governance for statement execution: deadlines, cooperative
// cancellation, and memory budgets (see docs/INTERNALS.md §12).
//
// A QueryControl is the per-statement governance token. The Database
// installs one in a thread-local slot for the duration of each top-level
// statement (nested statements on the same thread inherit it), and
// ThreadPool::ParallelFor re-installs it inside every worker, so any code
// on the statement's execution path — operators, parallel shards, the
// shred pipeline, WAL replay — can poll `CheckCurrentControl()` without
// plumbing a parameter through every signature. The same pattern as the
// MVCC read snapshot (buffer_pool.h).
//
// Cancellation is cooperative: `Cancel()` flips an atomic flag and the
// statement aborts at its next check point. Checks are designed to be
// cheap enough for per-row call sites: a relaxed atomic load, with the
// deadline clock read only every `kDeadlineCheckStride` checks.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>

#include "src/common/status.h"
#include "src/relational/value.h"

namespace oxml {

/// A byte quota shared by concurrent statements (the database-global cap).
/// cap == 0 means unlimited; `used` is advisory accounting either way.
struct MemoryBudget {
  uint64_t cap = 0;
  std::atomic<uint64_t> used{0};

  /// Reserves `bytes` against the cap. Returns false (and reserves
  /// nothing) if the cap would be exceeded.
  bool TryCharge(uint64_t bytes) {
    uint64_t now = used.fetch_add(bytes, std::memory_order_relaxed) + bytes;
    if (cap != 0 && now > cap) {
      used.fetch_sub(bytes, std::memory_order_relaxed);
      return false;
    }
    return true;
  }

  void Release(uint64_t bytes) {
    used.fetch_sub(bytes, std::memory_order_relaxed);
  }
};

/// Per-statement governance token: deadline + cancel flag + memory
/// accounting. Thread-safe: parallel workers of one statement share it.
class QueryControl {
 public:
  /// How many Check() calls share one reading of the deadline clock.
  static constexpr uint32_t kDeadlineCheckStride = 64;

  QueryControl() = default;
  ~QueryControl();

  QueryControl(const QueryControl&) = delete;
  QueryControl& operator=(const QueryControl&) = delete;

  /// Identity used by Database::Cancel. 0 = not registered.
  void set_statement_id(uint64_t id) { statement_id_ = id; }
  uint64_t statement_id() const { return statement_id_; }

  /// Absolute deadline; statements past it fail with kDeadlineExceeded.
  void SetDeadline(std::chrono::steady_clock::time_point deadline) {
    deadline_ = deadline;
    has_deadline_ = true;
  }
  bool has_deadline() const { return has_deadline_; }

  /// Caps (0 = unlimited). `global` may be nullptr; it must outlive the
  /// control (the Database owns both).
  void SetMemoryLimits(uint64_t statement_cap_bytes, MemoryBudget* global) {
    statement_cap_ = statement_cap_bytes;
    global_budget_ = global;
  }

  /// Requests cancellation; safe from any thread. The statement aborts
  /// with kCancelled at its next check point.
  void Cancel() { cancelled_.store(true, std::memory_order_release); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

  /// The cooperative check point. kOk, or kCancelled / kDeadlineExceeded.
  /// Cheap: one relaxed load on the cancel-only path; the clock is read
  /// once per kDeadlineCheckStride calls (shared across threads).
  Status Check() {
    if (cancelled_.load(std::memory_order_relaxed)) {
      return Status::Cancelled("statement cancelled");
    }
    if (has_deadline_) {
      if (expired_.load(std::memory_order_relaxed)) return DeadlineError();
      if ((ticks_.fetch_add(1, std::memory_order_relaxed) %
           kDeadlineCheckStride) == 0 &&
          std::chrono::steady_clock::now() >= deadline_) {
        expired_.store(true, std::memory_order_relaxed);
        return DeadlineError();
      }
    }
    return Status::OK();
  }

  /// Reserves `bytes` against the per-statement cap and the global budget.
  /// On kResourceExhausted nothing stays charged for this call; all
  /// successful charges are released when the control is destroyed.
  Status ChargeMemory(uint64_t bytes);

  /// Returns part of the statement's reservation early (optional — the
  /// destructor releases whatever remains).
  void ReleaseMemory(uint64_t bytes);

  uint64_t memory_used() const {
    return statement_used_.load(std::memory_order_relaxed);
  }

 private:
  static Status DeadlineError() {
    return Status::DeadlineExceeded("statement deadline exceeded");
  }

  uint64_t statement_id_ = 0;
  std::atomic<bool> cancelled_{false};
  std::atomic<bool> expired_{false};
  std::atomic<uint32_t> ticks_{0};
  bool has_deadline_ = false;
  std::chrono::steady_clock::time_point deadline_{};
  uint64_t statement_cap_ = 0;
  std::atomic<uint64_t> statement_used_{0};
  MemoryBudget* global_budget_ = nullptr;
};

/// The control governing the current thread's statement, or nullptr.
QueryControl* CurrentQueryControl();

/// kOk when no control is installed; otherwise the control's Check().
/// The per-row check point used throughout the executor.
inline Status CheckCurrentControl() {
  QueryControl* ctl = CurrentQueryControl();
  if (ctl == nullptr) return Status::OK();
  return ctl->Check();
}

/// Installs `ctl` as the current thread's control for the scope's
/// lifetime (statement scope in Database, or an embedder wrapping any
/// engine call — e.g. Database::Open with a bounded-recovery deadline).
class ScopedQueryControl {
 public:
  explicit ScopedQueryControl(QueryControl* ctl);
  ~ScopedQueryControl();

  ScopedQueryControl(const ScopedQueryControl&) = delete;
  ScopedQueryControl& operator=(const ScopedQueryControl&) = delete;

 private:
  QueryControl* prev_;
};

/// Re-installs a captured control inside a pool worker (the analogue of
/// SnapshotTaskScope). ThreadPool::ParallelFor applies it automatically.
class QueryControlTaskScope {
 public:
  explicit QueryControlTaskScope(QueryControl* ctl);
  ~QueryControlTaskScope();

  QueryControlTaskScope(const QueryControlTaskScope&) = delete;
  QueryControlTaskScope& operator=(const QueryControlTaskScope&) = delete;

 private:
  QueryControl* prev_;
};

/// Cheap per-row size estimate used for budget charging (same scale as the
/// shred pipeline's run sealing: fixed overhead per value + string bytes).
uint64_t EstimateRowBytes(const Row& row);

/// Accumulates row-size estimates locally and charges the current control
/// in batches, so per-row charging costs one add on the hot path. Create
/// one per materializing loop; nothing to flush at the end — any
/// remainder below the batch size is simply never charged (the estimate
/// is approximate anyway).
class BudgetCharger {
 public:
  static constexpr uint64_t kBatchBytes = 32 * 1024;

  BudgetCharger() : ctl_(CurrentQueryControl()) {}
  explicit BudgetCharger(QueryControl* ctl) : ctl_(ctl) {}

  Status AddRow(const Row& row) {
    if (ctl_ == nullptr) return Status::OK();
    return Add(EstimateRowBytes(row));
  }

  Status Add(uint64_t bytes) {
    if (ctl_ == nullptr) return Status::OK();
    pending_ += bytes;
    if (pending_ < kBatchBytes) return Status::OK();
    uint64_t charge = pending_;
    pending_ = 0;
    return ctl_->ChargeMemory(charge);
  }

 private:
  QueryControl* ctl_;
  uint64_t pending_ = 0;
};

}  // namespace oxml

#endif  // OXML_RELATIONAL_QUERY_CONTROL_H_
