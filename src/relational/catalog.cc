#include "src/relational/catalog.h"

namespace oxml {

Result<TableIndex*> TableInfo::CreateIndex(std::string index_name,
                                           std::vector<int> column_indices,
                                           bool unique) {
  for (const auto& idx : indexes_) {
    if (idx->name == index_name) {
      return Status::AlreadyExists("index " + index_name);
    }
  }
  auto index = std::make_unique<TableIndex>();
  index->name = std::move(index_name);
  index->column_indices = std::move(column_indices);
  index->unique = unique;

  // Bulk load existing rows.
  HeapTable::Iterator it = heap_->Scan();
  Rid rid;
  Row row;
  while (true) {
    OXML_ASSIGN_OR_RETURN(bool has, it.Next(&rid, &row));
    if (!has) break;
    std::string key = index->KeyFor(row);
    if (index->unique && index->tree.Contains(key)) {
      return Status::Aborted("duplicate key while building unique index " +
                             index->name);
    }
    index->tree.Insert(key, rid);
  }
  TableIndex* raw = index.get();
  indexes_.push_back(std::move(index));
  return raw;
}

Status TableInfo::RebuildIndexes() {
  std::vector<std::unique_ptr<TableIndex>> old = std::move(indexes_);
  indexes_.clear();
  for (const auto& idx : old) {
    // Re-bulk-load from the (restored) heap. Uniqueness held before the
    // rolled-back transaction, so it holds again now.
    OXML_RETURN_NOT_OK(
        CreateIndex(idx->name, idx->column_indices, idx->unique).status());
  }
  return Status::OK();
}

TableIndex* TableInfo::FindIndex(const std::string& index_name) const {
  for (const auto& idx : indexes_) {
    if (idx->name == index_name) return idx.get();
  }
  return nullptr;
}

Result<Rid> TableInfo::InsertRow(const Row& row, ExecStats* stats) {
  if (row.size() != schema_.size()) {
    return Status::InvalidArgument(
        "row width mismatch for table " + name_ + ": got " +
        std::to_string(row.size()) + ", want " +
        std::to_string(schema_.size()));
  }
  for (const auto& idx : indexes_) {
    if (idx->unique && idx->tree.Contains(idx->KeyFor(row))) {
      return Status::Aborted("unique constraint violated on index " +
                             idx->name);
    }
  }
  OXML_ASSIGN_OR_RETURN(Rid rid, heap_->Insert(row));
  for (const auto& idx : indexes_) {
    idx->tree.Insert(idx->KeyFor(row), rid);
  }
  if (stats != nullptr) ++stats->rows_inserted;
  return rid;
}

Status TableInfo::DeleteRow(const Rid& rid, ExecStats* stats) {
  OXML_ASSIGN_OR_RETURN(Row row, heap_->Get(rid));
  for (const auto& idx : indexes_) {
    idx->tree.Erase(idx->KeyFor(row), rid);
  }
  OXML_RETURN_NOT_OK(heap_->Delete(rid));
  if (stats != nullptr) ++stats->rows_deleted;
  return Status::OK();
}

Result<Rid> TableInfo::UpdateRow(const Rid& rid, const Row& new_row,
                                 ExecStats* stats) {
  if (new_row.size() != schema_.size()) {
    return Status::InvalidArgument("row width mismatch for table " + name_);
  }
  OXML_ASSIGN_OR_RETURN(Row old_row, heap_->Get(rid));

  // Unique pre-check (ignoring this row's own entry).
  for (const auto& idx : indexes_) {
    if (!idx->unique) continue;
    std::string new_key = idx->KeyFor(new_row);
    if (new_key == idx->KeyFor(old_row)) continue;
    if (idx->tree.Contains(new_key)) {
      return Status::Aborted("unique constraint violated on index " +
                             idx->name);
    }
  }

  OXML_ASSIGN_OR_RETURN(Rid new_rid, heap_->Update(rid, new_row));
  for (const auto& idx : indexes_) {
    std::string old_key = idx->KeyFor(old_row);
    std::string new_key = idx->KeyFor(new_row);
    if (old_key == new_key && new_rid == rid) continue;
    idx->tree.Erase(old_key, rid);
    idx->tree.Insert(new_key, new_rid);
  }
  if (stats != nullptr) ++stats->rows_updated;
  return new_rid;
}

}  // namespace oxml
