#include "src/relational/catalog.h"

#include <algorithm>

#include "src/relational/thread_pool.h"

namespace oxml {

Result<TableIndex*> TableInfo::CreateIndex(std::string index_name,
                                           std::vector<int> column_indices,
                                           bool unique) {
  for (const auto& idx : indexes_) {
    if (idx->name == index_name) {
      return Status::AlreadyExists("index " + index_name);
    }
  }
  auto index = std::make_unique<TableIndex>();
  index->name = std::move(index_name);
  index->column_indices = std::move(column_indices);
  index->unique = unique;

  // Bulk load existing rows.
  HeapTable::Iterator it = heap_->Scan();
  Rid rid;
  Row row;
  while (true) {
    OXML_ASSIGN_OR_RETURN(bool has, it.Next(&rid, &row));
    if (!has) break;
    std::string key = index->KeyFor(row);
    if (index->unique && index->tree.Contains(key)) {
      return Status::Aborted("duplicate key while building unique index " +
                             index->name);
    }
    index->tree.Insert(key, rid);
  }
  TableIndex* raw = index.get();
  indexes_.push_back(std::move(index));
  return raw;
}

Status TableInfo::RebuildIndexes() {
  std::vector<std::unique_ptr<TableIndex>> old = std::move(indexes_);
  indexes_.clear();
  for (const auto& idx : old) {
    // Re-bulk-load from the (restored) heap. Uniqueness held before the
    // rolled-back transaction, so it holds again now.
    OXML_RETURN_NOT_OK(
        CreateIndex(idx->name, idx->column_indices, idx->unique).status());
  }
  return Status::OK();
}

TableIndex* TableInfo::FindIndex(const std::string& index_name) const {
  for (const auto& idx : indexes_) {
    if (idx->name == index_name) return idx.get();
  }
  return nullptr;
}

Result<Rid> TableInfo::InsertRow(const Row& row, ExecStats* stats) {
  if (row.size() != schema_.size()) {
    return Status::InvalidArgument(
        "row width mismatch for table " + name_ + ": got " +
        std::to_string(row.size()) + ", want " +
        std::to_string(schema_.size()));
  }
  for (const auto& idx : indexes_) {
    if (idx->unique && idx->tree.Contains(idx->KeyFor(row))) {
      return Status::Aborted("unique constraint violated on index " +
                             idx->name);
    }
  }
  OXML_ASSIGN_OR_RETURN(Rid rid, heap_->Insert(row));
  for (const auto& idx : indexes_) {
    idx->Insert(idx->KeyFor(row), rid);
  }
  if (stats != nullptr) ++stats->rows_inserted;
  return rid;
}

Status TableInfo::BulkLoadRows(const std::vector<Row>& rows,
                               ThreadPool* pool, ExecStats* stats) {
  if (heap_->row_count() != 0) {
    return Status::InvalidArgument("BulkLoadRows requires an empty table " +
                                   name_);
  }
  for (const Row& row : rows) {
    if (row.size() != schema_.size()) {
      return Status::InvalidArgument(
          "row width mismatch for table " + name_ + ": got " +
          std::to_string(row.size()) + ", want " +
          std::to_string(schema_.size()));
    }
  }

  // Heap first: one tail-extension pass assigns every Rid.
  std::vector<Rid> rids;
  OXML_RETURN_NOT_OK(heap_->AppendBatch(rows, &rids));

  // Then each index is built bottom-up from its sorted (key, rid) entries.
  // Index builds are independent of each other, so fan them out when the
  // load pool is available and there is more than one index.
  auto build_index = [&](size_t i) -> Status {
    TableIndex* idx = indexes_[i].get();
    std::vector<BPlusTree::Entry> entries;
    entries.reserve(rows.size());
    for (size_t r = 0; r < rows.size(); ++r) {
      entries.emplace_back(idx->KeyFor(rows[r]), rids[r]);
    }
    std::sort(entries.begin(), entries.end(),
              [](const BPlusTree::Entry& a, const BPlusTree::Entry& b) {
                int c = a.first.compare(b.first);
                if (c != 0) return c < 0;
                return a.second < b.second;
              });
    if (idx->unique) {
      for (size_t e = 1; e < entries.size(); ++e) {
        if (entries[e].first == entries[e - 1].first) {
          return Status::Aborted(
              "unique constraint violated on index " + idx->name);
        }
      }
    }
    return idx->BulkBuild(std::move(entries));
  };
  if (pool != nullptr && indexes_.size() > 1) {
    OXML_RETURN_NOT_OK(pool->ParallelFor(indexes_.size(), build_index));
  } else {
    for (size_t i = 0; i < indexes_.size(); ++i) {
      OXML_RETURN_NOT_OK(build_index(i));
    }
  }
  if (stats != nullptr) stats->rows_inserted += rows.size();
  return Status::OK();
}

Status TableInfo::DeleteRow(const Rid& rid, ExecStats* stats) {
  OXML_ASSIGN_OR_RETURN(Row row, heap_->Get(rid));
  for (const auto& idx : indexes_) {
    idx->Erase(idx->KeyFor(row), rid);
  }
  OXML_RETURN_NOT_OK(heap_->Delete(rid));
  if (stats != nullptr) ++stats->rows_deleted;
  return Status::OK();
}

Result<Rid> TableInfo::UpdateRow(const Rid& rid, const Row& new_row,
                                 ExecStats* stats) {
  if (new_row.size() != schema_.size()) {
    return Status::InvalidArgument("row width mismatch for table " + name_);
  }
  OXML_ASSIGN_OR_RETURN(Row old_row, heap_->Get(rid));

  // Unique pre-check (ignoring this row's own entry).
  for (const auto& idx : indexes_) {
    if (!idx->unique) continue;
    std::string new_key = idx->KeyFor(new_row);
    if (new_key == idx->KeyFor(old_row)) continue;
    if (idx->tree.Contains(new_key)) {
      return Status::Aborted("unique constraint violated on index " +
                             idx->name);
    }
  }

  OXML_ASSIGN_OR_RETURN(Rid new_rid, heap_->Update(rid, new_row));
  for (const auto& idx : indexes_) {
    std::string old_key = idx->KeyFor(old_row);
    std::string new_key = idx->KeyFor(new_row);
    if (old_key == new_key && new_rid == rid) continue;
    idx->Erase(old_key, rid);
    idx->Insert(new_key, new_rid);
  }
  if (stats != nullptr) ++stats->rows_updated;
  return new_rid;
}

}  // namespace oxml
