#include "src/relational/page.h"

#include <cstring>
#include <vector>

namespace oxml {

namespace {
constexpr size_t kHeaderSize = 8;
constexpr size_t kSlotEntrySize = 4;

uint16_t LoadU16(const char* p) {
  uint16_t v;
  std::memcpy(&v, p, 2);
  return v;
}
void StoreU16(char* p, uint16_t v) { std::memcpy(p, &v, 2); }
uint32_t LoadU32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}
void StoreU32(char* p, uint32_t v) { std::memcpy(p, &v, 4); }
}  // namespace

void SlottedPage::Initialize(char* data) {
  std::memset(data, 0, kHeaderSize);
  StoreU16(data, 0);                                   // slot_count
  StoreU16(data + 2, static_cast<uint16_t>(kPageSize));  // cell_start
  StoreU32(data + 4, kInvalidPageId);                  // next_page
}

uint16_t SlottedPage::slot_count() const { return LoadU16(data_); }
void SlottedPage::set_slot_count(uint16_t v) { StoreU16(data_, v); }
uint16_t SlottedPage::cell_start() const { return LoadU16(data_ + 2); }
void SlottedPage::set_cell_start(uint16_t v) { StoreU16(data_ + 2, v); }
uint32_t SlottedPage::next_page() const { return LoadU32(data_ + 4); }
void SlottedPage::set_next_page(uint32_t id) { StoreU32(data_ + 4, id); }

void SlottedPage::GetSlot(uint16_t slot, uint16_t* offset,
                          uint16_t* size) const {
  const char* p = data_ + kHeaderSize + slot * kSlotEntrySize;
  *offset = LoadU16(p);
  *size = LoadU16(p + 2);
}

void SlottedPage::SetSlot(uint16_t slot, uint16_t offset, uint16_t size) {
  char* p = data_ + kHeaderSize + slot * kSlotEntrySize;
  StoreU16(p, offset);
  StoreU16(p + 2, size);
}

size_t SlottedPage::FreeSpace() const {
  size_t dir_end = kHeaderSize + slot_count() * kSlotEntrySize;
  size_t start = cell_start();
  return start > dir_end ? start - dir_end : 0;
}

size_t SlottedPage::LiveCount() const {
  size_t live = 0;
  for (uint16_t i = 0; i < slot_count(); ++i) {
    uint16_t off, size;
    GetSlot(i, &off, &size);
    if (off != kDeletedOffset) ++live;
  }
  return live;
}

void SlottedPage::Compact() {
  struct Cell {
    uint16_t slot;
    std::string bytes;
  };
  std::vector<Cell> cells;
  for (uint16_t i = 0; i < slot_count(); ++i) {
    uint16_t off, size;
    GetSlot(i, &off, &size);
    if (off == kDeletedOffset) continue;
    cells.push_back({i, std::string(data_ + off, size)});
  }
  uint16_t pos = static_cast<uint16_t>(kPageSize);
  for (const Cell& c : cells) {
    pos = static_cast<uint16_t>(pos - c.bytes.size());
    std::memcpy(data_ + pos, c.bytes.data(), c.bytes.size());
    SetSlot(c.slot, pos, static_cast<uint16_t>(c.bytes.size()));
  }
  set_cell_start(pos);
}

Result<uint16_t> SlottedPage::Insert(std::string_view cell) {
  if (cell.size() + kSlotEntrySize > kPageSize - kHeaderSize) {
    return Status::InvalidArgument("cell larger than a page");
  }
  // Reuse a deleted slot's directory entry when possible (cheaper directory).
  int reuse = -1;
  for (uint16_t i = 0; i < slot_count(); ++i) {
    uint16_t off, size;
    GetSlot(i, &off, &size);
    if (off == kDeletedOffset) {
      reuse = i;
      break;
    }
  }
  size_t needed = cell.size() + (reuse < 0 ? kSlotEntrySize : 0);
  if (FreeSpace() < needed) {
    Compact();
    if (FreeSpace() < needed) {
      return Status::OutOfRange("page full");
    }
  }
  uint16_t pos = static_cast<uint16_t>(cell_start() - cell.size());
  std::memcpy(data_ + pos, cell.data(), cell.size());
  set_cell_start(pos);
  uint16_t slot;
  if (reuse >= 0) {
    slot = static_cast<uint16_t>(reuse);
  } else {
    slot = slot_count();
    set_slot_count(static_cast<uint16_t>(slot + 1));
  }
  SetSlot(slot, pos, static_cast<uint16_t>(cell.size()));
  return slot;
}

Result<std::string_view> SlottedPage::Get(uint16_t slot) const {
  if (slot >= slot_count()) return Status::NotFound("bad slot");
  uint16_t off, size;
  GetSlot(slot, &off, &size);
  if (off == kDeletedOffset) return Status::NotFound("deleted slot");
  return std::string_view(data_ + off, size);
}

Status SlottedPage::Delete(uint16_t slot) {
  if (slot >= slot_count()) return Status::NotFound("bad slot");
  uint16_t off, size;
  GetSlot(slot, &off, &size);
  if (off == kDeletedOffset) return Status::NotFound("already deleted");
  SetSlot(slot, kDeletedOffset, 0);
  return Status::OK();
}

Status SlottedPage::Update(uint16_t slot, std::string_view cell) {
  if (slot >= slot_count()) return Status::NotFound("bad slot");
  uint16_t off, size;
  GetSlot(slot, &off, &size);
  if (off == kDeletedOffset) return Status::NotFound("deleted slot");
  if (cell.size() <= size) {
    std::memcpy(data_ + off, cell.data(), cell.size());
    SetSlot(slot, off, static_cast<uint16_t>(cell.size()));
    return Status::OK();
  }
  // Relocate within the page: free the old cell, then insert fresh bytes.
  SetSlot(slot, kDeletedOffset, 0);
  if (FreeSpace() < cell.size()) {
    Compact();
    if (FreeSpace() < cell.size()) {
      // Restore nothing: the caller will re-insert elsewhere; mark deleted.
      return Status::OutOfRange("page full on update");
    }
  }
  uint16_t pos = static_cast<uint16_t>(cell_start() - cell.size());
  std::memcpy(data_ + pos, cell.data(), cell.size());
  set_cell_start(pos);
  SetSlot(slot, pos, static_cast<uint16_t>(cell.size()));
  return Status::OK();
}

}  // namespace oxml
