#include "src/relational/schema.h"

#include <cstring>

namespace oxml {

int Schema::IndexOf(std::string_view name) const {
  // Pass 1: exact match on the stored name.
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return static_cast<int>(i);
  }
  // Pass 2: match against the unqualified suffix of qualified columns.
  int found = -1;
  for (size_t i = 0; i < columns_.size(); ++i) {
    const std::string& col = columns_[i].name;
    size_t dot = col.rfind('.');
    if (dot == std::string::npos) continue;
    if (std::string_view(col).substr(dot + 1) == name) {
      if (found >= 0) return -2;  // ambiguous
      found = static_cast<int>(i);
    }
  }
  return found;
}

void Schema::Append(const Schema& other, std::string_view qualifier) {
  for (const Column& c : other.columns()) {
    std::string name = c.name;
    if (!qualifier.empty() && name.find('.') == std::string::npos) {
      name = std::string(qualifier) + "." + name;
    }
    columns_.push_back({std::move(name), c.type});
  }
}

std::string Schema::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) out += ", ";
    out += columns_[i].name;
    out += " ";
    out += TypeIdToString(columns_[i].type);
  }
  out += ")";
  return out;
}

namespace {

void PutU32(uint32_t v, std::string* out) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out->append(buf, 4);
}

void PutU64(uint64_t v, std::string* out) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out->append(buf, 8);
}

}  // namespace

std::string EncodeRow(const Schema& schema, const Row& row) {
  std::string out;
  size_t n = schema.size();
  size_t bitmap_bytes = (n + 7) / 8;
  out.assign(bitmap_bytes, '\0');
  for (size_t i = 0; i < n; ++i) {
    const Value& v = row[i];
    if (v.is_null()) {
      out[i / 8] |= static_cast<char>(1 << (i % 8));
      continue;
    }
    switch (schema.column(i).type) {
      case TypeId::kInt:
        PutU64(static_cast<uint64_t>(v.AsInt()), &out);
        break;
      case TypeId::kDouble: {
        double d = v.AsDouble();
        uint64_t bits;
        std::memcpy(&bits, &d, 8);
        PutU64(bits, &out);
        break;
      }
      case TypeId::kText:
      case TypeId::kBlob:
        PutU32(static_cast<uint32_t>(v.AsString().size()), &out);
        out.append(v.AsString());
        break;
      case TypeId::kNull:
        break;
    }
  }
  return out;
}

Result<Row> DecodeRow(const Schema& schema, std::string_view bytes) {
  size_t n = schema.size();
  size_t bitmap_bytes = (n + 7) / 8;
  if (bytes.size() < bitmap_bytes) {
    return Status::Internal("row bytes shorter than null bitmap");
  }
  Row row;
  row.reserve(n);
  size_t pos = bitmap_bytes;
  for (size_t i = 0; i < n; ++i) {
    bool is_null = (bytes[i / 8] >> (i % 8)) & 1;
    if (is_null) {
      row.push_back(Value::Null());
      continue;
    }
    switch (schema.column(i).type) {
      case TypeId::kInt: {
        if (pos + 8 > bytes.size()) return Status::Internal("truncated row");
        uint64_t v;
        std::memcpy(&v, bytes.data() + pos, 8);
        pos += 8;
        row.push_back(Value::Int(static_cast<int64_t>(v)));
        break;
      }
      case TypeId::kDouble: {
        if (pos + 8 > bytes.size()) return Status::Internal("truncated row");
        uint64_t bits;
        std::memcpy(&bits, bytes.data() + pos, 8);
        pos += 8;
        double d;
        std::memcpy(&d, &bits, 8);
        row.push_back(Value::Double(d));
        break;
      }
      case TypeId::kText:
      case TypeId::kBlob: {
        if (pos + 4 > bytes.size()) return Status::Internal("truncated row");
        uint32_t len;
        std::memcpy(&len, bytes.data() + pos, 4);
        pos += 4;
        if (pos + len > bytes.size()) return Status::Internal("truncated row");
        std::string s(bytes.substr(pos, len));
        pos += len;
        if (schema.column(i).type == TypeId::kText) {
          row.push_back(Value::Text(std::move(s)));
        } else {
          row.push_back(Value::Blob(std::move(s)));
        }
        break;
      }
      case TypeId::kNull:
        row.push_back(Value::Null());
        break;
    }
  }
  return row;
}

}  // namespace oxml
