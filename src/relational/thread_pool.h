#ifndef OXML_RELATIONAL_THREAD_POOL_H_
#define OXML_RELATIONAL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "src/common/result.h"

namespace oxml {

/// A fixed-size pool of worker threads for intra-query parallelism.
/// Deliberately work-stealing-free: ParallelFor hands out shard indices
/// from one atomic counter (morsel-driven scheduling), which balances load
/// without per-worker deques. Tasks must never submit nested tasks — the
/// parallel operators drain their children before fanning out, so a
/// ParallelFor always runs to completion even when every pool thread is
/// busy (the calling thread participates).
class ThreadPool {
 public:
  /// `num_threads` of 0 picks std::thread::hardware_concurrency().
  explicit ThreadPool(size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Worker threads owned by the pool (>= 1).
  size_t size() const { return threads_.size(); }

  /// Runs `fn(shard)` for every shard in [0, shards). Shards are claimed
  /// dynamically by up to size() pool workers plus the calling thread, so
  /// the call makes progress even when the pool is saturated by other
  /// callers. Blocks until every shard has finished; returns the first
  /// non-OK status (remaining shards still run, their errors are dropped).
  Status ParallelFor(size_t shards, const std::function<Status(size_t)>& fn);

  /// Enqueues one standalone task for any worker to run (fire-and-forget;
  /// the caller arranges its own completion signalling). Used by the server
  /// front end to execute protocol frames on pool workers. Tasks queued at
  /// destruction time still run: the destructor drains the queue before
  /// joining. Unlike ParallelFor, the calling thread never participates.
  void Submit(std::function<void()> task);

  /// Drains the queue and joins every worker; idempotent (the destructor
  /// calls it). Lets an owner quiesce the pool while keeping the object —
  /// and any pointers to it that draining tasks still dereference — alive,
  /// then destroy it separately. A task submitted after Shutdown() returns
  /// is never run.
  void Shutdown();

 private:
  void WorkerLoop();

  std::vector<std::thread> threads_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool shutdown_ = false;
};

}  // namespace oxml

#endif  // OXML_RELATIONAL_THREAD_POOL_H_
