#ifndef OXML_RELATIONAL_BUFFER_POOL_H_
#define OXML_RELATIONAL_BUFFER_POOL_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/result.h"
#include "src/relational/page.h"

namespace oxml {

class WriteAheadLog;

/// Abstract page store underneath the buffer pool.
class StorageBackend {
 public:
  virtual ~StorageBackend() = default;
  /// Allocates a zeroed page, returning its id (ids are dense from 0).
  virtual Result<uint32_t> AllocatePage() = 0;
  virtual Status ReadPage(uint32_t id, char* buf) = 0;
  virtual Status WritePage(uint32_t id, const char* buf) = 0;
  /// Forces previously written pages to stable storage. A no-op for
  /// memory-resident backends.
  virtual Status Sync() { return Status::OK(); }
  virtual uint32_t page_count() const = 0;
};

/// Keeps every page in RAM (a main-memory database configuration).
class MemoryBackend : public StorageBackend {
 public:
  Result<uint32_t> AllocatePage() override;
  Status ReadPage(uint32_t id, char* buf) override;
  Status WritePage(uint32_t id, const char* buf) override;
  uint32_t page_count() const override {
    return static_cast<uint32_t>(pages_.size());
  }

 private:
  std::vector<std::unique_ptr<char[]>> pages_;
};

/// Stores pages in a file via pread/pwrite (a disk-resident configuration).
/// All transfers retry on EINTR and loop on short reads/writes.
class FileBackend : public StorageBackend {
 public:
  /// Opens the file. With `truncate` (the default) any existing content is
  /// discarded; otherwise existing pages are preserved and the page count
  /// is derived from the file size (which must be page-aligned).
  static Result<std::unique_ptr<FileBackend>> Open(const std::string& path,
                                                   bool truncate = true);
  ~FileBackend() override;

  Result<uint32_t> AllocatePage() override;
  Status ReadPage(uint32_t id, char* buf) override;
  Status WritePage(uint32_t id, const char* buf) override;
  Status Sync() override;
  uint32_t page_count() const override { return page_count_; }

 private:
  FileBackend(int fd, std::string path) : fd_(fd), path_(std::move(path)) {}
  int fd_;
  std::string path_;
  uint32_t page_count_ = 0;
};

class BufferPool;

/// RAII pin on a buffered page. While a PageHandle is alive the frame will
/// not be evicted. Call MarkDirty() after mutating data().
class PageHandle {
 public:
  PageHandle() = default;
  PageHandle(BufferPool* pool, uint32_t page_id, char* data);
  ~PageHandle();

  PageHandle(PageHandle&& other) noexcept;
  PageHandle& operator=(PageHandle&& other) noexcept;
  PageHandle(const PageHandle&) = delete;
  PageHandle& operator=(const PageHandle&) = delete;

  bool valid() const { return pool_ != nullptr; }
  uint32_t page_id() const { return page_id_; }
  char* data() const { return data_; }
  void MarkDirty();

 private:
  void Release();
  BufferPool* pool_ = nullptr;
  uint32_t page_id_ = kInvalidPageId;
  char* data_ = nullptr;
};

/// A pin-counted LRU buffer pool over a StorageBackend, with single-level
/// transaction support.
///
/// Transaction discipline (no-steal, redo-only WAL):
///  - While a transaction is open, every page it dirties is marked
///    `txn_dirty`, its pre-image is retained for rollback, and the frame is
///    exempt from eviction and FlushAll — uncommitted bytes never reach the
///    data file.
///  - CommitTxn appends the full image of every txn-dirty page to the WAL
///    (when one is attached) followed by a commit record; only then do the
///    frames become ordinary dirty frames, eligible for write-back.
///  - RollbackTxn restores the pre-images, leaving the pool byte-identical
///    to the last committed state.
/// BeginTxn must not be called while mutable page handles are outstanding:
/// pre-images are captured on the first fetch of a page inside the
/// transaction.
///
/// Threading (see docs/INTERNALS.md §9): any number of threads may call
/// FetchPage/Unpin concurrently. The page table is guarded by a
/// reader–writer latch whose shared mode covers the hit fast path (lookup
/// plus an atomic pin-count bump); misses, NewPage, eviction, FlushAll and
/// the transaction entry points take it exclusively. While a transaction
/// is open every fetch takes the exclusive path — undo capture mutates the
/// unsynchronized undo map, and the txn owner's parallel-scan workers call
/// FetchPage concurrently without holding the statement latch. LRU
/// bookkeeping lives under its own small mutex and is skipped entirely for
/// unbounded pools (capacity 0). Transactions and every other mutation are
/// additionally serialized by the Database-level statement latch.
class BufferPool {
 public:
  /// `capacity` is the number of resident frames; 0 means unbounded
  /// (sensible with MemoryBackend). A transaction whose footprint exceeds
  /// the capacity temporarily grows the pool past it (no-steal forbids
  /// evicting its pages).
  BufferPool(std::unique_ptr<StorageBackend> backend, size_t capacity = 0);
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Allocates a fresh page and returns it pinned (contents zeroed).
  Result<PageHandle> NewPage();

  /// Returns the page pinned, faulting it in from the backend if needed.
  Result<PageHandle> FetchPage(uint32_t page_id);

  /// Writes back all dirty frames except those of an open transaction.
  Status FlushAll();

  /// fsyncs the backend (data file durability point of a checkpoint).
  Status SyncBackend() { return backend_->Sync(); }

  // ------------------------------------------------------------ transactions

  /// Attaches the WAL that CommitTxn writes redo records to (may be null:
  /// transactions then provide in-memory atomicity only).
  void SetWal(WriteAheadLog* wal) { wal_ = wal; }

  Status BeginTxn();
  /// Logs every txn-dirty page image + a commit record to the attached WAL
  /// and retires the transaction. On failure the transaction stays open so
  /// the caller can roll it back.
  Status CommitTxn();
  /// Restores the pre-images of every page the transaction dirtied.
  Status RollbackTxn();
  bool InTxn() const { return in_txn_; }
  /// Number of pages dirtied by the open transaction.
  size_t TxnDirtyCount() const { return txn_dirty_count_; }

  /// When set, the destructor discards dirty pages instead of flushing them
  /// (used to simulate a crash in tests).
  void set_discard_on_destroy(bool v) { discard_on_destroy_ = v; }

  uint32_t page_count() const {
    std::shared_lock<std::shared_mutex> lock(table_mu_);
    return backend_->page_count();
  }
  uint64_t hit_count() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t miss_count() const {
    return misses_.load(std::memory_order_relaxed);
  }

  /// Credits `n` FetchPage calls that a batch operation avoided by holding
  /// a pinned handle across rows (e.g. HeapTable::AppendBatch caching the
  /// tail page). Pure accounting; lets stats distinguish "cheap because
  /// cached" from "cheap because skipped".
  void NoteSavedFetches(uint64_t n) {
    saved_fetches_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t saved_fetch_count() const {
    return saved_fetches_.load(std::memory_order_relaxed);
  }

 private:
  friend class PageHandle;

  struct Frame {
    std::unique_ptr<char[]> data;
    uint32_t page_id = kInvalidPageId;
    /// Atomic so concurrent readers can pin under the shared table latch.
    std::atomic<int> pin_count{0};
    bool dirty = false;
    bool txn_dirty = false;  // dirtied by the open transaction
    std::list<uint32_t>::iterator lru_pos;
    bool in_lru = false;
  };

  /// Rollback state for one page touched inside the open transaction.
  struct TxnUndo {
    std::unique_ptr<char[]> before;  // null for pages born in this txn
    bool was_dirty = false;
    bool is_new = false;
  };

  void Unpin(uint32_t page_id, bool dirty);
  /// Evicts one unpinned, non-txn-dirty frame if at capacity. Grows past
  /// capacity when only txn-dirty frames remain; errors if all are pinned.
  /// Caller must hold `table_mu_` exclusively.
  Status EnsureCapacity();
  /// Records the pre-image of `frame` if the open transaction has not
  /// touched this page yet.
  void CaptureUndo(uint32_t page_id, const Frame& frame);
  /// Moves the frame off the LRU list (it just got pinned). No-op for
  /// unbounded pools.
  void LruRemove(Frame* f);
  /// Makes an unpinned frame eviction-eligible. No-op for unbounded pools.
  void LruAdd(uint32_t page_id, Frame* f);

  std::unique_ptr<StorageBackend> backend_;
  size_t capacity_;
  /// Guards `frames_` (and the backend): shared for the hit fast path,
  /// exclusive for misses / allocation / eviction / flush / txn entry
  /// points.
  mutable std::shared_mutex table_mu_;
  std::unordered_map<uint32_t, Frame> frames_;
  /// Guards `lru_` plus the in_lru/lru_pos fields of every frame.
  std::mutex lru_mu_;
  std::list<uint32_t> lru_;  // front = most recently used
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> saved_fetches_{0};

  WriteAheadLog* wal_ = nullptr;
  bool in_txn_ = false;
  size_t txn_dirty_count_ = 0;
  std::unordered_map<uint32_t, TxnUndo> undo_;
  bool discard_on_destroy_ = false;
};

}  // namespace oxml

#endif  // OXML_RELATIONAL_BUFFER_POOL_H_
