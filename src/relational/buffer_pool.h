#ifndef OXML_RELATIONAL_BUFFER_POOL_H_
#define OXML_RELATIONAL_BUFFER_POOL_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/result.h"
#include "src/relational/page.h"

namespace oxml {

class WriteAheadLog;

/// Abstract page store underneath the buffer pool.
class StorageBackend {
 public:
  virtual ~StorageBackend() = default;
  /// Allocates a zeroed page, returning its id (ids are dense from 0).
  virtual Result<uint32_t> AllocatePage() = 0;
  virtual Status ReadPage(uint32_t id, char* buf) = 0;
  virtual Status WritePage(uint32_t id, const char* buf) = 0;
  /// Forces previously written pages to stable storage. A no-op for
  /// memory-resident backends.
  virtual Status Sync() { return Status::OK(); }
  virtual uint32_t page_count() const = 0;
};

/// Keeps every page in RAM (a main-memory database configuration).
class MemoryBackend : public StorageBackend {
 public:
  Result<uint32_t> AllocatePage() override;
  Status ReadPage(uint32_t id, char* buf) override;
  Status WritePage(uint32_t id, const char* buf) override;
  uint32_t page_count() const override {
    return static_cast<uint32_t>(pages_.size());
  }

 private:
  std::vector<std::unique_ptr<char[]>> pages_;
};

/// Stores pages in a file via pread/pwrite (a disk-resident configuration).
/// All transfers retry on EINTR and loop on short reads/writes.
/// Shared counter for transient-I/O retries, surfaced as
/// ExecStats::io_retries. shared_ptr because the pool's backend (owned via
/// the BufferPool) can outlive the Database's ExecStats during teardown.
using IoRetryCounter = std::shared_ptr<std::atomic<uint64_t>>;

/// The bounded retry-with-backoff policy shared by every durable-I/O layer
/// (FileBackend for real EINTR/EAGAIN, FaultInjectingBackend and the WAL
/// for injected transient faults): up to kMaxAttempts tries with an
/// exponentially growing sleep in between.
struct IoRetryPolicy {
  static constexpr int kMaxAttempts = 6;
  /// Sleeps ~64us << attempt (capped at ~2ms). attempt is 0-based.
  static void Backoff(int attempt);
};

class FileBackend : public StorageBackend {
 public:
  /// Opens the file. With `truncate` (the default) any existing content is
  /// discarded; otherwise existing pages are preserved and the page count
  /// is derived from the file size (which must be page-aligned).
  static Result<std::unique_ptr<FileBackend>> Open(const std::string& path,
                                                   bool truncate = true);
  ~FileBackend() override;

  Result<uint32_t> AllocatePage() override;
  Status ReadPage(uint32_t id, char* buf) override;
  Status WritePage(uint32_t id, const char* buf) override;
  Status Sync() override;
  uint32_t page_count() const override { return page_count_; }

  /// Attaches the ExecStats retry counter (see IoRetryCounter). Optional;
  /// retries happen (and are merely uncounted) without it.
  void set_retry_counter(IoRetryCounter retries) {
    retries_ = std::move(retries);
  }

 private:
  FileBackend(int fd, std::string path) : fd_(fd), path_(std::move(path)) {}

  /// Notes one transient-error retry and decides whether to keep going.
  bool NoteRetry(int* attempt);

  int fd_;
  std::string path_;
  uint32_t page_count_ = 0;
  IoRetryCounter retries_;
};

class BufferPool;

/// A reader's MVCC snapshot: queries executed under it observe the state as
/// of commit LSN `lsn` — the newest committed version of every page, never
/// bytes dirtied by a still-open transaction. Established per statement by
/// the Database layer and consulted by BufferPool::FetchPage through a
/// thread-local (see CurrentReadSnapshot), so deep call chains — heap
/// iterators, B+tree probes, parallel-scan workers — inherit it without
/// plumbing a parameter through every signature.
struct ReadSnapshot {
  uint64_t lsn = 0;
};

/// The snapshot the calling thread reads under, or nullptr when it reads
/// current state (no open transaction, or the thread IS the transaction
/// owner and must see its own uncommitted writes).
const ReadSnapshot* CurrentReadSnapshot();

/// Statement-scoped snapshot activation (reader side). Restores the
/// previous thread-local on destruction so nested statements compose.
class ScopedReadSnapshot {
 public:
  /// Inactive scope: leaves the thread-local untouched.
  ScopedReadSnapshot() = default;
  /// Activates a snapshot at `lsn` for this thread until destruction.
  explicit ScopedReadSnapshot(uint64_t lsn);
  ~ScopedReadSnapshot();

  ScopedReadSnapshot(const ScopedReadSnapshot&) = delete;
  ScopedReadSnapshot& operator=(const ScopedReadSnapshot&) = delete;

 private:
  ReadSnapshot snap_;
  const ReadSnapshot* prev_ = nullptr;
  bool active_ = false;
};

/// Propagates a statement's snapshot (possibly null) onto a worker thread
/// for the duration of one parallel task. ThreadPool workers are shared
/// across statements, so each task re-installs the coordinating statement's
/// snapshot and restores the worker's previous value on exit.
class SnapshotTaskScope {
 public:
  explicit SnapshotTaskScope(const ReadSnapshot* snap);
  ~SnapshotTaskScope();

  SnapshotTaskScope(const SnapshotTaskScope&) = delete;
  SnapshotTaskScope& operator=(const SnapshotTaskScope&) = delete;

 private:
  const ReadSnapshot* prev_ = nullptr;
};

/// RAII pin on a buffered page. While a PageHandle is alive the frame will
/// not be evicted. Call MarkDirty() after mutating data().
///
/// A handle may instead be backed by an immutable published page *version*
/// (snapshot reads): it then owns a share of the version's buffer rather
/// than a pin, and MarkDirty is a no-op — version images are never written.
class PageHandle {
 public:
  PageHandle() = default;
  PageHandle(BufferPool* pool, uint32_t page_id, char* data);
  /// Version-backed handle: keeps `image` alive for the handle's lifetime.
  PageHandle(std::shared_ptr<char[]> image, uint32_t page_id);
  ~PageHandle();

  PageHandle(PageHandle&& other) noexcept;
  PageHandle& operator=(PageHandle&& other) noexcept;
  PageHandle(const PageHandle&) = delete;
  PageHandle& operator=(const PageHandle&) = delete;

  bool valid() const { return data_ != nullptr; }
  uint32_t page_id() const { return page_id_; }
  char* data() const { return data_; }
  void MarkDirty();

 private:
  void Release();
  BufferPool* pool_ = nullptr;
  uint32_t page_id_ = kInvalidPageId;
  char* data_ = nullptr;
  std::shared_ptr<char[]> owned_;  // set for version-backed handles
};

/// A pin-counted LRU buffer pool over a StorageBackend, with single-level
/// transaction support.
///
/// Transaction discipline (no-steal, redo-only WAL):
///  - While a transaction is open, every page it dirties is marked
///    `txn_dirty`, its pre-image is retained for rollback, and the frame is
///    exempt from eviction and FlushAll — uncommitted bytes never reach the
///    data file.
///  - CommitTxn appends the full image of every txn-dirty page to the WAL
///    (when one is attached) followed by a commit record; only then do the
///    frames become ordinary dirty frames, eligible for write-back.
///  - RollbackTxn restores the pre-images, leaving the pool byte-identical
///    to the last committed state.
/// BeginTxn must not be called while mutable page handles are outstanding:
/// pre-images are captured on the first fetch of a page inside the
/// transaction.
///
/// Threading (see docs/INTERNALS.md §9): any number of threads may call
/// FetchPage/Unpin concurrently. The page table is guarded by a
/// reader–writer latch whose shared mode covers the hit fast path (lookup
/// plus an atomic pin-count bump); misses, NewPage, eviction, FlushAll and
/// the transaction entry points take it exclusively. While a transaction
/// is open the txn owner's fetches take the exclusive path — undo capture
/// mutates the unsynchronized undo map, and the owner's parallel-scan
/// workers call FetchPage concurrently without holding the statement
/// latch. LRU bookkeeping lives under its own small mutex and is skipped
/// entirely for unbounded pools (capacity 0). Transactions and every other
/// mutation are additionally serialized by the Database-level statement
/// latch.
///
/// MVCC snapshot reads (INTERNALS.md §11): every pre-image the undo log
/// captures is simultaneously *published* as an immutable page version
/// stamped with the commit LSN it belongs to (the newest committed LSN at
/// capture time — i.e. the state the open transaction started from). A
/// thread carrying a ReadSnapshot (set by the Database layer for reader
/// statements that overlap a foreign open transaction) is served, for
/// txn-dirty frames, the newest published version with base LSN <= its
/// snapshot LSN instead of the frame's uncommitted bytes; clean resident
/// frames and backend faults already hold committed state and are served
/// directly. Version buffers are shared with the undo log (one copy per
/// page per transaction) and retired wholesale when the transaction
/// commits or rolls back — outstanding version-backed handles keep their
/// buffer alive independently via shared_ptr.
class BufferPool {
 public:
  /// `capacity` is the number of resident frames; 0 means unbounded
  /// (sensible with MemoryBackend). A transaction whose footprint exceeds
  /// the capacity temporarily grows the pool past it (no-steal forbids
  /// evicting its pages).
  BufferPool(std::unique_ptr<StorageBackend> backend, size_t capacity = 0);
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Allocates a fresh page and returns it pinned (contents zeroed).
  Result<PageHandle> NewPage();

  /// Returns the page pinned, faulting it in from the backend if needed.
  Result<PageHandle> FetchPage(uint32_t page_id);

  /// Writes back all dirty frames except those of an open transaction.
  Status FlushAll();

  /// fsyncs the backend (data file durability point of a checkpoint).
  Status SyncBackend() { return backend_->Sync(); }

  // ------------------------------------------------------------ transactions

  /// Attaches the WAL that CommitTxn writes redo records to (may be null:
  /// transactions then provide in-memory atomicity only).
  void SetWal(WriteAheadLog* wal) { wal_ = wal; }

  Status BeginTxn();
  /// Logs every txn-dirty page image + a commit record to the attached WAL
  /// and retires the transaction. On failure the transaction stays open so
  /// the caller can roll it back.
  Status CommitTxn();
  /// Restores the pre-images of every page the transaction dirtied.
  Status RollbackTxn();
  bool InTxn() const { return in_txn_; }
  /// Number of pages dirtied by the open transaction.
  size_t TxnDirtyCount() const { return txn_dirty_count_; }

  /// When set, the destructor discards dirty pages instead of flushing them
  /// (used to simulate a crash in tests).
  void set_discard_on_destroy(bool v) { discard_on_destroy_ = v; }

  // --------------------------------------------------------- MVCC snapshots

  /// Gates version publication and snapshot-serving FetchPage. On by
  /// default; Database::Open turns it off when DatabaseOptions::enable_mvcc
  /// is false (readers then rely on the exclusive statement latch alone).
  void set_mvcc_enabled(bool v) { mvcc_enabled_ = v; }
  bool mvcc_enabled() const { return mvcc_enabled_; }

  /// Reseeds the commit-LSN counter from WAL recovery, so LSNs assigned
  /// after a reopen stay monotone across the crash.
  void SeedCommitLsn(uint64_t lsn) {
    last_commit_lsn_.store(lsn, std::memory_order_release);
  }
  /// The LSN of the newest committed transaction — the snapshot a reader
  /// statement starting now should run under.
  uint64_t last_commit_lsn() const {
    return last_commit_lsn_.load(std::memory_order_acquire);
  }

  uint64_t snapshot_read_count() const {
    return snapshot_reads_.load(std::memory_order_relaxed);
  }
  /// Cumulative page versions published (one per page per transaction).
  uint64_t versions_published_count() const {
    return versions_published_.load(std::memory_order_relaxed);
  }
  /// High-water mark of any single page's version-chain length. With one
  /// transaction open at a time this is 1 whenever MVCC is exercised.
  uint64_t version_chain_max() const {
    return version_chain_max_.load(std::memory_order_relaxed);
  }
  /// Versions currently retained for the open transaction (0 when idle).
  uint64_t versions_retained() const {
    std::lock_guard<std::mutex> lock(versions_mu_);
    uint64_t n = 0;
    for (const auto& [id, chain] : versions_) n += chain.size();
    return n;
  }

  uint32_t page_count() const {
    std::shared_lock<std::shared_mutex> lock(table_mu_);
    return backend_->page_count();
  }
  uint64_t hit_count() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t miss_count() const {
    return misses_.load(std::memory_order_relaxed);
  }

  /// Credits `n` FetchPage calls that a batch operation avoided by holding
  /// a pinned handle across rows (e.g. HeapTable::AppendBatch caching the
  /// tail page). Pure accounting; lets stats distinguish "cheap because
  /// cached" from "cheap because skipped".
  void NoteSavedFetches(uint64_t n) {
    saved_fetches_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t saved_fetch_count() const {
    return saved_fetches_.load(std::memory_order_relaxed);
  }

 private:
  friend class PageHandle;

  struct Frame {
    std::unique_ptr<char[]> data;
    uint32_t page_id = kInvalidPageId;
    /// Atomic so concurrent readers can pin under the shared table latch.
    std::atomic<int> pin_count{0};
    bool dirty = false;
    bool txn_dirty = false;  // dirtied by the open transaction
    std::list<uint32_t>::iterator lru_pos;
    bool in_lru = false;
  };

  /// Rollback state for one page touched inside the open transaction. The
  /// pre-image buffer is shared with the published version chain (MVCC), so
  /// capture costs one copy regardless of how many readers snapshot it.
  struct TxnUndo {
    std::shared_ptr<char[]> before;  // null for pages born in this txn
    bool was_dirty = false;
    bool is_new = false;
  };

  /// One published committed image of a page. `base_lsn` is the commit LSN
  /// whose state the image belongs to; a reader with snapshot LSN S is
  /// served the newest version with base_lsn <= S.
  struct PageVersion {
    std::shared_ptr<char[]> image;
    uint64_t base_lsn = 0;
  };

  void Unpin(uint32_t page_id, bool dirty);
  /// Serves `page_id` from the published version chains for a reader whose
  /// snapshot is `snap_lsn`. Caller holds `table_mu_` (either mode).
  Result<PageHandle> ServeVersion(uint32_t page_id, uint64_t snap_lsn);
  /// Drops all published versions (transaction end). Caller holds
  /// `table_mu_` exclusively.
  void RetireVersions();
  /// Evicts one unpinned, non-txn-dirty frame if at capacity. Grows past
  /// capacity when only txn-dirty frames remain; errors if all are pinned.
  /// Caller must hold `table_mu_` exclusively.
  Status EnsureCapacity();
  /// Records the pre-image of `frame` if the open transaction has not
  /// touched this page yet.
  void CaptureUndo(uint32_t page_id, const Frame& frame);
  /// Moves the frame off the LRU list (it just got pinned). No-op for
  /// unbounded pools.
  void LruRemove(Frame* f);
  /// Makes an unpinned frame eviction-eligible. No-op for unbounded pools.
  void LruAdd(uint32_t page_id, Frame* f);

  std::unique_ptr<StorageBackend> backend_;
  size_t capacity_;
  /// Guards `frames_` (and the backend): shared for the hit fast path,
  /// exclusive for misses / allocation / eviction / flush / txn entry
  /// points.
  mutable std::shared_mutex table_mu_;
  std::unordered_map<uint32_t, Frame> frames_;
  /// Guards `lru_` plus the in_lru/lru_pos fields of every frame.
  std::mutex lru_mu_;
  std::list<uint32_t> lru_;  // front = most recently used
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> saved_fetches_{0};

  WriteAheadLog* wal_ = nullptr;
  bool in_txn_ = false;
  size_t txn_dirty_count_ = 0;
  std::unordered_map<uint32_t, TxnUndo> undo_;
  bool discard_on_destroy_ = false;

  // MVCC state. `versions_` is touched by snapshot readers under the shared
  // table latch, so it has its own mutex (always acquired after table_mu_,
  // never the other way around).
  bool mvcc_enabled_ = true;
  mutable std::mutex versions_mu_;
  std::unordered_map<uint32_t, std::vector<PageVersion>> versions_;
  std::atomic<uint64_t> last_commit_lsn_{0};
  std::atomic<uint64_t> snapshot_reads_{0};
  std::atomic<uint64_t> versions_published_{0};
  std::atomic<uint64_t> version_chain_max_{0};
};

}  // namespace oxml

#endif  // OXML_RELATIONAL_BUFFER_POOL_H_
