#ifndef OXML_RELATIONAL_BUFFER_POOL_H_
#define OXML_RELATIONAL_BUFFER_POOL_H_

#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/result.h"
#include "src/relational/page.h"

namespace oxml {

/// Abstract page store underneath the buffer pool.
class StorageBackend {
 public:
  virtual ~StorageBackend() = default;
  /// Allocates a zeroed page, returning its id (ids are dense from 0).
  virtual Result<uint32_t> AllocatePage() = 0;
  virtual Status ReadPage(uint32_t id, char* buf) = 0;
  virtual Status WritePage(uint32_t id, const char* buf) = 0;
  virtual uint32_t page_count() const = 0;
};

/// Keeps every page in RAM (a main-memory database configuration).
class MemoryBackend : public StorageBackend {
 public:
  Result<uint32_t> AllocatePage() override;
  Status ReadPage(uint32_t id, char* buf) override;
  Status WritePage(uint32_t id, const char* buf) override;
  uint32_t page_count() const override {
    return static_cast<uint32_t>(pages_.size());
  }

 private:
  std::vector<std::unique_ptr<char[]>> pages_;
};

/// Stores pages in a file via pread/pwrite (a disk-resident configuration).
class FileBackend : public StorageBackend {
 public:
  /// Opens the file. With `truncate` (the default) any existing content is
  /// discarded; otherwise existing pages are preserved and the page count
  /// is derived from the file size (which must be page-aligned).
  static Result<std::unique_ptr<FileBackend>> Open(const std::string& path,
                                                   bool truncate = true);
  ~FileBackend() override;

  Result<uint32_t> AllocatePage() override;
  Status ReadPage(uint32_t id, char* buf) override;
  Status WritePage(uint32_t id, const char* buf) override;
  uint32_t page_count() const override { return page_count_; }

 private:
  FileBackend(int fd, std::string path) : fd_(fd), path_(std::move(path)) {}
  int fd_;
  std::string path_;
  uint32_t page_count_ = 0;
};

class BufferPool;

/// RAII pin on a buffered page. While a PageHandle is alive the frame will
/// not be evicted. Call MarkDirty() after mutating data().
class PageHandle {
 public:
  PageHandle() = default;
  PageHandle(BufferPool* pool, uint32_t page_id, char* data);
  ~PageHandle();

  PageHandle(PageHandle&& other) noexcept;
  PageHandle& operator=(PageHandle&& other) noexcept;
  PageHandle(const PageHandle&) = delete;
  PageHandle& operator=(const PageHandle&) = delete;

  bool valid() const { return pool_ != nullptr; }
  uint32_t page_id() const { return page_id_; }
  char* data() const { return data_; }
  void MarkDirty();

 private:
  void Release();
  BufferPool* pool_ = nullptr;
  uint32_t page_id_ = kInvalidPageId;
  char* data_ = nullptr;
};

/// A pin-counted LRU buffer pool over a StorageBackend.
class BufferPool {
 public:
  /// `capacity` is the number of resident frames; 0 means unbounded
  /// (sensible with MemoryBackend).
  BufferPool(std::unique_ptr<StorageBackend> backend, size_t capacity = 0);
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Allocates a fresh page and returns it pinned (contents zeroed).
  Result<PageHandle> NewPage();

  /// Returns the page pinned, faulting it in from the backend if needed.
  Result<PageHandle> FetchPage(uint32_t page_id);

  /// Writes back all dirty frames.
  Status FlushAll();

  uint32_t page_count() const { return backend_->page_count(); }
  uint64_t hit_count() const { return hits_; }
  uint64_t miss_count() const { return misses_; }

 private:
  friend class PageHandle;

  struct Frame {
    std::unique_ptr<char[]> data;
    uint32_t page_id = kInvalidPageId;
    int pin_count = 0;
    bool dirty = false;
    std::list<uint32_t>::iterator lru_pos;
    bool in_lru = false;
  };

  void Unpin(uint32_t page_id, bool dirty);
  /// Evicts one unpinned frame if at capacity. Returns error if all pinned.
  Status EnsureCapacity();

  std::unique_ptr<StorageBackend> backend_;
  size_t capacity_;
  std::unordered_map<uint32_t, Frame> frames_;
  std::list<uint32_t> lru_;  // front = most recently used
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace oxml

#endif  // OXML_RELATIONAL_BUFFER_POOL_H_
