#ifndef OXML_RELATIONAL_SQL_AST_H_
#define OXML_RELATIONAL_SQL_AST_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/relational/expression.h"
#include "src/relational/schema.h"

namespace oxml {

/// Statement kinds of the supported SQL subset.
enum class StmtKind : uint8_t {
  kSelect,
  kInsert,
  kUpdate,
  kDelete,
  kCreateTable,
  kCreateIndex,
  kDropTable,
};

struct Stmt {
  explicit Stmt(StmtKind kind) : kind(kind) {}
  virtual ~Stmt() = default;
  StmtKind kind;
};

using StmtPtr = std::unique_ptr<Stmt>;

/// One item of a SELECT list: expression plus optional AS alias.
struct SelectItem {
  ExprPtr expr;        // null means bare '*'
  std::string alias;
};

/// A base table reference with optional alias.
struct TableRef {
  std::string table;
  std::string alias;  // empty means use the table name

  const std::string& effective_alias() const {
    return alias.empty() ? table : alias;
  }
};

struct OrderItem {
  ExprPtr expr;
  bool desc = false;
};

struct SelectStmt : Stmt {
  SelectStmt() : Stmt(StmtKind::kSelect) {}
  bool distinct = false;
  std::vector<SelectItem> items;
  std::vector<TableRef> from;
  ExprPtr where;                   // may be null
  std::vector<ExprPtr> group_by;   // empty = no grouping
  std::vector<OrderItem> order_by;
  std::optional<int64_t> limit;
};

struct InsertStmt : Stmt {
  InsertStmt() : Stmt(StmtKind::kInsert) {}
  std::string table;
  std::vector<std::string> columns;  // empty = full-schema order
  std::vector<std::vector<ExprPtr>> rows;
};

struct UpdateStmt : Stmt {
  UpdateStmt() : Stmt(StmtKind::kUpdate) {}
  std::string table;
  std::vector<std::pair<std::string, ExprPtr>> assignments;
  ExprPtr where;  // may be null
};

struct DeleteStmt : Stmt {
  DeleteStmt() : Stmt(StmtKind::kDelete) {}
  std::string table;
  ExprPtr where;  // may be null
};

struct CreateTableStmt : Stmt {
  CreateTableStmt() : Stmt(StmtKind::kCreateTable) {}
  std::string table;
  std::vector<Column> columns;
};

struct CreateIndexStmt : Stmt {
  CreateIndexStmt() : Stmt(StmtKind::kCreateIndex) {}
  bool unique = false;
  std::string index;
  std::string table;
  std::vector<std::string> columns;
};

struct DropTableStmt : Stmt {
  DropTableStmt() : Stmt(StmtKind::kDropTable) {}
  std::string table;
};

}  // namespace oxml

#endif  // OXML_RELATIONAL_SQL_AST_H_
